package ftgcs

import (
	"ftgcs/internal/byzantine"
	"ftgcs/internal/graph"
	"ftgcs/internal/sim"
)

// Topology constructors (base cluster graphs 𝒢).

// Line returns the path graph on n clusters (diameter n−1) — the canonical
// worst case for gradient clock synchronization.
func Line(n int) *Topology { return graph.Line(n) }

// Ring returns the cycle on n clusters.
func Ring(n int) *Topology { return graph.Ring(n) }

// Grid returns the w×h grid — the System-on-Chip/Network-on-Chip topology
// motivating the paper's introduction.
func Grid(w, h int) *Topology { return graph.Grid(w, h) }

// Torus returns the w×h torus.
func Torus(w, h int) *Topology { return graph.Torus(w, h) }

// Tree returns a complete b-ary tree of the given depth.
func Tree(branching, depth int) *Topology { return graph.BalancedTree(branching, depth) }

// Clique returns the complete graph on n clusters (the Lynch–Welch
// setting, D = 1).
func Clique(n int) *Topology { return graph.Clique(n) }

// Star returns a star with one hub and n−1 leaves.
func Star(n int) *Topology { return graph.Star(n) }

// Hypercube returns the d-dimensional hypercube on 2^d clusters.
func Hypercube(d int) *Topology { return graph.Hypercube(d) }

// Random returns a connected random graph on n clusters with extra random
// edges beyond a spanning tree, deterministic in seed.
func Random(n, extra int, seed int64) *Topology {
	return graph.RandomConnected(n, extra, sim.NewRNG(seed, 0))
}

// Byzantine strategy constructors for Config.Faults.

// Silent returns the crash-at-zero adversary.
func Silent() FaultStrategy { return byzantine.Silent{} }

// Spam returns the random-pulse flooder.
func Spam() FaultStrategy { return byzantine.Spam{} }

// TwoFaced returns the schedule-anchored equivocator (early pulses to half
// the neighbors, late to the rest).
func TwoFaced() FaultStrategy { return byzantine.TwoFaced{} }

// AdaptiveTwoFaced returns the victim-tracking equivocator whose lies stay
// plausible forever.
func AdaptiveTwoFaced() FaultStrategy { return byzantine.AdaptiveTwoFaced{} }

// CadenceTwoFaced returns the off-nominal-cadence equivocator (the paper's
// "sub-nominal clock speed" example) — the strategy that breaks plain GCS.
func CadenceTwoFaced() FaultStrategy { return byzantine.CadenceTwoFaced{} }

// Oscillate returns the alternating early/late pulser.
func Oscillate() FaultStrategy { return byzantine.Oscillate{} }

// StrategyByName resolves a CLI-friendly strategy name ("silent", "spam",
// "two-faced", "adaptive", "cadence", "oscillate", "lie-early", "lie-late",
// "max-spam"). It delegates to the default registry, so attacks registered
// there (including user extensions) resolve here too.
func StrategyByName(name string) (FaultStrategy, error) {
	return AttackByName(name)
}

// FaultStrategy is a Byzantine behavior (see the byzantine constructors).
type FaultStrategy = byzantine.Strategy
