package ftgcs

import (
	"ftgcs/internal/byzantine"
	"ftgcs/internal/clockwork"
	"ftgcs/internal/core"
	"ftgcs/internal/graph"
	"ftgcs/internal/sim"
	"ftgcs/internal/transport"
)

// Adversary extension points. A scenario is defined by three pluggable
// interfaces — how hardware clocks drift (DriftModel), how message delays
// are chosen (DelayModel), and what Byzantine nodes do (Attack) — plus a
// topology. Implement any of them in one file, register it by name (see
// RegisterDrift, RegisterDelay, RegisterAttack, RegisterTopology), and
// every CLI and the Sweep runner can resolve it with no further wiring.
type (
	// DriftModel assigns hardware clock rate behavior per node. The
	// built-in implementations are SpreadDrift, GradientDrift,
	// HalvesDrift, AlternatingHalvesDrift, RandomWalkDrift, SineDrift and
	// NoDrift.
	DriftModel = core.DriftModel
	// DriftContext is the per-node build context handed to a DriftModel:
	// position in the augmented topology, derived constants, and a
	// deterministic per-node RNG stream.
	DriftContext = core.DriftCtx
	// RateModel is the piecewise-constant hardware clock rate h(t) a
	// DriftModel produces for one node.
	RateModel = clockwork.RateModel

	// DelayModel builds the message-delay adversary for a run. Built-ins:
	// UniformDelayModel, ExtremalDelayModel, FixedMidDelayModel,
	// PhasedRevealDelayModel.
	DelayModel = core.DelayModel
	// MessageDelays is the transport-level sampler a DelayModel builds:
	// per-message delays in [d−U, d].
	MessageDelays = transport.DelayModel

	// Attack is a Byzantine node behavior, armed at simulation start. The
	// built-ins are the byzantine package's strategies (Silent, Spam,
	// TwoFaced, AdaptiveTwoFaced, CadenceTwoFaced, Oscillate, Lie,
	// MaxSpam).
	Attack = byzantine.Strategy
	// AttackContext gives an Attack everything it may use: the engine,
	// the network, its own identity and neighbors, the derived constants,
	// and a deterministic RNG stream.
	AttackContext = byzantine.Ctx
	// PulseHandler receives the pulses delivered to a faulty node,
	// letting adaptive attacks react to their victims.
	PulseHandler = transport.Handler

	// RNG is the deterministic random stream used throughout (see
	// DriftContext.Rng and AttackContext.Rng).
	RNG = sim.RNG
	// NodeID identifies a physical node; ClusterID a cluster of the base
	// graph.
	NodeID = graph.NodeID
	// ClusterID identifies a cluster (a node of the base graph 𝒢).
	ClusterID = graph.ClusterID
)

// Built-in drift models, re-exported for embedding and composition.
type (
	// SpreadDrift runs member i of every cluster at 1 + ρ·i/(k−1).
	SpreadDrift = core.SpreadDrift
	// GradientDrift runs cluster c's members at 1 + ρ·c/(|𝒞|−1).
	GradientDrift = core.GradientDrift
	// HalvesDrift runs the lower index half at 1, the upper at 1+ρ.
	HalvesDrift = core.HalvesDrift
	// AlternatingHalvesDrift swaps the halves' rates every Period.
	AlternatingHalvesDrift = core.AlternatingHalvesDrift
	// RandomWalkDrift redraws rates from [1, 1+ρ] every Step.
	RandomWalkDrift = core.RandomWalkDrift
	// SineDrift is slow sinusoidal wander with per-node phase.
	SineDrift = core.SineDrift
	// NoDrift runs every clock at exactly rate 1.
	NoDrift = core.NoDrift
)

// Built-in delay models, re-exported for embedding and composition.
type (
	// UniformDelayModel draws uniformly from [d−U, d].
	UniformDelayModel = core.UniformDelayModel
	// ExtremalDelayModel biases delays by direction (skew-maximizing).
	ExtremalDelayModel = core.ExtremalDelayModel
	// FixedMidDelayModel always uses d−U/2.
	FixedMidDelayModel = core.FixedMidDelayModel
	// PhasedRevealDelayModel flips an extremal bias at SwitchAt.
	PhasedRevealDelayModel = core.PhasedRevealDelayModel
)
