package main

import "testing"

func TestRunTopologies(t *testing.T) {
	tests := [][]string{
		{"-topology", "line", "-size", "4"},
		{"-topology", "ring", "-size", "4", "-f", "1"},
		{"-topology", "grid", "-size", "3", "-f", "1,2"},
		{"-topology", "torus", "-size", "3"},
		{"-topology", "tree", "-size", "2"},
		{"-topology", "clique", "-size", "4"},
		{"-topology", "star", "-size", "5"},
		{"-topology", "hypercube", "-size", "3"},
	}
	for _, args := range tests {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	tests := [][]string{
		{"-topology", "nonsense"},
		{"-f", "x"},
		{"-f", "-1"},
		{"-badflag"},
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}
