// ftgcs-topo inspects the cluster augmentation 𝒢 → G of the paper's
// Section 2: node/edge overheads, degrees, and diameters for a topology
// family across fault budgets.
//
//	ftgcs-topo -topology grid -size 4 -f 1,2,3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ftgcs"
	"ftgcs/internal/graph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ftgcs-topo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ftgcs-topo", flag.ContinueOnError)
	topo := fs.String("topology", "line", strings.Join(ftgcs.DefaultRegistry.TopologyNames(), "|"))
	size := fs.Int("size", 8, "topology size parameter")
	seed := fs.Int64("seed", 1, "seed for randomized topology families")
	budgets := fs.String("f", "1,2,3", "comma-separated fault budgets")
	if err := fs.Parse(args); err != nil {
		return err
	}

	base, err := ftgcs.TopologyByName(*topo, *size, *seed)
	if err != nil {
		return err
	}

	fmt.Printf("base graph %s: %d nodes, %d edges, diameter %d\n\n",
		base.Name(), base.N(), base.M(), base.Diameter())
	fmt.Printf("%-3s %-3s %-8s %-10s %-14s %-12s %-10s\n",
		"f", "k", "nodes", "edges", "cluster-edges", "inter-edges", "max degree")

	for _, part := range strings.Split(*budgets, ",") {
		f, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || f < 0 {
			return fmt.Errorf("bad fault budget %q", part)
		}
		k := 3*f + 1
		a, err := graph.Augment(base, k)
		if err != nil {
			return err
		}
		o := a.Overhead()
		maxDeg := 0
		for v := 0; v < a.Net.N(); v++ {
			if d := a.Net.Degree(v); d > maxDeg {
				maxDeg = d
			}
		}
		fmt.Printf("%-3d %-3d %-8d %-10d %-14d %-12d %-10d\n",
			f, k, o.Nodes, o.Edges, o.ClusterEdges, o.InterclusterEdges, maxDeg)
	}
	fmt.Println("\nnode overhead ×k = O(f); intercluster edge overhead ×k² = O(f²) per base edge (Theorem 1.1)")
	return nil
}
