package main

import (
	"context"
	"testing"
)

func TestRunSelectedExperiments(t *testing.T) {
	// Only the fast, simulation-free experiments; the full pipeline is
	// exercised by the harness tests and benchmarks.
	if err := run(context.Background(), []string{"-quick", "-only", "E5,E7,E11,E14"}); err != nil {
		t.Errorf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-only", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run(context.Background(), []string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
