// ftgcs-experiments regenerates the paper-reproduction tables (one per
// theorem/lemma/claim of the paper; see the README for the index).
//
//	ftgcs-experiments             # run all 14 experiments, full sweeps
//	ftgcs-experiments -quick      # reduced sweeps (CI-sized)
//	ftgcs-experiments -only E5,E7 # a subset
//	ftgcs-experiments -workers 1  # force sequential scenario execution
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"ftgcs/internal/harness"
)

func main() {
	// SIGINT/SIGTERM cancel the in-flight sweep; tables of experiments
	// that already completed have been flushed by then.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "ftgcs-experiments: interrupted; completed tables were flushed")
		} else {
			fmt.Fprintln(os.Stderr, "ftgcs-experiments:", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("ftgcs-experiments", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced sweeps and horizons")
	seed := fs.Int64("seed", 1, "master random seed")
	workers := fs.Int("workers", 0, "parallel scenario workers (0 = GOMAXPROCS); tables are identical for any value")
	only := fs.String("only", "", "comma-separated experiment IDs (e.g. E1,E5,A1); empty = all E*")
	ablations := fs.Bool("ablations", false, "run the ablation studies (A1–A3) instead of the claim experiments")
	verbose := fs.Bool("v", false, "print per-run progress")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // flush pending frees so the profile reflects live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ftgcs-experiments: memprofile:", err)
			}
			f.Close()
		}()
	}

	rc := harness.RunConfig{Quick: *quick, Seed: *seed, Workers: *workers, Ctx: ctx}
	if *verbose {
		rc.Progress = os.Stderr
	}

	if *ablations && *only == "" {
		for _, e := range harness.Ablations() {
			tbl, err := e.Run(rc)
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			tbl.Render(os.Stdout)
		}
		return nil
	}
	if *only == "" {
		return harness.RunAll(rc, os.Stdout)
	}
	for _, id := range strings.Split(*only, ",") {
		exp, err := harness.ByID(strings.TrimSpace(id))
		if err != nil {
			return err
		}
		tbl, err := exp.Run(rc)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		tbl.Render(os.Stdout)
	}
	return nil
}
