package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ftgcs"
	"ftgcs/internal/cas"
	"ftgcs/internal/jobs"
	"ftgcs/internal/manifest"
)

// gridManifestJSON expands to 9 grid points of which 8 are unique: the
// baseline point (size 2, seed 0) is also the sweep's first point, so
// dedup folds it away.
const gridManifestJSON = `{
  "name": "serve-test-grid",
  "base": {"topology": {"name": "line", "size": 2}, "horizon": {"seconds": 3}},
  "arms": [
    {"name": "baseline"},
    {"name": "sweep",
     "axes": [{"param": "topology.size", "ints": [2, 3]}],
     "seeds": {"from": 0, "count": 4},
     "after": ["baseline"]}
  ]
}`

// manifestView mirrors manifest.Status for decoding responses.
type manifestView struct {
	ID        string `json:"id"`
	Name      string `json:"name"`
	State     string `json:"state"`
	Total     int    `json:"total"`
	Done      int    `json:"done"`
	Failed    int    `json:"failed"`
	FromCache int    `json:"fromCache"`
	Arms      []struct {
		Name  string `json:"name"`
		State string `json:"state"`
		Jobs  []struct {
			Name   string `json:"name"`
			ID     string `json:"id"`
			State  string `json:"state"`
			Cached string `json:"cached"`
		} `json:"jobs"`
	} `json:"arms"`
}

// TestManifestSubmitExpandsAndCompletes: POST a grid, wait, and check
// the dedup arithmetic, the DAG bookkeeping, and idempotent re-POST.
func TestManifestSubmitExpandsAndCompletes(t *testing.T) {
	ts, mgr := newTestServer(t, jobs.Options{Workers: 4})

	code, body := post(t, ts, "/v1/manifests?wait=true", gridManifestJSON)
	if code != http.StatusCreated {
		t.Fatalf("first POST: %d %s", code, body)
	}
	var st manifestView
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Total != 8 || st.Done != 8 || st.Failed != 0 {
		t.Fatalf("grid did not complete: %s", body)
	}
	if len(st.Arms) != 2 || len(st.Arms[0].Jobs) != 1 || len(st.Arms[1].Jobs) != 8 {
		t.Fatalf("arm shapes wrong: %s", body)
	}
	// The shared baseline point is the same job in both arms.
	if st.Arms[0].Jobs[0].ID != st.Arms[1].Jobs[0].ID {
		t.Fatalf("baseline point not deduplicated: %s", body)
	}
	if runs := mgr.Stats().Runs; runs != 8 {
		t.Fatalf("runs = %d, want 8 (dedup folds the shared point)", runs)
	}

	// Idempotent re-POST: re-joins the settled run, no recomputation.
	code2, body2 := post(t, ts, "/v1/manifests?wait=true", gridManifestJSON)
	if code2 != http.StatusOK {
		t.Fatalf("re-POST: %d %s", code2, body2)
	}
	var st2 manifestView
	if err := json.Unmarshal(body2, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID || st2.State != "done" {
		t.Fatalf("re-POST did not re-join: %s", body2)
	}
	if runs := mgr.Stats().Runs; runs != 8 {
		t.Fatalf("re-POST recomputed: runs = %d", runs)
	}

	// The run shows up in the listing and by ID.
	codeL, bodyL := get(t, ts, "/v1/manifests")
	if codeL != http.StatusOK || !bytes.Contains(bodyL, []byte(st.ID)) {
		t.Fatalf("listing: %d %s", codeL, bodyL)
	}
	codeG, bodyG := get(t, ts, "/v1/manifests/"+st.ID)
	if codeG != http.StatusOK {
		t.Fatalf("GET by id: %d %s", codeG, bodyG)
	}
}

func TestManifestErrors(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{})

	for _, bad := range []string{
		`{"arms": []}`,
		`{"arms": [{"name": "a", "after": ["a"]}]}`,
		`{"arms": [{"name": "a", "axes": [{"param": "warp.factor", "ints": [9]}]}]}`,
		`{"arms": [{"name": "a"}], "bogus": true}`,
		`not json`,
	} {
		if code, body := post(t, ts, "/v1/manifests", bad); code != http.StatusBadRequest {
			t.Errorf("POST %q: %d %s, want 400", bad, code, body)
		}
	}
	if code, _ := get(t, ts, "/v1/manifests/sha256:0123"); code != http.StatusNotFound {
		t.Errorf("GET unknown: %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/manifests/sha256:0123", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown: %d, want 404", resp.StatusCode)
	}
}

// bootStoreServer assembles the full stack on a shared store directory;
// the returned shutdown tears it down in dependency order so it can be
// "rebooted" mid-test.
func bootStoreServer(t *testing.T, dir string) (ts *httptest.Server, mgr *jobs.Manager, shutdown func()) {
	t.Helper()
	store, err := cas.Open(dir, cas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mgr = jobs.NewManager(jobs.Options{Workers: 4, Store: store})
	sched := manifest.NewScheduler(mgr, ftgcs.DefaultRegistry)
	ts = httptest.NewServer(newHandler(&server{mgr: mgr, sched: sched, store: store, reg: ftgcs.DefaultRegistry, waitLimit: time.Minute}))
	return ts, mgr, func() {
		ts.Close()
		sched.Close()
		mgr.Close()
	}
}

// TestManifestSurvivesRestart is the PR's acceptance test: a manifest
// run's full result set survives a server restart. Re-posting the same
// manifest to a fresh process on the same -store directory completes
// with every job served from the disk tier, zero recomputation, and
// per-job result payloads byte-identical to the first run.
func TestManifestSurvivesRestart(t *testing.T) {
	testManifestSurvivesRestart(t, gridManifestJSON)
}

// TestCommittedManifestSurvivesRestart replays a committed example grid
// (dependency-gated arms, ≥ 8 deduplicated jobs) through the same
// restart cycle, pinning the examples to the durability contract.
func TestCommittedManifestSurvivesRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second grid; skipped under -short")
	}
	doc, err := os.ReadFile(filepath.Join("..", "..", "examples", "manifests", "e1-grid.json"))
	if err != nil {
		t.Fatal(err)
	}
	testManifestSurvivesRestart(t, string(doc))
}

func testManifestSurvivesRestart(t *testing.T, manifestJSON string) {
	dir := t.TempDir()

	ts1, _, shutdown1 := bootStoreServer(t, dir)
	code, body := post(t, ts1, "/v1/manifests?wait=true", manifestJSON)
	if code != http.StatusCreated {
		t.Fatalf("first run: %d %s", code, body)
	}
	var first manifestView
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.State != "done" {
		t.Fatalf("first run not done: %s", body)
	}
	firstResults := make(map[string]json.RawMessage)
	for _, arm := range first.Arms {
		for _, j := range arm.Jobs {
			_, jb := get(t, ts1, "/v1/experiments/"+j.ID)
			var jv statusView
			if err := json.Unmarshal(jb, &jv); err != nil {
				t.Fatal(err)
			}
			if len(jv.Result) == 0 {
				t.Fatalf("job %s has no result: %s", j.ID, jb)
			}
			firstResults[j.ID] = jv.Result
		}
	}
	shutdown1()

	ts2, mgr2, shutdown2 := bootStoreServer(t, dir)
	defer shutdown2()
	code2, body2 := post(t, ts2, "/v1/manifests?wait=true", manifestJSON)
	if code2 != http.StatusCreated {
		t.Fatalf("replay run: %d %s", code2, body2)
	}
	var replay manifestView
	if err := json.Unmarshal(body2, &replay); err != nil {
		t.Fatal(err)
	}
	if replay.ID != first.ID || replay.State != "done" {
		t.Fatalf("replay mismatch: %s", body2)
	}
	if replay.FromCache != replay.Total {
		t.Fatalf("replay not fully cache-served: %s", body2)
	}
	for _, arm := range replay.Arms {
		for _, j := range arm.Jobs {
			if j.Cached != string(jobs.TierDisk) && j.Cached != string(jobs.TierMemory) {
				t.Fatalf("job %q not served from cache after restart: %+v", j.Name, j)
			}
			_, jb := get(t, ts2, "/v1/experiments/"+j.ID)
			var jv statusView
			if err := json.Unmarshal(jb, &jv); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(firstResults[j.ID], jv.Result) {
				t.Fatalf("job %s not byte-identical across restart:\n%s\n%s", j.ID, firstResults[j.ID], jv.Result)
			}
		}
	}
	if runs := mgr2.Stats().Runs; runs != 0 {
		t.Fatalf("replay recomputed %d jobs", runs)
	}
	// At least one job must have come off the actual disk tier (the rest
	// may report the promoted memory tier via the shared baseline point).
	disk := 0
	for _, arm := range replay.Arms {
		for _, j := range arm.Jobs {
			if j.Cached == string(jobs.TierDisk) {
				disk++
			}
		}
	}
	if disk == 0 {
		t.Fatal("no job reports the disk tier on replay")
	}
}
