package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"ftgcs"
	"ftgcs/internal/admission"
	"ftgcs/internal/cas"
	"ftgcs/internal/jobs"
	"ftgcs/internal/manifest"
	"ftgcs/internal/spec"
	"ftgcs/internal/telemetry"
)

// # Retryable vs deterministic errors — the service's rejection contract
//
// Every error response classifies into exactly one of two kinds, and the
// classification tells the client what to do next:
//
//   - Retryable (429, 503): the request itself is fine; the service
//     cannot take it right now. 429 means an admission budget is
//     exhausted (the service-wide rate, or — scope "client" — the
//     caller's own fair share); 503 means internal backpressure (the
//     jobs queue is full, the scheduler is shutting down, or a result
//     was evicted in the instant between completing and being read).
//     Both carry a Retry-After header with the whole-seconds wait after
//     which the same request is expected to succeed, and a JSON body
//     with "retryable": true. Resubmit the identical payload after the
//     window; nothing about it needs to change.
//
//   - Deterministic (400, 404, 409): replaying the same request will
//     fail the same way — the spec does not validate, the ID is unknown,
//     the job already completed. No Retry-After is sent; the client must
//     change something (the payload, the ID, the expectation), not wait.
//
// Batch submissions (the "experiments" array) apply the same contract
// per item: each item's JobStatus carries "retryable" so one transient
// rejection does not poison the batch, and the enclosing 200 response
// carries a Retry-After header whenever at least one item is worth
// resubmitting. The boundary between the kinds is jobs.Retryable plus
// the admission verdict — server code never invents its own
// classification.

// server wires the job manager, manifest scheduler and registry behind
// the JSON API.
type server struct {
	mgr   *jobs.Manager
	sched *manifest.Scheduler
	// store is the optional durable result store (nil without -store);
	// surfaced here only for stats.
	store *cas.Store
	reg   *ftgcs.Registry
	// waitLimit bounds how long a ?wait=true request may block.
	waitLimit time.Duration
	// tel is the telemetry registry scraped by GET /metrics; derived from
	// the manager's registry in newHandler when left nil.
	tel *telemetry.Registry
	// httpDur is the request-latency histogram, labeled by matched route
	// pattern and status class; populated by newHandler.
	httpDur *telemetry.HistogramVec
	// enablePprof mounts net/http/pprof under /debug/pprof/ (-pprof flag).
	enablePprof bool
	// watchPoll is the ?watch=true progress sampling cadence; newHandler
	// defaults it to 100ms when zero (tests shorten it).
	watchPoll time.Duration
	// watchKeepalive is how often an idle ?watch=true stream emits an SSE
	// comment so proxies and clients do not time out a job that sits
	// queued without progress; newHandler defaults it to 15s.
	watchKeepalive time.Duration
	// admit gates submissions before they reach the jobs queue (the
	// -admit-rate/-admit-burst/-admit-per-client flags); nil means
	// admission.AlwaysAdmit (newHandler defaults it).
	admit admission.Policy
	// retryAfter is the Retry-After hint attached to 503 backpressure
	// responses, where no admission deficit supplies an exact wait;
	// newHandler defaults it to 1s.
	retryAfter time.Duration
	// Admission telemetry, populated by newHandler.
	admitted *telemetry.Counter
	rejected *telemetry.CounterVec
	// memo is the raw-body → prepared-submission cache: hot resubmissions
	// of a byte-identical single-spec body skip decoding and hashing.
	// Defaulted by newHandler.
	memo *bodyMemo
}

// newHandler builds the route table.
//
//	POST   /v1/experiments         submit one spec or a batch
//	GET    /v1/experiments/{id}    poll a job by content-addressed ID
//	DELETE /v1/experiments/{id}    cancel a queued or running job
//	POST   /v1/manifests           submit an experiment grid manifest
//	GET    /v1/manifests           list manifest runs
//	GET    /v1/manifests/{id}      poll a manifest run
//	DELETE /v1/manifests/{id}      cancel a manifest run's remaining arms
//	GET    /v1/registry            enumerate registered names
//	GET    /v1/stats               job/cache/queue/store counters
//	GET    /v1/healthz             liveness + manager stats
//	GET    /v1/experiments/{id}/trace  lifecycle span list for a job
//	GET    /metrics                Prometheus text exposition
//
// GET /v1/experiments/{id}?watch=true upgrades the poll into an SSE
// stream; -pprof additionally mounts /debug/pprof/.
func newHandler(s *server) http.Handler {
	if s.tel == nil {
		s.tel = s.mgr.Telemetry()
	}
	if s.watchPoll <= 0 {
		s.watchPoll = 100 * time.Millisecond
	}
	if s.watchKeepalive <= 0 {
		s.watchKeepalive = 15 * time.Second
	}
	if s.admit == nil {
		s.admit = admission.AlwaysAdmit{}
	}
	if s.retryAfter <= 0 {
		s.retryAfter = time.Second
	}
	if s.memo == nil {
		s.memo = newBodyMemo(512)
	}
	s.httpDur = s.tel.HistogramVec("ftgcs_http_request_duration_seconds",
		"HTTP request latency by route pattern and status class.",
		telemetry.DurationBuckets, "route", "status")
	s.admitted = s.tel.Counter("ftgcs_admission_admitted_total",
		"Submissions admitted past the admission policy.")
	s.rejected = s.tel.CounterVec("ftgcs_admission_rejected_total",
		"Submissions rejected by the admission policy, by exhausted scope.", "scope")
	if s.store != nil {
		registerStoreMetrics(s.tel, s.store)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments", s.handleSubmit)
	mux.HandleFunc("GET /v1/experiments/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/experiments/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/experiments/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/manifests", s.handleManifestSubmit)
	mux.HandleFunc("GET /v1/manifests", s.handleManifestList)
	mux.HandleFunc("GET /v1/manifests/{id}", s.handleManifestGet)
	mux.HandleFunc("DELETE /v1/manifests/{id}", s.handleManifestCancel)
	mux.HandleFunc("GET /v1/registry", s.handleRegistry)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.enablePprof {
		// Explicit wiring instead of the package's init-time registration
		// on DefaultServeMux: profiling stays opt-in per process.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s.instrumented(mux)
}

// postBody is the POST /v1/experiments envelope: either a single spec
// (with optional replication/series flags) or a batch under
// "experiments". Unknown fields are rejected so schema typos fail loudly.
type postBody struct {
	Spec          *spec.ScenarioSpec `json:"spec,omitempty"`
	Replicate     int                `json:"replicate,omitempty"`
	IncludeSeries bool               `json:"includeSeries,omitempty"`
	Experiments   []jobs.Request     `json:"experiments,omitempty"`
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	wait := boolParam(r, "wait")

	// Memo fast path: a byte-identical single-spec body seen before maps
	// straight to its prepared submission — no JSON decode, no canonical
	// re-marshal, no SHA-256. Admission still charges its token first;
	// the memo accelerates a request, it never smuggles one past the
	// rate budget.
	if len(raw) <= maxMemoBody {
		if p, ok := s.memo.get(raw); ok {
			if !s.admitRequest(w, r, 1) {
				return
			}
			st, err := s.submitPrepared(r.Context(), p, wait)
			if err != nil {
				s.writeSubmitError(w, err)
				return
			}
			writeJSON(w, statusCode(st), st)
			return
		}
	}

	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var body postBody
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	if (body.Spec == nil) == (len(body.Experiments) == 0) {
		writeError(w, http.StatusBadRequest, errors.New(`provide exactly one of "spec" or a non-empty "experiments"`))
		return
	}
	// Admission runs before any validation or topology work: a batch
	// costs one token per item, so batching cannot launder a burst past
	// the accounting.
	cost := 1
	if body.Spec == nil {
		cost = len(body.Experiments)
	}
	if !s.admitRequest(w, r, cost) {
		return
	}

	if body.Spec != nil {
		p, err := jobs.PrepareRequest(jobs.Request{Spec: *body.Spec, Replicate: body.Replicate, IncludeSeries: body.IncludeSeries})
		if err != nil {
			s.writeSubmitError(w, err)
			return
		}
		// Only successfully prepared single-spec bodies are memoized, so a
		// later byte-identical hit replays exactly this submission.
		if len(raw) <= maxMemoBody {
			s.memo.put(raw, p)
		}
		st, err := s.submitPrepared(r.Context(), p, wait)
		if err != nil {
			s.writeSubmitError(w, err)
			return
		}
		writeJSON(w, statusCode(st), st)
		return
	}

	// Submit the whole batch before waiting on any of it, so the jobs
	// pipeline through the worker pool instead of running one at a time.
	// Per-item failures are reported in place so one bad spec does not
	// void the rest of the batch; transient failures (backpressure,
	// shutdown) are marked retryable to distinguish them from
	// deterministic spec failures.
	out := make([]jobs.JobStatus, len(body.Experiments))
	for i, req := range body.Experiments {
		st, err := s.mgr.Submit(req)
		if err != nil {
			st = jobs.JobStatus{State: jobs.StateFailed, Error: err.Error(), Retryable: jobs.Retryable(err)}
		}
		out[i] = st
	}
	if wait {
		// One deadline covers the whole batch: -wait-limit is the
		// request's maximum blocking time, not a per-item allowance.
		wctx, cancel := context.WithTimeout(r.Context(), s.waitLimit)
		defer cancel()
		for i := range out {
			if out[i].ID == "" {
				continue // submission failed; nothing to wait on
			}
			st, err := s.await(wctx, out[i])
			if err != nil {
				st = jobs.JobStatus{ID: out[i].ID, SpecHash: out[i].SpecHash, State: jobs.StateFailed, Error: err.Error(), Retryable: jobs.Retryable(err)}
			}
			// Wait serves the stored result, possibly computed under
			// another submitter's name; relabel with this item's own.
			out[i] = st.WithName(body.Experiments[i].Spec.DisplayName())
		}
	}
	// Per the contract above: a batch with at least one retryable item is
	// worth resubmitting, so the enclosing response advertises when.
	for i := range out {
		if out[i].Retryable {
			setRetryAfter(w, s.retryAfter)
			break
		}
	}
	writeJSON(w, http.StatusOK, map[string][]jobs.JobStatus{"jobs": out})
}

// clientKey is the admission identity of a request: the X-Client-ID
// header when the caller names itself, else the remote host (without
// the ephemeral port, so one client is one bucket across connections).
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// admitRequest consults the admission policy; on rejection it writes the
// 429 (Retry-After from the exact token deficit, "retryable": true,
// scope naming the exhausted budget) and returns false.
func (s *server) admitRequest(w http.ResponseWriter, r *http.Request, cost int) bool {
	d := s.admit.Admit(clientKey(r), cost)
	if d.OK {
		s.admitted.Inc()
		return true
	}
	s.rejected.With(string(d.Scope)).Inc()
	setRetryAfter(w, d.RetryAfter)
	what := "service-wide admission rate exhausted"
	if d.Scope == admission.ScopeClient {
		what = "per-client fair share exhausted"
	}
	writeJSON(w, http.StatusTooManyRequests, map[string]any{
		"error":     fmt.Sprintf("%s; retry after the Retry-After window", what),
		"retryable": true,
		"scope":     d.Scope,
	})
	return false
}

// writeSubmitError writes a submission failure per the contract above:
// transient errors are 503 with a Retry-After hint and "retryable":
// true; deterministic ones are 400 with neither.
func (s *server) writeSubmitError(w http.ResponseWriter, err error) {
	code := submitCode(err)
	if code != http.StatusServiceUnavailable {
		writeError(w, code, err)
		return
	}
	setRetryAfter(w, s.retryAfter)
	writeJSON(w, code, map[string]any{"error": err.Error(), "retryable": true})
}

// setRetryAfter advertises the wait as a whole-seconds Retry-After
// header (ceiling, minimum 1 — zero would invite an instant retry).
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// submitPrepared enqueues one prepared request, optionally blocking for
// the result.
func (s *server) submitPrepared(ctx context.Context, p jobs.PreparedRequest, wait bool) (jobs.JobStatus, error) {
	st, err := s.mgr.SubmitPrepared(p)
	if err != nil {
		return jobs.JobStatus{}, err
	}
	if !wait {
		return st, nil
	}
	wctx, cancel := context.WithTimeout(ctx, s.waitLimit)
	defer cancel()
	st, err = s.await(wctx, st)
	if err != nil {
		return st, err
	}
	// Wait serves the stored result, possibly computed under another
	// submitter's name (the submission coalesced onto an in-flight job);
	// relabel with this request's own display name.
	return st.WithName(p.Name()), nil
}

// await blocks until a pending job completes or ctx — which the caller
// has already bounded by -wait-limit — is done. A timeout (or the client
// going away) degrades to the current async snapshot; a result evicted
// before it could be read is surfaced as a retryable error rather than a
// stale pending state.
func (s *server) await(ctx context.Context, st jobs.JobStatus) (jobs.JobStatus, error) {
	if st.State == jobs.StateDone || st.State == jobs.StateFailed {
		return st, nil
	}
	final, err := s.mgr.Wait(ctx, st.ID)
	if err == nil {
		return final, nil
	}
	if errors.Is(err, jobs.ErrCanceled) {
		// The job was canceled while the waiter blocked (DELETE, run
		// budget, shutdown): the canceled snapshot IS the answer — state
		// canceled, retryable — not an eviction and not a failure.
		return final, nil
	}
	if ctx.Err() != nil {
		if cur, ok := s.mgr.Get(st.ID); ok {
			return cur, nil
		}
		return st, nil
	}
	// st.ID came from a successful Submit, so a lookup miss here is the
	// eviction race, not an unknown job — classify it as ErrEvicted so
	// submitCode/Retryable report it as transient (503), whichever shape
	// Wait's miss took.
	return jobs.JobStatus{}, fmt.Errorf("experiment %s completed but its result was evicted; resubmit to recompute: %w", st.ID, jobs.ErrEvicted)
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if boolParam(r, "watch") {
		s.handleWatch(w, r)
		return
	}
	if boolParam(r, "wait") {
		wctx, cancel := context.WithTimeout(r.Context(), s.waitLimit)
		defer cancel()
		// A job canceled while the waiter blocked still answers with its
		// canceled snapshot (the ID itself is gone afterwards).
		if st, err := s.mgr.Wait(wctx, id); err == nil || errors.Is(err, jobs.ErrCanceled) {
			writeJSON(w, statusCode(st), st)
			return
		}
		// Unknown job or timeout: fall through to the plain lookup.
	}
	st, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q (completed results are cached with bounded capacity; resubmit to recompute)", id))
		return
	}
	writeJSON(w, statusCode(st), st)
}

// handleCancel is DELETE /v1/experiments/{id}: cancel a queued or
// running job. The response carries the final snapshot — state canceled,
// retryable — and returns only once the worker slot is actually free
// (the job manager blocks the handful of simulation events cancellation
// takes to land). Canceled work is never cached, so a subsequent GET of
// the ID is a 404 and resubmitting the spec runs it afresh. Canceling a
// completed job is a 409 (its cached result stays valid); unknown IDs
// are 404.
func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Cancel(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, st)
	case errors.Is(err, jobs.ErrCompleted):
		writeJSON(w, http.StatusConflict, st)
	case errors.Is(err, jobs.ErrUnknownJob):
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q (canceled and evicted jobs are dropped; resubmit to recompute)", r.PathValue("id")))
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// handleManifestSubmit is POST /v1/manifests: submit a whole experiment
// grid. The manifest is validated, expanded (axes × seeds, deduplicated
// by job identity) and its arms scheduled respecting the After DAG.
// Submission is idempotent on the manifest's content hash: re-posting a
// known grid re-joins the existing run (200) instead of starting a new
// one (201). ?wait=true blocks — bounded by -wait-limit — until every
// job is terminal.
func (s *server) handleManifestSubmit(w http.ResponseWriter, r *http.Request) {
	m, err := manifest.Decode(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// A manifest costs one admission token: its arms trickle through the
	// scheduler's own pacing, so the submission — not the expansion — is
	// the unit of client demand.
	if !s.admitRequest(w, r, 1) {
		return
	}
	st, created, err := s.sched.Submit(m)
	switch {
	case err == nil:
	case errors.Is(err, manifest.ErrSchedulerClosed):
		setRetryAfter(w, s.retryAfter)
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": err.Error(), "retryable": true})
		return
	default:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if boolParam(r, "wait") {
		wctx, cancel := context.WithTimeout(r.Context(), s.waitLimit)
		defer cancel()
		if settled, err := s.sched.Wait(wctx, st.ID); err == nil {
			st = settled
		} else if cur, ok := s.sched.Get(st.ID); ok {
			st = cur // timeout: degrade to the async snapshot
		}
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	if st.State == manifest.ManifestRunning {
		code = http.StatusAccepted
	}
	writeJSON(w, code, st)
}

func (s *server) handleManifestList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]manifest.Status{"manifests": s.sched.List()})
}

func (s *server) handleManifestGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if boolParam(r, "wait") {
		wctx, cancel := context.WithTimeout(r.Context(), s.waitLimit)
		defer cancel()
		if st, err := s.sched.Wait(wctx, id); err == nil {
			writeJSON(w, http.StatusOK, st)
			return
		}
		// Unknown manifest or timeout: fall through to the plain lookup.
	}
	st, ok := s.sched.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown manifest %q", id))
		return
	}
	code := http.StatusOK
	if st.State == manifest.ManifestRunning {
		code = http.StatusAccepted
	}
	writeJSON(w, code, st)
}

// handleManifestCancel is DELETE /v1/manifests/{id}: arms not yet
// started never start and this run's in-flight jobs are canceled. The
// run's record stays queryable; re-posting the manifest afterwards
// starts a fresh run.
func (s *server) handleManifestCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.sched.Cancel(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, st)
	case errors.Is(err, manifest.ErrUnknownManifest):
		writeError(w, http.StatusNotFound, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// handleStats is GET /v1/stats: the manager's cumulative counters
// (submitted/completed/failed/canceled/runs, cache hits/misses/evictions,
// coalesce count) plus instantaneous gauges (queue depth, running jobs,
// cache length). The numbers come from the same snapshot /v1/healthz and
// GET /metrics read.
func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshotStats().Stats)
}

func (s *server) handleRegistry(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"topologies": s.reg.TopologyNames(),
		"drifts":     s.reg.DriftNames(),
		"delays":     s.reg.DelayNames(),
		"attacks":    s.reg.AttackNames(),
		"presets":    []string{spec.DefaultPreset, "paper-strict"},
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshotStats())
}

// statusCode maps a job snapshot to its HTTP status: terminal work
// (done, failed, canceled) is 200, accepted-but-pending work is 202.
func statusCode(st jobs.JobStatus) int {
	switch st.State {
	case jobs.StateDone, jobs.StateFailed, jobs.StateCanceled:
		return http.StatusOK
	default:
		return http.StatusAccepted
	}
}

// submitCode maps submission errors: transient failures (backpressure,
// shutdown, eviction races) are 503 — retry later — everything else is a
// bad request.
func submitCode(err error) int {
	if jobs.Retryable(err) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func boolParam(r *http.Request, name string) bool {
	v := strings.ToLower(r.URL.Query().Get(name))
	return v == "1" || v == "true" || v == "yes"
}

// jsonAppender is the zero-copy response fast path: values that append
// their own canonical JSON (jobs.JobStatus) skip json.Marshal's
// reflective walk and its intermediate allocation. The bytes written are
// identical either way — JobStatus.MarshalJSON routes through the same
// AppendJSON — so this changes cost, never content.
type jsonAppender interface {
	AppendJSON([]byte) ([]byte, error)
}

// respBufs recycles response buffers across requests for the appender
// fast path.
var respBufs = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

func writeJSON(w http.ResponseWriter, code int, v any) {
	if a, ok := v.(jsonAppender); ok {
		bp := respBufs.Get().(*[]byte)
		b, err := a.AppendJSON((*bp)[:0])
		if err == nil {
			b = append(b, '\n')
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			w.Write(b)
			*bp = b
			respBufs.Put(bp)
			return
		}
		respBufs.Put(bp)
		// Encoding failure: fall through so the error path below reports
		// it exactly as the marshal path always has.
	}
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
