package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"ftgcs"
	"ftgcs/internal/admission"
	"ftgcs/internal/cas"
	"ftgcs/internal/jobs"
	"ftgcs/internal/manifest"
)

// newCustomServer is newTestServer for tests that need to pre-configure
// the server struct (admission policy, watch cadences).
func newCustomServer(t *testing.T, o jobs.Options, srv *server) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	if o.Workers == 0 {
		o.Workers = 2
	}
	mgr := jobs.NewManager(o)
	t.Cleanup(mgr.Close)
	sched := manifest.NewScheduler(mgr, ftgcs.DefaultRegistry)
	t.Cleanup(sched.Close)
	srv.mgr, srv.sched, srv.store, srv.reg = mgr, sched, o.Store, ftgcs.DefaultRegistry
	if srv.waitLimit == 0 {
		srv.waitLimit = time.Minute
	}
	ts := httptest.NewServer(newHandler(srv))
	t.Cleanup(ts.Close)
	return ts, mgr
}

// postAs POSTs a body under a client identity (X-Client-ID) and returns
// the status code, the Retry-After header, and the response body.
func postAs(t *testing.T, ts *httptest.Server, path, body, client string) (int, string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set("X-Client-ID", client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Retry-After"), b
}

func seedSpec(seed int) string {
	return fmt.Sprintf(`{"spec": {"topology": {"name": "line", "size": 2}, "seed": %d, "horizon": {"seconds": 3}}}`, seed)
}

// rejection is the 429/503 response body shape the contract promises.
type rejection struct {
	Error     string `json:"error"`
	Retryable bool   `json:"retryable"`
	Scope     string `json:"scope"`
}

// TestAdmissionPerClientFairness is the fairness acceptance proof at the
// HTTP layer: client A saturating its own share is rejected with a 429
// naming scope "client" and a Retry-After window, while client B — first
// seen after A is already cut off — submits unimpeded.
func TestAdmissionPerClientFairness(t *testing.T) {
	frozen := time.Unix(1000, 0)
	tb := admission.NewTokenBucket(admission.TokenBucketOptions{
		Rate: 100, Burst: 100,
		PerClientRate: 1, PerClientBurst: 2,
		Now: func() time.Time { return frozen },
	})
	ts, _ := newCustomServer(t, jobs.Options{}, &server{admit: tb})

	for i := 0; i < 2; i++ {
		if code, _, body := postAs(t, ts, "/v1/experiments", seedSpec(i+1), "client-a"); code != http.StatusAccepted {
			t.Fatalf("A's submission %d within its share: %d %s", i, code, body)
		}
	}
	code, retryAfter, body := postAs(t, ts, "/v1/experiments", seedSpec(3), "client-a")
	if code != http.StatusTooManyRequests {
		t.Fatalf("A's third submission should be 429, got %d %s", code, body)
	}
	if retryAfter != "1" {
		t.Fatalf("Retry-After = %q, want \"1\" (1 token deficit at 1/s, ceiled)", retryAfter)
	}
	var rej rejection
	if err := json.Unmarshal(body, &rej); err != nil {
		t.Fatal(err)
	}
	if !rej.Retryable || rej.Scope != "client" {
		t.Fatalf("429 body must say retryable with scope client: %s", body)
	}

	// B is untouched by A's saturation: full fair share available.
	for i := 0; i < 2; i++ {
		if code, _, body := postAs(t, ts, "/v1/experiments", seedSpec(10+i), "client-b"); code != http.StatusAccepted {
			t.Fatalf("B starved by A (submission %d): %d %s", i, code, body)
		}
	}

	// The rejection is visible, attributed, on /metrics.
	if _, metrics := get(t, ts, "/metrics"); !strings.Contains(string(metrics),
		`ftgcs_admission_rejected_total{scope="client"} 1`) {
		t.Error("client-scoped rejection not counted on /metrics")
	}
}

// TestAdmissionGlobalExhaustion: with only the service-wide bucket
// configured, overflow is a 429 with scope "global"; a batch charges one
// token per item so it cannot slip past the accounting.
func TestAdmissionGlobalExhaustion(t *testing.T) {
	frozen := time.Unix(1000, 0)
	tb := admission.NewTokenBucket(admission.TokenBucketOptions{
		Rate: 1, Burst: 3,
		Now: func() time.Time { return frozen },
	})
	ts, _ := newCustomServer(t, jobs.Options{}, &server{admit: tb})

	// A 2-item batch costs 2 of the 3 tokens.
	batch := `{"experiments": [
		{"spec": {"topology": {"name": "line", "size": 2}, "seed": 1, "horizon": {"seconds": 3}}},
		{"spec": {"topology": {"name": "line", "size": 2}, "seed": 2, "horizon": {"seconds": 3}}}]}`
	if code, _, body := postAs(t, ts, "/v1/experiments", batch, ""); code != http.StatusOK {
		t.Fatalf("batch within budget: %d %s", code, body)
	}
	if code, _, body := postAs(t, ts, "/v1/experiments", seedSpec(3), ""); code != http.StatusAccepted {
		t.Fatalf("third token should admit a single: %d %s", code, body)
	}
	code, retryAfter, body := postAs(t, ts, "/v1/experiments", seedSpec(4), "")
	if code != http.StatusTooManyRequests {
		t.Fatalf("exhausted bucket should 429, got %d %s", code, body)
	}
	if retryAfter == "" {
		t.Fatal("429 missing Retry-After")
	}
	var rej rejection
	if err := json.Unmarshal(body, &rej); err != nil {
		t.Fatal(err)
	}
	if !rej.Retryable || rej.Scope != "global" {
		t.Fatalf("429 body must say retryable with scope global: %s", body)
	}
}

// TestQueueFull503CarriesRetryAfter: the pre-existing backpressure path
// (bounded queue at capacity) now advertises when to come back.
func TestQueueFull503CarriesRetryAfter(t *testing.T) {
	release := make(chan struct{})
	ts, mgr := newCustomServer(t, jobs.Options{Workers: 1, QueueDepth: 1}, &server{})
	mgr.TestHookBeforeRun = func() { <-release }
	defer close(release)

	// One job occupies the worker (held in the hook), one fills the queue;
	// the third hits the wall.
	deadline := time.Now().Add(5 * time.Second)
	seed, got503 := 1, false
	for !got503 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		code, retryAfter, body := postAs(t, ts, "/v1/experiments", seedSpec(seed), "")
		seed++
		if code == http.StatusServiceUnavailable {
			got503 = true
			if retryAfter == "" {
				t.Fatalf("503 missing Retry-After: %s", body)
			}
			var rej rejection
			if err := json.Unmarshal(body, &rej); err != nil {
				t.Fatal(err)
			}
			if !rej.Retryable {
				t.Fatalf("queue-full 503 must be marked retryable: %s", body)
			}
		}
	}
}

// TestDegradationLadderOverHTTP walks the whole ladder through the API:
// healthy → disk failure flips /v1/healthz to "degraded" while jobs keep
// completing and serving from memory → disk heals → a cooldown probe
// write flips healthz back to "ok".
func TestDegradationLadderOverHTTP(t *testing.T) {
	ffs := &cas.FaultFS{}
	store, err := cas.Open(t.TempDir(), cas.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	ts, mgr := newCustomServer(t, jobs.Options{
		Workers: 1, Store: store,
		StoreRetries: 1, StoreRetryBackoff: time.Millisecond,
		StoreFailureThreshold: 1, StoreCooldown: 20 * time.Millisecond,
	}, &server{})

	healthStatus := func() string {
		t.Helper()
		_, body := get(t, ts, "/v1/healthz")
		var snap struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatal(err)
		}
		return snap.Status
	}
	waitStatus := func(want string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for healthStatus() != want {
			if time.Now().After(deadline) {
				t.Fatalf("healthz never reported %q", want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	if got := healthStatus(); got != "ok" {
		t.Fatalf("healthy service reports %q", got)
	}

	// Rung 1: the disk dies; the breaker opens; healthz says so.
	ffs.FailWrites(syscall.ENOSPC)
	if code, body := post(t, ts, "/v1/experiments?wait=true", seedSpec(1)); code != http.StatusOK {
		t.Fatalf("job under disk failure: %d %s", code, body)
	}
	waitStatus("degraded")

	// Rung 2: degraded ≠ down. Fresh work completes; completed work
	// serves as a memory-tier hit.
	if code, body := post(t, ts, "/v1/experiments?wait=true", seedSpec(2)); code != http.StatusOK {
		t.Fatalf("job while degraded: %d %s", code, body)
	}
	var hit statusView
	_, body := post(t, ts, "/v1/experiments?wait=true", seedSpec(1))
	if err := json.Unmarshal(body, &hit); err != nil {
		t.Fatal(err)
	}
	if hit.Cached != "memory" || hit.State != "done" {
		t.Fatalf("degraded manager should serve from memory: %s", body)
	}
	if s := mgr.Stats(); s.StoreErrors == 0 || s.DiskStored != 0 {
		t.Fatalf("degraded stats inconsistent: %+v", s)
	}

	// Rung 3: the disk heals; after the cooldown the next result probes,
	// succeeds, and the breaker closes.
	ffs.Heal()
	time.Sleep(30 * time.Millisecond)
	if code, body := post(t, ts, "/v1/experiments?wait=true", seedSpec(3)); code != http.StatusOK {
		t.Fatalf("job after heal: %d %s", code, body)
	}
	waitStatus("ok")
	deadline := time.Now().Add(5 * time.Second)
	for mgr.Stats().DiskStored == 0 {
		if time.Now().After(deadline) {
			t.Fatal("durability did not resume after recovery")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// jobID extracts the "id" field of a response body.
func jobID(t *testing.T, body []byte) string {
	t.Helper()
	var st statusView
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

// TestWatchKeepaliveWhileQueued: a ?watch=true stream on a job stuck in
// the queue emits periodic SSE keepalive comments (so proxies and client
// read-timeouts do not kill an idle stream), then the normal done event
// once the job runs.
func TestWatchKeepaliveWhileQueued(t *testing.T) {
	release := make(chan struct{})
	ts, mgr := newCustomServer(t, jobs.Options{Workers: 1}, &server{
		watchPoll:      time.Hour, // no progress sampling: keepalives are all the idle stream has
		watchKeepalive: 5 * time.Millisecond,
	})
	mgr.TestHookBeforeRun = func() { <-release }

	code, _, body := postAs(t, ts, "/v1/experiments", seedSpec(1), "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	id := jobID(t, body)

	resp, err := http.Get(ts.URL + "/v1/experiments/" + id + "?watch=true")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// The job is parked (worker held, or queued behind the held worker):
	// the stream must still carry keepalive comments.
	sc := bufio.NewScanner(resp.Body)
	keepalives, released := 0, false
	var sawDone bool
	for sc.Scan() {
		line := sc.Text()
		if line == ": keepalive" {
			keepalives++
		}
		if keepalives >= 2 && !released {
			close(release) // let the job run; the stream should now finish
			released = true
		}
		if strings.HasPrefix(line, "event: done") {
			sawDone = true
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if keepalives < 2 {
		t.Fatalf("saw %d keepalive comments, want ≥ 2", keepalives)
	}
	if !sawDone {
		t.Fatal("stream ended without the done event")
	}
}
