package main

import (
	"container/list"
	"sync"

	"ftgcs/internal/jobs"
)

// maxMemoBody bounds which request bodies are memoized: load generators
// and polling clients resubmit small single-spec payloads verbatim, and
// those are exactly the bodies worth a byte-keyed fast path. Oversized
// bodies always take the decode path.
const maxMemoBody = 64 << 10

// bodyMemo maps exact raw POST /v1/experiments bodies to the prepared
// submission they decoded to. A hit skips JSON decoding, canonical
// re-marshaling and SHA-256 hashing entirely — the mapping from bytes to
// job identity is deterministic, so byte-identical input always yields
// the memoized PreparedRequest. Only bodies that successfully prepared
// as a single spec are stored; error outcomes and batches are never
// memoized, so the memo can only skip work, never change an answer.
type bodyMemo struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type memoEntry struct {
	key string
	p   jobs.PreparedRequest
}

func newBodyMemo(capacity int) *bodyMemo {
	if capacity <= 0 {
		capacity = 512
	}
	return &bodyMemo{cap: capacity, ll: list.New(), m: make(map[string]*list.Element, capacity)}
}

func (bm *bodyMemo) get(body []byte) (jobs.PreparedRequest, bool) {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	e, ok := bm.m[string(body)] // byte→string map lookup does not allocate
	if !ok {
		return jobs.PreparedRequest{}, false
	}
	bm.ll.MoveToFront(e)
	return e.Value.(*memoEntry).p, true
}

func (bm *bodyMemo) put(body []byte, p jobs.PreparedRequest) {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	if e, ok := bm.m[string(body)]; ok {
		bm.ll.MoveToFront(e)
		e.Value.(*memoEntry).p = p
		return
	}
	key := string(body)
	bm.m[key] = bm.ll.PushFront(&memoEntry{key: key, p: p})
	if bm.ll.Len() > bm.cap {
		oldest := bm.ll.Back()
		bm.ll.Remove(oldest)
		delete(bm.m, oldest.Value.(*memoEntry).key)
	}
}
