// ftgcs-serve fronts the FTGCS sweep engine with a JSON-over-HTTP
// experiment service. Scenarios arrive as declarative specs (the same
// codec as `ftgcs-sim -spec`), are content-addressed by the SHA-256 of
// their canonical encoding, and run through an async job manager that
// dedupes identical submissions, caches results in an LRU, and can fan a
// spec across N seeds with aggregated statistics.
//
//	ftgcs-serve -addr :8080
//
//	# submit, blocking until done
//	curl -X POST 'localhost:8080/v1/experiments?wait=true' \
//	     -d '{"spec": {"topology": {"name": "line", "size": 3}, "seed": 1}}'
//
//	# the same submission again: served from cache, byte-identical result
//	curl -X POST 'localhost:8080/v1/experiments?wait=true' -d @same.json
//
//	# poll by content-addressed job ID (running jobs carry progress)
//	curl localhost:8080/v1/experiments/sha256:...
//
//	# cancel a queued or running job (never cached; resubmit reruns)
//	curl -X DELETE localhost:8080/v1/experiments/sha256:...
//
//	# what the registry knows; how the service is doing
//	curl localhost:8080/v1/registry
//	curl localhost:8080/v1/stats
//
//	# observability: Prometheus metrics, per-job lifecycle trace, live SSE watch
//	curl localhost:8080/metrics
//	curl localhost:8080/v1/experiments/sha256:.../trace
//	curl -N 'localhost:8080/v1/experiments/sha256:...?watch=true'
//
// With -store DIR, completed results also persist to an on-disk
// content-addressed store and survive restarts: resubmitting a spec (or
// a whole manifest) a process lifetime later serves the stored bytes
// ("cached":"disk") instead of recomputing.
//
//	# submit a whole experiment grid (arms × axes × seeds, dependency-ordered)
//	curl -X POST 'localhost:8080/v1/manifests?wait=true' -d @examples/manifests/e1-grid.json
//	curl localhost:8080/v1/manifests/sha256:...
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ftgcs"
	"ftgcs/internal/admission"
	"ftgcs/internal/cas"
	"ftgcs/internal/jobs"
	"ftgcs/internal/manifest"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ftgcs-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ftgcs-serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	workers := fs.Int("workers", 2, "concurrent job executors")
	queue := fs.Int("queue", 64, "pending-job queue depth (full queue → 503)")
	cache := fs.Int("cache", 128, "result LRU capacity (entries)")
	shards := fs.Int("shards", 0, "job-index shard count; submissions and lookups stripe across shard locks (0 = default 16)")
	poolSize := fs.Int("pool-size", 0, "cross-job arena pool capacity in built systems (0 = default 8)")
	sweepWorkers := fs.Int("sweep-workers", 0, "per-job sweep pool size for replicated specs (0 = GOMAXPROCS)")
	waitLimit := fs.Duration("wait-limit", 2*time.Minute, "maximum blocking time for ?wait=true requests")
	runLimit := fs.Duration("run-limit", 0, "per-job wall-clock budget; a job running longer is canceled (0 = unlimited)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown timeout: in-flight jobs are canceled, connections drained")
	storeDir := fs.String("store", "", "durable result store directory; completed results persist across restarts (empty = memory only)")
	storeMaxBytes := fs.Int64("store-max-bytes", 0, "on-disk store size budget; least-recently-used results are evicted (0 = unbounded)")
	storeMaxAge := fs.Duration("store-max-age", 0, "evict stored results not accessed for this long (0 = keep forever)")
	admitRate := fs.Float64("admit-rate", 0, "service-wide admission rate in submissions/s; excess gets 429 + Retry-After (0 = no admission control)")
	admitBurst := fs.Float64("admit-burst", 0, "admission burst capacity in tokens (0 = max(admit-rate, 1))")
	admitPerClient := fs.Float64("admit-per-client", 0, "per-client fair-share rate in submissions/s, keyed by X-Client-ID or remote host (0 = global bucket only)")
	pprofFlag := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var store *cas.Store
	if *storeDir != "" {
		var err error
		store, err = cas.Open(*storeDir, cas.Options{MaxBytes: *storeMaxBytes, MaxAge: *storeMaxAge})
		if err != nil {
			return fmt.Errorf("open result store: %w", err)
		}
	}

	mgr := jobs.NewManager(jobs.Options{
		Registry:     ftgcs.DefaultRegistry,
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheSize:    *cache,
		Shards:       *shards,
		PoolSize:     *poolSize,
		SweepWorkers: *sweepWorkers,
		RunLimit:     *runLimit,
		Store:        store,
	})
	defer mgr.Close()
	sched := manifest.NewScheduler(mgr, ftgcs.DefaultRegistry)
	defer sched.Close()

	var admit admission.Policy
	if *admitRate > 0 {
		admit = admission.NewTokenBucket(admission.TokenBucketOptions{
			Rate:          *admitRate,
			Burst:         *admitBurst,
			PerClientRate: *admitPerClient,
		})
	}

	handler := newHandler(&server{mgr: mgr, sched: sched, store: store, reg: ftgcs.DefaultRegistry, waitLimit: *waitLimit, enablePprof: *pprofFlag, admit: admit})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address line is machine-readable on purpose: the CI
	// smoke script boots on :0 and scrapes the port from here.
	fmt.Printf("ftgcs-serve listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Stop manifest drivers, then close the manager: Close cancels
		// in-flight runs (workers drain within a few simulation events),
		// flushes completed results to the store, and releases every
		// blocked ?wait=true request, so Shutdown can finish inside the
		// drain timeout instead of stalling behind long simulations.
		sched.Close()
		mgr.Close()
		return srv.Shutdown(shutdownCtx)
	}
}
