// ftgcs-serve fronts the FTGCS sweep engine with a JSON-over-HTTP
// experiment service. Scenarios arrive as declarative specs (the same
// codec as `ftgcs-sim -spec`), are content-addressed by the SHA-256 of
// their canonical encoding, and run through an async job manager that
// dedupes identical submissions, caches results in an LRU, and can fan a
// spec across N seeds with aggregated statistics.
//
//	ftgcs-serve -addr :8080
//
//	# submit, blocking until done
//	curl -X POST 'localhost:8080/v1/experiments?wait=true' \
//	     -d '{"spec": {"topology": {"name": "line", "size": 3}, "seed": 1}}'
//
//	# the same submission again: served from cache, byte-identical result
//	curl -X POST 'localhost:8080/v1/experiments?wait=true' -d @same.json
//
//	# poll by content-addressed job ID (running jobs carry progress)
//	curl localhost:8080/v1/experiments/sha256:...
//
//	# cancel a queued or running job (never cached; resubmit reruns)
//	curl -X DELETE localhost:8080/v1/experiments/sha256:...
//
//	# what the registry knows; how the service is doing
//	curl localhost:8080/v1/registry
//	curl localhost:8080/v1/stats
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ftgcs"
	"ftgcs/internal/jobs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ftgcs-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ftgcs-serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	workers := fs.Int("workers", 2, "concurrent job executors")
	queue := fs.Int("queue", 64, "pending-job queue depth (full queue → 503)")
	cache := fs.Int("cache", 128, "result LRU capacity (entries)")
	sweepWorkers := fs.Int("sweep-workers", 0, "per-job sweep pool size for replicated specs (0 = GOMAXPROCS)")
	waitLimit := fs.Duration("wait-limit", 2*time.Minute, "maximum blocking time for ?wait=true requests")
	runLimit := fs.Duration("run-limit", 0, "per-job wall-clock budget; a job running longer is canceled (0 = unlimited)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown timeout: in-flight jobs are canceled, connections drained")
	if err := fs.Parse(args); err != nil {
		return err
	}

	mgr := jobs.NewManager(jobs.Options{
		Registry:     ftgcs.DefaultRegistry,
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheSize:    *cache,
		SweepWorkers: *sweepWorkers,
		RunLimit:     *runLimit,
	})
	defer mgr.Close()

	handler := newHandler(&server{mgr: mgr, reg: ftgcs.DefaultRegistry, waitLimit: *waitLimit})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address line is machine-readable on purpose: the CI
	// smoke script boots on :0 and scrapes the port from here.
	fmt.Printf("ftgcs-serve listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Close the manager first: it cancels in-flight runs (workers
		// drain within a few simulation events) and releases every
		// blocked ?wait=true request, so Shutdown can finish inside the
		// drain timeout instead of stalling behind long simulations.
		mgr.Close()
		return srv.Shutdown(shutdownCtx)
	}
}
