package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ftgcs"
	"ftgcs/internal/jobs"
	"ftgcs/internal/manifest"
)

// newObserveServer is newTestServer with a fast watch poll so SSE tests
// do not sleep through 100ms sampling ticks.
func newObserveServer(t *testing.T, o jobs.Options) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	if o.Workers == 0 {
		o.Workers = 2
	}
	mgr := jobs.NewManager(o)
	t.Cleanup(mgr.Close)
	sched := manifest.NewScheduler(mgr, ftgcs.DefaultRegistry)
	t.Cleanup(sched.Close)
	srv := &server{mgr: mgr, sched: sched, store: o.Store, reg: ftgcs.DefaultRegistry,
		waitLimit: time.Minute, watchPoll: 2 * time.Millisecond}
	ts := httptest.NewServer(newHandler(srv))
	t.Cleanup(ts.Close)
	return ts, mgr
}

// TestMetricsEndpoint: after one full job, GET /metrics exposes the job
// lifecycle counters, the queue-wait histogram and the HTTP latency
// histogram labeled by route pattern — in Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newObserveServer(t, jobs.Options{})
	if code, body := post(t, ts, "/v1/experiments?wait=true", lineSpec); code != http.StatusOK {
		t.Fatalf("POST: %d %s", code, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := readAll(t, resp)

	for _, want := range []string{
		"# TYPE ftgcs_jobs_submitted_total counter",
		"ftgcs_jobs_submitted_total 1",
		"ftgcs_jobs_runs_total 1",
		`ftgcs_jobs_terminal_total{state="done"} 1`,
		"# TYPE ftgcs_jobs_queue_wait_seconds histogram",
		"ftgcs_jobs_queue_wait_seconds_count 1",
		`ftgcs_jobs_run_duration_seconds_count{outcome="done"} 1`,
		"# TYPE ftgcs_jobs_queue_depth gauge",
		"# TYPE ftgcs_http_request_duration_seconds histogram",
		`route="POST /v1/experiments"`,
		`status="2xx"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestTraceEndpoint: a replicated job's trace walks the whole lifecycle
// in order — submitted → queued → building → running[replicate i/n] →
// aggregating → done — with every span closed; unknown IDs are 404.
func TestTraceEndpoint(t *testing.T) {
	ts, _ := newObserveServer(t, jobs.Options{})
	spec := `{"spec": {"topology": {"name": "line", "size": 2}, "seed": 1, "horizon": {"seconds": 3}}, "replicate": 2}`
	code, body := post(t, ts, "/v1/experiments?wait=true", spec)
	if code != http.StatusOK {
		t.Fatalf("POST: %d %s", code, body)
	}
	var st statusView
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	code, body = get(t, ts, "/v1/experiments/"+st.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET trace: %d %s", code, body)
	}
	var info struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Spans []struct {
			Name     string  `json:"name"`
			Duration float64 `json:"durationSeconds"`
			Open     bool    `json:"open"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID != st.ID || info.State != "done" {
		t.Fatalf("trace envelope: %s", body)
	}
	var names []string
	for _, sp := range info.Spans {
		if sp.Open {
			t.Errorf("span %q still open in a terminal trace", sp.Name)
		}
		if sp.Duration < 0 {
			t.Errorf("span %q has negative duration %v", sp.Name, sp.Duration)
		}
		names = append(names, sp.Name)
	}
	want := []string{"submitted", "queued", "building",
		"running[replicate 1/2]", "running[replicate 2/2]", "aggregating", "done"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("span names = %v, want %v", names, want)
	}

	if code, _ := get(t, ts, "/v1/experiments/sha256:nope/trace"); code != http.StatusNotFound {
		t.Errorf("unknown trace: %d, want 404", code)
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	event string
	data  string
}

// readSSE consumes a stream until EOF, returning the events in order.
func readSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" || cur.data != "" {
				events = append(events, cur)
				cur = sseEvent{}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return events
}

// TestWatchTerminalJob: watching an already-completed job yields exactly
// one "done" event carrying the terminal snapshot, then the stream ends.
func TestWatchTerminalJob(t *testing.T) {
	ts, _ := newObserveServer(t, jobs.Options{})
	code, body := post(t, ts, "/v1/experiments?wait=true", lineSpec)
	if code != http.StatusOK {
		t.Fatalf("POST: %d %s", code, body)
	}
	var st statusView
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/experiments/" + st.ID + "?watch=true")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := readSSE(t, resp)
	if len(events) != 1 || events[0].event != "done" {
		t.Fatalf("want single done event, got %+v", events)
	}
	var final statusView
	if err := json.Unmarshal([]byte(events[0].data), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.ID != st.ID {
		t.Errorf("terminal snapshot = %s", events[0].data)
	}
}

// TestWatchStreamsUntilTerminal: watching a live job opens with a
// "state" event, streams ordered events while the job runs, and always
// terminates with a "done" event carrying the terminal state — here
// "canceled", exercising the done-channel wakeup rather than a poll.
func TestWatchStreamsUntilTerminal(t *testing.T) {
	ts, _ := newObserveServer(t, jobs.Options{Workers: 1})
	// A horizon long enough that the job is still running when the DELETE
	// lands; cancellation is bounded by a handful of simulation events.
	long := `{"spec": {"topology": {"name": "line", "size": 2}, "seed": 9, "horizon": {"seconds": 100000}}}`
	code, body := post(t, ts, "/v1/experiments", long)
	if code != http.StatusAccepted {
		t.Fatalf("POST: %d %s", code, body)
	}
	var st statusView
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/experiments/" + st.ID + "?watch=true")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Parse the stream incrementally: after the first event arrives,
	// cancel the job so the stream must terminate with "done".
	sc := bufio.NewScanner(resp.Body)
	var events []sseEvent
	var cur sseEvent
	canceled := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			events = append(events, cur)
			cur = sseEvent{}
			if !canceled {
				canceled = true
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/experiments/"+st.ID, nil)
				if _, err := http.DefaultClient.Do(req); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}

	if len(events) < 2 {
		t.Fatalf("want at least state+done events, got %+v", events)
	}
	if events[0].event != "state" {
		t.Errorf("first event = %q, want state", events[0].event)
	}
	last := events[len(events)-1]
	if last.event != "done" {
		t.Fatalf("last event = %q, want done (events: %+v)", last.event, events)
	}
	for _, e := range events[:len(events)-1] {
		if e.event == "done" {
			t.Errorf("done event before end of stream: %+v", events)
		}
	}
	var final statusView
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != "canceled" {
		t.Errorf("terminal state = %q, want canceled", final.State)
	}
}

// TestWatchUnknownJob: watch on an unknown ID is a plain JSON 404, not a
// stream.
func TestWatchUnknownJob(t *testing.T) {
	ts, _ := newObserveServer(t, jobs.Options{})
	code, body := get(t, ts, "/v1/experiments/sha256:nope?watch=true")
	if code != http.StatusNotFound {
		t.Fatalf("watch unknown: %d %s", code, body)
	}
}

// TestStatsHealthzShareSnapshot: /v1/healthz embeds the same stats
// object /v1/stats serves, both derived from the telemetry registry.
func TestStatsHealthzShareSnapshot(t *testing.T) {
	ts, mgr := newObserveServer(t, jobs.Options{})
	if code, body := post(t, ts, "/v1/experiments?wait=true", lineSpec); code != http.StatusOK {
		t.Fatalf("POST: %d %s", code, body)
	}

	var flat jobs.Stats
	if code, body := get(t, ts, "/v1/stats"); code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	} else if err := json.Unmarshal(body, &flat); err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string     `json:"status"`
		Stats  jobs.Stats `json:"stats"`
	}
	if code, body := get(t, ts, "/v1/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, body)
	} else if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Errorf("healthz status = %q", health.Status)
	}
	// The cumulative counters agree across the JSON views and the manager
	// (gauges can legitimately differ between two instants).
	for _, s := range []jobs.Stats{flat, health.Stats, mgr.Stats()} {
		if s.Submitted != 1 || s.Runs != 1 || s.Completed != 1 {
			t.Errorf("counters disagree: %+v", s)
		}
	}
}

// TestPprofGated: /debug/pprof/ is 404 without -pprof and serves the
// index with it.
func TestPprofGated(t *testing.T) {
	ts, _ := newObserveServer(t, jobs.Options{})
	if code, _ := get(t, ts, "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof without flag: %d, want 404", code)
	}

	mgr := jobs.NewManager(jobs.Options{Workers: 1})
	t.Cleanup(mgr.Close)
	sched := manifest.NewScheduler(mgr, ftgcs.DefaultRegistry)
	t.Cleanup(sched.Close)
	on := httptest.NewServer(newHandler(&server{mgr: mgr, sched: sched, reg: ftgcs.DefaultRegistry,
		waitLimit: time.Minute, enablePprof: true}))
	t.Cleanup(on.Close)
	if code, body := get(t, on, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof with flag: %d %s", code, body)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
