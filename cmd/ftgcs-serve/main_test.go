package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ftgcs"
	"ftgcs/internal/jobs"
	"ftgcs/internal/manifest"
)

func newTestServer(t *testing.T, o jobs.Options) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	if o.Workers == 0 {
		o.Workers = 2
	}
	mgr := jobs.NewManager(o)
	t.Cleanup(mgr.Close)
	sched := manifest.NewScheduler(mgr, ftgcs.DefaultRegistry)
	t.Cleanup(sched.Close)
	ts := httptest.NewServer(newHandler(&server{mgr: mgr, sched: sched, store: o.Store, reg: ftgcs.DefaultRegistry, waitLimit: time.Minute}))
	t.Cleanup(ts.Close)
	return ts, mgr
}

const lineSpec = `{"spec": {"topology": {"name": "line", "size": 2}, "seed": 1, "horizon": {"seconds": 3}}}`

func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// statusView decodes only the envelope fields; result stays raw so byte
// identity can be asserted exactly.
type statusView struct {
	ID       string          `json:"id"`
	SpecHash string          `json:"specHash"`
	State    string          `json:"state"`
	Cached   string          `json:"cached"`
	Result   json.RawMessage `json:"result"`
	Error    string          `json:"error"`
}

// TestSubmitTwiceIsCacheHitByteIdentical is the acceptance test:
// submitting the same spec twice runs the simulation once — the second
// POST returns a cache-hit marker and byte-identical result JSON.
func TestSubmitTwiceIsCacheHitByteIdentical(t *testing.T) {
	ts, mgr := newTestServer(t, jobs.Options{})

	code1, body1 := post(t, ts, "/v1/experiments?wait=true", lineSpec)
	if code1 != http.StatusOK {
		t.Fatalf("first POST: %d %s", code1, body1)
	}
	var st1 statusView
	if err := json.Unmarshal(body1, &st1); err != nil {
		t.Fatal(err)
	}
	if st1.State != "done" || st1.Cached != "" || len(st1.Result) == 0 {
		t.Fatalf("first POST should complete fresh: %+v", st1)
	}

	code2, body2 := post(t, ts, "/v1/experiments?wait=true", lineSpec)
	if code2 != http.StatusOK {
		t.Fatalf("second POST: %d %s", code2, body2)
	}
	var st2 statusView
	if err := json.Unmarshal(body2, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.Cached != "memory" {
		t.Fatalf("second POST must be a cache hit: %s", body2)
	}
	if st2.ID != st1.ID {
		t.Fatalf("content-addressed IDs differ: %s vs %s", st2.ID, st1.ID)
	}
	if !bytes.Equal(st1.Result, st2.Result) {
		t.Fatalf("cache hit result not byte-identical:\n%s\n%s", st1.Result, st2.Result)
	}
	// The full responses differ only in the cache-hit marker.
	norm := bytes.Replace(body2, []byte(`,"cached":"memory"`), nil, 1)
	if !bytes.Equal(body1, norm) {
		t.Fatalf("responses differ beyond the cached marker:\n%s\n%s", body1, body2)
	}
	if s := mgr.Stats(); s.Runs != 1 {
		t.Fatalf("simulation must run exactly once, ran %d times", s.Runs)
	}
}

// TestConcurrentSubmissionsRunOnce: many clients POST the same spec at
// once; the work coalesces onto one run and everyone gets identical
// result bytes.
func TestConcurrentSubmissionsRunOnce(t *testing.T) {
	ts, mgr := newTestServer(t, jobs.Options{Workers: 4})

	const clients = 12
	results := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/experiments?wait=true", "application/json", strings.NewReader(lineSpec))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			var st statusView
			if err := json.Unmarshal(body, &st); err != nil {
				errs[i] = fmt.Errorf("%w: %s", err, body)
				return
			}
			if st.State != "done" {
				errs[i] = fmt.Errorf("state %q", st.State)
				return
			}
			results[i] = st.Result
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("client %d saw different result bytes", i)
		}
	}
	if s := mgr.Stats(); s.Runs != 1 {
		t.Fatalf("concurrent identical submissions must run once, ran %d times", s.Runs)
	}
}

// TestCoalescedWaitCarriesCallerName: a ?wait=true submission that
// coalesces onto another submitter's in-flight job must get its own
// display name back, not the first submitter's.
func TestCoalescedWaitCarriesCallerName(t *testing.T) {
	mgr := jobs.NewManager(jobs.Options{Workers: 1})
	defer mgr.Close()
	gate := make(chan struct{})
	var once sync.Once
	openGate := func() { once.Do(func() { close(gate) }) }
	defer openGate()
	mgr.TestHookBeforeRun = func() { <-gate }
	ts := httptest.NewServer(newHandler(&server{mgr: mgr, reg: ftgcs.DefaultRegistry, waitLimit: time.Minute}))
	defer ts.Close()

	// Submitter "alpha" goes first, async; the gated worker holds its job
	// in flight.
	code, _ := post(t, ts, "/v1/experiments",
		`{"spec":{"name":"alpha","topology":{"name":"line","size":2},"seed":77,"horizon":{"seconds":3}}}`)
	if code != http.StatusAccepted {
		t.Fatalf("async POST should 202: %d", code)
	}

	// Submitter "beta" coalesces and blocks for the result.
	type reply struct {
		code int
		body []byte
		err  error
	}
	ch := make(chan reply, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/experiments?wait=true", "application/json",
			strings.NewReader(`{"spec":{"name":"beta","topology":{"name":"line","size":2},"seed":77,"horizon":{"seconds":3}}}`))
		if err != nil {
			ch <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		ch <- reply{code: resp.StatusCode, body: b, err: err}
	}()
	// Release the worker only once beta has attached to alpha's job.
	for mgr.Stats().Coalesced == 0 {
		time.Sleep(time.Millisecond)
	}
	openGate()

	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	var st struct {
		State  string `json:"state"`
		Result struct {
			Name string `json:"name"`
		} `json:"result"`
	}
	if err := json.Unmarshal(r.body, &st); err != nil {
		t.Fatal(err)
	}
	if r.code != http.StatusOK || st.State != "done" {
		t.Fatalf("coalesced wait: %d %s", r.code, r.body)
	}
	if st.Result.Name != "beta" {
		t.Fatalf("coalesced waiter got result named %q, want its own \"beta\":\n%s", st.Result.Name, r.body)
	}
}

// TestBatchMarksRetryableBackpressure: batch items rejected by the full
// queue are transient failures and must be marked retryable, unlike
// deterministic spec failures.
func TestBatchMarksRetryableBackpressure(t *testing.T) {
	mgr := jobs.NewManager(jobs.Options{Workers: 1, QueueDepth: 1})
	defer mgr.Close()
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	var once sync.Once
	openGate := func() { once.Do(func() { close(gate) }) }
	defer openGate()
	mgr.TestHookBeforeRun = func() {
		entered <- struct{}{}
		<-gate
	}
	ts := httptest.NewServer(newHandler(&server{mgr: mgr, reg: ftgcs.DefaultRegistry, waitLimit: time.Minute}))
	defer ts.Close()

	// Occupy the single worker first — once it is gated inside the hook
	// the queue can no longer drain — then fill the one-slot queue until
	// the single-spec path reports backpressure (503).
	if code, body := post(t, ts, "/v1/experiments",
		`{"spec":{"topology":{"name":"line","size":2},"seed":60,"horizon":{"seconds":3}}}`); code != http.StatusAccepted {
		t.Fatalf("occupying submit: %d %s", code, body)
	}
	<-entered
	for seed := int64(61); ; seed++ {
		code, _ := post(t, ts, "/v1/experiments",
			fmt.Sprintf(`{"spec":{"topology":{"name":"line","size":2},"seed":%d,"horizon":{"seconds":3}}}`, seed))
		if code == http.StatusServiceUnavailable {
			break
		}
		if code != http.StatusAccepted {
			t.Fatalf("filler submit: %d", code)
		}
	}

	type item struct {
		State     string `json:"state"`
		Error     string `json:"error"`
		Retryable bool   `json:"retryable"`
	}
	postBatch := func(payload string) []item {
		t.Helper()
		code, body := post(t, ts, "/v1/experiments", payload)
		if code != http.StatusOK {
			t.Fatalf("batch POST: %d %s", code, body)
		}
		var out struct {
			Jobs []item `json:"jobs"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out.Jobs
	}

	// Under backpressure every non-cached item sheds as retryable (load
	// shedding fast-fails before validation).
	jobsOut := postBatch(`{"experiments":[{"spec":{"topology":{"name":"line","size":2},"seed":90,"horizon":{"seconds":3}}}]}`)
	if len(jobsOut) != 1 || jobsOut[0].State != "failed" || !jobsOut[0].Retryable || !strings.Contains(jobsOut[0].Error, "queue full") {
		t.Fatalf("backpressured item must be failed+retryable: %+v", jobsOut)
	}

	// Once the queue drains, a deterministic spec failure is final — not
	// retryable.
	openGate()
	for {
		if s := mgr.Stats(); s.Queued == 0 && s.Running == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	jobsOut = postBatch(`{"experiments":[{"spec":{"topology":{"name":"moebius","size":3}}}]}`)
	if len(jobsOut) != 1 || jobsOut[0].State != "failed" || jobsOut[0].Retryable || !strings.Contains(jobsOut[0].Error, "unknown topology") {
		t.Fatalf("deterministic failure must not be retryable: %+v", jobsOut)
	}
}

func TestAsyncSubmitAndPoll(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{})

	code, body := post(t, ts, "/v1/experiments", lineSpec)
	if code != http.StatusAccepted {
		t.Fatalf("async POST should 202: %d %s", code, body)
	}
	var st statusView
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "queued" && st.State != "running" {
		t.Fatalf("async submission state: %+v", st)
	}

	code, body = get(t, ts, "/v1/experiments/"+st.ID+"?wait=true")
	if code != http.StatusOK {
		t.Fatalf("poll: %d %s", code, body)
	}
	var final statusView
	if err := json.Unmarshal(body, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || len(final.Result) == 0 {
		t.Fatalf("poll result: %+v", final)
	}
}

func TestBatchSubmit(t *testing.T) {
	ts, mgr := newTestServer(t, jobs.Options{})

	batch := `{"experiments": [
		{"spec": {"topology": {"name": "line", "size": 2}, "seed": 11, "horizon": {"seconds": 3}}},
		{"spec": {"topology": {"name": "ring", "size": 3}, "seed": 12, "horizon": {"seconds": 3}}},
		{"spec": {"topology": {"name": "moebius", "size": 3}}}
	]}`
	code, body := post(t, ts, "/v1/experiments?wait=true", batch)
	if code != http.StatusOK {
		t.Fatalf("batch POST: %d %s", code, body)
	}
	var out struct {
		Jobs []statusView `json:"jobs"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 3 {
		t.Fatalf("want 3 batch entries, got %d", len(out.Jobs))
	}
	if out.Jobs[0].State != "done" || out.Jobs[1].State != "done" {
		t.Fatalf("valid batch entries should complete: %+v", out.Jobs[:2])
	}
	if out.Jobs[2].State != "failed" || !strings.Contains(out.Jobs[2].Error, "unknown topology") {
		t.Fatalf("invalid batch entry should fail in place: %+v", out.Jobs[2])
	}
	if s := mgr.Stats(); s.Runs != 2 {
		t.Fatalf("want 2 runs, got %+v", s)
	}
}

func TestReplicatedSubmit(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{})

	body := `{"spec": {"topology": {"name": "line", "size": 2}, "seed": 21, "horizon": {"seconds": 3}}, "replicate": 3}`
	code, resp := post(t, ts, "/v1/experiments?wait=true", body)
	if code != http.StatusOK {
		t.Fatalf("replicated POST: %d %s", code, resp)
	}
	var st struct {
		State  string `json:"state"`
		Result struct {
			Replicates struct {
				N         int     `json:"n"`
				Seeds     []int64 `json:"seeds"`
				Aggregate struct {
					LocalSkew struct {
						N    int     `json:"n"`
						Mean float64 `json:"mean"`
					} `json:"localSkew"`
				} `json:"aggregate"`
			} `json:"replicates"`
		} `json:"result"`
	}
	if err := json.Unmarshal(resp, &st); err != nil {
		t.Fatal(err)
	}
	r := st.Result.Replicates
	if st.State != "done" || r.N != 3 || len(r.Seeds) != 3 || r.Aggregate.LocalSkew.N != 3 {
		t.Fatalf("replicated result wrong: %s", resp)
	}
	if r.Aggregate.LocalSkew.Mean <= 0 {
		t.Fatalf("aggregate mean should be positive: %s", resp)
	}
}

func TestRegistryAndHealth(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{})

	code, body := get(t, ts, "/v1/registry")
	if code != http.StatusOK {
		t.Fatalf("registry: %d", code)
	}
	var reg struct {
		Topologies []string `json:"topologies"`
		Drifts     []string `json:"drifts"`
		Delays     []string `json:"delays"`
		Attacks    []string `json:"attacks"`
		Presets    []string `json:"presets"`
	}
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatal(err)
	}
	has := func(xs []string, want string) bool {
		for _, x := range xs {
			if x == want {
				return true
			}
		}
		return false
	}
	if !has(reg.Topologies, "torus") || !has(reg.Drifts, "sine") || !has(reg.Delays, "uniform") || len(reg.Attacks) == 0 {
		t.Fatalf("registry listing incomplete: %s", body)
	}

	code, body = get(t, ts, "/v1/healthz")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"status":"ok"`)) {
		t.Fatalf("healthz: %d %s", code, body)
	}
}

func TestErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{})

	// Unknown registry name → 400 with the registry's error.
	code, body := post(t, ts, "/v1/experiments", `{"spec": {"topology": {"name": "moebius", "size": 3}}}`)
	if code != http.StatusBadRequest || !bytes.Contains(body, []byte("unknown topology")) {
		t.Fatalf("unknown name: %d %s", code, body)
	}
	// Schema typo → 400 (unknown fields rejected).
	code, body = post(t, ts, "/v1/experiments", `{"spec": {"topology": {"name": "line", "size": 3}, "sede": 1}}`)
	if code != http.StatusBadRequest {
		t.Fatalf("typo field: %d %s", code, body)
	}
	// Malformed JSON → 400.
	code, _ = post(t, ts, "/v1/experiments", `{`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", code)
	}
	// Neither spec nor experiments → 400; so is an empty batch.
	code, _ = post(t, ts, "/v1/experiments", `{}`)
	if code != http.StatusBadRequest {
		t.Fatalf("empty envelope: %d", code)
	}
	code, _ = post(t, ts, "/v1/experiments", `{"experiments":[]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d", code)
	}
	// Oversized topology → 400 via the spec resource bounds.
	code, body = post(t, ts, "/v1/experiments", `{"spec": {"topology": {"name": "clique", "size": 1000000}}}`)
	if code != http.StatusBadRequest || !bytes.Contains(body, []byte("exceeds limit")) {
		t.Fatalf("oversized topology: %d %s", code, body)
	}
	// Unknown job → 404.
	code, _ = get(t, ts, "/v1/experiments/sha256:deadbeef")
	if code != http.StatusNotFound {
		t.Fatalf("unknown id: %d", code)
	}
}

// longLineSpec is validation-legal but heavy enough to still be running
// when tests cancel it.
const longLineSpec = `{"spec": {"topology": {"name": "line", "size": 2}, "seed": 99, "horizon": {"seconds": 50000}}}`

// TestCancelEndpoint is the service-level acceptance criterion: DELETE on
// a running long-horizon job returns within 250ms with state canceled,
// the worker slot is freed (a subsequent submit runs), the canceled spec
// is absent from the result cache, and a running job's GET payload shows
// monotonically advancing progress.
func TestCancelEndpoint(t *testing.T) {
	ts, mgr := newTestServer(t, jobs.Options{Workers: 1})

	code, body := post(t, ts, "/v1/experiments", longLineSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit long job: %d %s", code, body)
	}
	var st statusView
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	// Poll GET until the job runs and shows progress; samples must be
	// monotone.
	type progView struct {
		State    string `json:"state"`
		Progress *struct {
			Events      uint64  `json:"events"`
			SimFraction float64 `json:"simFraction"`
		} `json:"progress"`
	}
	var lastEvents uint64
	var lastFraction float64
	samples := 0
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && samples < 5 {
		_, b := get(t, ts, "/v1/experiments/"+st.ID)
		var pv progView
		if err := json.Unmarshal(b, &pv); err != nil {
			t.Fatal(err)
		}
		if pv.State != "running" || pv.Progress == nil || pv.Progress.Events == 0 {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if pv.Progress.Events < lastEvents || pv.Progress.SimFraction < lastFraction {
			t.Fatalf("progress regressed: %+v after events=%d fraction=%g", pv.Progress, lastEvents, lastFraction)
		}
		lastEvents, lastFraction = pv.Progress.Events, pv.Progress.SimFraction
		samples++
	}
	if samples == 0 {
		t.Fatal("never observed running progress in GET payloads")
	}

	// DELETE: prompt, terminal, retryable.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/experiments/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d %s", resp.StatusCode, b)
	}
	var canceled struct {
		State     string `json:"state"`
		Retryable bool   `json:"retryable"`
	}
	if err := json.Unmarshal(b, &canceled); err != nil {
		t.Fatal(err)
	}
	if canceled.State != "canceled" || !canceled.Retryable {
		t.Fatalf("DELETE should report canceled+retryable: %s", b)
	}
	if elapsed > 250*time.Millisecond {
		t.Fatalf("DELETE of a running job took %v, want < 250ms", elapsed)
	}

	// Absent from the cache: GET is now a 404, and resubmitting the same
	// spec runs it again instead of hitting the cache.
	if code, _ := get(t, ts, "/v1/experiments/"+st.ID); code != http.StatusNotFound {
		t.Fatalf("GET after cancel: %d, want 404", code)
	}
	code, body = post(t, ts, "/v1/experiments", longLineSpec)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit after cancel should be accepted fresh: %d %s", code, body)
	}
	var re statusView
	if err := json.Unmarshal(body, &re); err != nil {
		t.Fatal(err)
	}
	if re.Cached != "" {
		t.Fatalf("resubmission of canceled spec served from cache: %s", body)
	}
	if _, err := mgr.Cancel(re.ID); err != nil {
		t.Fatal(err)
	}

	// The worker slot is free: an unrelated quick job completes.
	code, body = post(t, ts, "/v1/experiments?wait=true", lineSpec)
	if code != http.StatusOK {
		t.Fatalf("post-cancel submit: %d %s", code, body)
	}
	var done statusView
	if err := json.Unmarshal(body, &done); err != nil {
		t.Fatal(err)
	}
	if done.State != "done" {
		t.Fatalf("worker slot not freed after DELETE: %s", body)
	}

	// Canceling terminal work: 409, cached result intact. Unknown: 404.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/experiments/"+done.ID, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE of done job: %d, want 409", resp2.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/experiments/sha256:deadbeef", nil)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE of unknown job: %d, want 404", resp3.StatusCode)
	}
}

// TestWaiterGetsCanceledSnapshot: a client blocked on ?wait=true whose
// job is canceled out from under it (DELETE, budget, shutdown) gets the
// canceled snapshot — state canceled, retryable — not an eviction error
// or a 404.
func TestWaiterGetsCanceledSnapshot(t *testing.T) {
	ts, mgr := newTestServer(t, jobs.Options{Workers: 1})

	code, body := post(t, ts, "/v1/experiments", longLineSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit long job: %d %s", code, body)
	}
	var st statusView
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	type waitOut struct {
		code int
		body []byte
		err  error
	}
	done := make(chan waitOut, 1)
	go func() {
		// Plain HTTP here: t.Fatal must not run off the test goroutine.
		resp, err := http.Get(ts.URL + "/v1/experiments/" + st.ID + "?wait=true")
		if err != nil {
			done <- waitOut{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		done <- waitOut{code: resp.StatusCode, body: b, err: err}
	}()

	// Cancel once the job is actually running, with a grace period for
	// the waiter's request to reach the blocked Wait (a waiter arriving
	// after the cancel would correctly see a 404 — canceled jobs are
	// dropped — which is not the path under test).
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if got, ok := mgr.Get(st.ID); ok && got.State == jobs.StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	if _, err := mgr.Cancel(st.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}

	out := <-done
	if out.err != nil {
		t.Fatalf("waiter request: %v", out.err)
	}
	if out.code != http.StatusOK {
		t.Fatalf("waiter response: %d %s", out.code, out.body)
	}
	var view struct {
		State     string `json:"state"`
		Retryable bool   `json:"retryable"`
		Error     string `json:"error"`
	}
	if err := json.Unmarshal(out.body, &view); err != nil {
		t.Fatalf("%v: %s", err, out.body)
	}
	if view.State != "canceled" || !view.Retryable {
		t.Fatalf("waiter should get the canceled, retryable snapshot: %s", out.body)
	}
}

// TestStatsEndpoint: /v1/stats exposes the manager's counters — queue
// depth, jobs by state, cache hits/misses/evictions and the coalesce
// count — from the same source healthz embeds.
func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{})

	if code, body := post(t, ts, "/v1/experiments?wait=true", lineSpec); code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, body)
	}
	// Same spec again: a cache hit.
	if code, body := post(t, ts, "/v1/experiments?wait=true", lineSpec); code != http.StatusOK {
		t.Fatalf("resubmit: %d %s", code, body)
	}

	code, body := get(t, ts, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	var stats struct {
		Submitted   uint64 `json:"submitted"`
		Completed   uint64 `json:"completed"`
		Failed      uint64 `json:"failed"`
		Canceled    uint64 `json:"canceled"`
		Runs        uint64 `json:"runs"`
		CacheHits   uint64 `json:"cacheHits"`
		CacheMisses uint64 `json:"cacheMisses"`
		Evicted     *int   `json:"evicted"`
		Queued      *int   `json:"queued"`
		Running     *int   `json:"running"`
		CacheLen    *int   `json:"cacheLen"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("%v: %s", err, body)
	}
	if stats.Submitted != 1 || stats.Runs != 1 || stats.Completed != 1 {
		t.Fatalf("counters wrong: %s", body)
	}
	if stats.CacheHits == 0 {
		t.Fatalf("cache hit not counted: %s", body)
	}
	if stats.CacheMisses != 1 {
		t.Fatalf("cacheMisses = %d, want exactly 1 (the first submission): %s", stats.CacheMisses, body)
	}
	if stats.Evicted == nil {
		t.Fatalf("evicted counter missing from payload: %s", body)
	}
	if stats.Queued == nil || stats.Running == nil || stats.CacheLen == nil {
		t.Fatalf("gauges missing from payload: %s", body)
	}
	if *stats.CacheLen != 1 {
		t.Fatalf("cacheLen = %d, want 1: %s", *stats.CacheLen, body)
	}
}
