package main

// observe.go is the server's observability surface: the Prometheus
// /metrics endpoint, per-job lifecycle traces, the ?watch=true SSE
// stream, the request-latency middleware, and the single stats
// snapshot both JSON endpoints serve from.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"ftgcs/internal/cas"
	"ftgcs/internal/jobs"
	"ftgcs/internal/telemetry"
)

// statsSnapshot is the one assembly point for the JSON stats views:
// /v1/healthz serves the whole struct, /v1/stats serves its Stats
// field, and both are built in a single pass from the same
// telemetry-backed counters GET /metrics scrapes — so the three views
// of the service can never disagree about a number mid-scrape.
type statsSnapshot struct {
	// Status is "ok", or "degraded" while the disk-store breaker is open
	// and the manager is running memory-only (jobs still complete; results
	// are served from the LRU but not persisted). See jobs.Manager.Degraded.
	Status string     `json:"status"`
	Stats  jobs.Stats `json:"stats"`
	Store  *cas.Stats `json:"store,omitempty"`
}

func (s *server) snapshotStats() statsSnapshot {
	snap := statsSnapshot{Status: "ok", Stats: s.mgr.Stats()}
	if snap.Stats.StoreDegraded {
		snap.Status = "degraded"
	}
	if s.store != nil {
		st := s.store.Stats()
		snap.Store = &st
	}
	return snap
}

// handleMetrics is GET /metrics: the Prometheus text exposition of
// every registered instrument — job lifecycle, cache tiers, store IO,
// HTTP latency.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.tel.WritePrometheus(w)
}

// handleTrace is GET /v1/experiments/{id}/trace: the ordered span list
// of the job's lifecycle (submitted → queued → building →
// running[replicate i/n] → aggregating → storing → terminal), retained
// for completed jobs alongside their cached result. Jobs rehydrated
// from the disk store executed in another process life and carry no
// trace; canceled jobs are dropped entirely — both are 404s.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, ok := s.mgr.Trace(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no trace for experiment %q (traces cover jobs executed by this process and live alongside the cached result)", id))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleWatch is GET /v1/experiments/{id}?watch=true: a Server-Sent
// Events stream replacing poll loops. The stream opens with a "state"
// event (the current snapshot), emits "progress" events as the running
// job advances and "state" events on lifecycle transitions, and always
// terminates with a "done" event carrying the terminal snapshot — for
// already-completed (cached) jobs that is the only event. Progress is
// sampled server-side at a fixed cadence; the manager's completion
// channel ends the stream the instant the job turns terminal.
func (s *server) handleWatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	done, snap, ok := s.mgr.Done(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q (completed results are cached with bounded capacity; resubmit to recompute)", id))
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)

	emit := func(event string, v any) {
		writeSSE(w, event, v)
		flusher.Flush()
	}

	last := snap()
	if last.State.Terminal() {
		emit("done", last)
		return
	}
	emit("state", last)

	tick := time.NewTicker(s.watchPoll)
	defer tick.Stop()
	// A job that sits queued behind a deep backlog emits no state or
	// progress events for arbitrarily long; periodic SSE comments keep
	// proxies and client read-timeouts from killing the stream while it
	// waits. Comments are invisible to EventSource consumers.
	keep := time.NewTicker(s.watchKeepalive)
	defer keep.Stop()
	for {
		select {
		case <-r.Context().Done():
			return // client went away
		case <-done:
			emit("done", snap())
			return
		case <-keep.C:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		case <-tick.C:
			st := snap()
			if st.State.Terminal() {
				// The done channel closes under the manager's lock just
				// after the state flips; either select arm may win the
				// race, both end the stream with the terminal snapshot.
				emit("done", st)
				return
			}
			switch {
			case st.State != last.State:
				emit("state", st)
			case st.Progress != nil && (last.Progress == nil || *st.Progress != *last.Progress):
				emit("progress", st.Progress)
			}
			last = st
		}
	}
}

// writeSSE frames one Server-Sent Event. Data is a single JSON line,
// so the value never needs multi-line "data:" continuation.
func writeSSE(w http.ResponseWriter, event string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
}

// instrumented wraps the route table with the request-latency
// histogram: every request is timed and labeled with the route pattern
// it matched (the pattern, not the raw URL — content-addressed IDs
// must not explode the label space) and its status class.
func (s *server) instrumented(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		_, pattern := mux.Handler(r)
		if pattern == "" {
			pattern = "unmatched"
		}
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		mux.ServeHTTP(rec, r)
		s.httpDur.With(pattern, statusClass(rec.code)).Observe(time.Since(start).Seconds())
	})
}

// statusRecorder captures the response status and forwards Flush so
// the SSE stream keeps working through the middleware.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// registerStoreMetrics exports the disk store's counters and gauges at
// scrape time — the store keeps its own stats (it predates and does
// not depend on the telemetry registry), so func collectors bridge
// them without double bookkeeping.
func registerStoreMetrics(reg *telemetry.Registry, store *cas.Store) {
	stat := func(f func(cas.Stats) float64) func() float64 {
		return func() float64 { return f(store.Stats()) }
	}
	reg.GaugeFunc("ftgcs_store_objects",
		"Objects resident in the on-disk result store.",
		stat(func(s cas.Stats) float64 { return float64(s.Objects) }))
	reg.GaugeFunc("ftgcs_store_bytes",
		"Payload bytes resident in the on-disk result store.",
		stat(func(s cas.Stats) float64 { return float64(s.Bytes) }))
	reg.CounterFunc("ftgcs_store_hits_total",
		"Store reads that returned a valid object.",
		stat(func(s cas.Stats) float64 { return float64(s.Hits) }))
	reg.CounterFunc("ftgcs_store_misses_total",
		"Store reads that found no (valid) object.",
		stat(func(s cas.Stats) float64 { return float64(s.Misses) }))
	reg.CounterFunc("ftgcs_store_puts_total",
		"Objects durably written to the store.",
		stat(func(s cas.Stats) float64 { return float64(s.Puts) }))
	reg.CounterFunc("ftgcs_store_evicted_total",
		"Objects evicted by the size/age GC policy.",
		stat(func(s cas.Stats) float64 { return float64(s.Evicted) }))
	reg.CounterFunc("ftgcs_store_corrupt_total",
		"Objects that failed the checksum and were removed.",
		stat(func(s cas.Stats) float64 { return float64(s.Corrupt) }))
	reg.CounterFunc("ftgcs_store_read_bytes_total",
		"Payload bytes served by store hits.",
		stat(func(s cas.Stats) float64 { return float64(s.BytesRead) }))
	reg.CounterFunc("ftgcs_store_written_bytes_total",
		"Payload bytes persisted by store writes.",
		stat(func(s cas.Stats) float64 { return float64(s.BytesWritten) }))
}
