package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"ftgcs"
)

const examplesDir = "../../examples/manifests"

func exampleFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(examplesDir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example manifests found: %v", err)
	}
	return files
}

// TestExamplesValidate: every committed example manifest validates and
// expands against the default registry.
func TestExamplesValidate(t *testing.T) {
	var out bytes.Buffer
	if err := run(append([]string{"validate"}, exampleFiles(t)...), &out); err != nil {
		t.Fatalf("validate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("no ok lines: %s", out.String())
	}
}

// TestExamplesExpandShape pins the committed grids' advertised shape:
// each expands to at least 8 deduplicated jobs and carries at least one
// dependency edge, so the examples genuinely exercise the DAG path.
func TestExamplesExpandShape(t *testing.T) {
	for _, path := range exampleFiles(t) {
		m, err := loadManifest(path)
		if err != nil {
			t.Fatal(err)
		}
		exp, err := m.Expand(ftgcs.DefaultRegistry)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(exp.Jobs) < 8 {
			t.Errorf("%s expands to %d unique jobs, want ≥ 8", path, len(exp.Jobs))
		}
		gated := false
		for _, arm := range exp.Arms {
			if len(arm.After) > 0 {
				gated = true
			}
		}
		if !gated {
			t.Errorf("%s has no arm dependencies", path)
		}
	}
}

// TestHashStableAcrossRuns: the printed hash is deterministic and starts
// with the content-address prefix.
func TestHashStableAcrossRuns(t *testing.T) {
	files := exampleFiles(t)
	var a, b bytes.Buffer
	if err := run(append([]string{"hash"}, files...), &a); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"hash"}, files...), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("hash output not deterministic:\n%s\n%s", a.String(), b.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(a.String()), "\n") {
		if !strings.HasPrefix(line, "sha256:") {
			t.Fatalf("malformed hash line %q", line)
		}
	}
}

// TestExpandOutput: the human-readable expansion lists every arm and
// marks nothing shared in e1 (its arms are disjoint).
func TestExpandOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"expand", filepath.Join(examplesDir, "e1-grid.json")}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"arm baseline", "arm attacked", "after [baseline]", "unique jobs"} {
		if !strings.Contains(s, want) {
			t.Errorf("expand output missing %q:\n%s", want, s)
		}
	}
}

// TestExpandJSON: -json emits a decodable expansion.
func TestExpandJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-json", "expand", filepath.Join(examplesDir, "e6-grid.json")}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"manifestId"`) {
		t.Fatalf("json expansion missing manifestId:\n%s", out.String())
	}
}

// TestParamsCommand lists the axis table.
func TestParamsCommand(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"params"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"topology.size", "drift", "attack.name", "constants.c2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("params output missing %q", want)
		}
	}
}

// TestBadInvocations: unknown commands, missing files and invalid
// manifests fail loudly.
func TestBadInvocations(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"frobnicate"}, &out); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run([]string{"validate"}, &out); err == nil {
		t.Error("validate with no files accepted")
	}
	if err := run([]string{"hash", "does-not-exist.json"}, &out); err == nil {
		t.Error("missing file accepted")
	}
}
