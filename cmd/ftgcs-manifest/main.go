// ftgcs-manifest inspects experiment-grid manifests offline: the same
// codec and expansion the server applies to POST /v1/manifests, without
// running anything. Use it to lint a grid before submitting it, to pin
// its content hash in a lab notebook, or to see exactly which jobs a
// manifest will fan out into.
//
//	ftgcs-manifest validate examples/manifests/e1-grid.json
//	ftgcs-manifest hash     examples/manifests/*.json
//	ftgcs-manifest expand   examples/manifests/e6-grid.json
//	ftgcs-manifest params
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ftgcs"
	"ftgcs/internal/manifest"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftgcs-manifest:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftgcs-manifest", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "expand: emit the full expansion as JSON instead of a summary")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `usage: ftgcs-manifest [flags] <command> [file...]

commands:
  validate  parse, normalize and validate each manifest (exit non-zero on the first failure)
  hash      print each manifest's content hash (stable under reformatting and spelled-out defaults)
  expand    print each manifest's deduplicated job set and arm plan
  params    list the sweepable axis parameters

flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	cmd := fs.Arg(0)
	files := fs.Args()[min(1, len(fs.Args())):]

	switch cmd {
	case "params":
		for _, p := range manifest.Params() {
			fmt.Fprintln(out, p)
		}
		return nil
	case "validate", "hash", "expand":
		if len(files) == 0 {
			return fmt.Errorf("%s: no manifest files given", cmd)
		}
	case "":
		fs.Usage()
		return fmt.Errorf("no command given")
	default:
		fs.Usage()
		return fmt.Errorf("unknown command %q", cmd)
	}

	for _, path := range files {
		m, err := loadManifest(path)
		if err != nil {
			return err
		}
		switch cmd {
		case "validate":
			exp, err := m.Expand(ftgcs.DefaultRegistry)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			fmt.Fprintf(out, "%s: ok (%d arms, %d unique jobs)\n", path, len(exp.Arms), len(exp.Jobs))
		case "hash":
			h, err := m.Hash()
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			fmt.Fprintf(out, "%s  %s\n", h, path)
		case "expand":
			exp, err := m.Expand(ftgcs.DefaultRegistry)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			if *asJSON {
				enc := json.NewEncoder(out)
				enc.SetIndent("", "  ")
				if err := enc.Encode(exp); err != nil {
					return err
				}
				continue
			}
			printExpansion(out, path, exp)
		}
	}
	return nil
}

func loadManifest(path string) (manifest.Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return manifest.Manifest{}, err
	}
	defer f.Close()
	m, err := manifest.Decode(f)
	if err != nil {
		return manifest.Manifest{}, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// printExpansion writes the human-readable expansion: the manifest's
// identity, then each arm with its gates and grid points. Shared points
// (deduplicated across arms) are marked so the unique-job arithmetic is
// visible.
func printExpansion(out io.Writer, path string, exp *manifest.Expansion) {
	fmt.Fprintf(out, "%s\n  manifest %s\n  %d unique jobs across %d arms\n", path, exp.ManifestID, len(exp.Jobs), len(exp.Arms))
	names := make(map[string]string, len(exp.Jobs))
	for _, j := range exp.Jobs {
		names[j.ID] = j.Name
	}
	seen := make(map[string]bool, len(exp.Jobs))
	for _, arm := range exp.Arms {
		fmt.Fprintf(out, "  arm %s (%d jobs", arm.Name, len(arm.JobIDs))
		if len(arm.After) > 0 {
			fmt.Fprintf(out, ", after %v", arm.After)
		}
		fmt.Fprintln(out, ")")
		for _, id := range arm.JobIDs {
			mark := ""
			if seen[id] {
				mark = "  (shared)"
			}
			seen[id] = true
			fmt.Fprintf(out, "    %s  %s%s\n", id, names[id], mark)
		}
	}
}
