package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI scenarios run full simulations")
	}
	tests := [][]string{
		{"-topology", "line", "-size", "3", "-duration", "2"},
		{"-topology", "ring", "-size", "4", "-duration", "2", "-attack", "silent", "-attack-count", "2"},
		{"-topology", "clique", "-size", "3", "-duration", "2", "-drift", "randomwalk"},
		{"-topology", "star", "-size", "4", "-duration", "2", "-drift", "none"},
		{"-topology", "tree", "-size", "2", "-duration", "2", "-drift", "sine"},
		{"-topology", "hypercube", "-size", "2", "-duration", "2"},
		{"-topology", "random", "-size", "5", "-duration", "2"},
		{"-topology", "grid", "-size", "2", "-duration", "2", "-attack", "adaptive"},
		{"-topology", "torus", "-size", "3", "-duration", "2", "-k", "1", "-f", "0"},
		{"-topology", "ring", "-size", "3", "-duration", "2", "-delay", "burst"},
		{"-topology", "line", "-size", "3", "-duration", "2", "-delay", "extremal"},
		{"-topology", "line", "-size", "3", "-duration", "2", "-seeds", "3", "-workers", "2"},
		{"-list"},
	}
	for _, args := range tests {
		if err := run(context.Background(), args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	tests := [][]string{
		{"-topology", "nonsense"},
		{"-drift", "nonsense"},
		{"-attack", "nonsense"},
		{"-delay", "nonsense"},
		{"-k", "2", "-f", "1"}, // k < 3f+1
		{"-rho", "0"},          // invalid physical params
		{"-u", "1"},            // U > d
		{"-badflag"},           // flag parse error
	}
	for _, args := range tests {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

// TestRunSpecFiles runs every committed example spec through the -spec
// path, exercising the same codec the experiment service uses.
func TestRunSpecFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI scenarios run full simulations")
	}
	specs, err := filepath.Glob("../../examples/specs/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 2 {
		t.Fatalf("want ≥ 2 committed example specs, found %v", specs)
	}
	for _, path := range specs {
		jsonOut := filepath.Join(t.TempDir(), "series.json")
		if err := run(context.Background(), []string{"-spec", path, "-json", jsonOut}); err != nil {
			t.Errorf("run(-spec %s): %v", path, err)
			continue
		}
		if data, err := os.ReadFile(jsonOut); err != nil || !strings.Contains(string(data), `"series"`) {
			t.Errorf("spec %s: JSON series export missing or malformed (%v)", path, err)
		}
	}
}

func TestRunSpecErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"topology": {"name": "moebius", "size": 3}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-spec", bad}); err == nil || !strings.Contains(err.Error(), "unknown topology") {
		t.Errorf("bad spec: want unknown-topology error, got %v", err)
	}
	if err := run(context.Background(), []string{"-spec", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing spec file should error")
	}
	typo := filepath.Join(dir, "typo.json")
	if err := os.WriteFile(typo, []byte(`{"topology": {"name": "line", "size": 3}, "sede": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-spec", typo}); err == nil || !strings.Contains(err.Error(), "sede") {
		t.Errorf("typo field: want unknown-field error, got %v", err)
	}
}
