package main

import "testing"

func TestRunScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI scenarios run full simulations")
	}
	tests := [][]string{
		{"-topology", "line", "-size", "3", "-duration", "2"},
		{"-topology", "ring", "-size", "4", "-duration", "2", "-attack", "silent", "-attack-count", "2"},
		{"-topology", "clique", "-size", "3", "-duration", "2", "-drift", "randomwalk"},
		{"-topology", "star", "-size", "4", "-duration", "2", "-drift", "none"},
		{"-topology", "tree", "-size", "2", "-duration", "2", "-drift", "sine"},
		{"-topology", "hypercube", "-size", "2", "-duration", "2"},
		{"-topology", "random", "-size", "5", "-duration", "2"},
		{"-topology", "grid", "-size", "2", "-duration", "2", "-attack", "adaptive"},
		{"-topology", "torus", "-size", "3", "-duration", "2", "-k", "1", "-f", "0"},
		{"-topology", "ring", "-size", "3", "-duration", "2", "-delay", "burst"},
		{"-topology", "line", "-size", "3", "-duration", "2", "-delay", "extremal"},
		{"-topology", "line", "-size", "3", "-duration", "2", "-seeds", "3", "-workers", "2"},
		{"-list"},
	}
	for _, args := range tests {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	tests := [][]string{
		{"-topology", "nonsense"},
		{"-drift", "nonsense"},
		{"-attack", "nonsense"},
		{"-delay", "nonsense"},
		{"-k", "2", "-f", "1"}, // k < 3f+1
		{"-rho", "0"},          // invalid physical params
		{"-u", "1"},            // U > d
		{"-badflag"},           // flag parse error
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}
