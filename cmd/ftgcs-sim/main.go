// ftgcs-sim runs FTGCS scenarios and reports the measured skews against
// the paper's bounds.
//
// Topologies, drift models, delay models and Byzantine attacks are all
// resolved by name through the shared ftgcs registry, so a new adversary
// registered from any file in this program (see burstdelay.go) is
// immediately available to every flag with no parsing changes here.
//
//	ftgcs-sim -topology line -size 5 -k 4 -f 1 -duration 60
//	ftgcs-sim -topology grid -size 4 -attack adaptive -attack-count 4
//	ftgcs-sim -topology ring -size 8 -k 1 -f 0 -attack cadence -attack-count 1
//	ftgcs-sim -topology torus -size 3 -delay burst -drift sine
//	ftgcs-sim -topology line -size 5 -seeds 8      # parallel seed sweep
//	ftgcs-sim -spec examples/specs/line-quickstart.json
//	ftgcs-sim -list                                # registered names
//
// With -spec, the scenario comes from a declarative JSON spec file — the
// same codec the ftgcs-serve experiment service accepts, so a spec
// developed locally submits to the service unchanged.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"ftgcs"
	"ftgcs/internal/spec"
)

func main() {
	// SIGINT/SIGTERM cancel the in-flight simulation or sweep: completed
	// results are still flushed, the interrupted remainder is reported.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ftgcs-sim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("ftgcs-sim", flag.ContinueOnError)
	reg := ftgcs.DefaultRegistry
	topo := fs.String("topology", "line", strings.Join(reg.TopologyNames(), "|"))
	size := fs.Int("size", 4, "topology size parameter (clusters, or side length for grid/torus, depth for tree/hypercube)")
	k := fs.Int("k", 4, "cluster size (≥ 3f+1)")
	f := fs.Int("f", 1, "per-cluster fault budget")
	rho := fs.Float64("rho", 3e-3, "hardware drift bound ρ")
	delay := fs.Float64("d", 1e-3, "max message delay d (s)")
	uncertainty := fs.Float64("u", 1e-4, "delay uncertainty U (s)")
	c2 := fs.Float64("c2", 4, "µ = c₂·ρ")
	eps := fs.Float64("eps", 0.25, "contraction margin ε")
	duration := fs.Float64("duration", 30, "simulated seconds")
	seed := fs.Int64("seed", 1, "random seed")
	drift := fs.String("drift", "spread", strings.Join(reg.DriftNames(), "|"))
	delayModel := fs.String("delay", "uniform", strings.Join(reg.DelayNames(), "|"))
	attack := fs.String("attack", "", "Byzantine strategy ("+strings.Join(reg.AttackNames(), "|")+")")
	attackCount := fs.Int("attack-count", 0, "number of clusters that get one Byzantine member (0 = all when -attack is set)")
	seeds := fs.Int("seeds", 1, "run this many seeds (seed, seed+1, …) as a parallel sweep")
	workers := fs.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	csvPath := fs.String("csv", "", "write the skew time series to this CSV file (single-seed runs)")
	jsonPath := fs.String("json", "", "write the skew time series to this JSON file (single-seed runs)")
	specPath := fs.String("spec", "", "run the scenario described by this JSON spec file (see internal/spec; other scenario flags are ignored)")
	list := fs.Bool("list", false, "list registered topologies, drift/delay models and attacks, then exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println("topologies:  " + strings.Join(reg.TopologyNames(), ", "))
		fmt.Println("drift models:" + " " + strings.Join(reg.DriftNames(), ", "))
		fmt.Println("delay models:" + " " + strings.Join(reg.DelayNames(), ", "))
		fmt.Println("attacks:     " + strings.Join(reg.AttackNames(), ", "))
		return nil
	}
	if *specPath != "" {
		return runSpecFile(ctx, *specPath, *csvPath, *jsonPath)
	}

	// Resolve the topology once, up front: a -seeds sweep must compare the
	// same graph across seeds even for randomized families (whose builder
	// would otherwise re-draw per scenario seed).
	base, err := ftgcs.TopologyByName(*topo, *size, *seed)
	if err != nil {
		return err
	}
	opts := []ftgcs.Option{
		ftgcs.WithTopology(base),
		ftgcs.WithClusters(*k, *f),
		ftgcs.WithPhysical(*rho, *delay, *uncertainty),
		ftgcs.WithConstants(*c2, *eps),
		ftgcs.WithSeed(*seed),
		ftgcs.WithDriftName(*drift),
		ftgcs.WithDelayName(*delayModel),
		ftgcs.WithHorizon(*duration),
	}
	if *attack != "" {
		strat, err := ftgcs.AttackByName(*attack)
		if err != nil {
			return err
		}
		opts = append(opts, ftgcs.WithAttackPerCluster(func() ftgcs.Attack { return strat }, *attackCount))
	}
	sc := ftgcs.NewScenario(opts...)

	if *seeds > 1 {
		return runSeedSweep(ctx, sc, *seed, *seeds, *workers)
	}

	sys, err := sc.Build()
	if err != nil {
		return err
	}

	p := sys.Params()
	fmt.Printf("topology %s: %d clusters × k=%d (%d nodes), diameter %d\n",
		*topo, sys.Clusters(), *k, sys.Nodes(), sys.Diameter())
	fmt.Printf("adversaries: drift=%s delay=%s attack=%s\n", *drift, *delayModel, attackName(*attack))
	fmt.Printf("parameters: T=%.3gs τ=(%.3g, %.3g, %.3g) E=%.3gs κ=%.3gs µ=%.3g ϕ=%.3g\n\n",
		p.T, p.Tau1, p.Tau2, p.Tau3, p.EG, p.Kappa, p.Mu, p.Phi)

	if err := sys.RunContext(ctx, *duration); err != nil {
		return describeInterrupt(err, sys)
	}
	fmt.Println(sys.Report())
	return exportSeries(sys, *csvPath, *jsonPath)
}

// describeInterrupt wraps a cancellation with how far the run got; other
// errors pass through.
func describeInterrupt(err error, sys *ftgcs.System) error {
	if errors.Is(err, context.Canceled) {
		p := sys.Progress()
		return fmt.Errorf("interrupted at t=%.3gs after %d events: %w", p.Now, p.Events, err)
	}
	return err
}

// runSpecFile runs one declarative spec file — the same codec the
// ftgcs-serve experiment service accepts.
func runSpecFile(ctx context.Context, path, csvPath, jsonPath string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sp, err := spec.Parse(data)
	if err != nil {
		return err
	}
	hash, err := sp.Hash()
	if err != nil {
		return err
	}
	sc, err := sp.Compile(ftgcs.DefaultRegistry)
	if err != nil {
		return err
	}
	sys, err := sc.Build()
	if err != nil {
		return err
	}
	p := sys.Params()
	fmt.Printf("spec %s\ncontent hash %s\n", path, hash)
	fmt.Printf("%s: %d clusters (%d nodes), diameter %d\n",
		sc.Name(), sys.Clusters(), sys.Nodes(), sys.Diameter())
	fmt.Printf("parameters: T=%.3gs τ=(%.3g, %.3g, %.3g) E=%.3gs κ=%.3gs µ=%.3g ϕ=%.3g\n\n",
		p.T, p.Tau1, p.Tau2, p.Tau3, p.EG, p.Kappa, p.Mu, p.Phi)
	if err := sys.RunContext(ctx, sc.Horizon(p)); err != nil {
		return describeInterrupt(err, sys)
	}
	fmt.Println(sys.Report())
	return exportSeries(sys, csvPath, jsonPath)
}

// exportSeries writes the recorded skew series wherever -csv/-json asked.
func exportSeries(sys *ftgcs.System, csvPath, jsonPath string) error {
	names := []string{
		ftgcs.SeriesIntraSkew, ftgcs.SeriesLocalCluster,
		ftgcs.SeriesLocalNode, ftgcs.SeriesGlobal,
	}
	write := func(path string, export func(f *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := export(f); err != nil {
			return err
		}
		fmt.Printf("skew series written to %s\n", path)
		return nil
	}
	if csvPath != "" {
		if err := write(csvPath, func(f *os.File) error { return sys.WriteCSV(f, names...) }); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		if err := write(jsonPath, func(f *os.File) error { return sys.WriteJSON(f, names...) }); err != nil {
			return err
		}
	}
	return nil
}

func attackName(a string) string {
	if a == "" {
		return "none"
	}
	return a
}

// runSeedSweep executes the scenario across n consecutive seeds on the
// Sweep worker pool and prints one row per seed plus aggregate maxima.
// On SIGINT the sweep is canceled: rows that completed are still printed
// (identical to an uninterrupted run's), the rest are reported as
// interrupted.
func runSeedSweep(ctx context.Context, base *ftgcs.Scenario, seed int64, n, workers int) error {
	scenarios := make([]*ftgcs.Scenario, 0, n)
	for i := 0; i < n; i++ {
		scenarios = append(scenarios, base.With(
			ftgcs.WithName("seed=%d", seed+int64(i)),
			ftgcs.WithSeed(seed+int64(i)),
		))
	}
	results := ftgcs.Sweep{Workers: workers}.RunContext(ctx, scenarios)

	fmt.Printf("%-10s %-12s %-12s %-12s %-8s\n", "seed", "intra skew", "local skew", "global skew", "bounds")
	var worst ftgcs.Report
	var first *ftgcs.Report
	completed, interrupted := 0, 0
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			interrupted++
			continue
		}
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Name, r.Err)
		}
		rep := r.Report
		if first == nil {
			first = &rep
		}
		completed++
		status := "ok"
		if !rep.AllWithinBounds() {
			status = "VIOLATED"
		}
		fmt.Printf("%-10s %-12.3g %-12.3g %-12.3g %-8s\n",
			strings.TrimPrefix(r.Name, "seed="), rep.MaxIntraClusterSkew, rep.MaxLocalSkew, rep.MaxGlobalSkew, status)
		if rep.MaxIntraClusterSkew > worst.MaxIntraClusterSkew {
			worst.MaxIntraClusterSkew = rep.MaxIntraClusterSkew
		}
		if rep.MaxLocalSkew > worst.MaxLocalSkew {
			worst.MaxLocalSkew = rep.MaxLocalSkew
		}
		if rep.MaxGlobalSkew > worst.MaxGlobalSkew {
			worst.MaxGlobalSkew = rep.MaxGlobalSkew
		}
	}
	if first != nil {
		fmt.Printf("\nworst-case over %d seeds: intra %.3g (bound %.3g), local %.3g (bound %.3g), global %.3g (bound %.3g)\n",
			completed, worst.MaxIntraClusterSkew, first.IntraClusterBound,
			worst.MaxLocalSkew, first.LocalSkewBound,
			worst.MaxGlobalSkew, first.GlobalSkewBound)
	}
	if interrupted > 0 {
		return fmt.Errorf("interrupted: %d of %d seeds incomplete: %w", interrupted, n, context.Canceled)
	}
	return nil
}
