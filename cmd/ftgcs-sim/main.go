// ftgcs-sim runs one FTGCS scenario and reports the measured skews against
// the paper's bounds.
//
//	ftgcs-sim -topology line -size 5 -k 4 -f 1 -duration 60
//	ftgcs-sim -topology grid -size 4 -attack adaptive -attack-count 4
//	ftgcs-sim -topology ring -size 8 -k 1 -f 0 -attack cadence -attack-count 1
package main

import (
	"flag"
	"fmt"
	"os"

	"ftgcs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ftgcs-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ftgcs-sim", flag.ContinueOnError)
	topo := fs.String("topology", "line", "line|ring|grid|torus|tree|clique|star|hypercube|random")
	size := fs.Int("size", 4, "topology size parameter (clusters, or side length for grid/torus, depth for tree/hypercube)")
	k := fs.Int("k", 4, "cluster size (≥ 3f+1)")
	f := fs.Int("f", 1, "per-cluster fault budget")
	rho := fs.Float64("rho", 3e-3, "hardware drift bound ρ")
	delay := fs.Float64("d", 1e-3, "max message delay d (s)")
	uncertainty := fs.Float64("u", 1e-4, "delay uncertainty U (s)")
	c2 := fs.Float64("c2", 4, "µ = c₂·ρ")
	eps := fs.Float64("eps", 0.25, "contraction margin ε")
	duration := fs.Float64("duration", 30, "simulated seconds")
	seed := fs.Int64("seed", 1, "random seed")
	drift := fs.String("drift", "spread", "spread|gradient|halves|alternating|randomwalk|sine|none")
	attack := fs.String("attack", "", "Byzantine strategy (silent|spam|two-faced|adaptive|cadence|oscillate|lie-early|lie-late|max-spam)")
	attackCount := fs.Int("attack-count", 0, "number of clusters that get one Byzantine member (0 = all when -attack is set)")
	csvPath := fs.String("csv", "", "write the skew time series to this CSV file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var base *ftgcs.Topology
	switch *topo {
	case "line":
		base = ftgcs.Line(*size)
	case "ring":
		base = ftgcs.Ring(*size)
	case "grid":
		base = ftgcs.Grid(*size, *size)
	case "torus":
		base = ftgcs.Torus(*size, *size)
	case "tree":
		base = ftgcs.Tree(2, *size)
	case "clique":
		base = ftgcs.Clique(*size)
	case "star":
		base = ftgcs.Star(*size)
	case "hypercube":
		base = ftgcs.Hypercube(*size)
	case "random":
		base = ftgcs.Random(*size, *size/2, *seed)
	default:
		return fmt.Errorf("unknown topology %q", *topo)
	}

	driftKinds := map[string]ftgcs.DriftSpec{
		"spread":      {Kind: ftgcs.DriftSpread},
		"gradient":    {Kind: ftgcs.DriftGradient},
		"halves":      {Kind: ftgcs.DriftHalves},
		"alternating": {Kind: ftgcs.DriftAlternatingHalves},
		"randomwalk":  {Kind: ftgcs.DriftRandomWalk},
		"sine":        {Kind: ftgcs.DriftSine},
		"none":        {Kind: ftgcs.DriftNone},
	}
	driftSpec, ok := driftKinds[*drift]
	if !ok {
		return fmt.Errorf("unknown drift %q", *drift)
	}

	var faults []ftgcs.FaultSpec
	if *attack != "" {
		strat, err := ftgcs.StrategyByName(*attack)
		if err != nil {
			return err
		}
		count := *attackCount
		if count <= 0 || count > base.N() {
			count = base.N()
		}
		for c := 0; c < count; c++ {
			faults = append(faults, ftgcs.FaultSpec{
				Node:     c**k + *k - 1,
				Strategy: strat,
			})
		}
	}

	sys, err := ftgcs.New(ftgcs.Config{
		Topology:    base,
		ClusterSize: *k,
		FaultBudget: *f,
		Rho:         *rho,
		Delay:       *delay,
		Uncertainty: *uncertainty,
		C2:          *c2,
		Eps:         *eps,
		Seed:        *seed,
		Drift:       driftSpec,
		Faults:      faults,
	})
	if err != nil {
		return err
	}

	p := sys.Params()
	fmt.Printf("topology %s: %d clusters × k=%d (%d nodes), diameter %d, %d Byzantine\n",
		base.Name(), sys.Clusters(), *k, sys.Nodes(), sys.Diameter(), len(faults))
	fmt.Printf("parameters: T=%.3gs τ=(%.3g, %.3g, %.3g) E=%.3gs κ=%.3gs µ=%.3g ϕ=%.3g\n\n",
		p.T, p.Tau1, p.Tau2, p.Tau3, p.EG, p.Kappa, p.Mu, p.Phi)

	if err := sys.Run(*duration); err != nil {
		return err
	}
	fmt.Println(sys.Report())

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sys.WriteCSV(f,
			ftgcs.SeriesIntraSkew, ftgcs.SeriesLocalCluster,
			ftgcs.SeriesLocalNode, ftgcs.SeriesGlobal); err != nil {
			return err
		}
		fmt.Printf("skew series written to %s\n", *csvPath)
	}
	return nil
}
