// Burst-delay adversary: a worked example of extending the scenario API
// from outside the library. This file is self-contained — it implements
// ftgcs.DelayModel, registers itself under the name "burst" in its init
// function, and thereby becomes available to `-delay burst` (and to every
// other registry consumer) without touching internal/core or any flag
// parsing.
package main

import (
	"math"

	"ftgcs"
)

func init() {
	ftgcs.RegisterDelay("burst", func() ftgcs.DelayModel { return BurstDelay{} })
}

// BurstDelay models periodic congestion: during a burst window every
// message takes the maximum admissible delay d, outside it the minimum
// d−U. The sharp d↔d−U square wave concentrates the full uncertainty U
// into repeated synchronized steps — a harsher pattern than the uniform
// sampler, while still respecting the [d−U, d] envelope the transport
// layer enforces.
type BurstDelay struct {
	// Period between burst starts; 0 selects 20·T.
	Period float64
	// Duty is the burst fraction of the period in (0, 1); 0 selects 0.3.
	Duty float64
}

// Name implements ftgcs.DelayModel.
func (BurstDelay) Name() string { return "burst" }

// Build implements ftgcs.DelayModel.
func (m BurstDelay) Build(p ftgcs.Params, rng *ftgcs.RNG) ftgcs.MessageDelays {
	period := m.Period
	if period <= 0 {
		period = 20 * p.T
	}
	duty := m.Duty
	if duty <= 0 || duty >= 1 {
		duty = 0.3
	}
	return burstSampler{d: p.Delay, u: p.Uncertainty, period: period, burst: duty * period}
}

// burstSampler is the transport-level sampler BurstDelay builds.
type burstSampler struct {
	d, u          float64
	period, burst float64
}

// Sample implements the transport delay interface.
func (s burstSampler) Sample(from, to ftgcs.NodeID, t float64) float64 {
	if math.Mod(t, s.period) < s.burst {
		return s.d // congested: maximum delay
	}
	return s.d - s.u // idle: minimum delay
}

// Bounds implements the transport delay interface.
func (s burstSampler) Bounds() (float64, float64) { return s.d, s.u }
