package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffParsesRetryAfter(t *testing.T) {
	cases := []struct {
		header   string
		fallback time.Duration
		max      time.Duration
		want     time.Duration
	}{
		{"2", time.Second, 10 * time.Second, 2 * time.Second},
		{" 3 ", time.Second, 10 * time.Second, 3 * time.Second},
		{"", time.Second, 10 * time.Second, time.Second},         // absent → fallback
		{"soon", time.Second, 10 * time.Second, time.Second},     // malformed → fallback
		{"-1", time.Second, 10 * time.Second, time.Second},       // negative → fallback
		{"60", time.Second, 2 * time.Second, 2 * time.Second},    // capped
		{"0", time.Second, 10 * time.Second, 0},                  // explicit zero honored
		{"", 30 * time.Second, 2 * time.Second, 2 * time.Second}, // fallback capped too
	}
	for _, c := range cases {
		if got := backoff(c.header, c.fallback, c.max); got != c.want {
			t.Errorf("backoff(%q, %v, %v) = %v, want %v", c.header, c.fallback, c.max, got, c.want)
		}
	}
}

func TestPercentiles(t *testing.T) {
	if got := percentiles(nil); got != (latencySummary{}) {
		t.Errorf("empty samples: %+v", got)
	}
	// 1..100: exact quantiles by construction.
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(100 - i) // reversed: percentiles must sort
	}
	got := percentiles(samples)
	want := latencySummary{Mean: 50.5, P50: 50, P95: 95, P99: 99, Max: 100}
	if got != want {
		t.Errorf("percentiles = %+v, want %+v", got, want)
	}
	// The input slice must not be reordered (workers still own it).
	if samples[0] != 100 {
		t.Error("percentiles mutated its input")
	}
}

func TestSpecJSONShape(t *testing.T) {
	var body struct {
		Spec struct {
			Topology struct {
				Name string `json:"name"`
				Size int    `json:"size"`
			} `json:"topology"`
			Seed    int64 `json:"seed"`
			Horizon struct {
				Seconds int `json:"seconds"`
			} `json:"horizon"`
		} `json:"spec"`
	}
	if err := json.Unmarshal([]byte(specJSON(42, 3, 2)), &body); err != nil {
		t.Fatal(err)
	}
	if body.Spec.Topology.Name != "line" || body.Spec.Topology.Size != 3 ||
		body.Spec.Seed != 42 || body.Spec.Horizon.Seconds != 2 {
		t.Errorf("specJSON decoded to %+v", body)
	}
}

// TestRunAgainstStub drives the whole harness against a scripted server:
// hot seeds answer as cache hits, fresh seeds as computed results, and
// every 5th request is rejected with a Retry-After of 0 — the report
// must count each bucket and stay internally consistent.
func TestRunAgainstStub(t *testing.T) {
	var n atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/experiments" {
			http.NotFound(w, r)
			return
		}
		var body struct {
			Spec struct {
				Seed int64 `json:"seed"`
			} `json:"spec"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if r.Header.Get("X-Client-ID") == "" {
			http.Error(w, "missing client id", http.StatusBadRequest)
			return
		}
		if r.Header.Get("X-Client-ID") != "prewarm" && n.Add(1)%5 == 0 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"shed","retryable":true,"scope":"global"}`))
			return
		}
		resp := `{"id":"sha256:x","state":"done"}`
		if body.Spec.Seed < 1_000_000 { // hot pool seeds are small
			resp = `{"id":"sha256:x","state":"done","cached":"memory"}`
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(resp))
	}))
	defer stub.Close()

	out := filepath.Join(t.TempDir(), "load.json")
	err := run([]string{
		"-addr", strings.TrimPrefix(stub.URL, "http://"),
		"-duration", "300ms", "-concurrency", "4", "-hot", "4",
		"-hit-ratio", "0.5", "-clients", "2", "-out", out,
		"-git-rev", "testrev",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "ftgcs-load-v1" || rep.GitRev != "testrev" {
		t.Fatalf("report envelope: %+v", rep)
	}
	if rep.Totals.Requests == 0 || rep.Totals.Done == 0 {
		t.Fatalf("no traffic recorded: %+v", rep.Totals)
	}
	if rep.Totals.Rejected429 == 0 {
		t.Fatalf("stub rejects every 5th request; none recorded: %+v", rep.Totals)
	}
	if rep.Totals.Done+rep.Totals.Rejected429+rep.Totals.Rejected503+rep.Totals.Errors != rep.Totals.Requests {
		t.Fatalf("totals do not add up: %+v", rep.Totals)
	}
	if rep.Totals.CacheHits == 0 || rep.AchievedHitRatio <= 0 {
		t.Fatalf("hot-pool hits not observed: %+v", rep)
	}
	if rep.QPS <= 0 || rep.LatencyMS.P50 < 0 || rep.LatencyMS.Max < rep.LatencyMS.P50 {
		t.Fatalf("implausible summary: %+v", rep)
	}
}

// TestRunRejectsBadFlags: nonsense knobs fail fast instead of melting a
// server.
func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-hit-ratio", "1.5"}, &buf); err == nil {
		t.Error("hit-ratio 1.5 accepted")
	}
	if err := run([]string{"-concurrency", "0"}, &buf); err == nil {
		t.Error("concurrency 0 accepted")
	}
}
