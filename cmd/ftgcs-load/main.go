// ftgcs-load is the committed load harness for ftgcs-serve: it drives
// concurrent experiment submissions at a controlled cache-hit ratio
// against a running server and reports throughput, latency percentiles
// and rejection counts as one JSON document (schema "ftgcs-load-v1",
// the BENCH_5.json series).
//
// The workload models a fleet of clients sharing an experiment service:
// each of -concurrency workers submits with ?wait=true, drawing either
// from a small pre-warmed pool of hot specs (a cache hit on the server,
// probability -hit-ratio) or a never-repeated fresh spec (a miss that
// must simulate). Workers identify themselves with round-robin
// X-Client-ID values so per-client admission accounting is exercised,
// and they are well-behaved under rejection: a 429/503 is counted, the
// Retry-After header is honored (capped by -max-backoff), and the
// worker resumes.
//
//	ftgcs-serve -addr :8080 -admit-rate 200 &
//	ftgcs-load -addr localhost:8080 -duration 10s -concurrency 32 \
//	           -hit-ratio 0.5 -out BENCH_5.json
//
// Every knob is seeded and deterministic on the client side; wall-clock
// numbers vary with the host, which is why snapshots record the config
// and git revision alongside the results.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftgcs-load:", err)
		os.Exit(1)
	}
}

// runConfig is the knob set, echoed verbatim into the report so a
// snapshot is self-describing.
type runConfig struct {
	Addr        string  `json:"addr"`
	Duration    string  `json:"duration"`
	Concurrency int     `json:"concurrency"`
	HitRatio    float64 `json:"hit_ratio"`
	HotSpecs    int     `json:"hot_specs"`
	Clients     int     `json:"clients"`
	Seed        int64   `json:"seed"`
	Size        int     `json:"size"`
	HorizonSec  int     `json:"horizon_s"`
}

// totals are the raw counters summed across workers.
type totals struct {
	Requests    int64 `json:"requests"`
	Done        int64 `json:"done"`
	CacheHits   int64 `json:"cache_hits"`
	Rejected429 int64 `json:"rejected_429"`
	Rejected503 int64 `json:"rejected_503"`
	Errors      int64 `json:"errors"`
}

// latencySummary is the done-request latency distribution, milliseconds.
type latencySummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// report is the whole output document. latency_ms keeps its original
// meaning (all completed requests) so the snapshot series stays
// comparable; the per-class summaries split the same completions into
// cache hits vs fresh simulations, and separately time rejections (the
// 429/503 turnaround, measured before the backoff sleep).
type report struct {
	Schema            string         `json:"schema"`
	GitRev            string         `json:"git_rev,omitempty"`
	GOOS              string         `json:"goos"`
	GOARCH            string         `json:"goarch"`
	Config            runConfig      `json:"config"`
	Totals            totals         `json:"totals"`
	WallSeconds       float64        `json:"wall_seconds"`
	QPS               float64        `json:"qps"`
	AchievedHitRatio  float64        `json:"achieved_hit_ratio"`
	RejectionRate     float64        `json:"rejection_rate"`
	LatencyMS         latencySummary `json:"latency_ms"`
	LatencyMSHit      latencySummary `json:"latency_ms_hit"`
	LatencyMSFresh    latencySummary `json:"latency_ms_fresh"`
	LatencyMSRejected latencySummary `json:"latency_ms_rejected"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ftgcs-load", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "host:port of the ftgcs-serve instance to drive")
	duration := fs.Duration("duration", 10*time.Second, "how long to drive load")
	concurrency := fs.Int("concurrency", 32, "concurrent submitting workers")
	hitRatio := fs.Float64("hit-ratio", 0.5, "fraction of submissions drawn from the pre-warmed hot-spec pool (server cache hits)")
	hot := fs.Int("hot", 16, "size of the hot-spec pool")
	clients := fs.Int("clients", 8, "distinct X-Client-ID identities, assigned round-robin to workers")
	seed := fs.Int64("seed", 1, "base seed: hot specs use seed..seed+hot-1, fresh specs count up from seed+1e6")
	size := fs.Int("size", 2, "topology size of the generated line specs")
	horizon := fs.Int("horizon", 2, "simulated horizon per spec, seconds (sets per-miss compute cost)")
	maxBackoff := fs.Duration("max-backoff", 2*time.Second, "cap on the Retry-After wait honored after a rejection")
	out := fs.String("out", "", "write the JSON report here (default stdout)")
	gitRev := fs.String("git-rev", "", "git revision to record in the report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *concurrency < 1 || *hot < 1 || *clients < 1 {
		return fmt.Errorf("concurrency, hot and clients must all be ≥ 1")
	}
	if *hitRatio < 0 || *hitRatio > 1 {
		return fmt.Errorf("hit-ratio must be in [0, 1]")
	}

	base := "http://" + *addr
	httpc := &http.Client{Timeout: 2 * time.Minute}

	// Pre-warm the hot pool so "hot" really means "already cached": each
	// hot spec is computed once, outside the measured window.
	for i := 0; i < *hot; i++ {
		if _, err := submit(httpc, base, specJSON(*seed+int64(i), *size, *horizon), "prewarm"); err != nil {
			return fmt.Errorf("prewarm spec %d: %w", i, err)
		}
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		sum      totals
		hitLats  []float64
		missLats []float64
		rejLats  []float64
		fresh    atomic.Int64
		started  = time.Now()
		stopAt   = started.Add(*duration)
	)
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*1013904223))
			client := fmt.Sprintf("loadgen-%d", w%*clients)
			var local totals
			var localHit, localMiss, localRej []float64
			for time.Now().Before(stopAt) {
				var spec string
				if rng.Float64() < *hitRatio {
					spec = specJSON(*seed+rng.Int63n(int64(*hot)), *size, *horizon)
				} else {
					spec = specJSON(*seed+1_000_000+fresh.Add(1), *size, *horizon)
				}
				local.Requests++
				t0 := time.Now()
				res, err := submit(httpc, base, spec, client)
				if err != nil {
					local.Errors++
					continue
				}
				elapsed := float64(time.Since(t0).Microseconds()) / 1000
				switch {
				case res.code == http.StatusTooManyRequests:
					local.Rejected429++
					localRej = append(localRej, elapsed)
					time.Sleep(backoff(res.retryAfter, time.Second, *maxBackoff))
				case res.code == http.StatusServiceUnavailable:
					local.Rejected503++
					localRej = append(localRej, elapsed)
					time.Sleep(backoff(res.retryAfter, time.Second, *maxBackoff))
				case res.code == http.StatusOK && res.state == "done":
					local.Done++
					if res.cached != "" {
						local.CacheHits++
						localHit = append(localHit, elapsed)
					} else {
						localMiss = append(localMiss, elapsed)
					}
				default:
					local.Errors++
				}
			}
			mu.Lock()
			defer mu.Unlock()
			sum.Requests += local.Requests
			sum.Done += local.Done
			sum.CacheHits += local.CacheHits
			sum.Rejected429 += local.Rejected429
			sum.Rejected503 += local.Rejected503
			sum.Errors += local.Errors
			hitLats = append(hitLats, localHit...)
			missLats = append(missLats, localMiss...)
			rejLats = append(rejLats, localRej...)
		}(w)
	}
	wg.Wait()
	wall := time.Since(started).Seconds()

	rep := report{
		Schema: "ftgcs-load-v1",
		GitRev: *gitRev,
		GOOS:   runtime.GOOS, GOARCH: runtime.GOARCH,
		Config: runConfig{
			Addr: *addr, Duration: duration.String(), Concurrency: *concurrency,
			HitRatio: *hitRatio, HotSpecs: *hot, Clients: *clients,
			Seed: *seed, Size: *size, HorizonSec: *horizon,
		},
		Totals:            sum,
		WallSeconds:       round3(wall),
		QPS:               round3(float64(sum.Requests) / wall),
		LatencyMS:         percentiles(append(append([]float64(nil), hitLats...), missLats...)),
		LatencyMSHit:      percentiles(hitLats),
		LatencyMSFresh:    percentiles(missLats),
		LatencyMSRejected: percentiles(rejLats),
	}
	if sum.Done > 0 {
		rep.AchievedHitRatio = round3(float64(sum.CacheHits) / float64(sum.Done))
	}
	if sum.Requests > 0 {
		rep.RejectionRate = round3(float64(sum.Rejected429+sum.Rejected503) / float64(sum.Requests))
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// specJSON renders one line-topology spec submission.
func specJSON(seed int64, size, horizon int) string {
	return fmt.Sprintf(
		`{"spec": {"topology": {"name": "line", "size": %d}, "seed": %d, "horizon": {"seconds": %d}}}`,
		size, seed, horizon)
}

// submitResult is the slice of the server's response the harness needs.
type submitResult struct {
	code       int
	state      string
	cached     string
	retryAfter string
}

// submit POSTs one spec with ?wait=true under a client identity.
func submit(httpc *http.Client, base, spec, client string) (submitResult, error) {
	req, err := http.NewRequest(http.MethodPost, base+"/v1/experiments?wait=true", strings.NewReader(spec))
	if err != nil {
		return submitResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", client)
	resp, err := httpc.Do(req)
	if err != nil {
		return submitResult{}, err
	}
	defer resp.Body.Close()
	var body struct {
		State  string `json:"state"`
		Cached string `json:"cached"`
	}
	// Rejection bodies decode too (no state/cached); a decode failure on
	// a 2xx is the caller's "default: error" case via the empty state.
	_ = json.NewDecoder(resp.Body).Decode(&body)
	io.Copy(io.Discard, resp.Body)
	return submitResult{
		code:       resp.StatusCode,
		state:      body.State,
		cached:     body.Cached,
		retryAfter: resp.Header.Get("Retry-After"),
	}, nil
}

// backoff converts a Retry-After header into a wait: whole seconds per
// RFC 9110, falling back when absent or malformed, capped at max.
func backoff(header string, fallback, max time.Duration) time.Duration {
	d := fallback
	if secs, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
	}
	return min(d, max)
}

// percentiles summarizes latency samples (already in milliseconds).
func percentiles(samples []float64) latencySummary {
	if len(samples) == 0 {
		return latencySummary{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return round3(sorted[i])
	}
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return latencySummary{
		Mean: round3(sum / float64(len(sorted))),
		P50:  at(0.50),
		P95:  at(0.95),
		P99:  at(0.99),
		Max:  round3(sorted[len(sorted)-1]),
	}
}

func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }
