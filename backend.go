package ftgcs

import (
	"context"
	"fmt"

	"ftgcs/internal/core"
	"ftgcs/internal/metrics"
	"ftgcs/internal/sim"
)

// Backend is the minimal simulation surface a Scenario needs to run to a
// horizon and be measured. The standard backend is the core FTGCS system;
// WithBackend substitutes an alternative implementation — the hook that
// lets comparison baselines (internal/baseline's TreeSync) run through
// the same Sweep machinery, job manager and result pipeline as
// first-class scenarios instead of hand-rolled sequential loops.
type Backend interface {
	// Run advances simulated time to the given horizon (seconds).
	Run(until float64) error
	// RunContext is Run with cooperative cancellation: a done context
	// aborts the run with ctx.Err() after the in-flight event, leaving
	// simulated time where the run stopped. The executed event prefix is
	// byte-identical to an uncanceled run.
	RunContext(ctx context.Context, until float64) error
	// Now returns the current simulated time.
	Now() float64
	// Progress returns a snapshot of the run (events executed, current
	// simulated time); unlike every other method it must be safe to call
	// from any goroutine while a run is in flight.
	Progress() Progress
	// Summarize condenses the run: maxima of every recorded skew series
	// after the warmup prefix.
	Summarize(warmup float64) Summary
	// Recorder exposes the recorded metric series.
	Recorder() *metrics.Recorder
	// Diameter returns the hop diameter of the base graph (bound
	// denominators in Report).
	Diameter() int
}

// Progress is a cross-goroutine-safe snapshot of a running system: how
// many simulation events have executed (Events) and how far simulated
// time has advanced (Now, seconds). Both fields are monotone within one
// run.
type Progress = sim.Progress

// coreBackend adapts the standard core system to the Backend interface
// (Run, RunContext, Progress, Summarize and Recorder are promoted from
// core.System).
type coreBackend struct {
	*core.System
}

func (cb coreBackend) Now() float64  { return cb.Engine().Now() }
func (cb coreBackend) Diameter() int { return cb.Aug().Base.Diameter() }

// BackendBuilder constructs a custom simulation backend from the
// scenario's resolved seed and derived algorithm constants.
type BackendBuilder func(seed int64, p Params) (Backend, error)

// WithBackend routes the scenario through a custom simulation backend
// instead of the standard core system build. The scenario's topology
// options are ignored (the backend wires its own network); physical
// parameters, preset/constants, seed and horizon apply as usual. On the
// resulting System, core-specific accessors (Logical, Estimate,
// PulseDiameters, …) are inert — Run, Report, Summary, Series and
// WriteCSV are the supported surface.
func WithBackend(build BackendBuilder) Option {
	return func(s *Scenario) { s.backend = build }
}

// buildBackend resolves parameters and constructs the custom backend.
func (s *Scenario) buildBackend() (*System, error) {
	p, err := s.resolveParams()
	if err != nil {
		return nil, fmt.Errorf("ftgcs: %w", err)
	}
	b, err := s.backend(s.seed, p)
	if err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("ftgcs: scenario %q backend builder returned nil", s.name)
	}
	return &System{b: b, p: p}, nil
}
