package ftgcs

import (
	"context"
	"errors"
	"fmt"

	"ftgcs/internal/core"
	"ftgcs/internal/metrics"
	"ftgcs/internal/sim"
)

// Backend is the minimal simulation surface a Scenario needs to run to a
// horizon and be measured. The standard backend is the core FTGCS system;
// WithBackend substitutes an alternative implementation — the hook that
// lets comparison baselines (internal/baseline's TreeSync) run through
// the same Sweep machinery, job manager and result pipeline as
// first-class scenarios instead of hand-rolled sequential loops.
type Backend interface {
	// Run advances simulated time to the given horizon (seconds).
	Run(until float64) error
	// RunContext is Run with cooperative cancellation: a done context
	// aborts the run with ctx.Err() after the in-flight event, leaving
	// simulated time where the run stopped. The executed event prefix is
	// byte-identical to an uncanceled run.
	RunContext(ctx context.Context, until float64) error
	// Now returns the current simulated time.
	Now() float64
	// Progress returns a snapshot of the run (events executed, current
	// simulated time); unlike every other method it must be safe to call
	// from any goroutine while a run is in flight.
	Progress() Progress
	// Summarize condenses the run: maxima of every recorded skew series
	// after the warmup prefix.
	Summarize(warmup float64) Summary
	// Recorder exposes the recorded metric series.
	Recorder() *metrics.Recorder
	// Diameter returns the hop diameter of the base graph (bound
	// denominators in Report).
	Diameter() int
}

// ResettableBackend is the optional capability a Backend may implement to
// support in-place reuse across runs. Reset(seed) must rewind the backend
// to a fresh pre-run state under the new seed such that a subsequent run
// is byte-identical to one on a freshly built backend with that seed —
// same recorded series, same summaries, same event count. The standard
// core backend implements it (arena-style: all build-time allocations
// survive); backends that cannot make the byte-identity guarantee (the
// TreeSync baseline, livenet) simply omit the method, and callers —
// System.Reset, the Sweep reuse path — detect the absence and fall back
// to rebuilding.
type ResettableBackend interface {
	// Reset rewinds to a fresh pre-run state under the new seed. On error
	// the backend is in an undefined state and must be discarded.
	Reset(seed int64) error
}

// ErrNotResettable is returned by System.Reset when the underlying
// backend does not implement ResettableBackend.
var ErrNotResettable = errors.New("ftgcs: backend does not support reset")

// Progress is a cross-goroutine-safe snapshot of a running system: how
// many simulation events have executed (Events) and how far simulated
// time has advanced (Now, seconds). Both fields are monotone within one
// run.
type Progress = sim.Progress

// coreBackend adapts the standard core system to the Backend interface
// (Run, RunContext, Progress, Summarize and Recorder are promoted from
// core.System).
type coreBackend struct {
	*core.System
}

func (cb coreBackend) Now() float64  { return cb.Engine().Now() }
func (cb coreBackend) Diameter() int { return cb.Aug().Base.Diameter() }

// coreBackend satisfies ResettableBackend through the promoted
// core.System.Reset; the assertion documents (and pins) the capability.
var _ ResettableBackend = coreBackend{}

// CanReset reports whether the system's backend supports in-place reset
// (see ResettableBackend). Callers batching many runs use it to choose
// between Reset-per-run and rebuild-per-run up front.
func (s *System) CanReset() bool {
	_, ok := s.b.(ResettableBackend)
	return ok
}

// Reset rewinds the system to a fresh pre-run state under the new seed,
// reusing every structure Build allocated. A subsequent Run produces
// output byte-identical to a freshly built System with that seed and the
// same structural build inputs — note a system built from a randomized
// named topology keeps its already-drawn graph (reset never redraws
// structure; the Sweep reuse path therefore only kicks in for scenarios
// sharing a pinned *Topology). Returns
// ErrNotResettable for backends without the capability (the caller should
// rebuild instead); any other error leaves the system in an undefined
// state — discard it. Values read from a previous run that alias live
// system state (Series pointers, RoundTrace slices) are invalidated by a
// Reset: clone what must outlive it.
func (s *System) Reset(seed int64) error {
	rb, ok := s.b.(ResettableBackend)
	if !ok {
		return ErrNotResettable
	}
	return rb.Reset(seed)
}

// BackendBuilder constructs a custom simulation backend from the
// scenario's resolved seed and derived algorithm constants.
type BackendBuilder func(seed int64, p Params) (Backend, error)

// WithBackend routes the scenario through a custom simulation backend
// instead of the standard core system build. The scenario's topology
// options are ignored (the backend wires its own network); physical
// parameters, preset/constants, seed and horizon apply as usual. On the
// resulting System, core-specific accessors (Logical, Estimate,
// PulseDiameters, …) are inert — Run, Report, Summary, Series and
// WriteCSV are the supported surface.
func WithBackend(build BackendBuilder) Option {
	return func(s *Scenario) { s.backend = build }
}

// buildBackend resolves parameters and constructs the custom backend.
func (s *Scenario) buildBackend() (*System, error) {
	p, err := s.resolveParams()
	if err != nil {
		return nil, fmt.Errorf("ftgcs: %w", err)
	}
	b, err := s.backend(s.seed, p)
	if err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("ftgcs: scenario %q backend builder returned nil", s.name)
	}
	return &System{b: b, p: p}, nil
}
