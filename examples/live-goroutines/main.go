// live-goroutines runs the ClusterSync algorithm on real goroutines: one
// goroutine per cluster node, channels as links with genuine wall-clock
// delays, per-node oscillator skew on top of the host clock, and a crashed
// member. It prints the live skew every few hundred milliseconds.
//
// The deterministic simulator (the rest of this repository) is the
// substrate for all quantitative results; this demo shows the same
// protocol logic driving a concurrent runtime.
//
//	go run ./examples/live-goroutines
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ftgcs/internal/livenet"
	"ftgcs/internal/params"
)

func main() {
	// Wall-honest parameters: Go timer jitter (~0.1–1 ms) acts as extra
	// delay uncertainty, so U = 1 ms must dominate it; rounds then last
	// ~230 ms of wall time.
	p, err := params.Derive(params.Config{
		Rho: 3e-3, Delay: 2e-3, Uncertainty: 1e-3, C2: 4, Eps: 0.25, KStable: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := livenet.NewCluster(livenet.Config{
		K: 4, F: 1, Params: p,
		TimeScale: 1, // logical seconds = wall seconds
		Seed:      1,
		Byzantine: map[int]bool{3: true}, // node 3 is dead
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("live cluster: k=4 goroutine nodes (node 3 crashed), round T=%.1fms logical\n", p.T*1e3)
	fmt.Printf("steady-state bound E=%.2fms; watch the live skew settle near it\n\n", p.EG*1e3)

	ctx, cancel := context.WithTimeout(context.Background(), 6*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() {
		cluster.Run(ctx)
		close(done)
	}()

	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			fmt.Printf("round %4d  live skew %6.3f ms  clocks %v\n",
				cluster.Rounds(), cluster.Skew()*1e3, fmtClocks(cluster.SortedClocks()))
		case <-done:
			fmt.Println("\ncluster stopped.")
			return
		}
	}
}

func fmtClocks(cs []float64) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = fmt.Sprintf("%.4f", c)
	}
	return out
}
