// noc-grid models the Network-on-Chip scenario from the paper's
// introduction: a 4×4 mesh of tiles, each tile's clock domain implemented
// as a cluster of 4 redundant clock nodes, with manufacturing-spread
// oscillators (sinusoidal thermal drift) and occasional dead or flaky
// nodes. Neighboring tiles need tightly bounded skew for source-synchronous
// hand-off; distant tiles may drift apart.
//
//	go run ./examples/noc-grid
package main

import (
	"fmt"
	"log"

	"ftgcs"
)

func main() {
	sys, err := ftgcs.NewScenario(
		ftgcs.WithTopologyName("grid", 4),
		ftgcs.WithClusters(4, 1),
		ftgcs.WithPhysical(3e-3, 1e-3, 1e-4), // cheap on-chip ring oscillators
		ftgcs.WithConstants(4, 0.25),
		ftgcs.WithSeed(2026),
		ftgcs.WithDriftName("sine"), // thermal wander
		// Tile (1,1) has a dead clock node, tile (2,3) a flaky (spamming)
		// one, tile (3,0) one whose oscillator is out of spec by 4×.
		ftgcs.WithAttackName("silent", tile(1, 1)*4+2),
		ftgcs.WithAttackName("spam", tile(2, 3)*4+1),
		ftgcs.WithFaults(ftgcs.FaultSpec{Node: tile(3, 0)*4 + 0, OffSpecRate: 1 + 4*3e-3}),
	).Build()
	if err != nil {
		log.Fatal(err)
	}
	p := sys.Params()
	fmt.Printf("4×4 NoC mesh: %d tiles × %d clock nodes, diameter %d\n",
		sys.Clusters(), 4, sys.Diameter())
	fmt.Printf("faults: 1 dead node, 1 flaky node, 1 out-of-spec oscillator\n")
	fmt.Printf("round T = %.3gs, trigger unit κ = %.3gs\n\n", p.T, p.Kappa)

	if err := sys.Run(40); err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.Report())

	// Skew matrix between horizontally adjacent tiles.
	fmt.Println("tile clock offsets relative to tile (0,0), milliseconds:")
	base := sys.ClusterClock(0)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			fmt.Printf("%+8.3f ", (sys.ClusterClock(tile(x, y))-base)*1e3)
		}
		fmt.Println()
	}
}

// tile maps mesh coordinates to the cluster ID (row-major).
func tile(x, y int) int { return y*4 + x }
