// Quickstart: synchronize a line of three clusters (k=4, f=1) with one
// silent Byzantine node, run for 60 simulated seconds, and check every
// skew bound the paper proves.
//
// The scenario is assembled with the functional-options API; the legacy
// ftgcs.Config struct remains available and builds through the same path.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ftgcs"
)

func main() {
	sc := ftgcs.NewScenario(
		ftgcs.WithTopology(ftgcs.Line(3)), // clusters 0–1–2
		ftgcs.WithClusters(4, 1),          // k = 3f+1, one Byzantine tolerated per cluster
		ftgcs.WithPhysical(1e-3, 1e-3, 1e-4),
		ftgcs.WithSeed(42),
		ftgcs.WithDrift(ftgcs.GradientDrift{}),
		ftgcs.WithAttackName("silent", 5), // node 5 (cluster 1) crashed
	)

	sys, err := sc.Build()
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	p := sys.Params()
	fmt.Printf("derived parameters: round T=%.3gs  E=%.3gs  κ=%.3gs  µ=%.3g\n",
		p.T, p.EG, p.Kappa, p.Mu)
	fmt.Printf("topology: %d clusters, %d physical nodes, diameter %d\n\n",
		sys.Clusters(), sys.Nodes(), sys.Diameter())

	if err := sys.Run(60); err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Println(sys.Report())

	fmt.Println("cluster clocks at the end of the run:")
	for c := 0; c < sys.Clusters(); c++ {
		fmt.Printf("  cluster %d: L_C = %.6f s\n", c, sys.ClusterClock(c))
	}
	fmt.Printf("\nnode 0's estimate of cluster 1: %.6f (truth %.6f)\n",
		sys.Estimate(0, 1), sys.ClusterClock(1))
}
