// byzantine-line reproduces the paper's motivating observation on a ring:
// the plain (non-fault-tolerant) gradient clock synchronization algorithm
// collapses under a single Byzantine node, while the clustered FTGCS
// construction — same attack, same topology — keeps every correct pair
// within its proven bound.
//
// The three variants are built as scenario sweep inputs and executed in
// parallel by the ftgcs.Sweep worker pool.
//
//	go run ./examples/byzantine-line
package main

import (
	"fmt"
	"log"

	"ftgcs"
)

func main() {
	fmt.Println("ring of 8 clusters; attack: cadence equivocation (the paper's")
	fmt.Println("'sub-nominal clock speed' Byzantine example)")
	fmt.Println()

	base := ftgcs.NewScenario(
		ftgcs.WithTopology(ftgcs.Ring(8)),
		ftgcs.WithPhysical(3e-3, 1e-3, 1e-4),
		ftgcs.WithConstants(4, 0.25),
		ftgcs.WithSeed(7),
		ftgcs.WithDrift(ftgcs.SpreadDrift{}),
		ftgcs.WithHorizon(25),
	)
	scenarios := []*ftgcs.Scenario{
		base.With(
			ftgcs.WithName("plain GCS (k=1), fault-free"),
			ftgcs.WithClusters(1, 0),
		),
		base.With(
			ftgcs.WithName("plain GCS (k=1), ONE Byzantine node"),
			ftgcs.WithClusters(1, 0),
			ftgcs.WithAttack(ftgcs.CadenceTwoFaced(), 0),
		),
		// FTGCS: one Byzantine per cluster — 8 attackers, not 1.
		base.With(
			ftgcs.WithName("FTGCS (k=4, f=1), one Byzantine PER cluster"),
			ftgcs.WithClusters(4, 1),
			ftgcs.WithAttackPerCluster(ftgcs.CadenceTwoFaced, 0),
		),
	}

	results, err := ftgcs.RunSweep(scenarios...)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%-42s local skew %.3gs  (bound %.3gs)\n",
			r.Name, r.Report.MaxLocalSkew, r.Report.LocalSkewBound)
	}

	clean := results[0].Report
	attacked := results[1].Report
	protected := results[2].Report
	fmt.Println()
	fmt.Printf("degradation of plain GCS under one fault: %.0f×\n",
		attacked.MaxLocalSkew/max(clean.MaxLocalSkew, 1e-12))
	fmt.Printf("FTGCS under 8 simultaneous attackers stays %.1f× below plain GCS under one\n",
		attacked.MaxLocalSkew/protected.MaxLocalSkew)
	if protected.AllWithinBounds() {
		fmt.Println("FTGCS: all paper bounds hold ✓")
	}
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
