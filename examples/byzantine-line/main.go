// byzantine-line reproduces the paper's motivating observation on a ring:
// the plain (non-fault-tolerant) gradient clock synchronization algorithm
// collapses under a single Byzantine node, while the clustered FTGCS
// construction — same attack, same topology — keeps every correct pair
// within its proven bound.
//
//	go run ./examples/byzantine-line
package main

import (
	"fmt"
	"log"

	"ftgcs"
)

func run(name string, k, f int, faults []ftgcs.FaultSpec) ftgcs.Report {
	sys, err := ftgcs.New(ftgcs.Config{
		Topology:    ftgcs.Ring(8),
		ClusterSize: k,
		FaultBudget: f,
		Rho:         3e-3,
		Delay:       1e-3,
		Uncertainty: 1e-4,
		C2:          4,
		Eps:         0.25,
		Seed:        7,
		Drift:       ftgcs.DriftSpec{Kind: ftgcs.DriftSpread},
		Faults:      faults,
	})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	if err := sys.Run(25); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	r := sys.Report()
	fmt.Printf("%-42s local skew %.3gs  (bound %.3gs)\n", name, r.MaxLocalSkew, r.LocalSkewBound)
	return r
}

func main() {
	fmt.Println("ring of 8 clusters; attack: cadence equivocation (the paper's")
	fmt.Println("'sub-nominal clock speed' Byzantine example)")
	fmt.Println()

	clean := run("plain GCS (k=1), fault-free", 1, 0, nil)

	attacked := run("plain GCS (k=1), ONE Byzantine node", 1, 0,
		[]ftgcs.FaultSpec{{Node: 0, Strategy: ftgcs.CadenceTwoFaced()}})

	// FTGCS: one Byzantine per cluster — 8 attackers, not 1.
	var faults []ftgcs.FaultSpec
	for c := 0; c < 8; c++ {
		faults = append(faults, ftgcs.FaultSpec{Node: c*4 + 3, Strategy: ftgcs.CadenceTwoFaced()})
	}
	protected := run("FTGCS (k=4, f=1), one Byzantine PER cluster", 4, 1, faults)

	fmt.Println()
	fmt.Printf("degradation of plain GCS under one fault: %.0f×\n",
		attacked.MaxLocalSkew/max(clean.MaxLocalSkew, 1e-12))
	fmt.Printf("FTGCS under 8 simultaneous attackers stays %.1f× below plain GCS under one\n",
		attacked.MaxLocalSkew/protected.MaxLocalSkew)
	if protected.AllWithinBounds() {
		fmt.Println("FTGCS: all paper bounds hold ✓")
	}
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
