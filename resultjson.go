package ftgcs

import (
	"encoding/json"
	"strconv"

	"ftgcs/internal/metrics"
)

// MarshalJSON renders the report with fixed key order and canonical float
// encoding, so identical reports always marshal to identical bytes. The
// experiment service's dedup/cache layer relies on this: re-serializing a
// cached result must reproduce the original response byte for byte.
// Non-finite values (impossible for a completed run, but defensively)
// encode as null.
func (r Report) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 384)
	field := func(key string, v float64) {
		if len(b) > 1 {
			b = append(b, ',')
		}
		b = append(b, '"')
		b = append(b, key...)
		b = append(b, `":`...)
		b = metrics.AppendJSONFloat(b, v)
	}
	b = append(b, '{')
	field("horizon", r.Horizon)
	field("warmup", r.Warmup)
	field("maxIntraClusterSkew", r.MaxIntraClusterSkew)
	field("intraClusterBound", r.IntraClusterBound)
	field("maxLocalSkew", r.MaxLocalSkew)
	field("localSkewBound", r.LocalSkewBound)
	field("maxGlobalSkew", r.MaxGlobalSkew)
	field("globalSkewBound", r.GlobalSkewBound)
	b = append(b, `,"events":`...)
	b = strconv.AppendUint(b, r.Events, 10)
	b = append(b, `,"allWithinBounds":`...)
	b = strconv.AppendBool(b, r.AllWithinBounds())
	b = append(b, '}')
	return b, nil
}

// UnmarshalJSON is the inverse of MarshalJSON; null decodes to 0 (the
// Report convention for "nothing recorded"). The derived allWithinBounds
// field is ignored on input.
func (r *Report) UnmarshalJSON(data []byte) error {
	var aux struct {
		Horizon             *float64 `json:"horizon"`
		Warmup              *float64 `json:"warmup"`
		MaxIntraClusterSkew *float64 `json:"maxIntraClusterSkew"`
		IntraClusterBound   *float64 `json:"intraClusterBound"`
		MaxLocalSkew        *float64 `json:"maxLocalSkew"`
		LocalSkewBound      *float64 `json:"localSkewBound"`
		MaxGlobalSkew       *float64 `json:"maxGlobalSkew"`
		GlobalSkewBound     *float64 `json:"globalSkewBound"`
		Events              uint64   `json:"events"`
		AllWithinBounds     bool     `json:"allWithinBounds"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	get := func(p *float64) float64 {
		if p == nil {
			return 0
		}
		return *p
	}
	r.Horizon = get(aux.Horizon)
	r.Warmup = get(aux.Warmup)
	r.MaxIntraClusterSkew = get(aux.MaxIntraClusterSkew)
	r.IntraClusterBound = get(aux.IntraClusterBound)
	r.MaxLocalSkew = get(aux.MaxLocalSkew)
	r.LocalSkewBound = get(aux.LocalSkewBound)
	r.MaxGlobalSkew = get(aux.MaxGlobalSkew)
	r.GlobalSkewBound = get(aux.GlobalSkewBound)
	r.Events = aux.Events
	return nil
}
