package harness

import (
	"fmt"

	"ftgcs"
)

// runSweep executes the experiment's scenarios through the public Sweep
// runner — a bounded worker pool — and fails the experiment on the first
// scenario error. Results come back in input order, so the caller can zip
// them with its scenario descriptions and build table rows exactly as the
// old sequential loops did: tables are byte-identical for any worker
// count.
func (rc RunConfig) runSweep(scenarios []*ftgcs.Scenario) ([]ftgcs.SweepResult, error) {
	sw := ftgcs.Sweep{Workers: rc.Workers, BaseSeed: rc.Seed, NoReuse: rc.NoReuse, Pool: rc.Pool}
	var results []ftgcs.SweepResult
	if rc.Ctx != nil {
		results = sw.RunContext(rc.Ctx, scenarios)
	} else {
		results = sw.Run(scenarios)
	}
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("scenario %d (%s): %w", r.Index, r.Name, r.Err)
		}
	}
	return results, nil
}
