package harness

import (
	"bytes"
	"testing"
)

// TestParallelTablesMatchSequential is the harness-level determinism
// guarantee: running the sweep-based quick experiments on a parallel
// worker pool produces byte-identical tables to the sequential path for a
// fixed seed.
func TestParallelTablesMatchSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations twice")
	}
	ids := []string{"E2", "E3", "E12", "A3"}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			exp, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			render := func(workers int) string {
				tbl, err := exp.Run(RunConfig{Quick: true, Seed: 1, Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				var buf bytes.Buffer
				tbl.Render(&buf)
				return buf.String()
			}
			sequential := render(1)
			parallel := render(8)
			if sequential != parallel {
				t.Errorf("tables differ between 1 and 8 workers:\n--- sequential ---\n%s--- parallel ---\n%s",
					sequential, parallel)
			}
		})
	}
}
