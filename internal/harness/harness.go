package harness

import (
	"context"
	"fmt"
	"io"
	"sort"

	"ftgcs"
	"ftgcs/internal/params"
)

// RunConfig tunes experiment execution.
type RunConfig struct {
	// Quick shrinks sweeps and horizons (CI / benchmarks); full mode is
	// what the recorded reproduction tables use.
	Quick bool
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the scenario worker pool (≤0 selects GOMAXPROCS).
	// Results are identical for any worker count: every scenario is a
	// self-contained deterministic simulation, and rows are aggregated in
	// input order.
	Workers int
	// Progress, when non-nil, receives one line per sub-run.
	Progress io.Writer
	// NoReuse disables the sweep runner's system-reuse fast path, forcing
	// a fresh build per scenario. Tables are byte-identical either way
	// (that is the reset contract); the differential golden test runs both.
	NoReuse bool
	// Pool, when non-nil, shares built systems across this config's
	// sweeps (and with whatever else holds the pool): scenarios whose
	// build key matches a pooled system reset it instead of building.
	// Byte-invisible for the same reason NoReuse is — the pooled golden
	// test proves it across every experiment.
	Pool *ftgcs.SystemPool
	// Ctx, when non-nil, cancels in-flight sweeps (the CLI wires SIGINT
	// here): the running experiment returns the context's error and
	// RunAll stops before starting the next one. Completed experiments'
	// tables are unaffected — cancellation truncates, never perturbs.
	Ctx context.Context
}

func (rc RunConfig) progressf(format string, args ...any) {
	if rc.Progress != nil {
		fmt.Fprintf(rc.Progress, format+"\n", args...)
	}
}

// Experiment is one reproducible claim.
type Experiment struct {
	ID    string
	Title string
	Run   func(rc RunConfig) (*Table, error)
}

// physicalDefault returns the workhorse parameter configuration for the
// dynamic experiments. It trades the paper's proof constants (c₂=32,
// ε=1/4096 — feasible only at ρ ≲ 10⁻⁶ and with astronomically long
// rounds) for an aggressive-but-feasible corner (ρ=3·10⁻³, c₂=4, ε=1/4,
// k_stable=1) where trigger-level skews develop within simulable horizons.
// Experiments that probe the analysis constants themselves (E4, E14) also
// run the paper presets.
func physicalDefault() params.Config {
	return params.Config{
		Rho:         3e-3,
		Delay:       1e-3,
		Uncertainty: 1e-4,
		C2:          4,
		Eps:         0.25,
		KStable:     1,
		CGlobal:     8,
	}
}

// mustParams derives the default parameters; the configuration is
// validated by params tests, so failure here is a programming error.
func mustParams() params.Params {
	return params.MustDerive(physicalDefault())
}

// All returns the full experiment registry in ID order.
func All() []Experiment {
	exps := []Experiment{
		{ID: "E1", Title: "Local skew vs diameter (Theorem 1.1)", Run: runE1},
		{ID: "E2", Title: "Intra-cluster skew under attack (Corollary 3.2)", Run: runE2},
		{ID: "E3", Title: "Pulse-diameter convergence (Prop. B.14 / Eq. 9)", Run: runE3},
		{ID: "E4", Title: "Unanimous-mode amortized rates (Lemma 3.6)", Run: runE4},
		{ID: "E5", Title: "Trigger mutual exclusivity (Lemma 4.5)", Run: runE5},
		{ID: "E6", Title: "Global skew and max-estimates (Theorem C.3, Lemma C.2)", Run: runE6},
		{ID: "E7", Title: "Cluster failure probability (Inequality 1)", Run: runE7},
		{ID: "E8", Title: "One Byzantine node breaks plain GCS (§1)", Run: runE8},
		{ID: "E9", Title: "TreeSync baseline skew compression (§1, [15])", Run: runE9},
		{ID: "E10", Title: "Simulated GCS axioms (Prop. 4.11)", Run: runE10},
		{ID: "E11", Title: "Augmentation overheads (Theorem 1.1)", Run: runE11},
		{ID: "E12", Title: "Resilience boundary k ≥ 3f+1 ([3,12])", Run: runE12},
		{ID: "E13", Title: "Skew scaling in ρd+U (Theorem 1.1)", Run: runE13},
		{ID: "E14", Title: "Parameter feasibility region (Eq. 5/12)", Run: runE14},
	}
	sort.Slice(exps, func(i, j int) bool { return idNum(exps[i].ID) < idNum(exps[j].ID) })
	return exps
}

func idNum(id string) int {
	var n int
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID returns the experiment (or ablation) with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	for _, e := range Ablations() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

// RunAll executes every experiment, rendering tables to w. Completed
// tables are flushed as they finish, so a cancellation (rc.Ctx) loses
// only the experiment it interrupted.
func RunAll(rc RunConfig, w io.Writer) error {
	for _, e := range All() {
		if rc.Ctx != nil {
			if err := rc.Ctx.Err(); err != nil {
				return err
			}
		}
		rc.progressf("running %s: %s", e.ID, e.Title)
		tbl, err := e.Run(rc)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		tbl.Render(w)
	}
	return nil
}
