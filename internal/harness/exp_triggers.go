package harness

import (
	"fmt"
	"math"

	"ftgcs"
	"ftgcs/internal/byzantine"
	"ftgcs/internal/core"
	"ftgcs/internal/gcs"
	"ftgcs/internal/graph"
	"ftgcs/internal/sim"
)

// runE5 — Lemma 4.5: the fast and slow triggers are mutually exclusive.
// The paper states this for δ < 2κ; the parity argument requires δ < κ/2.
// We scan δ/κ and report the measured exclusivity boundary; the paper's
// own choice δ = κ/3 is safely exclusive either way.
func runE5(rc RunConfig) (*Table, error) {
	trials := 300000
	if rc.Quick {
		trials = 30000
	}
	ratios := []float64{0.10, 0.20, 0.33, 0.45, 0.49, 0.50, 0.55, 0.60, 0.80, 1.00}
	tbl := &Table{
		ID:     "E5",
		Title:  "FT/ST mutual exclusivity across the δ/κ slack ratio",
		Claim:  "Lemma 4.5 (paper: exclusive for δ < 2κ; sharp constant: δ < κ/2; paper uses δ = κ/3)",
		Header: []string{"δ/κ", "trials", "overlaps", "exclusive"},
	}
	kappa := 1.0
	for _, ratio := range ratios {
		delta := ratio * kappa
		rng := sim.NewRNG(rc.Seed+50, uint64(ratio*1000))
		overlaps := 0
		for i := 0; i < trials; i++ {
			n := 1 + rng.Intn(5)
			est := make([]float64, n)
			for j := range est {
				est[j] = rng.UniformIn(-6*kappa, 6*kappa)
			}
			own := rng.UniformIn(-2*kappa, 2*kappa)
			if gcs.FastTrigger(own, est, kappa, delta) && gcs.SlowTrigger(own, est, kappa, delta) {
				overlaps++
			}
		}
		// Deterministic witness for δ ≥ κ/2: up = 2κ−δ, down = κ−δ.
		if ratio >= 0.5 {
			witness := []float64{2*kappa - delta, -(kappa - delta)}
			if gcs.FastTrigger(0, witness, kappa, delta) && gcs.SlowTrigger(0, witness, kappa, delta) {
				overlaps++
			}
		}
		tbl.AddRow(fmt.Sprintf("%.2f", ratio), fmt.Sprintf("%d", trials),
			fmt.Sprintf("%d", overlaps), okFail(overlaps == 0))
	}
	tbl.AddNote("finding: exclusivity holds exactly for δ/κ < 1/2; at δ/κ ≥ 1/2 the witness (up=2κ−δ, down=κ−δ) fires both triggers")
	tbl.AddNote("the paper's Lemma 4.5 claims δ < 2κ suffices; the standard parity argument and this scan give the sharp δ < κ/2 — κ=3δ is safe under both")
	return tbl, nil
}

// runE10 — Proposition 4.11: in a faithful execution, cluster clocks
// satisfy the GCS axioms with ρ̄ = (1+ϕ)(1+µ/4)−1 and µ̄ = (1+ϕ)(1+⅞µ)−1:
//
//	A1: rates in [1, (1+ρ̄)(1+µ̄)]; A2: SC ⇒ rate ≤ 1+ρ̄;
//	A3: FC ⇒ rate ≥ 1+µ̄ (A4 is checked in params).
//
// Faithful executions *preempt* the conditions (triggers fire at 2sκ−δ,
// before FC materializes at 2sκ), so genuine FC/SC episodes are rare under
// drift alone. We therefore force cluster 0 fast and the rest slow for a
// build-up phase — overshooting the condition thresholds — then release
// the override and measure windowed cluster-clock rates during episodes
// that persisted for a full window.
func runE10(rc RunConfig) (*Table, error) {
	p := mustParams()
	buildRounds := 260
	rounds := 900.0
	if rc.Quick {
		rounds = 600
	}
	horizon := rounds * p.T
	base, faults := lineWithFaults(5, 4, func() byzantine.Strategy { return byzantine.Silent{} })
	sys, err := ftgcs.NewScenario(
		ftgcs.WithName("E10 build-up/release"),
		ftgcs.WithTopology(base),
		ftgcs.WithClusters(4, 1),
		ftgcs.WithDerivedParams(p),
		ftgcs.WithSeed(rc.Seed+100),
		ftgcs.WithDrift(ftgcs.SpreadDrift{}),
		ftgcs.WithFaults(faults...),
		ftgcs.WithGlobalSkew(false),
		ftgcs.WithModeOverride(func(v graph.NodeID, c graph.ClusterID, r int) (int, bool) {
			if r >= buildRounds {
				return 0, false // release: normal InterclusterSync
			}
			if c == 0 {
				return 1, true
			}
			return 0, true
		}),
		ftgcs.WithClusterTracking(),
	).Build()
	if err != nil {
		return nil, err
	}
	if err := sys.Run(horizon); err != nil {
		return nil, err
	}

	window := 30 * p.T // rate-averaging window (≫ k_stable rounds)
	// Skip the forced phase (it deliberately violates faithfulness) plus
	// a re-stabilization margin.
	skipUntil := float64(buildRounds+20) * p.T
	tbl := &Table{
		ID:     "E10",
		Title:  "GCS axioms on simulated cluster clocks (line D=4, forced build-up then release)",
		Claim:  "Prop. 4.11: axioms hold with ρ̄=(1+ϕ)(1+µ/4)−1, µ̄=(1+ϕ)(1+⅞µ)−1",
		Header: []string{"axiom", "episodes", "worst rate", "threshold", "within"},
	}

	a1Lo, a1Hi := math.Inf(1), math.Inf(-1)
	a1N := 0
	scMax, scN := math.Inf(-1), 0
	fcMin, fcN := math.Inf(1), 0
	for c := 0; c < 5; c++ {
		clock := sys.Series(core.ClusterSeriesClock(c))
		fc := sys.Series(core.ClusterSeriesFC(c))
		sc := sys.Series(core.ClusterSeriesSC(c))
		if clock == nil || fc == nil || sc == nil {
			continue
		}
		// Find, for each sample i, the sample j with Times[j] ≈ Times[i]+window.
		j := 0
		for i := 0; i < clock.Len(); i++ {
			target := clock.Times[i] + window
			for j < clock.Len() && clock.Times[j] < target {
				j++
			}
			if j >= clock.Len() {
				break
			}
			dt := clock.Times[j] - clock.Times[i]
			rate := (clock.Values[j] - clock.Values[i]) / dt
			if clock.Times[i] < skipUntil {
				continue // forced phase + margin
			}
			a1Lo, a1Hi = math.Min(a1Lo, rate), math.Max(a1Hi, rate)
			a1N++
			allFC, allSC := true, true
			for m := i; m <= j; m++ {
				if fc.Values[m] < 0.5 {
					allFC = false
				}
				if sc.Values[m] < 0.5 {
					allSC = false
				}
			}
			if allSC {
				scMax = math.Max(scMax, rate)
				scN++
			}
			if allFC {
				fcMin = math.Min(fcMin, rate)
				fcN++
			}
			// Reset j for the next i (monotone two-pointer).
			j = i + 1
		}
	}

	a1Ceil := (1 + p.RhoBar) * (1 + p.MuBar)
	tbl.AddRow("A1 lower (rate ≥ 1)", fmt.Sprintf("%d", a1N), f3(a1Lo), "1", okFail(a1Lo >= 1-1e-9))
	tbl.AddRow("A1 upper (rate ≤ (1+ρ̄)(1+µ̄))", fmt.Sprintf("%d", a1N), f3(a1Hi), f3(a1Ceil), okFail(a1Hi <= a1Ceil+1e-9))
	if scN > 0 {
		tbl.AddRow("A2 (SC ⇒ rate ≤ 1+ρ̄)", fmt.Sprintf("%d", scN), f3(scMax), f3(1+p.RhoBar), okFail(scMax <= 1+p.RhoBar+1e-9))
	} else {
		tbl.AddRow("A2 (SC ⇒ rate ≤ 1+ρ̄)", "0", "-", f3(1+p.RhoBar), "no episodes")
	}
	if fcN > 0 {
		tbl.AddRow("A3 (FC ⇒ rate ≥ 1+µ̄)", fmt.Sprintf("%d", fcN), f3(fcMin), f3(1+p.MuBar), okFail(fcMin >= 1+p.MuBar-1e-9))
	} else {
		tbl.AddRow("A3 (FC ⇒ rate ≥ 1+µ̄)", "0", "-", f3(1+p.MuBar), "no episodes")
	}
	tbl.AddRow("A4 (µ̄/ρ̄ > 1)", "-", f3(p.MuBar/p.RhoBar), "> 1", okFail(p.MuBar/p.RhoBar > 1))
	tbl.AddNote("rates measured over %.2gs windows during which the condition held at every sample", window)
	tbl.AddNote("FC/SC episodes created by forcing cluster 0 fast for %d rounds, then releasing; the forced phase itself is excluded from the checks", buildRounds)
	rc.progressf("  E10: A1 samples=%d, SC episodes=%d, FC episodes=%d", a1N, scN, fcN)
	return tbl, nil
}
