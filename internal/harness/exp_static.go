package harness

import (
	"fmt"

	"ftgcs/internal/graph"
	"ftgcs/internal/params"
	"ftgcs/internal/sim"
)

// runE7 — Inequality (1): with k = 3f+1 nodes failing independently with
// probability p, Pr[> f failures in a cluster] ≤ (3ep)^{f+1}. We compare
// the closed-form bound against the exact binomial tail and a Monte Carlo
// estimate.
func runE7(rc RunConfig) (*Table, error) {
	trials := 400000
	if rc.Quick {
		trials = 40000
	}
	tbl := &Table{
		ID:     "E7",
		Title:  "Cluster failure probability: Monte Carlo vs exact vs paper bound",
		Claim:  "Inequality (1): Pr[>f faults | k=3f+1, iid p] ≤ (3ep)^{f+1}",
		Header: []string{"f", "k", "p", "monte carlo", "exact", "bound (3ep)^{f+1}", "bound holds"},
	}
	rng := sim.NewRNG(rc.Seed+70, 0)
	for _, f := range []int{1, 2, 3} {
		k := 3*f + 1
		for _, pf := range []float64{0.01, 0.05, 0.1} {
			bad := 0
			for i := 0; i < trials; i++ {
				failures := 0
				for j := 0; j < k; j++ {
					if rng.Bernoulli(pf) {
						failures++
					}
				}
				if failures > f {
					bad++
				}
			}
			mc := float64(bad) / float64(trials)
			exact := params.ExactClusterFailureProb(f, pf)
			bound := params.ClusterFailureProbBound(f, pf)
			tbl.AddRow(fmt.Sprintf("%d", f), fmt.Sprintf("%d", k), f3(pf),
				f3(mc), f3(exact), f3(bound), okFail(exact <= bound))
		}
	}
	tbl.AddNote("with f = Θ(log n) the whole system survives constant per-node failure probability w.h.p. (paper §1)")
	return tbl, nil
}

// runE11 — Theorem 1.1 overheads: the augmentation multiplies nodes by
// k = 3f+1 = O(f) and replaces each base edge by k² = O(f²) physical edges
// (plus k(k−1)/2 cluster edges per node).
func runE11(rc RunConfig) (*Table, error) {
	tbl := &Table{
		ID:     "E11",
		Title:  "Augmentation overhead accounting across topology families",
		Claim:  "Theorem 1.1: O(f) node and O(f²) edge overheads (k = 3f+1)",
		Header: []string{"base graph", "f", "k", "|𝒞|→|V|", "|ℰ|→|E|", "node ×", "edge ×/edge"},
	}
	bases := []*graph.Graph{
		graph.Line(8), graph.Ring(8), graph.Grid(4, 4), graph.BalancedTree(2, 3), graph.Hypercube(3),
	}
	for _, base := range bases {
		for _, f := range []int{1, 2, 3} {
			k := 3*f + 1
			a, err := graph.Augment(base, k)
			if err != nil {
				return nil, err
			}
			o := a.Overhead()
			perEdge := 0.0
			if o.BaseEdges > 0 {
				perEdge = float64(o.InterclusterEdges) / float64(o.BaseEdges)
			}
			tbl.AddRow(base.Name(), fmt.Sprintf("%d", f), fmt.Sprintf("%d", k),
				fmt.Sprintf("%d→%d", o.BaseNodes, o.Nodes),
				fmt.Sprintf("%d→%d", o.BaseEdges, o.Edges),
				f3(o.NodeFactor), f3(perEdge))
		}
	}
	tbl.AddNote("node factor is exactly k = 3f+1 ∈ O(f); intercluster edge factor is exactly k² ∈ O(f²)")
	tbl.AddNote("tolerating f faulty neighbors requires degree > f, so both overheads are asymptotically optimal (paper abstract)")
	return tbl, nil
}

// runE14 — Eq. (5)/(12) feasibility: the contraction α_g < 1 bounds the
// admissible drift ρ for each (c₂, ε) choice. The paper's constants demand
// "sufficiently small ρ"; this experiment maps the region.
func runE14(rc RunConfig) (*Table, error) {
	tbl := &Table{
		ID:     "E14",
		Title:  "Feasible drift region per analysis-constant choice (d=1ms, U=0.1ms)",
		Claim:  "Eq. (5)/(11)/(12): α_g < 1 requires ρ small; paper constants ⇒ ρ ≲ 2·10⁻⁶",
		Header: []string{"c₂", "ε", "max feasible ρ", "α_g @ ρ/2", "E @ ρ/2", "T @ ρ/2"},
	}
	configs := []struct {
		c2, eps float64
	}{
		{32, 1.0 / 4096}, // the paper's Eq. (5)
		{32, 1.0 / 64},
		{8, 1.0 / 8}, // Practical preset
		{4, 1.0 / 4}, // experiment preset
	}
	for _, c := range configs {
		rhoMax := params.FeasibleRhoMax(c.c2, c.eps, 1e-3, 1e-4)
		if rhoMax == 0 {
			tbl.AddRow(f3(c.c2), f3(c.eps), "0 (infeasible)", "-", "-", "-")
			continue
		}
		p, err := params.Derive(params.Config{
			Rho: rhoMax / 2, Delay: 1e-3, Uncertainty: 1e-4, C2: c.c2, Eps: c.eps,
		})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(f3(c.c2), f3(c.eps), f3(rhoMax), f3(p.AlphaG), f3(p.EG), f3(p.T))
	}
	tbl.AddNote("paper row: feasibility ends near ρ ≈ 2·10⁻⁶, matching the 'sufficiently small ρ' hypothesis of Lemma 3.6 / Claim B.16")
	tbl.AddNote("E and T grow as 1/ε·(ρd+U) and c₁·E: the proof constants trade enormous rounds for provable margins")
	return tbl, nil
}
