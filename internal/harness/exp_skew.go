package harness

import (
	"fmt"

	"ftgcs"
	"ftgcs/internal/byzantine"
	"ftgcs/internal/core"
	"ftgcs/internal/graph"
	"ftgcs/internal/metrics"
	"ftgcs/internal/params"
)

// lineWithFaults builds a line of clusters with one Byzantine node per
// cluster, running the given strategy.
func lineWithFaults(clusters, k int, strat func() byzantine.Strategy) (*graph.Graph, []core.FaultSpec) {
	base := graph.Line(clusters)
	faults := make([]core.FaultSpec, 0, clusters)
	for c := 0; c < clusters; c++ {
		faults = append(faults, core.FaultSpec{
			Node:     c*k + k - 1, // last member of each cluster
			Strategy: strat(),
		})
	}
	return base, faults
}

// runE1 — Theorem 1.1: local skew between physical neighbors is
// O((ρd+U)·log D) under f Byzantine nodes per cluster. We sweep the line
// length, drive skew with the alternating-halves rate adversary, and check
// (a) the bound holds at every D, (b) growth is strongly sublinear.
func runE1(rc RunConfig) (*Table, error) {
	p := mustParams()
	k, f := 4, 1
	diameters := []int{2, 4, 8, 16}
	roundsFor := func(d int) float64 { return 1000 + 300*float64(d) }
	if rc.Quick {
		diameters = []int{2, 4, 8}
		roundsFor = func(d int) float64 { return 400 + 150*float64(d) }
	}

	scenarios := make([]*ftgcs.Scenario, 0, len(diameters))
	for _, d := range diameters {
		// The horizon scales with D so the drift adversary can build
		// D-proportional global pressure (global skew = Θ(κD) needs
		// Θ(κD/ρ) time); the halves flip twice per run.
		horizon := roundsFor(d) * p.T
		base, faults := lineWithFaults(d+1, k, func() byzantine.Strategy { return byzantine.AdaptiveTwoFaced{} })
		scenarios = append(scenarios, ftgcs.NewScenario(
			ftgcs.WithName("D=%d", d),
			ftgcs.WithTopology(base),
			ftgcs.WithClusters(k, f),
			ftgcs.WithDerivedParams(p),
			ftgcs.WithSeed(rc.Seed+int64(d)),
			ftgcs.WithDrift(ftgcs.AlternatingHalvesDrift{Period: horizon / 3}),
			ftgcs.WithFaults(faults...),
			ftgcs.WithHorizonRounds(roundsFor(d)),
		))
	}
	results, err := rc.runSweep(scenarios)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:     "E1",
		Title:  "Local skew vs diameter (line of clusters, f=1 adaptive equivocator per cluster)",
		Claim:  "Theorem 1.1: |L_v − L_w| = O((ρd+U)·log D) for {v,w} ∈ E",
		Header: []string{"D", "nodes", "local skew", "local bound", "within", "global skew", "global/local"},
	}
	var ds, skews, globals []float64
	for i, d := range diameters {
		sum := results[i].Summary
		bound := p.NodeLocalSkewBound(d)
		ds = append(ds, float64(d))
		skews = append(skews, sum.MaxLocalNode)
		globals = append(globals, sum.MaxGlobal)
		tbl.AddRow(fmt.Sprintf("%d", d), fmt.Sprintf("%d", (d+1)*k),
			f3(sum.MaxLocalNode), f3(bound), okFail(sum.MaxLocalNode <= bound),
			f3(sum.MaxGlobal), fmt.Sprintf("%.1f×", sum.MaxGlobal/sum.MaxLocalNode))
		rc.progressf("  E1 D=%d: local=%.3g bound=%.3g global=%.3g events=%d",
			d, sum.MaxLocalNode, bound, sum.MaxGlobal, sum.Events)
	}
	if expL, err := metrics.GrowthExponent(ds, skews); err == nil {
		if expG, err2 := metrics.GrowthExponent(ds, globals); err2 == nil {
			tbl.AddNote("growth exponents (∝ D^p): local p=%.2f, global p=%.2f — the gradient property: global skew grows with D while neighbor skew stays pinned at the level-1 trigger band ≈ 2κ−δ = %.3g", expL, expG, 2*p.Kappa-p.Delta)
		}
	}
	if a, b, r2, err := metrics.FitLogarithm(ds, skews); err == nil {
		tbl.AddNote("local-skew log fit: ≈ %.3g·log₂D %+.3g (R²=%.2f); the O(κ·log D) bound holds with large margin", a, b, r2)
	}
	tbl.AddNote("drift adversary: halves of the line alternate between rates 1 and 1+ρ, flipping twice per run")
	return tbl, nil
}

// runE6 — Theorem C.3 and Lemma C.2: the global skew stays O(δD) and the
// max-estimates M_v never exceed L_max while trailing it by at most O(δD).
func runE6(rc RunConfig) (*Table, error) {
	p := mustParams()
	k, f := 4, 1
	diameters := []int{2, 4, 8}
	rounds := 2500.0
	if rc.Quick {
		diameters = []int{2, 4}
		rounds = 900
	}
	scenarios := make([]*ftgcs.Scenario, 0, len(diameters))
	for _, d := range diameters {
		base, faults := lineWithFaults(d+1, k, func() byzantine.Strategy { return byzantine.Silent{} })
		scenarios = append(scenarios, ftgcs.NewScenario(
			ftgcs.WithName("D=%d", d),
			ftgcs.WithTopology(base),
			ftgcs.WithClusters(k, f),
			ftgcs.WithDerivedParams(p),
			ftgcs.WithSeed(rc.Seed+60+int64(d)),
			ftgcs.WithDrift(ftgcs.HalvesDrift{}),
			ftgcs.WithFaults(faults...),
			ftgcs.WithHorizonRounds(rounds),
		))
	}
	results, err := rc.runSweep(scenarios)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:     "E6",
		Title:  "Global skew and max-estimate health (line, f=1 silent Byzantine per cluster)",
		Claim:  "Theorem C.3: global skew = O(δD); Lemma C.2: L_max ≥ M_v ≥ L_max − O(δD)",
		Header: []string{"D", "global skew", "bound O(δD)", "within", "max M_v lag", "M_v>L_max"},
	}
	for i, d := range diameters {
		sum := results[i].Summary
		bound := p.GlobalSkewBound(d)
		tbl.AddRow(fmt.Sprintf("%d", d), f3(sum.MaxGlobal), f3(bound),
			okFail(sum.MaxGlobal <= bound), f3(sum.MaxMaxEstLag),
			okFail(sum.MaxEstViolations == 0))
		rc.progressf("  E6 D=%d: global=%.3g bound=%.3g lag=%.3g", d, sum.MaxGlobal, bound, sum.MaxMaxEstLag)
	}
	tbl.AddNote("δ = (k_stable+5)·E = %.3g; M_v grows at h/(1+ρ) locally and adopts f+1-confirmed levels", p.Delta)
	return tbl, nil
}

// runE13 — Theorem 1.1's prefactor: at fixed D the local skew scales with
// the link quality ρd+U. We sweep U (and one d variant) and compare the
// measured skew against κ (itself ∝ (ρd+U)/(1−α)); the measured/κ ratio
// should stay roughly constant across the sweep.
func runE13(rc RunConfig) (*Table, error) {
	type pt struct {
		d, u float64
	}
	pts := []pt{
		{1e-3, 5e-5}, {1e-3, 1e-4}, {1e-3, 3e-4}, {1e-3, 6e-4}, {3e-3, 1e-4},
	}
	rounds := 2200.0
	if rc.Quick {
		pts = []pt{{1e-3, 5e-5}, {1e-3, 3e-4}}
		rounds = 900
	}
	ps := make([]params.Params, 0, len(pts))
	scenarios := make([]*ftgcs.Scenario, 0, len(pts))
	for _, c := range pts {
		cfg := physicalDefault()
		cfg.Delay, cfg.Uncertainty = c.d, c.u
		p, err := params.Derive(cfg)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
		base, faults := lineWithFaults(5, 4, func() byzantine.Strategy { return byzantine.TwoFaced{} })
		scenarios = append(scenarios, ftgcs.NewScenario(
			ftgcs.WithName("d=%.0e U=%.0e", c.d, c.u),
			ftgcs.WithTopology(base),
			ftgcs.WithClusters(4, 1),
			ftgcs.WithDerivedParams(p),
			ftgcs.WithSeed(rc.Seed+130),
			ftgcs.WithDrift(ftgcs.AlternatingHalvesDrift{Period: rounds * p.T / 2}),
			ftgcs.WithFaults(faults...),
			ftgcs.WithHorizonRounds(rounds),
		))
	}
	results, err := rc.runSweep(scenarios)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:     "E13",
		Title:  "Local skew scaling in link quality (line D=4, f=1 per cluster)",
		Claim:  "Theorem 1.1: skew prefactor ∝ (ρd+U); measured/κ ratio ≈ constant across the sweep",
		Header: []string{"d", "U", "ρd+U", "κ", "measured", "measured/κ", "within bound"},
	}
	var quality, skews []float64
	for i, c := range pts {
		p := ps[i]
		sum := results[i].Summary
		bound := p.NodeLocalSkewBound(4)
		q := p.Rho*c.d + c.u
		quality = append(quality, q)
		skews = append(skews, sum.MaxLocalNode)
		tbl.AddRow(f3(c.d), f3(c.u), f3(q), f3(p.Kappa), f3(sum.MaxLocalNode),
			f3(sum.MaxLocalNode/p.Kappa), okFail(sum.MaxLocalNode <= bound))
		rc.progressf("  E13 d=%.0e U=%.0e: skew=%.3g κ=%.3g", c.d, c.u, sum.MaxLocalNode, p.Kappa)
	}
	if len(quality) >= 3 {
		if exp, err := metrics.GrowthExponent(quality, skews); err == nil {
			tbl.AddNote("skew ∝ (ρd+U)^p with p ≈ %.2f (linear scaling expected: p ≈ 1)", exp)
		}
	}
	return tbl, nil
}
