package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ftgcs"
)

// TestExperimentTablesGolden regenerates every experiment table (E1–E14
// and the A1–A3 ablations) in quick mode at seed 1 and requires the output
// to be byte-identical to the committed goldens.
//
// The goldens were produced by the pre-optimization simulation substrate
// (container/heap engine, closure-carrying transport, map-based cluster
// state); byte identity is the correctness proof that the pooled
// zero-allocation hot path preserves event ordering, RNG streams and
// floating-point arithmetic exactly. Regenerate with:
//
//	go run ./cmd/ftgcs-experiments -quick -seed 1 \
//	    > internal/harness/testdata/golden_quick_seed1_experiments.txt
//	go run ./cmd/ftgcs-experiments -quick -seed 1 -ablations \
//	    > internal/harness/testdata/golden_quick_seed1_ablations.txt
//
// but only after establishing that the behavioral change is intended.
func TestExperimentTablesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-mode regeneration (~30s) skipped in -short")
	}
	rc := RunConfig{Quick: true, Seed: 1}

	var got bytes.Buffer
	if err := RunAll(rc, &got); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "golden_quick_seed1_experiments.txt", got.Bytes())

	var abl bytes.Buffer
	for _, e := range Ablations() {
		tbl, err := e.Run(rc)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		tbl.Render(&abl)
	}
	compareGolden(t, "golden_quick_seed1_ablations.txt", abl.Bytes())
}

// TestExperimentTablesGoldenNoReuse repeats the golden regeneration with
// the sweep runner's system-reuse fast path disabled. Together with
// TestExperimentTablesGolden (which runs with reuse enabled, the default)
// this is the differential proof that arena-reset reuse is byte-invisible
// across the full E1–E14 and A1–A3 harness: both paths must reproduce the
// same committed goldens — which themselves predate the reuse machinery.
func TestExperimentTablesGoldenNoReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-mode regeneration (~30s) skipped in -short")
	}
	rc := RunConfig{Quick: true, Seed: 1, NoReuse: true}

	var got bytes.Buffer
	if err := RunAll(rc, &got); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "golden_quick_seed1_experiments.txt", got.Bytes())

	var abl bytes.Buffer
	for _, e := range Ablations() {
		tbl, err := e.Run(rc)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		tbl.Render(&abl)
	}
	compareGolden(t, "golden_quick_seed1_ablations.txt", abl.Bytes())
}

// TestExperimentTablesGoldenPooled repeats the golden regeneration with
// one SystemPool shared across every experiment and ablation, twice
// over: the first pass populates the pool with every released system
// (sized so nothing evicts), the second pass serves from it — each
// experiment's scenarios reset systems built by the previous pass
// instead of building. Both passes must be byte-identical to the same
// committed goldens, which predate the reuse machinery and the pool
// entirely; the hits assertion keeps the second pass honest (scenarios
// that disqualify themselves from pooling — hooks, named topologies —
// still run, they just build fresh).
func TestExperimentTablesGoldenPooled(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-mode regeneration (~60s) skipped in -short")
	}
	rc := RunConfig{Quick: true, Seed: 1, Pool: ftgcs.NewSystemPool(64)}

	for pass := 1; pass <= 2; pass++ {
		var got bytes.Buffer
		if err := RunAll(rc, &got); err != nil {
			t.Fatal(err)
		}
		compareGolden(t, "golden_quick_seed1_experiments.txt", got.Bytes())

		var abl bytes.Buffer
		for _, e := range Ablations() {
			tbl, err := e.Run(rc)
			if err != nil {
				t.Fatalf("pass %d, %s: %v", pass, e.ID, err)
			}
			tbl.Render(&abl)
		}
		compareGolden(t, "golden_quick_seed1_ablations.txt", abl.Bytes())
	}
	if ps := rc.Pool.Stats(); ps.Hits == 0 {
		t.Fatalf("shared pool never hit across passes; differential is vacuous: %+v", ps)
	}
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Point at the first differing line to keep failures readable.
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			t.Fatalf("%s: line %d differs\n got: %s\nwant: %s", name, i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("%s: output length differs: got %d lines, want %d", name, len(gl), len(wl))
}
