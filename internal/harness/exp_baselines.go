package harness

import (
	"fmt"

	"ftgcs"
	"ftgcs/internal/baseline"
	"ftgcs/internal/byzantine"
	"ftgcs/internal/core"
	"ftgcs/internal/graph"
	"ftgcs/internal/metrics"
	"ftgcs/internal/params"
)

// runE8 — the paper's motivating observation (§1): the plain GCS algorithm
// (k=1) "utterly fails in face of non-benign faults" — a single Byzantine
// node invalidates any non-trivial skew bound — while the clustered
// construction at k=3f+1 restores it.
func runE8(rc RunConfig) (*Table, error) {
	p := mustParams()
	rounds := 2500.0
	if rc.Quick {
		rounds = 900
	}
	ringSize := 8
	// Cadence equivocation: independent off-nominal pulse trains per
	// victim — the paper's "sub-nominal clock speed" example. Estimates
	// follow the cadence without bound; every per-round innovation stays
	// plausible.
	attack := func() ftgcs.Attack { return byzantine.CadenceTwoFaced{} }

	type variant struct {
		name   string
		k, f   int
		faults []core.FaultSpec
	}
	variants := []variant{
		{"plain GCS (k=1), fault-free", 1, 0, nil},
		{"plain GCS (k=1), 1 Byzantine", 1, 0,
			[]core.FaultSpec{{Node: 0, Strategy: attack()}}},
		{"FTGCS (k=4, f=1), 1 Byzantine/cluster", 4, 1, nil},
	}
	scenarios := make([]*ftgcs.Scenario, 0, len(variants))
	for i, v := range variants {
		opts := []ftgcs.Option{
			ftgcs.WithName("%s", v.name),
			ftgcs.WithTopology(graph.Ring(ringSize)),
			ftgcs.WithClusters(v.k, v.f),
			ftgcs.WithDerivedParams(p),
			ftgcs.WithSeed(rc.Seed + 80 + int64(i)),
			// Mild drift (intra-cluster only): the Byzantine attack, not
			// the rate adversary, must be the dominant skew source here.
			ftgcs.WithDrift(ftgcs.SpreadDrift{}),
			ftgcs.WithFaults(v.faults...),
			ftgcs.WithHorizonRounds(rounds),
		}
		if i == 2 {
			// FTGCS variant: one two-faced node in every cluster.
			opts = append(opts, ftgcs.WithAttackPerCluster(attack, 0))
		}
		scenarios = append(scenarios, ftgcs.NewScenario(opts...))
	}
	results, err := rc.runSweep(scenarios)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:     "E8",
		Title:  fmt.Sprintf("One Byzantine node vs plain GCS (ring of %d clusters)", ringSize),
		Claim:  "§1: plain GCS has no non-trivial skew bound under 1 Byzantine fault; FTGCS restores O((ρd+U)logD)",
		Header: []string{"system", "local skew (correct pairs)", "vs fault-free", "vs FTGCS bound", "bounded"},
	}
	bound := p.NodeLocalSkewBound(ringSize / 2)
	faultFree := results[0].Summary.MaxLocalNode
	for i, v := range variants {
		sum := results[i].Summary
		ratio := sum.MaxLocalNode / faultFree
		tbl.AddRow(v.name, f3(sum.MaxLocalNode), fmt.Sprintf("%.1f×", ratio),
			f3(sum.MaxLocalNode/bound), okFail(sum.MaxLocalNode <= bound))
		rc.progressf("  E8 %s: local=%.3g", v.name, sum.MaxLocalNode)
	}
	tbl.AddNote("attack: cadence equivocation — a fast pulse train (cadence ×(1+ε)) to half the neighbors, slow to the rest")
	tbl.AddNote("skew is measured between correct nodes only; the Byzantine node itself is excluded")
	return tbl, nil
}

// runE9 — the "simplistic approach" baseline (§1): master/slave TreeSync
// achieves optimal global skew but compresses it onto single edges — local
// skew grows linearly in D under the delay-bias reveal adversary, while
// FTGCS stays flat/logarithmic.
//
// The TreeSync runs use the baseline package's own system type, mounted
// as a custom ftgcs.Backend, so all three arms — FTGCS, TreeSync steady,
// TreeSync reveal — go through one Scenario sweep.
func runE9(rc RunConfig) (*Table, error) {
	// Larger uncertainty makes the per-hop bias (±U/2) the dominant term.
	cfg := params.Config{Rho: 1e-3, Delay: 1e-3, Uncertainty: 5e-4, C2: 4, Eps: 0.25, KStable: 1, CGlobal: 8}
	p, err := params.Derive(cfg)
	if err != nil {
		return nil, err
	}
	diameters := []int{2, 4, 8}
	rounds := 60.0
	if rc.Quick {
		diameters = []int{2, 4}
		rounds = 30
	}
	horizon := rounds * p.T
	fine := (p.Delay + p.EG) / 2 // sample fast enough to catch wavefronts

	// One combined sweep: the FTGCS arm (one scenario per diameter),
	// followed by the TreeSync steady/reveal pairs on the baseline
	// backend. Every arm reports the peak cluster-level local skew after
	// a horizon/3 warmup through the same observer.
	observeLocal := ftgcs.WithObserver(func(sys *ftgcs.System) (any, error) {
		return sys.Summary(horizon / 3).MaxLocalCluster, nil
	})
	treeScenario := func(name string, d int, delay core.DelayModel) *ftgcs.Scenario {
		return ftgcs.NewScenario(
			ftgcs.WithName("%s", name),
			ftgcs.WithDerivedParams(p),
			ftgcs.WithSeed(rc.Seed+90),
			ftgcs.WithHorizon(horizon),
			ftgcs.WithBackend(func(seed int64, p ftgcs.Params) (ftgcs.Backend, error) {
				return baseline.NewSystem(baseline.Config{
					Base: graph.Line(d + 1), Root: 0, K: 4, F: 1, Params: p, Seed: seed,
					Drift:          core.GradientDrift{},
					Delay:          delay,
					SampleInterval: fine,
				})
			}),
			observeLocal,
		)
	}
	scenarios := make([]*ftgcs.Scenario, 0, 3*len(diameters))
	for _, d := range diameters {
		scenarios = append(scenarios, ftgcs.NewScenario(
			ftgcs.WithName("FTGCS D=%d", d),
			ftgcs.WithTopology(graph.Line(d+1)),
			ftgcs.WithClusters(4, 1),
			ftgcs.WithDerivedParams(p),
			ftgcs.WithSeed(rc.Seed+90),
			ftgcs.WithDrift(ftgcs.GradientDrift{}),
			ftgcs.WithDelay(ftgcs.PhasedRevealDelayModel{SwitchAt: horizon / 2}),
			ftgcs.WithGlobalSkew(false),
			ftgcs.WithSampleInterval(fine),
			ftgcs.WithHorizonRounds(rounds),
			observeLocal,
		))
	}
	for _, d := range diameters {
		scenarios = append(scenarios,
			treeScenario(fmt.Sprintf("TreeSync steady D=%d", d), d, core.ExtremalDelayModel{}),
			treeScenario(fmt.Sprintf("TreeSync reveal D=%d", d), d, core.PhasedRevealDelayModel{SwitchAt: horizon / 2}),
		)
	}
	results, err := rc.runSweep(scenarios)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:     "E9",
		Title:  "TreeSync (master/slave echo) vs FTGCS under the hidden-skew reveal adversary",
		Claim:  "§1/[15]: master-slave compresses global skew onto one edge (local skew Θ(D·U)); GCS keeps O(κ log D)",
		Header: []string{"D", "TreeSync steady", "TreeSync reveal", "FTGCS reveal", "tree reveal/steady"},
	}
	var ds, tree, gcsSkews []float64
	for i, d := range diameters {
		steady := results[len(diameters)+2*i].Value.(float64)
		reveal := results[len(diameters)+2*i+1].Value.(float64)
		gcsSkew := results[i].Value.(float64)

		ds = append(ds, float64(d))
		tree = append(tree, reveal)
		gcsSkews = append(gcsSkews, gcsSkew)
		tbl.AddRow(fmt.Sprintf("%d", d), f3(steady), f3(reveal), f3(gcsSkew),
			fmt.Sprintf("%.1f×", reveal/steady))
		rc.progressf("  E9 D=%d: tree steady=%.3g reveal=%.3g gcs=%.3g", d, steady, reveal, gcsSkew)
	}
	if len(ds) >= 3 {
		if expTree, err := metrics.GrowthExponent(ds, tree); err == nil {
			tbl.AddNote("TreeSync reveal growth exponent: %.2f (linear compression expected: ≈ 1)", expTree)
		}
		if expG, err := metrics.GrowthExponent(ds, gcsSkews); err == nil {
			tbl.AddNote("FTGCS reveal growth exponent: %.2f (flat/logarithmic expected: ≈ 0)", expG)
		}
	}
	tbl.AddNote("adversary: delays biased parent→slow for the first half of the run, then flipped — the hidden per-hop estimate bias (±U/2) is revealed as a correction wavefront")
	tbl.AddNote("at small D the baseline's absolute skew can be lower (constants); the claim is about growth shape")
	return tbl, nil
}

// runE12 — resilience boundary: k ≥ 3f+1 is necessary [3,12]. Within the
// configured budget (≤ f equivocators) the intra-cluster bound holds; one
// extra equivocator destroys it.
func runE12(rc RunConfig) (*Table, error) {
	p := mustParams()
	rounds := 400.0
	if rc.Quick {
		rounds = 150
	}
	type scenario struct {
		k, f, actual int
	}
	cases := []scenario{
		{4, 1, 0}, {4, 1, 1}, {4, 1, 2},
		{7, 2, 2}, {7, 2, 3},
	}
	if rc.Quick {
		cases = cases[:3]
	}
	scenarios := make([]*ftgcs.Scenario, 0, len(cases))
	for _, sc := range cases {
		var faults []core.FaultSpec
		for i := 0; i < sc.actual; i++ {
			faults = append(faults, core.FaultSpec{
				Node:     sc.k - 1 - i,
				Strategy: byzantine.AdaptiveTwoFaced{},
			})
		}
		scenarios = append(scenarios, ftgcs.NewScenario(
			ftgcs.WithName("k=%d f=%d byz=%d", sc.k, sc.f, sc.actual),
			ftgcs.WithTopology(graph.Line(1)),
			ftgcs.WithClusters(sc.k, sc.f),
			ftgcs.WithDerivedParams(p),
			ftgcs.WithSeed(rc.Seed+120+int64(sc.k*10+sc.actual)),
			ftgcs.WithDrift(ftgcs.SpreadDrift{}),
			ftgcs.WithFaults(faults...),
			ftgcs.WithGlobalSkew(false),
			ftgcs.WithHorizonRounds(rounds),
		))
	}
	results, err := rc.runSweep(scenarios)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:     "E12",
		Title:  "Resilience boundary: equivocating coalitions around the f budget (single cluster)",
		Claim:  "[3,12] via Theorem 1.1's k ≥ 3f+1: ≤ f Byzantine ⇒ bound holds; > f ⇒ no guarantee",
		Header: []string{"k", "f (budget)", "actual byz", "intra skew", "bound", "within", "expected"},
	}
	for i, sc := range cases {
		sum := results[i].Summary
		bound := p.ClusterSkewBound()
		within := sum.MaxIntraSkew <= bound
		expected := "hold"
		if sc.actual > sc.f {
			expected = "may break"
		}
		tbl.AddRow(fmt.Sprintf("%d", sc.k), fmt.Sprintf("%d", sc.f), fmt.Sprintf("%d", sc.actual),
			f3(sum.MaxIntraSkew), f3(bound), okFail(within), expected)
		rc.progressf("  E12 k=%d f=%d actual=%d: intra=%.3g within=%v", sc.k, sc.f, sc.actual, sum.MaxIntraSkew, within)
	}
	tbl.AddNote("attack: adaptive two-faced equivocation (per-round drag ϕτ₃/2 anchored to victims' pulses); a coalition of f+1 drags correct members apart without limit")
	return tbl, nil
}
