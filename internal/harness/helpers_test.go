package harness

import (
	"math"
	"testing"

	"ftgcs/internal/byzantine"
)

func TestDiameterSequence(t *testing.T) {
	diams := map[int]float64{3: 0.3, 1: 0.1, 2: 0.2, 9: 0.9}
	seq := diameterSequence(diams, 5)
	want := []float64{0.1, 0.2, 0.3}
	if len(seq) != len(want) {
		t.Fatalf("len = %d, want %d", len(seq), len(want))
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Errorf("seq[%d] = %v, want %v", i, seq[i], want[i])
		}
	}
	if got := diameterSequence(nil, 10); len(got) != 0 {
		t.Errorf("empty map should give empty sequence, got %v", got)
	}
}

func TestWindowedRateRange(t *testing.T) {
	// Constant rate 2: values = 2·times.
	times := []float64{0, 1, 2, 3, 4, 5}
	values := []float64{0, 2, 4, 6, 8, 10}
	lo, hi := windowedRateRange(times, values, 2, 0)
	if math.Abs(lo-2) > 1e-12 || math.Abs(hi-2) > 1e-12 {
		t.Errorf("constant rate: [%v, %v], want [2, 2]", lo, hi)
	}
	// Rate changes from 1 to 3 halfway.
	times2 := []float64{0, 1, 2, 3, 4}
	values2 := []float64{0, 1, 2, 5, 8}
	lo, hi = windowedRateRange(times2, values2, 1, 0)
	if lo != 1 || hi != 3 {
		t.Errorf("varying rate: [%v, %v], want [1, 3]", lo, hi)
	}
	// Warmup skips the early samples.
	lo, _ = windowedRateRange(times2, values2, 1, 2)
	if lo != 3 {
		t.Errorf("warmup skip: lo = %v, want 3", lo)
	}
	// Degenerate input.
	lo, hi = windowedRateRange([]float64{1}, []float64{1}, 1, 0)
	if !math.IsInf(lo, 1) || !math.IsInf(hi, -1) {
		t.Errorf("degenerate: [%v, %v]", lo, hi)
	}
}

func TestLineWithFaults(t *testing.T) {
	base, faults := lineWithFaults(4, 5, func() byzantine.Strategy { return byzantine.Silent{} })
	if base.N() != 4 {
		t.Errorf("base N = %d", base.N())
	}
	if len(faults) != 4 {
		t.Fatalf("faults = %d, want 4", len(faults))
	}
	for c, f := range faults {
		if f.Node != c*5+4 {
			t.Errorf("fault %d at node %d, want %d (last member)", c, f.Node, c*5+4)
		}
		if f.Strategy == nil {
			t.Errorf("fault %d has no strategy", c)
		}
	}
}

func TestPhysicalDefaultFeasible(t *testing.T) {
	p := mustParams()
	if p.AlphaG >= 1 || p.T <= 0 || p.Kappa <= 0 {
		t.Errorf("default harness parameters infeasible: %+v", p)
	}
	// The fast preset must keep the GCS base > 1 (axiom A4).
	if p.SigmaBase() <= 1 {
		t.Errorf("σ = %v, want > 1", p.SigmaBase())
	}
}

func TestAblationsRegistry(t *testing.T) {
	abl := Ablations()
	if len(abl) != 3 {
		t.Fatalf("ablations = %d, want 3", len(abl))
	}
	for _, e := range abl {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("malformed ablation %+v", e)
		}
		if _, err := ByID(e.ID); err != nil {
			t.Errorf("ByID(%s): %v", e.ID, err)
		}
	}
}
