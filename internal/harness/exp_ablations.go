package harness

import (
	"fmt"
	"math"

	"ftgcs"
	"ftgcs/internal/byzantine"
)

// Ablations returns the ablation studies: experiments probing design
// choices of the construction rather than paper claims. They are run by
// cmd/ftgcs-experiments -ablations and the A* benchmarks.
func Ablations() []Experiment {
	return []Experiment{
		{ID: "A1", Title: "Recovery from transient clock faults (self-stabilization probe)", Run: runA1},
		{ID: "A2", Title: "Trigger unit κ sensitivity", Run: runA2},
		{ID: "A3", Title: "Global-skew machinery ablation (Theorem C.3 rules on/off)", Run: runA3},
	}
}

// a1meas is what one A1 scenario observes: the skew levels around the
// injection.
type a1meas struct {
	peak, tail, pre float64
}

// runA1 — transient-fault recovery and its boundary. The implementation's
// plausibility filter (offsets beyond ±(τ₁+τ₂) are discarded — the defense
// that disarms drag-away attacks) doubles as the re-acquisition limit:
// clock corruption within the window heals in a few rounds through the
// ordinary Lynch–Welch corrections, while corruption beyond it leaves the
// victim permanently partitioned. This matches the paper's framing:
// Lynch–Welch alone is *not* self-stabilizing — recovering from arbitrary
// states requires the dedicated machinery of [8] (Khanchandani–Lenzen),
// which is out of scope here and explicitly so in the paper too.
func runA1(rc RunConfig) (*Table, error) {
	p := mustParams()
	rounds := 900.0
	if rc.Quick {
		rounds = 500
	}
	horizon := rounds * p.T
	injectAt := math.Floor(rounds/4) * p.T
	// The effective re-acquisition margin for a forward jump is the slack
	// between where cluster-mates' pulses land in the victim's round
	// (≈ τ₁ + d) and its compute deadline (τ₁+τ₂): jumping further than
	// τ₂ − d ≈ ϑ_g·E pushes every mate's pulse past the deadline and the
	// victim stops correcting entirely.
	margin := p.Tau2 - p.Delay
	window := p.Tau1 + p.Tau2
	type trial struct {
		label  string
		mag    float64
		expect string // "heals" or "partitions"
	}
	trials := []trial{
		{"0.4·(τ₂−d)", 0.4 * margin, "heals"},
		{"0.8·(τ₂−d)", 0.8 * margin, "heals"},
		{"2·(τ₁+τ₂)", 2 * window, "partitions"},
		{"10·(τ₁+τ₂)", 10 * window, "partitions"},
	}
	if rc.Quick {
		trials = []trial{trials[0], trials[2]}
	}

	scenarios := make([]*ftgcs.Scenario, 0, len(trials))
	for _, tr := range trials {
		mag := tr.mag
		base, faults := lineWithFaults(5, 4, func() byzantine.Strategy { return byzantine.Silent{} })
		scenarios = append(scenarios, ftgcs.NewScenario(
			ftgcs.WithName("offset %s", tr.label),
			ftgcs.WithTopology(base),
			ftgcs.WithClusters(4, 1),
			ftgcs.WithDerivedParams(p),
			ftgcs.WithSeed(rc.Seed+200),
			ftgcs.WithDrift(ftgcs.SpreadDrift{}),
			ftgcs.WithFaults(faults...),
			ftgcs.WithSampleInterval(p.T/4),
			ftgcs.WithHorizonRounds(rounds),
			// Corrupt node 10 (cluster 2, the middle of the line).
			ftgcs.WithMidRunHook(injectAt, func(sys *ftgcs.System) error {
				return sys.InjectClockFault(10, mag)
			}),
			ftgcs.WithObserver(func(sys *ftgcs.System) (any, error) {
				ser := sys.Series(ftgcs.SeriesLocalNode)
				var m a1meas
				for i, tt := range ser.Times {
					v := ser.Values[i]
					switch {
					case tt < injectAt && tt > injectAt/2:
						m.pre = math.Max(m.pre, v) // pre-injection steady level
					case tt >= injectAt:
						m.peak = math.Max(m.peak, v)
						if tt > horizon-horizon/5 {
							m.tail = math.Max(m.tail, v)
						}
					}
				}
				return m, nil
			}),
		))
	}
	results, err := rc.runSweep(scenarios)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:     "A1",
		Title:  "Recovery after corrupting one node's clock (line D=4, k=4, f=1)",
		Claim:  "re-acquisition works within the deadline margin τ₂−d ≈ ϑ_g·E; beyond it Lynch–Welch is not self-stabilizing (paper §1, [8])",
		Header: []string{"offset", "peak local skew", "tail local skew", "healed", "expected"},
	}
	for i, tr := range trials {
		m := results[i].Value.(a1meas)
		healed := m.tail <= 2*m.pre+p.EG
		tbl.AddRow(tr.label, f3(m.peak), f3(m.tail), okFail(healed), tr.expect)
		rc.progressf("  A1 m=%.3g: peak=%.3g tail=%.3g pre=%.3g", tr.mag, m.peak, m.tail, m.pre)
	}
	tbl.AddNote("fault: node 10's clock value jumps forward mid-run (transient corruption outside the Byzantine budget)")
	tbl.AddNote("measured re-acquisition margin ≈ τ₂−d = %.3g (mates' pulses must still land before the victim's compute deadline); beyond it the victim free-runs", margin)
	tbl.AddNote("matching the paper: Lynch–Welch alone is not self-stabilizing — arbitrary-state recovery needs the dedicated machinery of [8]")
	return tbl, nil
}

// runA2 — sensitivity of the local skew to the trigger unit κ. The
// construction sets κ = 3δ = 3(k_stable+5)·E (Lemma 4.8); smaller κ reacts
// earlier (smaller steady skew) but risks unfaithful executions where
// estimate error crosses the trigger slack; larger κ is safe but slack.
func runA2(rc RunConfig) (*Table, error) {
	pBase := mustParams()
	factors := []float64{0.5, 1, 2, 4}
	if rc.Quick {
		factors = []float64{1, 2}
	}
	rounds := 1200.0
	if rc.Quick {
		rounds = 600
	}
	scenarios := make([]*ftgcs.Scenario, 0, len(factors))
	for _, factor := range factors {
		p := pBase
		p.Kappa = pBase.Kappa * factor // δ unchanged: probes the κ/δ ratio
		base, faults := lineWithFaults(5, 4, func() byzantine.Strategy { return byzantine.Silent{} })
		scenarios = append(scenarios, ftgcs.NewScenario(
			ftgcs.WithName("κ ×%.1f", factor),
			ftgcs.WithTopology(base),
			ftgcs.WithClusters(4, 1),
			ftgcs.WithDerivedParams(p),
			ftgcs.WithSeed(rc.Seed+210),
			ftgcs.WithDrift(ftgcs.AlternatingHalvesDrift{Period: rounds * p.T / 2}),
			ftgcs.WithFaults(faults...),
			ftgcs.WithHorizonRounds(rounds),
		))
	}
	results, err := rc.runSweep(scenarios)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:     "A2",
		Title:  "Local skew vs trigger unit κ (line D=4, alternating-halves drift)",
		Claim:  "design choice: κ = 3δ balances reaction threshold against estimate slack",
		Header: []string{"κ multiplier", "κ", "local skew", "level-1 band 2κ−δ", "skew/κ"},
	}
	for i, factor := range factors {
		kappa := pBase.Kappa * factor
		sum := results[i].Summary
		tbl.AddRow(fmt.Sprintf("%.1f×", factor), f3(kappa), f3(sum.MaxLocalNode),
			f3(2*kappa-pBase.Delta), f3(sum.MaxLocalNode/kappa))
		rc.progressf("  A2 κ×%.1f: local=%.3g", factor, sum.MaxLocalNode)
	}
	tbl.AddNote("measured skew tracks the level-1 band 2κ−δ: the trigger unit directly sets the steady skew")
	tbl.AddNote("κ/δ < 3/2 would break trigger exclusivity (E5); κ/δ = 3 is the paper's choice")
	return tbl, nil
}

// runA3 — ablate the Theorem C.3 rules: without the M_v catch-up rule the
// gradient layer alone still bounds *local* skew, but nothing pulls
// laggards toward the global maximum, so the global skew keeps growing
// under a persistent rate gradient.
func runA3(rc RunConfig) (*Table, error) {
	p := mustParams()
	rounds := 2000.0
	if rc.Quick {
		rounds = 800
	}
	variants := []bool{true, false}
	scenarios := make([]*ftgcs.Scenario, 0, len(variants))
	for _, enabled := range variants {
		base, faults := lineWithFaults(9, 4, func() byzantine.Strategy { return byzantine.Silent{} })
		scenarios = append(scenarios, ftgcs.NewScenario(
			ftgcs.WithName("catch-up=%v", enabled),
			ftgcs.WithTopology(base),
			ftgcs.WithClusters(4, 1),
			ftgcs.WithDerivedParams(p),
			ftgcs.WithSeed(rc.Seed+220),
			ftgcs.WithDrift(ftgcs.HalvesDrift{}),
			ftgcs.WithFaults(faults...),
			ftgcs.WithGlobalSkew(enabled),
			ftgcs.WithHorizonRounds(rounds),
		))
	}
	results, err := rc.runSweep(scenarios)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:     "A3",
		Title:  "With vs without the global-skew machinery (line D=8, halves drift)",
		Claim:  "Theorem C.3's catch-up rule is what bounds the global skew; local skew needs only the triggers",
		Header: []string{"variant", "local skew", "global skew", "global bound O(δD)", "global within"},
	}
	for i, enabled := range variants {
		sum := results[i].Summary
		name := "with catch-up (full algorithm)"
		if !enabled {
			name = "without catch-up (triggers only)"
		}
		bound := p.GlobalSkewBound(8)
		tbl.AddRow(name, f3(sum.MaxLocalNode), f3(sum.MaxGlobal), f3(bound),
			okFail(sum.MaxGlobal <= bound))
		rc.progressf("  A3 enabled=%v: local=%.3g global=%.3g", enabled, sum.MaxGlobal, sum.MaxLocalNode)
	}
	tbl.AddNote("under a persistent rate gradient the FT triggers already chase the fastest cluster, so the ablated variant may still look bounded on short runs; the catch-up rule is what guarantees it")
	return tbl, nil
}
