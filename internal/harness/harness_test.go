package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:     "EX",
		Title:  "demo",
		Claim:  "claim text",
		Header: []string{"a", "bb"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	tbl.AddNote("note %d", 7)
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"EX", "demo", "claim text", "333", "note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	exps := All()
	if len(exps) != 14 {
		t.Fatalf("registry has %d experiments, want 14", len(exps))
	}
	for i, e := range exps {
		if e.ID != (&Table{ID: e.ID}).ID || e.Run == nil || e.Title == "" {
			t.Errorf("experiment %d malformed: %+v", i, e)
		}
		if idNum(e.ID) != i+1 {
			t.Errorf("experiment order broken at %s", e.ID)
		}
	}
	if _, err := ByID("E5"); err != nil {
		t.Errorf("ByID(E5): %v", err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("ByID(E99) should fail")
	}
}

// TestQuickExperiments runs every experiment and ablation in quick mode:
// the cheapest full-pipeline integration check the repository has.
func TestQuickExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still cost seconds")
	}
	for _, e := range append(All(), Ablations()...) {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(RunConfig{Quick: true, Seed: 1})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			var buf bytes.Buffer
			tbl.Render(&buf)
			if buf.Len() == 0 {
				t.Fatalf("%s rendered empty", e.ID)
			}
			t.Logf("\n%s", buf.String())
		})
	}
}

func TestOkFail(t *testing.T) {
	if okFail(true) != "ok" || okFail(false) != "VIOLATED" {
		t.Error("okFail markers")
	}
}
