package harness

import (
	"fmt"
	"math"
	"sort"

	"ftgcs"
	"ftgcs/internal/byzantine"
	"ftgcs/internal/core"
	"ftgcs/internal/graph"
	"ftgcs/internal/metrics"
	"ftgcs/internal/params"
)

// runE2 — Corollary 3.2: within a cluster of k ≥ 3f+1 nodes, the skew
// between correct members stays below 2·ϑ_g·E under every attack strategy.
func runE2(rc RunConfig) (*Table, error) {
	p := mustParams()
	rounds := 400.0
	if rc.Quick {
		rounds = 150
	}
	type cfg struct {
		k, f int
	}
	sizes := []cfg{{4, 1}, {7, 2}}
	if rc.Quick {
		sizes = []cfg{{4, 1}}
	}
	strategies := append([]byzantine.Strategy{nil}, byzantine.All()...)

	type variant struct {
		k, f int
		name string
	}
	var variants []variant
	var scenarios []*ftgcs.Scenario
	for _, sz := range sizes {
		for _, strat := range strategies {
			name := "none"
			var faults []core.FaultSpec
			if strat != nil {
				name = strat.Name()
				for i := 0; i < sz.f; i++ {
					faults = append(faults, core.FaultSpec{
						Node:     sz.k - 1 - i, // last f members
						Strategy: strat,
					})
				}
			}
			variants = append(variants, variant{sz.k, sz.f, name})
			scenarios = append(scenarios, ftgcs.NewScenario(
				ftgcs.WithName("k=%d f=%d %s", sz.k, sz.f, name),
				ftgcs.WithTopology(graph.Line(1)),
				ftgcs.WithClusters(sz.k, sz.f),
				ftgcs.WithDerivedParams(p),
				ftgcs.WithSeed(rc.Seed+int64(sz.k*100+len(name))),
				ftgcs.WithDrift(ftgcs.SpreadDrift{}),
				ftgcs.WithFaults(faults...),
				ftgcs.WithGlobalSkew(false),
				ftgcs.WithHorizonRounds(rounds),
			))
		}
	}
	results, err := rc.runSweep(scenarios)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:     "E2",
		Title:  "Intra-cluster skew under Byzantine attack (single cluster)",
		Claim:  "Corollary 3.2: |L_v − L_w| ≤ 2ϑ_g·E for correct v,w in one cluster",
		Header: []string{"k", "f", "attack", "max intra skew", "bound 2ϑgE", "ratio", "within"},
	}
	bound := p.ClusterSkewBound()
	for i, v := range variants {
		sum := results[i].Summary
		tbl.AddRow(fmt.Sprintf("%d", v.k), fmt.Sprintf("%d", v.f), v.name,
			f3(sum.MaxIntraSkew), f3(bound), f3(sum.MaxIntraSkew/bound),
			okFail(sum.MaxIntraSkew <= bound))
		rc.progressf("  E2 k=%d f=%d %s: intra=%.3g", v.k, v.f, v.name, sum.MaxIntraSkew)
	}
	tbl.AddNote("drift: member i at constant rate 1+ρ·i/(k−1) (max intra-cluster spread)")
	return tbl, nil
}

// runE3 — Proposition B.14 / Eq. (9): the pulse diameter contracts per
// round, e(r+1) ≤ α_g·e(r) + β_g, towards the steady state E. We inject an
// initial desynchronization (staggered protocol starts) and watch ‖p(r)‖
// converge; the fitted contraction must not exceed the paper's α_g, and
// the steady state must stay below E.
func runE3(rc RunConfig) (*Table, error) {
	p := mustParams()
	rounds := 400
	if rc.Quick {
		rounds = 150
	}
	staggers := []float64{0, p.EG, 2.5 * p.EG}
	scenarios := make([]*ftgcs.Scenario, 0, len(staggers))
	for _, st := range staggers {
		base, faults := lineWithFaults(1, 4, func() byzantine.Strategy { return byzantine.Silent{} })
		scenarios = append(scenarios, ftgcs.NewScenario(
			ftgcs.WithName("stagger=%.3g", st),
			ftgcs.WithTopology(base),
			ftgcs.WithClusters(4, 1),
			ftgcs.WithDerivedParams(p),
			ftgcs.WithSeed(rc.Seed+30),
			ftgcs.WithDrift(ftgcs.SpreadDrift{}),
			ftgcs.WithFaults(faults...),
			ftgcs.WithGlobalSkew(false),
			ftgcs.WithStaggerStart(st),
			ftgcs.WithHorizonRounds(float64(rounds)),
			ftgcs.WithObserver(func(sys *ftgcs.System) (any, error) {
				return sys.PulseDiameters(0), nil
			}),
		))
	}
	results, err := rc.runSweep(scenarios)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:     "E3",
		Title:  "Pulse-diameter convergence from initial desynchronization (k=4, f=1 silent)",
		Claim:  "Prop. B.14 / Eq. (9): ‖p(r+1)‖ ≤ α·‖p(r)‖ + β with steady state E = β/(1−α)",
		Header: []string{"‖p(1)‖≈", "rounds→≤1.5E", "steady mean", "steady max", "E (bound)", "within"},
	}
	for i, st := range staggers {
		diams := results[i].Value.(map[int]float64)
		seq := diameterSequence(diams, rounds)
		if len(seq) < rounds/2 {
			return nil, fmt.Errorf("E3: only %d rounds of pulse data", len(seq))
		}
		converged := -1
		for r, v := range seq {
			if v <= 1.5*p.EG {
				converged = r + 1
				break
			}
		}
		tail := seq[len(seq)/2:]
		var w metrics.Welford
		maxTail := 0.0
		for _, v := range tail {
			w.Add(v)
			maxTail = math.Max(maxTail, v)
		}
		tbl.AddRow(f3(seq[0]), fmt.Sprintf("%d", converged), f3(w.Mean()), f3(maxTail),
			f3(p.EG), okFail(maxTail <= p.EG))
		rc.progressf("  E3 stagger=%.3g: p(1)=%.3g steady=%.3g", st, seq[0], w.Mean())
	}
	tbl.AddNote("α_g (predicted contraction) = %.3f, β_g = %.3g, E = β/(1−α) = %.3g", p.AlphaG, p.BetaG, p.EG)
	tbl.AddNote("initial desync injected by staggering member start times; recovery is clamp-rate limited (|Δ| ≤ ϕτ₃ = %.3g/round) then geometric", p.Phi*p.Tau3)
	return tbl, nil
}

// diameterSequence flattens the per-round diameter map into a dense slice
// starting at round 1.
func diameterSequence(diams map[int]float64, maxRound int) []float64 {
	rounds := make([]int, 0, len(diams))
	for r := range diams {
		if r <= maxRound {
			rounds = append(rounds, r)
		}
	}
	sort.Ints(rounds)
	out := make([]float64, 0, len(rounds))
	for _, r := range rounds {
		out = append(out, diams[r])
	}
	return out
}

// e4rates is the per-window rate measurement one E4 scenario observes.
type e4rates struct {
	fastMin, slowMin, slowMax float64
}

// runE4 — Lemma 3.6: after enough unanimous rounds, a fast cluster's
// amortized rate is ≥ (1+ϕ)(1+⅞µ) and a slow cluster's sits within
// (1+ϕ)(1±⅛µ). Per-round rates carry correction jitter ∝ (E+U)/T, so we
// report the bounds over several averaging windows; the paper's constants
// (c₂=32, ε=1/4096) make even W=1 work, the aggressive experiment preset
// needs W ≳ 10 (an honest constant-size finding).
func runE4(rc RunConfig) (*Table, error) {
	rounds := 400
	if rc.Quick {
		rounds = 160
	}
	presets := []struct {
		name string
		cfg  params.Config
	}{
		{"experiment(ρ=3e-3,c₂=4)", physicalDefault()},
		{"practical(ρ=1e-4,c₂=8)", params.PresetConfig(params.Practical, 1e-4, 1e-3, 1e-4)},
		// The paper's own constants: rounds last hours of simulated time
		// (free in a DES); the ε=1/4096 margin suppresses per-round
		// correction jitter far below µ/8, so even W=1 passes.
		{"paper(ρ=8e-7,c₂=32,ε=1/4096)", params.PresetConfig(params.PaperStrict, 8e-7, 1e-3, 1e-4)},
	}
	windows := []int{1, 10, 30}

	scenarios := make([]*ftgcs.Scenario, 0, len(presets))
	for _, pr := range presets {
		p, err := params.Derive(pr.cfg)
		if err != nil {
			return nil, err
		}
		scenarios = append(scenarios, ftgcs.NewScenario(
			ftgcs.WithName("%s", pr.name),
			ftgcs.WithTopology(graph.Line(2)),
			ftgcs.WithClusters(4, 0),
			ftgcs.WithDerivedParams(p),
			ftgcs.WithSeed(rc.Seed+40),
			ftgcs.WithDrift(ftgcs.SpreadDrift{}),
			ftgcs.WithGlobalSkew(false),
			ftgcs.WithModeOverride(func(v graph.NodeID, c graph.ClusterID, r int) (int, bool) {
				if c == 0 {
					return 1, true
				}
				return 0, true
			}),
			ftgcs.WithRoundTracking(),
			ftgcs.WithHorizonRounds(float64(rounds)),
			ftgcs.WithObserver(func(sys *ftgcs.System) (any, error) {
				// Measure windowed amortized rates per window size over
				// the fast cluster (nodes 0–3) and slow cluster (4–7).
				out := make(map[int]e4rates, len(windows))
				for _, w := range windows {
					m := e4rates{
						fastMin: math.Inf(1),
						slowMin: math.Inf(1),
						slowMax: math.Inf(-1),
					}
					for v := 0; v < 8; v++ {
						times, values, _ := sys.RoundTrace(v)
						lo, hi := windowedRateRange(times, values, w, len(times)/4)
						if v < 4 {
							m.fastMin = math.Min(m.fastMin, lo)
						} else {
							m.slowMin = math.Min(m.slowMin, lo)
							m.slowMax = math.Max(m.slowMax, hi)
						}
					}
					out[w] = m
				}
				return out, nil
			}),
		))
	}
	results, err := rc.runSweep(scenarios)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:    "E4",
		Title: "Amortized logical rates of unanimously fast/slow clusters",
		Claim: "Lemma 3.6: fast ≥ (1+ϕ)(1+⅞µ); slow ∈ (1+ϕ)(1±⅛µ) after k unanimous rounds",
		Header: []string{"preset", "W (rounds)", "min fast rate", "fast floor", "fast ok",
			"slow range", "slow window", "slow ok"},
	}
	for i, pr := range presets {
		p, err := params.Derive(pr.cfg)
		if err != nil {
			return nil, err
		}
		rates := results[i].Value.(map[int]e4rates)
		for _, w := range windows {
			m := rates[w]
			fastOK := m.fastMin >= p.FastRateFloor()
			slowOK := m.slowMin >= p.SlowRateFloor() && m.slowMax <= p.SlowRateCeil()
			tbl.AddRow(pr.name, fmt.Sprintf("%d", w),
				f3(m.fastMin), f3(p.FastRateFloor()), okFail(fastOK),
				fmt.Sprintf("[%s, %s]", f3(m.slowMin), f3(m.slowMax)),
				fmt.Sprintf("[%s, %s]", f3(p.SlowRateFloor()), f3(p.SlowRateCeil())),
				okFail(slowOK))
		}
		rc.progressf("  E4 %s done", pr.name)
	}
	tbl.AddNote("cluster 0 forced unanimously fast, cluster 1 unanimously slow; rates measured over W-round windows after warmup")
	tbl.AddNote("per-round (W=1) jitter is Θ((E+U)/T) = Θ(ϕ); the paper's ε=1/4096 suppresses it, aggressive presets need averaging")
	return tbl, nil
}

// windowedRateRange returns the (min, max) amortized logical rate over all
// W-round windows after skipping the warmup prefix.
func windowedRateRange(times, values []float64, w, warmup int) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := warmup; i+w < len(times); i++ {
		dt := times[i+w] - times[i]
		if dt <= 0 {
			continue
		}
		rate := (values[i+w] - values[i]) / dt
		lo = math.Min(lo, rate)
		hi = math.Max(hi, rate)
	}
	return lo, hi
}
