// Package harness defines the experiment suite that reproduces every
// quantitative claim of the FTGCS paper (the paper is theory-only, so each
// theorem/lemma/claim becomes one experiment; see All for the index).
// Each experiment produces a Table comparing the paper's bound or
// prediction against measured values.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string // "E1" … "E14"
	Title  string
	Claim  string // the paper reference being reproduced
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-form note below the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "── %s: %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "   claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		b.WriteString("   ")
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				b.WriteString(pad(c, widths[i]))
			} else {
				b.WriteString(c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f3 formats a float with 3 significant-ish decimals in engineering style.
func f3(v float64) string { return fmt.Sprintf("%.3g", v) }

// okFail renders a boolean as a check/cross marker.
func okFail(ok bool) string {
	if ok {
		return "ok"
	}
	return "VIOLATED"
}
