// Package baseline implements the comparison algorithms of the FTGCS
// paper's introduction.
//
// TreeSync is the "simplistic approach": a central (root) cluster runs the
// Lynch–Welch algorithm; every other cluster is *slaved* to its parent in a
// BFS tree over the cluster graph, echoing the clock pulses it receives.
// Slaves jump their logical clocks to the estimated parent time as soon as
// a pulse wave arrives and immediately re-broadcast ("echo") for their own
// children.
//
// This achieves asymptotically optimal *global* skew in a sparse network
// but offers no non-trivial *local* skew bound: when a systematic
// delay-estimation bias flips sign (the transport.PhasedDelay adversary),
// the correction wave propagates one hop per message delay and compresses
// the accumulated global skew onto the wavefront edge — local skew Θ(D·U)
// (cf. the paper's citation of [15]). Experiment E9 measures exactly this
// against the FTGCS system's O(κ·log D).
//
// The second baseline of the paper — plain (non-fault-tolerant) GCS [13] —
// needs no code here: it is the core system with K=1, F=0.
package baseline

import (
	"context"
	"fmt"
	"math"

	"ftgcs/internal/approxagree"
	"ftgcs/internal/clockwork"
	"ftgcs/internal/cluster"
	"ftgcs/internal/core"
	"ftgcs/internal/graph"
	"ftgcs/internal/metrics"
	"ftgcs/internal/params"
	"ftgcs/internal/sim"
	"ftgcs/internal/transport"
)

// Config describes a TreeSync build.
type Config struct {
	Base   *graph.Graph
	Root   graph.ClusterID
	K, F   int
	Params params.Params
	Seed   int64
	// Drift selects the rate adversary; nil means SpreadDrift.
	Drift core.DriftModel
	// Delay selects the delay adversary; nil means UniformDelayModel.
	Delay core.DelayModel
	// SampleInterval for metrics; 0 selects T/2.
	SampleInterval float64
}

// slaveNode echoes parent-cluster pulses. Its logical clock is
// L(t) = offset + (1+ϕ)·H(t): paced at the same nominal rate as the root's
// ClusterSync logical clocks, with *jump* corrections (the point of the
// baseline: unamortized corrections are what compress skew).
//
// Echo convention: a node at tree depth ℓ (re-)broadcasts wave r when its
// logical clock reaches T̄(r) + τ₁ + ℓ·σ, where σ is a fixed per-stage
// offset large enough to cover one hop's delay and collection window.
// Every node knows its own depth, so a child can reconstruct its parent's
// logical time at the wave moment exactly; systematic delay-estimation bias
// (±U/2 per hop) is then the only per-hop error — the quantity the reveal
// adversary compresses onto the wavefront.
type slaveNode struct {
	id            graph.NodeID
	depth         int
	parentMembers map[graph.NodeID]bool

	hw     *clockwork.HardwareClock
	offset float64
	pace   float64 // 1+ϕ: nominal pacing factor

	round      int // echo waves seen
	windowOpen bool
	window     map[graph.NodeID]float64 // arrival times, this wave
	windowLen  float64
	stage      float64 // σ
}

// logical returns L(t) = offset + (1+ϕ)·H(t).
func (sn *slaveNode) logical(t float64) float64 {
	return sn.offset + sn.pace*sn.hw.Read(t)
}

// System is a wired TreeSync simulation.
type System struct {
	cfg Config
	eng *sim.Engine
	aug *graph.Augmented
	net *transport.Network
	rec *metrics.Recorder

	parents []graph.ClusterID // parent of each cluster; root's is -1
	depth   []int

	rootInsts  map[graph.NodeID]*cluster.Instance
	rootClocks map[graph.NodeID]*clockwork.LogicalClock
	slaves     map[graph.NodeID]*slaveNode

	started bool
}

// NewSystem builds a TreeSync system.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Base == nil || cfg.Base.N() == 0 {
		return nil, fmt.Errorf("baseline: empty base graph")
	}
	if cfg.K < 1 || (cfg.F > 0 && cfg.K < 3*cfg.F+1) {
		return nil, fmt.Errorf("baseline: K=%d F=%d invalid", cfg.K, cfg.F)
	}
	if cfg.Params.T <= 0 {
		return nil, fmt.Errorf("baseline: parameters not derived")
	}
	parents, err := cfg.Base.SpanningTreeParents(cfg.Root)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	aug, err := graph.Augment(cfg.Base, cfg.K)
	if err != nil {
		return nil, err
	}
	p := cfg.Params

	// Wave bookkeeping requires each wave's latency to fit in a round.
	depth := make([]int, cfg.Base.N())
	maxDepth := 0
	for c := range depth {
		d := 0
		for x := c; parents[x] >= 0; x = parents[x] {
			d++
		}
		depth[c] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	windowLen := p.EG + float64(maxDepth+2)*p.Uncertainty
	stage := p.Delay + windowLen + p.Uncertainty // σ: one hop's worst latency
	latency := float64(maxDepth) * stage
	if latency > 0.8*p.T {
		return nil, fmt.Errorf("baseline: tree depth %d wave latency %.3gs exceeds 0.8·T=%.3gs; use a shallower tree or longer rounds", maxDepth, latency, 0.8*p.T)
	}

	eng := sim.NewEngine()
	net := transport.NewNetwork(eng, aug.Net, core.BuildDelay(cfg.Delay, p, sim.NewRNG(cfg.Seed, 1)))
	s := &System{
		cfg:        cfg,
		eng:        eng,
		aug:        aug,
		net:        net,
		rec:        metrics.NewRecorder(),
		parents:    parents,
		depth:      depth,
		rootInsts:  make(map[graph.NodeID]*cluster.Instance),
		rootClocks: make(map[graph.NodeID]*clockwork.LogicalClock),
		slaves:     make(map[graph.NodeID]*slaveNode),
	}

	for v := 0; v < aug.Net.N(); v++ {
		c := aug.ClusterOf(v)
		hw := clockwork.NewHardwareClock(core.BuildDrift(cfg.Drift, p, aug, v, sim.NewRNG(cfg.Seed, 100+uint64(v))))
		if c == cfg.Root {
			if err := s.buildRootMember(v, hw); err != nil {
				return nil, err
			}
			continue
		}
		s.buildSlave(v, c, hw, windowLen, stage)
	}
	return s, nil
}

func (s *System) buildRootMember(v graph.NodeID, hw *clockwork.HardwareClock) error {
	p := s.cfg.Params
	lc := clockwork.NewLogicalClock(hw, p.Phi, p.Mu)
	inst, err := cluster.New(s.eng, cluster.Config{
		Params:  p,
		F:       s.cfg.F,
		Members: s.aug.Members(s.cfg.Root),
		Self:    v,
		Active:  true,
		Clock:   lc,
		Send: func(t float64) {
			if err := s.net.Broadcast(t, v, transport.PulseClock); err != nil {
				panic(err)
			}
		},
		Loopback: func(t float64) {
			if err := s.net.LoopbackFunc(t, v, func(at float64) {
				s.rootInsts[v].HandlePulse(at, v)
			}); err != nil {
				panic(err)
			}
		},
	})
	if err != nil {
		return err
	}
	s.rootInsts[v] = inst
	s.rootClocks[v] = lc
	s.net.OnPulse(v, func(at float64, pu transport.Pulse) {
		if pu.Kind != transport.PulseClock {
			return
		}
		if s.aug.ClusterOf(pu.From) == s.cfg.Root {
			inst.HandlePulse(at, pu.From)
		}
	})
	return nil
}

func (s *System) buildSlave(v graph.NodeID, c graph.ClusterID, hw *clockwork.HardwareClock, windowLen, stage float64) {
	parent := s.parents[c]
	sn := &slaveNode{
		id:            v,
		depth:         s.depth[c],
		parentMembers: make(map[graph.NodeID]bool),
		hw:            hw,
		pace:          1 + s.cfg.Params.Phi,
		window:        make(map[graph.NodeID]float64),
		windowLen:     windowLen,
		stage:         stage,
	}
	for _, w := range s.aug.Members(parent) {
		sn.parentMembers[w] = true
	}
	s.slaves[v] = sn
	s.net.OnPulse(v, func(at float64, pu transport.Pulse) {
		if pu.Kind != transport.PulseClock || !sn.parentMembers[pu.From] {
			return
		}
		s.slavePulse(sn, at, pu.From)
	})
}

// slavePulse handles a parent-cluster pulse at a slave.
func (s *System) slavePulse(sn *slaveNode, at float64, from graph.NodeID) {
	if _, dup := sn.window[from]; dup && sn.windowOpen {
		return
	}
	if !sn.windowOpen {
		sn.windowOpen = true
		sn.window = map[graph.NodeID]float64{from: at}
		s.eng.MustSchedule(at+sn.windowLen, "echo-window", func(e *sim.Engine) {
			s.slaveEcho(sn, e.Now())
		})
		return
	}
	sn.window[from] = at
}

// slaveEcho closes the collection window: estimate the parent wave moment,
// jump the clock, and echo for the children.
func (s *System) slaveEcho(sn *slaveNode, now float64) {
	sn.windowOpen = false
	sn.round++
	p := s.cfg.Params

	arrivals := make([]float64, 0, len(sn.parentMembers))
	for w := range sn.parentMembers {
		if a, ok := sn.window[w]; ok {
			arrivals = append(arrivals, a)
		} else {
			arrivals = append(arrivals, math.Inf(1))
		}
	}
	mid, err := approxagree.Midpoint(arrivals, s.cfg.F)
	if err != nil {
		return // too few parent pulses; skip this wave
	}
	// Midpoint-of-window delay assumption: the wave left d−U/2 ago. The
	// ±U/2 systematic error of this estimate is exactly what the reveal
	// adversary weaponizes.
	waveMoment := mid - (p.Delay - p.Uncertainty/2)
	// By the echo convention, the parent (depth ℓ−1) emitted the wave at
	// its logical time T̄(r) + τ₁ + (ℓ−1)·σ.
	parentLogical := float64(sn.round-1)*p.T + p.Tau1 + float64(sn.depth-1)*sn.stage
	target := parentLogical + (now - waveMoment)
	sn.offset = target - sn.pace*sn.hw.Read(now) // jump correction (not amortized)

	// Echo at own logical time T̄(r) + τ₁ + ℓ·σ (≥ now since σ covers the
	// hop latency; clamp to now if the estimate says otherwise).
	echoTarget := float64(sn.round-1)*p.T + p.Tau1 + float64(sn.depth)*sn.stage
	hTarget := (echoTarget - sn.offset) / sn.pace
	at, err := sn.hw.TimeWhen(now, hTarget)
	if err != nil {
		panic(err) // unreachable: hardware rates are positive
	}
	if at < now {
		at = now
	}
	s.eng.MustSchedule(at, "echo", func(e *sim.Engine) {
		if err := s.net.Broadcast(e.Now(), sn.id, transport.PulseClock); err != nil {
			panic(err)
		}
	})
}

// Start launches the root cluster (slaves are purely reactive).
func (s *System) Start() error {
	if s.started {
		return fmt.Errorf("baseline: already started")
	}
	s.started = true
	for _, v := range s.aug.Members(s.cfg.Root) {
		if err := s.rootInsts[v].Start(); err != nil {
			return err
		}
	}
	interval := s.cfg.SampleInterval
	if interval <= 0 {
		interval = s.cfg.Params.T / 2
	}
	var tick func(e *sim.Engine)
	tick = func(e *sim.Engine) {
		s.sample(e.Now())
		e.MustSchedule(e.Now()+interval, "baseline-sampler", tick)
	}
	s.eng.MustSchedule(interval, "baseline-sampler", tick)
	return nil
}

// Run advances the simulation.
func (s *System) Run(until float64) error {
	if !s.started {
		if err := s.Start(); err != nil {
			return err
		}
	}
	return s.eng.Run(until)
}

// RunContext is Run with cooperative cancellation (see sim.RunContext):
// a done context aborts the run with ctx.Err() after the in-flight event.
func (s *System) RunContext(ctx context.Context, until float64) error {
	if !s.started {
		if err := s.Start(); err != nil {
			return err
		}
	}
	return s.eng.RunContext(ctx, until)
}

// Progress returns a cross-goroutine-safe run snapshot (events executed,
// current sim time).
func (s *System) Progress() sim.Progress { return s.eng.Progress() }

// Logical returns node v's logical clock at the current time.
func (s *System) Logical(v graph.NodeID) float64 {
	now := s.eng.Now()
	if lc, ok := s.rootClocks[v]; ok {
		return lc.Value(now)
	}
	return s.slaves[v].logical(now)
}

// ClusterClock returns (max+min)/2 of the members' clocks.
func (s *System) ClusterClock(c graph.ClusterID) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range s.aug.Members(c) {
		val := s.Logical(v)
		lo = math.Min(lo, val)
		hi = math.Max(hi, val)
	}
	return (lo + hi) / 2
}

// sample records cluster-level skew metrics (same series names as core).
func (s *System) sample(t float64) {
	nc := s.aug.Clusters()
	clocks := make([]float64, nc)
	intra := math.Inf(-1)
	globalLo, globalHi := math.Inf(1), math.Inf(-1)
	for c := 0; c < nc; c++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range s.aug.Members(c) {
			val := s.Logical(v)
			lo = math.Min(lo, val)
			hi = math.Max(hi, val)
		}
		clocks[c] = (lo + hi) / 2
		intra = math.Max(intra, hi-lo)
		globalLo = math.Min(globalLo, lo)
		globalHi = math.Max(globalHi, hi)
	}
	local := 0.0
	for _, e := range s.cfg.Base.Edges() {
		local = math.Max(local, math.Abs(clocks[e[0]]-clocks[e[1]]))
	}
	s.rec.Observe(core.SeriesIntraSkew, t, intra)
	s.rec.Observe(core.SeriesLocalCluster, t, local)
	s.rec.Observe(core.SeriesGlobal, t, globalHi-globalLo)
}

// Recorder returns the metrics recorder.
func (s *System) Recorder() *metrics.Recorder { return s.rec }

// Engine returns the simulation engine.
func (s *System) Engine() *sim.Engine { return s.eng }

// Now returns the current simulated time.
func (s *System) Now() float64 { return s.eng.Now() }

// Diameter returns the hop diameter of the base graph.
func (s *System) Diameter() int { return s.cfg.Base.Diameter() }

// Summarize condenses the run exactly like core.System.Summarize: maxima
// of every recorded skew series after the warmup prefix (−Inf for series
// TreeSync does not record, e.g. node-level local skew). Together with
// Now and Diameter this makes *System a ftgcs.Backend, so the E9 baseline
// arms run through the standard Scenario/Sweep machinery.
func (s *System) Summarize(warmup float64) core.Summary {
	get := func(name string) float64 {
		if ser := s.rec.Series(name); ser != nil {
			return ser.MaxAfter(warmup)
		}
		return math.Inf(-1)
	}
	return core.Summary{
		Horizon:          s.eng.Now(),
		MaxIntraSkew:     get(core.SeriesIntraSkew),
		MaxLocalCluster:  get(core.SeriesLocalCluster),
		MaxLocalNode:     get(core.SeriesLocalNode),
		MaxGlobal:        get(core.SeriesGlobal),
		MaxMaxEstLag:     get(core.SeriesMaxEstLag),
		MaxEstViolations: get(core.SeriesMaxEstViolations),
		Events:           s.eng.Processed(),
	}
}

// MaxLocalClusterSkew returns the peak cluster-level local skew after
// warmup.
func (s *System) MaxLocalClusterSkew(warmup float64) float64 {
	if ser := s.rec.Series(core.SeriesLocalCluster); ser != nil {
		return ser.MaxAfter(warmup)
	}
	return math.Inf(-1)
}
