package baseline

import (
	"math"
	"testing"

	"ftgcs/internal/core"
	"ftgcs/internal/graph"
	"ftgcs/internal/params"
)

func testParams(t testing.TB) params.Params {
	t.Helper()
	p, err := params.Derive(params.PresetConfig(params.Practical, 1e-3, 1e-3, 1e-4))
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	return p
}

func TestTreeSyncTracksRoot(t *testing.T) {
	p := testParams(t)
	sys, err := NewSystem(Config{
		Base: graph.Line(4), Root: 0, K: 4, F: 1, Params: p, Seed: 1,
		Drift: core.DriftSpec{Kind: core.DriftSpread},
		Delay: core.DelaySpec{Kind: core.DelayUniform},
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := sys.Run(40 * p.T); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Slaves must be tracking: global skew bounded by ~depth·(stuff) ≪ T.
	glob := sys.Recorder().Series(core.SeriesGlobal).MaxAfter(5 * p.T)
	if glob > p.T/2 {
		t.Errorf("global skew %v suggests slaves are not tracking the root", glob)
	}
	if glob <= 0 {
		t.Errorf("global skew %v suspiciously zero", glob)
	}
	// All slave clusters echoed a sensible number of waves.
	for _, sn := range sys.slaves {
		if sn.round < 30 {
			t.Fatalf("slave %d only echoed %d waves", sn.id, sn.round)
		}
	}
}

func TestTreeSyncConfigValidation(t *testing.T) {
	p := testParams(t)
	if _, err := NewSystem(Config{Base: nil, K: 4, Params: p}); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewSystem(Config{Base: graph.Line(2), K: 3, F: 1, Params: p}); err == nil {
		t.Error("K<3F+1 accepted")
	}
	if _, err := NewSystem(Config{Base: graph.Line(2), K: 4, F: 1}); err == nil {
		t.Error("underived params accepted")
	}
	// A very deep tree must be rejected (wave latency > round).
	if _, err := NewSystem(Config{Base: graph.Line(200), Root: 0, K: 4, F: 1, Params: p}); err == nil {
		t.Error("deep tree accepted despite wave latency")
	}
}

func TestTreeSyncRevealCompressesSkew(t *testing.T) {
	// The E9 mechanism in miniature: under the phased delay-bias reveal,
	// TreeSync's local cluster skew spikes roughly ∝ depth, far above its
	// steady-state value. Use a large delay uncertainty so the ±U/2 bias
	// dominates the drift sawtooth.
	p, err := params.Derive(params.PresetConfig(params.Practical, 1e-3, 1e-3, 5e-4))
	if err != nil {
		t.Fatal(err)
	}
	// Sample much faster than the wave stage time: the compression front
	// exists only while a single wave crosses the line.
	fine := (p.Delay + p.EG) / 2
	steady := func(d int) float64 {
		sys, err := NewSystem(Config{
			Base: graph.Line(d), Root: 0, K: 4, F: 1, Params: p, Seed: 2,
			Delay:          core.DelaySpec{Kind: core.DelayExtremal},
			SampleInterval: fine,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(30 * p.T); err != nil {
			t.Fatal(err)
		}
		return sys.MaxLocalClusterSkew(10 * p.T)
	}
	reveal := func(d int) float64 {
		sys, err := NewSystem(Config{
			Base: graph.Line(d), Root: 0, K: 4, F: 1, Params: p, Seed: 2,
			Delay:          core.DelaySpec{Kind: core.DelayPhasedReveal, SwitchAt: 15 * p.T},
			SampleInterval: fine,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(30 * p.T); err != nil {
			t.Fatal(err)
		}
		return sys.MaxLocalClusterSkew(10 * p.T)
	}
	d := 8
	s, r := steady(d), reveal(d)
	if r <= s {
		t.Errorf("reveal skew %v should exceed steady skew %v", r, s)
	}
	// The compression scales with depth: D=8 reveal ≫ D=2 reveal.
	r2 := reveal(2)
	if r < 2*r2 {
		t.Errorf("reveal skew should grow with depth: D=8 %v vs D=2 %v", r, r2)
	}
}

func TestTreeSyncDeterminism(t *testing.T) {
	p := testParams(t)
	run := func() float64 {
		sys, err := NewSystem(Config{
			Base: graph.Line(3), Root: 0, K: 4, F: 1, Params: p, Seed: 7,
			Drift: core.DriftSpec{Kind: core.DriftRandomWalk},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(20 * p.T); err != nil {
			t.Fatal(err)
		}
		return sys.ClusterClock(2)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("determinism: %v vs %v", a, b)
	}
}

func TestTreeSyncStartTwice(t *testing.T) {
	p := testParams(t)
	sys, err := NewSystem(Config{Base: graph.Line(2), Root: 0, K: 4, F: 1, Params: p})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err == nil {
		t.Error("second Start should fail")
	}
}

func TestTreeSyncLogicalAccessors(t *testing.T) {
	p := testParams(t)
	sys, err := NewSystem(Config{Base: graph.Line(2), Root: 0, K: 4, F: 1, Params: p, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(10 * p.T); err != nil {
		t.Fatal(err)
	}
	if v := sys.Logical(0); v <= 0 || math.IsNaN(v) {
		t.Errorf("root member logical = %v", v)
	}
	if v := sys.Logical(5); v <= 0 || math.IsNaN(v) {
		t.Errorf("slave logical = %v", v)
	}
	if c := sys.ClusterClock(1); c <= 0 || math.IsNaN(c) {
		t.Errorf("cluster clock = %v", c)
	}
}
