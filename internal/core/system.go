package core

import (
	"context"
	"fmt"
	"math"

	"ftgcs/internal/byzantine"
	"ftgcs/internal/clockwork"
	"ftgcs/internal/cluster"
	"ftgcs/internal/gcs"
	"ftgcs/internal/globalskew"
	"ftgcs/internal/graph"
	"ftgcs/internal/metrics"
	"ftgcs/internal/params"
	"ftgcs/internal/sim"
	"ftgcs/internal/transport"
)

// node is the per-physical-node runtime state.
type node struct {
	id        graph.NodeID
	clusterID graph.ClusterID

	hw   *clockwork.HardwareClock
	main *clockwork.LogicalClock

	inst *cluster.Instance // nil for strategy-driven Byzantine nodes
	// observers/obsClocks are parallel to obsOrder (deterministic
	// iteration order). Lookups by cluster scan obsOrder — a node
	// observes only its base-graph neighbors, so the scan is a handful of
	// comparisons and the state stays O(degree) per node.
	observers  []*cluster.Instance // estimates of neighbor clusters
	obsClocks  []*clockwork.LogicalClock
	obsOrder   []graph.ClusterID
	estScratch []float64             // decideMode estimate buffer, reused per round
	maxEst     *globalskew.Estimator // nil unless global-skew machinery enabled

	gcsStats gcs.Stats
	faulty   bool
	fault    FaultSpec // zero value unless faulty; kept for Reset
	crashAt  float64   // +Inf when not crashing

	// Per-node RNG streams, kept so Reset can rewind them in place
	// (Reseed) instead of allocating fresh ones. byzRng is nil unless the
	// node runs a Byzantine strategy.
	driftRng *sim.RNG
	byzRng   *sim.RNG

	// Round tracking (Config.TrackRounds).
	roundTimes  []float64
	roundValues []float64
	roundModes  []int8
}

// System is a fully wired simulation.
type System struct {
	cfg Config
	eng *sim.Engine
	aug *graph.Augmented
	net *transport.Network
	rec *metrics.Recorder

	nodes []*node

	// pulse bookkeeping per cluster per round over correct members,
	// round-indexed (rounds are dense and 1-based): min/max Newtonian
	// pulse time and count. Slices grow on demand as rounds advance.
	pulseMin   [][]float64
	pulseMax   [][]float64
	pulseCount [][]int32

	// sampler scratch, reused every tick.
	sampleLows, sampleHighs, sampleClocks []float64
	sampleValid                           []bool
	nbrClockScratch                       []float64

	// baseEdges caches Base.Edges() — the sampler walks the edge list on
	// every tick and the graph rebuilds (and re-sorts) it per call.
	baseEdges [][2]graph.NodeID

	// delayRng feeds the transport delay model; kept so Reset can rewind
	// it in place.
	delayRng *sim.RNG

	sampleInterval float64
	// expectedRounds, when positive, sizes the per-cluster pulse slices
	// on their first use (from Config.HorizonHint).
	expectedRounds int
	started        bool
}

// NewSystem builds (but does not run) a system.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	aug, err := graph.Augment(cfg.Base, cfg.K)
	if err != nil {
		return nil, fmt.Errorf("core: augment: %w", err)
	}
	eng := sim.NewEngine()
	delayRng := sim.NewRNG(cfg.Seed, 1)
	net := transport.NewNetwork(eng, aug.Net, cfg.delayModel().Build(cfg.Params, delayRng))

	nc := aug.Clusters()
	s := &System{
		cfg:            cfg,
		eng:            eng,
		aug:            aug,
		net:            net,
		rec:            metrics.NewRecorder(),
		nodes:          make([]*node, aug.Net.N()),
		pulseMin:       make([][]float64, nc),
		pulseMax:       make([][]float64, nc),
		pulseCount:     make([][]int32, nc),
		sampleLows:     make([]float64, nc),
		sampleHighs:    make([]float64, nc),
		sampleClocks:   make([]float64, nc),
		sampleValid:    make([]bool, nc),
		baseEdges:      cfg.Base.Edges(),
		delayRng:       delayRng,
		sampleInterval: cfg.SampleInterval,
	}
	if s.sampleInterval <= 0 {
		s.sampleInterval = cfg.Params.T / 2
	}
	if cfg.HorizonHint > 0 {
		// Expected sample count for the standard series; +2 covers the
		// fencepost and a final sample at the horizon itself.
		samples := int(cfg.HorizonHint/s.sampleInterval) + 2
		s.rec.Reserve(SeriesIntraSkew, samples)
		s.rec.Reserve(SeriesLocalCluster, samples)
		s.rec.Reserve(SeriesLocalNode, samples)
		s.rec.Reserve(SeriesGlobal, samples)
		s.rec.Reserve(SeriesFastFraction, samples)
		if cfg.EnableGlobalSkew {
			s.rec.Reserve(SeriesMaxEstLag, samples)
			s.rec.Reserve(SeriesMaxEstViolations, samples)
		}
		if cfg.TrackClusters {
			for c := 0; c < nc; c++ {
				s.rec.Reserve(ClusterSeriesClock(c), samples)
				s.rec.Reserve(ClusterSeriesFC(c), samples)
				s.rec.Reserve(ClusterSeriesSC(c), samples)
			}
		}
		// Rounds advance roughly every T seconds; +8 absorbs fast-mode
		// compression of round length.
		s.expectedRounds = int(cfg.HorizonHint/cfg.Params.T) + 8
	}

	faults := make(map[graph.NodeID]FaultSpec)
	for _, f := range cfg.Faults {
		faults[f.Node] = f
	}
	for v := 0; v < aug.Net.N(); v++ {
		if err := s.buildNode(v, faults); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// buildNode wires one physical node.
func (s *System) buildNode(v graph.NodeID, faults map[graph.NodeID]FaultSpec) error {
	cfg := s.cfg
	p := cfg.Params
	c := s.aug.ClusterOf(v)
	n := &node{
		id:        v,
		clusterID: c,
		crashAt:   math.Inf(1),
	}
	s.nodes[v] = n

	fault, isFaulty := faults[v]
	n.faulty = isFaulty
	n.fault = fault

	// Hardware clock.
	n.driftRng = sim.NewRNG(cfg.Seed, 100+uint64(v))
	var model clockwork.RateModel
	switch {
	case isFaulty && fault.OffSpecRate != 0:
		model = clockwork.Constant{Rate: fault.OffSpecRate}
	default:
		model = buildDrift(cfg.driftModel(), p, s.aug, v, n.driftRng)
	}
	n.hw = clockwork.NewHardwareClock(model)
	n.main = clockwork.NewLogicalClock(n.hw, p.Phi, p.Mu)

	// Strategy-driven Byzantine nodes run no protocol at all; if the
	// strategy is adaptive it receives the node's incoming pulses.
	if isFaulty && fault.Strategy != nil {
		n.byzRng = sim.NewRNG(cfg.Seed, 900+uint64(v))
		handler, err := fault.Strategy.Install(byzantine.Ctx{
			Eng:       s.eng,
			Net:       s.net,
			Self:      v,
			Params:    p,
			Rng:       n.byzRng,
			Neighbors: s.aug.Net.Neighbors(v),
		})
		if err != nil {
			return err
		}
		if handler != nil {
			s.net.OnPulse(v, handler)
		}
		return nil
	}
	if isFaulty && fault.CrashAt > 0 {
		n.crashAt = fault.CrashAt
	}

	// Main ClusterSync instance. The loopback delivery closure is created
	// once here (not per call) so LoopbackFunc can carry it as pooled
	// event data without allocating.
	mainDeliver := func(at float64) { n.inst.HandlePulse(at, v) }
	inst, err := cluster.New(s.eng, cluster.Config{
		Params:  p,
		F:       cfg.F,
		Members: s.aug.Members(c),
		Self:    v,
		Active:  true,
		Clock:   n.main,
		Send: func(t float64) {
			if t >= n.crashAt {
				return
			}
			if err := s.net.Broadcast(t, v, transport.PulseClock); err != nil {
				panic(err) // structural bug: broadcast over known edges
			}
		},
		Loopback: func(t float64) {
			if err := s.net.LoopbackFunc(t, v, mainDeliver); err != nil {
				panic(err)
			}
		},
		OnPulse: func(r int, t float64) {
			s.recordPulse(c, v, r, t)
		},
		OnRoundStart: func(r int, t float64) {
			s.decideMode(n, r, t)
		},
	})
	if err != nil {
		return fmt.Errorf("core: node %d: %w", v, err)
	}
	n.inst = inst

	// Observers for each neighboring cluster.
	for _, b := range s.aug.NeighborClusters(c) {
		idx := len(n.obsOrder)
		obsClock := clockwork.NewLogicalClock(n.hw, p.Phi, p.Mu)
		obsDeliver := func(at float64) { n.observers[idx].HandlePulse(at, v) }
		// Observers track with γ̃ = 0 permanently; the Lynch–Welch error
		// bound E covers the full nominal envelope (Corollary 3.5).
		obs, err := cluster.New(s.eng, cluster.Config{
			Params:  p,
			F:       cfg.F,
			Members: s.aug.Members(b),
			Self:    v,
			Active:  false,
			Clock:   obsClock,
			Loopback: func(t float64) {
				if err := s.net.LoopbackFunc(t, v, obsDeliver); err != nil {
					panic(err)
				}
			},
		})
		if err != nil {
			return fmt.Errorf("core: node %d observer of %d: %w", v, b, err)
		}
		n.observers = append(n.observers, obs)
		n.obsClocks = append(n.obsClocks, obsClock)
		n.obsOrder = append(n.obsOrder, b)
	}
	n.estScratch = make([]float64, 0, len(n.obsOrder))

	// Global-skew estimator.
	if cfg.EnableGlobalSkew {
		groups := map[graph.ClusterID][]graph.NodeID{c: s.aug.Members(c)}
		for _, b := range s.aug.NeighborClusters(c) {
			groups[b] = s.aug.Members(b)
		}
		est, err := globalskew.New(s.eng, globalskew.Config{
			Unit:   p.Delay - p.Uncertainty,
			Rho:    p.Rho,
			F:      cfg.F,
			Groups: groups,
			HW:     n.hw,
			Send: func(t float64, copies int) {
				if t >= n.crashAt {
					return
				}
				for i := 0; i < copies; i++ {
					if err := s.net.Broadcast(t, v, transport.PulseMax); err != nil {
						panic(err)
					}
				}
			},
		})
		if err != nil {
			return fmt.Errorf("core: node %d maxest: %w", v, err)
		}
		n.maxEst = est
	}

	// Pulse routing.
	s.net.OnPulse(v, func(at float64, pu transport.Pulse) {
		switch pu.Kind {
		case transport.PulseMax:
			if n.maxEst != nil {
				n.maxEst.HandleMaxPulse(at, pu.From)
			}
		default:
			from := s.aug.ClusterOf(pu.From)
			if from == c {
				n.inst.HandlePulse(at, pu.From)
			} else if i := n.obsIdx(from); i >= 0 {
				n.observers[i].HandlePulse(at, pu.From)
			}
		}
	})
	return nil
}

// recordPulse updates per-cluster pulse diameter bookkeeping (correct
// members only). Rounds advance densely, so the per-cluster slices grow by
// at most one entry per round (amortized, no per-pulse allocation).
func (s *System) recordPulse(c graph.ClusterID, v graph.NodeID, r int, t float64) {
	if s.nodes[v].faulty {
		return
	}
	if s.pulseMin[c] == nil && s.expectedRounds > r {
		s.pulseMin[c] = make([]float64, 0, s.expectedRounds+1)
		s.pulseMax[c] = make([]float64, 0, s.expectedRounds+1)
		s.pulseCount[c] = make([]int32, 0, s.expectedRounds+1)
	}
	for len(s.pulseMin[c]) <= r {
		s.pulseMin[c] = append(s.pulseMin[c], math.Inf(1))
		s.pulseMax[c] = append(s.pulseMax[c], math.Inf(-1))
		s.pulseCount[c] = append(s.pulseCount[c], 0)
	}
	if t < s.pulseMin[c][r] {
		s.pulseMin[c][r] = t
	}
	if t > s.pulseMax[c][r] {
		s.pulseMax[c][r] = t
	}
	s.pulseCount[c][r]++
}

// decideMode runs the InterclusterSync decision for node n at round start.
func (s *System) decideMode(n *node, r int, t float64) {
	cfg := s.cfg
	p := cfg.Params

	mode := gcs.Slow
	if cfg.ModeOverride != nil {
		if g, ok := cfg.ModeOverride(n.id, n.clusterID, r); ok {
			if g == 1 {
				mode = gcs.Fast
			}
			n.main.SetGamma(t, mode.Gamma())
			n.recordRound(t, mode)
			return
		}
	}

	own := n.main.Value(t)
	estimates := n.estScratch[:0]
	for _, oc := range n.obsClocks {
		estimates = append(estimates, oc.Value(t))
	}
	maxEst := math.NaN()
	if n.maxEst != nil {
		// A node's own clock lower-bounds L_max (Lemma C.2 relies on
		// M_w ≥ L_w); refresh before reading.
		n.maxEst.RaiseTo(t, own)
		maxEst = n.maxEst.Value(t)
	}
	d := gcs.Decide(own, estimates, maxEst, gcs.Rules{
		Kappa:   p.Kappa,
		Delta:   p.Delta,
		CGlobal: p.CGlobal,
	})
	n.gcsStats.Record(d)
	mode = d.Mode
	n.main.SetGamma(t, mode.Gamma())
	n.recordRound(t, mode)
}

func (n *node) recordRound(t float64, mode gcs.Mode) {
	if n.roundTimes == nil {
		return
	}
	n.roundTimes = append(n.roundTimes, t)
	n.roundValues = append(n.roundValues, n.main.Value(t))
	n.roundModes = append(n.roundModes, int8(mode.Gamma()))
}

// Start launches every protocol instance at the current engine time
// (normally 0: the paper's simultaneous initialization).
func (s *System) Start() error {
	if s.started {
		return fmt.Errorf("core: system already started")
	}
	s.started = true
	for _, n := range s.nodes {
		if n.inst == nil {
			continue // strategy-driven Byzantine node
		}
		if s.cfg.TrackRounds {
			// Truncate-and-seed so a reset system reuses the trace arrays.
			n.roundTimes = append(n.roundTimes[:0], 0)
			n.roundValues = append(n.roundValues[:0], 0)
			n.roundModes = append(n.roundModes[:0], 0)
		}
		n := n
		startAll := func() error {
			if err := n.inst.Start(); err != nil {
				return err
			}
			for _, obs := range n.observers {
				if err := obs.Start(); err != nil {
					return err
				}
			}
			if n.maxEst != nil {
				if err := n.maxEst.Start(); err != nil {
					return err
				}
			}
			return nil
		}
		offset := 0.0
		if s.cfg.StaggerStart > 0 && s.cfg.K > 1 {
			offset = float64(s.aug.IndexIn(n.id)) * s.cfg.StaggerStart / float64(s.cfg.K-1)
		}
		if offset <= 0 {
			if err := startAll(); err != nil {
				return err
			}
			continue
		}
		if _, err := s.eng.Schedule(s.eng.Now()+offset, "staggered-start", func(*sim.Engine) {
			if err := startAll(); err != nil {
				panic(err) // start at a scheduled instant cannot fail
			}
		}); err != nil {
			return err
		}
	}
	s.scheduleSampler()
	return nil
}

// Reset rewinds a built system to a fresh pre-run state under a new seed,
// reusing everything NewSystem allocated: the graph augmentation, neighbor
// tables, engine event slab, cluster reception buffers, metric series
// backing arrays and pulse bookkeeping all survive. A Run after
// Reset(seed) produces output byte-identical to a fresh NewSystem with
// Seed=seed: the engine's sequence counter restarts at 0 and Byzantine
// strategies are re-installed in build order with freshly derived RNG
// streams, so the (time, seq) event stream replays exactly. Stateful
// per-node models (drift rate schedules, the delay model) are rebuilt from
// the new seed's streams; the structural wiring (instances, observers,
// routing closures) is retained.
//
// Reset must not be called while Run/RunContext is in flight. On error
// (a Byzantine strategy failed to re-install) the system is left
// half-reset and must be discarded.
func (s *System) Reset(seed int64) error {
	cfg := &s.cfg
	cfg.Seed = seed
	p := cfg.Params
	s.eng.Reset()
	s.delayRng.Reseed(seed, 1)
	s.net.Reset(cfg.delayModel().Build(p, s.delayRng))
	s.rec.Reset()
	for c := range s.pulseMin {
		// recordPulse's prealloc branch keys on nil, so a truncated slice
		// keeps its capacity and a never-used nil slice stays nil.
		s.pulseMin[c] = s.pulseMin[c][:0]
		s.pulseMax[c] = s.pulseMax[c][:0]
		s.pulseCount[c] = s.pulseCount[c][:0]
	}
	// Per-node rewind mirrors buildNode's iteration order exactly:
	// strategy installations schedule events before Start, and replaying
	// them in build order with seq restarted at 0 is what makes the reset
	// run's event stream identical to a fresh build's.
	for v, n := range s.nodes {
		n.driftRng.Reseed(seed, 100+uint64(v))
		var model clockwork.RateModel
		switch {
		case n.faulty && n.fault.OffSpecRate != 0:
			model = clockwork.Constant{Rate: n.fault.OffSpecRate}
		default:
			model = buildDrift(cfg.driftModel(), p, s.aug, graph.NodeID(v), n.driftRng)
		}
		n.hw.Reset(model)
		n.main.Reset()
		if n.faulty && n.fault.Strategy != nil {
			n.byzRng.Reseed(seed, 900+uint64(v))
			handler, err := n.fault.Strategy.Install(byzantine.Ctx{
				Eng:       s.eng,
				Net:       s.net,
				Self:      graph.NodeID(v),
				Params:    p,
				Rng:       n.byzRng,
				Neighbors: s.aug.Net.Neighbors(graph.NodeID(v)),
			})
			if err != nil {
				return err
			}
			// Unconditional: a nil handler clears the previous install's.
			s.net.OnPulse(graph.NodeID(v), handler)
			continue
		}
		n.inst.Reset()
		for i, obs := range n.observers {
			n.obsClocks[i].Reset()
			obs.Reset()
		}
		if n.maxEst != nil {
			n.maxEst.Reset()
		}
		n.gcsStats = gcs.Stats{}
		n.roundTimes = n.roundTimes[:0]
		n.roundValues = n.roundValues[:0]
		n.roundModes = n.roundModes[:0]
	}
	s.started = false
	return nil
}

// Run starts the system (if needed) and advances simulated time to the
// horizon.
func (s *System) Run(until float64) error {
	if !s.started {
		if err := s.Start(); err != nil {
			return err
		}
	}
	return s.eng.Run(until)
}

// RunContext is Run with cooperative cancellation: the engine polls ctx
// between events and a done context aborts the run with ctx.Err(),
// leaving simulated time where the run stopped. The event prefix executed
// before cancellation is identical to an uncanceled run's.
func (s *System) RunContext(ctx context.Context, until float64) error {
	if !s.started {
		if err := s.Start(); err != nil {
			return err
		}
	}
	return s.eng.RunContext(ctx, until)
}

// Progress returns a snapshot of the run (events executed, current sim
// time). Safe to call from any goroutine while Run/RunContext is in
// flight.
func (s *System) Progress() sim.Progress { return s.eng.Progress() }

// --- Accessors used by experiments, examples and tests ---

// Engine exposes the simulation engine.
func (s *System) Engine() *sim.Engine { return s.eng }

// Aug returns the augmented topology.
func (s *System) Aug() *graph.Augmented { return s.aug }

// Params returns the derived constants.
func (s *System) Params() params.Params { return s.cfg.Params }

// Recorder returns the metric recorder.
func (s *System) Recorder() *metrics.Recorder { return s.rec }

// Network returns the transport layer (stats).
func (s *System) Network() *transport.Network { return s.net }

// Faulty reports whether node v is faulty.
func (s *System) Faulty(v graph.NodeID) bool { return s.nodes[v].faulty }

// Logical returns L_v at the current simulation time.
func (s *System) Logical(v graph.NodeID) float64 {
	return s.nodes[v].main.Value(s.eng.Now())
}

// obsIdx returns the position of cluster b in the node's observer set, or
// -1 when the node observes no such cluster.
func (n *node) obsIdx(b graph.ClusterID) int {
	for i, o := range n.obsOrder {
		if o == b {
			return i
		}
	}
	return -1
}

// Estimate returns node v's estimate of cluster b's clock at the current
// time, or NaN when v has no observer for b.
func (s *System) Estimate(v graph.NodeID, b graph.ClusterID) float64 {
	n := s.nodes[v]
	if i := n.obsIdx(b); i >= 0 {
		return n.obsClocks[i].Value(s.eng.Now())
	}
	return math.NaN()
}

// MaxEstimate returns M_v at the current time (NaN when disabled).
func (s *System) MaxEstimate(v graph.NodeID) float64 {
	if s.nodes[v].maxEst == nil {
		return math.NaN()
	}
	return s.nodes[v].maxEst.Value(s.eng.Now())
}

// clusterRange returns (min, max) of correct members' logical clocks at the
// current time; ok=false when the cluster has no correct instances.
func (s *System) clusterRange(c graph.ClusterID) (lo, hi float64, ok bool) {
	lo, hi = math.Inf(1), math.Inf(-1)
	now := s.eng.Now()
	for _, v := range s.aug.Members(c) {
		n := s.nodes[v]
		if n.faulty || n.inst == nil {
			continue
		}
		val := n.main.Value(now)
		lo = math.Min(lo, val)
		hi = math.Max(hi, val)
		ok = true
	}
	return lo, hi, ok
}

// ClusterClock returns L_C = (L_C^+ + L_C^−)/2 over correct members
// (Definition 3.3); NaN when the cluster has no correct members.
func (s *System) ClusterClock(c graph.ClusterID) float64 {
	lo, hi, ok := s.clusterRange(c)
	if !ok {
		return math.NaN()
	}
	return (lo + hi) / 2
}

// GCSStats returns node v's accumulated mode-decision statistics.
func (s *System) GCSStats(v graph.NodeID) gcs.Stats { return s.nodes[v].gcsStats }

// InstanceStats returns node v's ClusterSync statistics (zero value for
// strategy-driven Byzantine nodes).
func (s *System) InstanceStats(v graph.NodeID) cluster.Stats {
	if s.nodes[v].inst == nil {
		return cluster.Stats{}
	}
	return s.nodes[v].inst.Stats()
}

// PulseDiameters returns ‖p(r)‖ for cluster c indexed by round, for rounds
// where every correct member pulsed.
func (s *System) PulseDiameters(c graph.ClusterID) map[int]float64 {
	correct := 0
	for _, v := range s.aug.Members(c) {
		if !s.nodes[v].faulty && s.nodes[v].inst != nil {
			correct++
		}
	}
	out := make(map[int]float64)
	for r, cnt := range s.pulseCount[c] {
		if int(cnt) == correct && correct >= 2 {
			out[r] = s.pulseMax[c][r] - s.pulseMin[c][r]
		}
	}
	return out
}

// RoundTrace returns node v's recorded round boundaries (times, logical
// values, modes). Empty unless Config.TrackRounds.
func (s *System) RoundTrace(v graph.NodeID) (times, values []float64, modes []int8) {
	n := s.nodes[v]
	return n.roundTimes, n.roundValues, n.roundModes
}

// InjectClockFault discontinuously shifts node v's logical clock by delta
// at the current simulation time — a transient fault (memory corruption,
// glitched oscillator) outside the algorithm's fault model. Used by the
// self-stabilization experiments: the paper's Appendix A notes the GCS
// layer recovers its skew bounds from any state within O(S/µ) time as long
// as a global skew bound holds. The instance's pending phase timers keep
// their Newtonian firing times (the node's *schedule* is intact; only its
// clock value is corrupted), which matches a value-corruption fault.
func (s *System) InjectClockFault(v graph.NodeID, delta float64) error {
	n := s.nodes[v]
	if n.inst == nil {
		return fmt.Errorf("core: node %d runs no instance", v)
	}
	n.main.Jump(s.eng.Now(), delta)
	return nil
}
