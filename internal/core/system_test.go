package core

import (
	"math"
	"testing"

	"ftgcs/internal/byzantine"
	"ftgcs/internal/graph"
	"ftgcs/internal/params"
)

func testParams(t testing.TB) params.Params {
	t.Helper()
	p, err := params.Derive(params.PresetConfig(params.Practical, 1e-3, 1e-3, 1e-4))
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	p := testParams(t)
	tests := []struct {
		name string
		cfg  Config
	}{
		{"nil base", Config{K: 4, F: 1, Params: p}},
		{"bad K", Config{Base: graph.Line(2), K: 0, Params: p}},
		{"K too small for F", Config{Base: graph.Line(2), K: 3, F: 1, Params: p}},
		{"underived params", Config{Base: graph.Line(2), K: 4, F: 1}},
		{"fault out of range", Config{Base: graph.Line(2), K: 4, F: 1, Params: p,
			Faults: []FaultSpec{{Node: 99, Strategy: byzantine.Silent{}}}}},
		{"duplicate fault", Config{Base: graph.Line(2), K: 4, F: 1, Params: p,
			Faults: []FaultSpec{{Node: 0, Strategy: byzantine.Silent{}}, {Node: 0, CrashAt: 1}}}},
	}
	for _, tc := range tests {
		if _, err := NewSystem(tc.cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestFaultFreeLineMeetsAllBounds(t *testing.T) {
	p := testParams(t)
	sys, err := NewSystem(Config{
		Base: graph.Line(4), K: 4, F: 1, Params: p, Seed: 1,
		Drift: DriftSpec{Kind: DriftGradient},
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := sys.Run(60 * p.T); err != nil {
		t.Fatalf("Run: %v", err)
	}
	sum := sys.Summarize(5 * p.T)
	if sum.MaxIntraSkew > p.ClusterSkewBound() {
		t.Errorf("intra skew %v > bound %v", sum.MaxIntraSkew, p.ClusterSkewBound())
	}
	d := sys.Aug().Base.Diameter()
	if sum.MaxLocalNode > p.NodeLocalSkewBound(d) {
		t.Errorf("local node skew %v > bound %v", sum.MaxLocalNode, p.NodeLocalSkewBound(d))
	}
	if sum.MaxGlobal > p.GlobalSkewBound(d) {
		t.Errorf("global skew %v > bound %v", sum.MaxGlobal, p.GlobalSkewBound(d))
	}
	if sum.Events == 0 {
		t.Error("no events processed")
	}
}

func TestByzantineLineMeetsBounds(t *testing.T) {
	p := testParams(t)
	// One Byzantine per cluster (f=1, k=4), mixed strategies.
	base := graph.Line(3)
	faults := []FaultSpec{
		{Node: 0, Strategy: byzantine.TwoFaced{}},
		{Node: 5, Strategy: byzantine.Oscillate{}},
		{Node: 9, Strategy: byzantine.Spam{}},
	}
	sys, err := NewSystem(Config{
		Base: base, K: 4, F: 1, Params: p, Seed: 2,
		Drift:  DriftSpec{Kind: DriftSpread},
		Faults: faults,
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := sys.Run(60 * p.T); err != nil {
		t.Fatalf("Run: %v", err)
	}
	sum := sys.Summarize(5 * p.T)
	if sum.MaxIntraSkew > p.ClusterSkewBound() {
		t.Errorf("intra skew %v > bound %v under attack", sum.MaxIntraSkew, p.ClusterSkewBound())
	}
	d := base.Diameter()
	if sum.MaxLocalNode > p.NodeLocalSkewBound(d) {
		t.Errorf("local skew %v > bound %v under attack", sum.MaxLocalNode, p.NodeLocalSkewBound(d))
	}
}

func TestCrashFault(t *testing.T) {
	p := testParams(t)
	sys, err := NewSystem(Config{
		Base: graph.Line(2), K: 4, F: 1, Params: p, Seed: 3,
		Faults: []FaultSpec{{Node: 2, CrashAt: 10 * p.T}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(40 * p.T); err != nil {
		t.Fatal(err)
	}
	sum := sys.Summarize(2 * p.T)
	if sum.MaxIntraSkew > p.ClusterSkewBound() {
		t.Errorf("intra skew %v > bound %v with mid-run crash", sum.MaxIntraSkew, p.ClusterSkewBound())
	}
	// The crashed node is excluded from metrics but its instance ran.
	if !sys.Faulty(2) {
		t.Error("node 2 should be marked faulty")
	}
	if sys.InstanceStats(2).Rounds == 0 {
		t.Error("crashing node should have run rounds before its crash")
	}
}

func TestOffSpecClockFault(t *testing.T) {
	p := testParams(t)
	// Node 1 runs the correct algorithm on a 5ρ-fast clock (out of spec).
	sys, err := NewSystem(Config{
		Base: graph.Line(2), K: 4, F: 1, Params: p, Seed: 4,
		Faults: []FaultSpec{{Node: 1, OffSpecRate: 1 + 5*p.Rho}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(50 * p.T); err != nil {
		t.Fatal(err)
	}
	sum := sys.Summarize(5 * p.T)
	if sum.MaxIntraSkew > p.ClusterSkewBound() {
		t.Errorf("correct nodes' skew %v > bound %v despite off-spec member", sum.MaxIntraSkew, p.ClusterSkewBound())
	}
}

func TestEstimatesTrackClusterClocks(t *testing.T) {
	p := testParams(t)
	sys, err := NewSystem(Config{
		Base: graph.Line(3), K: 4, F: 1, Params: p, Seed: 5,
		Drift: DriftSpec{Kind: DriftSpread},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(30 * p.T); err != nil {
		t.Fatal(err)
	}
	// Corollary 3.5: every correct node's estimate of a neighbor cluster
	// is within E of that cluster's clock (E/2 from the cluster clock
	// plus E/2 definition slack; we allow E).
	aug := sys.Aug()
	checked := 0
	for v := 0; v < aug.Net.N(); v++ {
		if sys.Faulty(v) {
			continue
		}
		c := aug.ClusterOf(v)
		for _, b := range aug.NeighborClusters(c) {
			est := sys.Estimate(v, b)
			truth := sys.ClusterClock(b)
			if math.IsNaN(est) || math.IsNaN(truth) {
				t.Fatalf("node %d cluster %d: NaN estimate/truth", v, b)
			}
			if diff := math.Abs(est - truth); diff > p.EG {
				t.Errorf("node %d estimate of cluster %d off by %v > E=%v", v, b, diff, p.EG)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no estimates checked")
	}
}

func TestGlobalSkewMachinery(t *testing.T) {
	p := testParams(t)
	sys, err := NewSystem(Config{
		Base: graph.Line(4), K: 4, F: 1, Params: p, Seed: 6,
		Drift:            DriftSpec{Kind: DriftGradient},
		EnableGlobalSkew: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(50 * p.T); err != nil {
		t.Fatal(err)
	}
	sum := sys.Summarize(10 * p.T)
	if sum.MaxEstViolations > 0 {
		t.Errorf("%v samples had M_v > L_max (must never happen)", sum.MaxEstViolations)
	}
	// Lemma C.2: M_v within O(δD) of L_max.
	d := sys.Aug().Base.Diameter()
	bound := p.GlobalSkewBound(d)
	if sum.MaxMaxEstLag > bound {
		t.Errorf("max-estimate lag %v > O(δD) = %v", sum.MaxMaxEstLag, bound)
	}
	// Estimator lag should also be finite and positive-ish.
	if math.IsInf(sum.MaxMaxEstLag, -1) {
		t.Error("no max-estimate samples recorded")
	}
	if math.IsNaN(sys.MaxEstimate(0)) {
		t.Error("MaxEstimate should be available")
	}
}

func TestModeOverride(t *testing.T) {
	p := testParams(t)
	force := func(v graph.NodeID, c graph.ClusterID, r int) (int, bool) {
		if c == 0 {
			return 1, true // cluster 0 always fast
		}
		return 0, true // others always slow
	}
	sys, err := NewSystem(Config{
		Base: graph.Line(2), K: 4, F: 0, Params: p, Seed: 7,
		ModeOverride: force,
		TrackRounds:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(30 * p.T); err != nil {
		t.Fatal(err)
	}
	// Cluster 0 should now lead cluster 1 (fast mode ⇒ higher rate).
	c0, c1 := sys.ClusterClock(0), sys.ClusterClock(1)
	if c0 <= c1 {
		t.Errorf("forced-fast cluster clock %v should lead forced-slow %v", c0, c1)
	}
	// Round traces recorded.
	times, values, modes := sys.RoundTrace(0)
	if len(times) < 20 || len(values) != len(times) || len(modes) != len(times) {
		t.Errorf("round trace lengths: %d %d %d", len(times), len(values), len(modes))
	}
	// Node 0 (cluster 0) forced fast from round 2 on.
	fastSeen := false
	for _, m := range modes[2:] {
		if m == 1 {
			fastSeen = true
		}
	}
	if !fastSeen {
		t.Error("override did not force fast mode")
	}
}

func TestTrackClustersSeries(t *testing.T) {
	p := testParams(t)
	sys, err := NewSystem(Config{
		Base: graph.Line(2), K: 4, F: 0, Params: p, Seed: 8,
		TrackClusters: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(10 * p.T); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		if sys.Recorder().Series(ClusterSeriesClock(c)) == nil {
			t.Errorf("missing clock series for cluster %d", c)
		}
		if sys.Recorder().Series(ClusterSeriesFC(c)) == nil {
			t.Errorf("missing FC series for cluster %d", c)
		}
	}
}

func TestPulseDiametersRecorded(t *testing.T) {
	p := testParams(t)
	sys, err := NewSystem(Config{
		Base: graph.Line(2), K: 4, F: 1, Params: p, Seed: 9,
		Drift: DriftSpec{Kind: DriftSpread},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(20 * p.T); err != nil {
		t.Fatal(err)
	}
	diams := sys.PulseDiameters(0)
	if len(diams) < 15 {
		t.Fatalf("only %d rounds of pulse diameters", len(diams))
	}
	for r, dm := range diams {
		if dm > p.EG {
			t.Errorf("round %d: ‖p‖ = %v > E = %v", r, dm, p.EG)
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := testParams(t)
	run := func() Summary {
		sys, err := NewSystem(Config{
			Base: graph.Ring(3), K: 4, F: 1, Params: p, Seed: 42,
			Drift:  DriftSpec{Kind: DriftRandomWalk},
			Faults: []FaultSpec{{Node: 1, Strategy: byzantine.Spam{}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(20 * p.T); err != nil {
			t.Fatal(err)
		}
		return sys.Summarize(0)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identical seeds diverged:\n%+v\n%+v", a, b)
	}
}

func TestDriftModels(t *testing.T) {
	p := testParams(t)
	kinds := []DriftKind{DriftSpread, DriftGradient, DriftHalves,
		DriftAlternatingHalves, DriftRandomWalk, DriftSine, DriftNone}
	for _, kind := range kinds {
		sys, err := NewSystem(Config{
			Base: graph.Line(2), K: 4, F: 0, Params: p, Seed: 10,
			Drift: DriftSpec{Kind: kind},
		})
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if err := sys.Run(10 * p.T); err != nil {
			t.Fatalf("kind %d run: %v", kind, err)
		}
		if sum := sys.Summarize(0); sum.MaxIntraSkew > p.ClusterSkewBound() {
			t.Errorf("drift kind %d: intra skew %v > bound %v", kind, sum.MaxIntraSkew, p.ClusterSkewBound())
		}
	}
}

func TestDelayModels(t *testing.T) {
	p := testParams(t)
	specs := []DelaySpec{
		{Kind: DelayUniform},
		{Kind: DelayExtremal},
		{Kind: DelayFixedMid},
		{Kind: DelayPhasedReveal, SwitchAt: 5 * p.T},
	}
	for _, spec := range specs {
		sys, err := NewSystem(Config{
			Base: graph.Line(2), K: 4, F: 0, Params: p, Seed: 11,
			Delay: spec,
		})
		if err != nil {
			t.Fatalf("delay %d: %v", spec.Kind, err)
		}
		if err := sys.Run(15 * p.T); err != nil {
			t.Fatalf("delay %d run: %v", spec.Kind, err)
		}
		if sum := sys.Summarize(0); sum.MaxIntraSkew > p.ClusterSkewBound() {
			t.Errorf("delay kind %d: intra skew %v > bound", spec.Kind, sum.MaxIntraSkew)
		}
	}
}

func TestPlainGCSViaK1(t *testing.T) {
	// K=1, F=0 degenerates to the non-fault-tolerant GCS of [13]: no
	// intra-cluster machinery, triggers straight on per-node estimates.
	p := testParams(t)
	sys, err := NewSystem(Config{
		Base: graph.Line(5), K: 1, F: 0, Params: p, Seed: 12,
		Drift: DriftSpec{Kind: DriftGradient},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(40 * p.T); err != nil {
		t.Fatal(err)
	}
	sum := sys.Summarize(5 * p.T)
	d := sys.Aug().Base.Diameter()
	if sum.MaxLocalNode > p.NodeLocalSkewBound(d) {
		t.Errorf("plain GCS local skew %v > bound %v (fault-free)", sum.MaxLocalNode, p.NodeLocalSkewBound(d))
	}
}

func TestStartTwiceFails(t *testing.T) {
	p := testParams(t)
	sys, err := NewSystem(Config{Base: graph.Line(2), K: 1, F: 0, Params: p})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err == nil {
		t.Error("second Start should fail")
	}
}

func BenchmarkLineD4Round(b *testing.B) {
	p, err := params.Derive(params.PresetConfig(params.Practical, 1e-3, 1e-3, 1e-4))
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewSystem(Config{
		Base: graph.Line(4), K: 4, F: 1, Params: p, Seed: 1,
		Drift: DriftSpec{Kind: DriftGradient},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Run(float64(i+1) * p.T); err != nil {
			b.Fatal(err)
		}
	}
}
