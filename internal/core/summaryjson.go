package core

import (
	"encoding/json"
	"math"
	"strconv"

	"ftgcs/internal/metrics"
)

// MarshalJSON renders the summary with fixed key order and canonical float
// encoding (metrics.AppendJSONFloat), so identical summaries always
// marshal to identical bytes — the experiment service's cache-hit
// guarantee depends on this. Maxima of series that were never recorded
// are −Inf, which JSON cannot represent; they encode as null.
func (s Summary) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 256)
	b = append(b, `{"horizon":`...)
	b = metrics.AppendJSONFloat(b, s.Horizon)
	b = append(b, `,"maxIntraSkew":`...)
	b = metrics.AppendJSONFloat(b, s.MaxIntraSkew)
	b = append(b, `,"maxLocalCluster":`...)
	b = metrics.AppendJSONFloat(b, s.MaxLocalCluster)
	b = append(b, `,"maxLocalNode":`...)
	b = metrics.AppendJSONFloat(b, s.MaxLocalNode)
	b = append(b, `,"maxGlobal":`...)
	b = metrics.AppendJSONFloat(b, s.MaxGlobal)
	b = append(b, `,"maxMaxEstLag":`...)
	b = metrics.AppendJSONFloat(b, s.MaxMaxEstLag)
	b = append(b, `,"maxEstViolations":`...)
	b = metrics.AppendJSONFloat(b, s.MaxEstViolations)
	b = append(b, `,"events":`...)
	b = strconv.AppendUint(b, s.Events, 10)
	b = append(b, '}')
	return b, nil
}

// UnmarshalJSON is the inverse of MarshalJSON. A null maximum decodes to
// −Inf — the value Summarize reports for a series with no samples — so a
// summary round-trips to a semantically equal value.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var aux struct {
		Horizon          *float64 `json:"horizon"`
		MaxIntraSkew     *float64 `json:"maxIntraSkew"`
		MaxLocalCluster  *float64 `json:"maxLocalCluster"`
		MaxLocalNode     *float64 `json:"maxLocalNode"`
		MaxGlobal        *float64 `json:"maxGlobal"`
		MaxMaxEstLag     *float64 `json:"maxMaxEstLag"`
		MaxEstViolations *float64 `json:"maxEstViolations"`
		Events           uint64   `json:"events"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	get := func(p *float64) float64 {
		if p == nil {
			return math.Inf(-1)
		}
		return *p
	}
	s.Horizon = 0
	if aux.Horizon != nil {
		s.Horizon = *aux.Horizon
	}
	s.MaxIntraSkew = get(aux.MaxIntraSkew)
	s.MaxLocalCluster = get(aux.MaxLocalCluster)
	s.MaxLocalNode = get(aux.MaxLocalNode)
	s.MaxGlobal = get(aux.MaxGlobal)
	s.MaxMaxEstLag = get(aux.MaxMaxEstLag)
	s.MaxEstViolations = get(aux.MaxEstViolations)
	s.Events = aux.Events
	return nil
}
