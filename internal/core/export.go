package core

import (
	"ftgcs/internal/clockwork"
	"ftgcs/internal/graph"
	"ftgcs/internal/params"
	"ftgcs/internal/sim"
	"ftgcs/internal/transport"
)

// BuildDrift exposes the drift-model assignment for other packages (the
// TreeSync baseline uses the same adversarial drift schedules as the main
// system so comparisons are apples-to-apples). A nil model selects the
// SpreadDrift default.
func BuildDrift(m DriftModel, p params.Params, aug *graph.Augmented, v graph.NodeID, rng *sim.RNG) clockwork.RateModel {
	if m == nil {
		m = SpreadDrift{}
	}
	return buildDrift(m, p, aug, v, rng)
}

// BuildDelay exposes the delay-model assignment for other packages. A nil
// model selects the UniformDelayModel default.
func BuildDelay(m DelayModel, p params.Params, rng *sim.RNG) transport.DelayModel {
	if m == nil {
		m = UniformDelayModel{}
	}
	return m.Build(p, rng)
}
