package core

import (
	"ftgcs/internal/clockwork"
	"ftgcs/internal/graph"
	"ftgcs/internal/params"
	"ftgcs/internal/sim"
	"ftgcs/internal/transport"
)

// BuildDrift exposes the drift-model assignment for other packages (the
// TreeSync baseline uses the same adversarial drift schedules as the main
// system so comparisons are apples-to-apples).
func BuildDrift(spec DriftSpec, p params.Params, aug *graph.Augmented, v graph.NodeID, rng *sim.RNG) clockwork.RateModel {
	return buildDrift(spec, p, aug, v, rng)
}

// BuildDelay exposes the delay-model assignment for other packages.
func BuildDelay(spec DelaySpec, p params.Params, rng *sim.RNG) transport.DelayModel {
	return buildDelay(spec, p, rng)
}
