package core

import (
	"math"

	"ftgcs/internal/clockwork"
	"ftgcs/internal/graph"
	"ftgcs/internal/params"
	"ftgcs/internal/sim"
	"ftgcs/internal/transport"
)

// DriftCtx describes the node a rate model is being built for. It carries
// everything a drift adversary may condition on: the node's position in the
// augmented topology, the derived algorithm constants, and a per-node
// deterministic RNG stream.
type DriftCtx struct {
	// Node is the physical node ID.
	Node graph.NodeID
	// Cluster is the node's cluster, Index its position within it.
	Cluster graph.ClusterID
	Index   int
	// Clusters is |𝒞|, K the cluster size.
	Clusters, K int
	// Params are the derived algorithm constants (Rho, T, …).
	Params params.Params
	// Rng is the node's private deterministic random stream.
	Rng *sim.RNG
}

// DriftModel assigns hardware clock rate behavior per node. Implementations
// are adversaries from the paper's drift model: any rate schedule inside
// [1, 1+ρ] is admissible (and off-spec models deliberately leave it).
//
// A DriftModel must be deterministic given the DriftCtx (randomness only
// through ctx.Rng) so runs are reproducible under a fixed seed.
type DriftModel interface {
	// Name is the CLI-friendly identifier ("spread", "sine", …).
	Name() string
	// Rate builds the rate model for one node.
	Rate(ctx DriftCtx) clockwork.RateModel
}

// DelayModel builds the message-delay adversary for a run. Implementations
// must return transport models sampling within [d−U, d]; the transport
// layer validates every sample.
type DelayModel interface {
	// Name is the CLI-friendly identifier ("uniform", "extremal", …).
	Name() string
	// Build constructs the transport delay model from the derived
	// parameters and the run's delay RNG stream.
	Build(p params.Params, rng *sim.RNG) transport.DelayModel
}

// --- Drift model implementations (the former DriftKind enum cases) ---

// SpreadDrift runs member i of every cluster at 1 + ρ·i/(k−1): maximal
// constant intra-cluster drift.
type SpreadDrift struct{}

// Name implements DriftModel.
func (SpreadDrift) Name() string { return "spread" }

// Rate implements DriftModel.
func (SpreadDrift) Rate(ctx DriftCtx) clockwork.RateModel {
	frac := 0.0
	if ctx.K > 1 {
		frac = float64(ctx.Index) / float64(ctx.K-1)
	}
	return clockwork.Constant{Rate: 1 + ctx.Params.Rho*frac}
}

// GradientDrift runs all members of cluster c at 1 + ρ·c/(|𝒞|−1): a
// constant inter-cluster gradient along the cluster index.
type GradientDrift struct{}

// Name implements DriftModel.
func (GradientDrift) Name() string { return "gradient" }

// Rate implements DriftModel.
func (GradientDrift) Rate(ctx DriftCtx) clockwork.RateModel {
	frac := 0.0
	if ctx.Clusters > 1 {
		frac = float64(ctx.Cluster) / float64(ctx.Clusters-1)
	}
	return clockwork.Constant{Rate: 1 + ctx.Params.Rho*frac}
}

// HalvesDrift runs clusters in the lower index half at 1 and the upper half
// at 1+ρ: maximal persistent rate difference at the boundary.
type HalvesDrift struct{}

// Name implements DriftModel.
func (HalvesDrift) Name() string { return "halves" }

// Rate implements DriftModel.
func (HalvesDrift) Rate(ctx DriftCtx) clockwork.RateModel {
	if ctx.Cluster >= ctx.Clusters/2 {
		return clockwork.Constant{Rate: 1 + ctx.Params.Rho}
	}
	return clockwork.Constant{Rate: 1}
}

// AlternatingHalvesDrift is HalvesDrift with the halves swapping rates
// every Period seconds — the classic skew-pumping adversary.
type AlternatingHalvesDrift struct {
	// Period between swaps; 0 selects 40·T.
	Period float64
}

// Name implements DriftModel.
func (AlternatingHalvesDrift) Name() string { return "alternating" }

// Rate implements DriftModel.
func (m AlternatingHalvesDrift) Rate(ctx DriftCtx) clockwork.RateModel {
	period := m.Period
	if period <= 0 {
		period = 40 * ctx.Params.T
	}
	phase := 0.0
	if ctx.Cluster >= ctx.Clusters/2 {
		phase = -period // upper half starts at the high rate
	}
	return clockwork.Alternating{Lo: 1, Hi: 1 + ctx.Params.Rho, Period: period, Phase: phase}
}

// RandomWalkDrift redraws every node's rate from [1, 1+ρ] every Step
// seconds.
type RandomWalkDrift struct {
	// Step between redraws; 0 selects T/3.
	Step float64
}

// Name implements DriftModel.
func (RandomWalkDrift) Name() string { return "randomwalk" }

// Rate implements DriftModel.
func (m RandomWalkDrift) Rate(ctx DriftCtx) clockwork.RateModel {
	step := m.Step
	if step <= 0 {
		step = ctx.Params.T / 3
	}
	return clockwork.NewRandomWalk(1, 1+ctx.Params.Rho, step, ctx.Rng)
}

// SineDrift is slow sinusoidal wander with per-node phase.
type SineDrift struct {
	// Period of the wander; 0 selects 40·T.
	Period float64
}

// Name implements DriftModel.
func (SineDrift) Name() string { return "sine" }

// Rate implements DriftModel.
func (m SineDrift) Rate(ctx DriftCtx) clockwork.RateModel {
	period := m.Period
	if period <= 0 {
		period = 40 * ctx.Params.T
	}
	return clockwork.Sinusoid{
		Base: 1, Amp: ctx.Params.Rho, Period: period, StepsPerPeriod: 32,
		Phase: period * float64(ctx.Node%16) / 16,
	}
}

// NoDrift runs every clock at exactly rate 1 (debug/reference).
type NoDrift struct{}

// Name implements DriftModel.
func (NoDrift) Name() string { return "none" }

// Rate implements DriftModel.
func (NoDrift) Rate(DriftCtx) clockwork.RateModel { return clockwork.Constant{Rate: 1} }

// --- Delay model implementations (the former DelayKind enum cases) ---

// UniformDelayModel draws uniformly from [d−U, d].
type UniformDelayModel struct{}

// Name implements DelayModel.
func (UniformDelayModel) Name() string { return "uniform" }

// Build implements DelayModel.
func (UniformDelayModel) Build(p params.Params, rng *sim.RNG) transport.DelayModel {
	return transport.UniformDelay{D: p.Delay, U: p.Uncertainty, Rng: rng}
}

// ExtremalDelayModel biases delays by direction (skew-maximizing).
type ExtremalDelayModel struct {
	// Invert flips the bias direction.
	Invert bool
}

// Name implements DelayModel.
func (ExtremalDelayModel) Name() string { return "extremal" }

// Build implements DelayModel.
func (m ExtremalDelayModel) Build(p params.Params, rng *sim.RNG) transport.DelayModel {
	return transport.ExtremalDelay{D: p.Delay, U: p.Uncertainty, Invert: m.Invert}
}

// FixedMidDelayModel always uses d−U/2.
type FixedMidDelayModel struct{}

// Name implements DelayModel.
func (FixedMidDelayModel) Name() string { return "fixed-mid" }

// Build implements DelayModel.
func (FixedMidDelayModel) Build(p params.Params, rng *sim.RNG) transport.DelayModel {
	return transport.FixedDelay{D: p.Delay, U: p.Uncertainty, Frac: 0.5}
}

// PhasedRevealDelayModel uses one extremal bias before SwitchAt and the
// opposite after — the hidden-skew reveal adversary of experiment E9.
type PhasedRevealDelayModel struct {
	// SwitchAt is the reveal time; 0 means never (pure extremal).
	SwitchAt float64
}

// Name implements DelayModel.
func (PhasedRevealDelayModel) Name() string { return "phased-reveal" }

// Build implements DelayModel.
func (m PhasedRevealDelayModel) Build(p params.Params, rng *sim.RNG) transport.DelayModel {
	switchAt := m.SwitchAt
	if switchAt <= 0 {
		switchAt = math.Inf(1)
	}
	return transport.PhasedDelay{
		Before:   transport.ExtremalDelay{D: p.Delay, U: p.Uncertainty},
		After:    transport.ExtremalDelay{D: p.Delay, U: p.Uncertainty, Invert: true},
		SwitchAt: switchAt,
	}
}
