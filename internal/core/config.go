// Package core assembles the complete FTGCS system of the paper: the
// augmented network G (clusters of k ≥ 3f+1 nodes), ClusterSync within
// clusters (Algorithm 1), passive observers producing neighbor-cluster
// estimates (Corollary 3.5), InterclusterSync mode selection at round
// boundaries (Algorithm 2 + Theorem C.3 rules), and the Appendix C
// global-skew estimate machinery — all running on the deterministic
// discrete-event engine, instrumented for the experiments.
//
// Adversaries are pluggable: drift schedules implement DriftModel, message
// delay strategies implement DelayModel, and Byzantine behaviors implement
// byzantine.Strategy. The legacy DriftSpec/DelaySpec enums survive as thin
// shims over the model types.
package core

import (
	"fmt"

	"ftgcs/internal/byzantine"
	"ftgcs/internal/clockwork"
	"ftgcs/internal/graph"
	"ftgcs/internal/params"
	"ftgcs/internal/sim"
	"ftgcs/internal/transport"
)

// DriftKind selects one of the built-in drift models (legacy enum; new
// code passes a DriftModel directly).
type DriftKind int

const (
	// DriftSpread selects SpreadDrift.
	DriftSpread DriftKind = iota + 1
	// DriftGradient selects GradientDrift.
	DriftGradient
	// DriftHalves selects HalvesDrift.
	DriftHalves
	// DriftAlternatingHalves selects AlternatingHalvesDrift.
	DriftAlternatingHalves
	// DriftRandomWalk selects RandomWalkDrift.
	DriftRandomWalk
	// DriftSine selects SineDrift.
	DriftSine
	// DriftNone selects NoDrift.
	DriftNone
)

// DriftSpec is the legacy enum-style drift configuration. It implements
// DriftModel by delegating to the corresponding model type, so existing
// `Drift: DriftSpec{Kind: …}` call sites keep working unchanged.
type DriftSpec struct {
	Kind DriftKind
	// Period applies to DriftAlternatingHalves and DriftSine. 0 selects
	// 40·T at build time.
	Period float64
	// Step applies to DriftRandomWalk. 0 selects T/3.
	Step float64
}

// Model resolves the spec to its model implementation. The zero Kind means
// DriftSpread (the historical default).
func (s DriftSpec) Model() DriftModel {
	switch s.Kind {
	case DriftGradient:
		return GradientDrift{}
	case DriftHalves:
		return HalvesDrift{}
	case DriftAlternatingHalves:
		return AlternatingHalvesDrift{Period: s.Period}
	case DriftRandomWalk:
		return RandomWalkDrift{Step: s.Step}
	case DriftSine:
		return SineDrift{Period: s.Period}
	case DriftNone:
		return NoDrift{}
	default:
		return SpreadDrift{}
	}
}

// Name implements DriftModel.
func (s DriftSpec) Name() string { return s.Model().Name() }

// Rate implements DriftModel.
func (s DriftSpec) Rate(ctx DriftCtx) clockwork.RateModel { return s.Model().Rate(ctx) }

// DelayKind selects one of the built-in delay models (legacy enum; new
// code passes a DelayModel directly).
type DelayKind int

const (
	// DelayUniform selects UniformDelayModel.
	DelayUniform DelayKind = iota + 1
	// DelayExtremal selects ExtremalDelayModel.
	DelayExtremal
	// DelayFixedMid selects FixedMidDelayModel.
	DelayFixedMid
	// DelayPhasedReveal selects PhasedRevealDelayModel.
	DelayPhasedReveal
)

// DelaySpec is the legacy enum-style delay configuration. It implements
// DelayModel by delegating to the corresponding model type.
type DelaySpec struct {
	Kind DelayKind
	// SwitchAt applies to DelayPhasedReveal.
	SwitchAt float64
}

// Model resolves the spec to its model implementation. The zero Kind means
// DelayUniform (the historical default).
func (s DelaySpec) Model() DelayModel {
	switch s.Kind {
	case DelayExtremal:
		return ExtremalDelayModel{}
	case DelayFixedMid:
		return FixedMidDelayModel{}
	case DelayPhasedReveal:
		return PhasedRevealDelayModel{SwitchAt: s.SwitchAt}
	default:
		return UniformDelayModel{}
	}
}

// Name implements DelayModel.
func (s DelaySpec) Name() string { return s.Model().Name() }

// Build implements DelayModel.
func (s DelaySpec) Build(p params.Params, rng *sim.RNG) transport.DelayModel {
	return s.Model().Build(p, rng)
}

// FaultSpec marks one physical node faulty.
//
// Exactly one of the behavior fields applies, in this precedence order:
// Strategy (arbitrary Byzantine behavior from the byzantine package),
// CrashAt > 0 (correct until CrashAt, then silent), OffSpecRate ≠ 0 (runs
// the correct algorithm on a hardware clock of absolute rate OffSpecRate,
// possibly outside [1, 1+ρ] — the paper's "sub-nominal speed" example).
type FaultSpec struct {
	Node        graph.NodeID
	Strategy    byzantine.Strategy
	CrashAt     float64
	OffSpecRate float64
}

// Config describes a complete system build.
type Config struct {
	// Base is the cluster graph 𝒢.
	Base *graph.Graph
	// K is the cluster size (≥ 3F+1).
	K int
	// F is the per-cluster fault budget.
	F int
	// Params are the derived algorithm constants.
	Params params.Params
	// Seed drives all randomness (delays, drift, adversaries).
	Seed int64

	// Drift selects the rate adversary; nil means SpreadDrift.
	Drift DriftModel
	// Delay selects the delay adversary; nil means UniformDelayModel.
	Delay DelayModel

	// Faults lists the faulty nodes. At most F per cluster for the
	// paper's guarantees to apply (experiments exceed it deliberately).
	Faults []FaultSpec

	// EnableGlobalSkew turns on the Appendix C M_v machinery and the
	// Theorem C.3 catch-up rule.
	EnableGlobalSkew bool

	// SampleInterval is the metric sampling period; 0 selects T/2.
	SampleInterval float64
	// HorizonHint, when positive, is the expected run horizon in
	// simulated seconds. It is a preallocation hint only — metric series
	// and per-round pulse bookkeeping are sized for it up front so the
	// recording hot path does not reallocate — and has no effect on any
	// simulated value. Runs may exceed the hint; slices then grow as
	// before.
	HorizonHint float64
	// TrackClusters records per-cluster clock/FC/SC series (experiment
	// E10); costs memory proportional to samples × clusters.
	TrackClusters bool
	// TrackRounds records per-node round boundaries, logical values and
	// modes (experiments E3, E4).
	TrackRounds bool

	// ModeOverride, when non-nil, replaces the GCS decision: returning
	// (mode, true) forces the node's mode for that round. Used by the
	// unanimity experiments (E4).
	ModeOverride func(node graph.NodeID, cluster graph.ClusterID, round int) (int, bool)

	// StaggerStart, when positive, delays the protocol start of cluster
	// member i by i·StaggerStart/(k−1) seconds. This injects an initial
	// pulse-diameter ‖p(1)‖ ≈ StaggerStart, which the convergence
	// experiment (E3) watches contract towards the steady state E
	// (Eq. 9/12). Must stay well below τ₁ so round-1 pulses still land in
	// every member's listening window.
	StaggerStart float64
}

// driftModel returns the configured drift model or the default.
func (c *Config) driftModel() DriftModel {
	if c.Drift == nil {
		return SpreadDrift{}
	}
	return c.Drift
}

// delayModel returns the configured delay model or the default.
func (c *Config) delayModel() DelayModel {
	if c.Delay == nil {
		return UniformDelayModel{}
	}
	return c.Delay
}

// validate checks structural requirements.
func (c *Config) validate() error {
	if c.Base == nil || c.Base.N() == 0 {
		return fmt.Errorf("core: empty base graph")
	}
	if c.K < 1 {
		return fmt.Errorf("core: cluster size K=%d < 1", c.K)
	}
	if c.F < 0 || (c.F > 0 && c.K < 3*c.F+1) {
		return fmt.Errorf("core: K=%d cannot tolerate F=%d (need K ≥ 3F+1)", c.K, c.F)
	}
	if c.Params.T <= 0 {
		return fmt.Errorf("core: parameters not derived (T=%v)", c.Params.T)
	}
	seen := make(map[graph.NodeID]bool)
	for _, f := range c.Faults {
		if f.Node < 0 || f.Node >= c.Base.N()*c.K {
			return fmt.Errorf("core: fault node %d out of range", f.Node)
		}
		if seen[f.Node] {
			return fmt.Errorf("core: duplicate fault spec for node %d", f.Node)
		}
		seen[f.Node] = true
	}
	return nil
}

// buildDrift constructs the rate model for one node via the configured
// DriftModel.
func buildDrift(m DriftModel, p params.Params, aug *graph.Augmented, v graph.NodeID, rng *sim.RNG) clockwork.RateModel {
	return m.Rate(DriftCtx{
		Node:     v,
		Cluster:  aug.ClusterOf(v),
		Index:    aug.IndexIn(v),
		Clusters: aug.Clusters(),
		K:        aug.K,
		Params:   p,
		Rng:      rng,
	})
}
