// Package core assembles the complete FTGCS system of the paper: the
// augmented network G (clusters of k ≥ 3f+1 nodes), ClusterSync within
// clusters (Algorithm 1), passive observers producing neighbor-cluster
// estimates (Corollary 3.5), InterclusterSync mode selection at round
// boundaries (Algorithm 2 + Theorem C.3 rules), and the Appendix C
// global-skew estimate machinery — all running on the deterministic
// discrete-event engine, instrumented for the experiments.
package core

import (
	"fmt"
	"math"

	"ftgcs/internal/byzantine"
	"ftgcs/internal/clockwork"
	"ftgcs/internal/graph"
	"ftgcs/internal/params"
	"ftgcs/internal/sim"
	"ftgcs/internal/transport"
)

// DriftKind selects how hardware clock rates are assigned across nodes.
type DriftKind int

const (
	// DriftSpread: member i of every cluster runs at 1 + ρ·i/(k−1) —
	// maximal constant intra-cluster drift.
	DriftSpread DriftKind = iota + 1
	// DriftGradient: all members of cluster c run at 1 + ρ·c/(|𝒞|−1) —
	// constant inter-cluster gradient along the cluster index.
	DriftGradient
	// DriftHalves: clusters in the lower index half run at 1, the upper
	// half at 1+ρ — maximal persistent rate difference at the boundary.
	DriftHalves
	// DriftAlternatingHalves: like DriftHalves but the halves swap rates
	// every Period seconds — the classic skew-pumping adversary.
	DriftAlternatingHalves
	// DriftRandomWalk: every node redraws its rate from [1, 1+ρ] every
	// Step seconds.
	DriftRandomWalk
	// DriftSine: slow sinusoidal wander with per-node phase.
	DriftSine
	// DriftNone: every clock runs at exactly rate 1 (debug/reference).
	DriftNone
)

// DriftSpec configures the drift assignment.
type DriftSpec struct {
	Kind DriftKind
	// Period applies to DriftAlternatingHalves and DriftSine. 0 selects
	// 40·T at build time.
	Period float64
	// Step applies to DriftRandomWalk. 0 selects T/3.
	Step float64
}

// DelayKind selects the message delay model.
type DelayKind int

const (
	// DelayUniform draws uniformly from [d−U, d].
	DelayUniform DelayKind = iota + 1
	// DelayExtremal biases delays by direction (skew-maximizing).
	DelayExtremal
	// DelayFixedMid always uses d−U/2.
	DelayFixedMid
	// DelayPhasedReveal uses one extremal bias before SwitchAt and the
	// opposite after — the hidden-skew reveal adversary of experiment E9.
	DelayPhasedReveal
)

// DelaySpec configures the delay model.
type DelaySpec struct {
	Kind DelayKind
	// SwitchAt applies to DelayPhasedReveal.
	SwitchAt float64
}

// FaultSpec marks one physical node faulty.
//
// Exactly one of the behavior fields applies, in this precedence order:
// Strategy (arbitrary Byzantine behavior from the byzantine package),
// CrashAt > 0 (correct until CrashAt, then silent), OffSpecRate ≠ 0 (runs
// the correct algorithm on a hardware clock of absolute rate OffSpecRate,
// possibly outside [1, 1+ρ] — the paper's "sub-nominal speed" example).
type FaultSpec struct {
	Node        graph.NodeID
	Strategy    byzantine.Strategy
	CrashAt     float64
	OffSpecRate float64
}

// Config describes a complete system build.
type Config struct {
	// Base is the cluster graph 𝒢.
	Base *graph.Graph
	// K is the cluster size (≥ 3F+1).
	K int
	// F is the per-cluster fault budget.
	F int
	// Params are the derived algorithm constants.
	Params params.Params
	// Seed drives all randomness (delays, drift, adversaries).
	Seed int64

	Drift DriftSpec
	Delay DelaySpec

	// Faults lists the faulty nodes. At most F per cluster for the
	// paper's guarantees to apply (experiments exceed it deliberately).
	Faults []FaultSpec

	// EnableGlobalSkew turns on the Appendix C M_v machinery and the
	// Theorem C.3 catch-up rule.
	EnableGlobalSkew bool

	// SampleInterval is the metric sampling period; 0 selects T/2.
	SampleInterval float64
	// TrackClusters records per-cluster clock/FC/SC series (experiment
	// E10); costs memory proportional to samples × clusters.
	TrackClusters bool
	// TrackRounds records per-node round boundaries, logical values and
	// modes (experiments E3, E4).
	TrackRounds bool

	// ModeOverride, when non-nil, replaces the GCS decision: returning
	// (mode, true) forces the node's mode for that round. Used by the
	// unanimity experiments (E4).
	ModeOverride func(node graph.NodeID, cluster graph.ClusterID, round int) (int, bool)

	// StaggerStart, when positive, delays the protocol start of cluster
	// member i by i·StaggerStart/(k−1) seconds. This injects an initial
	// pulse-diameter ‖p(1)‖ ≈ StaggerStart, which the convergence
	// experiment (E3) watches contract towards the steady state E
	// (Eq. 9/12). Must stay well below τ₁ so round-1 pulses still land in
	// every member's listening window.
	StaggerStart float64
}

// validate checks structural requirements.
func (c *Config) validate() error {
	if c.Base == nil || c.Base.N() == 0 {
		return fmt.Errorf("core: empty base graph")
	}
	if c.K < 1 {
		return fmt.Errorf("core: cluster size K=%d < 1", c.K)
	}
	if c.F < 0 || (c.F > 0 && c.K < 3*c.F+1) {
		return fmt.Errorf("core: K=%d cannot tolerate F=%d (need K ≥ 3F+1)", c.K, c.F)
	}
	if c.Params.T <= 0 {
		return fmt.Errorf("core: parameters not derived (T=%v)", c.Params.T)
	}
	seen := make(map[graph.NodeID]bool)
	for _, f := range c.Faults {
		if f.Node < 0 || f.Node >= c.Base.N()*c.K {
			return fmt.Errorf("core: fault node %d out of range", f.Node)
		}
		if seen[f.Node] {
			return fmt.Errorf("core: duplicate fault spec for node %d", f.Node)
		}
		seen[f.Node] = true
	}
	return nil
}

// buildDrift constructs the rate model for one node.
func buildDrift(spec DriftSpec, p params.Params, aug *graph.Augmented, v graph.NodeID, rng *sim.RNG) clockwork.RateModel {
	rho := p.Rho
	c := aug.ClusterOf(v)
	i := aug.IndexIn(v)
	nClusters := aug.Clusters()
	switch spec.Kind {
	case DriftGradient:
		frac := 0.0
		if nClusters > 1 {
			frac = float64(c) / float64(nClusters-1)
		}
		return clockwork.Constant{Rate: 1 + rho*frac}
	case DriftHalves:
		if c >= nClusters/2 {
			return clockwork.Constant{Rate: 1 + rho}
		}
		return clockwork.Constant{Rate: 1}
	case DriftAlternatingHalves:
		period := spec.Period
		if period <= 0 {
			period = 40 * p.T
		}
		phase := 0.0
		if c >= nClusters/2 {
			phase = -period // upper half starts at the high rate
		}
		return clockwork.Alternating{Lo: 1, Hi: 1 + rho, Period: period, Phase: phase}
	case DriftRandomWalk:
		step := spec.Step
		if step <= 0 {
			step = p.T / 3
		}
		return clockwork.NewRandomWalk(1, 1+rho, step, rng)
	case DriftSine:
		period := spec.Period
		if period <= 0 {
			period = 40 * p.T
		}
		return clockwork.Sinusoid{
			Base: 1, Amp: rho, Period: period, StepsPerPeriod: 32,
			Phase: period * float64(v%16) / 16,
		}
	case DriftNone:
		return clockwork.Constant{Rate: 1}
	default: // DriftSpread
		frac := 0.0
		if aug.K > 1 {
			frac = float64(i) / float64(aug.K-1)
		}
		return clockwork.Constant{Rate: 1 + rho*frac}
	}
}

// buildDelay constructs the delay model.
func buildDelay(spec DelaySpec, p params.Params, rng *sim.RNG) transport.DelayModel {
	d, u := p.Delay, p.Uncertainty
	switch spec.Kind {
	case DelayExtremal:
		return transport.ExtremalDelay{D: d, U: u}
	case DelayFixedMid:
		return transport.FixedDelay{D: d, U: u, Frac: 0.5}
	case DelayPhasedReveal:
		switchAt := spec.SwitchAt
		if switchAt <= 0 {
			switchAt = math.Inf(1)
		}
		return transport.PhasedDelay{
			Before:   transport.ExtremalDelay{D: d, U: u},
			After:    transport.ExtremalDelay{D: d, U: u, Invert: true},
			SwitchAt: switchAt,
		}
	default: // DelayUniform
		return transport.UniformDelay{D: d, U: u, Rng: rng}
	}
}
