package core

import (
	"math"
	"testing"

	"ftgcs/internal/byzantine"
	"ftgcs/internal/graph"
)

// TestTopologyFamilies runs a short fault-free system on each topology
// family and checks the intra-cluster and local bounds.
func TestTopologyFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-topology integration runs")
	}
	p := testParams(t)
	bases := []*graph.Graph{
		graph.Ring(4),
		graph.Grid(3, 2),
		graph.BalancedTree(2, 2),
		graph.Star(4),
		graph.Clique(3),
		graph.Hypercube(2),
	}
	for _, base := range bases {
		base := base
		t.Run(base.Name(), func(t *testing.T) {
			sys, err := NewSystem(Config{
				Base: base, K: 4, F: 1, Params: p, Seed: 21,
				Drift: DriftSpec{Kind: DriftSpread},
			})
			if err != nil {
				t.Fatalf("NewSystem: %v", err)
			}
			if err := sys.Run(25 * p.T); err != nil {
				t.Fatalf("Run: %v", err)
			}
			sum := sys.Summarize(5 * p.T)
			if sum.MaxIntraSkew > p.ClusterSkewBound() {
				t.Errorf("intra skew %v > bound %v", sum.MaxIntraSkew, p.ClusterSkewBound())
			}
			d := base.Diameter()
			if sum.MaxLocalNode > p.NodeLocalSkewBound(d) {
				t.Errorf("local skew %v > bound %v", sum.MaxLocalNode, p.NodeLocalSkewBound(d))
			}
		})
	}
}

// TestMaxSpamCannotInflateEstimates attacks the Appendix C machinery
// directly: a PulseMax flooder must not push any correct node's M_v above
// L_max (the f+1-confirmation defense).
func TestMaxSpamCannotInflateEstimates(t *testing.T) {
	p := testParams(t)
	sys, err := NewSystem(Config{
		Base: graph.Line(3), K: 4, F: 1, Params: p, Seed: 22,
		Faults:           []FaultSpec{{Node: 5, Strategy: byzantine.MaxSpam{}}},
		EnableGlobalSkew: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(30 * p.T); err != nil {
		t.Fatal(err)
	}
	sum := sys.Summarize(0)
	if sum.MaxEstViolations > 0 {
		t.Errorf("MaxSpam inflated M_v above L_max on %v samples", sum.MaxEstViolations)
	}
	if sum.MaxIntraSkew > p.ClusterSkewBound() {
		t.Errorf("intra skew %v > bound under MaxSpam", sum.MaxIntraSkew)
	}
}

// TestInjectClockFaultHealsWithinMargin verifies the A1 boundary at unit
// scale: a small value corruption heals; a large one leaves the victim
// partitioned (its cluster's pulse-diameter bookkeeping stops covering all
// correct members).
func TestInjectClockFaultHealsWithinMargin(t *testing.T) {
	p := testParams(t)
	run := func(mag float64) (intraTail float64) {
		sys, err := NewSystem(Config{
			Base: graph.Line(2), K: 4, F: 0, Params: p, Seed: 23,
			Drift: DriftSpec{Kind: DriftNone},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(20 * p.T); err != nil {
			t.Fatal(err)
		}
		if err := sys.InjectClockFault(0, mag); err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(80 * p.T); err != nil {
			t.Fatal(err)
		}
		ser := sys.Recorder().Series(SeriesIntraSkew)
		tail := 0.0
		for i, tt := range ser.Times {
			if tt > 70*p.T {
				tail = math.Max(tail, ser.Values[i])
			}
		}
		return tail
	}
	small := run(0.3 * (p.Tau2 - p.Delay))
	if small > p.EG {
		t.Errorf("small corruption did not heal: tail intra skew %v > E %v", small, p.EG)
	}
	large := run(3 * (p.Tau1 + p.Tau2))
	if large < p.Tau1 {
		t.Errorf("large corruption unexpectedly healed: tail %v", large)
	}
	// Injection on a strategy-driven Byzantine node must error.
	sys, err := NewSystem(Config{
		Base: graph.Line(2), K: 4, F: 1, Params: p, Seed: 24,
		Faults: []FaultSpec{{Node: 0, Strategy: byzantine.Silent{}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sys.InjectClockFault(0, 1); err == nil {
		t.Error("injecting into a strategy node should fail")
	}
}

// TestStaggeredStartConverges checks that moderate initial desync decays
// to the steady band (the E3 mechanism at unit-test scale).
func TestStaggeredStartConverges(t *testing.T) {
	p := testParams(t)
	sys, err := NewSystem(Config{
		Base: graph.Line(1), K: 4, F: 1, Params: p, Seed: 25,
		Drift:        DriftSpec{Kind: DriftSpread},
		StaggerStart: 2 * p.EG,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(60 * p.T); err != nil {
		t.Fatal(err)
	}
	diams := sys.PulseDiameters(0)
	late := 0.0
	count := 0
	for r, v := range diams {
		if r > 40 {
			late = math.Max(late, v)
			count++
		}
	}
	if count == 0 {
		t.Fatal("no late-round pulse data")
	}
	if late > p.EG {
		t.Errorf("pulse diameter %v did not converge below E %v", late, p.EG)
	}
}

// TestCadenceAttackBoundedInCluster: the plain-GCS-killing cadence attack
// must remain harmless inside a properly sized cluster.
func TestCadenceAttackBoundedInCluster(t *testing.T) {
	p := testParams(t)
	sys, err := NewSystem(Config{
		Base: graph.Line(2), K: 4, F: 1, Params: p, Seed: 26,
		Faults: []FaultSpec{
			{Node: 3, Strategy: byzantine.CadenceTwoFaced{}},
			{Node: 7, Strategy: byzantine.CadenceTwoFaced{}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(50 * p.T); err != nil {
		t.Fatal(err)
	}
	if sum := sys.Summarize(10 * p.T); sum.MaxIntraSkew > p.ClusterSkewBound() {
		t.Errorf("cadence attack broke intra bound: %v > %v", sum.MaxIntraSkew, p.ClusterSkewBound())
	}
}

// TestGCSStatsAccumulate ensures decisions are recorded and the fast
// fraction series is populated.
func TestGCSStatsAccumulate(t *testing.T) {
	p := testParams(t)
	sys, err := NewSystem(Config{
		Base: graph.Line(3), K: 4, F: 0, Params: p, Seed: 27,
		Drift: DriftSpec{Kind: DriftGradient},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(30 * p.T); err != nil {
		t.Fatal(err)
	}
	st := sys.GCSStats(0)
	if st.Decisions < 25 {
		t.Errorf("only %d decisions recorded", st.Decisions)
	}
	ser := sys.Recorder().Series(SeriesFastFraction)
	if ser == nil || ser.Len() == 0 {
		t.Fatal("fast-fraction series missing")
	}
	if ser.Max() > 1 || ser.Min() < 0 {
		t.Errorf("fast fraction out of [0,1]: [%v, %v]", ser.Min(), ser.Max())
	}
}
