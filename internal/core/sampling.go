package core

import (
	"fmt"
	"math"

	"ftgcs/internal/gcs"
	"ftgcs/internal/sim"
)

// Metric series names recorded by the sampler.
const (
	// SeriesIntraSkew is the max over clusters of the intra-cluster skew
	// among correct members (Corollary 3.2's subject).
	SeriesIntraSkew = "skew/intra"
	// SeriesLocalCluster is the max over base edges of |L_B − L_C|
	// (Theorem 4.10's subject).
	SeriesLocalCluster = "skew/local-cluster"
	// SeriesLocalNode is the max over physical edges between correct
	// nodes of |L_v − L_w| (Theorem 1.1's subject).
	SeriesLocalNode = "skew/local-node"
	// SeriesGlobal is the max skew between any two correct nodes.
	SeriesGlobal = "skew/global"
	// SeriesMaxEstLag is the max over correct nodes of L_max − M_v
	// (Lemma C.2: should stay O(δD)).
	SeriesMaxEstLag = "maxest/lag"
	// SeriesMaxEstViolations counts nodes with M_v > L_max (must be 0).
	SeriesMaxEstViolations = "maxest/violations"
	// SeriesFastFraction is the fraction of correct nodes in fast mode.
	SeriesFastFraction = "gcs/fast-fraction"
)

// clusterSeries formats the per-cluster series names (TrackClusters).
func clusterSeries(c int, what string) string {
	return fmt.Sprintf("cluster/%d/%s", c, what)
}

// ClusterSeriesClock returns the series name of cluster c's clock samples.
func ClusterSeriesClock(c int) string { return clusterSeries(c, "clock") }

// ClusterSeriesFC returns the series name of cluster c's fast-condition
// indicator (1.0 when FC holds).
func ClusterSeriesFC(c int) string { return clusterSeries(c, "fc") }

// ClusterSeriesSC returns the series name of cluster c's slow-condition
// indicator.
func ClusterSeriesSC(c int) string { return clusterSeries(c, "sc") }

func (s *System) scheduleSampler() {
	var tick func(e *sim.Engine)
	tick = func(e *sim.Engine) {
		s.sample(e.Now())
		e.MustSchedule(e.Now()+s.sampleInterval, "sampler", tick)
	}
	s.eng.MustSchedule(s.eng.Now()+s.sampleInterval, "sampler", tick)
}

// sample computes all skew metrics at time t. The per-cluster working
// arrays are reused across ticks (see System scratch fields).
func (s *System) sample(t float64) {
	nc := s.aug.Clusters()
	lows := s.sampleLows
	highs := s.sampleHighs
	clocks := s.sampleClocks
	valid := s.sampleValid

	intraMax := math.Inf(-1)
	globalLo, globalHi := math.Inf(1), math.Inf(-1)
	for c := 0; c < nc; c++ {
		lo, hi, ok := s.clusterRange(c)
		lows[c], highs[c], valid[c] = lo, hi, ok
		if !ok {
			clocks[c] = math.NaN()
			continue
		}
		clocks[c] = (lo + hi) / 2
		intraMax = math.Max(intraMax, hi-lo)
		globalLo = math.Min(globalLo, lo)
		globalHi = math.Max(globalHi, hi)
	}

	localCluster := 0.0
	localNode := intraMax // cluster edges are physical edges too
	for _, e := range s.baseEdges {
		b, c := e[0], e[1]
		if !valid[b] || !valid[c] {
			continue
		}
		localCluster = math.Max(localCluster, math.Abs(clocks[b]-clocks[c]))
		// Node-level over the complete bipartite edge set:
		localNode = math.Max(localNode, highs[b]-lows[c])
		localNode = math.Max(localNode, highs[c]-lows[b])
	}

	s.rec.Observe(SeriesIntraSkew, t, intraMax)
	s.rec.Observe(SeriesLocalCluster, t, localCluster)
	s.rec.Observe(SeriesLocalNode, t, localNode)
	s.rec.Observe(SeriesGlobal, t, globalHi-globalLo)

	// Fast-mode fraction.
	total, fast := 0, 0
	for _, n := range s.nodes {
		if n.faulty || n.inst == nil {
			continue
		}
		total++
		if n.main.Gamma() == 1 {
			fast++
		}
	}
	if total > 0 {
		s.rec.Observe(SeriesFastFraction, t, float64(fast)/float64(total))
	}

	// Global max-estimate health.
	if s.cfg.EnableGlobalSkew {
		lag := math.Inf(-1)
		violations := 0.0
		for _, n := range s.nodes {
			if n.faulty || n.maxEst == nil {
				continue
			}
			m := n.maxEst.Value(t)
			if m > globalHi+1e-9 {
				violations++
			}
			lag = math.Max(lag, globalHi-m)
		}
		s.rec.Observe(SeriesMaxEstLag, t, lag)
		s.rec.Observe(SeriesMaxEstViolations, t, violations)
	}

	// Per-cluster tracking for the GCS-axiom experiment.
	if s.cfg.TrackClusters {
		p := s.cfg.Params
		for c := 0; c < nc; c++ {
			if !valid[c] {
				continue
			}
			nbrs := s.aug.NeighborClusters(c)
			if cap(s.nbrClockScratch) < len(nbrs) {
				s.nbrClockScratch = make([]float64, 0, len(nbrs))
			}
			nbrClocks := s.nbrClockScratch[:0]
			for _, b := range nbrs {
				if valid[b] {
					nbrClocks = append(nbrClocks, clocks[b])
				}
			}
			fc := gcs.FastCondition(clocks[c], nbrClocks, p.Kappa)
			sc := gcs.SlowCondition(clocks[c], nbrClocks, p.Kappa)
			s.rec.Observe(ClusterSeriesClock(c), t, clocks[c])
			s.rec.Observe(ClusterSeriesFC(c), t, b2f(fc))
			s.rec.Observe(ClusterSeriesSC(c), t, b2f(sc))
		}
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Summary condenses a finished run for reports.
type Summary struct {
	Horizon          float64
	MaxIntraSkew     float64
	MaxLocalCluster  float64
	MaxLocalNode     float64
	MaxGlobal        float64
	MaxMaxEstLag     float64
	MaxEstViolations float64
	Events           uint64
}

// Summarize computes the run summary, excluding samples before warmup
// (pass 0 to include everything).
func (s *System) Summarize(warmup float64) Summary {
	get := func(name string) float64 {
		if ser := s.rec.Series(name); ser != nil {
			return ser.MaxAfter(warmup)
		}
		return math.Inf(-1)
	}
	return Summary{
		Horizon:          s.eng.Now(),
		MaxIntraSkew:     get(SeriesIntraSkew),
		MaxLocalCluster:  get(SeriesLocalCluster),
		MaxLocalNode:     get(SeriesLocalNode),
		MaxGlobal:        get(SeriesGlobal),
		MaxMaxEstLag:     get(SeriesMaxEstLag),
		MaxEstViolations: get(SeriesMaxEstViolations),
		Events:           s.eng.Processed(),
	}
}
