package spec

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ftgcs"
)

// randomSpec draws a structurally valid spec from the default registry's
// vocabulary. Only deterministic topology families are used so sizes stay
// cheap to validate.
func randomSpec(rng *rand.Rand) ScenarioSpec {
	reg := ftgcs.DefaultRegistry
	topos := []string{"line", "ring", "grid", "clique", "star"}
	drifts := reg.DriftNames()
	delays := reg.DelayNames()
	attacks := reg.AttackNames()

	s := ScenarioSpec{
		Topology: Topology{Name: topos[rng.Intn(len(topos))], Size: 1 + rng.Intn(4)},
		Seed:     rng.Int63n(1000),
	}
	if rng.Intn(2) == 0 {
		s.Name = "random spec"
	}
	if rng.Intn(2) == 0 {
		s.Clusters = Clusters{K: 4, F: 1}
	}
	if rng.Intn(2) == 0 {
		s.Physical = Physical{Rho: 3e-3, Delay: 1e-3, Uncertainty: 1e-4}
	}
	if rng.Intn(3) == 0 {
		s.Preset = "paper-strict"
		s.Physical = Physical{Rho: 1e-6, Delay: 1e-3, Uncertainty: 1e-4}
	}
	if rng.Intn(2) == 0 {
		s.Constants = &Constants{C2: 4, Eps: 0.25}
	}
	if rng.Intn(2) == 0 {
		s.Drift = drifts[rng.Intn(len(drifts))]
	}
	if rng.Intn(2) == 0 {
		s.Delay = delays[rng.Intn(len(delays))]
	}
	if rng.Intn(3) == 0 {
		s.Attack = &Attack{Name: attacks[rng.Intn(len(attacks))], Clusters: rng.Intn(3)}
	}
	if rng.Intn(3) == 0 {
		k := s.Clusters.K
		if k == 0 {
			k = 4
		}
		for i := rng.Intn(3); i >= 0; i-- {
			s.Faults = append(s.Faults, Fault{Node: rng.Intn(s.Topology.Size * k), Attack: attacks[rng.Intn(len(attacks))]})
		}
	}
	if rng.Intn(2) == 0 {
		off := false
		s.GlobalSkew = &off
	}
	if rng.Intn(2) == 0 {
		s.SampleInterval = float64(1+rng.Intn(10)) / 100
	}
	switch rng.Intn(3) {
	case 0:
		s.Horizon = Horizon{Seconds: float64(1 + rng.Intn(60))}
	case 1:
		s.Horizon = Horizon{Rounds: float64(10 + rng.Intn(100))}
	}
	if rng.Intn(3) == 0 {
		s.Track = Track{Rounds: rng.Intn(2) == 0, Clusters: rng.Intn(2) == 0}
	}
	return s
}

// TestRoundTripProperty: Decode(Encode(spec)) is the identity on
// normalized specs, and the content hash survives the round trip.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		s := randomSpec(rng)
		n := s.Normalize()

		var buf bytes.Buffer
		if err := n.Encode(&buf); err != nil {
			t.Fatalf("iter %d: encode: %v", i, err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", i, err)
		}
		// Canonical encoding strips the display name.
		want := n
		want.Name = ""
		if !reflect.DeepEqual(back, want) {
			t.Fatalf("iter %d: round trip changed spec:\n got %+v\nwant %+v", i, back, want)
		}

		h1, err := s.Hash()
		if err != nil {
			t.Fatal(err)
		}
		h2, err := back.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Fatalf("iter %d: hash changed across round trip: %s vs %s", i, h1, h2)
		}
		if !strings.HasPrefix(h1, "sha256:") || len(h1) != len("sha256:")+64 {
			t.Fatalf("iter %d: malformed hash %q", i, h1)
		}
	}
}

// TestNormalizeIdempotent: Normalize(Normalize(s)) == Normalize(s).
func TestNormalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		n := randomSpec(rng).Normalize()
		if again := n.Normalize(); !reflect.DeepEqual(again, n) {
			t.Fatalf("iter %d: Normalize not idempotent:\n got %+v\nwant %+v", i, again, n)
		}
	}
}

// FuzzParseRoundTrip: any JSON that parses must re-encode/decode to the
// same normalized spec.
func FuzzParseRoundTrip(f *testing.F) {
	f.Add([]byte(`{"topology":{"name":"line","size":3},"seed":1,"horizon":{"seconds":10}}`))
	f.Add([]byte(`{"version":1,"topology":{"name":"ring","size":4},"clusters":{"k":4,"f":1},"attack":{"name":"silent"}}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		c, err := s.Canonical()
		if err != nil {
			t.Skip() // e.g. non-UTF8 names; json.Marshal coerces or errors
		}
		back, err := Parse(c)
		if err != nil {
			t.Fatalf("canonical bytes failed to parse: %v\n%s", err, c)
		}
		c2, err := back.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(c, c2) {
			t.Fatalf("canonical encoding not a fixed point:\n%s\n%s", c, c2)
		}
	})
}

// TestHashStability: the content hash is independent of JSON key order,
// omitted defaults, whitespace and the display name.
func TestHashStability(t *testing.T) {
	a := `{
		"topology": {"name": "torus", "size": 3},
		"clusters": {"k": 4, "f": 1},
		"seed": 7,
		"drift": "sine",
		"horizon": {"seconds": 30},
		"faults": [{"node": 1, "attack": "silent"}, {"node": 0, "attack": "random"}]
	}`
	// Same experiment: keys reordered, defaults spelled out, different
	// whitespace, a display name, fault list permuted.
	b := `{"name":"torus demo","version":1,"seed":7,
		"faults":[{"attack":"random","node":0},{"attack":"silent","node":1}],
		"horizon":{"seconds":30},"preset":"practical","delay":"uniform",
		"drift":"sine","globalSkew":true,
		"physical":{"rho":0.001,"delay":0.001,"uncertainty":0.0001},
		"clusters":{"f":1,"k":4},"topology":{"size":3,"name":"torus"}}`
	sa, err := Parse([]byte(a))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Parse([]byte(b))
	if err != nil {
		t.Fatal(err)
	}
	ha, err := sa.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := sb.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("equivalent specs hash differently:\n%s\n%s", ha, hb)
	}

	// A semantic change must change the hash.
	sc := sa
	sc.Seed = 8
	hc, err := sc.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Fatal("different seeds produced the same content hash")
	}
}

// TestValidateUnknownNames: unknown registry names fail Validate with the
// registry's own "unknown name" error, which lists what is available.
func TestValidateUnknownNames(t *testing.T) {
	base := ScenarioSpec{Topology: Topology{Name: "line", Size: 3}}
	cases := []struct {
		mutate func(*ScenarioSpec)
		want   string
	}{
		{func(s *ScenarioSpec) { s.Topology.Name = "moebius" }, `unknown topology "moebius"`},
		{func(s *ScenarioSpec) { s.Drift = "quadratic" }, `unknown drift model "quadratic"`},
		{func(s *ScenarioSpec) { s.Delay = "wormhole" }, `unknown delay model "wormhole"`},
		{func(s *ScenarioSpec) { s.Attack = &Attack{Name: "nope"} }, `unknown attack "nope"`},
		{func(s *ScenarioSpec) { s.Faults = []Fault{{Node: 0, Attack: "nope"}} }, `unknown attack "nope"`},
		{func(s *ScenarioSpec) { s.Preset = "imaginary" }, `unknown preset "imaginary"`},
	}
	for _, c := range cases {
		s := base
		c.mutate(&s)
		err := s.Validate(nil)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("want error containing %q, got %v", c.want, err)
		}
		if err != nil && c.want != `unknown preset "imaginary"` && !strings.Contains(err.Error(), "have:") {
			t.Errorf("registry error should list available names, got %v", err)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	ok := ScenarioSpec{Topology: Topology{Name: "line", Size: 3}}
	if err := ok.Validate(nil); err != nil {
		t.Fatalf("minimal spec should validate, got %v", err)
	}
	cases := []struct {
		mutate func(*ScenarioSpec)
		want   string
	}{
		{func(s *ScenarioSpec) { s.Version = 99 }, "unsupported version"},
		{func(s *ScenarioSpec) { s.Topology.Name = "" }, "missing topology"},
		{func(s *ScenarioSpec) { s.Topology.Size = -1 }, "must be ≥ 1"},
		{func(s *ScenarioSpec) { s.Clusters = Clusters{K: 4, F: 2} }, "3f+1"},
		{func(s *ScenarioSpec) { s.Physical = Physical{Rho: -1, Delay: 1e-3, Uncertainty: 1e-4} }, "positive"},
		{func(s *ScenarioSpec) { s.Physical = Physical{Rho: 1e-3, Delay: 1e-4, Uncertainty: 1e-3} }, "exceeds delay"},
		{func(s *ScenarioSpec) { s.Faults = []Fault{{Node: 99, Attack: "silent"}} }, "outside"},
		{func(s *ScenarioSpec) { s.Faults = []Fault{{Node: 0}} }, "no behavior"},
		{func(s *ScenarioSpec) { s.Horizon = Horizon{Seconds: 10, Rounds: 10} }, "both"},
		{func(s *ScenarioSpec) { s.SampleInterval = -1 }, "negative sampleInterval"},
		// Resource bounds: remote clients must not be able to request
		// arbitrarily large graphs or unbounded horizons.
		{func(s *ScenarioSpec) { s.Topology.Size = MaxTopologySize + 1 }, "exceeds limit"},
		{func(s *ScenarioSpec) { s.Clusters = Clusters{K: MaxClusterSize + 1, F: 0} }, "exceeds limit"},
		// The cluster budget applies to the resolved graph, not the raw
		// size parameter: tree's size is a depth, hypercube's a
		// dimension, grid/torus's a side length.
		{func(s *ScenarioSpec) { s.Topology = Topology{Name: "tree", Size: 50} }, "exceeds limit"},
		{func(s *ScenarioSpec) { s.Topology = Topology{Name: "hypercube", Size: 40} }, "exceeds limit"},
		{func(s *ScenarioSpec) { s.Topology = Topology{Name: "grid", Size: 2048} }, "exceeds limit"},
		{func(s *ScenarioSpec) { s.Topology = Topology{Name: "torus", Size: 64} }, "exceeds limit"},
		{
			func(s *ScenarioSpec) {
				s.Topology = Topology{Name: "line", Size: 2048}
				s.Clusters = Clusters{K: 1024, F: 0}
			},
			"simulated nodes",
		},
		{func(s *ScenarioSpec) { s.Horizon = Horizon{Seconds: MaxHorizonSeconds * 2} }, "exceeds limit"},
		{func(s *ScenarioSpec) { s.Horizon = Horizon{Rounds: MaxHorizonRounds * 2} }, "exceeds limit"},
	}
	for _, c := range cases {
		s := ok
		c.mutate(&s)
		if err := s.Validate(nil); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("want error containing %q, got %v", c.want, err)
		}
	}
}

// TestValidateBoundsResolvedGraph: the cluster budget is enforced before
// an exponential builder runs (if validation built tree(50) first, this
// test would exhaust memory on its 2^51-cluster graph), and custom
// families without a size estimate are still bounded after building.
func TestValidateBoundsResolvedGraph(t *testing.T) {
	s := ScenarioSpec{Topology: Topology{Name: "tree", Size: 50}}
	if err := s.Validate(nil); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("tree depth 50 must fail validation, got %v", err)
	}

	reg := ftgcs.NewRegistry()
	reg.RegisterTopology("wide", func(size int, _ int64) (*ftgcs.Topology, error) {
		return ftgcs.Line(3 * size), nil
	})
	w := ScenarioSpec{Topology: Topology{Name: "wide", Size: 1000}}
	if err := w.Validate(reg); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("custom family resolving to 3000 clusters must fail validation, got %v", err)
	}

	// An alias of a super-linear family inherits its size estimator, so
	// the pre-build guard fires without ever invoking the builder.
	built := false
	reg.RegisterTopology("deep", func(size int, _ int64) (*ftgcs.Topology, error) {
		built = true
		return ftgcs.Line(1), nil
	})
	reg.RegisterTopologySize("deep", func(size int) int {
		if size >= 30 {
			return 1 << 30
		}
		return 1 << size
	})
	reg.RegisterAlias("d", "deep")
	a := ScenarioSpec{Topology: Topology{Name: "d", Size: 50}}
	if err := a.Validate(reg); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("aliased exponential family must fail the pre-build check, got %v", err)
	}
	if built {
		t.Fatal("builder must not run when the size estimate rejects the spec")
	}

	// A custom registry's own "tree" is NOT judged by the built-in tree's
	// depth semantics: estimators belong to the registry, not the name.
	lin := ftgcs.NewRegistry()
	lin.RegisterTopology("tree", func(size int, _ int64) (*ftgcs.Topology, error) {
		return ftgcs.Line(size), nil
	})
	lin.RegisterDrift("spread", func() ftgcs.DriftModel { return ftgcs.SpreadDrift{} })
	lin.RegisterDelay("uniform", func() ftgcs.DelayModel { return ftgcs.UniformDelayModel{} })
	s3 := ScenarioSpec{Topology: Topology{Name: "tree", Size: 100}}
	if err := s3.Validate(lin); err != nil {
		t.Fatalf("linear custom \"tree\" at size 100 must validate, got %v", err)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"topology":{"name":"line","size":3},"horizn":{"seconds":5}}`))
	if err == nil || !strings.Contains(err.Error(), "horizn") {
		t.Fatalf("typo fields must be rejected, got %v", err)
	}
}

// TestCompileMatchesBuilder: a compiled spec must produce the same report
// as the equivalent hand-built scenario.
func TestCompileMatchesBuilder(t *testing.T) {
	s := ScenarioSpec{
		Topology: Topology{Name: "line", Size: 3},
		Clusters: Clusters{K: 4, F: 1},
		Physical: Physical{Rho: 1e-3, Delay: 1e-3, Uncertainty: 1e-4},
		Seed:     1,
		Drift:    "sine",
		Attack:   &Attack{Name: "silent", Clusters: 1},
		Horizon:  Horizon{Seconds: 8},
	}
	sc, err := s.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}

	strat, err := ftgcs.AttackByName("silent")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ftgcs.NewScenario(
		ftgcs.WithTopology(ftgcs.Line(3)),
		ftgcs.WithClusters(4, 1),
		ftgcs.WithPhysical(1e-3, 1e-3, 1e-4),
		ftgcs.WithSeed(1),
		ftgcs.WithDriftName("sine"),
		ftgcs.WithAttackPerCluster(func() ftgcs.Attack { return strat }, 1),
		ftgcs.WithHorizon(8),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("compiled spec diverged from builder:\n got %+v\nwant %+v", got, want)
	}
}

// TestCompileDeterministic: compiling and running the same spec twice
// yields identical reports — the property the job cache exploits.
func TestCompileDeterministic(t *testing.T) {
	s := ScenarioSpec{
		Topology: Topology{Name: "random", Size: 4},
		Seed:     42,
		Horizon:  Horizon{Seconds: 5},
	}
	run := func() ftgcs.Report {
		sc, err := s.Compile(nil)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same spec produced different reports:\n%+v\n%+v", a, b)
	}
}
