// Package spec defines the declarative, versioned, JSON-serializable
// scenario description that makes experiments *data*: a ScenarioSpec
// names its topology, adversaries and attack through the ftgcs registry
// instead of holding Go values, so remote clients (the ftgcs-serve HTTP
// API), spec files on disk (ftgcs-sim -spec) and the job manager's
// content-addressed cache all share one codec.
//
// A spec has a canonical encoding: Normalize fills every default, sorts
// the fault list, and Canonical marshals the result with a fixed field
// order and shortest-float number encoding. The SHA-256 of the canonical
// bytes is the spec's content hash — two specs that mean the same
// experiment hash identically regardless of JSON key order, field
// omission or whitespace, which is what lets the job manager dedupe and
// cache runs (the simulator is deterministic: same spec + seed ⇒
// byte-identical result).
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"ftgcs"
	"ftgcs/internal/core"
)

// Version is the current spec schema version.
const Version = 1

// ScenarioSpec is a complete, self-contained experiment description.
// Topology, drift, delay and attacks are registry names (see
// ftgcs.Registry); everything else is plain data. The zero value of any
// optional field means "default" — Normalize makes the defaults explicit.
type ScenarioSpec struct {
	// Version is the schema version; 0 is normalized to the current
	// Version.
	Version int `json:"version"`
	// Name is an optional display name (tables, logs). It does not
	// affect the content hash's identity role: two specs differing only
	// in Name are the same experiment — Name is excluded from the
	// canonical encoding.
	Name string `json:"name,omitempty"`

	Topology Topology `json:"topology"`
	Clusters Clusters `json:"clusters"`
	Physical Physical `json:"physical"`

	// Preset selects the analysis constants: "practical" (default) or
	// "paper-strict".
	Preset string `json:"preset,omitempty"`
	// Constants overrides the preset's c₂ and ε when non-zero.
	Constants *Constants `json:"constants,omitempty"`

	// Seed pins the simulation seed (0 is a valid seed).
	Seed int64 `json:"seed"`

	// Drift names the rate adversary ("spread" default).
	Drift string `json:"drift,omitempty"`
	// Delay names the message-delay adversary ("uniform" default).
	Delay string `json:"delay,omitempty"`
	// Attack plants one Byzantine member per cluster (optional).
	Attack *Attack `json:"attack,omitempty"`
	// Faults lists explicit per-node fault injections (optional).
	Faults []Fault `json:"faults,omitempty"`

	// GlobalSkew enables the Appendix C machinery; nil means enabled.
	GlobalSkew *bool `json:"globalSkew,omitempty"`
	// SampleInterval is the metrics sampling period in seconds (0 = T/2).
	SampleInterval float64 `json:"sampleInterval,omitempty"`

	Horizon Horizon `json:"horizon"`
	Track   Track   `json:"track,omitempty"`
}

// Topology names a registered topology family and its size parameter
// (clusters, side length, depth or dimension — whichever the family
// uses).
type Topology struct {
	Name string `json:"name"`
	Size int    `json:"size"`
}

// Clusters sets the cluster geometry: size k and fault budget f
// (k ≥ 3f+1). The zero value defaults to k=4, f=1.
type Clusters struct {
	K int `json:"k"`
	F int `json:"f"`
}

// Physical sets the drift bound ρ, max message delay d and delay
// uncertainty U (seconds). Zero fields default to 1e-3, 1e-3, 1e-4.
type Physical struct {
	Rho         float64 `json:"rho"`
	Delay       float64 `json:"delay"`
	Uncertainty float64 `json:"uncertainty"`
}

// Constants overrides the preset's analysis constants when non-zero
// (µ = c₂·ρ and the contraction margin ε).
type Constants struct {
	C2  float64 `json:"c2,omitempty"`
	Eps float64 `json:"eps,omitempty"`
}

// Attack plants one attacker — the last member — in each of the first
// Clusters clusters (0 = every cluster), all running the named strategy.
type Attack struct {
	Name string `json:"name"`
	// Clusters bounds how many clusters get an attacker; 0 means all.
	Clusters int `json:"clusters,omitempty"`
}

// Fault marks one node faulty: a named Byzantine strategy, a crash time,
// an off-spec clock rate, or any combination.
type Fault struct {
	Node        int     `json:"node"`
	Attack      string  `json:"attack,omitempty"`
	CrashAt     float64 `json:"crashAt,omitempty"`
	OffSpecRate float64 `json:"offSpecRate,omitempty"`
}

// Horizon sets the simulated duration: either absolute seconds or a
// multiple of the derived round length T (exactly one may be non-zero;
// both zero defaults to ftgcs.DefaultHorizon seconds).
type Horizon struct {
	Seconds float64 `json:"seconds,omitempty"`
	Rounds  float64 `json:"rounds,omitempty"`
}

// Track enables optional instrumentation.
type Track struct {
	// Rounds records per-node round boundaries, values and modes.
	Rounds bool `json:"rounds,omitempty"`
	// Clusters records per-cluster clock/FC/SC series.
	Clusters bool `json:"clusters,omitempty"`
}

// Default values made explicit by Normalize.
const (
	DefaultDrift  = "spread"
	DefaultDelay  = "uniform"
	DefaultPreset = "practical"
)

// Resource bounds enforced by Validate. Specs arrive from remote clients
// (ftgcs-serve), so a single request must not be able to allocate an
// arbitrarily large graph or pin a worker on an unbounded horizon.
const (
	// MaxTopologySize bounds the raw family size parameter. This is a
	// sanity check only: the size parameter means different things per
	// family (clusters, side length, depth, dimension), so the real
	// budget is MaxTopologyClusters on the resolved graph.
	MaxTopologySize = 2048
	// MaxTopologyClusters bounds the resolved graph's cluster count (a
	// clique of 2048 clusters is ~2M edges — generous but finite). For
	// families with a registered size estimator (all built-ins: tree is
	// 2^(depth+1)−1, hypercube 2^d, grid/torus size²) the budget is
	// checked *before* the builder runs, so an oversized parameter fails
	// validation instead of exhausting memory; families without an
	// estimator are checked after building.
	MaxTopologyClusters = 2048
	// MaxSimNodes bounds the total simulated node count, clusters × k.
	MaxSimNodes = 1 << 16
	// MaxClusterSize bounds k.
	MaxClusterSize = 1024
	// MaxHorizonSeconds bounds an absolute horizon (simulated seconds).
	MaxHorizonSeconds = 1e6
	// MaxHorizonRounds bounds a round-denominated horizon.
	MaxHorizonRounds = 1e7
)

// Normalize returns a copy with every default made explicit: version,
// cluster geometry, physical constants, adversary and preset names, the
// horizon, and the global-skew flag. Faults are sorted by node (ties by
// attack name) so canonical encodings are order-independent. Normalize is
// idempotent, and normalization is what makes the content hash stable: a
// spec that spells out a default and one that omits it hash identically.
func (s ScenarioSpec) Normalize() ScenarioSpec {
	n := s
	if n.Version == 0 {
		n.Version = Version
	}
	if n.Clusters == (Clusters{}) {
		n.Clusters = Clusters{K: 4, F: 1}
	}
	if n.Physical.Rho == 0 {
		n.Physical.Rho = 1e-3
	}
	if n.Physical.Delay == 0 {
		n.Physical.Delay = 1e-3
	}
	if n.Physical.Uncertainty == 0 {
		n.Physical.Uncertainty = 1e-4
	}
	if n.Preset == "" {
		n.Preset = DefaultPreset
	}
	if n.Constants != nil {
		if *n.Constants == (Constants{}) {
			n.Constants = nil
		} else {
			c := *n.Constants
			n.Constants = &c
		}
	}
	if n.Drift == "" {
		n.Drift = DefaultDrift
	}
	if n.Delay == "" {
		n.Delay = DefaultDelay
	}
	if n.GlobalSkew == nil {
		enabled := true
		n.GlobalSkew = &enabled
	} else {
		v := *n.GlobalSkew
		n.GlobalSkew = &v
	}
	if n.Horizon == (Horizon{}) {
		n.Horizon = Horizon{Seconds: ftgcs.DefaultHorizon}
	}
	if len(n.Faults) > 0 {
		n.Faults = append([]Fault(nil), n.Faults...)
		sort.SliceStable(n.Faults, func(i, j int) bool {
			if n.Faults[i].Node != n.Faults[j].Node {
				return n.Faults[i].Node < n.Faults[j].Node
			}
			return n.Faults[i].Attack < n.Faults[j].Attack
		})
	}
	if n.Attack != nil {
		a := *n.Attack
		n.Attack = &a
	}
	return n
}

// Canonical returns the spec's canonical encoding: normalized, with the
// display name stripped, marshaled with fixed field order (Go struct
// order) and shortest-float numbers. Specs that describe the same
// experiment — regardless of JSON key order, omitted defaults or the
// display name — produce identical canonical bytes.
func (s ScenarioSpec) Canonical() ([]byte, error) {
	n := s.Normalize()
	n.Name = ""
	return json.Marshal(n)
}

// Hash returns the spec's content hash: "sha256:" + hex of the SHA-256 of
// the canonical encoding.
func (s ScenarioSpec) Hash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// Parse decodes a spec from JSON bytes, rejecting unknown fields (a typo
// in a spec file should fail loudly, not silently run the default).
func Parse(data []byte) (ScenarioSpec, error) {
	return Decode(bytes.NewReader(data))
}

// Decode reads one spec from r, rejecting unknown fields.
func Decode(r io.Reader) (ScenarioSpec, error) {
	var s ScenarioSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return ScenarioSpec{}, fmt.Errorf("spec: %w", err)
	}
	return s, nil
}

// Encode writes the spec's canonical encoding followed by a newline.
func (s ScenarioSpec) Encode(w io.Writer) error {
	c, err := s.Canonical()
	if err != nil {
		return err
	}
	if _, err := w.Write(c); err != nil {
		return err
	}
	_, err = w.Write([]byte{'\n'})
	return err
}

// Validate checks the spec against the registry without building a
// system: schema version, name resolution (topology, drift, delay,
// attacks — failures surface the registry's "unknown name" errors, which
// list what is available), cluster geometry, resource bounds, physical
// constants, fault targets and the horizon. A nil registry means
// ftgcs.DefaultRegistry.
func (s ScenarioSpec) Validate(reg *ftgcs.Registry) error {
	_, err := s.validate(reg)
	return err
}

// Resolve validates the spec and returns its resolved topology, for
// callers that validate once and then compile many seed variants
// (CompileWith) without rebuilding the graph each time.
func (s ScenarioSpec) Resolve(reg *ftgcs.Registry) (*ftgcs.Topology, error) {
	return s.validate(reg)
}

// validate is Validate plus the resolved topology, so Compile does not
// have to build the graph a second time.
func (s ScenarioSpec) validate(reg *ftgcs.Registry) (*ftgcs.Topology, error) {
	return s.validateWith(reg, nil)
}

// validateWith is validate with an optionally pre-resolved topology:
// when topo is non-nil (it came from an earlier Resolve of this spec's
// family/size) the graph is not re-built or re-budgeted, only used for
// the checks that need it.
func (s ScenarioSpec) validateWith(reg *ftgcs.Registry, topo *ftgcs.Topology) (*ftgcs.Topology, error) {
	if reg == nil {
		reg = ftgcs.DefaultRegistry
	}
	n := s.Normalize()
	if n.Version != Version {
		return nil, fmt.Errorf("spec: unsupported version %d (current %d)", n.Version, Version)
	}
	if n.Topology.Name == "" {
		return nil, fmt.Errorf("spec: missing topology name")
	}
	if n.Topology.Size < 1 {
		return nil, fmt.Errorf("spec: topology size %d must be ≥ 1", n.Topology.Size)
	}
	if n.Topology.Size > MaxTopologySize {
		return nil, fmt.Errorf("spec: topology size %d exceeds limit %d", n.Topology.Size, MaxTopologySize)
	}
	if n.Clusters.K < 1 || n.Clusters.F < 0 {
		return nil, fmt.Errorf("spec: invalid cluster geometry k=%d f=%d", n.Clusters.K, n.Clusters.F)
	}
	if n.Clusters.K > MaxClusterSize {
		return nil, fmt.Errorf("spec: cluster size k=%d exceeds limit %d", n.Clusters.K, MaxClusterSize)
	}
	if n.Clusters.F > 0 && n.Clusters.K < 3*n.Clusters.F+1 {
		return nil, fmt.Errorf("spec: k=%d < 3f+1=%d", n.Clusters.K, 3*n.Clusters.F+1)
	}
	if n.Horizon.Seconds > MaxHorizonSeconds {
		return nil, fmt.Errorf("spec: horizon %g s exceeds limit %g", n.Horizon.Seconds, float64(MaxHorizonSeconds))
	}
	if n.Horizon.Rounds > MaxHorizonRounds {
		return nil, fmt.Errorf("spec: horizon %g rounds exceeds limit %g", n.Horizon.Rounds, float64(MaxHorizonRounds))
	}
	if topo == nil {
		if est, ok := reg.TopologyClusters(n.Topology.Name, n.Topology.Size); ok && est > MaxTopologyClusters {
			return nil, fmt.Errorf("spec: topology %s(%d) resolves to %d clusters, exceeds limit %d",
				n.Topology.Name, n.Topology.Size, est, MaxTopologyClusters)
		}
		var err error
		topo, err = reg.Topology(n.Topology.Name, n.Topology.Size, n.Seed)
		if err != nil {
			return nil, err
		}
	}
	// Budget the resolved graph whether it was built here or handed in:
	// a caller re-validating against a cached topology (e.g. the same
	// graph paired with a different k) must hit the same limits as the
	// build path.
	if topo.N() > MaxTopologyClusters {
		return nil, fmt.Errorf("spec: topology %s(%d) resolves to %d clusters, exceeds limit %d",
			n.Topology.Name, n.Topology.Size, topo.N(), MaxTopologyClusters)
	}
	if total := topo.N() * n.Clusters.K; total > MaxSimNodes {
		return nil, fmt.Errorf("spec: %d clusters × k=%d is %d simulated nodes, exceeds limit %d",
			topo.N(), n.Clusters.K, total, MaxSimNodes)
	}
	if n.Physical.Rho <= 0 || n.Physical.Delay <= 0 || n.Physical.Uncertainty <= 0 {
		return nil, fmt.Errorf("spec: physical constants must be positive: ρ=%g d=%g U=%g",
			n.Physical.Rho, n.Physical.Delay, n.Physical.Uncertainty)
	}
	if n.Physical.Uncertainty > n.Physical.Delay {
		return nil, fmt.Errorf("spec: uncertainty U=%g exceeds delay d=%g", n.Physical.Uncertainty, n.Physical.Delay)
	}
	if _, err := presetByName(n.Preset); err != nil {
		return nil, err
	}
	if _, err := reg.Drift(n.Drift); err != nil {
		return nil, err
	}
	if _, err := reg.Delay(n.Delay); err != nil {
		return nil, err
	}
	if n.Attack != nil {
		if _, err := reg.Attack(n.Attack.Name); err != nil {
			return nil, err
		}
		if n.Attack.Clusters < 0 {
			return nil, fmt.Errorf("spec: attack clusters %d must be ≥ 0", n.Attack.Clusters)
		}
	}
	nodes := topo.N() * n.Clusters.K
	for _, f := range n.Faults {
		if f.Node < 0 || f.Node >= nodes {
			return nil, fmt.Errorf("spec: fault node %d outside [0,%d)", f.Node, nodes)
		}
		if f.Attack == "" && f.CrashAt == 0 && f.OffSpecRate == 0 {
			return nil, fmt.Errorf("spec: fault on node %d specifies no behavior", f.Node)
		}
		if f.Attack != "" {
			if _, err := reg.Attack(f.Attack); err != nil {
				return nil, err
			}
		}
		if f.CrashAt < 0 {
			return nil, fmt.Errorf("spec: fault node %d crashAt %g must be ≥ 0", f.Node, f.CrashAt)
		}
		if f.OffSpecRate < 0 {
			return nil, fmt.Errorf("spec: fault node %d offSpecRate %g must be ≥ 0", f.Node, f.OffSpecRate)
		}
	}
	if n.Horizon.Seconds != 0 && n.Horizon.Rounds != 0 {
		return nil, fmt.Errorf("spec: horizon sets both seconds (%g) and rounds (%g)", n.Horizon.Seconds, n.Horizon.Rounds)
	}
	if n.Horizon.Seconds < 0 || n.Horizon.Rounds < 0 {
		return nil, fmt.Errorf("spec: negative horizon")
	}
	if n.SampleInterval < 0 {
		return nil, fmt.Errorf("spec: negative sampleInterval")
	}
	return topo, nil
}

func presetByName(name string) (ftgcs.Preset, error) {
	switch name {
	case DefaultPreset:
		return ftgcs.PresetPractical, nil
	case "paper-strict":
		return ftgcs.PresetPaperStrict, nil
	default:
		return 0, fmt.Errorf(`spec: unknown preset %q (have: practical, paper-strict)`, name)
	}
}

// Compile validates the spec and builds the runnable scenario, resolving
// every name through reg (nil means ftgcs.DefaultRegistry). The topology
// is resolved eagerly with the spec's seed — randomized families draw the
// same graph every time the same spec compiles, which the job manager's
// dedup/caching depends on.
func (s ScenarioSpec) Compile(reg *ftgcs.Registry) (*ftgcs.Scenario, error) {
	return s.CompileWith(reg, nil)
}

// CompileWith is Compile with an optionally pre-resolved topology (from
// Resolve). Callers pinning one graph across many seed variants — the
// job manager's replication fan-out — pass it to skip re-building a
// graph per compile; nil behaves exactly like Compile.
func (s ScenarioSpec) CompileWith(reg *ftgcs.Registry, topo *ftgcs.Topology) (*ftgcs.Scenario, error) {
	if reg == nil {
		reg = ftgcs.DefaultRegistry
	}
	topo, err := s.validateWith(reg, topo)
	if err != nil {
		return nil, err
	}
	n := s.Normalize()

	preset, err := presetByName(n.Preset)
	if err != nil {
		return nil, err
	}
	drift, err := reg.Drift(n.Drift)
	if err != nil {
		return nil, err
	}
	delay, err := reg.Delay(n.Delay)
	if err != nil {
		return nil, err
	}

	opts := []ftgcs.Option{
		ftgcs.WithName("%s", n.DisplayName()),
		ftgcs.WithTopology(topo),
		ftgcs.WithClusters(n.Clusters.K, n.Clusters.F),
		ftgcs.WithPhysical(n.Physical.Rho, n.Physical.Delay, n.Physical.Uncertainty),
		ftgcs.WithPreset(preset),
		ftgcs.WithSeed(n.Seed),
		ftgcs.WithDrift(drift),
		ftgcs.WithDelay(delay),
		ftgcs.WithGlobalSkew(*n.GlobalSkew),
		ftgcs.WithSampleInterval(n.SampleInterval),
	}
	if n.Constants != nil {
		opts = append(opts, ftgcs.WithConstants(n.Constants.C2, n.Constants.Eps))
	}
	if n.Attack != nil {
		strat, err := reg.Attack(n.Attack.Name)
		if err != nil {
			return nil, err
		}
		opts = append(opts, ftgcs.WithAttackPerCluster(func() ftgcs.Attack { return strat }, n.Attack.Clusters))
	}
	if len(n.Faults) > 0 {
		faults := make([]ftgcs.FaultSpec, 0, len(n.Faults))
		for _, f := range n.Faults {
			fs := core.FaultSpec{Node: f.Node, CrashAt: f.CrashAt, OffSpecRate: f.OffSpecRate}
			if f.Attack != "" {
				strat, err := reg.Attack(f.Attack)
				if err != nil {
					return nil, err
				}
				fs.Strategy = strat
			}
			faults = append(faults, fs)
		}
		opts = append(opts, ftgcs.WithFaults(faults...))
	}
	if n.Horizon.Rounds > 0 {
		opts = append(opts, ftgcs.WithHorizonRounds(n.Horizon.Rounds))
	} else {
		opts = append(opts, ftgcs.WithHorizon(n.Horizon.Seconds))
	}
	if n.Track.Rounds {
		opts = append(opts, ftgcs.WithRoundTracking())
	}
	if n.Track.Clusters {
		opts = append(opts, ftgcs.WithClusterTracking())
	}
	return ftgcs.NewScenario(opts...), nil
}

// DisplayName returns the label the compiled scenario (and hence the
// result) carries: the explicit Name, or "<topology>-<size>" when the
// spec is unnamed.
func (s ScenarioSpec) DisplayName() string {
	if s.Name != "" {
		return s.Name
	}
	return fmt.Sprintf("%s-%d", s.Topology.Name, s.Topology.Size)
}

// WithSeed returns a copy of the spec with the given seed — the
// replication fan-out uses this to derive per-replicate specs from one
// base spec.
func (s ScenarioSpec) WithSeed(seed int64) ScenarioSpec {
	n := s
	n.Seed = seed
	return n
}
