// Package clockwork implements the clock substrate of the FTGCS paper
// (Bund, Lenzen, Rosenbaum, PODC 2019).
//
// Every node owns a hardware clock H_v(t) = ∫ h_v(τ)dτ whose rate h_v is an
// arbitrary piecewise-constant function with 1 ≤ h_v(t) ≤ 1+ρ (the paper's
// drift envelope, Section 2). On top of it, the node's algorithm controls a
// logical clock
//
//	L_v(t) = ∫ (1 + ϕ·δ_v(τ)) · (1 + µ·γ_v(τ)) · h_v(τ) dτ     (Eq. 2)
//
// where δ_v ≥ 0 amortizes the Lynch–Welch corrections (Algorithm 1, phase 3)
// and γ_v ∈ {0,1} is the GCS fast/slow mode (Algorithm 2).
//
// Because all rates are piecewise constant, clock values are integrated in
// closed form and logical-time targets are inverted exactly — the simulation
// has no time-stepping error.
package clockwork

import (
	"fmt"
	"math"
	"sort"

	"ftgcs/internal/sim"
)

// RateModel describes a piecewise-constant hardware clock rate h(t).
//
// Segment must be idempotent: repeated queries for the same t return the
// same values (models backed by randomness cache their segments). Queries
// may arrive in any order but are typically non-decreasing in t.
type RateModel interface {
	// Segment returns the rate in effect at time t and the end of the
	// constant-rate segment containing t. end > t always holds; end may be
	// +Inf for a terminal segment.
	Segment(t float64) (rate, end float64)
}

// Constant is a fixed-rate hardware clock.
type Constant struct {
	Rate float64
}

// Segment implements RateModel.
func (c Constant) Segment(t float64) (float64, float64) {
	return c.Rate, math.Inf(1)
}

// Alternating switches between Lo and Hi every Period seconds, starting
// with Lo at time Phase. It models the classic skew-building adversary that
// runs a clock at the extremes of the admissible envelope.
type Alternating struct {
	Lo, Hi float64
	Period float64
	// Phase shifts the switching schedule; segment boundaries are at
	// Phase + i*Period.
	Phase float64
}

// Segment implements RateModel.
func (a Alternating) Segment(t float64) (float64, float64) {
	if a.Period <= 0 {
		return a.Lo, math.Inf(1)
	}
	idx := math.Floor((t - a.Phase) / a.Period)
	end := a.Phase + (idx+1)*a.Period
	// Guard against floating-point landing exactly on a boundary.
	if end <= t {
		idx++
		end += a.Period
	}
	if int64(idx)%2 == 0 {
		return a.Lo, end
	}
	return a.Hi, end
}

// Breakpoint is one segment of an explicit rate schedule.
type Breakpoint struct {
	Start float64 // segment start time
	Rate  float64 // rate from Start until the next breakpoint
}

// Schedule is an explicit piecewise-constant rate plan. Before the first
// breakpoint the rate is Initial.
type Schedule struct {
	Initial     float64
	Breakpoints []Breakpoint // must be sorted by Start, strictly increasing
}

// NewSchedule validates and constructs an explicit schedule.
func NewSchedule(initial float64, bps []Breakpoint) (*Schedule, error) {
	for i := 1; i < len(bps); i++ {
		if bps[i].Start <= bps[i-1].Start {
			return nil, fmt.Errorf("clockwork: breakpoints not strictly increasing at %d", i)
		}
	}
	cp := make([]Breakpoint, len(bps))
	copy(cp, bps)
	return &Schedule{Initial: initial, Breakpoints: cp}, nil
}

// Segment implements RateModel.
func (s *Schedule) Segment(t float64) (float64, float64) {
	// Find the last breakpoint with Start <= t.
	i := sort.Search(len(s.Breakpoints), func(i int) bool { return s.Breakpoints[i].Start > t })
	// Breakpoints[i] is the first with Start > t; segment is [i-1, i).
	var rate float64
	if i == 0 {
		rate = s.Initial
	} else {
		rate = s.Breakpoints[i-1].Rate
	}
	end := math.Inf(1)
	if i < len(s.Breakpoints) {
		end = s.Breakpoints[i].Start
	}
	return rate, end
}

// RandomWalk redraws the rate uniformly from [Lo, Hi] every Step seconds.
// Segments are generated lazily and cached, so queries are idempotent.
type RandomWalk struct {
	Lo, Hi float64
	Step   float64
	rng    *sim.RNG
	rates  []float64 // rates[i] applies on [i*Step, (i+1)*Step)
}

// NewRandomWalk constructs a random piecewise-constant rate model.
func NewRandomWalk(lo, hi, step float64, rng *sim.RNG) *RandomWalk {
	if step <= 0 {
		step = 1
	}
	return &RandomWalk{Lo: lo, Hi: hi, Step: step, rng: rng}
}

// Segment implements RateModel.
func (w *RandomWalk) Segment(t float64) (float64, float64) {
	if t < 0 {
		t = 0
	}
	idx := int(math.Floor(t / w.Step))
	for len(w.rates) <= idx {
		w.rates = append(w.rates, w.rng.UniformIn(w.Lo, w.Hi))
	}
	end := float64(idx+1) * w.Step
	if end <= t { // float guard
		idx++
		if len(w.rates) <= idx {
			w.rates = append(w.rates, w.rng.UniformIn(w.Lo, w.Hi))
		}
		end = float64(idx+1) * w.Step
	}
	return w.rates[idx], end
}

// Sinusoid approximates 1 + amp·(1+sin(2πt/Period))/2 by a staircase with
// StepsPerPeriod constant segments. It models slowly wandering oscillator
// drift (e.g. temperature-driven) while staying piecewise constant.
type Sinusoid struct {
	Base           float64 // minimum rate
	Amp            float64 // rate swing; rate ∈ [Base, Base+Amp]
	Period         float64
	StepsPerPeriod int
	Phase          float64
}

// Segment implements RateModel.
func (s Sinusoid) Segment(t float64) (float64, float64) {
	steps := s.StepsPerPeriod
	if steps <= 0 {
		steps = 16
	}
	if s.Period <= 0 {
		return s.Base, math.Inf(1)
	}
	dt := s.Period / float64(steps)
	idx := math.Floor((t - s.Phase) / dt)
	end := s.Phase + (idx+1)*dt
	if end <= t {
		idx++
		end += dt
	}
	mid := s.Phase + (idx+0.5)*dt
	frac := (1 + math.Sin(2*math.Pi*mid/s.Period)) / 2
	return s.Base + s.Amp*frac, end
}

// Validate checks that a model stays within [1, 1+rho] over [0, horizon],
// walking its segments. It is used by tests and scenario builders to ensure
// drift models obey the paper's hardware assumptions.
func Validate(m RateModel, rho, horizon float64) error {
	const eps = 1e-12
	t := 0.0
	for t < horizon {
		rate, end := m.Segment(t)
		if rate < 1-eps || rate > 1+rho+eps {
			return fmt.Errorf("clockwork: rate %v at t=%v outside [1, 1+ρ]=[1, %v]", rate, t, 1+rho)
		}
		if end <= t {
			return fmt.Errorf("clockwork: segment end %v not after t=%v", end, t)
		}
		t = end
	}
	return nil
}
