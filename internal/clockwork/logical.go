package clockwork

import "fmt"

// LogicalClock implements the paper's Equation (2):
//
//	L_v(t) = ∫₀ᵗ (1 + ϕ·δ_v(τ)) · (1 + µ·γ_v(τ)) · h_v(τ) dτ
//
// δ_v(t) ≥ 0 is the amortization control set by ClusterSync (Algorithm 1):
// δ=1 during phases 1–2 and δ = 1 − (1+1/ϕ)·Δ/(τ₃+Δ) during phase 3.
// γ_v(t) ∈ {0,1} is the GCS fast/slow mode set by InterclusterSync
// (Algorithm 2) at round boundaries.
//
// Several logical clocks may share one HardwareClock (a node's main clock
// plus its per-neighbor-cluster observer clocks all run off the same
// oscillator).
type LogicalClock struct {
	hw  *HardwareClock
	phi float64
	mu  float64

	delta float64 // current δ_v
	gamma int     // current γ_v ∈ {0,1}

	anchorT float64 // Newtonian time of the anchor
	anchorL float64 // logical value at the anchor
}

// NewLogicalClock returns a logical clock reading 0 at time 0, in slow mode
// with δ=1 (the Algorithm 1 default outside phase 3 is δ=1; callers that
// want the "nominal" rate (1+ϕ)·h get exactly that).
func NewLogicalClock(hw *HardwareClock, phi, mu float64) *LogicalClock {
	return &LogicalClock{hw: hw, phi: phi, mu: mu, delta: 1}
}

// Reset rewinds the clock to its newly constructed state: value 0 at time
// 0, δ=1, γ=0. The shared HardwareClock is reset separately (several
// logical clocks run off one oscillator).
func (lc *LogicalClock) Reset() {
	lc.delta, lc.gamma = 1, 0
	lc.anchorT, lc.anchorL = 0, 0
}

// multiplier returns (1+ϕδ)(1+µγ), the factor applied to the hardware rate.
func (lc *LogicalClock) multiplier() float64 {
	m := 1 + lc.phi*lc.delta
	if lc.gamma == 1 {
		m *= 1 + lc.mu
	}
	return m
}

// Value returns L(t). Queries must be non-decreasing in t.
func (lc *LogicalClock) Value(t float64) float64 {
	if t <= lc.anchorT {
		return lc.anchorL
	}
	l := walkIntegrate(lc.hw.Model(), lc.anchorT, lc.anchorL, t, lc.multiplier())
	lc.anchorT, lc.anchorL = t, l
	return l
}

// Rate returns the instantaneous logical rate (1+ϕδ)(1+µγ)h(t).
func (lc *LogicalClock) Rate(t float64) float64 {
	return lc.multiplier() * lc.hw.Rate(t)
}

// NominalRate returns h_nom(t) = (1+ϕ)(1+µγ)h(t), the paper's Eq. (3): the
// "hardware" rate the Lynch–Welch layer sees, i.e. the logical rate with
// the amortization control pinned at δ=1.
func (lc *LogicalClock) NominalRate(t float64) float64 {
	m := (1 + lc.phi)
	if lc.gamma == 1 {
		m *= 1 + lc.mu
	}
	return m * lc.hw.Rate(t)
}

// SetDelta changes δ_v at time t. Values are clamped to ≥ 0 (the paper's
// Lemma B.4 guarantees δ ∈ [0, 2/(1−ϕ)] in proper executions; clamping
// protects against improper ones). The clock anchor is advanced to t first
// so the change applies only going forward.
func (lc *LogicalClock) SetDelta(t, delta float64) {
	lc.Value(t)
	if delta < 0 {
		delta = 0
	}
	lc.delta = delta
}

// SetGamma changes the fast/slow mode γ_v ∈ {0,1} at time t.
func (lc *LogicalClock) SetGamma(t float64, gamma int) {
	lc.Value(t)
	if gamma != 0 {
		gamma = 1
	}
	lc.gamma = gamma
}

// Jump discontinuously shifts the clock value by delta at time t. The
// algorithm itself never jumps (its corrections are amortized precisely to
// keep rates bounded); this exists to inject *transient faults* for the
// self-stabilization experiments — the paper (Appendix A) notes the GCS
// layer re-establishes its skew bounds from any state in O(S/µ) time.
func (lc *LogicalClock) Jump(t, delta float64) {
	lc.Value(t)
	lc.anchorL += delta
}

// Delta returns the current δ_v.
func (lc *LogicalClock) Delta() float64 { return lc.delta }

// Gamma returns the current γ_v.
func (lc *LogicalClock) Gamma() int { return lc.gamma }

// Phi returns the ϕ parameter.
func (lc *LogicalClock) Phi() float64 { return lc.phi }

// Mu returns the µ parameter.
func (lc *LogicalClock) Mu() float64 { return lc.mu }

// TimeWhen returns the Newtonian time ≥ from at which L reaches target,
// assuming δ and γ stay at their current values (hardware rate changes are
// walked exactly). This is how "at-time L do …" statements of Algorithm 1
// are scheduled; the scheduler re-invokes it whenever δ or γ change before
// the target is reached.
func (lc *LogicalClock) TimeWhen(from, target float64) (float64, error) {
	lFrom := lc.Value(from)
	t, err := walkInvert(lc.hw.Model(), from, lFrom, target, lc.multiplier())
	if err != nil {
		return 0, fmt.Errorf("logical clock inversion: %w", err)
	}
	return t, nil
}

// Envelope reports the minimum and maximum possible logical rates given the
// admissible ranges of h (∈[1,1+ρ]), δ (∈[0,2/(1−ϕ)]) and γ (∈{0,1}):
// the paper's ϑ_max bound (Eq. 6): (1 + 2ϕ/(1−ϕ))(1+µ)(1+ρ).
func Envelope(phi, mu, rho float64) (lo, hi float64) {
	lo = 1 // δ=0, γ=0, h=1
	hi = (1 + 2*phi/(1-phi)) * (1 + mu) * (1 + rho)
	return lo, hi
}

// ErrNonMonotone is reserved for future strict-mode monotonicity checks.
var ErrNonMonotone = fmt.Errorf("clockwork: non-monotone clock query")
