package clockwork

import (
	"fmt"
	"math"
)

// HardwareClock integrates a RateModel into the hardware clock value
// H_v(t) = ∫₀ᵗ h_v(τ)dτ (paper Section 2, "Timing and clocks"). Hardware
// clocks are read-only for the algorithm: nodes use them exclusively to
// measure elapsed local time.
//
// The clock keeps a (time, value) anchor and advances it lazily; queries
// must be non-decreasing in time (which holds in a discrete-event
// simulation, where all reads happen at the engine's current time).
type HardwareClock struct {
	model RateModel

	anchorT float64 // Newtonian time of the anchor
	anchorH float64 // hardware value at the anchor
}

// NewHardwareClock returns a hardware clock that reads 0 at time 0.
func NewHardwareClock(model RateModel) *HardwareClock {
	return &HardwareClock{model: model}
}

// Reset rewinds the clock to read 0 at time 0 under a new rate model.
// Stateful models (RandomWalk caches rates drawn from its RNG) must be
// rebuilt from a freshly derived stream rather than reused, which is why
// the model is a parameter instead of being retained.
func (c *HardwareClock) Reset(model RateModel) {
	c.model = model
	c.anchorT, c.anchorH = 0, 0
}

// Read returns H(t). t must be ≥ the largest time previously passed to Read
// or Rate (monotone queries); violating this indicates a scheduling bug and
// returns the anchored value without rewinding.
func (c *HardwareClock) Read(t float64) float64 {
	if t <= c.anchorT {
		return c.anchorH
	}
	h := walkIntegrate(c.model, c.anchorT, c.anchorH, t, 1)
	c.anchorT, c.anchorH = t, h
	return h
}

// Rate returns the instantaneous hardware rate h(t).
func (c *HardwareClock) Rate(t float64) float64 {
	rate, _ := c.model.Segment(t)
	return rate
}

// Model exposes the underlying rate model (used by logical clocks sharing
// this hardware clock).
func (c *HardwareClock) Model() RateModel { return c.model }

// TimeWhen returns the Newtonian time ≥ from at which H reaches target
// (exact inversion across rate segments). Used by components that schedule
// on scaled hardware time, such as the Appendix C max-estimate machinery.
func (c *HardwareClock) TimeWhen(from, target float64) (float64, error) {
	hFrom := c.Read(from)
	return walkInvert(c.model, from, hFrom, target, 1)
}

// walkIntegrate computes value + ∫ mult·h(τ)dτ from t0 to t1 by walking the
// model's constant-rate segments. mult scales the hardware rate (logical
// clocks pass their multiplier; hardware clocks pass 1).
func walkIntegrate(m RateModel, t0, v0, t1, mult float64) float64 {
	t, v := t0, v0
	for t < t1 {
		rate, end := m.Segment(t)
		stop := math.Min(end, t1)
		v += mult * rate * (stop - t)
		t = stop
	}
	return v
}

// walkInvert returns the Newtonian time t ≥ t0 at which
// v0 + ∫_{t0}^{t} mult·h(τ)dτ reaches target, walking segments. Requires
// mult·h ≥ some positive bound (true here: h ≥ 1, mult ≥ 1), so the walk
// terminates. If target ≤ v0 it returns t0.
func walkInvert(m RateModel, t0, v0, target, mult float64) (float64, error) {
	if target <= v0 {
		return t0, nil
	}
	if mult <= 0 {
		return 0, fmt.Errorf("clockwork: non-positive rate multiplier %v", mult)
	}
	t, v := t0, v0
	for {
		rate, end := m.Segment(t)
		r := mult * rate
		if r <= 0 {
			return 0, fmt.Errorf("clockwork: non-positive effective rate %v at t=%v", r, t)
		}
		if math.IsInf(end, 1) {
			return t + (target-v)/r, nil
		}
		segGain := r * (end - t)
		if v+segGain >= target {
			return t + (target-v)/r, nil
		}
		v += segGain
		t = end
	}
}
