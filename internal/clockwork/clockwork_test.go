package clockwork

import (
	"math"
	"testing"
	"testing/quick"

	"ftgcs/internal/sim"
)

const tol = 1e-9

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestConstantModel(t *testing.T) {
	m := Constant{Rate: 1.5}
	rate, end := m.Segment(3)
	if rate != 1.5 || !math.IsInf(end, 1) {
		t.Errorf("Segment = (%v, %v), want (1.5, +Inf)", rate, end)
	}
}

func TestAlternatingModel(t *testing.T) {
	m := Alternating{Lo: 1, Hi: 1.001, Period: 10}
	tests := []struct {
		t        float64
		wantRate float64
		wantEnd  float64
	}{
		{0, 1, 10},
		{5, 1, 10},
		{10, 1.001, 20},
		{19.999, 1.001, 20},
		{20, 1, 30},
		{35, 1.001, 40},
	}
	for _, tc := range tests {
		rate, end := m.Segment(tc.t)
		if !almostEqual(rate, tc.wantRate, tol) || !almostEqual(end, tc.wantEnd, 1e-6) {
			t.Errorf("Segment(%v) = (%v, %v), want (%v, %v)", tc.t, rate, end, tc.wantRate, tc.wantEnd)
		}
	}
}

func TestAlternatingWithPhase(t *testing.T) {
	m := Alternating{Lo: 1, Hi: 2, Period: 4, Phase: 1}
	rate, end := m.Segment(0)
	// t=0 is before Phase: idx = floor(-1/4) = -1, odd → Hi, end = 1.
	if rate != 2 || !almostEqual(end, 1, tol) {
		t.Errorf("Segment(0) = (%v,%v), want (2,1)", rate, end)
	}
	rate, end = m.Segment(1)
	if rate != 1 || !almostEqual(end, 5, tol) {
		t.Errorf("Segment(1) = (%v,%v), want (1,5)", rate, end)
	}
}

func TestAlternatingDegeneratePeriod(t *testing.T) {
	m := Alternating{Lo: 1.25, Hi: 2, Period: 0}
	rate, end := m.Segment(7)
	if rate != 1.25 || !math.IsInf(end, 1) {
		t.Errorf("degenerate period: got (%v,%v)", rate, end)
	}
}

func TestScheduleModel(t *testing.T) {
	s, err := NewSchedule(1.0, []Breakpoint{{Start: 10, Rate: 1.5}, {Start: 20, Rate: 1.2}})
	if err != nil {
		t.Fatalf("NewSchedule: %v", err)
	}
	tests := []struct {
		t        float64
		wantRate float64
		wantEnd  float64
	}{
		{0, 1.0, 10},
		{9.99, 1.0, 10},
		{10, 1.5, 20},
		{15, 1.5, 20},
		{20, 1.2, math.Inf(1)},
		{1e9, 1.2, math.Inf(1)},
	}
	for _, tc := range tests {
		rate, end := s.Segment(tc.t)
		if rate != tc.wantRate || end != tc.wantEnd {
			t.Errorf("Segment(%v) = (%v, %v), want (%v, %v)", tc.t, rate, end, tc.wantRate, tc.wantEnd)
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := NewSchedule(1, []Breakpoint{{Start: 5, Rate: 1}, {Start: 5, Rate: 2}}); err == nil {
		t.Error("non-increasing breakpoints should fail")
	}
	if _, err := NewSchedule(1, []Breakpoint{{Start: 9, Rate: 1}, {Start: 5, Rate: 2}}); err == nil {
		t.Error("decreasing breakpoints should fail")
	}
}

func TestRandomWalkIdempotent(t *testing.T) {
	w := NewRandomWalk(1, 1.0001, 5, sim.NewRNG(1, 1))
	r1, e1 := w.Segment(12)
	r2, e2 := w.Segment(12)
	if r1 != r2 || e1 != e2 {
		t.Error("Segment must be idempotent")
	}
	// Earlier query after later query must return the cached earlier value.
	rEarly, _ := w.Segment(2)
	rEarly2, _ := w.Segment(2)
	if rEarly != rEarly2 {
		t.Error("backtracking query changed value")
	}
	if err := Validate(w, 1e-4, 1000); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSinusoidWithinEnvelope(t *testing.T) {
	m := Sinusoid{Base: 1, Amp: 1e-4, Period: 100, StepsPerPeriod: 32}
	if err := Validate(m, 1e-4, 500); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestHardwareClockConstant(t *testing.T) {
	c := NewHardwareClock(Constant{Rate: 1.25})
	if got := c.Read(4); !almostEqual(got, 5, tol) {
		t.Errorf("Read(4) = %v, want 5", got)
	}
	if got := c.Read(8); !almostEqual(got, 10, tol) {
		t.Errorf("Read(8) = %v, want 10", got)
	}
	if got := c.Rate(100); got != 1.25 {
		t.Errorf("Rate = %v, want 1.25", got)
	}
}

func TestHardwareClockCrossesSegments(t *testing.T) {
	s, _ := NewSchedule(1.0, []Breakpoint{{Start: 10, Rate: 2.0}})
	c := NewHardwareClock(s)
	// ∫₀²⁰ = 10·1 + 10·2 = 30, in one query crossing the breakpoint.
	if got := c.Read(20); !almostEqual(got, 30, tol) {
		t.Errorf("Read(20) = %v, want 30", got)
	}
}

func TestHardwareClockIncrementalEqualsOneShot(t *testing.T) {
	mk := func() *HardwareClock {
		return NewHardwareClock(Alternating{Lo: 1, Hi: 1.001, Period: 7})
	}
	one := mk()
	inc := mk()
	var last float64
	for _, tt := range []float64{1, 3, 7, 7.5, 14, 21.2, 100} {
		last = inc.Read(tt)
	}
	if got := one.Read(100); !almostEqual(got, last, tol) {
		t.Errorf("one-shot %v != incremental %v", got, last)
	}
}

func TestLogicalClockModesAffectRate(t *testing.T) {
	phi, mu := 0.01, 0.02
	hw := NewHardwareClock(Constant{Rate: 1})
	lc := NewLogicalClock(hw, phi, mu)
	// δ=1, γ=0: rate = (1+ϕ).
	if got := lc.Rate(0); !almostEqual(got, 1+phi, tol) {
		t.Errorf("initial rate = %v, want %v", got, 1+phi)
	}
	if got := lc.Value(10); !almostEqual(got, 10*(1+phi), tol) {
		t.Errorf("Value(10) = %v, want %v", got, 10*(1+phi))
	}
	lc.SetGamma(10, 1)
	if got := lc.Rate(10); !almostEqual(got, (1+phi)*(1+mu), tol) {
		t.Errorf("fast rate = %v, want %v", got, (1+phi)*(1+mu))
	}
	if got := lc.Value(20); !almostEqual(got, 10*(1+phi)+10*(1+phi)*(1+mu), tol) {
		t.Errorf("Value(20) = %v", got)
	}
	lc.SetDelta(20, 0)
	lc.SetGamma(20, 0)
	if got := lc.Rate(20); !almostEqual(got, 1, tol) {
		t.Errorf("slowest rate = %v, want 1", got)
	}
}

func TestLogicalClockDeltaClamped(t *testing.T) {
	hw := NewHardwareClock(Constant{Rate: 1})
	lc := NewLogicalClock(hw, 0.5, 0)
	lc.SetDelta(0, -3)
	if lc.Delta() != 0 {
		t.Errorf("negative delta should clamp to 0, got %v", lc.Delta())
	}
}

func TestLogicalClockGammaNormalized(t *testing.T) {
	hw := NewHardwareClock(Constant{Rate: 1})
	lc := NewLogicalClock(hw, 0.1, 0.1)
	lc.SetGamma(0, 5)
	if lc.Gamma() != 1 {
		t.Errorf("gamma should normalize to 1, got %d", lc.Gamma())
	}
}

func TestTimeWhenConstantRate(t *testing.T) {
	hw := NewHardwareClock(Constant{Rate: 1})
	lc := NewLogicalClock(hw, 0, 0) // rate exactly 1
	got, err := lc.TimeWhen(0, 42)
	if err != nil {
		t.Fatalf("TimeWhen: %v", err)
	}
	if !almostEqual(got, 42, tol) {
		t.Errorf("TimeWhen = %v, want 42", got)
	}
}

func TestTimeWhenCrossesHardwareSegments(t *testing.T) {
	s, _ := NewSchedule(1.0, []Breakpoint{{Start: 10, Rate: 2.0}})
	hw := NewHardwareClock(s)
	lc := NewLogicalClock(hw, 0, 0)
	// L(t) = t for t ≤ 10, then 10 + 2(t−10). Target 30 → t = 20.
	got, err := lc.TimeWhen(0, 30)
	if err != nil {
		t.Fatalf("TimeWhen: %v", err)
	}
	if !almostEqual(got, 20, tol) {
		t.Errorf("TimeWhen = %v, want 20", got)
	}
}

func TestTimeWhenPastTargetReturnsFrom(t *testing.T) {
	hw := NewHardwareClock(Constant{Rate: 1})
	lc := NewLogicalClock(hw, 0, 0)
	lc.Value(50)
	got, err := lc.TimeWhen(50, 10)
	if err != nil {
		t.Fatalf("TimeWhen: %v", err)
	}
	if got != 50 {
		t.Errorf("past target should return from=50, got %v", got)
	}
}

func TestTimeWhenInverseOfValue(t *testing.T) {
	// Property: Value(TimeWhen(target)) == target for any admissible config.
	f := func(rawRate, rawTarget uint16) bool {
		rho := 1e-3
		rate := 1 + float64(rawRate)/65535*rho
		target := float64(rawTarget) / 16
		hw := NewHardwareClock(Alternating{Lo: 1, Hi: rate, Period: 3.7})
		lc := NewLogicalClock(hw, 0.01, 0.005)
		tw, err := lc.TimeWhen(0, target)
		if err != nil {
			return false
		}
		// Fresh clock pair for the check (Value mutates anchors).
		hw2 := NewHardwareClock(Alternating{Lo: 1, Hi: rate, Period: 3.7})
		lc2 := NewLogicalClock(hw2, 0.01, 0.005)
		return almostEqual(lc2.Value(tw), target, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLogicalClockSharedHardware(t *testing.T) {
	// Two logical clocks sharing one hardware clock advance consistently.
	hw := NewHardwareClock(Constant{Rate: 1.001})
	a := NewLogicalClock(hw, 0.01, 0.02)
	b := NewLogicalClock(hw, 0.01, 0.02)
	b.SetGamma(0, 1)
	va := a.Value(100)
	vb := b.Value(100)
	if vb <= va {
		t.Errorf("fast clock (%v) should lead slow clock (%v)", vb, va)
	}
	ratio := vb / va
	if !almostEqual(ratio, 1.02, 1e-9) {
		t.Errorf("rate ratio = %v, want 1.02", ratio)
	}
}

func TestEnvelope(t *testing.T) {
	lo, hi := Envelope(0.01, 0.02, 0.001)
	if lo != 1 {
		t.Errorf("lo = %v, want 1", lo)
	}
	want := (1 + 2*0.01/0.99) * 1.02 * 1.001
	if !almostEqual(hi, want, tol) {
		t.Errorf("hi = %v, want %v", hi, want)
	}
}

func TestNominalRate(t *testing.T) {
	hw := NewHardwareClock(Constant{Rate: 1.0005})
	lc := NewLogicalClock(hw, 0.01, 0.02)
	lc.SetDelta(0, 0) // nominal rate must ignore δ
	want := 1.01 * 1.0005
	if got := lc.NominalRate(0); !almostEqual(got, want, tol) {
		t.Errorf("NominalRate = %v, want %v", got, want)
	}
	lc.SetGamma(0, 1)
	want *= 1.02
	if got := lc.NominalRate(0); !almostEqual(got, want, tol) {
		t.Errorf("fast NominalRate = %v, want %v", got, want)
	}
}

func TestMonotonicityProperty(t *testing.T) {
	// Property: logical clock values are non-decreasing along any
	// non-decreasing query sequence, under random mode flips.
	f := func(steps []uint8) bool {
		hw := NewHardwareClock(Alternating{Lo: 1, Hi: 1.0001, Period: 2.3})
		lc := NewLogicalClock(hw, 0.02, 0.01)
		t0, prev := 0.0, 0.0
		for i, s := range steps {
			t0 += float64(s) / 32
			switch i % 3 {
			case 0:
				lc.SetGamma(t0, i%2)
			case 1:
				lc.SetDelta(t0, float64(s)/256)
			}
			v := lc.Value(t0)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesOutOfEnvelope(t *testing.T) {
	if err := Validate(Constant{Rate: 1.5}, 1e-4, 10); err == nil {
		t.Error("rate 1.5 with ρ=1e-4 should fail validation")
	}
	if err := Validate(Constant{Rate: 0.5}, 1e-4, 10); err == nil {
		t.Error("rate below 1 should fail validation")
	}
}

func BenchmarkLogicalValue(b *testing.B) {
	hw := NewHardwareClock(Alternating{Lo: 1, Hi: 1.0001, Period: 0.5})
	lc := NewLogicalClock(hw, 0.01, 0.005)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lc.Value(float64(i) * 0.001)
	}
}
