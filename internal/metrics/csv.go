package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV renders the named series (all of them when names is empty) as a
// single CSV with one row per distinct sample time and one column per
// series; cells are empty where a series has no sample at that time.
// Suitable for plotting the skew traces recorded by a run.
func (r *Recorder) WriteCSV(w io.Writer, names ...string) error {
	if len(names) == 0 {
		names = r.Names()
	}
	series := make([]*Series, 0, len(names))
	for _, n := range names {
		s := r.Series(n)
		if s == nil {
			return fmt.Errorf("metrics: unknown series %q", n)
		}
		series = append(series, s)
	}

	// Collect the union of sample times.
	timeSet := make(map[float64]struct{})
	for _, s := range series {
		for _, t := range s.Times {
			timeSet[t] = struct{}{}
		}
	}
	times := make([]float64, 0, len(timeSet))
	for t := range timeSet {
		times = append(times, t)
	}
	sort.Float64s(times)

	// Index each series by time (later samples win on exact duplicates).
	indexes := make([]map[float64]float64, len(series))
	for i, s := range series {
		m := make(map[float64]float64, len(s.Times))
		for j, t := range s.Times {
			m[t] = s.Values[j]
		}
		indexes[i] = m
	}

	cw := csv.NewWriter(w)
	header := append([]string{"time"}, names...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, t := range times {
		row[0] = strconv.FormatFloat(t, 'g', -1, 64)
		for i := range series {
			if v, ok := indexes[i][t]; ok {
				row[i+1] = strconv.FormatFloat(v, 'g', -1, 64)
			} else {
				row[i+1] = ""
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
