package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeriesStats(t *testing.T) {
	var s Series
	for i, v := range []float64{3, 1, 4, 1, 5} {
		s.Append(float64(i), v)
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Max() != 5 || s.Min() != 1 {
		t.Errorf("Max/Min = %v/%v", s.Max(), s.Min())
	}
	if got := s.Mean(); math.Abs(got-2.8) > 1e-12 {
		t.Errorf("Mean = %v, want 2.8", got)
	}
	if s.Final() != 5 {
		t.Errorf("Final = %v", s.Final())
	}
}

func TestEmptySeries(t *testing.T) {
	var s Series
	if !math.IsInf(s.Max(), -1) || !math.IsInf(s.Min(), 1) {
		t.Error("empty Max/Min should be ∓Inf")
	}
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Final()) || !math.IsNaN(s.Quantile(0.5)) {
		t.Error("empty Mean/Final/Quantile should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Append(float64(i), float64(i))
	}
	tests := []struct{ q, want float64 }{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.25, 25.75}, {0.99, 99.01},
	}
	for _, tc := range tests {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestMaxAfter(t *testing.T) {
	var s Series
	s.Append(0, 100) // startup transient
	s.Append(10, 5)
	s.Append(20, 7)
	if got := s.MaxAfter(5); got != 7 {
		t.Errorf("MaxAfter(5) = %v, want 7", got)
	}
	if got := s.MaxAfter(50); !math.IsInf(got, -1) {
		t.Errorf("MaxAfter past end = %v, want -Inf", got)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Observe("a", 0, 1)
	r.Observe("b", 0, 2)
	r.Observe("a", 1, 3)
	if got := r.Max("a"); got != 3 {
		t.Errorf("Max(a) = %v", got)
	}
	if got := r.Max("missing"); !math.IsInf(got, -1) {
		t.Errorf("Max(missing) = %v, want -Inf", got)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	if r.Series("a").Len() != 2 {
		t.Error("series a should have 2 samples")
	}
	if r.Series("nope") != nil {
		t.Error("missing series should be nil")
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x+3
	a, b, r2, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-2) > 1e-12 || math.Abs(b-3) > 1e-12 || math.Abs(r2-1) > 1e-12 {
		t.Errorf("fit = (%v, %v, %v), want (2, 3, 1)", a, b, r2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, _, _, err := FitLinear([]float64{1}, []float64{2}); err == nil {
		t.Error("single point should fail")
	}
	if _, _, _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, _, err := FitLinear([]float64{3, 3}, []float64{1, 2}); err == nil {
		t.Error("degenerate x should fail")
	}
}

func TestFitLogarithm(t *testing.T) {
	// y = 4·log₂(x) + 1.
	xs := []float64{2, 4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 4*math.Log2(x) + 1
	}
	a, b, r2, err := FitLogarithm(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-4) > 1e-9 || math.Abs(b-1) > 1e-9 || r2 < 0.999 {
		t.Errorf("fit = (%v, %v, %v)", a, b, r2)
	}
	if _, _, _, err := FitLogarithm([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("x=0 should fail")
	}
}

func TestFitGeometricDecay(t *testing.T) {
	// e(r+1) = 0.7·e(r) + 0.3 from e=10.
	seq := []float64{10}
	for i := 0; i < 20; i++ {
		seq = append(seq, 0.7*seq[len(seq)-1]+0.3)
	}
	alpha, beta, err := FitGeometricDecay(seq)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha-0.7) > 1e-9 || math.Abs(beta-0.3) > 1e-9 {
		t.Errorf("fit = (%v, %v), want (0.7, 0.3)", alpha, beta)
	}
	if _, _, err := FitGeometricDecay([]float64{1, 2}); err == nil {
		t.Error("too-short sequence should fail")
	}
}

func TestGrowthExponent(t *testing.T) {
	// Linear data → p ≈ 1; logarithmic data → p well below 1.
	ds := []float64{2, 4, 8, 16, 32, 64}
	linear := make([]float64, len(ds))
	logarithmic := make([]float64, len(ds))
	for i, d := range ds {
		linear[i] = 3 * d
		logarithmic[i] = 5 * math.Log2(d)
	}
	pLin, err := GrowthExponent(ds, linear)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pLin-1) > 0.01 {
		t.Errorf("linear exponent = %v, want ≈ 1", pLin)
	}
	pLog, err := GrowthExponent(ds, logarithmic)
	if err != nil {
		t.Fatal(err)
	}
	if pLog > 0.6 {
		t.Errorf("log exponent = %v, want well below linear", pLog)
	}
	if _, err := GrowthExponent([]float64{1, -1}, []float64{1, 1}); err == nil {
		t.Error("negative sample should fail")
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Std()) {
		t.Error("empty Welford should be NaN")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Sample std of this classic dataset: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(w.Std()-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", w.Std(), want)
	}
}

func TestWelfordMatchesDirectComputation(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, r := range raw {
			w.Add(float64(r))
			sum += float64(r)
		}
		mean := sum / float64(len(raw))
		return math.Abs(w.Mean()-mean) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkObserve(b *testing.B) {
	r := NewRecorder()
	for i := 0; i < b.N; i++ {
		r.Observe("bench", float64(i), float64(i%100))
	}
}
