package metrics

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Observe("a", 0, 1)
	r.Observe("a", 1, 2)
	r.Observe("b", 1, 10)
	r.Observe("b", 2, 20)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(rows) != 4 { // header + t=0,1,2
		t.Fatalf("rows = %d, want 4: %v", len(rows), rows)
	}
	if strings.Join(rows[0], ",") != "time,a,b" {
		t.Errorf("header = %v", rows[0])
	}
	// t=0: a=1, b empty.
	if rows[1][1] != "1" || rows[1][2] != "" {
		t.Errorf("row t=0: %v", rows[1])
	}
	// t=1: both present.
	if rows[2][1] != "2" || rows[2][2] != "10" {
		t.Errorf("row t=1: %v", rows[2])
	}
	// t=2: only b.
	if rows[3][1] != "" || rows[3][2] != "20" {
		t.Errorf("row t=2: %v", rows[3])
	}
}

func TestWriteCSVSelectedSeries(t *testing.T) {
	r := NewRecorder()
	r.Observe("a", 0, 1)
	r.Observe("b", 0, 2)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf, "b"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "time,b") {
		t.Errorf("selected header: %q", buf.String())
	}
	if err := r.WriteCSV(&buf, "missing"); err == nil {
		t.Error("unknown series accepted")
	}
}

func TestWriteCSVEmptyRecorder(t *testing.T) {
	r := NewRecorder()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("empty recorder: %v", err)
	}
	if strings.TrimSpace(buf.String()) != "time" {
		t.Errorf("empty output: %q", buf.String())
	}
}
