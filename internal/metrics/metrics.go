// Package metrics records time series produced by simulation runs and
// provides the statistics the experiment harness reports: maxima, means,
// quantiles, and the regression fits used to check the paper's scaling
// claims (logarithmic local skew in D, geometric convergence of the
// intra-cluster error, linear scaling in ρd+U).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Series is an append-only time series.
type Series struct {
	Name   string
	Times  []float64
	Values []float64
}

// Append adds a sample. Times should be non-decreasing.
func (s *Series) Append(t, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Clone returns a deep copy sharing no backing arrays with the receiver.
// Consumers that keep a series beyond the producing run — result caches,
// sweep observers on reusable systems — must clone: Recorder.Reset
// truncates the original's arrays in place for the next run.
func (s *Series) Clone() *Series {
	return &Series{
		Name:   s.Name,
		Times:  append([]float64(nil), s.Times...),
		Values: append([]float64(nil), s.Values...),
	}
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// Max returns the maximum value (−Inf when empty).
func (s *Series) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.Values {
		max = math.Max(max, v)
	}
	return max
}

// Min returns the minimum value (+Inf when empty).
func (s *Series) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.Values {
		min = math.Min(min, v)
	}
	return min
}

// Mean returns the arithmetic mean (NaN when empty).
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Final returns the last value (NaN when empty).
func (s *Series) Final() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	return s.Values[len(s.Values)-1]
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation over
// the sorted values; NaN when empty.
func (s *Series) Quantile(q float64) float64 {
	n := len(s.Values)
	if n == 0 {
		return math.NaN()
	}
	sorted := make([]float64, n)
	copy(sorted, s.Values)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// MaxAfter returns the maximum over samples with t ≥ start; −Inf when none.
// Used to exclude transient start-up phases from steady-state claims.
func (s *Series) MaxAfter(start float64) float64 {
	max := math.Inf(-1)
	for i, t := range s.Times {
		if t >= start {
			max = math.Max(max, s.Values[i])
		}
	}
	return max
}

// Recorder is a bag of named series.
type Recorder struct {
	series map[string]*Series
	order  []string
	// reserve holds per-name capacity hints (Reserve): a series is still
	// created lazily on its first Observe — presence semantics are
	// unchanged — but it is born with its full expected capacity, so a
	// run whose sample count is known up front appends without a single
	// growth reallocation.
	reserve map[string]int
	// pool holds series parked by Reset, keyed by name: absent from the
	// recorder (Names/Series behave exactly as on a fresh recorder) but
	// keeping their backing arrays, which the next Observe of the same
	// name adopts instead of allocating.
	pool map[string]*Series
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Reserve registers a capacity hint for the named series: when (if) the
// series is created by Observe, its Times/Values are preallocated to hold
// n samples. Reserving never creates the series — a reserved name that is
// never observed stays absent, exactly as before — and reserving an
// already-created series is a no-op. Callers that know the sample count
// at build time (horizon / sampleInterval) use this to keep the recording
// hot path allocation-free.
func (r *Recorder) Reserve(name string, n int) {
	if n <= 0 || r.series[name] != nil {
		return
	}
	if r.reserve == nil {
		r.reserve = make(map[string]int)
	}
	r.reserve[name] = n
}

// Observe appends a sample to the named series, creating it if needed. A
// series parked by Reset under the same name is revived with its backing
// arrays intact instead of being reallocated.
func (r *Recorder) Observe(name string, t, v float64) {
	s, ok := r.series[name]
	if !ok {
		if ps := r.pool[name]; ps != nil {
			s = ps
			delete(r.pool, name)
		} else {
			s = &Series{Name: name}
			if n := r.reserve[name]; n > 0 {
				s.Times = make([]float64, 0, n)
				s.Values = make([]float64, 0, n)
			}
		}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	s.Append(t, v)
}

// Reset empties the recorder for a fresh run while keeping the recorded
// series' backing arrays. Observable semantics match a newly constructed
// recorder exactly — Names is empty and every Series lookup returns nil
// until the name is observed again; a series that existed before the
// reset but is never re-observed stays absent (presence is load-bearing:
// Summarize and the CSV/JSON exporters key off it). Reserve hints
// persist. Callers holding Series pointers across a Reset see their
// arrays truncated in place — Clone before resetting to keep a run's
// data.
func (r *Recorder) Reset() {
	if len(r.series) > 0 && r.pool == nil {
		r.pool = make(map[string]*Series, len(r.series))
	}
	for name, s := range r.series {
		s.Times = s.Times[:0]
		s.Values = s.Values[:0]
		r.pool[name] = s
		delete(r.series, name)
	}
	r.order = r.order[:0]
}

// Series returns the named series, or nil.
func (r *Recorder) Series(name string) *Series { return r.series[name] }

// Names returns the series names in creation order.
func (r *Recorder) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Max is shorthand for Series(name).Max(); −Inf when the series is absent.
func (r *Recorder) Max(name string) float64 {
	if s := r.series[name]; s != nil {
		return s.Max()
	}
	return math.Inf(-1)
}

// --- Regression helpers ---

// FitLinear returns the least-squares fit y = a·x + b and the coefficient
// of determination R².
func FitLinear(xs, ys []float64) (a, b, r2 float64, err error) {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0, 0, 0, fmt.Errorf("metrics: need ≥ 2 paired samples, have %d/%d", len(xs), len(ys))
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, fmt.Errorf("metrics: degenerate x values")
	}
	a = sxy / sxx
	b = my - a*mx
	if syy == 0 {
		r2 = 1
	} else {
		r2 = sxy * sxy / (sxx * syy)
	}
	return a, b, r2, nil
}

// FitLogarithm fits y = a·log₂(x) + b; used for the E1 claim that local
// skew grows logarithmically in the diameter.
func FitLogarithm(xs, ys []float64) (a, b, r2 float64, err error) {
	lx := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return 0, 0, 0, fmt.Errorf("metrics: non-positive x for log fit: %v", x)
		}
		lx[i] = math.Log2(x)
	}
	return FitLinear(lx, ys)
}

// FitGeometricDecay estimates the contraction factor α of a sequence
// e(r+1) ≈ α·e(r) + β by least squares on consecutive pairs. It returns
// α̂ and β̂. Used in E3 to compare the measured pulse-diameter convergence
// against the paper's Eq. (9)/(12).
func FitGeometricDecay(seq []float64) (alpha, beta float64, err error) {
	if len(seq) < 3 {
		return 0, 0, fmt.Errorf("metrics: need ≥ 3 values, have %d", len(seq))
	}
	xs := seq[:len(seq)-1]
	ys := seq[1:]
	alpha, beta, _, err = FitLinear(xs, ys)
	return alpha, beta, err
}

// GrowthExponent fits y = c·x^p (power law) via log-log regression and
// returns p. Distinguishes linear (p≈1) from logarithmic (p≈0…0.3) growth
// in the D-sweep experiments.
func GrowthExponent(xs, ys []float64) (p float64, err error) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, fmt.Errorf("metrics: non-positive sample for power fit")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	p, _, _, err = FitLinear(lx, ly)
	return p, err
}

// Welford accumulates streaming mean and variance.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates a sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (NaN when empty).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Std returns the sample standard deviation (NaN when n < 2).
func (w *Welford) Std() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}
