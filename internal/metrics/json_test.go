package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestAppendJSONFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{1.5, "1.5"},
		{0, "0"},
		{-3e-4, "-0.0003"},
		{1e21, "1e+21"},
		{math.NaN(), "null"},
		{math.Inf(1), "null"},
		{math.Inf(-1), "null"},
	}
	for _, c := range cases {
		got := string(AppendJSONFloat(nil, c.v))
		if got != c.want {
			t.Errorf("AppendJSONFloat(%v) = %q, want %q", c.v, got, c.want)
		}
		if got != "null" {
			var back float64
			if err := json.Unmarshal([]byte(got), &back); err != nil || back != c.v {
				t.Errorf("AppendJSONFloat(%v) = %q does not round-trip (%v, %v)", c.v, got, back, err)
			}
		}
	}
}

func TestSeriesMarshalJSON(t *testing.T) {
	s := &Series{Name: "local-skew"}
	s.Append(0.5, 1e-4)
	s.Append(1.0, math.Inf(-1))
	s.Append(1.5, 2.25e-4)

	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"name":"local-skew","times":[0.5,1,1.5],"values":[0.0001,null,0.000225]}`
	if string(b) != want {
		t.Fatalf("marshal = %s, want %s", b, want)
	}

	var back Series
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name || !reflect.DeepEqual(back.Times, s.Times) {
		t.Fatalf("round trip changed name/times: %+v", back)
	}
	if len(back.Values) != 3 || back.Values[0] != s.Values[0] || back.Values[2] != s.Values[2] {
		t.Fatalf("round trip changed values: %v", back.Values)
	}
	// Non-finite values are lossy by design: null decodes to NaN.
	if !math.IsNaN(back.Values[1]) {
		t.Fatalf("null should decode to NaN, got %v", back.Values[1])
	}
}

func TestSeriesMarshalDeterministic(t *testing.T) {
	s := &Series{Name: "x"}
	for i := 0; i < 100; i++ {
		s.Append(float64(i)*0.1, float64(i)*1.7e-5)
	}
	a, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("series marshalling is not deterministic")
	}
}

func TestSeriesUnmarshalLengthMismatch(t *testing.T) {
	var s Series
	err := json.Unmarshal([]byte(`{"name":"x","times":[1,2],"values":[3]}`), &s)
	if err == nil || !strings.Contains(err.Error(), "2 times but 1 values") {
		t.Fatalf("want length mismatch error, got %v", err)
	}
}

func TestRecorderWriteJSON(t *testing.T) {
	r := NewRecorder()
	r.Observe("a", 1, 10)
	r.Observe("b", 1, 20)
	r.Observe("a", 2, 11)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"series":[{"name":"a","times":[1,2],"values":[10,11]},{"name":"b","times":[1],"values":[20]}]}` + "\n"
	if buf.String() != want {
		t.Fatalf("WriteJSON = %s, want %s", buf.String(), want)
	}

	// Subset + order selection.
	buf.Reset()
	if err := r.WriteJSON(&buf, "b"); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != `{"series":[{"name":"b","times":[1],"values":[20]}]}`+"\n" {
		t.Fatalf("WriteJSON(b) = %s", got)
	}

	// Unknown series is an error, mirroring WriteCSV.
	if err := r.WriteJSON(&bytes.Buffer{}, "nope"); err == nil || !strings.Contains(err.Error(), `unknown series "nope"`) {
		t.Fatalf("want unknown-series error, got %v", err)
	}

	// The document must be valid JSON.
	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Series []*Series `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v", err)
	}
	if len(doc.Series) != 2 || doc.Series[0].Name != "a" || doc.Series[1].Name != "b" {
		t.Fatalf("decoded document wrong: %+v", doc)
	}
}
