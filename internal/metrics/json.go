package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// AppendJSONFloat appends the canonical JSON encoding of v: the shortest
// round-trippable decimal for finite values, and null for NaN/±Inf (which
// JSON cannot represent). Every result and series marshaller in the module
// routes floats through this one function so that exported JSON is
// byte-stable: the same value always encodes to the same bytes.
func AppendJSONFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, "null"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// MarshalJSON renders the series as
//
//	{"name":"...","times":[...],"values":[...]}
//
// with non-finite samples encoded as null. The encoding is canonical:
// fixed key order and shortest float representations, so identical series
// always marshal to identical bytes.
func (s *Series) MarshalJSON() ([]byte, error) {
	name, err := json.Marshal(s.Name)
	if err != nil {
		return nil, err
	}
	b := make([]byte, 0, 32+16*(len(s.Times)+len(s.Values)))
	b = append(b, `{"name":`...)
	b = append(b, name...)
	b = append(b, `,"times":[`...)
	for i, t := range s.Times {
		if i > 0 {
			b = append(b, ',')
		}
		b = AppendJSONFloat(b, t)
	}
	b = append(b, `],"values":[`...)
	for i, v := range s.Values {
		if i > 0 {
			b = append(b, ',')
		}
		b = AppendJSONFloat(b, v)
	}
	b = append(b, `]}`...)
	return b, nil
}

// UnmarshalJSON is the inverse of MarshalJSON; null values decode to NaN.
func (s *Series) UnmarshalJSON(data []byte) error {
	var aux struct {
		Name   string     `json:"name"`
		Times  []float64  `json:"times"`
		Values []*float64 `json:"values"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&aux); err != nil {
		return err
	}
	if len(aux.Times) != len(aux.Values) {
		return fmt.Errorf("metrics: series %q has %d times but %d values", aux.Name, len(aux.Times), len(aux.Values))
	}
	s.Name = aux.Name
	s.Times = aux.Times
	s.Values = make([]float64, len(aux.Values))
	for i, v := range aux.Values {
		if v == nil {
			s.Values[i] = math.NaN()
		} else {
			s.Values[i] = *v
		}
	}
	return nil
}

// WriteJSON renders the named series (all of them, in creation order, when
// names is empty) as a single JSON document
//
//	{"series":[{"name":...,"times":[...],"values":[...]}, ...]}
//
// — the machine-readable sibling of WriteCSV. Unlike the CSV export it
// preserves each series' own sample times instead of joining them onto a
// shared time axis, so it is lossless.
func (r *Recorder) WriteJSON(w io.Writer, names ...string) error {
	if len(names) == 0 {
		names = r.Names()
	}
	if _, err := io.WriteString(w, `{"series":[`); err != nil {
		return err
	}
	for i, n := range names {
		s := r.Series(n)
		if s == nil {
			return fmt.Errorf("metrics: unknown series %q", n)
		}
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		b, err := s.MarshalJSON()
		if err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
