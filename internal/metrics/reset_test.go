package metrics

import (
	"reflect"
	"testing"
)

// TestRecorderResetPresenceSemantics pins the load-bearing property of
// Recorder.Reset: afterwards the recorder is observably indistinguishable
// from a new one — lookups return nil, Names is empty, and a name that is
// never re-observed stays absent (Summarize and the exporters key off
// presence).
func TestRecorderResetPresenceSemantics(t *testing.T) {
	r := NewRecorder()
	r.Observe("a", 1, 10)
	r.Observe("b", 1, 20)
	r.Observe("a", 2, 11)

	r.Reset()

	if names := r.Names(); len(names) != 0 {
		t.Fatalf("Names after reset = %v, want empty", names)
	}
	if r.Series("a") != nil || r.Series("b") != nil {
		t.Fatal("Series lookup non-nil after reset")
	}

	// Re-observe only "a": "b" must stay absent.
	r.Observe("a", 5, 50)
	if got := r.Names(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("Names = %v, want [a]", got)
	}
	if r.Series("b") != nil {
		t.Fatal("unobserved series b resurrected by reset")
	}
	s := r.Series("a")
	if s == nil || s.Len() != 1 || s.Times[0] != 5 || s.Values[0] != 50 {
		t.Fatalf("series a after reset+observe = %+v, want single (5, 50) sample", s)
	}
}

// TestRecorderResetReusesBacking verifies the pooling that makes Reset an
// allocation win: a re-observed series gets its previous backing arrays
// (same object, same capacity) instead of fresh ones.
func TestRecorderResetReusesBacking(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 100; i++ {
		r.Observe("a", float64(i), float64(i))
	}
	before := r.Series("a")
	capT, capV := cap(before.Times), cap(before.Values)

	r.Reset()
	r.Observe("a", 0, 0)

	after := r.Series("a")
	if after != before {
		t.Fatal("reset+observe allocated a new Series object instead of reviving the pooled one")
	}
	if cap(after.Times) != capT || cap(after.Values) != capV {
		t.Fatalf("backing capacity changed across reset: times %d→%d, values %d→%d",
			capT, cap(after.Times), capV, cap(after.Values))
	}
	if after.Len() != 1 {
		t.Fatalf("revived series has %d samples, want 1 (old data must be truncated)", after.Len())
	}
}

// TestSeriesCloneIndependence verifies Clone severs all sharing: mutating
// the original (as Reset does, truncating in place) cannot affect a clone.
func TestSeriesCloneIndependence(t *testing.T) {
	s := &Series{Name: "x"}
	s.Append(1, 10)
	s.Append(2, 20)
	c := s.Clone()

	s.Times = s.Times[:0]
	s.Values = s.Values[:0]
	s.Append(9, 90)

	if c.Name != "x" || c.Len() != 2 || c.Times[0] != 1 || c.Values[1] != 20 {
		t.Fatalf("clone corrupted by mutation of original: %+v", c)
	}
}
