// Package params derives every constant of the FTGCS paper from the three
// physical inputs ρ (hardware clock drift), d (maximum message delay) and
// U (delay uncertainty).
//
// The derivation follows the paper exactly:
//
//	ϑ_g   = (1+ρ)(1+µ)                            (Section 3)
//	ϑ_max = (1 + 2ϕ/(1−ϕ))(1+µ)(1+ρ)              (Eq. 6)
//	µ     = c₂·ρ,  c₁ = ((1/2)−ε)/((1+c₂)·ρ),  ϕ = 1/c₁     (Eq. 5)
//	τ₁ = ϑ_g·E,  τ₂ = ϑ_g·(E+d),  τ₃ = ϑ_g·c₁·(E+U)         (Eq. 5/10)
//	α, β per regime via Claim B.15 (Eq. 12), E = β/(1−α)
//	δ = (k+5)·E,  κ = 3δ                          (Lemma 4.8)
//	ρ̄ = (1+ϕ)(1+µ/4)−1, µ̄ = (1+ϕ)(1+7µ/8)−1      (Prop. 4.11)
//
// The paper's constants (c₂ = 32, ε = 1/4096) make the general-case
// contraction factor α_g < 1 only for very small ρ ("sufficiently small ρ");
// the PaperStrict preset reproduces them, while the Practical preset uses
// milder constants that are feasible at realistic drifts (ρ ≈ 10⁻⁴) — the
// simulation experiments confirm the paper's qualitative claims under both.
package params

import (
	"errors"
	"fmt"
	"math"
)

// Config is the input to Derive.
type Config struct {
	// Rho is the hardware clock drift bound ρ > 0: rates lie in [1, 1+ρ].
	Rho float64
	// Delay is the maximum message delay d > 0.
	Delay float64
	// Uncertainty is the delay uncertainty U ∈ (0, d]: delays lie in
	// [d−U, d].
	Uncertainty float64
	// C2 sets µ = C2·ρ. The paper uses 32 (Eq. 5); 0 selects that default.
	C2 float64
	// Eps is the paper's ε (Eq. 5, default 1/4096). It controls the
	// contraction margin 1−α_g ≈ ε.
	Eps float64
	// KStable is the paper's Lemma 3.6 constant k: the number of
	// consecutive unanimous rounds after which the tightened rate bounds
	// hold. It enters δ = (k+5)·E. 0 selects the default 4.
	KStable int
	// CGlobal is Theorem C.3's "sufficiently large constant c" in the
	// catch-up rule L_v ≤ M_v − cδ. 0 selects the default 8.
	CGlobal float64
}

// Preset bundles the analysis constants.
type Preset int

const (
	// PaperStrict uses the paper's Eq. (5) constants c₂=32, ε=1/4096.
	// Feasible (α_g < 1) only for ρ ≲ 2·10⁻⁶.
	PaperStrict Preset = iota + 1
	// Practical uses c₂=8, ε=1/8: feasible at realistic drifts (ρ≈10⁻⁴)
	// with the same algorithm; the experiments verify the paper's
	// qualitative claims under it.
	Practical
)

func (p Preset) String() string {
	switch p {
	case PaperStrict:
		return "paper-strict"
	case Practical:
		return "practical"
	default:
		return fmt.Sprintf("preset(%d)", int(p))
	}
}

// PresetConfig returns a Config for the preset with the given physical
// parameters.
func PresetConfig(p Preset, rho, delay, uncertainty float64) Config {
	cfg := Config{Rho: rho, Delay: delay, Uncertainty: uncertainty}
	switch p {
	case Practical:
		cfg.C2 = 8
		cfg.Eps = 1.0 / 8
	default: // PaperStrict
		cfg.C2 = 32
		cfg.Eps = 1.0 / 4096
	}
	return cfg
}

// Params holds every derived constant of the algorithm.
type Params struct {
	// Physical inputs.
	Rho, Delay, Uncertainty float64

	// Analysis constants (Eq. 5).
	C2, Eps, C1, Phi, Mu float64

	// Rate envelopes.
	ThetaG   float64 // ϑ_g = (1+ρ)(1+µ): nominal rate spread, general case
	ThetaU   float64 // ϑ_u = 1+ρ: nominal rate spread, unanimous case
	ThetaMax float64 // Eq. (6): max logical rate

	// Contraction per regime (Claim B.15): e(r+1) = α·e(r) + β, steady
	// state E = β/(1−α).
	AlphaG, BetaG, EG float64 // general execution
	AlphaF, BetaF, EF float64 // unanimously fast
	AlphaS, BetaS, ES float64 // unanimously slow

	// Round structure (Eq. 5/10), constant across rounds.
	Tau1, Tau2, Tau3, T float64

	// GCS layer (Lemma 4.8).
	KStable int     // Lemma 3.6 k
	Delta   float64 // trigger slack δ = (KStable+5)·E_G
	Kappa   float64 // GCS level unit κ = 3δ

	// Simulated-GCS axiom constants (Prop. 4.11).
	RhoBar, MuBar float64

	// Theorem C.3 catch-up constant.
	CGlobal float64
}

// Errors returned by Derive.
var (
	ErrInfeasible = errors.New("params: contraction factor α ≥ 1 (parameters infeasible; reduce ρ or relax ε/c₂)")
	ErrBadInput   = errors.New("params: invalid physical parameters")
)

// regimeAlphaBeta evaluates the paper's Eq. (12) for one execution regime.
//
//	γ   = (ζ_max/ζ)·(ϑ_g/ϑ)·(ϑ−1)
//	α   = (2ϑ²+5ϑ−5) / (2(ϑ+1)(1−γ)) + γ(1+c₁)/(1−γ)
//	β   = γ/(1−γ)·d + ((3ϑ−1) + γ·c₁)/(1−γ)·U
func regimeAlphaBeta(zeta, zetaMax, theta, thetaG, c1, d, u float64) (alpha, beta, gamma float64) {
	gamma = (zetaMax / zeta) * (thetaG / theta) * (theta - 1)
	oneMinus := 1 - gamma
	alpha = (2*theta*theta+5*theta-5)/(2*(theta+1)*oneMinus) + gamma*(1+c1)/oneMinus
	beta = gamma/oneMinus*d + ((3*theta-1)+gamma*c1)/oneMinus*u
	return alpha, beta, gamma
}

// Derive computes all algorithm constants from a Config.
func Derive(cfg Config) (Params, error) {
	if cfg.Rho <= 0 || cfg.Delay <= 0 || cfg.Uncertainty <= 0 || cfg.Uncertainty > cfg.Delay {
		return Params{}, fmt.Errorf("%w: rho=%v d=%v U=%v", ErrBadInput, cfg.Rho, cfg.Delay, cfg.Uncertainty)
	}
	c2 := cfg.C2
	if c2 == 0 {
		c2 = 32
	}
	eps := cfg.Eps
	if eps == 0 {
		eps = 1.0 / 4096
	}
	if eps <= 0 || eps >= 0.5 {
		return Params{}, fmt.Errorf("%w: eps=%v must be in (0, 1/2)", ErrBadInput, eps)
	}
	kStable := cfg.KStable
	if kStable == 0 {
		kStable = 4
	}
	cGlobal := cfg.CGlobal
	if cGlobal == 0 {
		cGlobal = 8
	}

	p := Params{
		Rho:         cfg.Rho,
		Delay:       cfg.Delay,
		Uncertainty: cfg.Uncertainty,
		C2:          c2,
		Eps:         eps,
		KStable:     kStable,
		CGlobal:     cGlobal,
	}
	p.Mu = c2 * cfg.Rho
	p.C1 = (0.5 - eps) / ((1 + c2) * cfg.Rho) // Eq. (5)
	p.Phi = 1 / p.C1
	if p.Phi >= 1 {
		return Params{}, fmt.Errorf("%w: ϕ=%v ≥ 1 (ρ too large for ε=%v, c₂=%v)", ErrInfeasible, p.Phi, eps, c2)
	}
	p.ThetaG = (1 + cfg.Rho) * (1 + p.Mu)
	p.ThetaU = 1 + cfg.Rho
	p.ThetaMax = (1 + 2*p.Phi/(1-p.Phi)) * (1 + p.Mu) * (1 + cfg.Rho) // Eq. (6)

	zetaMax := (1 + p.Phi) * (1 + p.Mu)
	// General execution: nominal rates in [(1+ϕ), (1+ϕ)·ϑ_g].
	p.AlphaG, p.BetaG, _ = regimeAlphaBeta(1+p.Phi, zetaMax, p.ThetaG, p.ThetaG, p.C1, cfg.Delay, cfg.Uncertainty)
	// Unanimously fast: rates in [(1+ϕ)(1+µ), (1+ϕ)(1+µ)·ϑ_u].
	p.AlphaF, p.BetaF, _ = regimeAlphaBeta(zetaMax, zetaMax, p.ThetaU, p.ThetaG, p.C1, cfg.Delay, cfg.Uncertainty)
	// Unanimously slow: rates in [(1+ϕ), (1+ϕ)·ϑ_u].
	p.AlphaS, p.BetaS, _ = regimeAlphaBeta(1+p.Phi, zetaMax, p.ThetaU, p.ThetaG, p.C1, cfg.Delay, cfg.Uncertainty)

	if p.AlphaG >= 1 {
		return Params{}, fmt.Errorf("%w: α_g=%.6f (ρ=%v, c₂=%v, ε=%v)", ErrInfeasible, p.AlphaG, cfg.Rho, c2, eps)
	}
	if p.AlphaF >= 1 || p.AlphaS >= 1 {
		return Params{}, fmt.Errorf("%w: α_f=%.6f α_s=%.6f", ErrInfeasible, p.AlphaF, p.AlphaS)
	}
	p.EG = p.BetaG / (1 - p.AlphaG)
	p.EF = p.BetaF / (1 - p.AlphaF)
	p.ES = p.BetaS / (1 - p.AlphaS)

	// Round structure, Eq. (5): τ₃ = ϑ_g·c₁·(E+U) = ϑ_g·(E+U)/ϕ satisfies
	// feasibility (Eq. 8) with equality.
	p.Tau1 = p.ThetaG * p.EG
	p.Tau2 = p.ThetaG * (p.EG + cfg.Delay)
	p.Tau3 = p.ThetaG * p.C1 * (p.EG + cfg.Uncertainty)
	p.T = p.Tau1 + p.Tau2 + p.Tau3

	// GCS layer.
	p.Delta = float64(kStable+5) * p.EG // Lemma 4.8
	p.Kappa = 3 * p.Delta

	// Prop. 4.11: the simulated cluster clocks satisfy the GCS axioms for
	// these effective drift/boost parameters.
	p.RhoBar = (1+p.Phi)*(1+p.Mu/4) - 1
	p.MuBar = (1+p.Phi)*(1+7*p.Mu/8) - 1
	return p, nil
}

// MustDerive is Derive for configurations known feasible by construction
// (tests, examples); it panics on error.
func MustDerive(cfg Config) Params {
	p, err := Derive(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// LegacyAlphaBeta evaluates the unstretched Eq. (11) (the basic Lynch–Welch
// contraction with τ₃ = ϑ_g(E+U)/ϕ and no c₁ stretching). Exposed for tests
// and for comparison in EXPERIMENTS.md.
func LegacyAlphaBeta(rho, mu, phi, d, u float64) (alpha, beta float64) {
	thetaG := (1 + rho) * (1 + mu)
	alpha = (6*thetaG*thetaG*phi + 5*thetaG*phi - 9*phi + 2*thetaG*thetaG - 2) /
		(2 * phi * (thetaG + 1))
	beta = (3*thetaG-1+(thetaG-1)/phi)*u + (thetaG-1)*d
	return alpha, beta
}

// ErrorSequence iterates e(r+1) = α·e(r) + β for n rounds from e1 and
// returns the sequence e(1..n). It reproduces the paper's Eq. (9)/(12)
// recursion and is used to predict convergence in experiment E3.
func ErrorSequence(e1, alpha, beta float64, n int) []float64 {
	out := make([]float64, n)
	e := e1
	for i := 0; i < n; i++ {
		out[i] = e
		e = alpha*e + beta
	}
	return out
}

// SteadyState returns β/(1−α), the fixed point E of the contraction, or
// +Inf when α ≥ 1.
func SteadyState(alpha, beta float64) float64 {
	if alpha >= 1 {
		return math.Inf(1)
	}
	return beta / (1 - alpha)
}

// --- Bound formulas used by the experiments ---

// ClusterSkewBound returns the Corollary 3.2 bound on the skew between
// correct nodes of one cluster: 2·ϑ_g·E.
func (p Params) ClusterSkewBound() float64 { return 2 * p.ThetaG * p.EG }

// GlobalSkewBound returns the Theorem C.3 target O(δD) with the explicit
// constant CGlobal: CGlobal·δ·(D+1).
func (p Params) GlobalSkewBound(diameter int) float64 {
	return p.CGlobal * p.Delta * float64(diameter+1)
}

// SigmaBase returns the logarithm base σ = µ̄/ρ̄ of the local skew bound
// (Theorem 4.10: local skew O(κ·log_{µ/ρ} S)).
func (p Params) SigmaBase() float64 { return p.MuBar / p.RhoBar }

// LocalSkewBound returns the explicit cluster-level local skew bound used
// in the experiments: 2κ·(⌈log_σ(S/κ)⌉ + 1), with S = GlobalSkewBound(D).
// Node-level bounds add the intra-cluster term (NodeLocalSkewBound).
func (p Params) LocalSkewBound(diameter int) float64 {
	s := p.GlobalSkewBound(diameter)
	sigma := p.SigmaBase()
	levels := 1.0
	if sigma > 1 && s > p.Kappa {
		levels = math.Ceil(math.Log(s/p.Kappa)/math.Log(sigma)) + 1
	}
	return 2 * p.Kappa * levels
}

// NodeLocalSkewBound is the Theorem 1.1 node-level bound between physical
// neighbors: the cluster-level bound plus twice the intra-cluster bound.
func (p Params) NodeLocalSkewBound(diameter int) float64 {
	return p.LocalSkewBound(diameter) + 2*p.ClusterSkewBound()
}

// FastRateFloor returns Lemma 3.6(1): the amortized rate floor
// (1+ϕ)(1+7µ/8) of a long-unanimously-fast cluster.
func (p Params) FastRateFloor() float64 { return (1 + p.Phi) * (1 + 7*p.Mu/8) }

// SlowRateFloor and SlowRateCeil return Lemma 3.6(2): the amortized rate
// window (1+ϕ)(1±µ/8) of a long-unanimously-slow cluster.
func (p Params) SlowRateFloor() float64 { return (1 + p.Phi) * (1 - p.Mu/8) }

// SlowRateCeil returns the upper end of the Lemma 3.6(2) window.
func (p Params) SlowRateCeil() float64 { return (1 + p.Phi) * (1 + p.Mu/8) }

// ClusterFailureProbBound returns Inequality (1): with k = 3f+1 nodes
// failing independently with probability pFail, the probability that more
// than f fail is at most (3·e·pFail)^(f+1).
func ClusterFailureProbBound(f int, pFail float64) float64 {
	return math.Pow(3*math.E*pFail, float64(f+1))
}

// ExactClusterFailureProb computes Σ_{i=f+1}^{k} C(k,i) p^i (1−p)^{k−i}
// for k = 3f+1: the exact probability Inequality (1) bounds.
func ExactClusterFailureProb(f int, pFail float64) float64 {
	k := 3*f + 1
	total := 0.0
	for i := f + 1; i <= k; i++ {
		total += binomialPMF(k, i, pFail)
	}
	return total
}

func binomialPMF(n, k int, p float64) float64 {
	// Compute C(n,k)·p^k·(1−p)^(n−k) in log space for stability.
	logC := 0.0
	for i := 0; i < k; i++ {
		logC += math.Log(float64(n-i)) - math.Log(float64(i+1))
	}
	return math.Exp(logC + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

// FeasibleRhoMax searches for the largest ρ (within [lo, hi]) for which the
// configuration remains feasible, by bisection. Used by experiment E14.
func FeasibleRhoMax(c2, eps, delay, uncertainty float64) float64 {
	lo, hi := 1e-12, 1.0
	feasible := func(rho float64) bool {
		_, err := Derive(Config{Rho: rho, Delay: delay, Uncertainty: uncertainty, C2: c2, Eps: eps})
		return err == nil
	}
	if !feasible(lo) {
		return 0
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection over decades
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
