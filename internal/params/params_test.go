package params

import (
	"math"
	"testing"
	"testing/quick"
)

func practicalConfig() Config {
	return PresetConfig(Practical, 1e-4, 1e-3, 1e-4)
}

func TestDerivePractical(t *testing.T) {
	p, err := Derive(practicalConfig())
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if p.Mu != 8*1e-4 {
		t.Errorf("Mu = %v, want 8e-4", p.Mu)
	}
	if math.Abs(p.C1*p.Phi-1) > 1e-12 {
		t.Errorf("ϕ·c₁ = %v, want 1", p.C1*p.Phi)
	}
	if p.AlphaG >= 1 || p.AlphaG <= 0 {
		t.Errorf("AlphaG = %v, want in (0,1)", p.AlphaG)
	}
	// Claim B.15: α_g ≈ 1/2 + (1+c₂)c₁ρ = 1/2 + (1/2 − ε) = 1 − ε up to O(ρ).
	wantAlpha := 1 - p.Eps
	if math.Abs(p.AlphaG-wantAlpha) > 0.02 {
		t.Errorf("AlphaG = %v, want ≈ %v", p.AlphaG, wantAlpha)
	}
	// Unanimous contraction must be strictly tighter than general.
	if p.AlphaF >= p.AlphaG || p.AlphaS >= p.AlphaG {
		t.Errorf("unanimous α (f=%v, s=%v) should beat general %v", p.AlphaF, p.AlphaS, p.AlphaG)
	}
	// Unanimous steady-state error must be far below the general one
	// (Claim B.17 — this gap is what lets fast clusters outrun slow ones).
	if p.EF >= p.EG || p.ES >= p.EG {
		t.Errorf("E_f=%v E_s=%v should be below E_g=%v", p.EF, p.ES, p.EG)
	}
	if p.T != p.Tau1+p.Tau2+p.Tau3 {
		t.Error("T ≠ τ₁+τ₂+τ₃")
	}
	if p.Kappa != 3*p.Delta {
		t.Error("κ ≠ 3δ")
	}
	if p.Delta != float64(p.KStable+5)*p.EG {
		t.Error("δ ≠ (k+5)E")
	}
}

func TestDerivePaperStrictSmallRho(t *testing.T) {
	// The paper's constants require "sufficiently small ρ". 1e-7 is small
	// enough; 1e-4 is not.
	cfg := PresetConfig(PaperStrict, 1e-7, 1e-3, 1e-4)
	p, err := Derive(cfg)
	if err != nil {
		t.Fatalf("PaperStrict at ρ=1e-7 should be feasible: %v", err)
	}
	if p.C2 != 32 || p.Eps != 1.0/4096 {
		t.Errorf("preset constants wrong: c2=%v eps=%v", p.C2, p.Eps)
	}
	if _, err := Derive(PresetConfig(PaperStrict, 1e-4, 1e-3, 1e-4)); err == nil {
		t.Error("PaperStrict at ρ=1e-4 should be infeasible (α_g ≥ 1)")
	}
}

func TestDeriveInputValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero rho", Config{Rho: 0, Delay: 1e-3, Uncertainty: 1e-4}},
		{"negative rho", Config{Rho: -1, Delay: 1e-3, Uncertainty: 1e-4}},
		{"zero delay", Config{Rho: 1e-4, Delay: 0, Uncertainty: 1e-4}},
		{"U > d", Config{Rho: 1e-4, Delay: 1e-3, Uncertainty: 2e-3}},
		{"zero U", Config{Rho: 1e-4, Delay: 1e-3, Uncertainty: 0}},
		{"eps too big", Config{Rho: 1e-4, Delay: 1e-3, Uncertainty: 1e-4, Eps: 0.6}},
	}
	for _, tc := range tests {
		if _, err := Derive(tc.cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestDefaults(t *testing.T) {
	p, err := Derive(Config{Rho: 1e-7, Delay: 1e-3, Uncertainty: 1e-4})
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if p.C2 != 32 {
		t.Errorf("default C2 = %v, want 32", p.C2)
	}
	if p.Eps != 1.0/4096 {
		t.Errorf("default Eps = %v, want 1/4096", p.Eps)
	}
	if p.KStable != 4 {
		t.Errorf("default KStable = %d, want 4", p.KStable)
	}
	if p.CGlobal != 8 {
		t.Errorf("default CGlobal = %v, want 8", p.CGlobal)
	}
}

func TestFeasibilityRegion(t *testing.T) {
	// E14: PaperStrict feasibility boundary should sit near ρ ≈ 1.8e-6
	// (analysis in DESIGN.md); Practical should be well above 1e-4.
	strictMax := FeasibleRhoMax(32, 1.0/4096, 1e-3, 1e-4)
	if strictMax < 1e-7 || strictMax > 1e-5 {
		t.Errorf("PaperStrict feasible ρ max = %v, want within [1e-7, 1e-5]", strictMax)
	}
	practMax := FeasibleRhoMax(8, 1.0/8, 1e-3, 1e-4)
	if practMax < 1e-4 {
		t.Errorf("Practical feasible ρ max = %v, want ≥ 1e-4", practMax)
	}
	if practMax <= strictMax {
		t.Error("Practical should tolerate more drift than PaperStrict")
	}
}

func TestTau3Feasibility(t *testing.T) {
	// Eq. (8): τ₃ ≥ ϑ_g·(E+U)/ϕ must hold (with equality by Eq. 5).
	p := MustDerive(practicalConfig())
	want := p.ThetaG * (p.EG + p.Uncertainty) / p.Phi
	if math.Abs(p.Tau3-want) > 1e-9*want {
		t.Errorf("Tau3 = %v, want %v", p.Tau3, want)
	}
	// Proper-execution margin: ϑ_g(E+U) ≤ ϕ·τ₃.
	if p.ThetaG*(p.EG+p.Uncertainty) > p.Phi*p.Tau3*(1+1e-12) {
		t.Error("correction bound |Δ| ≤ ϕτ₃ violated by construction")
	}
}

func TestErrorSequenceConvergence(t *testing.T) {
	p := MustDerive(practicalConfig())
	seq := ErrorSequence(10*p.EG, p.AlphaG, p.BetaG, 200)
	if len(seq) != 200 {
		t.Fatalf("len = %d", len(seq))
	}
	// Monotone decrease toward E when starting above E.
	for i := 1; i < len(seq); i++ {
		if seq[i] > seq[i-1]+1e-15 {
			t.Fatalf("sequence increased at %d: %v → %v", i, seq[i-1], seq[i])
		}
	}
	final := seq[len(seq)-1]
	if math.Abs(final-p.EG) > 0.05*p.EG {
		t.Errorf("e(200) = %v, want ≈ E = %v", final, p.EG)
	}
}

func TestErrorSequenceFixedPoint(t *testing.T) {
	// Property: starting exactly at the fixed point stays there.
	f := func(rawAlpha, rawBeta uint16) bool {
		alpha := float64(rawAlpha) / 65536 // in [0,1)
		beta := 1e-6 + float64(rawBeta)/65536
		e := SteadyState(alpha, beta)
		seq := ErrorSequence(e, alpha, beta, 10)
		for _, v := range seq {
			if math.Abs(v-e) > 1e-9*(1+e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSteadyStateInfeasible(t *testing.T) {
	if !math.IsInf(SteadyState(1.0, 1.0), 1) {
		t.Error("α=1 should give +Inf steady state")
	}
	if !math.IsInf(SteadyState(1.5, 1.0), 1) {
		t.Error("α>1 should give +Inf steady state")
	}
}

func TestLegacyAlphaBetaMatchesPaperShape(t *testing.T) {
	// Eq. (11) with ϕ = Θ(1/(ϑ_g−1)) has α dominated by
	// 1/2·(…); verify β > 0 and α grows with ρ.
	a1, b1 := LegacyAlphaBeta(1e-7, 32e-7, 0.5, 1e-3, 1e-4)
	a2, _ := LegacyAlphaBeta(1e-5, 32e-5, 0.5, 1e-3, 1e-4)
	if b1 <= 0 {
		t.Errorf("β = %v, want > 0", b1)
	}
	if a2 <= a1 {
		t.Errorf("α should grow with ρ: α(1e-7)=%v α(1e-5)=%v", a1, a2)
	}
}

func TestBoundFormulas(t *testing.T) {
	p := MustDerive(practicalConfig())
	if p.ClusterSkewBound() != 2*p.ThetaG*p.EG {
		t.Error("ClusterSkewBound formula")
	}
	if p.GlobalSkewBound(4) != p.CGlobal*p.Delta*5 {
		t.Error("GlobalSkewBound formula")
	}
	if p.SigmaBase() <= 1 {
		t.Errorf("σ = µ̄/ρ̄ = %v, want > 1 (GCS axiom A4)", p.SigmaBase())
	}
	// Local skew bound must grow with D but sublinearly (logarithmically).
	l2, l16, l128 := p.LocalSkewBound(2), p.LocalSkewBound(16), p.LocalSkewBound(128)
	if !(l2 <= l16 && l16 <= l128) {
		t.Errorf("local skew bound not monotone: %v %v %v", l2, l16, l128)
	}
	if l128 >= 64*l2 {
		t.Errorf("local skew bound looks linear: D=2→%v D=128→%v", l2, l128)
	}
	if p.NodeLocalSkewBound(4) != p.LocalSkewBound(4)+2*p.ClusterSkewBound() {
		t.Error("NodeLocalSkewBound formula")
	}
}

func TestRateWindows(t *testing.T) {
	p := MustDerive(practicalConfig())
	// Lemma 3.6: the fast floor must exceed the slow ceiling — this is the
	// whole point of the unanimity machinery (fast clusters catch up).
	if p.FastRateFloor() <= p.SlowRateCeil() {
		t.Errorf("fast floor %v must exceed slow ceil %v", p.FastRateFloor(), p.SlowRateCeil())
	}
	if p.SlowRateFloor() >= p.SlowRateCeil() {
		t.Error("slow window empty")
	}
	// Prop. 4.11 axioms: 1 ≤ 1+ρ̄ < 1+µ̄ ≤ ϑ_max-ish.
	if p.RhoBar <= 0 || p.MuBar <= p.RhoBar {
		t.Errorf("axiom constants: ρ̄=%v µ̄=%v", p.RhoBar, p.MuBar)
	}
}

func TestClusterFailureProb(t *testing.T) {
	// Inequality (1): exact ≤ bound for representative (f, p) pairs; and
	// the bound drops geometrically in f for small p.
	for _, f := range []int{1, 2, 3, 4} {
		for _, pf := range []float64{0.01, 0.05, 0.1} {
			exact := ExactClusterFailureProb(f, pf)
			bound := ClusterFailureProbBound(f, pf)
			if exact > bound {
				t.Errorf("f=%d p=%v: exact %v > bound %v", f, pf, exact, bound)
			}
			if exact < 0 || exact > 1 {
				t.Errorf("f=%d p=%v: exact prob %v out of [0,1]", f, pf, exact)
			}
		}
	}
	if ClusterFailureProbBound(3, 0.01) >= ClusterFailureProbBound(1, 0.01) {
		t.Error("bound should decrease with f for small p")
	}
}

func TestBinomialPMFSums(t *testing.T) {
	n, p := 10, 0.3
	total := 0.0
	for k := 0; k <= n; k++ {
		total += binomialPMF(n, k, p)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("PMF sums to %v, want 1", total)
	}
}

func TestPresetString(t *testing.T) {
	if PaperStrict.String() != "paper-strict" || Practical.String() != "practical" {
		t.Error("preset names")
	}
	if Preset(99).String() == "" {
		t.Error("unknown preset should still format")
	}
}

func TestMuOverRhoGCSAxiomA4(t *testing.T) {
	// Axiom A4 for the simulated clocks: µ̄/ρ̄ > 1 for both presets at
	// their feasible drifts.
	for _, tc := range []struct {
		preset Preset
		rho    float64
	}{{Practical, 1e-4}, {PaperStrict, 1e-7}} {
		p := MustDerive(PresetConfig(tc.preset, tc.rho, 1e-3, 1e-4))
		if p.MuBar/p.RhoBar <= 1 {
			t.Errorf("%v: µ̄/ρ̄ = %v, want > 1", tc.preset, p.MuBar/p.RhoBar)
		}
	}
}

func TestScalingInDelayAndUncertainty(t *testing.T) {
	// E = Θ(ρd + U): doubling U should roughly double E when U dominates.
	base := MustDerive(Config{Rho: 1e-4, Delay: 1e-3, Uncertainty: 1e-4, C2: 8, Eps: 0.125})
	moreU := MustDerive(Config{Rho: 1e-4, Delay: 1e-3, Uncertainty: 2e-4, C2: 8, Eps: 0.125})
	ratio := moreU.EG / base.EG
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("E ratio for 2×U = %v, want ≈ 2", ratio)
	}
}

func BenchmarkDerive(b *testing.B) {
	cfg := practicalConfig()
	for i := 0; i < b.N; i++ {
		if _, err := Derive(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
