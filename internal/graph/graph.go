// Package graph provides the topologies of the FTGCS paper: arbitrary base
// graphs 𝒢 = (𝒞, ℰ) and the augmented network G = (V, E) obtained by
// replacing every node of 𝒢 with a fully connected cluster of k nodes and
// every edge of 𝒢 with a complete bipartite graph between the corresponding
// clusters (paper Section 2).
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node in a graph. IDs are dense, 0-based.
type NodeID = int

// Graph is a simple undirected graph with dense 0-based node IDs.
type Graph struct {
	n   int
	adj [][]NodeID
	// name describes the topology for reports ("line-8", "grid-4x4", ...).
	name string
}

// New returns an empty graph with n nodes and no edges.
func New(n int, name string) *Graph {
	return &Graph{n: n, adj: make([][]NodeID, n), name: name}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// Name returns the topology label.
func (g *Graph) Name() string { return g.name }

// M returns the number of edges.
func (g *Graph) M() int {
	total := 0
	for _, nbrs := range g.adj {
		total += len(nbrs)
	}
	return total / 2
}

// Equal reports whether g and other are structurally identical: same
// size, same name, and element-wise identical adjacency lists —
// including neighbor order, because the simulator consumes adjacency in
// order, so only order-identical graphs are guaranteed to drive
// byte-identical simulations. This is the equality the topology
// interner uses to decide two independently resolved graphs are
// interchangeable build inputs.
func (g *Graph) Equal(other *Graph) bool {
	if g == nil || other == nil {
		return g == other
	}
	if g.n != other.n || g.name != other.name {
		return false
	}
	for v := range g.adj {
		a, b := g.adj[v], other.adj[v]
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate
// edges are rejected.
func (g *Graph) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n)
	}
	for _, w := range g.adj[u] {
		if w == v {
			return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
		}
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	return nil
}

// mustAddEdge is used by generators whose constructions are valid by
// design; an error indicates a generator bug.
func (g *Graph) mustAddEdge(u, v NodeID) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// Neighbors returns the adjacency list of v. The returned slice is shared;
// callers must not modify it.
func (g *Graph) Neighbors(v NodeID) []NodeID { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Edges returns all edges {u,v} with u < v, sorted.
func (g *Graph) Edges() [][2]NodeID {
	var out [][2]NodeID
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, [2]NodeID{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// BFS returns the hop distance from src to every node; unreachable nodes
// get -1.
func (g *Graph) BFS(src NodeID) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected (true for n ≤ 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the hop diameter, or -1 if the graph is disconnected or
// empty.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	max := 0
	for src := 0; src < g.n; src++ {
		for _, d := range g.BFS(src) {
			if d < 0 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// SpanningTreeParents returns, for a BFS spanning tree rooted at root, the
// parent of each node (root's parent is -1). Used by the TreeSync baseline.
func (g *Graph) SpanningTreeParents(root NodeID) ([]NodeID, error) {
	if root < 0 || root >= g.n {
		return nil, fmt.Errorf("graph: root %d out of range", root)
	}
	parent := make([]NodeID, g.n)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[root] = -1
	queue := []NodeID{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if parent[v] == -2 {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	for i, p := range parent {
		if p == -2 {
			return nil, fmt.Errorf("graph: node %d unreachable from root %d", i, root)
		}
	}
	return parent, nil
}
