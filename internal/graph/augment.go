package graph

import "fmt"

// ClusterID identifies a cluster (a node of the base graph 𝒢).
type ClusterID = int

// Augmented is the network G = (V, E) of the paper's Section 2: every node
// C of the base graph 𝒢 becomes a cluster of k fully connected physical
// nodes, and every base edge (B, C) ∈ ℰ becomes a complete bipartite graph
// between the members of B and C.
//
// Edge types:
//   - cluster edges: for each C and v,w ∈ C, {v,w} ∈ E
//   - intercluster edges: for each (B,C) ∈ ℰ, v ∈ B, w ∈ C, {v,w} ∈ E
//
// Node v = c*k + i is the i-th member of cluster c, so membership is O(1).
type Augmented struct {
	Base *Graph // the base graph 𝒢
	K    int    // cluster size k ≥ 1
	Net  *Graph // the augmented physical network G

	// members memoizes Members(c) so hot loops (the metrics sampler walks
	// every cluster every tick) don't allocate; one backing array, one
	// k-wide window per cluster. Callers must treat the slices as
	// read-only.
	members [][]NodeID
}

// Augment builds the augmented graph with cluster size k.
func Augment(base *Graph, k int) (*Augmented, error) {
	if k < 1 {
		return nil, fmt.Errorf("graph: cluster size k=%d < 1", k)
	}
	n := base.N() * k
	net := New(n, fmt.Sprintf("%s⊗K%d", base.Name(), k))
	a := &Augmented{Base: base, K: k, Net: net}
	all := make([]NodeID, n)
	a.members = make([][]NodeID, base.N())
	for v := 0; v < n; v++ {
		all[v] = v
	}
	for c := 0; c < base.N(); c++ {
		a.members[c] = all[c*k : (c+1)*k : (c+1)*k]
	}
	// Cluster edges: each cluster is a clique.
	for c := 0; c < base.N(); c++ {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				net.mustAddEdge(a.Member(c, i), a.Member(c, j))
			}
		}
	}
	// Intercluster edges: complete bipartite between adjacent clusters.
	for _, e := range base.Edges() {
		b, c := e[0], e[1]
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				net.mustAddEdge(a.Member(b, i), a.Member(c, j))
			}
		}
	}
	return a, nil
}

// Member returns the physical node ID of the i-th member of cluster c.
func (a *Augmented) Member(c ClusterID, i int) NodeID { return c*a.K + i }

// ClusterOf returns the cluster a physical node belongs to.
func (a *Augmented) ClusterOf(v NodeID) ClusterID { return v / a.K }

// IndexIn returns the member index of v within its cluster.
func (a *Augmented) IndexIn(v NodeID) int { return v % a.K }

// Members returns the physical node IDs of cluster c. The returned slice
// is shared and must not be modified.
func (a *Augmented) Members(c ClusterID) []NodeID {
	return a.members[c]
}

// Clusters returns the number of clusters |𝒞|.
func (a *Augmented) Clusters() int { return a.Base.N() }

// NeighborClusters returns the clusters adjacent to c in the base graph
// (the paper's N_C).
func (a *Augmented) NeighborClusters(c ClusterID) []ClusterID {
	return a.Base.Neighbors(c)
}

// Overhead summarizes the cost of the augmentation (Theorem 1.1's O(f) node
// and O(f²) edge overheads).
type Overhead struct {
	BaseNodes, BaseEdges int
	Nodes, Edges         int
	ClusterEdges         int // Σ_C k(k−1)/2
	InterclusterEdges    int // Σ_ℰ k²
	NodeFactor           float64
	EdgeFactor           float64
}

// Overhead computes the augmentation cost accounting.
func (a *Augmented) Overhead() Overhead {
	k := a.K
	bn, bm := a.Base.N(), a.Base.M()
	clusterEdges := bn * k * (k - 1) / 2
	interEdges := bm * k * k
	o := Overhead{
		BaseNodes:         bn,
		BaseEdges:         bm,
		Nodes:             a.Net.N(),
		Edges:             a.Net.M(),
		ClusterEdges:      clusterEdges,
		InterclusterEdges: interEdges,
		NodeFactor:        float64(k),
	}
	if bm > 0 {
		o.EdgeFactor = float64(o.Edges) / float64(bm)
	}
	return o
}
