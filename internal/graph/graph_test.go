package graph

import (
	"testing"
	"testing/quick"

	"ftgcs/internal/sim"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(3, "t")
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop should fail")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range should fail")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Errorf("AddEdge: %v", err)
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate (reversed) edge should fail")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge should be symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("absent edge reported present")
	}
	if g.HasEdge(-1, 5) {
		t.Error("out-of-range HasEdge should be false")
	}
}

func TestLine(t *testing.T) {
	g := Line(5)
	if g.N() != 5 || g.M() != 4 {
		t.Errorf("line-5: N=%d M=%d, want 5, 4", g.N(), g.M())
	}
	if got := g.Diameter(); got != 4 {
		t.Errorf("diameter = %d, want 4", got)
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Error("line degrees wrong")
	}
}

func TestRing(t *testing.T) {
	g := Ring(6)
	if g.M() != 6 {
		t.Errorf("ring-6 edges = %d, want 6", g.M())
	}
	if got := g.Diameter(); got != 3 {
		t.Errorf("diameter = %d, want 3", got)
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	// Degenerate small rings fall back to paths.
	if Ring(2).M() != 1 || Ring(1).M() != 0 {
		t.Error("small rings wrong")
	}
}

func TestClique(t *testing.T) {
	g := Clique(7)
	if g.M() != 21 {
		t.Errorf("K7 edges = %d, want 21", g.M())
	}
	if got := g.Diameter(); got != 1 {
		t.Errorf("diameter = %d, want 1", got)
	}
}

func TestStar(t *testing.T) {
	g := Star(9)
	if g.M() != 8 || g.Diameter() != 2 || g.Degree(0) != 8 {
		t.Errorf("star-9: M=%d D=%d deg0=%d", g.M(), g.Diameter(), g.Degree(0))
	}
}

func TestGrid(t *testing.T) {
	g := Grid(4, 3)
	if g.N() != 12 {
		t.Errorf("N = %d, want 12", g.N())
	}
	// Edges: horizontal 3*3=9, vertical 4*2=8.
	if g.M() != 17 {
		t.Errorf("M = %d, want 17", g.M())
	}
	if got := g.Diameter(); got != 5 {
		t.Errorf("diameter = %d, want 5 (3+2)", got)
	}
}

func TestTorus(t *testing.T) {
	g := Torus(4, 4)
	if g.N() != 16 {
		t.Errorf("N = %d, want 16", g.N())
	}
	for v := 0; v < 16; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if got := g.Diameter(); got != 4 {
		t.Errorf("diameter = %d, want 4", got)
	}
}

func TestBalancedTree(t *testing.T) {
	g := BalancedTree(2, 3)
	if g.N() != 15 {
		t.Errorf("N = %d, want 15", g.N())
	}
	if g.M() != 14 {
		t.Errorf("M = %d, want 14 (tree)", g.M())
	}
	if got := g.Diameter(); got != 6 {
		t.Errorf("diameter = %d, want 6", got)
	}
	if BalancedTree(3, 0).N() != 1 {
		t.Error("depth-0 tree should be a single node")
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Errorf("Q4: N=%d M=%d, want 16, 32", g.N(), g.M())
	}
	if got := g.Diameter(); got != 4 {
		t.Errorf("diameter = %d, want 4", got)
	}
}

func TestRandomConnected(t *testing.T) {
	rng := sim.NewRNG(7, 0)
	g := RandomConnected(50, 30, rng)
	if !g.Connected() {
		t.Error("random graph must be connected")
	}
	if g.M() < 49 {
		t.Errorf("M = %d, want ≥ 49", g.M())
	}
	// Determinism.
	g2 := RandomConnected(50, 30, sim.NewRNG(7, 0))
	e1, e2 := g.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatal("same seed should produce identical graphs")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("same seed should produce identical edge lists")
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3, "disc")
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	d := g.BFS(0)
	if d[2] != -1 {
		t.Errorf("unreachable node distance = %d, want -1", d[2])
	}
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	if g.Diameter() != -1 {
		t.Error("disconnected diameter should be -1")
	}
}

func TestSpanningTreeParents(t *testing.T) {
	g := Grid(3, 3)
	parents, err := g.SpanningTreeParents(4) // center
	if err != nil {
		t.Fatalf("SpanningTreeParents: %v", err)
	}
	if parents[4] != -1 {
		t.Error("root parent should be -1")
	}
	// Every non-root node's parent must be a neighbor and closer to root.
	dist := g.BFS(4)
	for v, p := range parents {
		if v == 4 {
			continue
		}
		if !g.HasEdge(v, p) {
			t.Errorf("parent[%d]=%d is not a neighbor", v, p)
		}
		if dist[p] != dist[v]-1 {
			t.Errorf("parent[%d]=%d not one hop closer", v, p)
		}
	}
	if _, err := g.SpanningTreeParents(-1); err == nil {
		t.Error("bad root should fail")
	}
	disc := New(2, "d")
	if _, err := disc.SpanningTreeParents(0); err == nil {
		t.Error("disconnected graph should fail")
	}
}

func TestAugmentStructure(t *testing.T) {
	base := Line(3)
	a, err := Augment(base, 4)
	if err != nil {
		t.Fatalf("Augment: %v", err)
	}
	if a.Net.N() != 12 {
		t.Errorf("N = %d, want 12", a.Net.N())
	}
	// Cluster edges: 3 * C(4,2) = 18; intercluster: 2 * 16 = 32.
	if a.Net.M() != 50 {
		t.Errorf("M = %d, want 50", a.Net.M())
	}
	// Every cluster is a clique.
	for c := 0; c < 3; c++ {
		m := a.Members(c)
		if len(m) != 4 {
			t.Fatalf("cluster %d has %d members", c, len(m))
		}
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if !a.Net.HasEdge(m[i], m[j]) {
					t.Errorf("cluster %d not a clique: {%d,%d} missing", c, m[i], m[j])
				}
			}
		}
	}
	// Adjacent clusters fully bipartite; non-adjacent not connected.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !a.Net.HasEdge(a.Member(0, i), a.Member(1, j)) {
				t.Error("missing intercluster edge 0–1")
			}
			if a.Net.HasEdge(a.Member(0, i), a.Member(2, j)) {
				t.Error("spurious edge between non-adjacent clusters 0–2")
			}
		}
	}
}

func TestAugmentMembership(t *testing.T) {
	a, err := Augment(Ring(5), 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < a.Net.N(); v++ {
		c := a.ClusterOf(v)
		i := a.IndexIn(v)
		if a.Member(c, i) != v {
			t.Fatalf("membership roundtrip failed for %d", v)
		}
	}
	if got := a.Clusters(); got != 5 {
		t.Errorf("Clusters = %d, want 5", got)
	}
	nc := a.NeighborClusters(0)
	if len(nc) != 2 {
		t.Errorf("ring cluster 0 should have 2 neighbor clusters, got %d", len(nc))
	}
}

func TestAugmentRejectsBadK(t *testing.T) {
	if _, err := Augment(Line(2), 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestAugmentK1IsBase(t *testing.T) {
	base := Grid(3, 2)
	a, err := Augment(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Net.N() != base.N() || a.Net.M() != base.M() {
		t.Error("k=1 augmentation should equal the base graph")
	}
}

func TestOverheadAccounting(t *testing.T) {
	// Theorem 1.1: with k = 3f+1, node overhead is O(f), edge overhead
	// O(f²) per base edge.
	f := 2
	k := 3*f + 1 // 7
	base := Grid(4, 4)
	a, err := Augment(base, k)
	if err != nil {
		t.Fatal(err)
	}
	o := a.Overhead()
	if o.Nodes != base.N()*k {
		t.Errorf("Nodes = %d, want %d", o.Nodes, base.N()*k)
	}
	wantEdges := base.N()*k*(k-1)/2 + base.M()*k*k
	if o.Edges != wantEdges {
		t.Errorf("Edges = %d, want %d", o.Edges, wantEdges)
	}
	if o.ClusterEdges+o.InterclusterEdges != o.Edges {
		t.Error("edge accounting inconsistent")
	}
	if o.NodeFactor != float64(k) {
		t.Errorf("NodeFactor = %v, want %v", o.NodeFactor, float64(k))
	}
}

func TestQuickAugmentInvariants(t *testing.T) {
	// Property: for random base graphs and k, |V| = k|𝒞| and
	// |E| = |𝒞|·k(k−1)/2 + |ℰ|·k².
	f := func(seed int64, rawN, rawExtra, rawK uint8) bool {
		n := 2 + int(rawN)%10
		extra := int(rawExtra) % 8
		k := 1 + int(rawK)%5
		base := RandomConnected(n, extra, sim.NewRNG(seed, 0))
		a, err := Augment(base, k)
		if err != nil {
			return false
		}
		wantEdges := base.N()*k*(k-1)/2 + base.M()*k*k
		return a.Net.N() == n*k && a.Net.M() == wantEdges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDiameterPreservedByAugmentation(t *testing.T) {
	// The hop diameter of G equals that of 𝒢 for k ≥ 2 on graphs with
	// diameter ≥ 1 (cluster hops are free via direct edges).
	base := Line(6)
	a, err := Augment(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := a.Net.Diameter(), base.Diameter(); got != want {
		t.Errorf("augmented diameter = %d, want %d", got, want)
	}
}

func BenchmarkAugmentGrid(b *testing.B) {
	base := Grid(8, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Augment(base, 7); err != nil {
			b.Fatal(err)
		}
	}
}
