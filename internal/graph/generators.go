package graph

import (
	"fmt"

	"ftgcs/internal/sim"
)

// Line returns the path graph 0–1–…–(n−1). Its diameter n−1 makes it the
// canonical worst case for gradient clock synchronization (cf. [15] and the
// paper's introduction: a clock wave "compresses" global skew onto one edge
// of a line under master/slave synchronization).
func Line(n int) *Graph {
	g := New(n, fmt.Sprintf("line-%d", n))
	for i := 0; i+1 < n; i++ {
		g.mustAddEdge(i, i+1)
	}
	return g
}

// Ring returns the cycle graph on n nodes.
func Ring(n int) *Graph {
	g := New(n, fmt.Sprintf("ring-%d", n))
	if n < 3 {
		for i := 0; i+1 < n; i++ {
			g.mustAddEdge(i, i+1)
		}
		return g
	}
	for i := 0; i < n; i++ {
		g.mustAddEdge(i, (i+1)%n)
	}
	return g
}

// Clique returns the complete graph on n nodes (the Lynch–Welch setting:
// D = 1).
func Clique(n int) *Graph {
	g := New(n, fmt.Sprintf("clique-%d", n))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.mustAddEdge(i, j)
		}
	}
	return g
}

// Star returns a star with node 0 at the center and n−1 leaves.
func Star(n int) *Graph {
	g := New(n, fmt.Sprintf("star-%d", n))
	for i := 1; i < n; i++ {
		g.mustAddEdge(0, i)
	}
	return g
}

// Grid returns the w×h grid graph; node (x, y) has ID y*w+x. Grids model
// the System-on-Chip / Network-on-Chip topologies the paper's introduction
// motivates.
func Grid(w, h int) *Graph {
	g := New(w*h, fmt.Sprintf("grid-%dx%d", w, h))
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.mustAddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				g.mustAddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return g
}

// Torus returns the w×h torus (grid with wraparound links).
func Torus(w, h int) *Graph {
	g := New(w*h, fmt.Sprintf("torus-%dx%d", w, h))
	id := func(x, y int) int { return ((y+h)%h)*w + (x+w)%w }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if w > 2 || x+1 < w {
				g.mustAddEdge(id(x, y), id(x+1, y))
			}
			if h > 2 || y+1 < h {
				g.mustAddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return g
}

// BalancedTree returns a complete b-ary tree with the given depth
// (depth 0 = single root).
func BalancedTree(branching, depth int) *Graph {
	if branching < 1 {
		branching = 1
	}
	// Count nodes: 1 + b + b² + … + b^depth.
	n := 1
	level := 1
	for d := 0; d < depth; d++ {
		level *= branching
		n += level
	}
	g := New(n, fmt.Sprintf("tree-b%d-d%d", branching, depth))
	// Children of node i are b*i+1 … b*i+b (heap layout).
	for i := 0; i < n; i++ {
		for c := 1; c <= branching; c++ {
			child := branching*i + c
			if child < n {
				g.mustAddEdge(i, child)
			}
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube on 2^d nodes.
func Hypercube(d int) *Graph {
	n := 1 << uint(d)
	g := New(n, fmt.Sprintf("hypercube-%d", d))
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << uint(b))
			if v < u {
				g.mustAddEdge(v, u)
			}
		}
	}
	return g
}

// RandomConnected returns a connected graph on n nodes with approximately
// extra additional random edges beyond a random spanning tree. The result
// is deterministic for a given rng stream.
func RandomConnected(n, extra int, rng *sim.RNG) *Graph {
	g := New(n, fmt.Sprintf("random-%d+%d", n, extra))
	// Random spanning tree: connect node i to a random earlier node.
	for i := 1; i < n; i++ {
		g.mustAddEdge(i, rng.Intn(i))
	}
	// Extra random edges, skipping duplicates.
	for e := 0; e < extra; e++ {
		for tries := 0; tries < 32; tries++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.mustAddEdge(u, v)
				break
			}
		}
	}
	return g
}
