// Package cluster implements ClusterSync (Algorithm 1 of the FTGCS paper):
// the Lynch–Welch variant with amortized clock corrections that keeps every
// cluster of k ≥ 3f+1 nodes synchronized despite up to f Byzantine members.
//
// Each round r has three phases of logical durations τ₁, τ₂, τ₃:
//
//	phase 1: wait; at its end (logical time T̄(r)+τ₁) broadcast a pulse.
//	phase 2: collect the pulses of cluster members (incl. the node's own,
//	         via loopback); at its end compute the approximate-agreement
//	         correction Δ_v(r) = (S^{f+1}+S^{k−f})/2 over the observed
//	         offsets τ_wv = L_v(t_wv) − L_v(t_vv).
//	phase 3: amortize the correction by setting
//	         δ_v = 1 − (1+1/ϕ)·Δ/(τ₃+Δ), so the nominal duration of the
//	         round becomes T+Δ (Lemma 3.1) while the logical clock stays
//	         continuous with rates in [1, ϑ_max].
//
// The same implementation doubles as the paper's estimate machinery
// (Section 3, "Cluster clocks and estimates"): a node w adjacent to cluster
// C runs a passive Instance (Active=false) that listens to C's pulses and
// simulates the algorithm without broadcasting; its logical clock is then
// the estimate L̃_wC with |L̃_wC − L_C| ≤ E (Corollary 3.5).
package cluster

import (
	"fmt"
	"math"

	"ftgcs/internal/approxagree"
	"ftgcs/internal/clockwork"
	"ftgcs/internal/graph"
	"ftgcs/internal/params"
	"ftgcs/internal/sim"
)

// Config assembles an Instance.
type Config struct {
	// Params carries τ₁, τ₂, τ₃, ϕ and friends.
	Params params.Params
	// F is the fault budget of the observed cluster.
	F int
	// Members are the node IDs of the observed cluster. For an active
	// member, the list includes Self. For an observer, Self must not be in
	// the list (the observer contributes its own virtual pulse on top).
	Members []graph.NodeID
	// Self is the node running this instance.
	Self graph.NodeID
	// Active nodes broadcast pulses; observers only simulate.
	Active bool

	// Clock is the logical clock driven by this instance. Active instances
	// drive the node's main clock; observers drive a dedicated estimate
	// clock sharing the node's hardware clock.
	Clock *clockwork.LogicalClock

	// Send broadcasts a pulse to all neighbors at time t (active only).
	Send func(t float64)
	// Loopback schedules delivery of the node's own (or virtual) pulse
	// back to this node through the delay model. Required.
	Loopback func(t float64)

	// OnRoundStart is invoked at the start of every round r ≥ 2, after
	// δ has been reset to 1 and before the next phase timer is scheduled.
	// The GCS layer sets γ here (Algorithm 2 acts "at-time L_v(t_v(r))").
	OnRoundStart func(r int, t float64)
	// OnPulse is invoked when the instance (would) broadcast(s) its round-r
	// pulse; metrics use it to compute pulse diameters ‖p(r)‖.
	OnPulse func(r int, t float64)
	// OnCorrection is invoked with each round's Δ_v(r).
	OnCorrection func(r int, delta float64)
}

// phase tracks where the instance is within its round.
type phase int

const (
	phaseWait    phase = iota + 1 // phase 1: before the pulse
	phaseCollect                  // phase 2: listening closes at compute
	phaseAdjust                   // phase 3: amortizing the correction
)

// Stats counts noteworthy conditions.
type Stats struct {
	Rounds             int
	Duplicates         uint64 // extra pulses from an already-heard sender
	LatePulses         uint64 // pulses during phase 3 buffered for next round
	StaleDropped       uint64 // offsets outside ±(τ₁+τ₂) discarded at compute
	MissingSelf        uint64 // own loopback pulse missing at compute time
	CorrectionClamped  uint64 // |Δ| > ϕτ₃ (improper execution)
	AgreementFailures  uint64 // > f missing values at compute time
	LastCorrection     float64
	AbsCorrectionSum   float64
	MaxAbsCorrection   float64
	CorrectionsApplied uint64
}

// Instance is one node's ClusterSync state machine (active or observer).
//
// Per-round state is held in dense sender-indexed slices (the member set is
// small and fixed for the lifetime of the instance), with a NodeID→index
// lookup built once at construction; the steady-state round loop performs
// no heap allocations.
type Instance struct {
	cfg       Config
	eng       *sim.Engine
	senders   []graph.NodeID         // Members ∪ {Self}
	senderIdx map[graph.NodeID]int32 // NodeID → index into senders
	selfIdx   int32                  // index of Self in senders

	round       int
	ph          phase
	roundStartL float64 // logical time T̄(r) at which round r began

	// recv and pending hold logical reception times indexed by sender
	// index; NaN marks "not received". pending buffers pulses that arrive
	// during phase 3 and seeds recv at the next round boundary (the two
	// buffers are swapped, never reallocated).
	recv    []float64
	pending []float64
	// offsets is the scratch buffer fed to approxagree.MidpointInPlace.
	offsets []float64

	stats Stats
}

// New validates the configuration and returns an unstarted instance.
func New(eng *sim.Engine, cfg Config) (*Instance, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("cluster: nil logical clock")
	}
	if cfg.Loopback == nil {
		return nil, fmt.Errorf("cluster: nil loopback")
	}
	if cfg.Active && cfg.Send == nil {
		return nil, fmt.Errorf("cluster: active instance needs Send")
	}
	selfIn := false
	for _, m := range cfg.Members {
		if m == cfg.Self {
			selfIn = true
			break
		}
	}
	if cfg.Active && !selfIn {
		return nil, fmt.Errorf("cluster: active node %d not in member list", cfg.Self)
	}
	if !cfg.Active && selfIn {
		return nil, fmt.Errorf("cluster: observer %d must not be in member list", cfg.Self)
	}
	senders := make([]graph.NodeID, 0, len(cfg.Members)+1)
	senders = append(senders, cfg.Members...)
	if !selfIn {
		senders = append(senders, cfg.Self)
	}
	n := len(senders)
	if n < 3*cfg.F+1 {
		return nil, fmt.Errorf("cluster: %d senders cannot tolerate f=%d (need ≥ %d)", n, cfg.F, 3*cfg.F+1)
	}
	senderIdx := make(map[graph.NodeID]int32, n)
	selfIdx := int32(-1)
	for i, s := range senders {
		if _, dup := senderIdx[s]; dup {
			return nil, fmt.Errorf("cluster: duplicate member %d", s)
		}
		senderIdx[s] = int32(i)
		if s == cfg.Self {
			selfIdx = int32(i)
		}
	}
	// One backing array for the three dense per-round buffers: systems
	// build one instance per (node, adjacent cluster), so shaving two
	// allocations per instance measurably cuts SystemBuild.
	buf := make([]float64, 3*n)
	in := &Instance{
		cfg:       cfg,
		eng:       eng,
		senders:   senders,
		senderIdx: senderIdx,
		selfIdx:   selfIdx,
		recv:      buf[:n:n],
		pending:   buf[n : 2*n : 2*n],
		offsets:   buf[2*n:],
	}
	clearTimes(in.recv)
	clearTimes(in.pending)
	return in, nil
}

// clearTimes resets a reception buffer to "nothing received".
func clearTimes(ts []float64) {
	for i := range ts {
		ts[i] = math.NaN()
	}
}

// Reset rewinds the instance to its unstarted state — round 0, empty
// reception buffers, zero counters — reusing every buffer New allocated.
// Any phase timers the instance had scheduled must be discarded by the
// caller (core resets the whole engine); the instance itself holds no
// event handles.
func (in *Instance) Reset() {
	in.round = 0
	in.ph = 0
	in.roundStartL = 0
	clearTimes(in.recv)
	clearTimes(in.pending)
	in.stats = Stats{}
}

// Start begins round 1 at the engine's current time (normally 0, matching
// the paper's simultaneous-initialization assumption).
func (in *Instance) Start() error {
	in.round = 1
	in.roundStartL = in.cfg.Clock.Value(in.eng.Now())
	in.ph = phaseWait
	in.cfg.Clock.SetDelta(in.eng.Now(), 1)
	return in.scheduleAtLogical(in.roundStartL+in.cfg.Params.Tau1, "pulse", stepPulse)
}

// Round returns the current round number (1-based; 0 before Start).
func (in *Instance) Round() int { return in.round }

// RoundStartLogical returns T̄(r), the logical time the current round began.
func (in *Instance) RoundStartLogical() float64 { return in.roundStartL }

// Clock exposes the instance's logical clock (the estimate L̃ for
// observers).
func (in *Instance) Clock() *clockwork.LogicalClock { return in.cfg.Clock }

// Stats returns a copy of the instance counters.
func (in *Instance) Stats() Stats { return in.stats }

// Round-boundary steps dispatched by boundaryEvent. Carrying the step as
// event data (instead of a method-value closure) keeps the per-round
// scheduling allocation-free.
const (
	stepPulse int64 = iota
	stepCompute
	stepRoundEnd
)

// boundaryEvent dispatches a scheduled round-boundary step.
func boundaryEvent(_ *sim.Engine, d sim.Data) {
	in := d.Ctx.(*Instance)
	switch d.I0 {
	case stepPulse:
		in.pulse()
	case stepCompute:
		in.compute()
	case stepRoundEnd:
		in.roundEnd()
	}
}

// scheduleAtLogical schedules the given step at the Newtonian time the
// instance's logical clock reaches target, assuming the rate multipliers
// stay fixed until then (which the round structure guarantees: δ and γ only
// change at the boundaries this function schedules).
func (in *Instance) scheduleAtLogical(target float64, label string, step int64) error {
	at, err := in.cfg.Clock.TimeWhen(in.eng.Now(), target)
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", label, err)
	}
	_, err = in.eng.ScheduleData(at, label, boundaryEvent, sim.Data{Ctx: in, I0: step})
	return err
}

// pulse fires at logical time T̄(r)+τ₁: broadcast (active) and loopback.
func (in *Instance) pulse() {
	t := in.eng.Now()
	in.ph = phaseCollect
	if in.cfg.Active {
		in.cfg.Send(t)
	}
	in.cfg.Loopback(t)
	if in.cfg.OnPulse != nil {
		in.cfg.OnPulse(in.round, t)
	}
	p := in.cfg.Params
	if err := in.scheduleAtLogical(in.roundStartL+p.Tau1+p.Tau2, "compute", stepCompute); err != nil {
		panic(err) // unreachable: target is ahead of the clock by construction
	}
}

// HandlePulse records a cluster pulse received at Newtonian time t.
func (in *Instance) HandlePulse(t float64, from graph.NodeID) {
	i, ok := in.senderIdx[from]
	if !ok {
		return
	}
	switch in.ph {
	case phaseWait, phaseCollect:
		if !math.IsNaN(in.recv[i]) {
			in.stats.Duplicates++
			return
		}
		in.recv[i] = in.cfg.Clock.Value(t)
	case phaseAdjust:
		// Early next-round pulse (possible from a fast sender, or from a
		// Byzantine one); buffer it for the next round.
		if !math.IsNaN(in.pending[i]) {
			in.stats.Duplicates++
			return
		}
		in.stats.LatePulses++
		in.pending[i] = in.cfg.Clock.Value(t)
	}
}

// compute fires at logical time T̄(r)+τ₁+τ₂: close the listening window,
// run approximate agreement, and amortize the correction over phase 3.
func (in *Instance) compute() {
	t := in.eng.Now()
	in.ph = phaseAdjust
	p := in.cfg.Params

	selfL := in.recv[in.selfIdx]
	var delta float64
	if math.IsNaN(selfL) {
		// Own loopback missing: cannot form offsets. Proper executions
		// exclude this (loopback delay ≤ d < τ₂); fail safe with Δ=0.
		in.stats.MissingSelf++
		delta = 0
	} else {
		// In a proper execution every same-round offset satisfies
		// |τ_wv| ≤ τ₁+τ₂ (the pulse and its receptions all fall within
		// one round's phases 1–2). Larger magnitudes are stale pulses
		// from a severely desynchronized round (e.g. buffered phase-3
		// arrivals while recovering from excess initial skew); treating
		// them as observations would create a runaway feedback, so they
		// are discarded as missing.
		plausible := p.Tau1 + p.Tau2
		offsets := in.offsets
		for i := range in.senders {
			lw := in.recv[i]
			if math.IsNaN(lw) {
				offsets[i] = math.Inf(1)
				continue
			}
			off := lw - selfL
			if math.Abs(off) > plausible {
				in.stats.StaleDropped++
				offsets[i] = math.Inf(1)
				continue
			}
			offsets[i] = off
		}
		var err error
		delta, err = approxagree.MidpointInPlace(offsets, in.cfg.F)
		if err != nil {
			in.stats.AgreementFailures++
			delta = 0
		}
	}

	// Proper execution requires |Δ| ≤ ϕ·τ₃ (Definition B.3); clamp beyond
	// it so δ stays in [0, 2/(1−ϕ)] even under attack.
	if limit := p.Phi * p.Tau3; math.Abs(delta) > limit {
		in.stats.CorrectionClamped++
		delta = math.Copysign(limit, delta)
	}

	in.stats.LastCorrection = delta
	in.stats.AbsCorrectionSum += math.Abs(delta)
	in.stats.MaxAbsCorrection = math.Max(in.stats.MaxAbsCorrection, math.Abs(delta))
	in.stats.CorrectionsApplied++
	if in.cfg.OnCorrection != nil {
		in.cfg.OnCorrection(in.round, delta)
	}

	// Algorithm 1, line 13: δ_v = 1 − (1+1/ϕ)·Δ/(τ₃+Δ).
	dv := 1 - (1+1/p.Phi)*delta/(p.Tau3+delta)
	in.cfg.Clock.SetDelta(t, dv)

	if err := in.scheduleAtLogical(in.roundStartL+p.T, "round-end", stepRoundEnd); err != nil {
		panic(err)
	}
}

// roundEnd fires at logical time T̄(r)+T: open round r+1.
func (in *Instance) roundEnd() {
	t := in.eng.Now()
	in.stats.Rounds++
	in.round++
	in.roundStartL += in.cfg.Params.T
	in.ph = phaseWait
	// Reset the listening state, seeding it with early arrivals: the two
	// buffers swap roles and the new pending buffer is wiped in place.
	in.recv, in.pending = in.pending, in.recv
	clearTimes(in.pending)
	// δ returns to 1 for phases 1–2 (Algorithm 1, line 3).
	in.cfg.Clock.SetDelta(t, 1)
	// GCS mode decision happens exactly at t_v(r) (Algorithm 2).
	if in.cfg.OnRoundStart != nil {
		in.cfg.OnRoundStart(in.round, t)
	}
	if err := in.scheduleAtLogical(in.roundStartL+in.cfg.Params.Tau1, "pulse", stepPulse); err != nil {
		panic(err)
	}
}
