package cluster

import (
	"math"
	"testing"

	"ftgcs/internal/clockwork"
	"ftgcs/internal/graph"
	"ftgcs/internal/params"
	"ftgcs/internal/sim"
	"ftgcs/internal/transport"
)

// testParams are fast-converging but honest parameters for unit tests.
func testParams(t testing.TB) params.Params {
	t.Helper()
	p, err := params.Derive(params.PresetConfig(params.Practical, 1e-3, 1e-3, 1e-4))
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	return p
}

// rig is a single-cluster simulation: k active members (nodes 0..k−1), one
// optional observer (node k), optional Byzantine members that send nothing
// unless the test drives them.
type rig struct {
	eng       *sim.Engine
	net       *transport.Network
	p         params.Params
	k, f      int
	instances []*Instance // index by node; nil for Byzantine members
	clocks    []*clockwork.LogicalClock
	hw        []*clockwork.HardwareClock
	observer  *Instance
	obsClock  *clockwork.LogicalClock
	pulses    map[int]map[graph.NodeID]float64 // round → node → Newtonian pulse time
}

type rigOpts struct {
	k, f       int
	byzantine  map[graph.NodeID]bool // members that run no instance
	rates      func(i int) clockwork.RateModel
	observer   bool
	seed       int64
	onRoundStr func(node graph.NodeID, r int, t float64)
}

func newRig(t testing.TB, p params.Params, o rigOpts) *rig {
	t.Helper()
	n := o.k
	if o.observer {
		n++
	}
	g := graph.Clique(n)
	eng := sim.NewEngine()
	net := transport.NewNetwork(eng, g, transport.UniformDelay{
		D: p.Delay, U: p.Uncertainty, Rng: sim.NewRNG(o.seed, 1000),
	})
	r := &rig{
		eng: eng, net: net, p: p, k: o.k, f: o.f,
		instances: make([]*Instance, n),
		clocks:    make([]*clockwork.LogicalClock, n),
		hw:        make([]*clockwork.HardwareClock, n),
		pulses:    make(map[int]map[graph.NodeID]float64),
	}
	members := make([]graph.NodeID, o.k)
	for i := range members {
		members[i] = i
	}
	rates := o.rates
	if rates == nil {
		rates = func(i int) clockwork.RateModel {
			if i%2 == 0 {
				return clockwork.Constant{Rate: 1}
			}
			return clockwork.Constant{Rate: 1 + p.Rho}
		}
	}
	for i := 0; i < o.k; i++ {
		i := i
		r.hw[i] = clockwork.NewHardwareClock(rates(i))
		r.clocks[i] = clockwork.NewLogicalClock(r.hw[i], p.Phi, p.Mu)
		if o.byzantine[i] {
			continue
		}
		inst, err := New(eng, Config{
			Params: p, F: o.f, Members: members, Self: i, Active: true,
			Clock: r.clocks[i],
			Send: func(t float64) {
				if err := net.Broadcast(t, i, transport.PulseClock); err != nil {
					panic(err)
				}
			},
			Loopback: func(t float64) {
				if err := net.Loopback(t, i, transport.PulseClock); err != nil {
					panic(err)
				}
			},
			OnPulse: func(round int, t float64) {
				if r.pulses[round] == nil {
					r.pulses[round] = make(map[graph.NodeID]float64)
				}
				r.pulses[round][i] = t
			},
			OnRoundStart: func(round int, t float64) {
				if o.onRoundStr != nil {
					o.onRoundStr(i, round, t)
				}
			},
		})
		if err != nil {
			t.Fatalf("New member %d: %v", i, err)
		}
		r.instances[i] = inst
		net.OnPulse(i, func(at float64, pu transport.Pulse) {
			inst.HandlePulse(at, pu.From)
		})
	}
	if o.observer {
		obs := o.k
		r.hw[obs] = clockwork.NewHardwareClock(clockwork.Constant{Rate: 1 + p.Rho/2})
		r.obsClock = clockwork.NewLogicalClock(r.hw[obs], p.Phi, p.Mu)
		r.clocks[obs] = r.obsClock
		inst, err := New(eng, Config{
			Params: p, F: o.f, Members: members, Self: obs, Active: false,
			Clock: r.obsClock,
			Loopback: func(t float64) {
				if err := net.Loopback(t, obs, transport.PulseClock); err != nil {
					panic(err)
				}
			},
		})
		if err != nil {
			t.Fatalf("New observer: %v", err)
		}
		r.observer = inst
		net.OnPulse(obs, func(at float64, pu transport.Pulse) {
			inst.HandlePulse(at, pu.From)
		})
	}
	return r
}

func (r *rig) start(t testing.TB) {
	t.Helper()
	for _, inst := range r.instances {
		if inst != nil {
			if err := inst.Start(); err != nil {
				t.Fatalf("Start: %v", err)
			}
		}
	}
	if r.observer != nil {
		if err := r.observer.Start(); err != nil {
			t.Fatalf("observer Start: %v", err)
		}
	}
}

// correctSkew returns the max pairwise logical skew among correct members
// at the engine's current time.
func (r *rig) correctSkew(byz map[graph.NodeID]bool) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	now := r.eng.Now()
	for i := 0; i < r.k; i++ {
		if byz[i] || r.instances[i] == nil {
			continue
		}
		v := r.clocks[i].Value(now)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return hi - lo
}

// pulseDiameter returns ‖p(r)‖ over correct members for a round.
func (r *rig) pulseDiameter(round int, byz map[graph.NodeID]bool) (float64, bool) {
	m := r.pulses[round]
	if m == nil {
		return 0, false
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	count := 0
	for i, pt := range m {
		if byz[i] {
			continue
		}
		lo = math.Min(lo, pt)
		hi = math.Max(hi, pt)
		count++
	}
	if count < 2 {
		return 0, false
	}
	return hi - lo, true
}

func runRounds(t testing.TB, r *rig, rounds int) {
	t.Helper()
	horizon := float64(rounds) * r.p.T * 1.05
	if err := r.eng.Run(horizon); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFaultFreeClusterStaysSynchronized(t *testing.T) {
	p := testParams(t)
	r := newRig(t, p, rigOpts{k: 4, f: 1, seed: 1})
	r.start(t)
	runRounds(t, r, 60)
	bound := p.ClusterSkewBound()
	if skew := r.correctSkew(nil); skew > bound {
		t.Errorf("skew %v exceeds Corollary 3.2 bound %v", skew, bound)
	}
	// All instances completed the expected number of rounds.
	for i, inst := range r.instances {
		if inst.Round() < 55 {
			t.Errorf("node %d only reached round %d", i, inst.Round())
		}
		st := inst.Stats()
		if st.AgreementFailures != 0 || st.MissingSelf != 0 {
			t.Errorf("node %d stats: %+v", i, st)
		}
	}
}

func TestPulseDiameterWithinE(t *testing.T) {
	p := testParams(t)
	r := newRig(t, p, rigOpts{k: 4, f: 1, seed: 2})
	r.start(t)
	runRounds(t, r, 50)
	// Proposition B.14: ‖p(r)‖ ≤ E for all rounds (perfect init).
	for round := 2; round <= 45; round++ {
		diam, ok := r.pulseDiameter(round, nil)
		if !ok {
			t.Fatalf("no pulse data for round %d", round)
		}
		if diam > p.EG {
			t.Errorf("round %d: ‖p‖ = %v > E = %v", round, diam, p.EG)
		}
	}
}

func TestLogicalPulseTimesMatchLemmaB6(t *testing.T) {
	// Lemma B.6: L_v(p_v(r)) = T̄(r) + τ₁ exactly.
	p := testParams(t)
	var got []float64
	r := newRig(t, p, rigOpts{k: 4, f: 1, seed: 3})
	// Instrument node 0 via the pulses map afterwards.
	r.start(t)
	runRounds(t, r, 10)
	for round := 1; round <= 8; round++ {
		pt, ok := r.pulses[round][0]
		if !ok {
			t.Fatalf("round %d: no pulse from node 0", round)
		}
		got = append(got, pt)
		want := float64(round-1)*p.T + p.Tau1
		// The clock anchor has advanced beyond pt, but logical pulse time
		// is reconstructible: pulses fire exactly when L reaches the
		// target, so compare via a fresh walk is impossible here; instead
		// check Newtonian spacing ≈ T within rate envelope.
		_ = want
	}
	for i := 1; i < len(got); i++ {
		gap := got[i] - got[i-1]
		if gap < p.T/p.ThetaMax-1e-9 || gap > p.T+p.Phi*p.Tau3+1e-9 {
			t.Errorf("pulse gap %v outside nominal window [%v, %v]",
				gap, p.T/p.ThetaMax, p.T+p.Phi*p.Tau3)
		}
	}
}

func TestClusterToleratesSilentByzantine(t *testing.T) {
	p := testParams(t)
	byz := map[graph.NodeID]bool{3: true} // node 3 never pulses (crash at 0)
	r := newRig(t, p, rigOpts{k: 4, f: 1, byzantine: byz, seed: 4})
	r.start(t)
	runRounds(t, r, 60)
	bound := p.ClusterSkewBound()
	if skew := r.correctSkew(byz); skew > bound {
		t.Errorf("skew %v exceeds bound %v with silent Byzantine", skew, bound)
	}
}

func TestClusterToleratesNoiseByzantine(t *testing.T) {
	p := testParams(t)
	byz := map[graph.NodeID]bool{1: true}
	r := newRig(t, p, rigOpts{k: 4, f: 1, byzantine: byz, seed: 5})
	// Node 1 sends pulses at random times to random subsets (equivocation).
	rng := sim.NewRNG(99, 0)
	var spam func(*sim.Engine)
	spam = func(e *sim.Engine) {
		for to := 0; to < 4; to++ {
			if to != 1 && rng.Bernoulli(0.7) {
				if err := r.net.SendTo(e.Now(), 1, to, transport.PulseClock); err != nil {
					t.Errorf("byz send: %v", err)
				}
			}
		}
		e.MustSchedule(e.Now()+rng.UniformIn(0.001, p.T/3), "byz", spam)
	}
	r.eng.MustSchedule(0.001, "byz", spam)
	r.start(t)
	runRounds(t, r, 60)
	bound := p.ClusterSkewBound()
	if skew := r.correctSkew(byz); skew > bound {
		t.Errorf("skew %v exceeds bound %v under pulse spam", skew, bound)
	}
}

func TestLargerClusterWithTwoByzantine(t *testing.T) {
	p := testParams(t)
	byz := map[graph.NodeID]bool{2: true, 5: true}
	r := newRig(t, p, rigOpts{k: 7, f: 2, byzantine: byz, seed: 6})
	r.start(t)
	runRounds(t, r, 40)
	if skew := r.correctSkew(byz); skew > p.ClusterSkewBound() {
		t.Errorf("skew %v exceeds bound %v (k=7, f=2)", skew, p.ClusterSkewBound())
	}
}

func TestObserverTracksClusterClock(t *testing.T) {
	p := testParams(t)
	r := newRig(t, p, rigOpts{k: 4, f: 1, observer: true, seed: 7})
	r.start(t)
	// Sample the estimate error at several times during the run.
	var maxErr float64
	sample := func(e *sim.Engine) {
		now := e.Now()
		est := r.obsClock.Value(now)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < r.k; i++ {
			v := r.clocks[i].Value(now)
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		clusterClock := (lo + hi) / 2
		maxErr = math.Max(maxErr, math.Abs(est-clusterClock))
	}
	for i := 1; i <= 40; i++ {
		r.eng.MustSchedule(float64(i)*p.T, "sample", sample)
	}
	runRounds(t, r, 45)
	// Corollary 3.5: |L̃_wC − L_C| ≤ E/2... with slack for |L̃−L_v| ≤ E.
	if maxErr > p.EG {
		t.Errorf("observer estimate error %v exceeds E = %v", maxErr, p.EG)
	}
}

func TestRoundStartHookFires(t *testing.T) {
	p := testParams(t)
	count := make(map[graph.NodeID]int)
	r := newRig(t, p, rigOpts{k: 4, f: 1, seed: 8,
		onRoundStr: func(node graph.NodeID, round int, tt float64) {
			count[node]++
		}})
	r.start(t)
	runRounds(t, r, 20)
	for i := 0; i < 4; i++ {
		if count[i] < 15 {
			t.Errorf("node %d round-start hook fired %d times, want ≥ 15", i, count[i])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	p := testParams(t)
	hw := clockwork.NewHardwareClock(clockwork.Constant{Rate: 1})
	lc := clockwork.NewLogicalClock(hw, p.Phi, p.Mu)
	noop := func(float64) {}
	base := Config{Params: p, F: 1, Members: []graph.NodeID{0, 1, 2, 3},
		Self: 0, Active: true, Clock: lc, Send: noop, Loopback: noop}

	if _, err := New(eng, base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	c := base
	c.Clock = nil
	if _, err := New(eng, c); err == nil {
		t.Error("nil clock accepted")
	}
	c = base
	c.Loopback = nil
	if _, err := New(eng, c); err == nil {
		t.Error("nil loopback accepted")
	}
	c = base
	c.Send = nil
	if _, err := New(eng, c); err == nil {
		t.Error("active without Send accepted")
	}
	c = base
	c.Self = 9
	if _, err := New(eng, c); err == nil {
		t.Error("active non-member accepted")
	}
	c = base
	c.Active = false
	c.Send = nil
	if _, err := New(eng, c); err == nil {
		t.Error("observer listed as member accepted")
	}
	c = base
	c.Members = []graph.NodeID{0, 1, 2}
	if _, err := New(eng, c); err == nil {
		t.Error("k=3 < 3f+1 accepted")
	}
}

func TestCorrectionsStayWithinProperBound(t *testing.T) {
	p := testParams(t)
	r := newRig(t, p, rigOpts{k: 4, f: 1, seed: 9})
	r.start(t)
	runRounds(t, r, 40)
	limit := p.Phi * p.Tau3
	for i, inst := range r.instances {
		st := inst.Stats()
		if st.CorrectionClamped != 0 {
			t.Errorf("node %d: %d clamped corrections in a proper execution", i, st.CorrectionClamped)
		}
		if st.MaxAbsCorrection > limit {
			t.Errorf("node %d: max |Δ| = %v > ϕτ₃ = %v", i, st.MaxAbsCorrection, limit)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	p := testParams(t)
	run := func() float64 {
		r := newRig(t, p, rigOpts{k: 4, f: 1, seed: 42})
		r.start(t)
		runRounds(t, r, 30)
		return r.clocks[2].Value(r.eng.Now())
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different trajectories: %v vs %v", a, b)
	}
}

func TestAmortizedRateEnvelope(t *testing.T) {
	// Lemma B.4: logical rates stay within [1, ϑ_max] throughout.
	p := testParams(t)
	r := newRig(t, p, rigOpts{k: 4, f: 1, seed: 10})
	r.start(t)
	var bad int
	sample := func(e *sim.Engine) {
		for i := 0; i < 4; i++ {
			rate := r.clocks[i].Rate(e.Now())
			if rate < 1-1e-12 || rate > p.ThetaMax+1e-12 {
				bad++
			}
		}
	}
	for i := 1; i < 200; i++ {
		r.eng.MustSchedule(float64(i)*p.T/7, "rate-sample", sample)
	}
	runRounds(t, r, 30)
	if bad > 0 {
		t.Errorf("%d rate samples outside [1, ϑ_max]", bad)
	}
}

func BenchmarkClusterRound(b *testing.B) {
	p, err := params.Derive(params.PresetConfig(params.Practical, 1e-3, 1e-3, 1e-4))
	if err != nil {
		b.Fatal(err)
	}
	r := newRig(b, p, rigOpts{k: 4, f: 1, seed: 1})
	r.start(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.eng.Run(float64(i+1) * p.T); err != nil {
			b.Fatal(err)
		}
	}
}
