package cluster

import (
	"math"
	"testing"

	"ftgcs/internal/clockwork"
	"ftgcs/internal/graph"
	"ftgcs/internal/sim"
)

// TestPropertyBoundsAcrossSeeds is the cluster-level robustness sweep:
// across random seeds, drift assignments and Byzantine subsets, the
// Corollary 3.2 bound must hold for the correct members.
func TestPropertyBoundsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	p := testParams(t)
	bound := p.ClusterSkewBound()
	for seed := int64(100); seed < 112; seed++ {
		rng := sim.NewRNG(seed, 0)
		k := 4 + 3*rng.Intn(2) // 4 or 7
		f := (k - 1) / 3
		byz := map[graph.NodeID]bool{}
		for len(byz) < f {
			byz[graph.NodeID(rng.Intn(k))] = true
		}
		rates := func(i int) clockwork.RateModel {
			switch rng.Intn(3) {
			case 0:
				return clockwork.Constant{Rate: 1 + rng.Float64()*p.Rho}
			case 1:
				return clockwork.Alternating{Lo: 1, Hi: 1 + p.Rho, Period: p.T * (1 + rng.Float64()*10)}
			default:
				return clockwork.NewRandomWalk(1, 1+p.Rho, p.T/2, sim.NewRNG(seed, 50+uint64(i)))
			}
		}
		r := newRig(t, p, rigOpts{k: k, f: f, byzantine: byz, rates: rates, seed: seed})
		r.start(t)
		runRounds(t, r, 35)
		if skew := r.correctSkew(byz); skew > bound {
			t.Errorf("seed %d (k=%d f=%d byz=%v): skew %v > bound %v", seed, k, f, byz, skew, bound)
		}
		// Pulse diameters of completed rounds stay below E.
		for round := 5; round <= 30; round++ {
			if diam, ok := r.pulseDiameter(round, byz); ok && diam > p.EG {
				t.Errorf("seed %d round %d: ‖p‖ %v > E %v", seed, round, diam, p.EG)
			}
		}
	}
}

// TestObserverBoundAcrossSeeds extends the sweep to the estimate error
// (Corollary 3.5).
func TestObserverBoundAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	p := testParams(t)
	for seed := int64(200); seed < 206; seed++ {
		r := newRig(t, p, rigOpts{k: 4, f: 1, observer: true, seed: seed})
		r.start(t)
		maxErr := 0.0
		sample := func(e *sim.Engine) {
			now := e.Now()
			est := r.obsClock.Value(now)
			lo, hi := math.Inf(1), math.Inf(-1)
			for i := 0; i < r.k; i++ {
				v := r.clocks[i].Value(now)
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
			maxErr = math.Max(maxErr, math.Abs(est-(lo+hi)/2))
		}
		for i := 5; i <= 30; i++ {
			r.eng.MustSchedule(float64(i)*p.T, "sample", sample)
		}
		runRounds(t, r, 35)
		if maxErr > p.EG {
			t.Errorf("seed %d: estimate error %v > E %v", seed, maxErr, p.EG)
		}
	}
}
