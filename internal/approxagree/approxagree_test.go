package approxagree

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"ftgcs/internal/sim"
)

func TestMidpointBasic(t *testing.T) {
	tests := []struct {
		name   string
		values []float64
		f      int
		want   float64
	}{
		{"f=0 two values", []float64{1, 3}, 0, 2},
		{"f=0 median-free", []float64{0, 10}, 0, 5},
		{"f=1 k=4", []float64{-100, 1, 3, 100}, 1, 2},
		{"f=1 k=4 extremes ignored", []float64{1, 2, 3, 1e9}, 1, 2.5},
		{"f=2 k=7", []float64{-1e9, -1e9, 1, 2, 3, 1e9, 1e9}, 2, 2},
		{"all equal", []float64{5, 5, 5, 5}, 1, 5},
		{"negative offsets", []float64{-4, -3, -2, -1}, 1, -2.5},
	}
	for _, tc := range tests {
		got, err := Midpoint(tc.values, tc.f)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: Midpoint = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestMidpointDoesNotModifyInput(t *testing.T) {
	in := []float64{5, 1, 4, 2}
	if _, err := Midpoint(in, 1); err != nil {
		t.Fatal(err)
	}
	if in[0] != 5 || in[1] != 1 || in[2] != 4 || in[3] != 2 {
		t.Errorf("input modified: %v", in)
	}
}

func TestMidpointErrors(t *testing.T) {
	if _, err := Midpoint([]float64{1, 2, 3}, 1); err == nil {
		t.Error("k=3 < 3f+1=4 should fail")
	}
	if _, err := Midpoint([]float64{1}, -1); err == nil {
		t.Error("negative f should fail")
	}
	if _, err := Midpoint([]float64{1, 2, math.NaN(), 4}, 1); err == nil {
		t.Error("NaN should fail")
	}
}

func TestMidpointMissingValues(t *testing.T) {
	inf := math.Inf(1)
	// One missing with f=1, k=4: fine.
	got, err := Midpoint([]float64{1, 3, inf, 2}, 1)
	if err != nil {
		t.Fatalf("one missing: %v", err)
	}
	if got != 2.5 { // sorted: 1,2,3,inf → S²=2, S³=3
		t.Errorf("got %v, want 2.5", got)
	}
	// Two missing with f=1: S^{k−f}=S³=inf → error.
	if _, err := Midpoint([]float64{1, 2, inf, inf}, 1); err == nil {
		t.Error("two missing with f=1 should fail")
	}
	// -Inf sentinel likewise rejected if it reaches a selected slot.
	if _, err := Midpoint([]float64{math.Inf(-1), math.Inf(-1), 1, 2}, 1); err == nil {
		t.Error("-Inf at selected position should fail")
	}
}

func TestValidityProperty(t *testing.T) {
	// Property (validity): with ≤ f arbitrary Byzantine values injected
	// among ≥ 2f+1 correct values, the midpoint lies within the range of
	// the correct values.
	rng := sim.NewRNG(42, 0)
	for trial := 0; trial < 2000; trial++ {
		f := rng.Intn(3) + 1
		k := 3*f + 1 + rng.Intn(4)
		correct := make([]float64, 0, k)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < k-f; i++ {
			v := rng.UniformIn(-10, 10)
			correct = append(correct, v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		all := append([]float64{}, correct...)
		for i := 0; i < f; i++ {
			// Byzantine values, including missing (+Inf).
			switch rng.Intn(3) {
			case 0:
				all = append(all, math.Inf(1))
			case 1:
				all = append(all, rng.UniformIn(-1e12, 1e12))
			default:
				all = append(all, rng.UniformIn(-10, 10))
			}
		}
		got, err := Midpoint(all, f)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got < lo-1e-12 || got > hi+1e-12 {
			t.Fatalf("trial %d: midpoint %v outside correct range [%v, %v]", trial, got, lo, hi)
		}
	}
}

func TestContractionProperty(t *testing.T) {
	// Property (2-contraction): two correct nodes seeing the same correct
	// values but different Byzantine injections produce midpoints within
	// spread/2 of each other.
	rng := sim.NewRNG(7, 0)
	for trial := 0; trial < 2000; trial++ {
		f := rng.Intn(3) + 1
		k := 3*f + 1
		correct := make([]float64, k-f)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range correct {
			correct[i] = rng.UniformIn(-5, 5)
			lo = math.Min(lo, correct[i])
			hi = math.Max(hi, correct[i])
		}
		spread := hi - lo
		mk := func() []float64 {
			all := append([]float64{}, correct...)
			for i := 0; i < f; i++ {
				if rng.Bernoulli(0.3) {
					all = append(all, math.Inf(1))
				} else {
					all = append(all, rng.UniformIn(-1e9, 1e9))
				}
			}
			return all
		}
		m1, err1 := Midpoint(mk(), f)
		m2, err2 := Midpoint(mk(), f)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: %v %v", trial, err1, err2)
		}
		if diff := math.Abs(m1 - m2); diff > Contraction(spread, 0)+1e-12 {
			t.Fatalf("trial %d: midpoints %v, %v differ by %v > spread/2 = %v",
				trial, m1, m2, diff, spread/2)
		}
	}
}

func TestCorrectRange(t *testing.T) {
	lo, hi, err := CorrectRange([]float64{-100, 1, 5, 100}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 1 || hi != 5 {
		t.Errorf("CorrectRange = [%v, %v], want [1, 5]", lo, hi)
	}
	if _, _, err := CorrectRange([]float64{1}, 1); err == nil {
		t.Error("too few values should fail")
	}
}

func TestMidpointWithinCorrectRangeQuick(t *testing.T) {
	// Property via testing/quick: Midpoint ∈ CorrectRange for arbitrary
	// finite inputs.
	f := func(raw []int16) bool {
		if len(raw) < 4 {
			return true
		}
		fCount := (len(raw) - 1) / 3
		values := make([]float64, len(raw))
		for i, r := range raw {
			values[i] = float64(r)
		}
		mid, err := Midpoint(values, fCount)
		if err != nil {
			return false
		}
		lo, hi, err := CorrectRange(values, fCount)
		if err != nil {
			return false
		}
		return mid >= lo && mid <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMidpointEqualsMedianOfSelectedPair(t *testing.T) {
	// Cross-check against a straightforward reference implementation.
	rng := sim.NewRNG(3, 0)
	for trial := 0; trial < 500; trial++ {
		f := rng.Intn(3)
		k := 3*f + 1 + rng.Intn(5)
		values := make([]float64, k)
		for i := range values {
			values[i] = rng.UniformIn(-100, 100)
		}
		got, err := Midpoint(values, f)
		if err != nil {
			t.Fatal(err)
		}
		ref := append([]float64{}, values...)
		sort.Float64s(ref)
		want := (ref[f] + ref[k-f-1]) / 2
		if got != want {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
	}
}

func BenchmarkMidpoint(b *testing.B) {
	values := []float64{3, -1, 4, 1, -5, 9, 2, 6, -5, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Midpoint(values, 3); err != nil {
			b.Fatal(err)
		}
	}
}
