// Package approxagree implements the approximate-agreement selection rule
// of Dolev et al. [6] that powers the Lynch–Welch clock correction
// (Algorithm 1, line 12 of the FTGCS paper):
//
//	Δ_v(r) = (S_v^{f+1} + S_v^{k−f}) / 2
//
// where S_v is the ascending multiset of k observed pulse offsets and
// S_v^i denotes its i-th element (1-based). Discarding the f smallest and
// f largest values guarantees that both selected elements lie within the
// range of values reported by correct nodes, no matter what up to f
// Byzantine nodes contribute; averaging the two yields the 2-contraction
// of the correct-value interval that drives convergence.
package approxagree

import (
	"errors"
	"fmt"
	"math"
	"slices"
)

// ErrTooFewValues indicates the multiset cannot tolerate f faults.
var ErrTooFewValues = errors.New("approxagree: need k ≥ 3f+1 values")

// ErrTooManyMissing indicates more than f values were missing/invalid, so
// the selected positions are not guaranteed to lie in the correct range.
var ErrTooManyMissing = errors.New("approxagree: more than f missing values")

// Midpoint computes (S^{f+1} + S^{k−f})/2 over the ascending sort of
// values. Missing observations must be encoded as +Inf (the convention used
// by ClusterSync for neighbors whose pulse never arrived); NaNs are
// rejected. The input slice is not modified.
func Midpoint(values []float64, f int) (float64, error) {
	s := make([]float64, len(values))
	copy(s, values)
	return MidpointInPlace(s, f)
}

// MidpointInPlace is Midpoint without the defensive copy: it sorts values
// in place and allocates nothing, so hot paths (ClusterSync's per-round
// correction) can reuse one scratch buffer across rounds. The slice is left
// in ascending order.
func MidpointInPlace(values []float64, f int) (float64, error) {
	k := len(values)
	if f < 0 {
		return 0, fmt.Errorf("approxagree: negative f=%d", f)
	}
	if k < 3*f+1 {
		return 0, fmt.Errorf("%w: k=%d f=%d", ErrTooFewValues, k, f)
	}
	for _, v := range values {
		if math.IsNaN(v) {
			return 0, errors.New("approxagree: NaN value")
		}
	}
	slices.Sort(values)
	lo := values[f]     // S^{f+1}, 1-based
	hi := values[k-f-1] // S^{k−f}, 1-based
	if math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return 0, ErrTooManyMissing
	}
	return (lo + hi) / 2, nil
}

// CorrectRange returns the interval [min, max] spanned by the values at
// trusted positions — i.e. after discarding the f smallest and f largest.
// Any Midpoint result lies inside this interval. Used by tests and the
// fault-injection experiments to verify the validity property.
func CorrectRange(values []float64, f int) (lo, hi float64, err error) {
	k := len(values)
	if k < 3*f+1 || f < 0 {
		return 0, 0, fmt.Errorf("%w: k=%d f=%d", ErrTooFewValues, k, f)
	}
	s := make([]float64, k)
	copy(s, values)
	slices.Sort(s)
	return s[f], s[k-f-1], nil
}

// Contraction bounds the spread of midpoints across nodes: for any two
// nodes whose multisets differ only in the contributions of ≤ f Byzantine
// senders and in per-value perturbations of at most jitter, the midpoints
// differ by at most spread/2 + jitter, where spread is the diameter of the
// correct values (Dolev et al. [6]; the engine of Lynch–Welch convergence).
// This helper computes that analytic bound for test assertions.
func Contraction(correctSpread, jitter float64) float64 {
	return correctSpread/2 + jitter
}
