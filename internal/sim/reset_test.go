package sim

import (
	"context"
	"testing"
)

// traceEvents schedules a fixed pattern of events (including one that is
// canceled and one that chains a child) and returns the firing trace after
// running to the horizon.
func traceEvents(t *testing.T, e *Engine) []string {
	t.Helper()
	var trace []string
	rec := func(name string) func(*Engine) {
		return func(eng *Engine) { trace = append(trace, name) }
	}
	e.MustSchedule(1, "a", rec("a"))
	e.MustSchedule(3, "c", rec("c"))
	e.MustSchedule(2, "b", func(eng *Engine) {
		trace = append(trace, "b")
		eng.MustSchedule(2.5, "b-child", rec("b-child"))
	})
	h := e.MustSchedule(2.75, "doomed", rec("doomed"))
	e.MustSchedule(1.5, "canceler", func(eng *Engine) {
		trace = append(trace, "canceler")
		eng.Cancel(h)
	})
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	return trace
}

// TestEngineResetReplaysIdentically runs the same schedule on a fresh
// engine and on a reset engine and requires identical traces, times and
// event counts — Reset must restore the exact (now, seq) ordering state of
// a new engine.
func TestEngineResetReplaysIdentically(t *testing.T) {
	fresh := NewEngine()
	want := traceEvents(t, fresh)

	e := NewEngine()
	first := traceEvents(t, e)
	e.Reset()
	if e.Now() != 0 {
		t.Fatalf("Now after reset = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after reset = %d, want 0", e.Pending())
	}
	if e.Processed() != 0 {
		t.Fatalf("Processed after reset = %d, want 0", e.Processed())
	}
	second := traceEvents(t, e)

	if len(first) != len(want) || len(second) != len(want) {
		t.Fatalf("trace lengths: fresh %d, first %d, second %d", len(want), len(first), len(second))
	}
	for i := range want {
		if first[i] != want[i] || second[i] != want[i] {
			t.Fatalf("trace[%d]: fresh %q, first %q, post-reset %q", i, want[i], first[i], second[i])
		}
	}
}

// TestEngineResetStaleHandles verifies generation-counter safety: a handle
// obtained before a Reset must neither cancel nor report live any event
// scheduled after the Reset, even when the slot is recycled.
func TestEngineResetStaleHandles(t *testing.T) {
	e := NewEngine()
	stale := make([]Handle, 0, 8)
	for i := 0; i < 8; i++ {
		stale = append(stale, e.MustSchedule(float64(i+1), "pre", func(*Engine) {}))
	}
	e.Reset()

	fired := 0
	for i := 0; i < 8; i++ {
		e.MustSchedule(float64(i+1), "post", func(*Engine) { fired++ })
	}
	for _, h := range stale {
		if !h.Canceled() {
			t.Fatalf("stale handle %+v not reported canceled after reset", h)
		}
		if e.Cancel(h) {
			t.Fatalf("stale handle %+v canceled a recycled slot", h)
		}
	}
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if fired != 8 {
		t.Fatalf("fired %d of 8 post-reset events (stale cancel leaked through)", fired)
	}
}

// TestEngineResetAfterCancelInterrupt exercises the cancel-then-reuse
// path: a run interrupted by context cancellation leaves pending events
// behind; Reset must discard all of them and support a clean replay.
func TestEngineResetAfterCancelInterrupt(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	count := 0
	// Enough events that cancellation (polled every ctxCheckInterval) is
	// guaranteed to land with plenty of the queue still pending.
	for i := 0; i < 4*ctxCheckInterval; i++ {
		e.MustSchedule(float64(i+1), "tick", func(*Engine) {
			count++
			if count == 10 {
				cancel()
			}
		})
	}
	if err := e.RunContext(ctx, 1e6); err == nil {
		t.Fatal("expected cancellation error")
	}
	if e.Pending() == 0 {
		t.Fatal("expected pending events after interrupt")
	}
	e.Reset()
	if e.Pending() != 0 || e.Now() != 0 || e.Processed() != 0 {
		t.Fatalf("dirty state after reset: pending=%d now=%v processed=%d",
			e.Pending(), e.Now(), e.Processed())
	}
	fired := 0
	e.MustSchedule(1, "fresh", func(*Engine) { fired++ })
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}
