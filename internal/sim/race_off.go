//go:build !race

package sim

// RaceEnabled reports whether the race detector is active. Exact
// allocation-count assertions are skipped under -race: the detector's
// instrumentation may heap-allocate on behalf of user code, which would
// turn the 0-allocs/event invariant tests into false failures.
const RaceEnabled = false
