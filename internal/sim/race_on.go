//go:build race

package sim

// RaceEnabled reports whether the race detector is active. See race_off.go.
const RaceEnabled = true
