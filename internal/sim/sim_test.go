package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	e := NewEngine()
	var got []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, at := range times {
		at := at
		if _, err := e.Schedule(at, "t", func(e *Engine) {
			got = append(got, e.Now())
		}); err != nil {
			t.Fatalf("Schedule(%v): %v", at, err)
		}
	}
	if err := e.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !sort.Float64sAreSorted(got) {
		t.Errorf("events out of order: %v", got)
	}
	if len(got) != len(times) {
		t.Errorf("ran %d events, want %d", len(got), len(times))
	}
	if e.Now() != 10 {
		t.Errorf("Now() = %v, want horizon 10", e.Now())
	}
}

func TestEngineTieBreaksByInsertionOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.MustSchedule(1.0, "tie", func(*Engine) { got = append(got, i) })
	}
	if err := e.Run(2); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break order violated at %d: got %v", i, got)
		}
	}
}

func TestEngineHorizonLeavesFutureEvents(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.MustSchedule(1, "a", func(*Engine) { ran++ })
	e.MustSchedule(5, "b", func(*Engine) { ran++ })
	if err := e.Run(2); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	if err := e.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran != 2 {
		t.Errorf("after second Run ran = %d, want 2", ran)
	}
}

func TestSchedulePastRejected(t *testing.T) {
	e := NewEngine()
	e.MustSchedule(5, "adv", func(*Engine) {})
	if err := e.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := e.Schedule(1, "past", func(*Engine) {}); err == nil {
		t.Error("scheduling in the past should fail")
	}
}

func TestScheduleInvalidInputs(t *testing.T) {
	e := NewEngine()
	if _, err := e.Schedule(1, "nil", nil); err == nil {
		t.Error("nil fn should fail")
	}
	if _, err := e.Schedule(math.NaN(), "nan", func(*Engine) {}); err == nil {
		t.Error("NaN time should fail")
	}
	if _, err := e.Schedule(math.Inf(1), "inf", func(*Engine) {}); err == nil {
		t.Error("Inf time should fail")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	h := e.MustSchedule(1, "c", func(*Engine) { ran = true })
	if !e.Cancel(h) {
		t.Error("first Cancel should return true")
	}
	if e.Cancel(h) {
		t.Error("second Cancel should return false")
	}
	if err := e.Run(2); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Error("canceled event ran")
	}
	if !h.Canceled() {
		t.Error("handle should report canceled")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []string
	ha := e.MustSchedule(1, "a", func(*Engine) { got = append(got, "a") })
	e.MustSchedule(2, "b", func(*Engine) { got = append(got, "b") })
	hc := e.MustSchedule(3, "c", func(*Engine) { got = append(got, "c") })
	e.MustSchedule(4, "d", func(*Engine) { got = append(got, "d") })
	e.Cancel(hc)
	e.Cancel(ha)
	if err := e.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 || got[0] != "b" || got[1] != "d" {
		t.Errorf("got %v, want [b d]", got)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func(*Engine)
	recurse = func(e *Engine) {
		depth++
		if depth < 10 {
			if _, err := e.After(1, "rec", recurse); err != nil {
				t.Errorf("After: %v", err)
			}
		}
	}
	e.MustSchedule(0, "start", recurse)
	if err := e.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if depth != 10 {
		t.Errorf("depth = %d, want 10", depth)
	}
}

func TestSameTimeScheduleRunsInSameInstant(t *testing.T) {
	e := NewEngine()
	var got []string
	e.MustSchedule(1, "outer", func(e *Engine) {
		got = append(got, "outer")
		// Scheduling at exactly Now is legal and runs this instant.
		e.MustSchedule(e.Now(), "inner", func(*Engine) { got = append(got, "inner") })
	})
	if err := e.Run(1); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 || got[1] != "inner" {
		t.Errorf("got %v, want [outer inner]", got)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.MustSchedule(1, "a", func(e *Engine) { ran++; e.Stop() })
	e.MustSchedule(2, "b", func(*Engine) { ran++ })
	if err := e.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran != 1 {
		t.Errorf("ran = %d, want 1 (stopped)", ran)
	}
}

func TestEventLimit(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(5)
	var tick func(*Engine)
	tick = func(e *Engine) {
		e.MustSchedule(e.Now()+1, "tick", tick)
	}
	e.MustSchedule(0, "tick", tick)
	err := e.Run(math.Inf(1) - 1)
	if err == nil {
		t.Fatal("expected event-limit error")
	}
}

func TestPeekTime(t *testing.T) {
	e := NewEngine()
	if got := e.PeekTime(); !math.IsInf(got, 1) {
		t.Errorf("empty PeekTime = %v, want +Inf", got)
	}
	e.MustSchedule(3, "x", func(*Engine) {})
	e.MustSchedule(1, "y", func(*Engine) {})
	if got := e.PeekTime(); got != 1 {
		t.Errorf("PeekTime = %v, want 1", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42, 7)
	b := NewRNG(42, 7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed+stream must produce identical sequences")
		}
	}
}

func TestRNGStreamIndependence(t *testing.T) {
	a := NewRNG(42, 1)
	b := NewRNG(42, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams look identical: %d/100 equal draws", same)
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	seen := make(map[int64]bool)
	for s := uint64(0); s < 1000; s++ {
		seed := DeriveSeed(1, s)
		if seen[seed] {
			t.Fatalf("seed collision at stream %d", s)
		}
		seen[seed] = true
	}
}

func TestUniformIn(t *testing.T) {
	r := NewRNG(1, 1)
	for i := 0; i < 1000; i++ {
		v := r.UniformIn(2, 5)
		if v < 2 || v > 5 {
			t.Fatalf("UniformIn out of range: %v", v)
		}
	}
	if got := r.UniformIn(3, 3); got != 3 {
		t.Errorf("degenerate interval: got %v, want 3", got)
	}
	if got := r.UniformIn(5, 2); got != 5 {
		t.Errorf("inverted interval should return lo: got %v", got)
	}
}

func TestQuickHeapOrdering(t *testing.T) {
	// Property: for any multiset of event times, execution order is
	// non-decreasing in time.
	f := func(raw []uint16) bool {
		e := NewEngine()
		for _, r := range raw {
			at := float64(r) / 16.0
			e.MustSchedule(at, "q", func(*Engine) {})
		}
		var prev float64 = -1
		for e.Step() {
			if e.Now() < prev {
				return false
			}
			prev = e.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		r := NewRNG(int64(i), 0)
		for j := 0; j < 1000; j++ {
			e.MustSchedule(r.Float64()*1000, "bench", func(*Engine) {})
		}
		if err := e.Run(1001); err != nil {
			b.Fatal(err)
		}
	}
}
