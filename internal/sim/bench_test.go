package sim

import "testing"

// benchTick re-arms itself forever; F0 < 0 disables the horizon check in
// tickData, so reuse that here with a large horizon instead.
func benchTick(e *Engine, d Data) {
	e.MustScheduleData(e.Now()+1, "tick", benchTick, d)
}

// BenchmarkEngineScheduleFire measures one pooled schedule→fire cycle
// through the data path (the transport delivery shape). Expected steady
// state: 0 allocs/op.
func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine()
	const lanes = 16
	for i := 0; i < lanes; i++ {
		e.MustScheduleData(float64(i)/lanes, "tick", benchTick, Data{})
	}
	e.Run(16) // warm pool
	b.ReportAllocs()
	b.ResetTimer()
	horizon := 16.0
	for i := 0; i < b.N; i += lanes {
		horizon++
		if err := e.Run(horizon); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineScheduleFireClosure is the same cycle through the legacy
// closure path: the event slot is pooled but each closure still allocates.
func BenchmarkEngineScheduleFireClosure(b *testing.B) {
	e := NewEngine()
	var tick func(*Engine)
	tick = func(e *Engine) { e.MustSchedule(e.Now()+1, "tick", tick) }
	const lanes = 16
	for i := 0; i < lanes; i++ {
		e.MustSchedule(float64(i)/lanes, "tick", tick)
	}
	e.Run(16)
	b.ReportAllocs()
	b.ResetTimer()
	horizon := 16.0
	for i := 0; i < b.N; i += lanes {
		horizon++
		if err := e.Run(horizon); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCancelReschedule measures the globalskew level-timer
// shape: cancel a pending event and re-arm it.
func BenchmarkEngineCancelReschedule(b *testing.B) {
	e := NewEngine()
	h := e.MustScheduleData(1, "timer", benchTick, Data{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cancel(h)
		h = e.MustScheduleData(e.Now()+1, "timer", benchTick, Data{})
	}
}
