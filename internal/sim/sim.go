// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a priority queue of timed events over a continuous
// (float64) Newtonian timeline. Events scheduled for the same instant are
// executed in insertion order, which — together with seeded random number
// streams (see rng.go) — makes every simulation run bit-for-bit
// reproducible for a given seed.
//
// All clock synchronization experiments in this repository run on top of
// this engine: node pulses, phase transitions, drift-model rate changes and
// metric samplers are all events.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is a point on the simulated Newtonian timeline, in seconds.
type Time = float64

// Event is a scheduled callback. The callback receives the engine so it can
// schedule follow-up events.
type Event struct {
	// At is the Newtonian time the event fires.
	At Time
	// Fn is invoked when the event fires. It must not be nil.
	Fn func(*Engine)
	// Label is an optional human-readable tag used in traces and error
	// messages.
	Label string

	seq   uint64 // insertion order, breaks time ties deterministically
	index int    // heap index; -1 once removed
}

// Handle identifies a scheduled event so it can be canceled.
type Handle struct {
	ev *Event
}

// Canceled reports whether the underlying event was canceled or already
// fired.
func (h Handle) Canceled() bool { return h.ev == nil || h.ev.index < 0 }

// eventQueue is a min-heap ordered by (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event scheduler. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool

	// processed counts events executed so far.
	processed uint64
	// maxEvents aborts runaway simulations; 0 means no limit.
	maxEvents uint64
}

// NewEngine returns an engine with the clock at time 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// SetEventLimit aborts Run with ErrEventLimit after n events (0 = unlimited).
func (e *Engine) SetEventLimit(n uint64) { e.maxEvents = n }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// ErrEventLimit is returned by Run when the configured event limit is hit.
var ErrEventLimit = errors.New("sim: event limit exceeded")

// ErrPast is returned when an event is scheduled before the current time.
var ErrPast = errors.New("sim: schedule time is in the past")

// Schedule enqueues fn to run at time at. Scheduling in the past is an
// error; scheduling exactly at the current time is allowed and runs after
// all previously scheduled events for this instant.
func (e *Engine) Schedule(at Time, label string, fn func(*Engine)) (Handle, error) {
	if fn == nil {
		return Handle{}, errors.New("sim: nil event function")
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		return Handle{}, fmt.Errorf("sim: invalid event time %v (%s)", at, label)
	}
	if at < e.now {
		return Handle{}, fmt.Errorf("%w: at=%v now=%v (%s)", ErrPast, at, e.now, label)
	}
	ev := &Event{At: at, Fn: fn, Label: label, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	return Handle{ev: ev}, nil
}

// MustSchedule is Schedule but panics on error. It is intended for internal
// scheduling where the time argument is known to be valid by construction;
// an error here indicates a bug in the caller, not a runtime condition.
func (e *Engine) MustSchedule(at Time, label string, fn func(*Engine)) Handle {
	h, err := e.Schedule(at, label, fn)
	if err != nil {
		panic(err)
	}
	return h
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, label string, fn func(*Engine)) (Handle, error) {
	return e.Schedule(e.now+d, label, fn)
}

// Cancel removes a scheduled event. Canceling an already-fired or
// already-canceled event is a no-op returning false.
func (e *Engine) Cancel(h Handle) bool {
	if h.ev == nil || h.ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, h.ev.index)
	h.ev.index = -1
	return true
}

// Stop makes the current Run return after the in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty, the
// horizon is passed, Stop is called, or the event limit is exceeded. The
// engine time is left at min(horizon, last event time); events scheduled
// after the horizon remain queued.
func (e *Engine) Run(horizon Time) error {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.At > horizon {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.At
		e.processed++
		if e.maxEvents > 0 && e.processed > e.maxEvents {
			return fmt.Errorf("%w: %d events", ErrEventLimit, e.processed)
		}
		next.Fn(e)
	}
	if e.now < horizon {
		e.now = horizon
	}
	return nil
}

// Step executes exactly one event if one is pending, returning whether an
// event ran.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	next := heap.Pop(&e.queue).(*Event)
	e.now = next.At
	e.processed++
	next.Fn(e)
	return true
}

// PeekTime returns the firing time of the next pending event, or +Inf when
// the queue is empty.
func (e *Engine) PeekTime() Time {
	if len(e.queue) == 0 {
		return math.Inf(1)
	}
	return e.queue[0].At
}
