// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a priority queue of timed events over a continuous
// (float64) Newtonian timeline. Events scheduled for the same instant are
// executed in insertion order, which — together with seeded random number
// streams (see rng.go) — makes every simulation run bit-for-bit
// reproducible for a given seed.
//
// All clock synchronization experiments in this repository run on top of
// this engine: node pulses, phase transitions, drift-model rate changes and
// metric samplers are all events.
//
// The queue is a hand-rolled indexed min-heap over a slab of pooled event
// structs with an embedded free list: in steady state (events fired ≈
// events scheduled) the engine performs zero heap allocations per event.
// Handles are generation-counted so Cancel on a recycled slot is safe.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// Time is a point on the simulated Newtonian timeline, in seconds.
type Time = float64

// Data is the payload of a data-scheduled event (see ScheduleData). It is
// sized so the common simulation payloads — a receiver pointer plus a few
// small integers/floats — fit without boxing: storing a pointer (or func)
// in Ctx and calling a top-level DataFunc allocates nothing.
type Data struct {
	// Ctx carries the receiver (a pointer or func value; pointer-shaped
	// values do not allocate when stored in an interface).
	Ctx any
	// I0, I1, I2 carry small integer payloads (node IDs, kinds, codes).
	I0, I1, I2 int64
	// F0 carries a float payload.
	F0 float64
}

// DataFunc is the callback of a data-scheduled event. Implementations
// should be top-level functions (not closures) so scheduling stays
// allocation-free.
type DataFunc func(e *Engine, d Data)

// event is one pooled slab entry. Exactly one of fn/dfn is non-nil while
// the slot is live.
type event struct {
	at    Time
	seq   uint64 // insertion order, breaks time ties deterministically
	fn    func(*Engine)
	dfn   DataFunc
	data  Data
	label string
	gen   uint32 // bumped on every release; stale Handles never match
	pos   int32  // index into Engine.heap; -1 once fired/canceled
}

// Handle identifies a scheduled event so it can be canceled. The zero
// Handle is valid and behaves as an already-canceled event.
type Handle struct {
	eng *Engine
	id  int32
	gen uint32
}

// Engine is a deterministic discrete-event scheduler. The zero value is not
// usable; construct with NewEngine.
//
// Cross-goroutine contract: an Engine is single-goroutine for everything
// except Stop and Progress, which may be called from any goroutine while a
// Run/RunContext is in flight. Stop is sticky for the current run only
// (Run/RunContext reset it on entry); Progress is a lock-free snapshot fed
// by atomic mirrors the event loop maintains.
type Engine struct {
	now Time
	// events is the pooled slab; heap holds slab indices ordered as a
	// min-heap by (at, seq); free is the stack of recycled slab indices.
	events []event
	heap   []int32
	free   []int32

	seq     uint64
	stopped atomic.Bool

	// processed counts events executed so far. Atomic so Progress can read
	// it from another goroutine while the loop runs.
	processed atomic.Uint64
	// nowBits mirrors now (as Float64bits) for cross-goroutine Progress
	// reads; the event loop is the only writer.
	nowBits atomic.Uint64
	// maxEvents aborts runaway simulations; 0 means no limit.
	maxEvents uint64
}

// NewEngine returns an engine with the clock at time 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// setNow advances the clock and its atomic mirror (see Progress).
func (e *Engine) setNow(t Time) {
	e.now = t
	e.nowBits.Store(math.Float64bits(t))
}

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed.Load() }

// Progress is a snapshot of a run: events executed and the current
// simulated time. It is safe to take from any goroutine while the engine
// runs; both fields advance monotonically within one run.
type Progress struct {
	// Events is the number of events executed so far.
	Events uint64
	// Now is the current simulated time.
	Now Time
}

// Progress returns a cross-goroutine-safe snapshot of the run. The two
// fields are read from independent atomics, so a snapshot taken mid-event
// may pair an event count with the timestamp of the adjacent event; each
// field is individually exact and monotone.
func (e *Engine) Progress() Progress {
	return Progress{
		Events: e.processed.Load(),
		Now:    math.Float64frombits(e.nowBits.Load()),
	}
}

// SetEventLimit aborts Run with ErrEventLimit after n events (0 = unlimited).
func (e *Engine) SetEventLimit(n uint64) { e.maxEvents = n }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// ErrEventLimit is returned by Run when the configured event limit is hit.
var ErrEventLimit = errors.New("sim: event limit exceeded")

// ErrPast is returned when an event is scheduled before the current time.
var ErrPast = errors.New("sim: schedule time is in the past")

// Canceled reports whether the underlying event was canceled or already
// fired. The zero Handle reports true. A handle to a recycled slot stays
// canceled forever: the slot's generation count no longer matches.
func (h Handle) Canceled() bool {
	if h.eng == nil || h.gen == 0 {
		return true
	}
	ev := &h.eng.events[h.id]
	return ev.gen != h.gen || ev.pos < 0
}

// validate ensures a schedulable (at, fn/dfn) pair.
func (e *Engine) validateAt(at Time, label string) error {
	if math.IsNaN(at) || math.IsInf(at, 0) {
		return fmt.Errorf("sim: invalid event time %v (%s)", at, label)
	}
	if at < e.now {
		return fmt.Errorf("%w: at=%v now=%v (%s)", ErrPast, at, e.now, label)
	}
	return nil
}

// alloc takes a slot from the free list (or grows the slab) and returns its
// index. The slot's gen is already advanced past any stale handle.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		id := e.free[n-1]
		e.free = e.free[:n-1]
		return id
	}
	e.events = append(e.events, event{gen: 1})
	return int32(len(e.events) - 1)
}

// release recycles a fired or canceled slot. References held by the slot
// are dropped so pooled events cannot keep closures or receivers alive.
func (e *Engine) release(id int32) {
	ev := &e.events[id]
	ev.gen++
	if ev.gen == 0 { // skip the reserved "stale" generation on wraparound
		ev.gen = 1
	}
	ev.fn = nil
	ev.dfn = nil
	ev.data = Data{}
	ev.label = ""
	ev.pos = -1
	e.free = append(e.free, id)
}

// push inserts slot id (with at/seq already set) into the heap.
func (e *Engine) push(id int32) {
	e.heap = append(e.heap, id)
	e.events[id].pos = int32(len(e.heap) - 1)
	e.siftUp(len(e.heap) - 1)
}

// less orders heap positions by (at, seq).
func (e *Engine) less(i, j int) bool {
	a, b := &e.events[e.heap[i]], &e.events[e.heap[j]]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) swap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.events[e.heap[i]].pos = int32(i)
	e.events[e.heap[j]].pos = int32(j)
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			return
		}
		e.swap(i, parent)
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && e.less(r, l) {
			least = r
		}
		if !e.less(least, i) {
			return
		}
		e.swap(i, least)
		i = least
	}
}

// removeAt deletes the heap entry at position pos, marking its slot
// off-heap (pos = -1) without releasing it.
func (e *Engine) removeAt(pos int) int32 {
	id := e.heap[pos]
	last := len(e.heap) - 1
	if pos != last {
		e.swap(pos, last)
	}
	e.heap = e.heap[:last]
	e.events[id].pos = -1
	if pos != last {
		e.siftDown(pos)
		e.siftUp(pos)
	}
	return id
}

// schedule is the common enqueue path.
func (e *Engine) schedule(at Time, label string, fn func(*Engine), dfn DataFunc, d Data) (Handle, error) {
	if err := e.validateAt(at, label); err != nil {
		return Handle{}, err
	}
	id := e.alloc()
	ev := &e.events[id]
	ev.at = at
	ev.seq = e.seq
	e.seq++
	ev.fn = fn
	ev.dfn = dfn
	ev.data = d
	ev.label = label
	e.push(id)
	return Handle{id: id, gen: ev.gen, eng: e}, nil
}

// Schedule enqueues fn to run at time at. Scheduling in the past is an
// error; scheduling exactly at the current time is allowed and runs after
// all previously scheduled events for this instant.
func (e *Engine) Schedule(at Time, label string, fn func(*Engine)) (Handle, error) {
	if fn == nil {
		return Handle{}, errors.New("sim: nil event function")
	}
	return e.schedule(at, label, fn, nil, Data{})
}

// ScheduleData enqueues fn(e, d) to run at time at. With a top-level fn and
// a pointer-shaped d.Ctx this path performs no heap allocation: the payload
// lives inside the pooled event. Ordering is identical to Schedule (one
// shared seq stream).
func (e *Engine) ScheduleData(at Time, label string, fn DataFunc, d Data) (Handle, error) {
	if fn == nil {
		return Handle{}, errors.New("sim: nil event function")
	}
	return e.schedule(at, label, nil, fn, d)
}

// MustSchedule is Schedule but panics on error. It is intended for internal
// scheduling where the time argument is known to be valid by construction;
// an error here indicates a bug in the caller, not a runtime condition.
func (e *Engine) MustSchedule(at Time, label string, fn func(*Engine)) Handle {
	h, err := e.Schedule(at, label, fn)
	if err != nil {
		panic(err)
	}
	return h
}

// MustScheduleData is ScheduleData but panics on error.
func (e *Engine) MustScheduleData(at Time, label string, fn DataFunc, d Data) Handle {
	h, err := e.ScheduleData(at, label, fn, d)
	if err != nil {
		panic(err)
	}
	return h
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, label string, fn func(*Engine)) (Handle, error) {
	return e.Schedule(e.now+d, label, fn)
}

// Cancel removes a scheduled event. Canceling an already-fired or
// already-canceled event is a no-op returning false; the generation count
// in the handle guarantees a recycled slot can never be canceled through a
// stale handle.
func (e *Engine) Cancel(h Handle) bool {
	if h.eng != e || h.gen == 0 || int(h.id) >= len(e.events) {
		return false
	}
	ev := &e.events[h.id]
	if ev.gen != h.gen || ev.pos < 0 {
		return false
	}
	e.removeAt(int(ev.pos))
	e.release(h.id)
	return true
}

// Reset rewinds the engine to its newly constructed state — time 0, empty
// queue, sequence counter 0, zero events processed — while keeping the
// event slab, heap array and free list allocated for reuse. Every pending
// event is released: slot generation counters survive the reset (they are
// bumped, never rewound), so Handles issued before a Reset remain
// permanently canceled and can never cancel an event scheduled after it.
// The configured event limit is retained.
//
// The slab-slot recycling order after a Reset differs from a fresh
// engine's append order, but slot identity is invisible to execution:
// events fire strictly by (time, seq), and Reset restarts seq at 0, so a
// reset engine replays a byte-identical event stream for the same inputs.
//
// Reset must not be called while Run/RunContext is in flight.
func (e *Engine) Reset() {
	for _, id := range e.heap {
		e.release(id)
	}
	e.heap = e.heap[:0]
	e.seq = 0
	e.setNow(0)
	e.processed.Store(0)
	e.stopped.Store(false)
}

// Stop makes the current Run/RunContext return after the in-flight event
// completes. It is safe to call from any goroutine — this is the
// cooperative cross-goroutine stop for runs driven without a Context.
// Like a context cancellation, a stopped run leaves simulated time where
// it halted rather than jumping to the horizon, so Progress reflects how
// far it actually got and a later Run/RunContext resumes deterministically.
// Run/RunContext clear the flag on entry, so a Stop that lands between
// runs only affects Step until the next Run.
func (e *Engine) Stop() { e.stopped.Store(true) }

// fire pops the root event and executes it. The slot is released before the
// callback runs (the callback may reuse it for a new event; stale handles
// are protected by the generation count).
func (e *Engine) fire() {
	id := e.removeAt(0)
	ev := &e.events[id]
	e.setNow(ev.at)
	fn, dfn, d := ev.fn, ev.dfn, ev.data
	e.release(id)
	e.processed.Add(1)
	if dfn != nil {
		dfn(e, d)
	} else {
		fn(e)
	}
}

// ctxCheckInterval is how many events RunContext executes between context
// polls. Events are microsecond-scale, so cancellation latency stays well
// under a millisecond while the check cost amortizes to nothing.
const ctxCheckInterval = 256

// Run executes events in timestamp order until the queue is empty, the
// horizon is passed, Stop is called, or the event limit is exceeded. The
// engine time is left at min(horizon, last event time); events scheduled
// after the horizon remain queued.
func (e *Engine) Run(horizon Time) error {
	return e.run(nil, horizon)
}

// RunContext is Run with cooperative cancellation: the context is polled
// every ctxCheckInterval events, and a done context aborts the run with
// ctx.Err() after the in-flight event completes. On cancellation the
// engine time stays where the run stopped (it does NOT jump to the
// horizon), so Progress reflects how far the run actually got; the queue
// is left intact and a later Run/RunContext resumes deterministically.
// Event execution and ordering are byte-identical to Run for the prefix
// that completes — cancellation only decides where the prefix ends.
func (e *Engine) RunContext(ctx context.Context, horizon Time) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return e.run(ctx, horizon)
}

// run is the shared event loop; ctx may be nil (plain Run).
func (e *Engine) run(ctx context.Context, horizon Time) error {
	e.stopped.Store(false)
	countdown := ctxCheckInterval
	for len(e.heap) > 0 && !e.stopped.Load() {
		if ctx != nil {
			countdown--
			if countdown <= 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
				countdown = ctxCheckInterval
			}
		}
		next := &e.events[e.heap[0]]
		if next.at > horizon {
			break
		}
		if e.maxEvents > 0 && e.processed.Load()+1 > e.maxEvents {
			id := e.removeAt(0)
			e.setNow(e.events[id].at)
			e.release(id)
			e.processed.Add(1)
			return fmt.Errorf("%w: %d events", ErrEventLimit, e.processed.Load())
		}
		e.fire()
	}
	// A stopped run leaves time where it halted — like a canceled one —
	// so Progress never reports an interrupted run as complete and events
	// still queued before the horizon cannot fire in the past on resume.
	if e.now < horizon && !e.stopped.Load() {
		e.setNow(horizon)
	}
	return nil
}

// Step executes exactly one event if one is pending, returning whether an
// event ran. Like Run, it honors Stop (no event runs after Stop until the
// next Run resets it) and the configured event limit.
func (e *Engine) Step() bool {
	if e.stopped.Load() || len(e.heap) == 0 {
		return false
	}
	if e.maxEvents > 0 && e.processed.Load() >= e.maxEvents {
		return false
	}
	e.fire()
	return true
}

// PeekTime returns the firing time of the next pending event, or +Inf when
// the queue is empty.
func (e *Engine) PeekTime() Time {
	if len(e.heap) == 0 {
		return math.Inf(1)
	}
	return e.events[e.heap[0]].at
}
