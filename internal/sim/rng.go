package sim

import "math/rand"

// RNG is a deterministic random stream. Every simulation component draws
// from its own stream derived from the master seed, so adding or removing
// a component does not perturb the randomness seen by others.
//
// Seeding is lazy: math/rand's source costs ~5KB and a several-hundred-
// step initialization loop, so the underlying generator is materialized on
// the first draw. Streams that are wired but never drawn from (per-node
// drift streams under deterministic rate models — the common case) cost
// one small struct and nothing else. The draw sequence is byte-identical
// to an eagerly seeded rand.New(rand.NewSource(seed)).
type RNG struct {
	rand   *rand.Rand
	seed   int64
	seeded bool // rand is positioned at the start of stream `seed`
}

// splitMix64 advances a 64-bit state and returns a well-mixed output. It is
// the standard SplitMix64 generator, used here only to derive independent
// stream seeds from (masterSeed, streamID) pairs.
func splitMix64(state uint64) uint64 {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed deterministically mixes a master seed with a stream identifier.
func DeriveSeed(master int64, stream uint64) int64 {
	mixed := splitMix64(uint64(master) ^ splitMix64(stream))
	return int64(mixed)
}

// NewRNG returns an independent random stream for the given component.
func NewRNG(master int64, stream uint64) *RNG {
	return &RNG{seed: DeriveSeed(master, stream)}
}

// Reseed rewinds the stream in place to a fresh derivation of (master,
// stream): subsequent draws are byte-identical to a new NewRNG(master,
// stream). The underlying source (if one was ever materialized) is
// reused, so arena-style system resets re-derive every stream without
// reallocating.
func (r *RNG) Reseed(master int64, stream uint64) {
	r.seed = DeriveSeed(master, stream)
	r.seeded = false
}

// src returns the underlying generator, seeding it on first use (or first
// use after a Reseed).
func (r *RNG) src() *rand.Rand {
	if !r.seeded {
		if r.rand == nil {
			r.rand = rand.New(rand.NewSource(r.seed))
		} else {
			r.rand.Seed(r.seed)
		}
		r.seeded = true
	}
	return r.rand
}

// Float64 returns a sample uniformly distributed in [0, 1).
func (r *RNG) Float64() float64 { return r.src().Float64() }

// Intn returns a uniform sample from [0, n); it panics when n ≤ 0.
func (r *RNG) Intn(n int) int { return r.src().Intn(n) }

// UniformIn returns a sample uniformly distributed in [lo, hi].
func (r *RNG) UniformIn(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + r.Float64()*(hi-lo)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}
