package sim

import "math/rand"

// RNG wraps a deterministic random source. Every simulation component draws
// from its own stream derived from the master seed, so adding or removing a
// component does not perturb the randomness seen by others.
type RNG struct {
	*rand.Rand
}

// splitMix64 advances a 64-bit state and returns a well-mixed output. It is
// the standard SplitMix64 generator, used here only to derive independent
// stream seeds from (masterSeed, streamID) pairs.
func splitMix64(state uint64) uint64 {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed deterministically mixes a master seed with a stream identifier.
func DeriveSeed(master int64, stream uint64) int64 {
	mixed := splitMix64(uint64(master) ^ splitMix64(stream))
	return int64(mixed)
}

// NewRNG returns an independent random stream for the given component.
func NewRNG(master int64, stream uint64) *RNG {
	return &RNG{Rand: rand.New(rand.NewSource(DeriveSeed(master, stream)))}
}

// UniformIn returns a sample uniformly distributed in [lo, hi].
func (r *RNG) UniformIn(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + r.Float64()*(hi-lo)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}
