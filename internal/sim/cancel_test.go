package sim

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// selfFeeding schedules an event chain that never drains: each firing
// schedules the next, dt apart. Returns the counter of fired events.
func selfFeeding(e *Engine, dt float64) *int {
	fired := new(int)
	var tick func(e *Engine)
	tick = func(e *Engine) {
		*fired++
		e.MustSchedule(e.Now()+dt, "tick", tick)
	}
	e.MustSchedule(dt, "tick", tick)
	return fired
}

// TestStopFromAnotherGoroutine is the -race regression for the Stop
// contract: a plain-bool stop flag made this a data race; the atomic flag
// makes concurrent Stop safe and the run terminate promptly.
func TestStopFromAnotherGoroutine(t *testing.T) {
	e := NewEngine()
	selfFeeding(e, 1e-6)
	done := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		done <- e.Run(1e18) // effectively unbounded without Stop
	}()
	<-started
	time.Sleep(2 * time.Millisecond)
	e.Stop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v, want nil after Stop", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cross-goroutine Stop")
	}
}

// TestRunContextCancelFromAnotherGoroutine cancels a running engine via
// context and checks the run aborts with ctx.Err(), leaving time where
// the run stopped rather than at the horizon.
func TestRunContextCancelFromAnotherGoroutine(t *testing.T) {
	e := NewEngine()
	selfFeeding(e, 1e-6)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- e.RunContext(ctx, 1e18) }()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return after cancel")
	}
	if e.Now() >= 1e18 {
		t.Fatalf("engine time jumped to the horizon (%g) on cancellation", e.Now())
	}
	if e.Pending() == 0 {
		t.Fatal("cancellation drained the queue; pending events must survive")
	}
}

// TestRunContextPreCanceled: an already-done context aborts before any
// event fires.
func TestRunContextPreCanceled(t *testing.T) {
	e := NewEngine()
	fired := selfFeeding(e, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.RunContext(ctx, 100); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if *fired != 0 {
		t.Fatalf("fired %d events under a pre-canceled context, want 0", *fired)
	}
}

// TestRunContextResumesDeterministically: canceling a run and resuming it
// fires exactly the events an uninterrupted run fires, in the same order
// at the same times.
func TestRunContextResumesDeterministically(t *testing.T) {
	trace := func(interrupt bool) []Time {
		e := NewEngine()
		var times []Time
		var tick func(e *Engine)
		tick = func(e *Engine) {
			times = append(times, e.Now())
			if len(times) < 5000 {
				e.MustSchedule(e.Now()+1e-3, "tick", tick)
			}
		}
		e.MustSchedule(1e-3, "tick", tick)
		if interrupt {
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(time.Millisecond)
				cancel()
			}()
			err := e.RunContext(ctx, 100)
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("RunContext = %v", err)
			}
		}
		if err := e.Run(100); err != nil {
			t.Fatalf("Run = %v", err)
		}
		return times
	}
	full, resumed := trace(false), trace(true)
	if len(full) != len(resumed) {
		t.Fatalf("event counts differ: %d vs %d", len(full), len(resumed))
	}
	for i := range full {
		if full[i] != resumed[i] {
			t.Fatalf("event %d fired at %g resumed vs %g uninterrupted", i, resumed[i], full[i])
		}
	}
}

// TestProgressConcurrentMonotone polls Progress from another goroutine
// while the engine runs; every sample must be monotone and the final
// snapshot must match the terminal engine state.
func TestProgressConcurrentMonotone(t *testing.T) {
	e := NewEngine()
	var count int
	var tick func(e *Engine)
	tick = func(e *Engine) {
		count++
		if count < 200000 {
			e.MustSchedule(e.Now()+1e-6, "tick", tick)
		}
	}
	e.MustSchedule(1e-6, "tick", tick)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last Progress
		for {
			select {
			case <-stop:
				return
			default:
			}
			p := e.Progress()
			if p.Events < last.Events || p.Now < last.Now {
				t.Errorf("progress went backwards: %+v after %+v", p, last)
				return
			}
			last = p
		}
	}()
	if err := e.Run(100); err != nil {
		t.Fatalf("Run = %v", err)
	}
	close(stop)
	wg.Wait()
	p := e.Progress()
	if p.Events != e.Processed() {
		t.Fatalf("final Progress.Events = %d, Processed = %d", p.Events, e.Processed())
	}
	if p.Now != e.Now() {
		t.Fatalf("final Progress.Now = %g, Now = %g", p.Now, e.Now())
	}
}
