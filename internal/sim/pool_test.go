package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// tickData is a self-rescheduling DataFunc: it re-arms itself one second
// later until the time in F0 is reached. Top-level so scheduling it is
// allocation-free.
func tickData(e *Engine, d Data) {
	c := d.Ctx.(*int)
	*c++
	if e.Now()+1 <= d.F0 {
		e.MustScheduleData(e.Now()+1, "tick", tickData, d)
	}
}

// TestPoolReuseCycle drives one slot through the full
// scheduled→fired→rescheduled→canceled→rescheduled life cycle and checks
// Handle semantics at every step.
func TestPoolReuseCycle(t *testing.T) {
	e := NewEngine()
	fired := 0
	h1 := e.MustSchedule(1, "a", func(*Engine) { fired++ })
	if h1.Canceled() {
		t.Fatal("pending handle reports Canceled")
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if !h1.Canceled() {
		t.Error("fired handle must report Canceled")
	}
	if e.Cancel(h1) {
		t.Error("Cancel after fire must return false")
	}

	// The freed slot is recycled by the next schedule; the stale handle
	// must not be able to touch the new event.
	h2 := e.MustSchedule(11, "b", func(*Engine) { fired++ })
	if h2.Canceled() {
		t.Fatal("fresh handle reports Canceled")
	}
	if e.Cancel(h1) {
		t.Error("stale handle canceled a recycled slot")
	}
	if h2.Canceled() {
		t.Error("recycled event was disturbed by a stale handle")
	}

	// Cancel the live event, then reuse the slot again.
	if !e.Cancel(h2) {
		t.Fatal("Cancel of a pending event must return true")
	}
	if !h2.Canceled() {
		t.Error("canceled handle must report Canceled")
	}
	if e.Cancel(h2) {
		t.Error("double Cancel must return false")
	}
	h3 := e.MustSchedule(12, "c", func(*Engine) { fired++ })
	if err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (canceled event must not fire, rescheduled one must)", fired)
	}
	if !h3.Canceled() {
		t.Error("fired handle must report Canceled")
	}
	if got := e.Pending(); got != 0 {
		t.Errorf("Pending = %d, want 0", got)
	}
}

// TestPoolNoDoubleFree checks that canceling the handle of an event that
// already fired — after its slot was recycled and fired again — is a no-op
// at every generation.
func TestPoolNoDoubleFree(t *testing.T) {
	e := NewEngine()
	var handles []Handle
	fired := 0
	for round := 0; round < 5; round++ {
		h := e.MustSchedule(float64(round+1), "cycle", func(*Engine) { fired++ })
		handles = append(handles, h)
		if err := e.Run(float64(round + 1)); err != nil {
			t.Fatal(err)
		}
		// Every retained handle from every earlier generation is stale.
		for i, old := range handles {
			if !old.Canceled() {
				t.Fatalf("round %d: handle %d not Canceled", round, i)
			}
			if e.Cancel(old) {
				t.Fatalf("round %d: stale handle %d canceled something", round, i)
			}
		}
	}
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
	if free, slab := len(e.free), len(e.events); free != slab {
		t.Errorf("after drain: %d free slots of %d — a slot leaked", free, slab)
	}
}

// TestPoolCancelDuringCallback cancels a sibling event from inside a
// callback and checks the sibling never fires and its slot is recycled
// cleanly.
func TestPoolCancelDuringCallback(t *testing.T) {
	e := NewEngine()
	var victim Handle
	victimFired := false
	victim = e.MustSchedule(2, "victim", func(*Engine) { victimFired = true })
	e.MustSchedule(1, "killer", func(e *Engine) {
		if !e.Cancel(victim) {
			t.Error("killer could not cancel pending victim")
		}
	})
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if victimFired {
		t.Error("canceled event fired")
	}
	if !victim.Canceled() {
		t.Error("victim handle must report Canceled")
	}
}

// TestCancelForeignHandle checks that a handle from one engine cannot
// cancel an event on another engine, even though slab ids and generations
// are dense and near-identical across engines running similar schedules.
func TestCancelForeignHandle(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	ha := a.MustSchedule(1, "a", func(*Engine) {})
	fired := false
	hb := b.MustSchedule(1, "b", func(*Engine) { fired = true })
	if b.Cancel(ha) {
		t.Error("engine B canceled a handle owned by engine A")
	}
	if hb.Canceled() {
		t.Error("foreign cancel disturbed engine B's own event")
	}
	if err := b.Run(10); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("engine B's event was lost to a foreign handle cancel")
	}
	if !a.Cancel(ha) {
		t.Error("owning engine failed to cancel its own pending event")
	}
}

// TestPoolStressAgainstModel runs a randomized schedule/cancel workload and
// checks the engine fires exactly the non-canceled events in (At, seq)
// order — i.e. pooling never reorders, drops, duplicates or resurrects an
// event.
func TestPoolStressAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewEngine()

	type modelEvent struct {
		at       float64
		id       int
		canceled bool
	}
	var model []modelEvent
	var handles []Handle
	var firedOrder []int

	nextID := 0
	scheduleOne := func() {
		at := e.Now() + rng.Float64()*10
		id := nextID
		nextID++
		h := e.MustSchedule(at, "stress", func(*Engine) { firedOrder = append(firedOrder, id) })
		model = append(model, modelEvent{at: at, id: id})
		handles = append(handles, h)
	}

	for round := 0; round < 200; round++ {
		for i := 0; i < rng.Intn(8); i++ {
			scheduleOne()
		}
		// Cancel a few random events (mirroring successful cancels in the
		// model; canceling fired or already-canceled events is a no-op).
		for i := 0; i < rng.Intn(3) && len(model) > 0; i++ {
			j := rng.Intn(len(model))
			if e.Cancel(handles[j]) {
				model[j].canceled = true
			}
		}
		if err := e.Run(e.Now() + rng.Float64()*5); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(1e9); err != nil { // drain
		t.Fatal(err)
	}

	// Expected firing order: surviving events sorted by (at, insertion id)
	// — seq increases with id since each schedule takes the next seq.
	var want []int
	var alive []modelEvent
	for _, m := range model {
		if !m.canceled {
			alive = append(alive, m)
		}
	}
	sort.SliceStable(alive, func(i, j int) bool {
		if alive[i].at != alive[j].at {
			return alive[i].at < alive[j].at
		}
		return alive[i].id < alive[j].id
	})
	for _, m := range alive {
		want = append(want, m.id)
	}
	if len(firedOrder) != len(want) {
		t.Fatalf("fired %d events, want %d", len(firedOrder), len(want))
	}
	for i := range want {
		if firedOrder[i] != want[i] {
			t.Fatalf("position %d: fired id %d, want %d", i, firedOrder[i], want[i])
		}
	}
	if free, slab := len(e.free), len(e.events); free != slab {
		t.Errorf("after drain: %d free slots of %d — a slot leaked", free, slab)
	}
}

// TestStepHonorsLimitAndStop covers the former Step bypasses: Run's event
// limit and Stop must gate single-stepping too.
func TestStepHonorsLimitAndStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 0; i < 5; i++ {
		e.MustSchedule(float64(i+1), "s", func(*Engine) { fired++ })
	}
	e.SetEventLimit(3)
	for e.Step() {
	}
	if fired != 3 {
		t.Errorf("Step executed %d events past a limit of 3", fired)
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}

	e.SetEventLimit(0)
	e.Stop()
	if e.Step() {
		t.Error("Step ran an event after Stop")
	}
	if err := e.Run(100); err != nil { // Run resets the stop flag
		t.Fatal(err)
	}
	if fired != 5 {
		t.Errorf("fired = %d, want 5 after Run", fired)
	}
}

// TestRunZeroAllocSteadyState pins the tentpole invariant: once the pool is
// warm, the schedule→fire cycle performs zero heap allocations per event.
func TestRunZeroAllocSteadyState(t *testing.T) {
	if RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	e := NewEngine()
	count := 0
	const horizon = 1 << 20
	for i := 0; i < 8; i++ {
		e.MustScheduleData(float64(i)/8, "tick", tickData, Data{Ctx: &count, F0: horizon})
	}
	if err := e.Run(64); err != nil { // warm the slab, heap and free list
		t.Fatal(err)
	}
	next := 65.0
	avg := testing.AllocsPerRun(100, func() {
		if err := e.Run(next); err != nil {
			t.Fatal(err)
		}
		next++
	})
	if avg != 0 {
		t.Errorf("steady-state Run allocates %.2f times per simulated second (8 events), want 0", avg)
	}
	if count == 0 {
		t.Fatal("ticker never ran")
	}
}

// TestCancelRescheduleZeroAlloc pins the same invariant for the
// cancel/reschedule path used by globalskew's level timer.
func TestCancelRescheduleZeroAlloc(t *testing.T) {
	if RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	e := NewEngine()
	count := 0
	h := e.MustScheduleData(1, "timer", tickData, Data{Ctx: &count, F0: -1})
	avg := testing.AllocsPerRun(100, func() {
		e.Cancel(h)
		h = e.MustScheduleData(e.Now()+1, "timer", tickData, Data{Ctx: &count, F0: -1})
	})
	if avg != 0 {
		t.Errorf("cancel+reschedule allocates %.2f per cycle, want 0", avg)
	}
}
