// Package transport delivers content-less pulses over the augmented
// network with per-message delays in [d−U, d] (FTGCS paper, Section 2,
// "Communication and computation").
//
// Correct nodes broadcast: one send reaches every neighbor, each with an
// independently sampled delay. Byzantine nodes are not bound to broadcast —
// the adversary uses SendTo to equivocate (different pulses, or none, per
// neighbor). Both paths go through the same DelayModel so delay adversaries
// compose with behavioral ones.
package transport

import (
	"fmt"

	"ftgcs/internal/graph"
	"ftgcs/internal/sim"
)

// Kind distinguishes the two pulse types of the paper.
type Kind int

const (
	// PulseClock is a ClusterSync round pulse (Algorithm 1, line 6).
	PulseClock Kind = iota + 1
	// PulseMax is a global-skew level pulse (Appendix C, Lemma C.2):
	// sent whenever M_v reaches the next multiple of d−U.
	PulseMax
)

func (k Kind) String() string {
	switch k {
	case PulseClock:
		return "clock"
	case PulseMax:
		return "max"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Pulse is a content-less message; receivers learn only the sender
// identity, the kind, and their own local reception time.
type Pulse struct {
	From graph.NodeID
	Kind Kind
}

// Handler consumes a pulse at its delivery time.
type Handler func(at float64, p Pulse)

// DelayModel samples per-message delays. Implementations must return
// values in [d−U, d]; Network validates every sample.
type DelayModel interface {
	// Sample returns the delay for a message from → to sent at time t.
	Sample(from, to graph.NodeID, t float64) float64
	// Bounds returns (d, U). The bounds must be constant for the model's
	// lifetime — they are the network's fixed physical parameters, and
	// Network caches them at construction. Adversarial variation belongs
	// in Sample (within the fixed envelope), not in Bounds.
	Bounds() (d, u float64)
}

// UniformDelay draws delays uniformly from [d−U, d].
type UniformDelay struct {
	D, U float64
	Rng  *sim.RNG
}

// Sample implements DelayModel.
func (m UniformDelay) Sample(from, to graph.NodeID, t float64) float64 {
	return m.Rng.UniformIn(m.D-m.U, m.D)
}

// Bounds implements DelayModel.
func (m UniformDelay) Bounds() (float64, float64) { return m.D, m.U }

// FixedDelay always delivers after exactly D−Frac·U (Frac ∈ [0,1]).
type FixedDelay struct {
	D, U float64
	// Frac selects the point within the uncertainty window: 0 → delay d,
	// 1 → delay d−U.
	Frac float64
}

// Sample implements DelayModel.
func (m FixedDelay) Sample(from, to graph.NodeID, t float64) float64 {
	return m.D - m.Frac*m.U
}

// Bounds implements DelayModel.
func (m FixedDelay) Bounds() (float64, float64) { return m.D, m.U }

// ExtremalDelay is the delay adversary used in skew lower-bound
// constructions: messages from lower-ID to higher-ID nodes take the
// maximum delay d while messages in the other direction take the minimum
// d−U (or vice versa when Invert is set). It maximizes the systematic
// offset-estimation error between node pairs.
type ExtremalDelay struct {
	D, U   float64
	Invert bool
}

// Sample implements DelayModel.
func (m ExtremalDelay) Sample(from, to graph.NodeID, t float64) float64 {
	slow := from < to
	if m.Invert {
		slow = !slow
	}
	if slow {
		return m.D
	}
	return m.D - m.U
}

// Bounds implements DelayModel.
func (m ExtremalDelay) Bounds() (float64, float64) { return m.D, m.U }

// PhasedDelay switches between two delay models at time SwitchAt. It
// realizes the classic skew-compression adversary: one systematic bias
// while skew silently accumulates, then the opposite bias to reveal it
// (cf. the paper's discussion of [15] in the introduction).
type PhasedDelay struct {
	Before, After DelayModel
	SwitchAt      float64
}

// Sample implements DelayModel.
func (m PhasedDelay) Sample(from, to graph.NodeID, t float64) float64 {
	if t < m.SwitchAt {
		return m.Before.Sample(from, to, t)
	}
	return m.After.Sample(from, to, t)
}

// Bounds implements DelayModel; both phases must share (d, U).
func (m PhasedDelay) Bounds() (float64, float64) { return m.Before.Bounds() }

// FuncDelay adapts an arbitrary function as a DelayModel.
type FuncDelay struct {
	D, U float64
	Fn   func(from, to graph.NodeID, t float64) float64
}

// Sample implements DelayModel.
func (m FuncDelay) Sample(from, to graph.NodeID, t float64) float64 {
	return m.Fn(from, to, t)
}

// Bounds implements DelayModel.
func (m FuncDelay) Bounds() (float64, float64) { return m.D, m.U }

// Stats counts transport activity.
type Stats struct {
	Broadcasts uint64
	Sends      uint64 // individual point-to-point deliveries scheduled
	Loopbacks  uint64
	Delivered  uint64
}

// Network schedules pulse deliveries on the simulation engine.
type Network struct {
	eng      *sim.Engine
	g        *graph.Graph
	delays   DelayModel
	handlers []Handler
	stats    Stats

	// d, u cache delays.Bounds() — the bounds are fixed parameters of the
	// model, and validateDelay runs once per point-to-point send.
	d, u float64
	// delayScratch buffers sampled per-neighbor delays so Broadcast can
	// validate the whole pulse before scheduling any delivery.
	delayScratch []float64
}

// NewNetwork constructs a network over g using the given delay model.
func NewNetwork(eng *sim.Engine, g *graph.Graph, delays DelayModel) *Network {
	d, u := delays.Bounds()
	return &Network{
		eng:      eng,
		g:        g,
		delays:   delays,
		handlers: make([]Handler, g.N()),
		d:        d,
		u:        u,
	}
}

// Reset clears the transport counters and swaps in a freshly built delay
// model for a new run (stateful models carry RNG streams that must be
// re-derived from the new seed). Registered handlers survive: the per-node
// routing closures reference node state that persists across a system
// reset. The cached bounds are re-read from the new model.
func (n *Network) Reset(delays DelayModel) {
	n.delays = delays
	n.d, n.u = delays.Bounds()
	n.stats = Stats{}
}

// OnPulse registers the pulse handler of node v (overwriting any previous
// one).
func (n *Network) OnPulse(v graph.NodeID, h Handler) {
	n.handlers[v] = h
}

// Stats returns a copy of the transport counters.
func (n *Network) Stats() Stats { return n.stats }

// Graph returns the underlying physical graph.
func (n *Network) Graph() *graph.Graph { return n.g }

// Bounds returns the delay parameters (d, U).
func (n *Network) Bounds() (float64, float64) { return n.d, n.u }

func (n *Network) validateDelay(delay float64, from, to graph.NodeID) error {
	const eps = 1e-12
	if delay < n.d-n.u-eps || delay > n.d+eps {
		return fmt.Errorf("transport: delay %v for %d→%d outside [d−U, d] = [%v, %v]",
			delay, from, to, n.d-n.u, n.d)
	}
	return nil
}

func (n *Network) deliver(at float64, from, to graph.NodeID, kind Kind) {
	h := n.handlers[to]
	if h == nil {
		return
	}
	n.stats.Delivered++
	h(at, Pulse{From: from, Kind: kind})
}

// deliverEvent is the pooled delivery callback: the pulse identity travels
// as event data (from=I0, to=I1, kind=I2) instead of a per-send closure.
func deliverEvent(e *sim.Engine, d sim.Data) {
	n := d.Ctx.(*Network)
	n.deliver(e.Now(), graph.NodeID(d.I0), graph.NodeID(d.I1), Kind(d.I2))
}

// loopbackFnEvent invokes a stored func(at float64) at delivery time. The
// func value itself is pointer-shaped, so carrying it in Data.Ctx does not
// allocate; callers keep the func alive across calls (see core's per-node
// loopback closures).
func loopbackFnEvent(e *sim.Engine, d sim.Data) {
	d.Ctx.(func(at float64))(e.Now())
}

// scheduleDelivery enqueues one pooled point-to-point delivery.
func (n *Network) scheduleDelivery(t, delay float64, from, to graph.NodeID, kind Kind) error {
	n.stats.Sends++
	_, err := n.eng.ScheduleData(t+delay, "pulse", deliverEvent, sim.Data{
		Ctx: n, I0: int64(from), I1: int64(to), I2: int64(kind),
	})
	return err
}

// Broadcast sends a pulse from v to all its neighbors (not to itself; use
// Loopback for the sender's own observation of its pulse). This is the only
// send primitive available to correct nodes.
//
// A broadcast is atomic with respect to delay-model failures: every
// neighbor's delay is sampled and validated before any delivery is
// scheduled, so a misbehaving DelayModel cannot leave a half-sent pulse.
func (n *Network) Broadcast(t float64, from graph.NodeID, kind Kind) error {
	n.stats.Broadcasts++
	nbrs := n.g.Neighbors(from)
	if cap(n.delayScratch) < len(nbrs) {
		n.delayScratch = make([]float64, len(nbrs))
	}
	delays := n.delayScratch[:len(nbrs)]
	for i, to := range nbrs {
		delay := n.delays.Sample(from, to, t)
		if err := n.validateDelay(delay, from, to); err != nil {
			return err
		}
		delays[i] = delay
	}
	for i, to := range nbrs {
		if err := n.scheduleDelivery(t, delays[i], from, to, kind); err != nil {
			return err
		}
	}
	return nil
}

// SendTo schedules a single point-to-point pulse delivery. Correct nodes
// never call this directly; it exists for the Byzantine adversary, which is
// "not required to communicate by broadcast" (paper, Section 2, Faults).
func (n *Network) SendTo(t float64, from, to graph.NodeID, kind Kind) error {
	if !n.g.HasEdge(from, to) {
		return fmt.Errorf("transport: no edge %d→%d", from, to)
	}
	delay := n.delays.Sample(from, to, t)
	if err := n.validateDelay(delay, from, to); err != nil {
		return err
	}
	return n.scheduleDelivery(t, delay, from, to, kind)
}

// LoopbackFunc schedules fn to run after a sampled self-delivery delay.
// Nodes running several ClusterSync instances (their own cluster plus one
// observer per neighboring cluster) use this to route each instance's
// virtual own-pulse to that instance directly — they would be
// indistinguishable if they all went through the node's single pulse
// handler.
func (n *Network) LoopbackFunc(t float64, v graph.NodeID, fn func(at float64)) error {
	delay := n.delays.Sample(v, v, t)
	if err := n.validateDelay(delay, v, v); err != nil {
		return err
	}
	n.stats.Loopbacks++
	_, err := n.eng.ScheduleData(t+delay, "loopback-fn", loopbackFnEvent, sim.Data{Ctx: fn})
	return err
}

// Loopback schedules delivery of v's own pulse to itself through the same
// delay model (ClusterSync's τ_vv term needs the reception time of the
// node's own pulse). The pulse is delivered via the node's handler like any
// other.
func (n *Network) Loopback(t float64, v graph.NodeID, kind Kind) error {
	delay := n.delays.Sample(v, v, t)
	if err := n.validateDelay(delay, v, v); err != nil {
		return err
	}
	n.stats.Loopbacks++
	_, err := n.eng.ScheduleData(t+delay, "loopback", deliverEvent, sim.Data{
		Ctx: n, I0: int64(v), I1: int64(v), I2: int64(kind),
	})
	return err
}
