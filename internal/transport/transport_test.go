package transport

import (
	"testing"
	"testing/quick"

	"ftgcs/internal/graph"
	"ftgcs/internal/sim"
)

func TestBroadcastReachesAllNeighbors(t *testing.T) {
	eng := sim.NewEngine()
	g := graph.Clique(4)
	net := NewNetwork(eng, g, FixedDelay{D: 1e-3, U: 1e-4, Frac: 0.5})
	got := make(map[graph.NodeID][]Pulse)
	for v := 0; v < 4; v++ {
		v := v
		net.OnPulse(v, func(at float64, p Pulse) {
			got[v] = append(got[v], p)
		})
	}
	if err := net.Broadcast(0, 0, PulseClock); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	if err := eng.Run(1); err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 4; v++ {
		if len(got[v]) != 1 || got[v][0].From != 0 || got[v][0].Kind != PulseClock {
			t.Errorf("node %d got %v", v, got[v])
		}
	}
	if len(got[0]) != 0 {
		t.Error("broadcast must not self-deliver")
	}
	st := net.Stats()
	if st.Broadcasts != 1 || st.Sends != 3 || st.Delivered != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeliveryTimeWithinBounds(t *testing.T) {
	eng := sim.NewEngine()
	g := graph.Line(2)
	d, u := 1e-3, 4e-4
	net := NewNetwork(eng, g, UniformDelay{D: d, U: u, Rng: sim.NewRNG(1, 0)})
	var times []float64
	net.OnPulse(1, func(at float64, p Pulse) { times = append(times, at) })
	sendAt := 5.0
	eng.MustSchedule(sendAt, "send", func(*sim.Engine) {
		for i := 0; i < 200; i++ {
			if err := net.SendTo(sendAt, 0, 1, PulseClock); err != nil {
				t.Errorf("SendTo: %v", err)
			}
		}
	})
	if err := eng.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(times) != 200 {
		t.Fatalf("delivered %d, want 200", len(times))
	}
	for _, at := range times {
		delay := at - sendAt
		if delay < d-u-1e-12 || delay > d+1e-12 {
			t.Fatalf("delay %v outside [%v, %v]", delay, d-u, d)
		}
	}
}

func TestSendToRequiresEdge(t *testing.T) {
	eng := sim.NewEngine()
	g := graph.Line(3) // 0-1-2; no 0-2 edge
	net := NewNetwork(eng, g, FixedDelay{D: 1, U: 0})
	if err := net.SendTo(0, 0, 2, PulseClock); err == nil {
		t.Error("send along non-edge should fail")
	}
}

func TestLoopback(t *testing.T) {
	eng := sim.NewEngine()
	g := graph.Line(2)
	net := NewNetwork(eng, g, FixedDelay{D: 1e-3, U: 0})
	var got []Pulse
	var at float64
	net.OnPulse(0, func(t float64, p Pulse) { got = append(got, p); at = t })
	if err := net.Loopback(0, 0, PulseClock); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].From != 0 {
		t.Fatalf("got %v", got)
	}
	if at != 1e-3 {
		t.Errorf("loopback delivery at %v, want 1e-3", at)
	}
}

func TestDelayModelValidation(t *testing.T) {
	eng := sim.NewEngine()
	g := graph.Line(2)
	// A buggy model returning out-of-bounds delays must be caught.
	bad := FuncDelay{D: 1e-3, U: 1e-4, Fn: func(_, _ graph.NodeID, _ float64) float64 { return 5e-3 }}
	net := NewNetwork(eng, g, bad)
	if err := net.SendTo(0, 0, 1, PulseClock); err == nil {
		t.Error("out-of-bounds delay should be rejected")
	}
}

func TestExtremalDelay(t *testing.T) {
	m := ExtremalDelay{D: 1e-3, U: 2e-4}
	if got := m.Sample(0, 1, 0); got != 1e-3 {
		t.Errorf("low→high = %v, want d", got)
	}
	if got := m.Sample(1, 0, 0); got != 8e-4 {
		t.Errorf("high→low = %v, want d−U", got)
	}
	inv := ExtremalDelay{D: 1e-3, U: 2e-4, Invert: true}
	if got := inv.Sample(0, 1, 0); got != 8e-4 {
		t.Errorf("inverted low→high = %v, want d−U", got)
	}
}

func TestFixedDelayFrac(t *testing.T) {
	m := FixedDelay{D: 1, U: 0.5, Frac: 1}
	if got := m.Sample(0, 1, 0); got != 0.5 {
		t.Errorf("Frac=1 should give d−U = 0.5, got %v", got)
	}
	d, u := m.Bounds()
	if d != 1 || u != 0.5 {
		t.Error("Bounds wrong")
	}
}

func TestUnhandledPulseIgnored(t *testing.T) {
	eng := sim.NewEngine()
	g := graph.Line(2)
	net := NewNetwork(eng, g, FixedDelay{D: 1, U: 0})
	// No handler registered for node 1; must not panic.
	if err := net.SendTo(0, 0, 1, PulseClock); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(2); err != nil {
		t.Fatal(err)
	}
	if net.Stats().Delivered != 0 {
		t.Error("delivery to handler-less node should not count")
	}
}

func TestKindString(t *testing.T) {
	if PulseClock.String() != "clock" || PulseMax.String() != "max" {
		t.Error("kind strings")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should format")
	}
}

func TestUniformDelayPropertyInBounds(t *testing.T) {
	f := func(seed int64, rawD, rawU uint16) bool {
		d := 1e-4 + float64(rawD)/65535
		u := float64(rawU) / 65535 * d
		m := UniformDelay{D: d, U: u, Rng: sim.NewRNG(seed, 0)}
		for i := 0; i < 50; i++ {
			s := m.Sample(0, 1, 0)
			if s < d-u-1e-12 || s > d+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBroadcastClique(b *testing.B) {
	eng := sim.NewEngine()
	g := graph.Clique(16)
	net := NewNetwork(eng, g, UniformDelay{D: 1e-3, U: 1e-4, Rng: sim.NewRNG(1, 0)})
	for v := 0; v < 16; v++ {
		net.OnPulse(v, func(float64, Pulse) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Broadcast(eng.Now(), 0, PulseClock); err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(eng.PeekTime() + 1); err != nil {
			b.Fatal(err)
		}
	}
}
