package transport

import (
	"testing"

	"ftgcs/internal/graph"
	"ftgcs/internal/sim"
)

// TestBroadcastZeroAllocSteadyState pins the transport half of the
// zero-allocation hot path: once the engine pool is warm, a broadcast plus
// the delivery of every resulting pulse allocates nothing — the pulse
// identity rides inside the pooled event instead of a per-send closure.
func TestBroadcastZeroAllocSteadyState(t *testing.T) {
	if sim.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	eng := sim.NewEngine()
	g := graph.New(4, "clique4")
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	net := NewNetwork(eng, g, FixedDelay{D: 1e-3, U: 1e-4, Frac: 0.5})
	delivered := 0
	for v := 0; v < 4; v++ {
		net.OnPulse(v, func(at float64, p Pulse) { delivered++ })
	}

	send := func() {
		if err := net.Broadcast(eng.Now(), 0, PulseClock); err != nil {
			t.Fatal(err)
		}
		if err := net.Loopback(eng.Now(), 0, PulseClock); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(eng.Now() + 1); err != nil {
			t.Fatal(err)
		}
	}
	send() // warm pool and delay scratch
	avg := testing.AllocsPerRun(100, send)
	if avg != 0 {
		t.Errorf("steady-state broadcast+deliver allocates %.2f per pulse, want 0", avg)
	}
	if delivered == 0 {
		t.Fatal("no pulses delivered")
	}
}

// TestBroadcastAtomicOnBadDelay checks the partial-broadcast fix: when the
// delay model produces an out-of-bounds sample for some neighbor, no
// delivery at all is scheduled (previously neighbors sampled before the bad
// one still received the pulse).
func TestBroadcastAtomicOnBadDelay(t *testing.T) {
	eng := sim.NewEngine()
	g := graph.New(3, "line3")
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	// Valid delay to node 1, out-of-bounds delay to node 2.
	bad := FuncDelay{D: 1e-3, U: 1e-4, Fn: func(from, to graph.NodeID, tt float64) float64 {
		if to == 2 {
			return 5e-3 // > d: must be rejected
		}
		return 1e-3
	}}
	net := NewNetwork(eng, g, bad)
	delivered := 0
	for v := 0; v < 3; v++ {
		net.OnPulse(v, func(at float64, p Pulse) { delivered++ })
	}
	if err := net.Broadcast(0, 0, PulseClock); err == nil {
		t.Fatal("broadcast with an out-of-bounds delay must fail")
	}
	if got := eng.Pending(); got != 0 {
		t.Fatalf("failed broadcast left %d deliveries scheduled, want 0", got)
	}
	if err := eng.Run(1); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatalf("failed broadcast delivered %d pulses, want 0 (no half-sent pulse)", delivered)
	}
	if s := net.Stats(); s.Sends != 0 {
		t.Errorf("failed broadcast counted %d sends, want 0", s.Sends)
	}
}
