package transport

import (
	"testing"

	"ftgcs/internal/graph"
	"ftgcs/internal/sim"
)

// BenchmarkBroadcastDeliver measures a full broadcast over a k=7 clique
// plus the delivery of all resulting pulses — the dominant event pattern of
// every ClusterSync round. Expected steady state: 0 allocs/op.
func BenchmarkBroadcastDeliver(b *testing.B) {
	eng := sim.NewEngine()
	const k = 7
	g := graph.New(k, "clique")
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			if err := g.AddEdge(u, v); err != nil {
				b.Fatal(err)
			}
		}
	}
	rng := sim.NewRNG(1, 1)
	net := NewNetwork(eng, g, UniformDelay{D: 1e-3, U: 1e-4, Rng: rng})
	delivered := 0
	for v := 0; v < k; v++ {
		net.OnPulse(v, func(at float64, p Pulse) { delivered++ })
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Broadcast(eng.Now(), 0, PulseClock); err != nil {
			b.Fatal(err)
		}
		if err := net.Loopback(eng.Now(), 0, PulseClock); err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(eng.Now() + 1); err != nil {
			b.Fatal(err)
		}
	}
	if delivered == 0 {
		b.Fatal("nothing delivered")
	}
}
