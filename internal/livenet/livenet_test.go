package livenet

import (
	"context"
	"testing"
	"time"

	"ftgcs/internal/params"
)

// liveParams derives parameters honest for a wall-clock runtime: Go timer
// jitter (~0.1–1 ms) acts as extra delay uncertainty, so the model's U must
// dominate it — U = 1 ms wall at time scale 1. Rounds then last ~230 ms.
func liveParams(t testing.TB) params.Params {
	t.Helper()
	p, err := params.Derive(params.Config{
		Rho: 3e-3, Delay: 2e-3, Uncertainty: 1e-3, C2: 4, Eps: 0.25, KStable: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewClusterValidation(t *testing.T) {
	p := liveParams(t)
	if _, err := NewCluster(Config{K: 3, F: 1, Params: p}); err == nil {
		t.Error("k < 3f+1 accepted")
	}
	if _, err := NewCluster(Config{K: 4, F: 1}); err == nil {
		t.Error("underived params accepted")
	}
	if _, err := NewCluster(Config{K: 4, F: 1, Params: p}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestLiveClusterSynchronizes(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	p := liveParams(t)
	c, err := NewCluster(Config{K: 4, F: 1, Params: p, TimeScale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 6*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() {
		c.Run(ctx)
		close(done)
	}()
	// Let it run a while, then sample skew repeatedly.
	time.Sleep(2 * time.Second)
	worst := 0.0
	for i := 0; i < 30; i++ {
		if s := c.Skew(); s > worst {
			worst = s
		}
		time.Sleep(100 * time.Millisecond)
	}
	cancel()
	<-done
	if c.Rounds() < 10 {
		t.Fatalf("only %d rounds completed", c.Rounds())
	}
	// Generous tolerance: scheduling jitter adds to the model's E. The
	// point is that clocks stay coupled — with ρ=3e-3, free-running
	// clocks would spread without bound.
	if worst > 4*p.EG {
		t.Errorf("live skew %v exceeds 4·E = %v", worst, 4*p.EG)
	}
	if worst == 0 {
		t.Error("zero skew is implausible under real jitter")
	}
}

func TestLiveClusterToleratesCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	p := liveParams(t)
	c, err := NewCluster(Config{
		K: 4, F: 1, Params: p, TimeScale: 1, Seed: 2,
		Byzantine: map[int]bool{3: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() { c.Run(ctx); close(done) }()
	time.Sleep(2 * time.Second)
	worst := 0.0
	for i := 0; i < 20; i++ {
		if s := c.Skew(); s > worst {
			worst = s
		}
		time.Sleep(100 * time.Millisecond)
	}
	cancel()
	<-done
	if c.Rounds() < 10 {
		t.Fatalf("only %d rounds completed with crash fault", c.Rounds())
	}
	if worst > 4*p.EG {
		t.Errorf("live skew %v with crash fault exceeds 4·E = %v", worst, 4*p.EG)
	}
	clocks := c.SortedClocks()
	if len(clocks) != 3 {
		t.Errorf("expected 3 correct clocks, got %d", len(clocks))
	}
}

func TestContextCancelStopsCluster(t *testing.T) {
	p := liveParams(t)
	c, err := NewCluster(Config{K: 4, F: 1, Params: p, TimeScale: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { c.Run(ctx); close(done) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("cluster did not stop after cancel")
	}
}
