// Package livenet runs the ClusterSync algorithm (Algorithm 1 of the FTGCS
// paper) on real goroutines communicating over channels with genuine
// wall-clock delays — one goroutine per node, time.Timer-driven phases,
// and per-node simulated oscillator skew on top of the host clock.
//
// The deterministic discrete-event simulator (internal/sim + internal/core)
// remains the substrate for all quantitative experiments; livenet exists to
// demonstrate that the algorithm maps directly onto a concurrent runtime
// (the examples/live-goroutines demo) and to smoke-test the protocol logic
// against real scheduling jitter. Wall-clock tests are inherently
// non-deterministic, so assertions in this package's tests use generous
// tolerances.
package livenet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"ftgcs/internal/approxagree"
	"ftgcs/internal/params"
	"ftgcs/internal/sim"
)

// Config describes a live cluster.
type Config struct {
	// K is the cluster size; F the fault budget (k ≥ 3f+1).
	K, F int
	// Params carries the phase durations (τ₁, τ₂, τ₃ in logical seconds).
	Params params.Params
	// TimeScale maps logical seconds to wall seconds (e.g. 0.01 runs a
	// 0.1 s round in 1 ms of wall time). 0 selects 1.
	TimeScale float64
	// Seed drives delay jitter and per-node oscillator skew.
	Seed int64
	// Byzantine marks members that send no pulses (crash faults). Live
	// equivocation attacks are exercised in the DES; the live runtime
	// keeps the benign end of the spectrum.
	Byzantine map[int]bool
}

// pulse is a content-less message carrying only its sender.
type pulse struct {
	from int
}

// Node is one live cluster member.
type Node struct {
	id      int
	cfg     Config
	inbox   chan pulse
	outs    []chan<- pulse // k channels (including own loopback)
	rng     *sim.RNG
	skew    float64 // oscillator rate multiplier in [1, 1+ρ]
	started time.Time

	mu     sync.Mutex
	offset float64 // logical clock correction accumulated (logical seconds)
	round  int
}

// Cluster wires k live nodes.
type Cluster struct {
	cfg   Config
	nodes []*Node
}

// NewCluster validates and constructs the live cluster (not yet running).
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.K < 3*cfg.F+1 {
		return nil, fmt.Errorf("livenet: k=%d cannot tolerate f=%d", cfg.K, cfg.F)
	}
	if cfg.Params.T <= 0 {
		return nil, errors.New("livenet: parameters not derived")
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	c := &Cluster{cfg: cfg}
	inboxes := make([]chan pulse, cfg.K)
	for i := range inboxes {
		inboxes[i] = make(chan pulse, cfg.K*8)
	}
	for i := 0; i < cfg.K; i++ {
		rng := sim.NewRNG(cfg.Seed, uint64(i))
		outs := make([]chan<- pulse, cfg.K)
		for j := range inboxes {
			outs[j] = inboxes[j]
		}
		c.nodes = append(c.nodes, &Node{
			id:    i,
			cfg:   cfg,
			inbox: inboxes[i],
			outs:  outs,
			rng:   rng,
			skew:  1 + rng.Float64()*cfg.Params.Rho,
		})
	}
	return c, nil
}

// Run executes rounds until the context is canceled, then returns. It
// blocks; run it in a goroutine if concurrent access is needed.
func (c *Cluster) Run(ctx context.Context) {
	var wg sync.WaitGroup
	start := time.Now()
	for _, n := range c.nodes {
		if c.cfg.Byzantine[n.id] {
			continue // crash fault: never even starts
		}
		n.started = start
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			n.run(ctx)
		}(n)
	}
	wg.Wait()
}

// Logical returns node i's logical clock in logical seconds.
func (c *Cluster) Logical(i int) float64 {
	return c.nodes[i].logicalNow()
}

// Skew returns the max minus min logical clock over correct nodes.
func (c *Cluster) Skew() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, n := range c.nodes {
		if c.cfg.Byzantine[i] {
			continue
		}
		v := n.logicalNow()
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return hi - lo
}

// Rounds returns the minimum completed round over correct nodes.
func (c *Cluster) Rounds() int {
	min := math.MaxInt32
	for i, n := range c.nodes {
		if c.cfg.Byzantine[i] {
			continue
		}
		n.mu.Lock()
		r := n.round
		n.mu.Unlock()
		if r < min {
			min = r
		}
	}
	return min
}

// logicalNow computes offset + skewed elapsed logical time.
func (n *Node) logicalNow() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started.IsZero() {
		return 0
	}
	elapsed := time.Since(n.started).Seconds() / n.cfg.TimeScale
	return n.offset + n.skew*elapsed
}

// sleepLogical sleeps until the node's logical clock reaches target,
// respecting ctx.
func (n *Node) sleepLogical(ctx context.Context, target float64) bool {
	for {
		now := n.logicalNow()
		if now >= target {
			return true
		}
		wall := (target - now) / n.skew * n.cfg.TimeScale
		t := time.NewTimer(time.Duration(wall * float64(time.Second)))
		select {
		case <-ctx.Done():
			t.Stop()
			return false
		case <-t.C:
		}
	}
}

// send delivers a pulse to every member (including self) after a random
// wall delay in [d−U, d] (scaled).
func (n *Node) send() {
	d, u := n.cfg.Params.Delay, n.cfg.Params.Uncertainty
	for j, out := range n.outs {
		delay := n.rng.UniformIn(d-u, d) * n.cfg.TimeScale
		out := out
		_ = j
		time.AfterFunc(time.Duration(delay*float64(time.Second)), func() {
			select {
			case out <- pulse{from: n.id}:
			default: // receiver wedged or shut down; adversarial drop
			}
		})
	}
}

// run executes the three-phase round loop.
func (n *Node) run(ctx context.Context) {
	p := n.cfg.Params
	for r := 1; ; r++ {
		base := float64(r-1) * p.T
		// Phase 1: wait, then pulse.
		if !n.sleepLogical(ctx, base+p.Tau1) {
			return
		}
		drainInbox(n.inbox) // discard stale pulses from the previous round
		n.send()
		// Phase 2: collect pulses until logical τ₁+τ₂.
		arrivals := map[int]float64{}
		deadline := base + p.Tau1 + p.Tau2
		for n.logicalNow() < deadline {
			remaining := (deadline - n.logicalNow()) / n.skew * n.cfg.TimeScale
			t := time.NewTimer(time.Duration(remaining * float64(time.Second)))
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case pu := <-n.inbox:
				if _, dup := arrivals[pu.from]; !dup {
					arrivals[pu.from] = n.logicalNow()
				}
				t.Stop()
			case <-t.C:
			}
		}
		// Approximate agreement on offsets (Algorithm 1, line 12).
		selfArrival, ok := arrivals[n.id]
		delta := 0.0
		if ok {
			offsets := make([]float64, n.cfg.K)
			for i := 0; i < n.cfg.K; i++ {
				if a, seen := arrivals[i]; seen {
					offsets[i] = a - selfArrival
				} else {
					offsets[i] = math.Inf(1)
				}
			}
			if m, err := approxagree.Midpoint(offsets, n.cfg.F); err == nil {
				delta = m
			}
		}
		if limit := p.Phi * p.Tau3; math.Abs(delta) > limit {
			delta = math.Copysign(limit, delta)
		}
		// Phase 3: here the correction is applied as a single offset jump
		// at the end of the phase — equivalent to the paper's amortized
		// δ_v by Lemma 3.1, and simpler under wall-clock jitter.
		if !n.sleepLogical(ctx, base+p.T) {
			return
		}
		n.mu.Lock()
		n.offset -= delta
		n.round = r
		n.mu.Unlock()
	}
}

func drainInbox(ch chan pulse) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}

// SortedClocks returns the correct nodes' logical clocks, ascending
// (diagnostics for demos).
func (c *Cluster) SortedClocks() []float64 {
	var out []float64
	for i, n := range c.nodes {
		if !c.cfg.Byzantine[i] {
			out = append(out, n.logicalNow())
		}
	}
	sort.Float64s(out)
	return out
}
