// Package jobs is the experiment service's content-addressed job and
// cache manager. It runs declarative scenario specs (internal/spec)
// through the ftgcs.Sweep worker pool on a bounded queue, and exploits
// the simulator's determinism — same spec + seed ⇒ byte-identical result
// — to never do the same work twice:
//
//   - every request is identified by the SHA-256 content hash of its
//     canonical encoding, so the job ID *is* the work's identity;
//   - concurrent identical submissions coalesce onto one in-flight run;
//   - completed results live in an LRU cache and are served back as
//     cache hits with byte-identical payloads;
//   - a replication mode fans one spec across N consecutive seeds and
//     aggregates Welford mean/std/CI95 summaries.
package jobs

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ftgcs"
	"ftgcs/internal/cas"
	"ftgcs/internal/metrics"
	"ftgcs/internal/spec"
	"ftgcs/internal/telemetry"
)

// MaxReplicate bounds the replication fan-out of a single request.
const MaxReplicate = 4096

// Request is one unit of submittable work: a spec, optionally fanned out
// across consecutive seeds.
type Request struct {
	Spec spec.ScenarioSpec `json:"spec"`
	// Replicate ≥ 2 runs the spec at seeds Seed, Seed+1, …, Seed+N−1 and
	// aggregates; 0 and 1 both mean a single run.
	Replicate int `json:"replicate,omitempty"`
	// IncludeSeries attaches the recorded skew time series to the result
	// (single runs only; ignored when replicating).
	IncludeSeries bool `json:"includeSeries,omitempty"`
}

// normalized canonicalizes the request so that equivalent requests hash
// identically: the spec is normalized, replicate 0 collapses to 1, and
// the series flag is dropped where it has no effect.
func (r Request) normalized() Request {
	r.Spec = r.Spec.Normalize()
	if r.Replicate < 1 {
		r.Replicate = 1
	}
	if r.Replicate > 1 {
		r.IncludeSeries = false
	}
	return r
}

// ID returns the request's content hash — the job ID. Requests that mean
// the same work (same canonical spec, same replication, same series
// flag) get the same ID regardless of JSON spelling.
func (r Request) ID() (string, error) {
	id, _, err := r.normalized().identity()
	return id, err
}

// identity derives the job ID and the spec's content hash from one
// canonical encoding pass. r must already be normalized.
func (r Request) identity() (id, specHash string, err error) {
	c, err := r.Spec.Canonical()
	if err != nil {
		return "", "", err
	}
	sum := sha256.Sum256(c)
	h := sha256.New()
	h.Write(c)
	fmt.Fprintf(h, "|replicate=%d|series=%t", r.Replicate, r.IncludeSeries)
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), "sha256:" + hex.EncodeToString(sum[:]), nil
}

// State is a job's lifecycle position. Done, failed and canceled are
// terminal; done and failed results are cached (both are deterministic in
// the request), canceled jobs are dropped entirely — a canceled run is
// partial work, so resubmitting the same spec must run it again.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final (done, failed, canceled).
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Stat is a Welford mean/std aggregate with a 95% normal confidence
// half-width. Std and CI95 are NaN (JSON null) below 2 samples.
type Stat struct {
	N    int
	Mean float64
	Std  float64
	CI95 float64
}

// UnmarshalJSON is MarshalJSON's inverse (null → NaN), so a Result that
// round-trips through the disk store re-encodes byte-identically.
func (s *Stat) UnmarshalJSON(b []byte) error {
	var aux struct {
		N    int      `json:"n"`
		Mean *float64 `json:"mean"`
		Std  *float64 `json:"std"`
		CI95 *float64 `json:"ci95"`
	}
	if err := json.Unmarshal(b, &aux); err != nil {
		return err
	}
	f := func(p *float64) float64 {
		if p == nil {
			return math.NaN()
		}
		return *p
	}
	*s = Stat{N: aux.N, Mean: f(aux.Mean), Std: f(aux.Std), CI95: f(aux.CI95)}
	return nil
}

// MarshalJSON uses the canonical float encoding (non-finite → null) with
// fixed key order, keeping aggregate payloads byte-stable.
func (s Stat) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 96)
	b = append(b, `{"n":`...)
	b = fmt.Appendf(b, "%d", s.N)
	b = append(b, `,"mean":`...)
	b = metrics.AppendJSONFloat(b, s.Mean)
	b = append(b, `,"std":`...)
	b = metrics.AppendJSONFloat(b, s.Std)
	b = append(b, `,"ci95":`...)
	b = metrics.AppendJSONFloat(b, s.CI95)
	b = append(b, '}')
	return b, nil
}

// newStat converts a Welford accumulator into a Stat.
func newStat(w *metrics.Welford) Stat {
	std := w.Std()
	ci := 1.96 * std / math.Sqrt(float64(w.N()))
	return Stat{N: w.N(), Mean: w.Mean(), Std: std, CI95: ci}
}

// Aggregate summarizes the replicated runs' headline maxima.
type Aggregate struct {
	IntraClusterSkew Stat `json:"intraClusterSkew"`
	LocalSkew        Stat `json:"localSkew"`
	GlobalSkew       Stat `json:"globalSkew"`
}

// Replicates carries the per-seed reports and their aggregate.
type Replicates struct {
	N         int            `json:"n"`
	Seeds     []int64        `json:"seeds"`
	Reports   []ftgcs.Report `json:"reports"`
	Aggregate Aggregate      `json:"aggregate"`
}

// Result is a completed experiment's payload. For replicated requests the
// top-level report/summary are the base seed's run and Replicates holds
// the fan-out. Marshalling a Result is deterministic (every component
// uses canonical encoders), which is what makes "cache hit ⇒
// byte-identical response" a guarantee rather than an accident.
type Result struct {
	SpecHash string `json:"specHash"`
	// Name is the spec's display name. Names are excluded from job
	// identity (the content hash), so coalesced and cached submissions
	// share one stored result: Submit overlays the submitter's own
	// display name onto the snapshot it returns, while Get/Wait — which
	// carry only an ID — report the name of the submission that actually
	// ran.
	Name       string            `json:"name,omitempty"`
	Report     ftgcs.Report      `json:"report"`
	Summary    ftgcs.Summary     `json:"summary"`
	Series     []*metrics.Series `json:"series,omitempty"`
	Replicates *Replicates       `json:"replicates,omitempty"`
}

// job is the internal lifecycle record.
type job struct {
	id       string
	specHash string
	req      Request // normalized
	// topo is the spec's resolved topology, built once by Submit's
	// validation: every replicate runs this graph (a replication sweep
	// measures seed variance on ONE experiment, so randomized families
	// must not redraw per seed). Cleared by finish so cached jobs do not
	// pin graphs in memory.
	topo *ftgcs.Topology
	done chan struct{}

	// trace is the job's lifecycle record (submitted → queued → building
	// → running[replicate i/n] → aggregating → storing → terminal). Set
	// at Submit, never reassigned, internally synchronized — safe to
	// read without the manager's mutex. It survives into the result
	// cache alongside the job, so /trace works for completed work; jobs
	// rehydrated from disk carry none (their execution happened in a
	// different process life).
	trace *telemetry.Trace
	// enqueuedAt/startedAt feed the queue-wait and run-duration
	// histograms; written under the manager's mutex.
	enqueuedAt time.Time
	startedAt  time.Time

	// ctx governs the job's execution; cancel aborts it (Cancel, Close).
	// Both are set at Submit and never change, so they may be used
	// without the manager's mutex.
	ctx    context.Context
	cancel context.CancelFunc

	// Guarded by the job's shard mutex.
	state  State
	result *Result
	// payload is result's canonical marshaled body with the name field
	// blanked plus the splice offset — the zero-copy serving bytes. Set
	// exactly when the job reaches StateDone (nil on the rare marshal
	// failure, which falls back to per-response marshaling).
	payload *resultPayload
	err     error
	// prog tracks live execution progress; set when the job starts
	// running, cleared at finish (it pins in-flight systems).
	prog *progressTracker
}

// CacheTier identifies which cache layer served a response. The empty
// tier means the work was (or is being) freshly executed.
type CacheTier string

const (
	// TierMemory: served from the in-process LRU.
	TierMemory CacheTier = "memory"
	// TierDisk: rehydrated from the on-disk content-addressed store — a
	// different process (or an earlier life of this one) did the work.
	TierDisk CacheTier = "disk"
)

// JobStatus is an external snapshot of a job, shaped for the HTTP API.
type JobStatus struct {
	ID       string `json:"id"`
	SpecHash string `json:"specHash"`
	State    State  `json:"state"`
	// Cached names the cache tier that served this response ("memory" or
	// "disk"); absent when the work was not served from a cache (it was,
	// or is being, executed for this submission).
	Cached CacheTier `json:"cached,omitempty"`
	// Coalesced is true when the submission attached to an identical
	// in-flight job instead of enqueuing new work.
	Coalesced bool    `json:"coalesced,omitempty"`
	Result    *Result `json:"result,omitempty"`
	Error     string  `json:"error,omitempty"`
	// Retryable marks a failed batch item whose error was transient
	// (backpressure, shutdown) rather than a deterministic spec failure:
	// resubmitting the same item may succeed. See Retryable.
	Retryable bool `json:"retryable,omitempty"`
	// Progress reports a running job's live execution progress; nil in
	// every other state.
	Progress *Progress `json:"progress,omitempty"`

	// payload, when non-nil, carries Result's pre-marshaled canonical
	// body: AppendJSON serves the result by splicing Result.Name into
	// these bytes instead of re-marshaling the struct. Invariant: it is
	// always the encoding of *Result modulo the name field (WithName
	// clones Result but keeps the payload — the overlay name is read
	// from the clone at append time).
	payload *resultPayload
}

// Progress is a live snapshot of a running job. Every field advances
// monotonically over the job's lifetime.
type Progress struct {
	// Events is the number of simulation events executed so far, summed
	// across the job's completed and in-flight runs.
	Events uint64 `json:"events"`
	// SimFraction is the fraction (0..1) of the job's total simulated
	// time already covered: each run contributes its sim-time/horizon
	// ratio, averaged over the replicate count.
	SimFraction float64 `json:"simFraction"`
	// Replicate of Replicates runs have fully finished (1/1 single runs;
	// i/n while a replication job fans out).
	Replicate  int `json:"replicate"`
	Replicates int `json:"replicates"`
}

// Stats are the manager's cumulative counters plus instantaneous
// gauges. Every counter is read from the telemetry registry's
// instruments — the same ones GET /metrics scrapes — so the JSON and
// Prometheus views of the service can never disagree about a count.
type Stats struct {
	Submitted uint64 `json:"submitted"` // new jobs accepted onto the queue
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"` // via Cancel, run budget, or Close
	Runs      uint64 `json:"runs"`     // simulations actually executed
	CacheHits uint64 `json:"cacheHits"`
	// CacheMisses counts lookups the result cache could not answer:
	// submissions that had to enqueue fresh work, and Get calls for IDs
	// that are neither in flight nor cached. CacheHits/(CacheHits+
	// CacheMisses) is the cache hit ratio.
	CacheMisses uint64 `json:"cacheMisses"`
	Coalesced   uint64 `json:"coalesced"`
	Evicted     uint64 `json:"evicted"`
	// DiskHits counts the subset of CacheHits answered by rehydrating a
	// result from the on-disk store (zero without a store).
	DiskHits uint64 `json:"diskHits"`
	// DiskStored counts results durably written to the disk store.
	DiskStored uint64 `json:"diskStored"`
	// StoreErrors counts failed attempts to persist a result (each retry
	// of each item counts; recovered panics count too).
	StoreErrors uint64 `json:"storeErrors"`
	// StoreDegraded is true while the disk-store breaker is open and the
	// manager is running memory-only. See Manager.Degraded.
	StoreDegraded bool `json:"storeDegraded"`
	Queued        int  `json:"queued"`
	Running       int  `json:"running"`
	CacheLen      int  `json:"cacheLen"`
}

// progressTracker aggregates live progress across one job's scenario
// runs — one for single jobs, N for replication jobs, several possibly
// in-flight at once on the sweep pool. Sweep workers write it; status
// snapshots read it concurrently. A run's contribution freezes at its
// final value when it finishes, so the aggregate is monotone.
type progressTracker struct {
	mu           sync.Mutex
	n            int // total runs (replicate count)
	inFlight     map[int]trackedRun
	doneEvents   uint64
	doneFraction float64
	doneRuns     int
	// onDone, when set, fires under mu as each run finishes with the
	// new done count — the ordering guarantee lets the manager emit
	// "running[replicate i/n]" trace phases in completion order even
	// when sweep workers finish out of order.
	onDone func(done, total int)
}

// progressSource is the slice of *ftgcs.System the tracker needs: a
// monotone, cross-goroutine-safe progress snapshot. Narrowing to an
// interface keeps the tracker testable with deterministic fakes.
type progressSource interface {
	Progress() ftgcs.Progress
}

type trackedRun struct {
	src     progressSource
	horizon float64
}

func newProgressTracker(n int) *progressTracker {
	return &progressTracker{n: n, inFlight: make(map[int]trackedRun)}
}

// runFraction is a run's share of its own horizon, clamped to [0, 1].
func runFraction(now, horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	if now >= horizon {
		return 1
	}
	return now / horizon
}

// start registers an in-flight system (Sweep.OnSystemStart).
func (p *progressTracker) start(index int, sys *ftgcs.System, horizon float64) {
	p.startRun(index, sys, horizon)
}

// startRun is start over the narrow progressSource interface.
func (p *progressTracker) startRun(index int, src progressSource, horizon float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.inFlight[index] = trackedRun{src: src, horizon: horizon}
}

// done freezes a finished run's contribution (Sweep.OnScenarioDone).
func (p *progressTracker) done(index int, _ ftgcs.SweepResult) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if tr, ok := p.inFlight[index]; ok {
		delete(p.inFlight, index)
		sp := tr.src.Progress()
		p.doneEvents += sp.Events
		p.doneFraction += runFraction(sp.Now, tr.horizon)
	}
	p.doneRuns++
	if p.onDone != nil {
		p.onDone(p.doneRuns, p.n)
	}
}

// snapshot sums frozen and live contributions.
func (p *progressTracker) snapshot() Progress {
	p.mu.Lock()
	defer p.mu.Unlock()
	pr := Progress{Events: p.doneEvents, Replicate: p.doneRuns, Replicates: p.n}
	frac := p.doneFraction
	for _, tr := range p.inFlight {
		sp := tr.src.Progress()
		pr.Events += sp.Events
		frac += runFraction(sp.Now, tr.horizon)
	}
	if p.n > 0 {
		pr.SimFraction = frac / float64(p.n)
	}
	return pr
}

// Options configures a Manager.
type Options struct {
	// Registry resolves spec names; nil means ftgcs.DefaultRegistry.
	Registry *ftgcs.Registry
	// Workers is the number of job-executing goroutines (≤0: 2).
	Workers int
	// QueueDepth bounds the pending-job queue (≤0: 64). A full queue
	// rejects submissions with ErrQueueFull instead of blocking.
	QueueDepth int
	// CacheSize bounds the completed-result LRU (≤0: 128 entries). The
	// cache is striped across Shards; each stripe holds an independent
	// LRU of ⌈CacheSize/Shards⌉ entries, so the total capacity rounds up
	// to a multiple of the shard count and recency is tracked per stripe.
	// Set Shards to 1 for a single strictly-LRU cache.
	CacheSize int
	// Shards is the number of lock stripes the in-flight index and the
	// result cache are split across (≤0: 16). Jobs land on a stripe by a
	// hash of their content-addressed ID, so concurrent submits, gets and
	// waits of distinct jobs take distinct locks and never contend.
	Shards int
	// PoolSize bounds the cross-job arena pool: completed sweeps park
	// their built Systems here and later jobs with a matching build key
	// (Scenario.SameBuild) reset one in place instead of rebuilding
	// (≤0: 8 idle systems). NoReuse disables the pool entirely.
	PoolSize int
	// SweepWorkers bounds each job's internal ftgcs.Sweep pool
	// (≤0: GOMAXPROCS). Only replicated jobs fan out.
	SweepWorkers int
	// NoReuse disables every system-reuse fast path — the sweep's
	// per-worker reset reuse AND the manager's cross-job arena pool —
	// rebuilding the system for every run instead of resetting one in
	// place. Results are identical either way (the reset contract); this
	// is an escape hatch and the rebuild arm of the reuse benchmarks and
	// differential golden tests.
	NoReuse bool
	// RunLimit is a per-job wall-clock budget: a job still executing
	// after this long is canceled (state canceled, never cached). Zero
	// means no budget. The clock starts when the job starts running, not
	// while it waits in the queue.
	RunLimit time.Duration
	// Store, when non-nil, adds a durable tier under the in-memory LRU:
	// lookups go memory → disk → compute, and completed results are
	// written through to disk asynchronously (Close drains the backlog,
	// so a graceful shutdown never loses completed work). The caller owns
	// the store's lifetime; the manager never closes it.
	Store *cas.Store
	// StoreRetries is how many attempts the write-behind storer makes per
	// result before counting the item as failed (≤0: 3). Retries back off
	// exponentially from StoreRetryBackoff, capped at 1s.
	StoreRetries int
	// StoreRetryBackoff is the first retry's delay (≤0: 50ms).
	StoreRetryBackoff time.Duration
	// StoreFailureThreshold is how many consecutive results must fail all
	// their attempts before the breaker opens and the manager degrades to
	// memory-only operation (≤0: 3). See Manager.Degraded.
	StoreFailureThreshold int
	// StoreCooldown is how long an open breaker waits before probing the
	// store with one write again (≤0: 5s).
	StoreCooldown time.Duration
	// Telemetry is the registry the manager registers its instruments on
	// (queue-wait/run-duration histograms, cache and lifecycle counters,
	// occupancy gauges); nil creates a private one. Metric names are
	// fixed, so at most one Manager may share a registry.
	Telemetry *telemetry.Registry
}

// ErrQueueFull is returned by Submit when the bounded queue is at
// capacity; clients should retry later (HTTP 503).
var ErrQueueFull = fmt.Errorf("jobs: queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = fmt.Errorf("jobs: manager closed")

// ErrEvicted is returned by Wait when the job completed but its result
// was evicted from the cache before the waiter could read it (possible
// only under heavy churn with a small cache). Resubmitting recomputes.
var ErrEvicted = fmt.Errorf("jobs: result evicted before it could be read")

// ErrCanceled is returned by Wait (and carried by job snapshots) when the
// job was canceled — by Cancel, by the run budget, or by Close — before
// it could complete. Canceled work is never cached, so resubmitting the
// same request runs it afresh.
var ErrCanceled = fmt.Errorf("jobs: job canceled")

// ErrUnknownJob is returned by Cancel and Wait for IDs that are neither
// in flight nor cached.
var ErrUnknownJob = fmt.Errorf("jobs: unknown job")

// ErrCompleted is returned by Cancel when the job already reached a
// terminal state: there is nothing left to cancel, and the cached result
// stays valid.
var ErrCompleted = fmt.Errorf("jobs: job already completed")

// ErrRunLimit wraps the cancellation of a job that exhausted its
// wall-clock budget (Options.RunLimit).
var ErrRunLimit = fmt.Errorf("jobs: run limit exceeded")

// Retryable reports whether a submission error is transient — the same
// request may succeed if resubmitted later (backpressure, shutdown,
// eviction races, cancellation) — as opposed to a deterministic spec
// failure that will fail identically every time.
func Retryable(err error) bool {
	return errors.Is(err, ErrQueueFull) || errors.Is(err, ErrClosed) ||
		errors.Is(err, ErrEvicted) || errors.Is(err, ErrCanceled)
}

// isCancellation classifies a job error as a cancellation (job ends in
// StateCanceled, result never cached) rather than a deterministic
// failure. Context errors surface when Cancel, the run budget, or Close
// interrupt the in-flight sweep.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrCanceled) || errors.Is(err, ErrClosed) || errors.Is(err, ErrRunLimit)
}

// Manager owns the queue, the workers, the sharded in-flight dedup
// index and result cache, and the cross-job arena pool. All methods are
// safe for concurrent use.
type Manager struct {
	reg          *ftgcs.Registry
	sweepWorkers int
	noReuse      bool
	runLimit     time.Duration
	queue        chan *job
	quit         chan struct{}
	wg           sync.WaitGroup

	// tel is the registry every counter below lives on; met caches the
	// resolved instruments so the job path never does a name lookup.
	tel *telemetry.Registry
	met *managerMetrics

	// shards stripe the in-flight index and the result cache by job-ID
	// hash: a job's state, result and payload are guarded by its shard's
	// mutex, so operations on distinct jobs take distinct locks. closed
	// is the lifecycle latch: Submit holds closeMu for reading across
	// its closed-check → enqueue window, Close holds it for writing
	// while flipping the latch — so no submission can slip a job into
	// the queue after Close started draining it. running is the
	// busy-worker gauge.
	shards  []shard
	closeMu sync.RWMutex
	closed  atomic.Bool
	running atomic.Int64

	// pool shares built Systems across jobs (nil when NoReuse): sweeps
	// draw build-key-compatible systems from it and return them when
	// done. The pool also interns resolved topologies by structural
	// equality, so independently submitted specs of the same family/size
	// share one *Topology pointer — the pointer identity SameBuild
	// requires.
	pool *ftgcs.SystemPool

	// Disk tier (nil store disables it). Completed results are appended
	// to pendingStore under storeMu and written to disk by a dedicated
	// storer goroutine, so finish never does IO while blocking lookups.
	// storeCond (on storeMu) wakes the storer; storeClosing tells it to
	// drain and exit; closing storerInterrupt cuts any backoff sleep
	// short so Close never waits out a retry schedule.
	store           *cas.Store
	storeMu         sync.Mutex
	pendingStore    []storeItem
	storeCond       *sync.Cond
	storeClosing    bool
	storeWg         sync.WaitGroup
	storerInterrupt chan struct{}

	// Store breaker configuration (fixed at NewManager) and state.
	// degraded is the breaker: true means the disk tier is considered down
	// and the manager serves memory-only until a cooldown probe succeeds.
	// It is read by Stats/Degraded/healthz concurrently; the remaining
	// breaker state (storeFails, storeDownSince) belongs to the storer
	// goroutine alone.
	storeRetries   int
	storeBackoff   time.Duration
	storeThreshold int
	storeCooldown  time.Duration
	degraded       atomic.Bool
	storeFails     int       // consecutive items that failed every attempt
	storeDownSince time.Time // when the breaker opened (or last failed probe)

	// TestHookBeforeRun, when set, runs in each worker before a job
	// executes — tests use it to hold workers and fill the queue.
	TestHookBeforeRun func()
}

// shard is one lock stripe of the manager's job index: the in-flight
// jobs and the completed-result LRU whose IDs hash here. A job's
// mutable fields (state, result, err, prog, payload) are guarded by its
// shard's mutex for its whole life.
type shard struct {
	mu     sync.Mutex
	active map[string]*job // queued or running
	cache  *lruCache       // completed (done or failed: failures are deterministic too)
}

// shard maps a job ID onto its lock stripe (FNV-1a over the ID).
func (m *Manager) shard(id string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return &m.shards[h%uint32(len(m.shards))]
}

// managerMetrics is the manager's instrument bundle. Children of the
// labeled families are resolved once here, so recording on the job path
// is a bare atomic op — no name or label lookups.
type managerMetrics struct {
	submitted  *telemetry.Counter
	runs       *telemetry.Counter
	coalesced  *telemetry.Counter
	misses     *telemetry.Counter
	evicted    *telemetry.Counter
	diskStored *telemetry.Counter
	replicates *telemetry.Counter

	storeErrors *telemetry.Counter

	hitsMemory, hitsDisk           *telemetry.Counter // ftgcs_jobs_cache_hits_total{tier}
	done, failed, canceled         *telemetry.Counter // ftgcs_jobs_terminal_total{state}
	runDone, runFailed, runCanceld *telemetry.Histogram

	queueWait *telemetry.Histogram
}

func newManagerMetrics(reg *telemetry.Registry) *managerMetrics {
	terminal := reg.CounterVec("ftgcs_jobs_terminal_total",
		"Jobs reaching a terminal state, by state.", "state")
	hits := reg.CounterVec("ftgcs_jobs_cache_hits_total",
		"Result-cache hits, by serving tier.", "tier")
	runDur := reg.HistogramVec("ftgcs_jobs_run_duration_seconds",
		"Wall-clock execution time from worker pickup to terminal state, by outcome.",
		nil, "outcome")
	return &managerMetrics{
		submitted: reg.Counter("ftgcs_jobs_submitted_total",
			"New jobs accepted onto the queue."),
		runs: reg.Counter("ftgcs_jobs_runs_total",
			"Job executions started (cache hits and coalesced submissions run nothing)."),
		coalesced: reg.Counter("ftgcs_jobs_coalesced_total",
			"Submissions coalesced onto an identical in-flight job."),
		misses: reg.Counter("ftgcs_jobs_cache_misses_total",
			"Result-cache lookups that enqueued fresh work or missed entirely."),
		evicted: reg.Counter("ftgcs_jobs_cache_evictions_total",
			"Results evicted from the in-memory LRU."),
		diskStored: reg.Counter("ftgcs_jobs_disk_stored_total",
			"Results durably written to the disk store."),
		replicates: reg.Counter("ftgcs_jobs_replicates_completed_total",
			"Individual replicate runs completed, across all jobs."),
		storeErrors: reg.Counter("ftgcs_store_errors_total",
			"Failed attempts to persist a result to the disk store (including recovered panics)."),
		hitsMemory: hits.With(string(TierMemory)),
		hitsDisk:   hits.With(string(TierDisk)),
		done:       terminal.With(string(StateDone)),
		failed:     terminal.With(string(StateFailed)),
		canceled:   terminal.With(string(StateCanceled)),
		runDone:    runDur.With(string(StateDone)),
		runFailed:  runDur.With(string(StateFailed)),
		runCanceld: runDur.With(string(StateCanceled)),
		queueWait: reg.Histogram("ftgcs_jobs_queue_wait_seconds",
			"Time jobs spend queued before a worker picks them up.", nil),
	}
}

// NewManager starts the workers and returns the manager.
func NewManager(o Options) *Manager {
	if o.Registry == nil {
		o.Registry = ftgcs.DefaultRegistry
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 128
	}
	if o.SweepWorkers <= 0 {
		o.SweepWorkers = runtime.GOMAXPROCS(0)
	}
	if o.Telemetry == nil {
		o.Telemetry = telemetry.NewRegistry()
	}
	if o.StoreRetries <= 0 {
		o.StoreRetries = 3
	}
	if o.StoreRetryBackoff <= 0 {
		o.StoreRetryBackoff = 50 * time.Millisecond
	}
	if o.StoreFailureThreshold <= 0 {
		o.StoreFailureThreshold = 3
	}
	if o.StoreCooldown <= 0 {
		o.StoreCooldown = 5 * time.Second
	}
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 8
	}
	m := &Manager{
		reg:             o.Registry,
		sweepWorkers:    o.SweepWorkers,
		noReuse:         o.NoReuse,
		runLimit:        o.RunLimit,
		queue:           make(chan *job, o.QueueDepth),
		quit:            make(chan struct{}),
		shards:          make([]shard, o.Shards),
		store:           o.Store,
		storeRetries:    o.StoreRetries,
		storeBackoff:    o.StoreRetryBackoff,
		storeThreshold:  o.StoreFailureThreshold,
		storeCooldown:   o.StoreCooldown,
		storerInterrupt: make(chan struct{}),
		tel:             o.Telemetry,
		met:             newManagerMetrics(o.Telemetry),
	}
	perShard := (o.CacheSize + o.Shards - 1) / o.Shards
	for i := range m.shards {
		m.shards[i] = shard{active: make(map[string]*job), cache: newLRUCache(perShard)}
	}
	if !o.NoReuse {
		m.pool = ftgcs.NewSystemPool(o.PoolSize)
		m.tel.CounterFunc("ftgcs_pool_hits_total",
			"Sweep system acquisitions served by the cross-job arena pool (Reset, not Build).",
			func() float64 { return float64(m.pool.Stats().Hits) })
		m.tel.CounterFunc("ftgcs_pool_misses_total",
			"Sweep system acquisitions the pool could not serve (fresh Build).",
			func() float64 { return float64(m.pool.Stats().Misses) })
		m.tel.GaugeFunc("ftgcs_pool_entries",
			"Idle built systems currently parked in the cross-job arena pool.",
			func() float64 { return float64(m.pool.Stats().Entries) })
	}
	m.tel.GaugeFunc("ftgcs_jobs_queue_depth",
		"Jobs waiting in the bounded queue.",
		func() float64 { return float64(len(m.queue)) })
	m.tel.GaugeFunc("ftgcs_jobs_workers_busy",
		"Workers currently executing a job.",
		func() float64 { return float64(m.running.Load()) })
	m.tel.GaugeFunc("ftgcs_jobs_cache_entries",
		"Completed results held in the in-memory LRU.",
		func() float64 { return float64(m.cacheLen()) })
	m.tel.GaugeFunc("ftgcs_store_degraded",
		"1 while the disk-store breaker is open and the manager serves memory-only.",
		func() float64 {
			if m.degraded.Load() {
				return 1
			}
			return 0
		})
	if m.store != nil {
		m.storeCond = sync.NewCond(&m.storeMu)
		m.storeWg.Add(1)
		go m.storer()
	}
	for i := 0; i < o.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Telemetry returns the registry the manager's instruments live on —
// the one GET /metrics should scrape.
func (m *Manager) Telemetry() *telemetry.Registry { return m.tel }

// storeItem is one completed result awaiting its disk write. payload,
// when non-nil, is the result's already-marshaled canonical body (the
// same bytes served to clients), so persisting costs a name splice
// instead of a full re-marshal. endSpan closes the job trace's
// "storing" span once the bytes are durable.
type storeItem struct {
	id      string
	res     *Result
	payload *resultPayload
	endSpan func()
}

// storer is the write-behind goroutine of the disk tier: it drains
// pendingStore batches and writes each result's canonical bytes to the
// store. Encoding and IO happen outside m.mu. It exits only when Close
// has set storeClosing AND the backlog is empty, so every result that
// finished before Close returns is durable (on a healthy store).
//
// The loop is hardened against a misbehaving store: each item's write is
// retried with capped exponential backoff and any panic out of the
// encode/Put path is recovered and counted as a failed attempt — one bad
// object can never kill the goroutine and silently end disk persistence
// for every job after it. When storeFailureThreshold consecutive items
// fail every attempt, a breaker opens (Degraded reports true, healthz
// shows "degraded", ftgcs_store_degraded is 1) and the manager runs
// memory-only: results stay served from the LRU, nothing blocks, items
// are dropped from the write-behind queue instead of piling up. After
// storeCooldown the next item is written as a probe; success closes the
// breaker, failure re-arms the cooldown.
func (m *Manager) storer() {
	defer m.storeWg.Done()
	for {
		m.storeMu.Lock()
		for len(m.pendingStore) == 0 && !m.storeClosing {
			m.storeCond.Wait()
		}
		if len(m.pendingStore) == 0 {
			m.storeMu.Unlock()
			return
		}
		batch := m.pendingStore
		m.pendingStore = nil
		m.storeMu.Unlock()

		for _, it := range batch {
			m.storeOne(it)
		}
	}
}

// storeBackoffCap bounds the storer's exponential retry backoff.
const storeBackoffCap = time.Second

// storeOne persists one result, applying the retry/breaker policy; it
// always ends the item's "storing" trace span, stored or not.
func (m *Manager) storeOne(it storeItem) {
	defer func() {
		if it.endSpan != nil {
			it.endSpan()
		}
	}()
	closing := m.storerInterrupted()
	if m.degraded.Load() {
		if closing || time.Since(m.storeDownSince) < m.storeCooldown {
			return // breaker open: memory-only, drop the disk write
		}
		// Cooldown elapsed: fall through and use this item as the
		// half-open probe (single attempt — see below).
	}
	attempts := m.storeRetries
	if closing || m.degraded.Load() {
		// During shutdown — or as a breaker probe — each item gets exactly
		// one try: Close must never wait out a retry schedule, and a probe
		// that fails should not hammer a store already known to be sick.
		attempts = 1
	}
	backoff := m.storeBackoff
	for i := 0; i < attempts; i++ {
		if m.storeAttempt(it) == nil {
			m.met.diskStored.Inc()
			m.storeFails = 0
			if m.degraded.CompareAndSwap(true, false) {
				m.storeDownSince = time.Time{}
			}
			return
		}
		m.met.storeErrors.Inc()
		if i+1 < attempts {
			if !m.storerSleep(backoff) {
				break // Close interrupted the backoff: give up on this item
			}
			backoff = min(backoff*2, storeBackoffCap)
		}
	}
	// The item failed every attempt it was allowed.
	m.storeFails++
	if m.degraded.Load() || m.storeFails >= m.storeThreshold {
		m.degraded.Store(true)
		m.storeDownSince = time.Now()
	}
}

// storeAttempt is one encode+write try, with panics converted to errors
// so a poisoned payload cannot take the storer goroutine down. When the
// item carries the result's pre-marshaled body the disk bytes are built
// by splicing the runner's name into it — byte-identical to a full
// json.Marshal of the result, but without re-walking the struct.
func (m *Manager) storeAttempt(it storeItem) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: store write panicked: %v", r)
		}
	}()
	var payload []byte
	if it.payload != nil {
		payload = it.payload.appendNamed(make([]byte, 0, it.payload.namedLen(it.res.Name)), it.res.Name)
	} else {
		payload, err = json.Marshal(it.res)
		if err != nil {
			return err
		}
	}
	return m.store.Put(it.id, payload)
}

// storerSleep waits d or until Close interrupts, whichever is first;
// false means interrupted.
func (m *Manager) storerSleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-m.storerInterrupt:
		return false
	case <-t.C:
		return true
	}
}

// storerInterrupted reports whether Close has begun flushing the store.
func (m *Manager) storerInterrupted() bool {
	select {
	case <-m.storerInterrupt:
		return true
	default:
		return false
	}
}

// Degraded reports whether the disk-store breaker is open: persistent
// store failures have switched the manager to memory-only operation.
// Jobs keep completing and results keep being served from the LRU;
// durability resumes (and Degraded clears) once a cooldown probe write
// succeeds. Always false without a store.
func (m *Manager) Degraded() bool { return m.degraded.Load() }

// PreparedRequest is a request whose identity has already been derived:
// normalized, content-hashed, display-named. Preparing is the pure (and
// comparatively expensive) prefix of Submit — canonical encoding plus
// two SHA-256 passes — so callers that see the same request bytes
// repeatedly (the HTTP server's submit memo) prepare once and submit
// the prepared value on every hit.
type PreparedRequest struct {
	req      Request // normalized
	id       string
	specHash string
	name     string
}

// ID returns the content-addressed job ID the request will run (or hit)
// under.
func (p PreparedRequest) ID() string { return p.id }

// Name returns the request's display name (overlayed onto served
// snapshots).
func (p PreparedRequest) Name() string { return p.name }

// PrepareRequest normalizes and content-hashes a request. The returned
// value is immutable and safe to reuse across any number of
// SubmitPrepared calls on any manager.
func PrepareRequest(req Request) (PreparedRequest, error) {
	req = req.normalized()
	if req.Replicate > MaxReplicate {
		return PreparedRequest{}, fmt.Errorf("jobs: replicate %d exceeds limit %d", req.Replicate, MaxReplicate)
	}
	id, specHash, err := req.identity()
	if err != nil {
		return PreparedRequest{}, err
	}
	return PreparedRequest{req: req, id: id, specHash: specHash, name: req.Spec.DisplayName()}, nil
}

// Submit validates, dedupes and enqueues a request. The returned status
// reflects the submission outcome: a cache hit carries the full result
// immediately (Cached), an identical in-flight job is joined (Coalesced),
// otherwise a new job is queued. Validation errors and a full queue are
// reported synchronously and never create a job.
func (m *Manager) Submit(req Request) (JobStatus, error) {
	p, err := PrepareRequest(req)
	if err != nil {
		return JobStatus{}, err
	}
	return m.SubmitPrepared(p)
}

// SubmitPrepared is Submit for a request whose identity was already
// derived by PrepareRequest — the hashing fast path: a cache hit costs
// one shard lock and zero canonicalization work.
func (m *Manager) SubmitPrepared(p PreparedRequest) (JobStatus, error) {
	if p.id == "" {
		return JobStatus{}, fmt.Errorf("jobs: unprepared request")
	}
	if m.closed.Load() {
		return JobStatus{}, ErrClosed
	}

	// Fast path: identical work in flight or cached answers the
	// submission without validating — a hit's spec already validated when
	// its job was created, and validation resolves the topology graph,
	// which is exactly the work dedup exists to avoid repeating.
	sh := m.shard(p.id)
	sh.mu.Lock()
	if st, ok := m.serveLocked(sh, p.id, p.name); ok {
		sh.mu.Unlock()
		return st, nil
	}
	sh.mu.Unlock()

	// Shed load before the expensive graph build: a full queue would
	// reject this submission after validation anyway (the enqueue below
	// re-checks under the lock). Cache hits are still served above even
	// under backpressure.
	if len(m.queue) == cap(m.queue) {
		return JobStatus{}, ErrQueueFull
	}

	// The trace starts here so the "submitted" span covers validation
	// and the topology build — the submission cost dedup exists to
	// avoid. Discarded if a racing identical submission wins below.
	trace := telemetry.NewTrace()
	trace.Phase("submitted")

	topo, err := p.req.Spec.Resolve(m.reg)
	if err != nil {
		return JobStatus{}, err
	}
	if m.pool != nil {
		// Interning makes equal graphs pointer-identical, which is what
		// lets the arena pool match this job's build key against systems
		// built for earlier jobs.
		topo = m.pool.Intern(topo)
	}

	// Enqueue critical section. closeMu held for reading makes the
	// closed-check → queue-send window atomic with respect to Close: a
	// submission that passes the check enqueues (and indexes) its job
	// before Close can flip the latch and start draining.
	m.closeMu.RLock()
	defer m.closeMu.RUnlock()
	if m.closed.Load() {
		return JobStatus{}, ErrClosed
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// An identical submission may have landed while validation ran.
	if st, ok := m.serveLocked(sh, p.id, p.name); ok {
		return st, nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{id: p.id, specHash: p.specHash, req: p.req, topo: topo, trace: trace, state: StateQueued, done: make(chan struct{}), ctx: ctx, cancel: cancel}
	select {
	case m.queue <- j:
	default:
		cancel()
		return JobStatus{}, ErrQueueFull
	}
	j.enqueuedAt = time.Now()
	trace.Phase("queued")
	sh.active[p.id] = j
	m.met.submitted.Inc()
	m.met.misses.Inc() // neither coalesced nor cached: fresh work
	return snapshotLocked(j, ""), nil
}

// serveLocked answers a submission from the in-flight index, the memory
// cache, or the disk store, overlaying the submitter's display name;
// callers hold sh.mu.
func (m *Manager) serveLocked(sh *shard, id, name string) (JobStatus, bool) {
	if j, ok := sh.active[id]; ok {
		m.met.coalesced.Inc()
		st := snapshotLocked(j, "").WithName(name)
		st.Coalesced = true
		return st, true
	}
	if j, tier, ok := m.lookupLocked(sh, id); ok {
		return snapshotLocked(j, tier).WithName(name), true
	}
	return JobStatus{}, false
}

// lookupLocked consults the result caches, memory first: a memory hit
// refreshes LRU recency; a disk hit rehydrates the stored result into a
// completed job record and promotes it into the memory LRU, so repeat
// lookups hit memory. Callers hold sh.mu.
func (m *Manager) lookupLocked(sh *shard, id string) (*job, CacheTier, bool) {
	if j, ok := sh.cache.get(id); ok {
		m.met.hitsMemory.Inc()
		return j, TierMemory, true
	}
	if m.store == nil {
		return nil, "", false
	}
	payload, ok := m.store.Get(id)
	if !ok {
		return nil, "", false
	}
	var res Result
	if err := json.Unmarshal(payload, &res); err != nil {
		// A valid envelope holding bytes we cannot decode (e.g. written
		// by a future schema): treat as a miss and drop it.
		m.store.Delete(id)
		return nil, "", false
	}
	// Rebuild the canonical serving payload once at promotion; every
	// subsequent hit splices instead of marshaling.
	j := &job{id: id, specHash: res.SpecHash, state: StateDone, result: &res, payload: newResultPayload(&res), done: closedChan}
	m.met.hitsDisk.Inc()
	m.met.evicted.Add(uint64(sh.cache.add(id, j)))
	return j, TierDisk, true
}

// closedChan is the pre-closed done channel shared by jobs rehydrated
// from disk (their work finished in some earlier process life).
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Get returns a snapshot of the job with the given ID, looking through
// the in-flight index, the result cache, and the disk store (a cache
// lookup counts as a hit and refreshes recency).
func (m *Manager) Get(id string) (JobStatus, bool) {
	sh := m.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if j, ok := sh.active[id]; ok {
		return snapshotLocked(j, ""), true
	}
	if j, tier, ok := m.lookupLocked(sh, id); ok {
		return snapshotLocked(j, tier), true
	}
	m.met.misses.Inc()
	return JobStatus{}, false
}

// Wait blocks until the job completes (or ctx is done) and returns its
// final snapshot. Unknown IDs — including results evicted from the cache
// — return an error; resubmit to recompute. A job canceled while the
// waiter blocked returns its canceled snapshot alongside a retryable
// ErrCanceled: the waiter's work was never completed, resubmitting runs
// it afresh.
func (m *Manager) Wait(ctx context.Context, id string) (JobStatus, error) {
	sh := m.shard(id)
	sh.mu.Lock()
	j, inflight := sh.active[id]
	if !inflight {
		if cached, tier, ok := m.lookupLocked(sh, id); ok {
			st := snapshotLocked(cached, tier)
			sh.mu.Unlock()
			return st, nil
		}
		sh.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	done := j.done
	sh.mu.Unlock()

	select {
	case <-done:
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if j.state == StateCanceled {
		return snapshotLocked(j, ""), fmt.Errorf("jobs: job %s: %w", id, ErrCanceled)
	}
	// The job just finished; it is in the cache unless a flood of newer
	// results already evicted it.
	if cached, ok := sh.cache.get(id); ok {
		return snapshotLocked(cached, ""), nil
	}
	return JobStatus{}, fmt.Errorf("jobs: job %s: %w", id, ErrEvicted)
}

// Cancel aborts the job with the given ID. A queued job is finished on
// the spot (the worker that eventually dequeues it skips it); a running
// job has its context canceled, and Cancel blocks the few events it
// takes the simulation loop to notice before returning the final
// snapshot — so the returned state is always terminal (canceled) and the
// worker slot is free once Cancel returns. Canceled jobs are never
// cached: a subsequent submission of the same spec runs it again.
// Completed jobs return ErrCompleted (their cached result stays valid);
// IDs that are neither active nor cached return ErrUnknownJob.
func (m *Manager) Cancel(id string) (JobStatus, error) {
	sh := m.shard(id)
	sh.mu.Lock()
	j, ok := sh.active[id]
	if !ok {
		if cached, tier, okc := m.lookupLocked(sh, id); okc {
			st := snapshotLocked(cached, tier)
			sh.mu.Unlock()
			return st, ErrCompleted
		}
		sh.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	j.cancel()
	if j.state == StateQueued {
		// Never picked up: finish it here. The job object stays in the
		// channel until a worker (or Close) drains and skips it.
		m.finishLocked(sh, j, nil, nil, ErrCanceled)
		st := snapshotLocked(j, "")
		sh.mu.Unlock()
		return st, nil
	}
	done := j.done
	sh.mu.Unlock()
	// Running: the sweep aborts at its next context poll (a few hundred
	// simulation events, microseconds of wall clock).
	<-done
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if j.state == StateCanceled {
		return snapshotLocked(j, ""), nil
	}
	// The run won the race and completed before noticing the cancel; its
	// result is valid and cached.
	return snapshotLocked(j, ""), ErrCompleted
}

// Done exposes a job's completion signal for streaming observers
// (the server's ?watch=true SSE handler): the channel is closed once
// the job reaches a terminal state — immediately for cached results —
// and the snapshot function stays valid even after a canceled job is
// dropped from every index, so a watcher can always render the
// terminal state it was waiting for.
func (m *Manager) Done(id string) (<-chan struct{}, func() JobStatus, bool) {
	sh := m.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var j *job
	var tier CacheTier
	if a, ok := sh.active[id]; ok {
		j = a
	} else if c, t, ok := m.lookupLocked(sh, id); ok {
		j, tier = c, t
	} else {
		return nil, nil, false
	}
	snap := func() JobStatus {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		return snapshotLocked(j, tier)
	}
	return j.done, snap, true
}

// TraceInfo is the trace endpoint's payload: the job's lifecycle spans
// plus enough envelope to orient the reader.
type TraceInfo struct {
	ID       string           `json:"id"`
	SpecHash string           `json:"specHash"`
	State    State            `json:"state"`
	Spans    []telemetry.Span `json:"spans"`
}

// Trace returns the lifecycle trace of an active or completed job.
// Traces are retained alongside cached results; jobs rehydrated from
// the disk store carry none (their execution happened in a different
// process life), and canceled jobs are dropped entirely — both report
// ok=false, like an unknown ID.
func (m *Manager) Trace(id string) (TraceInfo, bool) {
	sh := m.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	j, ok := sh.active[id]
	if !ok {
		j, ok = sh.cache.get(id)
	}
	if !ok || j.trace == nil {
		return TraceInfo{}, false
	}
	return TraceInfo{ID: j.id, SpecHash: j.specHash, State: j.state, Spans: j.trace.Snapshot()}, true
}

// Stats assembles the snapshot from the telemetry instruments (the
// counters) and the manager's live state (the gauges) in one pass.
func (m *Manager) Stats() Stats {
	mem, disk := m.met.hitsMemory.Value(), m.met.hitsDisk.Value()
	return Stats{
		Submitted:     m.met.submitted.Value(),
		Completed:     m.met.done.Value(),
		Failed:        m.met.failed.Value(),
		Canceled:      m.met.canceled.Value(),
		Runs:          m.met.runs.Value(),
		CacheHits:     mem + disk,
		CacheMisses:   m.met.misses.Value(),
		Coalesced:     m.met.coalesced.Value(),
		Evicted:       m.met.evicted.Value(),
		DiskHits:      disk,
		DiskStored:    m.met.diskStored.Value(),
		StoreErrors:   m.met.storeErrors.Value(),
		StoreDegraded: m.degraded.Load(),
		Queued:        len(m.queue),
		Running:       int(m.running.Load()),
		CacheLen:      m.cacheLen(),
	}
}

// cacheLen sums the result-cache occupancy across shards (one registry
// view over N stripes — Stats and the ftgcs_jobs_cache_entries gauge
// both read it).
func (m *Manager) cacheLen() int {
	total := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		total += sh.cache.len()
		sh.mu.Unlock()
	}
	return total
}

// Pool exposes the cross-job arena pool's statistics (zero-valued when
// NoReuse disabled the pool).
func (m *Manager) Pool() ftgcs.PoolStats { return m.pool.Stats() }

// Close cancels in-flight runs instead of waiting them out: every active
// job's context is canceled, the workers drain within a few simulation
// events, whatever is still queued is canceled too, and further
// submissions are rejected. Interrupted and queued jobs end in
// StateCanceled (never cached); their waiters get a retryable error.
func (m *Manager) Close() {
	// The write lock excludes every Submit critical section: once the
	// latch flips under it, no submission can add to the queue or the
	// in-flight index, so the cancel/drain below sees all of them.
	m.closeMu.Lock()
	if m.closed.Swap(true) {
		m.closeMu.Unlock()
		return
	}
	m.closeMu.Unlock()
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, j := range sh.active {
			j.cancel()
		}
		sh.mu.Unlock()
	}
	close(m.quit)
	m.wg.Wait()
	for {
		select {
		case j := <-m.queue:
			m.finish(j, nil, nil, ErrClosed)
		default:
			m.flushStore()
			return
		}
	}
}

// flushStore tells the storer to drain everything still pending and
// waits for it: after Close returns, every result that completed before
// the shutdown is durable on disk. No-op without a store.
func (m *Manager) flushStore() {
	if m.store == nil {
		return
	}
	close(m.storerInterrupt) // cut any in-flight retry backoff short
	m.storeMu.Lock()
	m.storeClosing = true
	m.storeCond.Broadcast()
	m.storeMu.Unlock()
	m.storeWg.Wait()
}

// snapshotLocked builds an external view; callers hold the job's shard
// mutex (or exclusively own a not-yet-indexed job).
func snapshotLocked(j *job, tier CacheTier) JobStatus {
	st := JobStatus{ID: j.id, SpecHash: j.specHash, State: j.state, Cached: tier, Result: j.result, payload: j.payload}
	if j.err != nil {
		st.Error = j.err.Error()
		// A canceled job is always retryable: whatever interrupted it
		// (Cancel, budget, shutdown), the spec itself never failed.
		st.Retryable = Retryable(j.err) || j.state == StateCanceled
	}
	if j.state == StateRunning && j.prog != nil {
		p := j.prog.snapshot()
		st.Progress = &p
	}
	return st
}

// WithName overlays a submitter's display name onto a snapshot served
// from shared state (dedup or cache), copying the Result so the stored
// payload — possibly computed under a different submitter's name — is
// never mutated. Submit applies it itself; callers that obtain the
// final snapshot through Wait or Get on behalf of a known submission
// (the server's ?wait=true paths) apply it to honor that submission's
// own name.
func (st JobStatus) WithName(name string) JobStatus {
	if st.Result == nil || st.Result.Name == name {
		return st
	}
	r := *st.Result
	r.Name = name
	st.Result = &r
	return st
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.quit:
			return
		case j := <-m.queue:
			// Re-check quit: when both channels are ready the select
			// above picks at random, and a closing manager must fail
			// queued work instead of starting fresh simulations —
			// otherwise Close can block on arbitrarily long runs it was
			// supposed to cancel.
			select {
			case <-m.quit:
				m.finish(j, nil, nil, ErrClosed)
				return
			default:
			}
			if m.TestHookBeforeRun != nil {
				m.TestHookBeforeRun()
			}
			sh := m.shard(j.id)
			sh.mu.Lock()
			if j.state != StateQueued {
				// Canceled while queued: Cancel already finished it; the
				// stale channel entry is skipped.
				sh.mu.Unlock()
				continue
			}
			j.state = StateRunning
			j.startedAt = time.Now()
			j.prog = newProgressTracker(j.req.Replicate)
			m.running.Add(1)
			m.met.runs.Inc()
			m.met.queueWait.Observe(j.startedAt.Sub(j.enqueuedAt).Seconds())
			j.trace.Phase("building")
			sh.mu.Unlock()
			res, err := m.execute(j)
			// The canonical payload is marshaled here, off every lock:
			// it is both the bytes the zero-copy serving path splices
			// per hit and the body the storer persists.
			var payload *resultPayload
			if err == nil {
				payload = newResultPayload(res)
			}
			m.finish(j, res, payload, err)
		}
	}
}

// finish records the outcome, moves the job from the in-flight index to
// the result cache (done and failed only — canceled work is partial and
// must never be served back), and wakes waiters.
func (m *Manager) finish(j *job, res *Result, payload *resultPayload, err error) {
	sh := m.shard(j.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m.finishLocked(sh, j, res, payload, err)
}

// finishLocked is finish for callers already holding the job's shard
// mutex. A job already in a terminal state is left untouched: a queued
// job canceled by Cancel is finished there and its stale queue entry
// drained later.
func (m *Manager) finishLocked(sh *shard, j *job, res *Result, payload *resultPayload, err error) {
	ran := false
	switch j.state {
	case StateDone, StateFailed, StateCanceled:
		return
	case StateRunning:
		m.running.Add(-1)
		ran = true
	}
	j.cancel() // release the context (and its budget timer, if any)
	var runDur *telemetry.Histogram
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
		j.payload = payload
		m.met.done.Inc()
		runDur = m.met.runDone
	case isCancellation(err):
		j.state = StateCanceled
		j.err = err
		m.met.canceled.Inc()
		runDur = m.met.runCanceld
	default:
		j.state = StateFailed
		j.err = err
		m.met.failed.Inc()
		runDur = m.met.runFailed
	}
	if ran {
		// Jobs canceled while still queued never ran; only executions
		// feed the run-duration histogram.
		runDur.Observe(time.Since(j.startedAt).Seconds())
	}
	j.topo = nil // the cache keeps jobs around; don't pin their graphs too
	j.prog = nil // nor their in-flight systems (the trace stays: it is
	// the job's durable lifecycle record, served by /trace)
	delete(sh.active, j.id)
	if j.state != StateCanceled {
		m.met.evicted.Add(uint64(sh.cache.add(j.id, j)))
	}
	if j.state == StateDone && m.store != nil {
		// Write-behind to the disk tier; the storer goroutine picks it
		// up, and Close drains the backlog before returning. Failures
		// stay memory-only: they are cheap to reproduce and a failed
		// payload is not worth disk space across restarts. The trace's
		// "storing" span opens now and closes when the bytes are
		// durable, overlapping the terminal marker below.
		it := storeItem{id: j.id, res: j.result, payload: j.payload, endSpan: j.trace.StartSpan("storing")}
		m.storeMu.Lock()
		m.pendingStore = append(m.pendingStore, it)
		m.storeCond.Signal()
		m.storeMu.Unlock()
	}
	j.trace.Finish(string(j.state))
	close(j.done)
}

// execute compiles and runs the request's scenarios through ftgcs.Sweep.
// Everything here is deterministic in the request, so two executions of
// the same request produce identical Results; cancellation and the run
// budget can only truncate a run, never perturb what completed.
func (m *Manager) execute(j *job) (*Result, error) {
	n := j.req.Replicate
	scenarios := make([]*ftgcs.Scenario, n)
	seeds := make([]int64, n)
	for i := range scenarios {
		s := j.req.Spec.WithSeed(j.req.Spec.Seed + int64(i))
		seeds[i] = s.Seed
		// j.topo pins every replicate to the base spec's graph (resolved
		// once at Submit): a replication sweep measures seed variance on
		// one experiment, so randomized families must not redraw per
		// seed — and deterministic ones skip n redundant builds.
		sc, err := s.CompileWith(m.reg, j.topo)
		if err != nil {
			return nil, err
		}
		if j.req.IncludeSeries {
			sc = sc.With(ftgcs.WithObserver(captureSeries))
		}
		scenarios[i] = sc
	}
	runCtx := j.ctx
	if m.runLimit > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, m.runLimit)
		defer cancel()
	}
	// Trace the run as one phase per replicate completion, advanced in
	// completion order (the tracker serializes out-of-order sweep
	// workers); the last completion rolls the chain into "aggregating".
	j.prog.onDone = func(done, total int) {
		m.met.replicates.Inc()
		if done < total {
			j.trace.Phase(fmt.Sprintf("running[replicate %d/%d]", done+1, total))
		} else {
			j.trace.Phase("aggregating")
		}
	}
	j.trace.Phase(fmt.Sprintf("running[replicate 1/%d]", n))
	sw := ftgcs.Sweep{
		Workers:        m.sweepWorkers,
		NoReuse:        m.noReuse,
		Pool:           m.pool,
		OnSystemStart:  j.prog.start,
		OnScenarioDone: j.prog.done,
	}
	results := sw.RunContext(runCtx, scenarios)
	for _, r := range results {
		if r.Err == nil {
			continue
		}
		// The budget deadline surfaces as context.DeadlineExceeded on the
		// job's otherwise-uncanceled context; label it so the status says
		// why the job was canceled.
		if errors.Is(r.Err, context.DeadlineExceeded) && j.ctx.Err() == nil {
			return nil, fmt.Errorf("%w (budget %s)", ErrRunLimit, m.runLimit)
		}
		// A canceled job context (Cancel, Close) interrupts the sweep with
		// context.Canceled; normalize to the uniform cancellation error
		// rather than leaking which seed happened to notice first.
		if errors.Is(r.Err, context.Canceled) {
			return nil, ErrCanceled
		}
		return nil, fmt.Errorf("jobs: seed %d: %w", seeds[r.Index], r.Err)
	}

	res := &Result{
		SpecHash: j.specHash,
		Name:     results[0].Name,
		Report:   results[0].Report,
		Summary:  results[0].Summary,
	}
	if series, ok := results[0].Value.([]*metrics.Series); ok {
		res.Series = series
	}
	if n > 1 {
		var intra, local, global metrics.Welford
		reports := make([]ftgcs.Report, n)
		for i, r := range results {
			reports[i] = r.Report
			intra.Add(r.Report.MaxIntraClusterSkew)
			local.Add(r.Report.MaxLocalSkew)
			global.Add(r.Report.MaxGlobalSkew)
		}
		res.Replicates = &Replicates{
			N:       n,
			Seeds:   seeds,
			Reports: reports,
			Aggregate: Aggregate{
				IntraClusterSkew: newStat(&intra),
				LocalSkew:        newStat(&local),
				GlobalSkew:       newStat(&global),
			},
		}
	}
	return res, nil
}

// captureSeries is the observer that snapshots the standard skew series
// for IncludeSeries requests, in a fixed order for byte-stable payloads.
// Series are deep-copied: the raw pointers alias live recorder state that
// a subsequent System.Reset truncates in place, and the captured payload
// outlives the run (it is stored on the job result).
func captureSeries(sys *ftgcs.System) (any, error) {
	names := []string{
		ftgcs.SeriesIntraSkew,
		ftgcs.SeriesLocalCluster,
		ftgcs.SeriesLocalNode,
		ftgcs.SeriesGlobal,
		ftgcs.SeriesFastFraction,
	}
	out := make([]*metrics.Series, 0, len(names))
	for _, name := range names {
		if s := sys.Series(name); s != nil {
			out = append(out, s.Clone())
		}
	}
	return out, nil
}

// lruCache is a size-bounded most-recently-used cache of completed jobs.
type lruCache struct {
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	id  string
	job *job
}

func newLRUCache(cap int) *lruCache {
	return &lruCache{cap: cap, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) get(id string) (*job, bool) {
	e, ok := c.items[id]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*lruEntry).job, true
}

// add inserts (or refreshes) an entry and returns how many were evicted.
func (c *lruCache) add(id string, j *job) int {
	if e, ok := c.items[id]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*lruEntry).job = j
		return 0
	}
	c.items[id] = c.ll.PushFront(&lruEntry{id: id, job: j})
	evicted := 0
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*lruEntry).id)
		evicted++
	}
	return evicted
}

func (c *lruCache) len() int { return c.ll.Len() }
