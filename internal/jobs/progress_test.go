package jobs

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"ftgcs"
)

// fakeSource is a deterministic progressSource: a run whose progress is
// advanced explicitly by the test instead of by a simulation.
type fakeSource struct {
	events  atomic.Uint64
	nowBits atomic.Uint64 // float64 bits of sim time
}

func (f *fakeSource) advance(events uint64, now float64) {
	f.events.Add(events)
	// Monotone store: tests only ever move now forward.
	f.nowBits.Store(math.Float64bits(now))
}

func (f *fakeSource) Progress() ftgcs.Progress {
	return ftgcs.Progress{Events: f.events.Load(), Now: math.Float64frombits(f.nowBits.Load())}
}

// TestProgressTrackerMonotoneUnderConcurrency is the property test for
// the tracker: with runs starting, advancing and finishing out of order
// on several goroutines, every observed snapshot must be monotone in
// Events, SimFraction and Replicate, SimFraction must stay within
// [0, 1], and the final snapshot must be exactly complete.
func TestProgressTrackerMonotoneUnderConcurrency(t *testing.T) {
	const n = 16 // replicate count
	const horizon = 10.0
	p := newProgressTracker(n)

	// A snapshot reader races the writers for the whole test, asserting
	// monotonicity on every observation.
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	violations := make(chan string, 8)
	go func() {
		defer readerWG.Done()
		var last Progress
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := p.snapshot()
			switch {
			case cur.Events < last.Events:
				violations <- "Events regressed"
			case cur.SimFraction < last.SimFraction-1e-12:
				violations <- "SimFraction regressed"
			case cur.Replicate < last.Replicate:
				violations <- "Replicate regressed"
			case cur.SimFraction < 0 || cur.SimFraction > 1+1e-12:
				violations <- "SimFraction out of [0,1]"
			case cur.Replicates != n:
				violations <- "Replicates changed"
			}
			last = cur
		}
	}()

	// Writers complete the runs OUT OF ORDER: each worker pulls the next
	// run index from a shuffled order, advances it in small steps, then
	// freezes it via done().
	order := rand.New(rand.NewSource(42)).Perm(n)
	var next atomic.Int64
	var writerWG sync.WaitGroup
	for w := 0; w < 4; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				idx := order[i]
				src := &fakeSource{}
				p.startRun(idx, src, horizon)
				for step := 1; step <= 10; step++ {
					src.advance(100, horizon*float64(step)/10)
				}
				p.done(idx, ftgcs.SweepResult{})
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	close(violations)
	for v := range violations {
		t.Error(v)
	}

	final := p.snapshot()
	if final.Replicate != n || final.Replicates != n {
		t.Errorf("final replicate = %d/%d, want %d/%d", final.Replicate, final.Replicates, n, n)
	}
	if final.Events != n*10*100 {
		t.Errorf("final events = %d, want %d", final.Events, n*10*100)
	}
	if final.SimFraction != 1 {
		t.Errorf("final simFraction = %v, want 1", final.SimFraction)
	}
}

// TestProgressTrackerOnDoneOrdering: the onDone hook must see the done
// counter strictly increasing 1..n even when runs finish out of order on
// many goroutines — this is the guarantee the manager relies on to emit
// "running[replicate i/n]" trace phases in completion order.
func TestProgressTrackerOnDoneOrdering(t *testing.T) {
	const n = 32
	p := newProgressTracker(n)
	var mu sync.Mutex
	var seen []int
	p.onDone = func(done, total int) {
		if total != n {
			t.Errorf("onDone total = %d, want %d", total, n)
		}
		mu.Lock()
		seen = append(seen, done)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			src := &fakeSource{}
			p.startRun(idx, src, 1)
			src.advance(1, 1)
			p.done(idx, ftgcs.SweepResult{})
		}(i)
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("onDone fired %d times, want %d", len(seen), n)
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("onDone sequence %v: position %d is %d, want %d", seen, i, d, i+1)
		}
	}
}
