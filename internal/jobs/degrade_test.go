package jobs

import (
	"syscall"
	"testing"
	"time"

	"ftgcs/internal/cas"
)

// openFaultStore opens a store whose disk can be broken and healed by
// the returned FaultFS.
func openFaultStore(t *testing.T, dir string) (*cas.Store, *cas.FaultFS) {
	t.Helper()
	ffs := &cas.FaultFS{}
	s, err := cas.Open(dir, cas.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	return s, ffs
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStoreDegradesToMemoryOnPersistentFailure is the degradation
// ladder's first rung: a disk that fails every write trips the breaker
// after the configured number of failed items, the manager reports
// Degraded, and — the actual point — jobs keep completing and serving
// from the memory tier the whole time.
func TestStoreDegradesToMemoryOnPersistentFailure(t *testing.T) {
	store, ffs := openFaultStore(t, t.TempDir())
	ffs.FailWrites(syscall.ENOSPC)
	m := NewManager(Options{
		Workers: 1, Store: store,
		StoreRetries: 1, StoreRetryBackoff: time.Millisecond,
		StoreFailureThreshold: 2, StoreCooldown: time.Hour, // no recovery in this test
	})
	defer m.Close()

	for seed := int64(1); seed <= 3; seed++ {
		st, err := m.Submit(Request{Spec: quickSpec(seed)})
		if err != nil {
			t.Fatalf("submission under store failure rejected: %v", err)
		}
		if got := waitDone(t, m, st.ID); got.State != StateDone {
			t.Fatalf("job under store failure ended %s, want done", got.State)
		}
	}
	waitFor(t, "breaker to open", m.Degraded)

	s := m.Stats()
	if !s.StoreDegraded || s.StoreErrors == 0 {
		t.Fatalf("stats do not reflect the open breaker: %+v", s)
	}
	if s.DiskStored != 0 {
		t.Fatalf("nothing could have been stored: %+v", s)
	}

	// Memory-only service: the completed results still serve as hits.
	st, err := m.Submit(Request{Spec: quickSpec(1)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached != TierMemory || st.State != StateDone {
		t.Fatalf("degraded manager should serve from memory: %+v", st)
	}
	// And fresh work still runs (dropped from the write-behind queue, not
	// blocked by it).
	st2, err := m.Submit(Request{Spec: quickSpec(9)})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, m, st2.ID); got.State != StateDone {
		t.Fatalf("fresh job under open breaker ended %s, want done", got.State)
	}
}

// TestStoreBreakerRecovers: after the disk heals and the cooldown
// elapses, the next result acts as a probe write; its success closes the
// breaker and durability resumes.
func TestStoreBreakerRecovers(t *testing.T) {
	store, ffs := openFaultStore(t, t.TempDir())
	ffs.FailWrites(syscall.ENOSPC)
	m := NewManager(Options{
		Workers: 1, Store: store,
		StoreRetries: 1, StoreRetryBackoff: time.Millisecond,
		StoreFailureThreshold: 1, StoreCooldown: 10 * time.Millisecond,
	})
	defer m.Close()

	st, err := m.Submit(Request{Spec: quickSpec(1)})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, st.ID)
	waitFor(t, "breaker to open", m.Degraded)

	ffs.Heal()
	time.Sleep(20 * time.Millisecond) // let the cooldown elapse

	st2, err := m.Submit(Request{Spec: quickSpec(2)})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, st2.ID)
	waitFor(t, "breaker to close after a successful probe", func() bool { return !m.Degraded() })
	waitFor(t, "probe result to be durable", func() bool { return m.Stats().DiskStored >= 1 })
	if _, ok := store.Get(st2.ID); !ok {
		t.Fatal("probe result not on disk after recovery")
	}
	if s := m.Stats(); s.StoreDegraded {
		t.Fatalf("stats still degraded after recovery: %+v", s)
	}
}

// TestStorerSurvivesPanic: a panic out of the store write path (poisoned
// encoder, broken disk driver) is recovered and counted — the storer
// goroutine keeps draining, and later results still reach disk.
func TestStorerSurvivesPanic(t *testing.T) {
	store, ffs := openFaultStore(t, t.TempDir())
	ffs.PanicWrites(true)
	m := NewManager(Options{
		Workers: 1, Store: store,
		StoreRetries: 1, StoreRetryBackoff: time.Millisecond,
		StoreFailureThreshold: 100, StoreCooldown: time.Hour, // panics alone must not trip it here
	})
	defer m.Close()

	st, err := m.Submit(Request{Spec: quickSpec(1)})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, st.ID)
	waitFor(t, "recovered panic to be counted", func() bool { return m.Stats().StoreErrors >= 1 })
	if m.Degraded() {
		t.Fatal("one panicking item below the threshold must not trip the breaker")
	}

	ffs.Heal()
	st2, err := m.Submit(Request{Spec: quickSpec(2)})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, st2.ID)
	waitFor(t, "storer to keep working after the panic", func() bool { return m.Stats().DiskStored >= 1 })
	if _, ok := store.Get(st2.ID); !ok {
		t.Fatal("post-panic result not on disk: the storer goroutine died")
	}
}

// TestCloseDoesNotBlockOnBrokenStore: Close must return promptly even
// when the store fails every write and the retry schedule would
// otherwise sleep for seconds — the flush interrupts backoff and every
// pending item gets at most one attempt.
func TestCloseDoesNotBlockOnBrokenStore(t *testing.T) {
	store, ffs := openFaultStore(t, t.TempDir())
	ffs.FailWrites(syscall.ENOSPC)
	m := NewManager(Options{
		Workers: 1, Store: store,
		// A schedule that would take ≥ 4s per item if Close waited it out.
		StoreRetries: 8, StoreRetryBackoff: 500 * time.Millisecond,
		StoreFailureThreshold: 100, StoreCooldown: time.Hour,
	})

	st, err := m.Submit(Request{Spec: quickSpec(1)})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, st.ID)

	start := time.Now()
	m.Close()
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Close took %v against a broken store; the retry schedule was not interrupted", elapsed)
	}
}
