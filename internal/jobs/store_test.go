package jobs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"testing"

	"ftgcs/internal/cas"
)

func nan() float64 { return math.NaN() }

func openStore(t *testing.T, dir string) *cas.Store {
	t.Helper()
	s, err := cas.Open(dir, cas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRestartServesFromDisk is the durability core at the manager level:
// a second manager on the same store directory serves the first's work
// as a "disk"-tier hit, byte-identical, with zero recomputation.
func TestRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()

	m1 := NewManager(Options{Workers: 1, Store: openStore(t, dir)})
	st, err := m1.Submit(Request{Spec: quickSpec(1)})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m1, st.ID)
	first, err := json.Marshal(final.Result)
	if err != nil {
		t.Fatal(err)
	}
	m1.Close() // flushes the write-behind queue

	m2 := NewManager(Options{Workers: 1, Store: openStore(t, dir)})
	defer m2.Close()
	st2, err := m2.Submit(Request{Spec: quickSpec(1)})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached != TierDisk || st2.State != StateDone || st2.Result == nil {
		t.Fatalf("restart resubmission should hit the disk tier: %+v", st2)
	}
	second, err := json.Marshal(st2.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("disk-tier result not byte-identical:\n%s\n%s", first, second)
	}
	if s := m2.Stats(); s.Runs != 0 || s.DiskHits != 1 {
		t.Fatalf("restart must not recompute: %+v", s)
	}

	// The disk hit was promoted into memory: the next lookup is a
	// memory-tier hit.
	st3, err := m2.Submit(Request{Spec: quickSpec(1)})
	if err != nil {
		t.Fatal(err)
	}
	if st3.Cached != TierMemory {
		t.Fatalf("promoted result should serve from memory: %+v", st3)
	}
}

// TestCloseFlushesToDisk pins the shutdown guarantee: results completed
// before Close are on disk when Close returns, even though writes are
// asynchronous.
func TestCloseFlushesToDisk(t *testing.T) {
	dir := t.TempDir()
	store := openStore(t, dir)
	m := NewManager(Options{Workers: 2, Store: store})

	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		st, err := m.Submit(Request{Spec: quickSpec(seed)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitDone(t, m, id)
	}
	m.Close()

	for _, id := range ids {
		if _, ok := store.Get(id); !ok {
			t.Errorf("result %s not on disk after Close", id)
		}
	}
	if st := store.Stats(); st.Puts != 3 {
		t.Errorf("store puts = %d, want 3", st.Puts)
	}
}

// TestCorruptDiskObjectRecomputes: a store object damaged on disk reads
// as a miss, so the manager silently recomputes instead of crashing or
// serving bad data.
func TestCorruptDiskObjectRecomputes(t *testing.T) {
	dir := t.TempDir()

	m1 := NewManager(Options{Workers: 1, Store: openStore(t, dir)})
	st, err := m1.Submit(Request{Spec: quickSpec(5)})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m1, st.ID)
	want, err := json.Marshal(final.Result)
	if err != nil {
		t.Fatal(err)
	}
	m1.Close()

	// Truncate the one object file on disk.
	store := openStore(t, dir)
	paths, err := objectPaths(dir)
	if err != nil || len(paths) != 1 {
		t.Fatalf("objects on disk = %v (err %v), want exactly 1", paths, err)
	}
	if err := os.Truncate(paths[0], 10); err != nil {
		t.Fatal(err)
	}

	m2 := NewManager(Options{Workers: 1, Store: store})
	defer m2.Close()
	st2, err := m2.Submit(Request{Spec: quickSpec(5)})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached != "" {
		t.Fatalf("corrupt object must not serve as a hit: %+v", st2)
	}
	re := waitDone(t, m2, st2.ID)
	got, err := json.Marshal(re.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("recomputed result differs from original:\n%s\n%s", want, got)
	}
	if s := m2.Stats(); s.Runs != 1 {
		t.Fatalf("expected exactly one recomputation: %+v", s)
	}
}

// objectPaths lists every .obj file under a store directory.
func objectPaths(dir string) ([]string, error) {
	var out []string
	shards, err := os.ReadDir(dir + "/objects")
	if err != nil {
		return nil, err
	}
	for _, sh := range shards {
		files, err := os.ReadDir(dir + "/objects/" + sh.Name())
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			out = append(out, dir+"/objects/"+sh.Name()+"/"+f.Name())
		}
	}
	return out, nil
}

// TestStatRoundTrip: the replicate aggregate codec is its own inverse —
// a Result carrying NaN std/CI (n == 1 replicates are impossible, but
// n == 2 with identical values yields std 0; NaN appears via the mean of
// an empty series) survives the disk round trip byte-identically.
func TestStatRoundTrip(t *testing.T) {
	cases := []Stat{
		{N: 3, Mean: 1.5, Std: 0.25, CI95: 0.283},
		{N: 1, Mean: 2, Std: nan(), CI95: nan()},
		{N: 0, Mean: nan(), Std: nan(), CI95: nan()},
	}
	for _, c := range cases {
		b1, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		var back Stat
		if err := json.Unmarshal(b1, &back); err != nil {
			t.Fatal(err)
		}
		b2, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("Stat round trip not stable: %s vs %s", b1, b2)
		}
	}
}
