package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"ftgcs/internal/spec"
)

// stressSpec is cheap to build and quick to run — the stress test cares
// about index contention, not simulation depth.
func stressSpec(seed int64) spec.ScenarioSpec {
	return spec.ScenarioSpec{
		Topology: spec.Topology{Name: "line", Size: 2},
		Seed:     seed,
		Horizon:  spec.Horizon{Seconds: 0.1},
	}
}

// TestShardedLifecycleStress hammers every public lifecycle entry point
// across the sharded index from many goroutines at once — Submit hitting
// all shards, Wait/Get/Cancel/Stats racing each other and the workers,
// then Close racing a late burst of submissions. The test's teeth are
// the race detector and the absence of deadlock; the assertions pin the
// error contract (only documented errors escape) and the terminal
// invariant (nothing left running after Close).
func TestShardedLifecycleStress(t *testing.T) {
	m := NewManager(Options{Workers: 2, CacheSize: 24, QueueDepth: 128, SweepWorkers: 1})

	waitErrOK := func(err error) bool {
		return err == nil || errors.Is(err, ErrCanceled) || errors.Is(err, ErrClosed) ||
			errors.Is(err, ErrUnknownJob) || errors.Is(err, ErrEvicted) || errors.Is(err, context.DeadlineExceeded)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 48; i++ {
				// 16 distinct specs against 24 cache slots: plenty of
				// coalescing and cache hits alongside fresh work.
				seed := int64(1 + (g+i*goroutines)%16)
				st, err := m.Submit(Request{Spec: stressSpec(seed)})
				if err != nil {
					if !errors.Is(err, ErrQueueFull) {
						t.Errorf("submit: unexpected error %v", err)
					}
					continue
				}
				switch i % 4 {
				case 0:
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					if _, err := m.Wait(ctx, st.ID); !waitErrOK(err) {
						t.Errorf("wait: unexpected error %v", err)
					}
					cancel()
				case 1:
					m.Get(st.ID)
					m.Trace(st.ID)
				case 2:
					if _, err := m.Cancel(st.ID); err != nil &&
						!errors.Is(err, ErrCompleted) && !errors.Is(err, ErrUnknownJob) {
						t.Errorf("cancel: unexpected error %v", err)
					}
				case 3:
					m.Stats()
				}
			}
		}(g)
	}
	wg.Wait()

	// Close races a late burst: submissions observe either acceptance,
	// backpressure, or ErrClosed — never a panic or a hung Wait.
	var cwg sync.WaitGroup
	for g := 0; g < 4; g++ {
		cwg.Add(1)
		go func(g int) {
			defer cwg.Done()
			for i := 0; i < 12; i++ {
				st, err := m.Submit(Request{Spec: stressSpec(int64(100 + g*12 + i))})
				if err != nil {
					if !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrClosed) {
						t.Errorf("submit during close: unexpected error %v", err)
					}
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				if _, err := m.Wait(ctx, st.ID); !waitErrOK(err) {
					t.Errorf("wait during close: unexpected error %v", err)
				}
				cancel()
			}
		}(g)
	}
	m.Close()
	cwg.Wait()
	if s := m.Stats(); s.Running != 0 || s.Queued != 0 {
		t.Fatalf("work left after close: %+v", s)
	}
}

// TestPoolDifferentialAcrossJobs is the cross-job analogue of
// TestReplicatedJobReuseDifferential: distinct-seed jobs sharing one
// build key run through a pooling manager (systems built for earlier
// jobs are reset for later ones) and a rebuilding one, and every
// serialized response must be byte-identical. It also asserts the
// pooled arm actually exercised the pool, so the equality is a real
// differential rather than two rebuild arms.
func TestPoolDifferentialAcrossJobs(t *testing.T) {
	run := func(noReuse bool) (out []string, hits uint64) {
		m := NewManager(Options{Workers: 1, SweepWorkers: 1, NoReuse: noReuse, PoolSize: 4})
		defer m.Close()
		for seed := int64(1); seed <= 6; seed++ {
			st, err := m.Submit(Request{Spec: benchSpec(seed), Replicate: 2})
			if err != nil {
				t.Fatal(err)
			}
			final := waitDone(t, m, st.ID)
			if final.State != StateDone {
				t.Fatalf("job state %v: %+v", final.State, final)
			}
			b, err := json.Marshal(final)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, string(b))
		}
		return out, m.Pool().Hits
	}
	pooled, hits := run(false)
	rebuilt, _ := run(true)
	if hits == 0 {
		t.Fatal("pooling arm never hit the pool; differential is vacuous")
	}
	for i := range pooled {
		if pooled[i] != rebuilt[i] {
			t.Errorf("job %d: pool changed the served bytes:\npooled:  %s\nrebuilt: %s", i+1, pooled[i], rebuilt[i])
		}
	}
}

// BenchmarkSubmitCachedHot is the serving fast path end to end at the
// jobs layer: a pre-hashed resubmission of a cached result plus its
// zero-copy encoding into a reused buffer. This is what a hot GET/POST
// of a completed experiment costs before HTTP framing.
func BenchmarkSubmitCachedHot(b *testing.B) {
	m := NewManager(Options{Workers: 1})
	defer m.Close()
	p, err := PrepareRequest(Request{Spec: quickSpec(1)})
	if err != nil {
		b.Fatal(err)
	}
	st, err := m.SubmitPrepared(p)
	if err != nil {
		b.Fatal(err)
	}
	waitDone(b, m, st.ID)
	buf := make([]byte, 0, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hit, err := m.SubmitPrepared(p)
		if err != nil {
			b.Fatal(err)
		}
		buf, err = hit.AppendJSON(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(buf) == 0 {
		b.Fatal("empty encoding")
	}
}

// BenchmarkSubmitFreshPooled pushes distinct-seed fresh jobs (one build
// key) through the manager: the pooled arm resets a pooled system per
// job where the rebuild arm constructs one from scratch — the cross-job
// counterpart of BenchmarkReplicatedJob's within-job reuse.
func BenchmarkSubmitFreshPooled(b *testing.B) {
	for _, arm := range []struct {
		name    string
		noReuse bool
	}{{"pooled", false}, {"rebuild", true}} {
		b.Run(arm.name, func(b *testing.B) {
			m := NewManager(Options{Workers: 1, SweepWorkers: 1, NoReuse: arm.noReuse, CacheSize: 4})
			defer m.Close()
			// Warm the pool (and every lazy manager structure) outside the
			// timed region: the first job's full Build would otherwise be
			// amortized over b.N, making allocs/op depend on the iteration
			// count the harness picks.
			if st, err := m.Submit(Request{Spec: benchSpec(0)}); err != nil {
				b.Fatal(err)
			} else if st := waitDone(b, m, st.ID); st.State != StateDone {
				b.Fatalf("warm-up job state %v", st.State)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := m.Submit(Request{Spec: benchSpec(int64(1 + i))})
				if err != nil {
					b.Fatal(err)
				}
				if st := waitDone(b, m, st.ID); st.State != StateDone {
					b.Fatalf("job state %v", st.State)
				}
			}
		})
	}
}
