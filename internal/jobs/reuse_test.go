package jobs

import (
	"encoding/json"
	"testing"

	"ftgcs/internal/spec"
)

// replicatedSpec is a reuse-eligible replicated experiment: pinned
// topology draw (resolved once at Submit), a stateful drift adversary and
// a per-cluster Byzantine attack — the state that a reused system must
// rewind exactly.
func replicatedSpec(seed int64) spec.ScenarioSpec {
	return spec.ScenarioSpec{
		Topology: spec.Topology{Name: "line", Size: 3},
		Seed:     seed,
		Drift:    "randomwalk",
		Attack:   &spec.Attack{Name: "silent", Clusters: 1},
		Horizon:  spec.Horizon{Seconds: 2},
	}
}

// TestReplicatedJobReuseDifferential runs the same replicated request
// through a reusing manager (the default: one build per sweep worker,
// reset per additional seed) and a rebuilding one, and requires the
// serialized results to be byte-identical — the jobs-level proof of the
// reset contract.
func TestReplicatedJobReuseDifferential(t *testing.T) {
	run := func(noReuse bool) []byte {
		t.Helper()
		m := NewManager(Options{Workers: 1, SweepWorkers: 1, NoReuse: noReuse})
		defer m.Close()
		st, err := m.Submit(Request{Spec: replicatedSpec(7), Replicate: 4})
		if err != nil {
			t.Fatal(err)
		}
		final := waitDone(t, m, st.ID)
		if final.State != StateDone || final.Result == nil || final.Result.Replicates == nil {
			t.Fatalf("replicated job did not complete: %+v", final)
		}
		b, err := json.Marshal(final.Result)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	reused, rebuilt := run(false), run(true)
	if string(reused) != string(rebuilt) {
		t.Fatalf("reuse changed a replicated job's result:\nreuse:   %s\nrebuild: %s", reused, rebuilt)
	}
}

// benchSpec is build-heavy and run-light: a 16-cluster grid at k=7 (112
// nodes) over a tiny horizon, so the per-seed setup cost dominates and
// the reuse-vs-rebuild gap is what the benchmark measures.
func benchSpec(seed int64) spec.ScenarioSpec {
	return spec.ScenarioSpec{
		Topology: spec.Topology{Name: "grid", Size: 4},
		Clusters: spec.Clusters{K: 7, F: 2},
		Seed:     seed,
		Horizon:  spec.Horizon{Seconds: 0.02},
	}
}

// BenchmarkReplicatedJob pushes 8 seeds of a build-heavy spec through the
// manager per iteration. The reuse arm builds once and resets per seed;
// the rebuild arm constructs all 8 systems from scratch. Per-iteration
// seeds differ so the result cache never short-circuits the work.
func BenchmarkReplicatedJob(b *testing.B) {
	for _, arm := range []struct {
		name    string
		noReuse bool
	}{{"reuse", false}, {"rebuild", true}} {
		b.Run(arm.name, func(b *testing.B) {
			m := NewManager(Options{Workers: 1, SweepWorkers: 1, NoReuse: arm.noReuse})
			defer m.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := m.Submit(Request{Spec: benchSpec(int64(1 + i*1000)), Replicate: 8})
				if err != nil {
					b.Fatal(err)
				}
				if st := waitDone(b, m, st.ID); st.State != StateDone {
					b.Fatalf("job state %v", st.State)
				}
			}
		})
	}
}
