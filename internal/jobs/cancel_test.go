package jobs

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// longSpec is validation-legal but heavy: tens of millions of events. It
// exists to still be running when the tests cancel it.
func longSpec(seed int64) Request {
	s := quickSpec(seed)
	s.Horizon.Seconds = 50000
	return Request{Spec: s}
}

// waitRunning polls until the job reports the running state.
func waitRunning(t *testing.T, m *Manager, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := m.Get(id)
		if ok && st.State == StateRunning {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
	return JobStatus{}
}

// TestCancelRunningJob is the headline acceptance path: canceling a
// running long-horizon job returns promptly with the canceled state,
// frees the worker slot, and leaves nothing in the result cache.
func TestCancelRunningJob(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer m.Close()

	st, err := m.Submit(longSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, st.ID)

	start := time.Now()
	final, err := m.Cancel(st.ID)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if final.State != StateCanceled {
		t.Fatalf("state after Cancel = %v, want canceled: %+v", final.State, final)
	}
	if !final.Retryable {
		t.Fatalf("canceled snapshot should be marked retryable: %+v", final)
	}
	if elapsed > 250*time.Millisecond {
		t.Fatalf("Cancel of a running job took %v, want < 250ms", elapsed)
	}

	// Never cached: the ID is gone, and resubmitting runs the work again.
	if got, ok := m.Get(st.ID); ok {
		t.Fatalf("canceled job still visible: %+v", got)
	}
	re, err := m.Submit(longSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	if re.Cached != "" || re.Coalesced {
		t.Fatalf("resubmission of a canceled spec must run afresh: %+v", re)
	}
	if _, err := m.Cancel(re.ID); err != nil {
		t.Fatalf("cancel resubmission: %v", err)
	}

	// The worker slot is free: an unrelated quick job completes.
	quick, err := m.Submit(Request{Spec: quickSpec(7)})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitDone(t, m, quick.ID); final.State != StateDone {
		t.Fatalf("worker slot not freed after cancel: %+v", final)
	}

	if s := m.Stats(); s.Canceled != 2 {
		t.Fatalf("stats.Canceled = %d, want 2: %+v", s.Canceled, s)
	}
}

// TestCancelQueuedJob: a job canceled before any worker picks it up is
// finished on the spot and never runs.
func TestCancelQueuedJob(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 8})
	defer m.Close()
	entered := make(chan struct{}, 8)
	gate := make(chan struct{})
	m.TestHookBeforeRun = func() {
		entered <- struct{}{}
		<-gate
	}

	first, err := m.Submit(Request{Spec: quickSpec(1)})
	if err != nil {
		t.Fatal(err)
	}
	<-entered // worker holds job 1; everything below stays queued
	queued, err := m.Submit(Request{Spec: quickSpec(2)})
	if err != nil {
		t.Fatal(err)
	}

	st, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatalf("Cancel queued: %v", err)
	}
	if st.State != StateCanceled {
		t.Fatalf("queued job state after Cancel = %v, want canceled", st.State)
	}

	close(gate)
	if final := waitDone(t, m, first.ID); final.State != StateDone {
		t.Fatalf("held job should complete: %+v", final)
	}
	// The canceled job's stale queue entry is skipped, not executed.
	if s := m.Stats(); s.Runs != 1 || s.Canceled != 1 {
		t.Fatalf("canceled queued job must never run: %+v", s)
	}
	if _, ok := m.Get(queued.ID); ok {
		t.Fatal("canceled queued job must not be cached")
	}
}

// TestCancelTerminalAndUnknown: completed work reports ErrCompleted (the
// cached result stays valid), unknown IDs report ErrUnknownJob.
func TestCancelTerminalAndUnknown(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer m.Close()

	st, err := m.Submit(Request{Spec: quickSpec(5)})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, st.ID)
	got, err := m.Cancel(st.ID)
	if !errors.Is(err, ErrCompleted) {
		t.Fatalf("Cancel of done job: err = %v, want ErrCompleted", err)
	}
	if got.State != StateDone || got.Result == nil {
		t.Fatalf("Cancel of done job should return the cached result: %+v", got)
	}
	if _, err := m.Cancel("sha256:nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Cancel of unknown job: err = %v, want ErrUnknownJob", err)
	}
}

// TestWaitersOfCanceledJobGetRetryableError: coalesced waiters blocked on
// a job that gets canceled are released with a retryable error, not a
// cache miss.
func TestWaitersOfCanceledJobGetRetryableError(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer m.Close()

	st, err := m.Submit(longSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, st.ID)

	const waiters = 4
	errs := make([]error, waiters)
	stats := make([]JobStatus, waiters)
	var wg, entered sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		entered.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			entered.Done()
			stats[i], errs[i] = m.Wait(ctx, st.ID)
		}(i)
	}
	// Give every waiter time to block on the job before canceling it (a
	// waiter that arrives after the cancel would see an unknown ID —
	// canceled jobs are dropped entirely, which is its own contract).
	entered.Wait()
	time.Sleep(100 * time.Millisecond)
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	wg.Wait()
	for i := 0; i < waiters; i++ {
		if !errors.Is(errs[i], ErrCanceled) {
			t.Fatalf("waiter %d: err = %v, want ErrCanceled", i, errs[i])
		}
		if !Retryable(errs[i]) {
			t.Fatalf("waiter %d: cancellation must be retryable", i)
		}
		if stats[i].State != StateCanceled {
			t.Fatalf("waiter %d: state = %v, want canceled", i, stats[i].State)
		}
	}
}

// TestRunLimitBudget: a manager-level wall-clock budget cancels a heavy
// job on its own, with an error naming the limit; the result is not
// cached.
func TestRunLimitBudget(t *testing.T) {
	// The budget must be comfortably above a quick job's runtime (even
	// under -race) yet far below the long job's.
	m := NewManager(Options{Workers: 1, RunLimit: 2 * time.Second})
	defer m.Close()

	st, err := m.Submit(longSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := m.Wait(ctx, st.ID)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Wait on budget-canceled job: err = %v, want ErrCanceled", err)
	}
	if final.State != StateCanceled {
		t.Fatalf("state = %v, want canceled: %+v", final.State, final)
	}
	if !strings.Contains(final.Error, "run limit") {
		t.Fatalf("error should name the budget: %+v", final)
	}
	if _, ok := m.Get(st.ID); ok {
		t.Fatal("budget-canceled job must not be cached")
	}

	// The budget does not touch jobs that fit inside it.
	quick, err := m.Submit(Request{Spec: quickSpec(12)})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitDone(t, m, quick.ID); final.State != StateDone {
		t.Fatalf("quick job should beat the budget: %+v", final)
	}
}

// TestProgressMonotone: a running job's status exposes progress that only
// ever advances, and replication jobs report replicate counts.
func TestProgressMonotone(t *testing.T) {
	m := NewManager(Options{Workers: 1, SweepWorkers: 2})
	defer m.Close()

	req := longSpec(21)
	req.Replicate = 2
	st, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Cancel(st.ID)

	var last Progress
	sampled := 0
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && sampled < 50 {
		got, ok := m.Get(st.ID)
		if !ok {
			t.Fatal("job disappeared while running")
		}
		if got.State != StateRunning || got.Progress == nil {
			time.Sleep(time.Millisecond)
			continue
		}
		p := *got.Progress
		if p.Events < last.Events || p.SimFraction < last.SimFraction || p.Replicate < last.Replicate {
			t.Fatalf("progress went backwards: %+v after %+v", p, last)
		}
		if p.Replicates != 2 {
			t.Fatalf("Replicates = %d, want 2", p.Replicates)
		}
		if p.SimFraction < 0 || p.SimFraction > 1 {
			t.Fatalf("SimFraction out of range: %+v", p)
		}
		last = p
		sampled++
	}
	if sampled == 0 {
		t.Fatal("never observed running progress")
	}
	if last.Events == 0 {
		t.Fatal("progress never advanced past zero events")
	}
}
