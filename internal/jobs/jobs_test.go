package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ftgcs"
	"ftgcs/internal/spec"
)

func quickSpec(seed int64) spec.ScenarioSpec {
	return spec.ScenarioSpec{
		Topology: spec.Topology{Name: "line", Size: 2},
		Seed:     seed,
		Horizon:  spec.Horizon{Seconds: 3},
	}
}

func waitDone(t testing.TB, m *Manager, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return st
}

func TestSubmitRunAndCacheHit(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer m.Close()

	st, err := m.Submit(Request{Spec: quickSpec(1)})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued || st.Cached != "" {
		t.Fatalf("fresh submission should be queued and uncached: %+v", st)
	}
	if !strings.HasPrefix(st.ID, "sha256:") || !strings.HasPrefix(st.SpecHash, "sha256:") {
		t.Fatalf("ids must be content hashes: %+v", st)
	}

	final := waitDone(t, m, st.ID)
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("job did not complete: %+v", final)
	}
	if final.Result.Report.Events == 0 {
		t.Fatal("result carries an empty report")
	}
	first, err := json.Marshal(final.Result)
	if err != nil {
		t.Fatal(err)
	}

	// Second submission: served from cache, work not re-run,
	// byte-identical payload.
	st2, err := m.Submit(Request{Spec: quickSpec(1)})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached != TierMemory || st2.State != StateDone || st2.Result == nil {
		t.Fatalf("resubmission should be a cache hit: %+v", st2)
	}
	second, err := json.Marshal(st2.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cache hit result not byte-identical:\n%s\n%s", first, second)
	}
	if s := m.Stats(); s.Runs != 1 || s.CacheHits == 0 || s.CacheMisses != 1 {
		t.Fatalf("want exactly 1 run, ≥1 cache hit and exactly 1 miss (the first submission), got %+v", s)
	}
}

// TestCacheHitCarriesCallerName: the display name is excluded from job
// identity, so submissions differing only in name share one run — but
// each submitter gets its own name back, not the first submitter's, and
// the stored result is never mutated.
func TestCacheHitCarriesCallerName(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer m.Close()

	a := quickSpec(5)
	a.Name = "first"
	st, err := m.Submit(Request{Spec: a})
	if err != nil {
		t.Fatal(err)
	}
	if done := waitDone(t, m, st.ID); done.Result.Name != "first" {
		t.Fatalf("fresh run name = %q, want \"first\"", done.Result.Name)
	}

	b := quickSpec(5)
	b.Name = "second"
	st2, err := m.Submit(Request{Spec: b})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached != TierMemory || st2.Result == nil {
		t.Fatalf("same experiment under a new name should cache-hit: %+v", st2)
	}
	if st2.Result.Name != "second" {
		t.Fatalf("cache hit name = %q, want the caller's \"second\"", st2.Result.Name)
	}

	// An unnamed submission gets the default label, not a stale one.
	c := quickSpec(5)
	st3, err := m.Submit(Request{Spec: c})
	if err != nil {
		t.Fatal(err)
	}
	if st3.Result == nil || st3.Result.Name != c.DisplayName() {
		t.Fatalf("unnamed cache hit result = %+v, want name %q", st3.Result, c.DisplayName())
	}

	// A poll by ID carries no caller name; it reports the submission
	// that actually ran.
	got, ok := m.Get(st.ID)
	if !ok || got.Result == nil || got.Result.Name != "first" {
		t.Fatalf("stored result mutated: %+v", got)
	}
	if s := m.Stats(); s.Runs != 1 {
		t.Fatalf("want exactly 1 run, got %+v", s)
	}
}

// TestReplicationPinsTopology: a replicated run measures seed variance
// on one experiment, so every replicate must run the base seed's graph
// even for randomized topology families.
func TestReplicationPinsTopology(t *testing.T) {
	m := NewManager(Options{Workers: 2})
	defer m.Close()

	s := spec.ScenarioSpec{
		Topology: spec.Topology{Name: "random", Size: 8},
		Seed:     3,
		Horizon:  spec.Horizon{Seconds: 2},
	}
	st, err := m.Submit(Request{Spec: s, Replicate: 3})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, st.ID)
	if final.State != StateDone || final.Result == nil || final.Result.Replicates == nil {
		t.Fatalf("replicated job did not complete: %+v", final)
	}
	reports := final.Result.Replicates.Reports

	// Replicate 1 ran seed 4; its report must match a hand-built run of
	// seed 4 on seed 3's topology draw.
	topo, err := ftgcs.TopologyByName("random", 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.WithSeed(4).Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.With(ftgcs.WithTopology(topo)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if reports[1] != want {
		t.Fatalf("replicate 1 did not run on the base topology:\n got %+v\nwant %+v", reports[1], want)
	}

	// And it must NOT match seed 4's own topology draw (the behavior
	// this test guards against).
	sc4, err := s.WithSeed(4).Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	ownDraw, err := sc4.Run()
	if err != nil {
		t.Fatal(err)
	}
	if reports[1] == ownDraw {
		t.Fatal("replicate 1 ran on its own per-seed topology draw; graphs are not pinned (or the draws coincide — pick different seeds)")
	}
}

// TestReplicateBuildsTopologyOnce: the graph is resolved once at Submit
// and shared by every replicate; neither validation nor the per-seed
// compiles rebuild it.
func TestReplicateBuildsTopologyOnce(t *testing.T) {
	var builds atomic.Int32
	reg := ftgcs.NewRegistry()
	reg.RegisterTopology("counted", func(size int, _ int64) (*ftgcs.Topology, error) {
		builds.Add(1)
		return ftgcs.Line(size), nil
	})
	reg.RegisterDrift("spread", func() ftgcs.DriftModel { return ftgcs.SpreadDrift{} })
	reg.RegisterDelay("uniform", func() ftgcs.DelayModel { return ftgcs.UniformDelayModel{} })

	m := NewManager(Options{Workers: 1, Registry: reg})
	defer m.Close()
	s := spec.ScenarioSpec{
		Topology: spec.Topology{Name: "counted", Size: 2},
		Seed:     1,
		Horizon:  spec.Horizon{Seconds: 2},
	}
	st, err := m.Submit(Request{Spec: s, Replicate: 3})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitDone(t, m, st.ID); final.State != StateDone {
		t.Fatalf("replicated job did not complete: %+v", final)
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("topology built %d times for 3 replicates, want 1", n)
	}
}

// TestCloseCancelsQueuedJobs: Close must cancel work still on the queue,
// not let workers race it onto fresh simulation runs — and canceled work
// is never cached, so the IDs vanish entirely.
func TestCloseCancelsQueuedJobs(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 8})
	entered := make(chan struct{}, 8)
	gate := make(chan struct{})
	m.TestHookBeforeRun = func() {
		entered <- struct{}{}
		<-gate
	}

	ids := make([]string, 4)
	for i := range ids {
		st, err := m.Submit(Request{Spec: quickSpec(100 + int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	<-entered // the single worker now holds job 0; jobs 1–3 are queued

	done := make(chan struct{})
	go func() {
		m.Close()
		close(done)
	}()
	// Release the worker only once Close has committed (quit closed,
	// submissions rejected), so the worker's next loop observes the
	// shutdown alongside the non-empty queue.
	bad := Request{Spec: spec.ScenarioSpec{Topology: spec.Topology{Name: "moebius", Size: 1}}}
	for {
		if _, err := m.Submit(bad); errors.Is(err, ErrClosed) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	<-done

	if s := m.Stats(); s.Runs != 1 {
		t.Fatalf("queued jobs must be canceled on Close, not run: %+v", s)
	}
	// Everything — the interrupted in-flight job and the queued ones —
	// ends canceled, and canceled work never enters the result cache.
	if s := m.Stats(); s.Canceled != uint64(len(ids)) || s.Completed != 0 || s.Failed != 0 {
		t.Fatalf("all %d jobs should be canceled on Close: %+v", len(ids), s)
	}
	for _, id := range ids {
		if st, ok := m.Get(id); ok {
			t.Fatalf("canceled job must not be cached after Close: %+v", st)
		}
	}
}

func TestConcurrentIdenticalSubmissionsCoalesce(t *testing.T) {
	m := NewManager(Options{Workers: 2})
	defer m.Close()

	// Hold the workers until every submission has landed, so all of them
	// observe the same in-flight job.
	gate := make(chan struct{})
	m.TestHookBeforeRun = func() { <-gate }

	const clients = 16
	req := Request{Spec: quickSpec(3)}
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := m.Submit(req)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	close(gate)

	results := make([][]byte, clients)
	for i, id := range ids {
		st := waitDone(t, m, id)
		if st.State != StateDone {
			t.Fatalf("client %d: %+v", i, st)
		}
		b, err := json.Marshal(st.Result)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = b
	}
	for i := 1; i < clients; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("identical requests got different job ids: %s vs %s", ids[i], ids[0])
		}
		if !bytes.Equal(results[i], results[0]) {
			t.Fatal("coalesced clients saw different result bytes")
		}
	}
	s := m.Stats()
	if s.Runs != 1 {
		t.Fatalf("identical concurrent submissions must run once, ran %d times", s.Runs)
	}
	if s.Submitted != 1 || s.Coalesced != clients-1 {
		t.Fatalf("want 1 submitted + %d coalesced, got %+v", clients-1, s)
	}
}

func TestQueueFull(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 1})
	defer m.Close()
	gate := make(chan struct{})
	m.TestHookBeforeRun = func() { <-gate }
	defer close(gate)

	// First fills the worker, second fills the queue; distinct specs so
	// nothing coalesces.
	if _, err := m.Submit(Request{Spec: quickSpec(10)}); err != nil {
		t.Fatal(err)
	}
	// The worker may or may not have popped the first job yet; submit
	// until the queue is truly full, then expect ErrQueueFull.
	var err error
	for i := int64(11); i < 20; i++ {
		if _, err = m.Submit(Request{Spec: quickSpec(i)}); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
}

func TestValidationErrorsNeverCreateJobs(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer m.Close()
	bad := spec.ScenarioSpec{Topology: spec.Topology{Name: "moebius", Size: 3}}
	if _, err := m.Submit(Request{Spec: bad}); err == nil || !strings.Contains(err.Error(), "unknown topology") {
		t.Fatalf("want registry unknown-name error, got %v", err)
	}
	if _, err := m.Submit(Request{Spec: quickSpec(1), Replicate: MaxReplicate + 1}); err == nil {
		t.Fatal("oversized replication must be rejected")
	}
	if s := m.Stats(); s.Submitted != 0 || s.Runs != 0 {
		t.Fatalf("rejected submissions must not create work: %+v", s)
	}
}

func TestLRUEvictionRecomputes(t *testing.T) {
	// Shards: 1 — this test asserts strict whole-cache LRU order, which
	// only holds when all jobs share one stripe.
	m := NewManager(Options{Workers: 1, CacheSize: 2, Shards: 1})
	defer m.Close()

	ids := make([]string, 3)
	for i := range ids {
		st, err := m.Submit(Request{Spec: quickSpec(int64(20 + i))})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
		waitDone(t, m, st.ID)
	}
	s := m.Stats()
	if s.Evicted != 1 || s.CacheLen != 2 {
		t.Fatalf("want 1 eviction with cache at capacity 2, got %+v", s)
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Fatal("evicted job should be unknown")
	}
	if _, ok := m.Get(ids[2]); !ok {
		t.Fatal("recent job should still be cached")
	}

	// Resubmitting the evicted spec recomputes (content-addressed, so it
	// just becomes a fresh job with the same ID).
	st, err := m.Submit(Request{Spec: quickSpec(20)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached != "" {
		t.Fatal("evicted result cannot be served from cache")
	}
	if st.ID != ids[0] {
		t.Fatalf("content-addressed ID changed across eviction: %s vs %s", st.ID, ids[0])
	}
	waitDone(t, m, st.ID)
	if s := m.Stats(); s.Runs != 4 {
		t.Fatalf("want 4 runs after recompute, got %+v", s)
	}
}

func TestReplication(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer m.Close()

	st, err := m.Submit(Request{Spec: quickSpec(5), Replicate: 3})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, st.ID)
	r := final.Result.Replicates
	if r == nil || r.N != 3 || len(r.Reports) != 3 {
		t.Fatalf("want 3 replicates, got %+v", final.Result)
	}
	wantSeeds := []int64{5, 6, 7}
	for i, s := range r.Seeds {
		if s != wantSeeds[i] {
			t.Fatalf("seeds = %v, want %v", r.Seeds, wantSeeds)
		}
	}
	// The aggregate must match a direct computation over the reports.
	var sum float64
	for _, rep := range r.Reports {
		sum += rep.MaxLocalSkew
	}
	mean := sum / 3
	if math.Abs(r.Aggregate.LocalSkew.Mean-mean) > 1e-12 {
		t.Fatalf("aggregate mean %g, want %g", r.Aggregate.LocalSkew.Mean, mean)
	}
	if r.Aggregate.LocalSkew.N != 3 || math.IsNaN(r.Aggregate.LocalSkew.Std) {
		t.Fatalf("bad aggregate: %+v", r.Aggregate.LocalSkew)
	}
	if r.Aggregate.LocalSkew.CI95 <= 0 && r.Aggregate.LocalSkew.Std > 0 {
		t.Fatalf("bad CI: %+v", r.Aggregate.LocalSkew)
	}

	// Replicate=1 and Replicate=0 collapse to the same single-run job.
	a, err := Request{Spec: quickSpec(5), Replicate: 1}.ID()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Request{Spec: quickSpec(5)}.ID()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("replicate 0 and 1 should share a job ID")
	}
	if a == st.ID {
		t.Fatal("replicated and single runs must have distinct job IDs")
	}
}

func TestIncludeSeries(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer m.Close()

	st, err := m.Submit(Request{Spec: quickSpec(6), IncludeSeries: true})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, st.ID)
	if len(final.Result.Series) == 0 {
		t.Fatalf("want recorded series in result, got %+v", final.Result)
	}
	names := make(map[string]bool)
	for _, s := range final.Result.Series {
		names[s.Name] = true
		if s.Len() == 0 {
			t.Fatalf("series %q is empty", s.Name)
		}
	}
	if !names["skew/intra"] || !names["skew/global"] {
		t.Fatalf("unexpected series set: %v", names)
	}

	// The series flag is part of the content address.
	plain, err := Request{Spec: quickSpec(6)}.ID()
	if err != nil {
		t.Fatal(err)
	}
	if plain == st.ID {
		t.Fatal("includeSeries must change the job ID")
	}
}

func TestDeterministicFailuresAreCached(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer m.Close()

	// Valid spec that fails at build time: k=1 requires f=0, but a
	// per-cluster attack on k=1 makes the only member Byzantine... use a
	// horizon hook instead: line(1) with globalSkew and huge sample...
	// Simplest deterministic runtime failure: clique topology of size 1
	// with an attack on every cluster and k=1 — the cluster has no
	// correct members.
	s := spec.ScenarioSpec{
		Topology: spec.Topology{Name: "line", Size: 1},
		Clusters: spec.Clusters{K: 1, F: 0},
		Attack:   &spec.Attack{Name: "silent"},
		Horizon:  spec.Horizon{Seconds: 2},
	}
	st, err := m.Submit(Request{Spec: s})
	if err != nil {
		// If validation already rejects this, pick a different failure
		// path: that's fine too, but the test wants a runtime failure.
		t.Fatalf("expected submission to be accepted, got %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, werr := m.Wait(ctx, st.ID)
	if werr != nil {
		t.Fatal(werr)
	}
	if final.State != StateFailed || final.Error == "" {
		t.Skipf("spec unexpectedly runnable (%+v); failure-caching path not exercised", final.State)
	}
	// Resubmission of a deterministic failure is served from cache.
	st2, err := m.Submit(Request{Spec: s})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached != TierMemory || st2.State != StateFailed || st2.Error != final.Error {
		t.Fatalf("failed jobs should be cached: %+v", st2)
	}
	if s := m.Stats(); s.Runs != 1 {
		t.Fatalf("failure recomputed: %+v", s)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	m.Close()
	if _, err := m.Submit(Request{Spec: quickSpec(1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	m.Close() // idempotent
}
