package jobs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestAppendJSONStringParity pins appendJSONString to encoding/json's
// encoder byte-for-byte: every single byte value (valid ASCII, controls,
// invalid UTF-8 continuation bytes), the HTML-escaped trio, multi-byte
// runes, and the JS line separators. Any divergence would break the
// zero-copy path's byte-identity contract, so the comparison is exact.
func TestAppendJSONStringParity(t *testing.T) {
	cases := []string{
		"",
		"plain ascii",
		`quote " and backslash \`,
		"tab\tnewline\ncarriage\r",
		"<script>alert(1)&amp;</script>",
		"control \x00\x01\x1f\x7f bytes",
		"h\u00e9llo w\u00f6rld",
		"\u65e5\u672c\u8a9e",
		"line sep \u2028 para sep \u2029",
		"\xff\xfe invalid utf-8",
		"truncated rune \xe2\x82",
		strings.Repeat("x", 1000),
		strings.Repeat("\"", 64),
	}
	for b := 0; b < 256; b++ {
		cases = append(cases,
			string([]byte{byte(b)}),
			"pre"+string([]byte{byte(b)})+"post")
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("json.Marshal(%q): %v", s, err)
		}
		got := appendJSONString(nil, s)
		if !bytes.Equal(got, want) {
			t.Fatalf("appendJSONString diverges from encoding/json for %q:\ngot:  %s\nwant: %s", s, got, want)
		}
	}
}

// shadowStatus mirrors JobStatus field-for-field and tag-for-tag but has
// no custom marshaler, so json.Marshal walks it reflectively — the
// reference encoding AppendJSON must reproduce exactly.
type shadowStatus struct {
	ID        string    `json:"id"`
	SpecHash  string    `json:"specHash"`
	State     State     `json:"state"`
	Cached    CacheTier `json:"cached,omitempty"`
	Coalesced bool      `json:"coalesced,omitempty"`
	Result    *Result   `json:"result,omitempty"`
	Error     string    `json:"error,omitempty"`
	Retryable bool      `json:"retryable,omitempty"`
	Progress  *Progress `json:"progress,omitempty"`
}

func (st JobStatus) shadow() shadowStatus {
	return shadowStatus{
		ID:        st.ID,
		SpecHash:  st.SpecHash,
		State:     st.State,
		Cached:    st.Cached,
		Coalesced: st.Coalesced,
		Result:    st.Result,
		Error:     st.Error,
		Retryable: st.Retryable,
		Progress:  st.Progress,
	}
}

// requireShadowParity marshals st through its custom encoder (AppendJSON
// via MarshalJSON) and through the reflective shadow struct and requires
// identical bytes.
func requireShadowParity(t *testing.T, label string, st JobStatus) {
	t.Helper()
	got, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("%s: marshal status: %v", label, err)
	}
	want, err := json.Marshal(st.shadow())
	if err != nil {
		t.Fatalf("%s: marshal shadow: %v", label, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: AppendJSON diverges from reflective encoding:\ngot:  %s\nwant: %s", label, got, want)
	}
}

// TestJobStatusEncodingMatchesStruct proves the hand-assembled envelope
// (and the payload splice inside it) is byte-identical to what
// encoding/json would produce for the equivalent plain struct, across
// the snapshot shapes the service serves: queued, fresh done, cache hits
// with and without a name overlay, replicated results with series,
// failures, and synthetic progress/error permutations.
func TestJobStatusEncodingMatchesStruct(t *testing.T) {
	m := NewManager(Options{Workers: 1, SweepWorkers: 1})
	defer m.Close()

	st, err := m.Submit(Request{Spec: quickSpec(3)})
	if err != nil {
		t.Fatal(err)
	}
	requireShadowParity(t, "queued", st)
	fresh := waitDone(t, m, st.ID)
	requireShadowParity(t, "fresh done", fresh)
	if fresh.payload == nil {
		t.Fatal("completed job should carry a pre-marshaled payload")
	}

	// Cache hit without a name change: pure splice of the stored bytes.
	hit, err := m.Submit(Request{Spec: quickSpec(3)})
	if err != nil {
		t.Fatal(err)
	}
	if hit.Cached != TierMemory || hit.payload == nil {
		t.Fatalf("resubmission should be a payload-carrying memory hit: %+v", hit)
	}
	requireShadowParity(t, "memory hit", hit)

	// Name overlay: the splice inserts an escaped name field into the
	// stored bytes; awkward names exercise the escaper inside a real
	// envelope.
	for _, name := range []string{"plain", `needs "escaping" <&> \`, "uni \u2028 code \xff"} {
		named := quickSpec(3)
		named.Name = name
		over, err := m.Submit(Request{Spec: named})
		if err != nil {
			t.Fatal(err)
		}
		if over.Cached != TierMemory || over.Result == nil || over.Result.Name != name {
			t.Fatalf("named resubmission should hit with overlay %q: %+v", name, over)
		}
		requireShadowParity(t, "name overlay "+name, over)
	}

	// Replicated result with series: the largest payload shape.
	rep, err := m.Submit(Request{Spec: replicatedSpec(5), Replicate: 3, IncludeSeries: true})
	if err != nil {
		t.Fatal(err)
	}
	requireShadowParity(t, "replicated", waitDone(t, m, rep.ID))

	// Synthetic permutations: the envelope branches that real jobs only
	// hit transiently (progress, errors, coalesced) and the nil-payload
	// fallback for a result that never went through a job record.
	syntheticResult := fresh.Result
	for _, tc := range []struct {
		label string
		st    JobStatus
	}{
		{"failed retryable", JobStatus{ID: "sha256:x", SpecHash: "sha256:y", State: StateFailed, Error: "queue full:\nretry \u2029 later", Retryable: true}},
		{"canceled", JobStatus{ID: "sha256:x", SpecHash: "sha256:y", State: StateCanceled, Error: "canceled"}},
		{"coalesced running with progress", JobStatus{ID: "sha256:x", SpecHash: "sha256:y", State: StateRunning, Coalesced: true, Progress: &Progress{Events: 123, SimFraction: 0.25, Replicate: 1, Replicates: 4}}},
		{"disk hit nil payload", JobStatus{ID: "sha256:x", SpecHash: syntheticResult.SpecHash, State: StateDone, Cached: TierDisk, Result: syntheticResult}},
	} {
		requireShadowParity(t, tc.label, tc.st)
	}
}

// TestCachedServeByteIdentity is the overlay contract test: a cached
// serve is byte-identical to the fresh serve except for the documented
// "cached" tier field and the caller's display-name overlay — proven by
// reconstructing the expected bytes from the fresh snapshot and
// requiring an exact match with the splice-served hit.
func TestCachedServeByteIdentity(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer m.Close()

	st, err := m.Submit(Request{Spec: quickSpec(11)})
	if err != nil {
		t.Fatal(err)
	}
	fresh := waitDone(t, m, st.ID)
	freshBytes, err := json.Marshal(fresh)
	if err != nil {
		t.Fatal(err)
	}

	named := quickSpec(11)
	named.Name = "overlay name"
	hit, err := m.Submit(Request{Spec: named})
	if err != nil {
		t.Fatal(err)
	}
	hitBytes, err := json.Marshal(hit)
	if err != nil {
		t.Fatal(err)
	}

	// Expected hit bytes = the fresh snapshot with exactly two edits:
	// the cached tier and the overlayed name, applied at the struct
	// level and re-encoded reflectively.
	expected := fresh.WithName("overlay name")
	expected.Cached = TierMemory
	wantBytes, err := json.Marshal(expected.shadow())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hitBytes, wantBytes) {
		t.Fatalf("cached serve is not fresh-serve + documented overlay:\nhit:  %s\nwant: %s", hitBytes, wantBytes)
	}

	// And with no overlay at all, the only difference from the fresh
	// bytes is the cached field itself.
	plainHit, err := m.Submit(Request{Spec: quickSpec(11)})
	if err != nil {
		t.Fatal(err)
	}
	plainBytes, err := json.Marshal(plainHit)
	if err != nil {
		t.Fatal(err)
	}
	wantPlain := bytes.Replace(freshBytes,
		[]byte(`,"state":"done"`), []byte(`,"state":"done","cached":"memory"`), 1)
	if !bytes.Equal(plainBytes, wantPlain) {
		t.Fatalf("unnamed cached serve should differ from fresh only by the cached field:\nhit:   %s\nfresh: %s", plainBytes, freshBytes)
	}
}
