package jobs

import (
	"bytes"
	"encoding/json"
	"unicode/utf8"
)

// This file is the zero-copy serving path. A completed job's Result is
// marshaled exactly once — with the name field blanked — into a
// resultPayload; every response built from it afterwards (Submit hits,
// Get, ?wait=true, SSE terminal events, the disk write-behind) splices
// the response's display name into those bytes instead of re-walking
// the Result struct through encoding/json. The splice output is
// byte-identical to json.Marshal of the same Result carrying that name:
// the name overlay is the ONLY difference between any two serves of one
// cached result, which is the documented cached/name overlay contract.

// resultPayload is a Result's canonical JSON body with Name == "" plus
// the offset where a name field splices in. Immutable once built.
type resultPayload struct {
	body []byte
	// off points just past `{"specHash":"…",` — the position where the
	// encoder would have emitted `"name":…,` had the name been set.
	off int
}

// newResultPayload marshals res (name blanked) and locates the splice
// point. It returns nil when the payload cannot be built or verified —
// callers treat nil as "marshal per response", so this path can only
// lose speed, never correctness.
func newResultPayload(res *Result) *resultPayload {
	if res == nil {
		return nil
	}
	nameless := *res
	nameless.Name = ""
	body, err := json.Marshal(&nameless)
	if err != nil {
		return nil
	}
	prefix := append(appendJSONString([]byte(`{"specHash":`), res.SpecHash), ',')
	if !bytes.HasPrefix(body, prefix) {
		return nil
	}
	return &resultPayload{body: body, off: len(prefix)}
}

// namedLen is the exact byte length appendNamed will produce for name,
// letting callers size a buffer in one allocation.
func (p *resultPayload) namedLen(name string) int {
	if name == "" {
		return len(p.body)
	}
	// `"name":` + worst-case escaped string + `,`; escaping can expand a
	// byte to 6 (`\u00xx`), so over-reserve rather than count precisely.
	return len(p.body) + len(`"name":`) + 2 + 6*len(name) + 1
}

// appendNamed appends the payload with name spliced in, byte-identical
// to json.Marshal of the same Result with Name == name.
func (p *resultPayload) appendNamed(dst []byte, name string) []byte {
	if name == "" {
		return append(dst, p.body...)
	}
	dst = append(dst, p.body[:p.off]...)
	dst = append(dst, `"name":`...)
	dst = appendJSONString(dst, name)
	dst = append(dst, ',')
	return append(dst, p.body[p.off:]...)
}

// MarshalJSON renders the status through AppendJSON, so the encoded
// form is identical whether a caller goes through encoding/json or the
// server's pooled-buffer fast path.
func (st JobStatus) MarshalJSON() ([]byte, error) {
	return st.AppendJSON(make([]byte, 0, 256))
}

// AppendJSON appends the status's JSON encoding to dst and returns the
// extended slice. The output is byte-for-byte what encoding/json
// produces for the equivalent plain struct (same fields, same tags, no
// custom marshaler) — enforced by TestJobStatusEncodingMatchesStruct —
// but a cached-result hit costs a few appends and one payload splice
// instead of a reflective walk over the whole Result.
func (st JobStatus) AppendJSON(dst []byte) ([]byte, error) {
	dst = append(dst, `{"id":`...)
	dst = appendJSONString(dst, st.ID)
	dst = append(dst, `,"specHash":`...)
	dst = appendJSONString(dst, st.SpecHash)
	dst = append(dst, `,"state":`...)
	dst = appendJSONString(dst, string(st.State))
	if st.Cached != "" {
		dst = append(dst, `,"cached":`...)
		dst = appendJSONString(dst, string(st.Cached))
	}
	if st.Coalesced {
		dst = append(dst, `,"coalesced":true`...)
	}
	if st.Result != nil {
		dst = append(dst, `,"result":`...)
		if st.payload != nil {
			dst = st.payload.appendNamed(dst, st.Result.Name)
		} else {
			b, err := json.Marshal(st.Result)
			if err != nil {
				return nil, err
			}
			dst = append(dst, b...)
		}
	}
	if st.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, st.Error)
	}
	if st.Retryable {
		dst = append(dst, `,"retryable":true`...)
	}
	if st.Progress != nil {
		dst = append(dst, `,"progress":`...)
		b, err := json.Marshal(st.Progress)
		if err != nil {
			return nil, err
		}
		dst = append(dst, b...)
	}
	return append(dst, '}'), nil
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, replicating
// encoding/json's encoder exactly (HTML-escaping on, invalid UTF-8 →
// U+FFFD, U+2028/U+2029 escaped) so hand-assembled envelopes stay
// byte-identical to marshaled ones. Parity with json.Marshal is
// enforced across the full byte range by TestAppendJSONStringParity.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch c {
			case '\\', '"':
				dst = append(dst, '\\', c)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Control chars and the HTML trio < > & as \u00xx.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
