package byzantine

import (
	"testing"

	"ftgcs/internal/graph"
	"ftgcs/internal/params"
	"ftgcs/internal/sim"
	"ftgcs/internal/transport"
)

func testCtx(t testing.TB) (Ctx, *[]transport.Pulse) {
	t.Helper()
	p, err := params.Derive(params.PresetConfig(params.Practical, 1e-3, 1e-3, 1e-4))
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	g := graph.Clique(5)
	net := transport.NewNetwork(eng, g, transport.UniformDelay{D: p.Delay, U: p.Uncertainty, Rng: sim.NewRNG(1, 0)})
	var received []transport.Pulse
	for v := 1; v < 5; v++ {
		net.OnPulse(v, func(at float64, pu transport.Pulse) {
			received = append(received, pu)
		})
	}
	return Ctx{
		Eng:       eng,
		Net:       net,
		Self:      0,
		Params:    p,
		Rng:       sim.NewRNG(7, 0),
		Neighbors: []graph.NodeID{1, 2, 3, 4},
	}, &received
}

func TestSilent(t *testing.T) {
	ctx, received := testCtx(t)
	if _, err := (Silent{}).Install(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Eng.Run(10 * ctx.Params.T); err != nil {
		t.Fatal(err)
	}
	if len(*received) != 0 {
		t.Errorf("silent node sent %d pulses", len(*received))
	}
}

func TestSpamSendsToSubsets(t *testing.T) {
	ctx, received := testCtx(t)
	if _, err := (Spam{}).Install(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Eng.Run(10 * ctx.Params.T); err != nil {
		t.Fatal(err)
	}
	// ~50 bursts × 4 neighbors × 0.7 ≈ 140 pulses.
	if len(*received) < 50 {
		t.Errorf("spam sent only %d pulses", len(*received))
	}
	for _, pu := range *received {
		if pu.From != 0 || pu.Kind != transport.PulseClock {
			t.Fatalf("unexpected pulse %+v", pu)
		}
	}
}

func TestTwoFacedSplitsTiming(t *testing.T) {
	ctx, _ := testCtx(t)
	p := ctx.Params
	// Track arrival times per receiver parity.
	evenTimes := map[int][]float64{}
	oddTimes := map[int][]float64{}
	for v := 1; v < 5; v++ {
		v := v
		ctx.Net.OnPulse(v, func(at float64, pu transport.Pulse) {
			if v%2 == 0 {
				evenTimes[v] = append(evenTimes[v], at)
			} else {
				oddTimes[v] = append(oddTimes[v], at)
			}
		})
	}
	off := 5 * p.EG
	if _, err := (TwoFaced{Offset: off}).Install(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Eng.Run(5 * p.T); err != nil {
		t.Fatal(err)
	}
	if len(evenTimes[2]) < 3 || len(oddTimes[1]) < 3 {
		t.Fatalf("missing pulses: even=%d odd=%d", len(evenTimes[2]), len(oddTimes[1]))
	}
	// Round 2 pulse (index 1): even receivers should hear it ≈ 2·off
	// earlier than odd receivers.
	gap := oddTimes[1][1] - evenTimes[2][1]
	if gap < off {
		t.Errorf("equivocation gap %v, want ≥ %v", gap, off)
	}
}

func TestOscillateAlternates(t *testing.T) {
	ctx, _ := testCtx(t)
	p := ctx.Params
	var times []float64
	ctx.Net.OnPulse(1, func(at float64, pu transport.Pulse) {
		times = append(times, at)
	})
	amp := 4 * p.EG
	if _, err := (Oscillate{Amplitude: amp}).Install(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Eng.Run(6 * p.T); err != nil {
		t.Fatal(err)
	}
	if len(times) < 5 {
		t.Fatalf("only %d pulses", len(times))
	}
	// Gaps should alternate around T by ±2·amp.
	shorter, longer := 0, 0
	for i := 1; i < len(times); i++ {
		gap := times[i] - times[i-1]
		if gap < p.T-amp {
			shorter++
		}
		if gap > p.T+amp {
			longer++
		}
	}
	if shorter == 0 || longer == 0 {
		t.Errorf("expected alternating gaps, got shorter=%d longer=%d", shorter, longer)
	}
}

func TestLieDirection(t *testing.T) {
	p, err := params.Derive(params.PresetConfig(params.Practical, 1e-3, 1e-3, 1e-4))
	if err != nil {
		t.Fatal(err)
	}
	run := func(s Strategy) []float64 {
		eng := sim.NewEngine()
		g := graph.Clique(2)
		net := transport.NewNetwork(eng, g, transport.FixedDelay{D: p.Delay, U: p.Uncertainty, Frac: 0.5})
		var times []float64
		net.OnPulse(1, func(at float64, pu transport.Pulse) { times = append(times, at) })
		if _, err := s.Install(Ctx{Eng: eng, Net: net, Self: 0, Params: p,
			Rng: sim.NewRNG(1, 0), Neighbors: []graph.NodeID{1}}); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(4 * p.T); err != nil {
			t.Fatal(err)
		}
		return times
	}
	early := run(Lie{Early: true})
	late := run(Lie{})
	if len(early) < 3 || len(late) < 3 {
		t.Fatalf("pulses: early=%d late=%d", len(early), len(late))
	}
	// Same round index: lie-early arrives before lie-late.
	if early[1] >= late[1] {
		t.Errorf("lie-early %v should precede lie-late %v", early[1], late[1])
	}
}

func TestMaxSpamFloods(t *testing.T) {
	ctx, received := testCtx(t)
	if _, err := (MaxSpam{}).Install(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Eng.Run(1.0); err != nil {
		t.Fatal(err)
	}
	maxPulses := 0
	for _, pu := range *received {
		if pu.Kind == transport.PulseMax {
			maxPulses++
		}
	}
	// 10/(d−U) per second × 4 neighbors ≈ 44k/s; even a fraction suffices.
	if maxPulses < 1000 {
		t.Errorf("max-spam sent only %d PulseMax", maxPulses)
	}
}

func TestAdaptiveTwoFacedTracksVictims(t *testing.T) {
	ctx, _ := testCtx(t)
	p := ctx.Params
	var toEven, toOdd []float64
	ctx.Net.OnPulse(2, func(at float64, pu transport.Pulse) { toEven = append(toEven, at) })
	ctx.Net.OnPulse(1, func(at float64, pu transport.Pulse) { toOdd = append(toOdd, at) })
	off := p.Phi * p.Tau3 / 2
	handler, err := (AdaptiveTwoFaced{Offset: off}).Install(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if handler == nil {
		t.Fatal("adaptive strategy must return a pulse handler")
	}
	// Feed victim pulses: nodes 1 and 2 "pulse" at the same instants; the
	// adversary must reply one round later, shifted by ∓off.
	for r := 0; r < 4; r++ {
		at := float64(r)*p.T + p.Tau1
		ctx.Eng.MustSchedule(at, "victim-pulse", func(e *sim.Engine) {
			handler(e.Now(), transport.Pulse{From: 1, Kind: transport.PulseClock})
			handler(e.Now(), transport.Pulse{From: 2, Kind: transport.PulseClock})
		})
	}
	if err := ctx.Eng.Run(6 * p.T); err != nil {
		t.Fatal(err)
	}
	if len(toEven) < 3 || len(toOdd) < 3 {
		t.Fatalf("replies: even=%d odd=%d", len(toEven), len(toOdd))
	}
	// Victims are split by ID parity: node 2 (even) gets the "ahead" lie
	// (early pulses), node 1 (odd) the "behind" lie (late), so the reply
	// to node 1 trails the reply to node 2 by ≈ 2·off.
	gap := toOdd[0] - toEven[0]
	if gap < off || gap > 3*off {
		t.Errorf("equivocation gap %v, want ≈ 2·off = %v", gap, 2*off)
	}
}

func TestByName(t *testing.T) {
	names := []string{"silent", "spam", "two-faced", "twofaced", "adaptive",
		"adaptive-two-faced", "oscillate", "lie-early", "lie-late", "max-spam", "maxspam"}
	for _, name := range names {
		s, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
		if s == nil || s.Name() == "" {
			t.Errorf("ByName(%q) returned %v", name, s)
		}
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestAllHaveDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range All() {
		if seen[s.Name()] {
			t.Errorf("duplicate strategy name %q", s.Name())
		}
		seen[s.Name()] = true
	}
	if len(seen) < 7 {
		t.Errorf("only %d strategies", len(seen))
	}
}

func TestStrategiesInstallDeterministically(t *testing.T) {
	for _, s := range All() {
		run := func() int {
			ctx, received := testCtx(t)
			if _, err := s.Install(ctx); err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if err := ctx.Eng.Run(3 * ctx.Params.T); err != nil {
				t.Fatal(err)
			}
			return len(*received)
		}
		if a, b := run(), run(); a != b {
			t.Errorf("%s: nondeterministic pulse counts %d vs %d", s.Name(), a, b)
		}
	}
}
