// Package byzantine implements adversary strategies for faulty nodes. The
// FTGCS model places no restriction on Byzantine behavior ("we make no
// assumptions whatsoever"; in particular faulty nodes need not broadcast —
// paper Section 2, Faults). Since no implementation can quantify over all
// adversaries, this package provides the canonical attack families from the
// clock synchronization literature, including the paper's own examples:
//
//   - Silent / Crash: the benign end of the spectrum.
//   - Spam: pulses at random times to random neighbor subsets.
//   - TwoFaced: equivocation — pretend to be early to one half of the
//     neighbors and late to the other, dragging them apart (the attack the
//     f+1/k−f midpoint selection exists to blunt).
//   - Oscillate: alternate maximally-early and maximally-late pulses each
//     round, the worst case for averaging-based corrections.
//   - Lie: consistently early (or late) pulses at the edge of plausibility,
//     dragging the whole cluster when the fault budget is exceeded (used by
//     the resilience-boundary experiment E12).
//   - MaxSpam: floods global-skew max pulses, attacking the Appendix C
//     estimate machinery (defended by f+1-confirmation).
//
// Off-spec clock-rate faults (a node running the correct algorithm on a
// hardware clock outside [1, 1+ρ], the paper's introduction example) are
// realized in the core package by wiring a correct instance to an
// out-of-envelope drift model.
package byzantine

import (
	"fmt"
	"math"

	"ftgcs/internal/graph"
	"ftgcs/internal/params"
	"ftgcs/internal/sim"
	"ftgcs/internal/transport"
)

// Ctx gives a strategy everything it may use.
type Ctx struct {
	Eng       *sim.Engine
	Net       *transport.Network
	Self      graph.NodeID
	Params    params.Params
	Rng       *sim.RNG
	Neighbors []graph.NodeID
}

// Strategy arms a faulty node's behavior at simulation start.
type Strategy interface {
	Name() string
	// Install schedules the strategy's events. Called once before the
	// simulation runs. The returned handler (may be nil) receives the
	// pulses delivered to the faulty node, letting adaptive adversaries
	// react to their victims' actual behavior.
	Install(ctx Ctx) (transport.Handler, error)
}

// Silent sends nothing, ever (a crash at time 0 from the network's
// perspective).
type Silent struct{}

// Name implements Strategy.
func (Silent) Name() string { return "silent" }

// Install implements Strategy.
func (Silent) Install(Ctx) (transport.Handler, error) { return nil, nil }

// Spam sends clock pulses at random intervals (mean MeanGap seconds) to
// random neighbor subsets.
type Spam struct {
	// MeanGap is the average spacing between bursts; 0 selects T/5.
	MeanGap float64
	// P is the per-neighbor send probability per burst (default 0.7).
	P float64
}

// Name implements Strategy.
func (Spam) Name() string { return "spam" }

// Install implements Strategy.
func (s Spam) Install(ctx Ctx) (transport.Handler, error) {
	gap := s.MeanGap
	if gap <= 0 {
		gap = ctx.Params.T / 5
	}
	p := s.P
	if p <= 0 || p > 1 {
		p = 0.7
	}
	var burst func(*sim.Engine)
	burst = func(e *sim.Engine) {
		for _, to := range ctx.Neighbors {
			if ctx.Rng.Bernoulli(p) {
				// Errors (e.g. missing edge) cannot occur for listed
				// neighbors; ignore per adversary semantics.
				_ = ctx.Net.SendTo(e.Now(), ctx.Self, to, transport.PulseClock)
			}
		}
		e.MustSchedule(e.Now()+ctx.Rng.UniformIn(0.2*gap, 1.8*gap), "byz-spam", burst)
	}
	_, err := ctx.Eng.Schedule(ctx.Eng.Now()+ctx.Rng.UniformIn(0, gap), "byz-spam", burst)
	return nil, err
}

// TwoFaced follows the nominal round schedule but sends its round pulse
// Offset seconds early to neighbors with even node ID and Offset late to
// the others (equivocation; faulty nodes need not broadcast).
type TwoFaced struct {
	// Offset is the equivocation magnitude; 0 selects E_G (the cluster
	// skew scale, maximally disruptive while staying plausible).
	Offset float64
}

// Name implements Strategy.
func (TwoFaced) Name() string { return "two-faced" }

// Install implements Strategy.
func (s TwoFaced) Install(ctx Ctx) (transport.Handler, error) {
	off := s.Offset
	if off <= 0 {
		off = ctx.Params.EG
	}
	p := ctx.Params
	round := 0
	var schedule func(*sim.Engine)
	schedule = func(e *sim.Engine) {
		nominal := float64(round)*p.T + p.Tau1
		early := math.Max(e.Now(), nominal-off)
		late := nominal + off
		for _, to := range ctx.Neighbors {
			to := to
			at := late
			if to%2 == 0 {
				at = early
			}
			e.MustSchedule(at, "byz-twofaced", func(e2 *sim.Engine) {
				_ = ctx.Net.SendTo(e2.Now(), ctx.Self, to, transport.PulseClock)
			})
		}
		round++
		e.MustSchedule(float64(round)*p.T, "byz-twofaced-round", schedule)
	}
	_, err := ctx.Eng.Schedule(ctx.Eng.Now(), "byz-twofaced-round", schedule)
	return nil, err
}

// Oscillate broadcasts its round pulse alternately Amplitude early and
// Amplitude late, flipping every round — the worst case for midpoint-based
// corrections and the canonical plain-GCS killer (experiment E8).
type Oscillate struct {
	// Amplitude is the timing swing; 0 selects 2·E_G.
	Amplitude float64
	// PeriodRounds is the number of rounds per half-swing (default 1).
	PeriodRounds int
}

// Name implements Strategy.
func (Oscillate) Name() string { return "oscillate" }

// Install implements Strategy.
func (s Oscillate) Install(ctx Ctx) (transport.Handler, error) {
	amp := s.Amplitude
	if amp <= 0 {
		amp = 2 * ctx.Params.EG
	}
	period := s.PeriodRounds
	if period <= 0 {
		period = 1
	}
	p := ctx.Params
	round := 0
	var schedule func(*sim.Engine)
	schedule = func(e *sim.Engine) {
		sign := 1.0
		if (round/period)%2 == 0 {
			sign = -1.0
		}
		at := math.Max(e.Now(), float64(round)*p.T+p.Tau1+sign*amp)
		e.MustSchedule(at, "byz-osc-pulse", func(e2 *sim.Engine) {
			for _, to := range ctx.Neighbors {
				_ = ctx.Net.SendTo(e2.Now(), ctx.Self, to, transport.PulseClock)
			}
		})
		round++
		e.MustSchedule(float64(round)*p.T, "byz-osc-round", schedule)
	}
	_, err := ctx.Eng.Schedule(ctx.Eng.Now(), "byz-osc-round", schedule)
	return nil, err
}

// Lie broadcasts consistently early (Early=true) or late pulses at a fixed
// offset from the nominal schedule. A coalition of f+1 or more Lie nodes in
// one cluster overwhelms the midpoint selection and drags the cluster —
// the resilience-boundary experiment E12 uses it to show k ≥ 3f+1 is
// necessary, not just sufficient.
type Lie struct {
	Early bool
	// Offset magnitude; 0 selects ϕ·τ₃ (the largest correction a correct
	// node will apply per round).
	Offset float64
}

// Name implements Strategy.
func (l Lie) Name() string {
	if l.Early {
		return "lie-early"
	}
	return "lie-late"
}

// Install implements Strategy.
func (l Lie) Install(ctx Ctx) (transport.Handler, error) {
	off := l.Offset
	if off <= 0 {
		off = ctx.Params.Phi * ctx.Params.Tau3
	}
	if l.Early {
		off = -off
	}
	p := ctx.Params
	round := 0
	var schedule func(*sim.Engine)
	schedule = func(e *sim.Engine) {
		at := math.Max(e.Now(), float64(round)*p.T+p.Tau1+off)
		e.MustSchedule(at, "byz-lie-pulse", func(e2 *sim.Engine) {
			for _, to := range ctx.Neighbors {
				_ = ctx.Net.SendTo(e2.Now(), ctx.Self, to, transport.PulseClock)
			}
		})
		round++
		e.MustSchedule(float64(round)*p.T, "byz-lie-round", schedule)
	}
	_, err := ctx.Eng.Schedule(ctx.Eng.Now(), "byz-lie-round", schedule)
	return nil, err
}

// AdaptiveTwoFaced equivocates while tracking its victims: it measures
// each victim's actual pulse cadence and replies one round later shifted
// by a constant ∓Offset (ahead for half the victims, behind for the rest).
// Anchoring on the victims' own pulses keeps the lie inside their
// plausibility window forever — no matter how far the victims have been
// dragged — so a coalition of f+1 such nodes inside one cluster separates
// the correct members without bound (experiment E12). Schedule-anchored
// attacks disarm themselves once victims drift; this one never does.
type AdaptiveTwoFaced struct {
	// Offset is the per-round drag; 0 selects ϕτ₃/2 (half the maximum
	// correction a correct node applies per round — always plausible).
	Offset float64
}

// Name implements Strategy.
func (AdaptiveTwoFaced) Name() string { return "adaptive-two-faced" }

// Install implements Strategy.
func (s AdaptiveTwoFaced) Install(ctx Ctx) (transport.Handler, error) {
	off := s.Offset
	if off <= 0 {
		off = ctx.Params.Phi * ctx.Params.Tau3 / 2
	}
	p := ctx.Params
	last := make(map[graph.NodeID]float64)
	// Victims are split into "ahead" (even ID) and "behind" (odd ID)
	// halves. The split must be a deterministic function of the victim so
	// that a coalition of adaptive liars pushes every victim in the same
	// direction — uncoordinated splits cancel each other out in the
	// midpoint selection.
	handler := func(at float64, pu transport.Pulse) {
		if pu.Kind != transport.PulseClock {
			return
		}
		w := pu.From
		if w == ctx.Self {
			return
		}
		// React to the first pulse a victim sends per round, and measure
		// the victim's actual Newtonian round duration from consecutive
		// pulses — anchoring on the nominal T would drift out of the
		// victim's plausibility window (its logical clock is paced at
		// (1+ϕ)·h and accelerates when dragged).
		gap := p.T / (1 + p.Phi)
		if prev, ok := last[w]; ok {
			measured := at - prev
			if measured < p.T/2 {
				return // duplicate within the same round
			}
			if measured < 2*p.T {
				gap = measured
			}
		}
		last[w] = at
		shift := -off // pretend to be ahead of even-ID victims
		if w%2 == 1 {
			shift = off // and behind odd-ID ones
		}
		target := math.Max(at, at+gap+shift)
		ctx.Eng.MustSchedule(target, "byz-adaptive", func(e *sim.Engine) {
			_ = ctx.Net.SendTo(e.Now(), ctx.Self, w, transport.PulseClock)
		})
	}
	return handler, nil
}

// CadenceTwoFaced emits an independent blind pulse train per victim: a
// faster-than-nominal cadence to half of them and a slower one to the
// rest. This is the paper's introduction example — a Byzantine node
// running its clock at off-nominal speed "without a correct node being
// able to prove this" — weaponized as equivocation. In plain GCS (k=1)
// the victims' estimates follow the cadence and diverge without bound
// (each per-round innovation ε·T stays plausible), dragging correct
// neighbors apart: the experiment E8 demonstration that no non-trivial
// skew bound survives a single Byzantine fault at k=1.
type CadenceTwoFaced struct {
	// Epsilon is the relative cadence offset; 0 selects
	// min(2ϕ, 0.5·(τ₁+τ₂)/T) (fast enough to outrun any honest rate,
	// small enough to stay inside the per-round plausibility window).
	Epsilon float64
}

// Name implements Strategy.
func (CadenceTwoFaced) Name() string { return "cadence-two-faced" }

// Install implements Strategy.
func (s CadenceTwoFaced) Install(ctx Ctx) (transport.Handler, error) {
	p := ctx.Params
	eps := s.Epsilon
	if eps <= 0 {
		eps = math.Min(2*p.Phi, 0.5*(p.Tau1+p.Tau2)/p.T)
	}
	nominal := p.T / (1 + p.Phi)
	for i, to := range ctx.Neighbors {
		to := to
		period := nominal / (1 + eps) // fast train
		if i%2 == 1 {
			period = nominal * (1 + eps) // slow train
		}
		var tick func(*sim.Engine)
		tick = func(e *sim.Engine) {
			_ = ctx.Net.SendTo(e.Now(), ctx.Self, to, transport.PulseClock)
			e.MustSchedule(e.Now()+period, "byz-cadence", tick)
		}
		if _, err := ctx.Eng.Schedule(ctx.Eng.Now()+p.Tau1+float64(i)*1e-6, "byz-cadence", tick); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// MaxSpam floods PulseMax messages, trying to inflate neighbors' global
// max-estimates M_v far beyond L_max. The f+1-confirmation rule of
// Lemma C.2 must hold the line.
type MaxSpam struct {
	// Rate is pulses per second; 0 selects 10/(d−U).
	Rate float64
}

// Name implements Strategy.
func (MaxSpam) Name() string { return "max-spam" }

// Install implements Strategy.
func (s MaxSpam) Install(ctx Ctx) (transport.Handler, error) {
	d, u := ctx.Net.Bounds()
	rate := s.Rate
	if rate <= 0 {
		rate = 10 / (d - u)
	}
	gap := 1 / rate
	var tick func(*sim.Engine)
	tick = func(e *sim.Engine) {
		for _, to := range ctx.Neighbors {
			_ = ctx.Net.SendTo(e.Now(), ctx.Self, to, transport.PulseMax)
		}
		e.MustSchedule(e.Now()+gap, "byz-maxspam", tick)
	}
	_, err := ctx.Eng.Schedule(ctx.Eng.Now()+gap, "byz-maxspam", tick)
	return nil, err
}

// Aliases returns the historical CLI spellings, alias → canonical
// strategy name. It is the single source of truth for attack aliases:
// both ByName and the public ftgcs registry consume it.
func Aliases() map[string]string {
	return map[string]string{
		"twofaced": "two-faced",
		"adaptive": "adaptive-two-faced",
		"cadence":  "cadence-two-faced",
		"maxspam":  "max-spam",
	}
}

// ByName constructs a strategy from a CLI-friendly name (a strategy's
// self-reported Name or an alias). Offset/amplitude parameters take their
// defaults.
func ByName(name string) (Strategy, error) {
	if canonical, ok := Aliases()[name]; ok {
		name = canonical
	}
	for _, s := range All() {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("byzantine: unknown strategy %q", name)
}

// All returns one instance of every strategy (defaults), for sweep
// experiments.
func All() []Strategy {
	return []Strategy{
		Silent{}, Spam{}, TwoFaced{}, AdaptiveTwoFaced{}, CadenceTwoFaced{},
		Oscillate{}, Lie{Early: true}, Lie{}, MaxSpam{},
	}
}
