// Package globalskew implements the Appendix C machinery of the FTGCS
// paper: every node maintains a conservative estimate M_v of the maximum
// correct logical clock L_max, with L_max(t) ≥ M_v(t) ≥ L_max(t) − O(δD)
// (Lemma C.2). The estimate feeds Theorem C.3's catch-up rule (nodes with
// L_v ≤ M_v − cδ switch to fast mode), which bounds the global skew by
// O(δD).
//
// Mechanism:
//
//   - M_v(0) = 0 and grows at rate h_v(t)/(1+ρ) ≤ 1, so local growth can
//     never overtake L_max (whose rate is ≥ 1).
//   - Whenever M_v reaches the next multiple of d−U, v broadcasts a "max
//     pulse" (distinguishable from clock pulses).
//   - Max pulses travel ≥ d−U seconds, so a pulse for level ℓ certifies
//     that its sender's estimate was ℓ·(d−U) at least d−U ago — hence
//     (ℓ+1)·(d−U) is a safe value now, provided the sender is correct.
//   - To tolerate Byzantine senders, v only adopts level ℓ+1 once f+1
//     distinct members of some single adjacent cluster have each delivered
//     ℓ max pulses: at least one of them is correct.
//   - Adopting a level may let v skip ahead several multiples; it then
//     emits the skipped pulses too, yielding a fault-tolerant flooding
//     wave that propagates the maximum at one level per hop delay.
package globalskew

import (
	"fmt"

	"ftgcs/internal/clockwork"
	"ftgcs/internal/graph"
	"ftgcs/internal/sim"
)

// Config assembles an Estimator.
type Config struct {
	// Unit is the level granularity d−U.
	Unit float64
	// Rho is the hardware drift bound; M grows at h/(1+ρ).
	Rho float64
	// F is the per-cluster fault budget.
	F int
	// Groups maps each adjacent cluster (including the node's own) to its
	// member node IDs. Level confirmation requires f+1 distinct senders
	// within one group.
	Groups map[graph.ClusterID][]graph.NodeID
	// HW is the node's hardware clock.
	HW *clockwork.HardwareClock
	// Send broadcasts `copies` max pulses at time t.
	Send func(t float64, copies int)
}

// Estimator maintains one node's M_v.
type Estimator struct {
	cfg Config
	eng *sim.Engine

	anchorT float64 // Newtonian anchor
	anchorH float64 // hardware value at anchor
	anchorM float64 // M value at anchor

	sentLevel  int // highest level for which a pulse was sent
	groupOf    map[graph.NodeID]graph.ClusterID
	counts     map[graph.NodeID]int // max pulses received per sender
	levelTimer sim.Handle
	lvlScratch []int // confirmedLevel selection buffer, reused per pulse

	stats Stats
}

// Stats counts estimator activity.
type Stats struct {
	LocalLevels   uint64 // levels reached by local growth
	AdoptedLevels uint64 // levels adopted from neighbors
	PulsesSent    uint64
	PulsesHeard   uint64
	Ignored       uint64 // pulses from unknown senders
}

// New validates and constructs an estimator (not yet started).
func New(eng *sim.Engine, cfg Config) (*Estimator, error) {
	if cfg.Unit <= 0 {
		return nil, fmt.Errorf("globalskew: unit %v must be positive (d−U)", cfg.Unit)
	}
	if cfg.HW == nil {
		return nil, fmt.Errorf("globalskew: nil hardware clock")
	}
	if cfg.Send == nil {
		return nil, fmt.Errorf("globalskew: nil send")
	}
	groupOf := make(map[graph.NodeID]graph.ClusterID)
	for c, members := range cfg.Groups {
		for _, m := range members {
			groupOf[m] = c
		}
	}
	return &Estimator{
		cfg:     cfg,
		eng:     eng,
		groupOf: groupOf,
		counts:  make(map[graph.NodeID]int),
	}, nil
}

// Reset rewinds the estimator to its unstarted state, keeping the group
// tables and scratch allocated (clear on the counts map retains its
// buckets). The level timer handle is dropped to the zero Handle — the
// engine reset that accompanies a system reset has already discarded the
// event, and a zero Handle behaves as canceled.
func (e *Estimator) Reset() {
	e.anchorT, e.anchorH, e.anchorM = 0, 0, 0
	e.sentLevel = 0
	clear(e.counts)
	e.levelTimer = sim.Handle{}
	e.stats = Stats{}
}

// Start begins local growth at the engine's current time.
func (e *Estimator) Start() error {
	e.anchorT = e.eng.Now()
	e.anchorH = e.cfg.HW.Read(e.anchorT)
	e.anchorM = 0
	return e.scheduleNextLevel()
}

// Value returns M_v(t). Queries must be non-decreasing in t.
func (e *Estimator) Value(t float64) float64 {
	h := e.cfg.HW.Read(t)
	return e.anchorM + (h-e.anchorH)/(1+e.cfg.Rho)
}

// Stats returns a copy of the counters.
func (e *Estimator) Stats() Stats { return e.stats }

// scheduleNextLevel arms the timer for M reaching (sentLevel+1)·unit.
func (e *Estimator) scheduleNextLevel() error {
	target := float64(e.sentLevel+1) * e.cfg.Unit
	// Hardware value at which M reaches target:
	hTarget := e.anchorH + (target-e.anchorM)*(1+e.cfg.Rho)
	at, err := e.cfg.HW.TimeWhen(e.eng.Now(), hTarget)
	if err != nil {
		return fmt.Errorf("globalskew: level timer: %w", err)
	}
	h, err := e.eng.ScheduleData(at, "max-level", levelEvent, sim.Data{Ctx: e})
	if err != nil {
		return err
	}
	e.levelTimer = h
	return nil
}

// levelEvent is the pooled level-timer callback.
func levelEvent(_ *sim.Engine, d sim.Data) {
	d.Ctx.(*Estimator).localLevel()
}

// localLevel fires when M grows past the next multiple of the unit.
func (e *Estimator) localLevel() {
	t := e.eng.Now()
	e.sentLevel++
	e.stats.LocalLevels++
	e.stats.PulsesSent++
	e.cfg.Send(t, 1)
	if err := e.scheduleNextLevel(); err != nil {
		panic(err) // unreachable: target ahead of monotone clock
	}
}

// RaiseTo lifts M_v to the node's own logical clock value (a node's own
// clock is a lower bound on L_max, and the Lemma C.2 argument relies on
// M_w ≥ L_w). Emits any level pulses the jump crosses, exactly like an
// adoption. Call it at round boundaries.
func (e *Estimator) RaiseTo(t, ownLogical float64) {
	if ownLogical <= e.Value(t) {
		return
	}
	e.anchorT = t
	e.anchorH = e.cfg.HW.Read(t)
	e.anchorM = ownLogical
	if newLevel := int(ownLogical / e.cfg.Unit); newLevel > e.sentLevel {
		copies := newLevel - e.sentLevel
		e.sentLevel = newLevel
		e.stats.PulsesSent += uint64(copies)
		e.cfg.Send(t, copies)
	}
	e.eng.Cancel(e.levelTimer)
	if err := e.scheduleNextLevel(); err != nil {
		panic(err) // unreachable: target ahead of monotone clock
	}
}

// HandleMaxPulse processes a received max pulse.
func (e *Estimator) HandleMaxPulse(t float64, from graph.NodeID) {
	group, ok := e.groupOf[from]
	if !ok {
		e.stats.Ignored++
		return
	}
	e.stats.PulsesHeard++
	e.counts[from]++

	// Confirmed level for the sender's group: the (f+1)-th largest pulse
	// count among its members.
	members := e.cfg.Groups[group]
	if cap(e.lvlScratch) < len(members) {
		e.lvlScratch = make([]int, len(members))
	}
	confirmed := confirmedLevel(members, e.counts, e.cfg.F, e.lvlScratch[:0])
	if confirmed == 0 {
		return
	}
	target := float64(confirmed+1) * e.cfg.Unit
	if target <= e.Value(t) {
		return
	}
	// Adopt the certified value: jump M up to target.
	e.anchorT = t
	e.anchorH = e.cfg.HW.Read(t)
	e.anchorM = target
	e.stats.AdoptedLevels++
	// Emit the pulses for every multiple we skipped (the flooding step).
	if newLevel := confirmed + 1; newLevel > e.sentLevel {
		copies := newLevel - e.sentLevel
		e.sentLevel = newLevel
		e.stats.PulsesSent += uint64(copies)
		e.cfg.Send(t, copies)
	}
	// Re-arm the growth timer against the new anchor.
	e.eng.Cancel(e.levelTimer)
	if err := e.scheduleNextLevel(); err != nil {
		panic(err)
	}
}

// confirmedLevel returns the largest ℓ such that at least f+1 members have
// delivered ≥ ℓ pulses (0 when fewer than f+1 members have sent anything).
// scratch is an empty slice with sufficient capacity; the caller owns it.
func confirmedLevel(members []graph.NodeID, counts map[graph.NodeID]int, f int, scratch []int) int {
	if len(members) < f+1 {
		return 0
	}
	// Collect counts and find the (f+1)-th largest.
	best := scratch
	for _, m := range members {
		best = append(best, counts[m])
	}
	// Partial selection: we need the (f+1)-th largest value.
	// Simple approach given small k: sort descending by insertion.
	for i := 1; i < len(best); i++ {
		for j := i; j > 0 && best[j] > best[j-1]; j-- {
			best[j], best[j-1] = best[j-1], best[j]
		}
	}
	return best[f]
}

// Gap returns M_v(t) − L for a logical clock value L; positive values mean
// the node lags the (estimated) maximum. Convenience for the Theorem C.3
// rule.
func (e *Estimator) Gap(t, logical float64) float64 {
	return e.Value(t) - logical
}
