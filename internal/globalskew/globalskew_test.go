package globalskew

import (
	"math"
	"testing"

	"ftgcs/internal/clockwork"
	"ftgcs/internal/graph"
	"ftgcs/internal/sim"
)

func singleGroup(members ...graph.NodeID) map[graph.ClusterID][]graph.NodeID {
	return map[graph.ClusterID][]graph.NodeID{0: members}
}

func TestLocalGrowthRate(t *testing.T) {
	eng := sim.NewEngine()
	rho := 1e-3
	hw := clockwork.NewHardwareClock(clockwork.Constant{Rate: 1 + rho})
	var sent int
	e, err := New(eng, Config{
		Unit: 0.1, Rho: rho, F: 1, Groups: singleGroup(1, 2, 3, 4),
		HW:   hw,
		Send: func(tt float64, copies int) { sent += copies },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(10.05); err != nil {
		t.Fatal(err)
	}
	// M grows at (1+ρ)/(1+ρ) = 1 exactly; at t=10.05, M = 10.05.
	now := eng.Now()
	if got := e.Value(now); math.Abs(got-now) > 1e-9 {
		t.Errorf("M(%v) = %v, want %v", now, got, now)
	}
	// Levels at multiples of 0.1 → 100 pulses by t=10.05 (the level-100
	// event lands at t=10 up to float rounding).
	if sent != 100 {
		t.Errorf("sent %d pulses, want 100", sent)
	}
	if e.Stats().LocalLevels != 100 {
		t.Errorf("stats: %+v", e.Stats())
	}
}

func TestSlowClockGrowsSlower(t *testing.T) {
	eng := sim.NewEngine()
	rho := 1e-3
	hw := clockwork.NewHardwareClock(clockwork.Constant{Rate: 1})
	e, err := New(eng, Config{
		Unit: 0.1, Rho: rho, F: 0, Groups: singleGroup(1),
		HW: hw, Send: func(float64, int) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(100); err != nil {
		t.Fatal(err)
	}
	// M = 100/(1+ρ) < 100: conservative by construction.
	want := 100 / (1 + rho)
	if got := e.Value(100); math.Abs(got-want) > 1e-9 {
		t.Errorf("M(100) = %v, want %v", got, want)
	}
}

func TestAdoptionNeedsFPlusOne(t *testing.T) {
	eng := sim.NewEngine()
	hw := clockwork.NewHardwareClock(clockwork.Constant{Rate: 1})
	var sent int
	e, err := New(eng, Config{
		Unit: 1.0, Rho: 1e-3, F: 1, Groups: singleGroup(1, 2, 3, 4),
		HW:   hw,
		Send: func(tt float64, copies int) { sent += copies },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// One (possibly Byzantine) sender claims level 5: must NOT be adopted.
	eng.MustSchedule(0.01, "byz", func(*sim.Engine) {
		for i := 0; i < 5; i++ {
			e.HandleMaxPulse(0.01, 1)
		}
	})
	if err := eng.Run(0.02); err != nil {
		t.Fatal(err)
	}
	if got := e.Value(0.02); got > 0.1 {
		t.Errorf("M adopted a single-sender claim: %v", got)
	}
	// A second sender confirms level 5 → adopt 6·unit.
	eng.MustSchedule(0.03, "honest", func(*sim.Engine) {
		for i := 0; i < 5; i++ {
			e.HandleMaxPulse(0.03, 2)
		}
	})
	if err := eng.Run(0.04); err != nil {
		t.Fatal(err)
	}
	if got := e.Value(0.04); math.Abs(got-6) > 0.01 {
		t.Errorf("M after confirmation = %v, want ≈ 6", got)
	}
	// The jump must have emitted the skipped pulses (levels 1..6).
	if sent < 6 {
		t.Errorf("sent %d pulses after jump, want ≥ 6", sent)
	}
	if e.Stats().AdoptedLevels == 0 {
		t.Error("adoption not recorded")
	}
}

func TestUnknownSenderIgnored(t *testing.T) {
	eng := sim.NewEngine()
	hw := clockwork.NewHardwareClock(clockwork.Constant{Rate: 1})
	e, err := New(eng, Config{
		Unit: 1, Rho: 1e-3, F: 0, Groups: singleGroup(1),
		HW: hw, Send: func(float64, int) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	e.HandleMaxPulse(0, 99)
	if e.Stats().Ignored != 1 {
		t.Error("unknown sender should be ignored and counted")
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	hw := clockwork.NewHardwareClock(clockwork.Constant{Rate: 1})
	send := func(float64, int) {}
	if _, err := New(eng, Config{Unit: 0, Rho: 1e-3, HW: hw, Send: send}); err == nil {
		t.Error("zero unit accepted")
	}
	if _, err := New(eng, Config{Unit: 1, Rho: 1e-3, Send: send}); err == nil {
		t.Error("nil HW accepted")
	}
	if _, err := New(eng, Config{Unit: 1, Rho: 1e-3, HW: hw}); err == nil {
		t.Error("nil Send accepted")
	}
}

func TestConfirmedLevel(t *testing.T) {
	counts := map[graph.NodeID]int{1: 5, 2: 3, 3: 0, 4: 7}
	members := []graph.NodeID{1, 2, 3, 4}
	tests := []struct {
		f    int
		want int
	}{
		{0, 7}, // largest
		{1, 5}, // 2nd largest
		{2, 3},
		{3, 0},
	}
	for _, tc := range tests {
		if got := confirmedLevel(members, counts, tc.f, nil); got != tc.want {
			t.Errorf("f=%d: confirmedLevel = %d, want %d", tc.f, got, tc.want)
		}
	}
	if got := confirmedLevel([]graph.NodeID{1}, counts, 1, nil); got != 0 {
		t.Errorf("too few members should confirm 0, got %d", got)
	}
}

func TestFloodingChain(t *testing.T) {
	// Three estimators in a chain of clusters; a level wave injected at
	// node 0's group propagates: estimator B adopts from group A, and its
	// re-emitted pulses let estimator C adopt from group B.
	eng := sim.NewEngine()
	mk := func(groups map[graph.ClusterID][]graph.NodeID, send func(float64, int)) *Estimator {
		hw := clockwork.NewHardwareClock(clockwork.Constant{Rate: 1})
		e, err := New(eng, Config{Unit: 1, Rho: 1e-3, F: 1, Groups: groups, HW: hw, Send: send})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	// Group 0 = {1,2,3,4} feeds B; group 1 = {11,12,13,14} feeds C.
	var c *Estimator
	relayDelay := 0.001
	b := mk(map[graph.ClusterID][]graph.NodeID{0: {1, 2, 3, 4}}, func(tt float64, copies int) {
		// B's own pulses reach C attributed to B's ID (11) and a
		// corroborating group member (12) — modeling f+1 correct members
		// of B's cluster raising their estimates near-simultaneously.
		for i := 0; i < copies; i++ {
			eng.MustSchedule(tt+relayDelay, "relay", func(e2 *sim.Engine) {
				c.HandleMaxPulse(e2.Now(), 11)
				c.HandleMaxPulse(e2.Now(), 12)
			})
		}
	})
	c = mk(map[graph.ClusterID][]graph.NodeID{1: {11, 12, 13, 14}}, func(float64, int) {})

	// Two members of group 0 claim level 4.
	eng.MustSchedule(0.01, "inject", func(e2 *sim.Engine) {
		for i := 0; i < 4; i++ {
			b.HandleMaxPulse(e2.Now(), 1)
			b.HandleMaxPulse(e2.Now(), 2)
		}
	})
	if err := eng.Run(0.05); err != nil {
		t.Fatal(err)
	}
	// After adoption M keeps growing locally at rate ≈ 1, so by t=0.05 the
	// value is the adopted level plus up to 0.05 of local growth.
	if got := b.Value(0.05); got < 5 || got > 5.06 {
		t.Errorf("B adopted %v, want in [5, 5.06]", got)
	}
	// C heard 5 confirmed levels from B's group (both 11 and 12 delivered
	// 5 pulses) → adopts 6·unit.
	if got := c.Value(0.05); got < 6 || got > 6.06 {
		t.Errorf("C adopted %v, want in [6, 6.06]", got)
	}
}

func TestGap(t *testing.T) {
	eng := sim.NewEngine()
	hw := clockwork.NewHardwareClock(clockwork.Constant{Rate: 1})
	e, err := New(eng, Config{Unit: 1, Rho: 1e-3, F: 0, Groups: singleGroup(1),
		HW: hw, Send: func(float64, int) {}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(10); err != nil {
		t.Fatal(err)
	}
	m := e.Value(10)
	if gap := e.Gap(10, m-3); math.Abs(gap-3) > 1e-9 {
		t.Errorf("Gap = %v, want 3", gap)
	}
}

func BenchmarkHandleMaxPulse(b *testing.B) {
	eng := sim.NewEngine()
	hw := clockwork.NewHardwareClock(clockwork.Constant{Rate: 1})
	e, err := New(eng, Config{Unit: 1e9, Rho: 1e-3, F: 2,
		Groups: singleGroup(1, 2, 3, 4, 5, 6, 7), HW: hw, Send: func(float64, int) {}})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Start(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.HandleMaxPulse(0, graph.NodeID(1+i%7))
	}
}
