package manifest

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"ftgcs/internal/spec"
)

// quickBase is a base spec small enough that expanded grids run in
// milliseconds.
func quickBase() spec.ScenarioSpec {
	return spec.ScenarioSpec{
		Topology: spec.Topology{Name: "line", Size: 2},
		Horizon:  spec.Horizon{Seconds: 3},
	}
}

// gridManifest is the canonical fixture: a baseline arm plus a sweep arm
// gated on it, expanding to 1 + 2×3 = 7 points of which one sweep point
// collides with nothing (all seeds distinct from baseline's).
func gridManifest() Manifest {
	return Manifest{
		Name: "test-grid",
		Base: quickBase(),
		Arms: []Arm{
			{Name: "baseline"},
			{
				Name: "sweep",
				Axes: []Axis{
					{Param: "topology.size", Ints: []int{2, 3}},
				},
				Seeds: &Seeds{From: 1, Count: 3},
				After: []string{"baseline"},
			},
		},
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	m := gridManifest()
	n1 := m.Normalize()
	n2 := n1.Normalize()
	b1, err := n1.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := n2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("Normalize is not idempotent:\n%s\n%s", b1, b2)
	}
	if n1.Version != Version {
		t.Errorf("version not defaulted: %d", n1.Version)
	}
	if n1.Arms[0].Seeds == nil || n1.Arms[0].Seeds.Count != 1 {
		t.Errorf("nil seeds not normalized: %+v", n1.Arms[0].Seeds)
	}
	if n1.Arms[0].Replicate != 1 {
		t.Errorf("replicate not defaulted: %d", n1.Arms[0].Replicate)
	}
}

// TestHashStableUnderSpelledDefaults: a manifest that spells out every
// default hashes identically to one that omits them, and display names
// are excluded from identity.
func TestHashStableUnderSpelledDefaults(t *testing.T) {
	terse := Manifest{
		Base: quickBase(),
		Arms: []Arm{{Name: "a", After: []string{"c", "b"}}, {Name: "b"}, {Name: "c"}},
	}
	spelled := Manifest{
		Version: Version,
		Name:    "a completely different display name",
		Base:    quickBase().Normalize(),
		Arms: []Arm{
			{Name: "a", Replicate: 1, Seeds: &Seeds{From: 0, Count: 1}, After: []string{"b", "c"}},
			{Name: "b", Replicate: 1, Seeds: &Seeds{From: 0, Count: 1}},
			{Name: "c", Replicate: 1, Seeds: &Seeds{From: 0, Count: 1}},
		},
	}
	spelled.Base.Name = "another display name"
	h1, err := terse.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := spelled.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash not stable under spelled-out defaults: %s vs %s", h1, h2)
	}
	if !strings.HasPrefix(h1, "sha256:") || len(h1) != len("sha256:")+64 {
		t.Fatalf("malformed hash %q", h1)
	}
}

// TestHashStableUnderKeyOrder: the same document with JSON keys in a
// different order parses to the same identity.
func TestHashStableUnderKeyOrder(t *testing.T) {
	a := `{"version":1,"base":{"topology":{"name":"line","size":2},"horizon":{"seconds":3}},"arms":[{"name":"x","seeds":{"from":5,"count":2}}]}`
	b := `{"arms":[{"seeds":{"count":2,"from":5},"name":"x"}],"base":{"horizon":{"seconds":3},"topology":{"size":2,"name":"line"}},"version":1}`
	ma, err := Parse([]byte(a))
	if err != nil {
		t.Fatal(err)
	}
	mb, err := Parse([]byte(b))
	if err != nil {
		t.Fatal(err)
	}
	ha, _ := ma.Hash()
	hb, _ := mb.Hash()
	if ha != hb {
		t.Fatalf("hash depends on key order: %s vs %s", ha, hb)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"version":1,"base":{},"arms":[{"name":"a"}],"bogus":1}`))
	if err == nil {
		t.Fatal("unknown top-level field accepted")
	}
	_, err = Parse([]byte(`{"version":1,"base":{},"arms":[{"name":"a","sweep":{}}]}`))
	if err == nil {
		t.Fatal("unknown arm field accepted")
	}
}

// FuzzCodecRoundTrip is the codec property test: for any input that
// parses, Canonical is a fixed point — re-parsing the canonical bytes
// and re-encoding yields the same bytes and the same hash.
func FuzzCodecRoundTrip(f *testing.F) {
	seed1, err := gridManifest().Canonical()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed1)
	f.Add([]byte(`{"version":1,"base":{},"arms":[{"name":"a","axes":[{"param":"clusters.k","ints":[4,7]}],"replicate":3}]}`))
	f.Add([]byte(`{"arms":[{"seeds":{"count":2,"from":-9},"name":"x","after":["x"]}],"base":{"preset":"paper-strict"}}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			t.Skip()
		}
		c1, err := m.Canonical()
		if err != nil {
			t.Skip() // unencodable values (NaN axis floats) cannot canonicalize
		}
		m2, err := Parse(c1)
		if err != nil {
			t.Fatalf("canonical bytes do not re-parse: %v\n%s", err, c1)
		}
		c2, err := m2.Canonical()
		if err != nil {
			t.Fatalf("re-canonicalize: %v", err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonical not a fixed point:\n%s\n%s", c1, c2)
		}
		h1, _ := m.Hash()
		h2, _ := m2.Hash()
		if h1 != h2 {
			t.Fatalf("hash changed across round trip: %s vs %s", h1, h2)
		}
	})
}

func TestExpandGrid(t *testing.T) {
	exp, err := gridManifest().Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	// baseline: 1 point (seed 0); sweep: 2 sizes × 3 seeds = 6. The
	// size=2/seed=0 baseline point does NOT collide (sweep seeds are 1–3).
	if len(exp.Jobs) != 7 {
		t.Fatalf("unique jobs = %d, want 7", len(exp.Jobs))
	}
	if len(exp.Arms) != 2 || len(exp.Arms[0].JobIDs) != 1 || len(exp.Arms[1].JobIDs) != 6 {
		t.Fatalf("arm plans wrong: %+v", exp.Arms)
	}
	if exp.Arms[1].After[0] != "baseline" {
		t.Fatalf("after lost: %+v", exp.Arms[1])
	}
	wantName := "sweep/topology.size=2/seed=1"
	found := false
	for _, j := range exp.Jobs {
		if j.Name == wantName {
			found = true
			if j.Request.Spec.Topology.Size != 2 || j.Request.Spec.Seed != 1 {
				t.Fatalf("point %q carries wrong spec: %+v", wantName, j.Request.Spec)
			}
		}
		if j.ID == "" || !strings.HasPrefix(j.ID, "sha256:") {
			t.Fatalf("job without identity: %+v", j)
		}
	}
	if !found {
		t.Fatalf("expected point %q missing", wantName)
	}
}

// TestExpandDedupSharedPoint: a grid point reachable from two arms is
// one unique job listed in both arm plans.
func TestExpandDedupSharedPoint(t *testing.T) {
	m := Manifest{
		Base: quickBase(),
		Arms: []Arm{
			{Name: "baseline", Seeds: &Seeds{From: 0, Count: 1}},
			{Name: "seeds", Seeds: &Seeds{From: 0, Count: 4}}, // includes seed 0
		},
	}
	exp, err := m.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Jobs) != 4 {
		t.Fatalf("unique jobs = %d, want 4 (seed 0 shared)", len(exp.Jobs))
	}
	if len(exp.Arms[0].JobIDs) != 1 || len(exp.Arms[1].JobIDs) != 4 {
		t.Fatalf("arm plans wrong: %+v", exp.Arms)
	}
	if exp.Arms[0].JobIDs[0] != exp.Arms[1].JobIDs[0] {
		t.Fatalf("shared point has two identities: %s vs %s", exp.Arms[0].JobIDs[0], exp.Arms[1].JobIDs[0])
	}
}

// TestExpandDeterministic: two expansions of the same manifest are
// identical, job order included.
func TestExpandDeterministic(t *testing.T) {
	e1, err := gridManifest().Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := gridManifest().Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	if e1.ManifestID != e2.ManifestID || len(e1.Jobs) != len(e2.Jobs) {
		t.Fatal("expansion not deterministic")
	}
	for i := range e1.Jobs {
		if e1.Jobs[i].ID != e2.Jobs[i].ID || e1.Jobs[i].Name != e2.Jobs[i].Name {
			t.Fatalf("job %d differs: %+v vs %+v", i, e1.Jobs[i], e2.Jobs[i])
		}
	}
}

// TestExpandDoesNotMutateBase: axis application patches copies; pointer
// fields in the base spec (constants, attack) must stay untouched.
func TestExpandDoesNotMutateBase(t *testing.T) {
	base := quickBase()
	base.Constants = &spec.Constants{C2: 4, Eps: 0.25}
	base.Attack = &spec.Attack{Name: "silent"}
	m := Manifest{Base: base, Arms: []Arm{{
		Name: "sweep",
		Axes: []Axis{
			{Param: "constants.c2", Floats: []float64{6, 8}},
			{Param: "attack.clusters", Ints: []int{1, 2}},
			{Param: "attack.name", Strings: []string{"spam", "none"}},
		},
	}}}
	if _, err := m.Expand(nil); err != nil {
		t.Fatal(err)
	}
	if base.Constants.C2 != 4 || base.Attack.Name != "silent" || base.Attack.Clusters != 0 {
		t.Fatalf("expansion mutated the base spec: %+v %+v", base.Constants, base.Attack)
	}
}

// TestExpandAttackNone: the "none" attack value clears the attack.
func TestExpandAttackNone(t *testing.T) {
	base := quickBase()
	base.Attack = &spec.Attack{Name: "silent"}
	m := Manifest{Base: base, Arms: []Arm{{
		Name: "a",
		Axes: []Axis{{Param: "attack.name", Strings: []string{"none", "spam"}}},
	}}}
	exp, err := m.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	var cleared, spam bool
	for _, j := range exp.Jobs {
		if j.Request.Spec.Attack == nil {
			cleared = true
		} else if j.Request.Spec.Attack.Name == "spam" {
			spam = true
		}
	}
	if !cleared || !spam {
		t.Fatalf("attack.name axis wrong: cleared=%v spam=%v", cleared, spam)
	}
}

func TestExpandErrors(t *testing.T) {
	cases := []struct {
		name string
		m    Manifest
		want string
	}{
		{"no arms", Manifest{Base: quickBase()}, "no arms"},
		{"dup arm", Manifest{Base: quickBase(), Arms: []Arm{{Name: "a"}, {Name: "a"}}}, "duplicate arm"},
		{"unnamed arm", Manifest{Base: quickBase(), Arms: []Arm{{}}}, "no name"},
		{"unknown after", Manifest{Base: quickBase(), Arms: []Arm{{Name: "a", After: []string{"ghost"}}}}, "unknown arm"},
		{"self after", Manifest{Base: quickBase(), Arms: []Arm{{Name: "a", After: []string{"a"}}}}, "waits on itself"},
		{"cycle", Manifest{Base: quickBase(), Arms: []Arm{
			{Name: "a", After: []string{"b"}}, {Name: "b", After: []string{"a"}},
		}}, "cycle"},
		{"unknown param", Manifest{Base: quickBase(), Arms: []Arm{{
			Name: "a", Axes: []Axis{{Param: "warp.factor", Ints: []int{9}}},
		}}}, "unknown param"},
		{"wrong value kind", Manifest{Base: quickBase(), Arms: []Arm{{
			Name: "a", Axes: []Axis{{Param: "clusters.k", Strings: []string{"four"}}},
		}}}, "takes ints"},
		{"two value lists", Manifest{Base: quickBase(), Arms: []Arm{{
			Name: "a", Axes: []Axis{{Param: "clusters.k", Ints: []int{4}, Floats: []float64{1}}},
		}}}, "exactly one"},
		{"duplicate value", Manifest{Base: quickBase(), Arms: []Arm{{
			Name: "a", Axes: []Axis{{Param: "clusters.k", Ints: []int{4, 4}}},
		}}}, "duplicate value"},
		{"zero seeds", Manifest{Base: quickBase(), Arms: []Arm{{
			Name: "a", Seeds: &Seeds{From: 0, Count: -1},
		}}}, "seeds.count"},
		{"bad version", Manifest{Version: 99, Base: quickBase(), Arms: []Arm{{Name: "a"}}}, "unsupported version"},
		{"invalid spec", Manifest{Base: quickBase(), Arms: []Arm{{
			Name: "a", Axes: []Axis{{Param: "topology.name", Strings: []string{"möbius"}}},
		}}}, "möbius"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.m.Expand(nil)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}

func TestExpandBudget(t *testing.T) {
	sizes := make([]int, 0, 40)
	for i := 0; i < 40; i++ {
		sizes = append(sizes, i+2)
	}
	m := Manifest{Base: quickBase(), Arms: []Arm{{
		Name:  "huge",
		Axes:  []Axis{{Param: "topology.size", Ints: sizes}},
		Seeds: &Seeds{From: 0, Count: 20},
	}}}
	_, err := m.Expand(nil)
	if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("%d", MaxJobs)) {
		t.Fatalf("oversize expansion not rejected: %v", err)
	}
}

// TestParamsTableComplete: every table entry has the applier matching
// its declared kind, and Params lists them all.
func TestParamsTableComplete(t *testing.T) {
	names := Params()
	if len(names) != len(paramTable) {
		t.Fatalf("Params() lists %d of %d", len(names), len(paramTable))
	}
	for name, p := range paramTable {
		switch p.kind {
		case kindInt:
			if p.applyI == nil {
				t.Errorf("param %q: kindInt without applyI", name)
			}
		case kindFloat:
			if p.applyF == nil {
				t.Errorf("param %q: kindFloat without applyF", name)
			}
		case kindString:
			if p.applyS == nil {
				t.Errorf("param %q: kindString without applyS", name)
			}
		}
	}
}
