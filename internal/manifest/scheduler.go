package manifest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ftgcs"
	"ftgcs/internal/jobs"
)

// ManifestState is a manifest run's aggregate lifecycle position.
type ManifestState string

const (
	// ManifestRunning: at least one arm still has non-terminal jobs.
	ManifestRunning ManifestState = "running"
	// ManifestDone: every job completed successfully.
	ManifestDone ManifestState = "done"
	// ManifestFailed: every job is terminal and at least one failed.
	ManifestFailed ManifestState = "failed"
	// ManifestCanceled: the run was canceled before all jobs completed.
	ManifestCanceled ManifestState = "canceled"
)

// JobStatus is one expanded job's position inside a manifest run. State
// "" means the scheduler has not submitted it yet (its arm is waiting on
// a dependency).
type JobStatus struct {
	Name   string         `json:"name"`
	ID     string         `json:"id"`
	State  jobs.State     `json:"state,omitempty"`
	Cached jobs.CacheTier `json:"cached,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// ArmStatus aggregates one arm's jobs.
type ArmStatus struct {
	Name  string        `json:"name"`
	After []string      `json:"after,omitempty"`
	State ManifestState `json:"state"`
	Jobs  []JobStatus   `json:"jobs"`
}

// Status is a complete manifest run snapshot: identity, aggregate state,
// job counts by outcome, and the per-arm detail. Job results are NOT
// embedded (a grid's series payloads can be large); clients fetch them
// per job ID through the experiment API.
type Status struct {
	ID    string        `json:"id"`
	Name  string        `json:"name,omitempty"`
	State ManifestState `json:"state"`
	// Counts over the deduplicated job set.
	Total    int `json:"total"`
	Pending  int `json:"pending"`
	Active   int `json:"active"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
	// FromCache counts jobs answered without a fresh run (memory or disk
	// tier) — on a replay after restart this equals Total.
	FromCache int         `json:"fromCache"`
	Arms      []ArmStatus `json:"arms"`
}

// jobTrack is the scheduler's record of one deduplicated job. Shared
// jobs (the same grid point reached from two arms) have ONE track: the
// job manager coalesces the duplicate submissions, and both arms record
// the same terminal snapshot here.
type jobTrack struct {
	name   string
	state  jobs.State // "" until first submitted
	cached jobs.CacheTier
	err    string
}

// record is one manifest run.
type record struct {
	id     string
	name   string
	exp    *Expansion
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed when the driver exits
	// Guarded by Scheduler.mu:
	tracks   map[string]*jobTrack
	canceled bool
}

// Scheduler expands manifests and drives their arm DAGs through a
// jobs.Manager: arms with no pending dependencies run concurrently, each
// arm's grid points run concurrently within it, and an arm listed in
// another's After gate holds that arm back until every one of its jobs
// is terminal. Dependencies are ordering, not success gates — a failed
// baseline still releases its dependents (their specs are independent;
// the ordering exists so e.g. a baseline's results land first).
type Scheduler struct {
	mgr *jobs.Manager
	reg *ftgcs.Registry

	mu     sync.Mutex
	recs   map[string]*record
	order  []string
	closed bool
	wg     sync.WaitGroup
}

// NewScheduler returns a scheduler submitting through mgr and validating
// against reg (nil means ftgcs.DefaultRegistry).
func NewScheduler(mgr *jobs.Manager, reg *ftgcs.Registry) *Scheduler {
	return &Scheduler{mgr: mgr, reg: reg, recs: make(map[string]*record)}
}

// ErrSchedulerClosed is returned by Submit after Close.
var ErrSchedulerClosed = errors.New("manifest: scheduler closed")

// ErrUnknownManifest is returned for IDs the scheduler has never run.
var ErrUnknownManifest = errors.New("manifest: unknown manifest")

// Submit validates, expands and starts (or re-joins) a manifest run.
// Submission is idempotent on the manifest's content hash: resubmitting
// a known manifest returns the existing run's status — except a
// *canceled* run, which is replaced by a fresh one (cancel-then-repost
// is the natural retry). The second return reports whether a new run
// started.
func (s *Scheduler) Submit(m Manifest) (Status, bool, error) {
	exp, err := m.Expand(s.reg)
	if err != nil {
		return Status{}, false, err
	}
	name := m.Name

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Status{}, false, ErrSchedulerClosed
	}
	if rec, ok := s.recs[exp.ManifestID]; ok && !rec.canceled {
		return s.statusLocked(rec), false, nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	rec := &record{
		id:     exp.ManifestID,
		name:   name,
		exp:    exp,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
		tracks: make(map[string]*jobTrack, len(exp.Jobs)),
	}
	for _, j := range exp.Jobs {
		rec.tracks[j.ID] = &jobTrack{name: j.Name}
	}
	if _, replacing := s.recs[rec.id]; !replacing {
		s.order = append(s.order, rec.id)
	}
	s.recs[rec.id] = rec
	s.wg.Add(1)
	go s.drive(rec)
	return s.statusLocked(rec), true, nil
}

// Get returns the status of a known manifest run.
func (s *Scheduler) Get(id string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[id]
	if !ok {
		return Status{}, false
	}
	return s.statusLocked(rec), true
}

// List returns every run's status in submission order.
func (s *Scheduler) List() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.recs[id]))
	}
	return out
}

// Cancel stops a run: arms not yet started never start, and this run's
// in-flight jobs are canceled in the manager (a job simultaneously
// wanted by another submitter completes for them if its run wins the
// race; see jobs.Cancel). Cancel does not wait for the driver to wind
// down; poll Get for the settled status.
func (s *Scheduler) Cancel(id string) (Status, error) {
	s.mu.Lock()
	rec, ok := s.recs[id]
	if !ok {
		s.mu.Unlock()
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownManifest, id)
	}
	rec.canceled = true
	rec.cancel()
	var inflight []string
	for jid, tr := range rec.tracks {
		if tr.state == jobs.StateQueued || tr.state == jobs.StateRunning {
			inflight = append(inflight, jid)
		}
	}
	st := s.statusLocked(rec)
	s.mu.Unlock()

	for _, jid := range inflight {
		// Best-effort reap; a job that wins the race and completes anyway
		// (ErrCompleted) is recorded with its real outcome.
		if final, err := s.mgr.Cancel(jid); err == nil || errors.Is(err, jobs.ErrCompleted) {
			s.setTrack(rec, jid, final.State, final.Cached, final.Error)
		}
	}
	return st, nil
}

// Close cancels every run and waits for all drivers to exit. It does not
// close the job manager (the caller owns it).
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, rec := range s.recs {
		rec.cancel()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Wait blocks until the run's driver has exited (every job terminal or
// abandoned by cancel) and returns the settled status.
func (s *Scheduler) Wait(ctx context.Context, id string) (Status, error) {
	s.mu.Lock()
	rec, ok := s.recs[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownManifest, id)
	}
	select {
	case <-rec.done:
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked(rec), nil
}

// drive runs one manifest: one goroutine per arm, each gated on its
// dependencies' completion channels.
func (s *Scheduler) drive(rec *record) {
	defer s.wg.Done()
	defer close(rec.done)

	armDone := make(map[string]chan struct{}, len(rec.exp.Arms))
	for _, ap := range rec.exp.Arms {
		armDone[ap.Name] = make(chan struct{})
	}
	jobsByID := make(map[string]Job, len(rec.exp.Jobs))
	for _, j := range rec.exp.Jobs {
		jobsByID[j.ID] = j
	}

	var wg sync.WaitGroup
	for _, ap := range rec.exp.Arms {
		wg.Add(1)
		go func(ap ArmPlan) {
			defer wg.Done()
			defer close(armDone[ap.Name])
			for _, dep := range ap.After {
				select {
				case <-armDone[dep]:
				case <-rec.ctx.Done():
					return
				}
			}
			if rec.ctx.Err() != nil {
				return
			}
			var jwg sync.WaitGroup
			for _, jid := range ap.JobIDs {
				jwg.Add(1)
				go func(j Job) {
					defer jwg.Done()
					s.runJob(rec, j)
				}(jobsByID[jid])
			}
			jwg.Wait()
		}(ap)
	}
	wg.Wait()
}

// runJob submits one job and records its terminal snapshot, retrying
// transient manager conditions: a full queue backs off until a slot
// frees, an evicted-before-read result resubmits (the recomputation is
// deduplicated if still cached anywhere).
func (s *Scheduler) runJob(rec *record, j Job) {
	evictions := 0
	for {
		if rec.ctx.Err() != nil {
			return
		}
		st, err := s.mgr.Submit(j.Request)
		switch {
		case err == nil:
		case errors.Is(err, jobs.ErrQueueFull):
			select {
			case <-rec.ctx.Done():
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		case errors.Is(err, jobs.ErrClosed):
			s.setTrack(rec, j.ID, jobs.StateCanceled, "", "job manager closed")
			return
		default:
			s.setTrack(rec, j.ID, jobs.StateFailed, "", err.Error())
			return
		}
		// The submission snapshot carries the cache tier; keep it even
		// after Wait (whose snapshot reports the by-then-warm memory tier).
		s.setTrack(rec, j.ID, st.State, st.Cached, st.Error)
		if st.State.Terminal() {
			return
		}
		final, err := s.mgr.Wait(rec.ctx, st.ID)
		switch {
		case err == nil:
			s.setTrack(rec, j.ID, final.State, st.Cached, final.Error)
			return
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return // manifest canceled; Cancel reaps the in-flight job
		case errors.Is(err, jobs.ErrCanceled):
			s.setTrack(rec, j.ID, jobs.StateCanceled, "", jobs.ErrCanceled.Error())
			return
		case errors.Is(err, jobs.ErrEvicted) || errors.Is(err, jobs.ErrUnknownJob):
			// Completed but fell out of the cache before we read it:
			// resubmit. Give up eventually rather than loop forever on a
			// pathologically small cache.
			if evictions++; evictions > 3 {
				s.setTrack(rec, j.ID, jobs.StateFailed, "", err.Error())
				return
			}
			continue
		default:
			s.setTrack(rec, j.ID, jobs.StateFailed, "", err.Error())
			return
		}
	}
}

// setTrack records a job observation.
func (s *Scheduler) setTrack(rec *record, id string, state jobs.State, tier jobs.CacheTier, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr := rec.tracks[id]
	// The first terminal observation wins: a second arm sharing the job
	// reports the same outcome later (possibly with a warmer cache tier
	// after promotion), and must not downgrade what was recorded.
	if tr.state.Terminal() {
		return
	}
	tr.state = state
	tr.cached = tier
	tr.err = errMsg
}

// statusLocked assembles a Status snapshot; callers hold s.mu.
func (s *Scheduler) statusLocked(rec *record) Status {
	st := Status{ID: rec.id, Name: rec.name, Total: len(rec.exp.Jobs)}
	for _, j := range rec.exp.Jobs {
		tr := rec.tracks[j.ID]
		switch tr.state {
		case jobs.StateDone:
			st.Done++
		case jobs.StateFailed:
			st.Failed++
		case jobs.StateCanceled:
			st.Canceled++
		case jobs.StateQueued, jobs.StateRunning:
			st.Active++
		default:
			st.Pending++
		}
		if tr.cached != "" {
			st.FromCache++
		}
	}
	settled := st.Pending == 0 && st.Active == 0
	switch {
	case rec.canceled || (settled && st.Canceled > 0):
		st.State = ManifestCanceled
	case !settled:
		st.State = ManifestRunning
	case st.Failed > 0:
		st.State = ManifestFailed
	default:
		st.State = ManifestDone
	}
	for _, ap := range rec.exp.Arms {
		as := ArmStatus{Name: ap.Name, After: ap.After}
		var done, failed, canceled, pending, active int
		for _, jid := range ap.JobIDs {
			tr := rec.tracks[jid]
			as.Jobs = append(as.Jobs, JobStatus{
				Name:   tr.name,
				ID:     jid,
				State:  tr.state,
				Cached: tr.cached,
				Error:  tr.err,
			})
			switch tr.state {
			case jobs.StateDone:
				done++
			case jobs.StateFailed:
				failed++
			case jobs.StateCanceled:
				canceled++
			case jobs.StateQueued, jobs.StateRunning:
				active++
			default:
				pending++
			}
		}
		switch {
		case rec.canceled && pending+active > 0, canceled > 0 && pending+active == 0:
			as.State = ManifestCanceled
		case pending+active > 0:
			as.State = ManifestRunning
		case failed > 0:
			as.State = ManifestFailed
		default:
			as.State = ManifestDone
		}
		st.Arms = append(st.Arms, as)
	}
	return st
}
