package manifest

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"ftgcs/internal/cas"
	"ftgcs/internal/jobs"
)

func waitSettled(t *testing.T, s *Scheduler, id string) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return st
}

// TestSchedulerRunsGrid drives the canonical fixture end to end through
// a real manager: everything completes, the deduplicated totals add up,
// and resubmission re-joins the existing run instead of recomputing.
func TestSchedulerRunsGrid(t *testing.T) {
	mgr := jobs.NewManager(jobs.Options{Workers: 4})
	defer mgr.Close()
	s := NewScheduler(mgr, nil)
	defer s.Close()

	st, created, err := s.Submit(gridManifest())
	if err != nil {
		t.Fatal(err)
	}
	if !created || st.Total != 7 {
		t.Fatalf("submit: created=%v %+v", created, st)
	}
	final := waitSettled(t, s, st.ID)
	if final.State != ManifestDone || final.Done != 7 || final.Failed != 0 {
		t.Fatalf("grid did not complete: %+v", final)
	}
	for _, arm := range final.Arms {
		if arm.State != ManifestDone {
			t.Fatalf("arm %q not done: %+v", arm.Name, arm)
		}
		for _, j := range arm.Jobs {
			if j.State != jobs.StateDone || j.Error != "" {
				t.Fatalf("job %q: %+v", j.Name, j)
			}
		}
	}

	st2, created2, err := s.Submit(gridManifest())
	if err != nil {
		t.Fatal(err)
	}
	if created2 || st2.ID != st.ID || st2.State != ManifestDone {
		t.Fatalf("resubmission not idempotent: created=%v %+v", created2, st2)
	}
	if mgr.Stats().Runs != 7 {
		t.Fatalf("runs = %d, want exactly 7 (no recomputation)", mgr.Stats().Runs)
	}
}

// TestSchedulerDependencyOrdering holds the single worker hostage and
// checks the gated arm's jobs are not even submitted while the baseline
// arm is still in flight.
func TestSchedulerDependencyOrdering(t *testing.T) {
	release := make(chan struct{})
	mgr := jobs.NewManager(jobs.Options{Workers: 1})
	mgr.TestHookBeforeRun = func() { <-release }
	defer mgr.Close()
	s := NewScheduler(mgr, nil)
	defer s.Close()

	st, _, err := s.Submit(gridManifest())
	if err != nil {
		close(release)
		t.Fatal(err)
	}

	// Wait until the baseline job is submitted, then assert every sweep
	// job is still pending (state "").
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, ok := s.Get(st.ID)
		if !ok {
			t.Fatal("run vanished")
		}
		var baseline, sweep *ArmStatus
		for i := range cur.Arms {
			switch cur.Arms[i].Name {
			case "baseline":
				baseline = &cur.Arms[i]
			case "sweep":
				sweep = &cur.Arms[i]
			}
		}
		if baseline.Jobs[0].State != "" {
			for _, j := range sweep.Jobs {
				if j.State != "" {
					close(release)
					t.Fatalf("sweep job %q submitted before baseline finished: %+v", j.Name, j)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			close(release)
			t.Fatal("baseline never submitted")
		}
		time.Sleep(time.Millisecond)
	}

	close(release)
	final := waitSettled(t, s, st.ID)
	if final.State != ManifestDone {
		t.Fatalf("grid did not complete after release: %+v", final)
	}
}

// TestSchedulerCancel: canceling a held run stops it — gated arms never
// start, the in-flight job lands canceled, and a resubmission starts a
// fresh run (canceled work is never cached).
func TestSchedulerCancel(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	defer unblock()
	mgr := jobs.NewManager(jobs.Options{Workers: 1})
	mgr.TestHookBeforeRun = func() { <-release }
	defer mgr.Close()
	s := NewScheduler(mgr, nil)
	defer s.Close()

	st, _, err := s.Submit(gridManifest())
	if err != nil {
		t.Fatal(err)
	}
	// Let the baseline submission land first.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, _ := s.Get(st.ID)
		if cur.Active > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("nothing became active")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitSettled(t, s, st.ID)
	if final.State != ManifestCanceled {
		t.Fatalf("state after cancel: %+v", final)
	}
	if final.Done != 0 {
		t.Fatalf("canceled run reports completed work: %+v", final)
	}

	// Cancel-then-resubmit starts a fresh run.
	unblock()
	st2, created, err := s.Submit(gridManifest())
	if err != nil {
		t.Fatal(err)
	}
	if !created || st2.ID != st.ID {
		t.Fatalf("resubmission after cancel should start fresh: created=%v %+v", created, st2)
	}
	if fin := waitSettled(t, s, st2.ID); fin.State != ManifestDone {
		t.Fatalf("fresh run did not complete: %+v", fin)
	}
}

// TestSchedulerReplayFromDisk is the package-level acceptance test for
// the durability story: run a manifest, tear the whole stack down, bring
// up a fresh manager+scheduler on the same store directory, resubmit the
// same manifest — every job must be served from the disk tier with zero
// recomputation, and every result byte-identical to the first run.
func TestSchedulerReplayFromDisk(t *testing.T) {
	dir := t.TempDir()
	open := func() (*jobs.Manager, *Scheduler) {
		store, err := cas.Open(dir, cas.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mgr := jobs.NewManager(jobs.Options{Workers: 4, Store: store})
		return mgr, NewScheduler(mgr, nil)
	}

	mgr1, s1 := open()
	st, _, err := s1.Submit(gridManifest())
	if err != nil {
		t.Fatal(err)
	}
	first := waitSettled(t, s1, st.ID)
	if first.State != ManifestDone {
		t.Fatalf("first run: %+v", first)
	}
	firstBytes := make(map[string][]byte)
	for _, arm := range first.Arms {
		for _, j := range arm.Jobs {
			js, ok := mgr1.Get(j.ID)
			if !ok || js.Result == nil {
				t.Fatalf("job %s has no result", j.ID)
			}
			b, err := json.Marshal(js.Result)
			if err != nil {
				t.Fatal(err)
			}
			firstBytes[j.ID] = b
		}
	}
	s1.Close()
	mgr1.Close()

	mgr2, s2 := open()
	defer mgr2.Close()
	defer s2.Close()
	st2, created, err := s2.Submit(gridManifest())
	if err != nil {
		t.Fatal(err)
	}
	if !created || st2.ID != st.ID {
		t.Fatalf("replay submit: created=%v id=%s want %s", created, st2.ID, st.ID)
	}
	replay := waitSettled(t, s2, st2.ID)
	if replay.State != ManifestDone || replay.FromCache != replay.Total {
		t.Fatalf("replay not fully cache-served: %+v", replay)
	}
	for _, arm := range replay.Arms {
		for _, j := range arm.Jobs {
			if j.Cached != jobs.TierDisk && j.Cached != jobs.TierMemory {
				t.Fatalf("job %q not cache-served: %+v", j.Name, j)
			}
			js, ok := mgr2.Get(j.ID)
			if !ok || js.Result == nil {
				t.Fatalf("replayed job %s has no result", j.ID)
			}
			b, err := json.Marshal(js.Result)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(firstBytes[j.ID], b) {
				t.Fatalf("job %s not byte-identical across restart:\n%s\n%s", j.ID, firstBytes[j.ID], b)
			}
		}
	}
	if s := mgr2.Stats(); s.Runs != 0 {
		t.Fatalf("replay recomputed %d jobs", s.Runs)
	}
}
