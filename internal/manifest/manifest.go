// Package manifest defines the declarative, versioned, JSON-serializable
// experiment-grid description layered over internal/spec: where a
// ScenarioSpec is ONE experiment, an ExperimentManifest is a whole
// reproduction grid — a base spec, plus named arms that sweep parameter
// axes (cartesian product over registry names, constants and cluster
// sizes) across seed ranges, with optional arm-to-arm dependencies
// ("baseline first"). A manifest expands server-side into deduplicated
// content-addressed jobs scheduled through the job manager, so a whole
// grid is one replayable document: same manifest ⇒ same job set ⇒ same
// byte-identical results, from memory, disk, or compute.
//
// The codec discipline exactly mirrors internal/spec: Normalize fills
// every default and is idempotent; Canonical marshals the normalized
// manifest with a fixed field order and the display name stripped; the
// SHA-256 of the canonical bytes is the manifest's identity.
package manifest

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"ftgcs"
	"ftgcs/internal/jobs"
	"ftgcs/internal/spec"
)

// Version is the current manifest schema version.
const Version = 1

// MaxJobs bounds how many unique jobs one manifest may expand into.
// Manifests arrive from remote clients; the cartesian product must not be
// able to enqueue unbounded work.
const MaxJobs = 512

// MaxArms bounds the number of arms.
const MaxArms = 64

// Manifest is a complete experiment grid: a base spec and a set of arms
// that vary it. The zero value of any optional field means "default".
type Manifest struct {
	// Version is the schema version; 0 is normalized to the current
	// Version.
	Version int `json:"version"`
	// Name is an optional display name, excluded from the canonical
	// encoding (like ScenarioSpec.Name): two manifests differing only in
	// Name are the same grid.
	Name string `json:"name,omitempty"`
	// Base is the spec every arm starts from. Its own Name is likewise
	// excluded from the manifest's identity.
	Base spec.ScenarioSpec `json:"base"`
	// Arms are the grid's sweeps. At least one is required. Arm names
	// ARE part of the identity: they define the dependency DAG.
	Arms []Arm `json:"arms"`
}

// Arm is one named sweep over the base spec: the cartesian product of
// its axes' values, times its seed range.
type Arm struct {
	// Name identifies the arm (unique within the manifest, required).
	Name string `json:"name"`
	// Axes are varied as a cartesian product; an arm with no axes runs
	// the base spec as-is. Axis order matters only for display names.
	Axes []Axis `json:"axes,omitempty"`
	// Seeds expands each grid point across consecutive seeds; nil means
	// one run at the base spec's seed.
	Seeds *Seeds `json:"seeds,omitempty"`
	// Replicate ≥ 2 turns each point into a replication job (seed
	// variance aggregation, see jobs.Request.Replicate).
	Replicate int `json:"replicate,omitempty"`
	// IncludeSeries attaches the recorded series to each result.
	IncludeSeries bool `json:"includeSeries,omitempty"`
	// After lists arms that must reach a terminal state before this arm
	// starts (e.g. a baseline arm first). Must form a DAG.
	After []string `json:"after,omitempty"`
}

// Axis is one swept parameter: a param name from the table below plus
// exactly one non-empty value list matching the parameter's type.
type Axis struct {
	Param   string    `json:"param"`
	Ints    []int     `json:"ints,omitempty"`
	Floats  []float64 `json:"floats,omitempty"`
	Strings []string  `json:"strings,omitempty"`
}

// Seeds is a consecutive seed range: From, From+1, …, From+Count−1.
type Seeds struct {
	From  int64 `json:"from"`
	Count int   `json:"count"`
}

// axisKind is an axis parameter's value type.
type axisKind int

const (
	kindInt axisKind = iota
	kindFloat
	kindString
)

// axisParam describes one settable parameter: its value type and how a
// value patches a spec.
type axisParam struct {
	kind   axisKind
	applyI func(*spec.ScenarioSpec, int)
	applyF func(*spec.ScenarioSpec, float64)
	applyS func(*spec.ScenarioSpec, string)
}

// params is the table of sweepable spec fields, keyed by their JSON path
// in the spec schema. "delay" names the delay adversary (like the spec
// field); the physical max delay is "physical.delay".
var paramTable = map[string]axisParam{
	"topology.name": {kind: kindString, applyS: func(s *spec.ScenarioSpec, v string) { s.Topology.Name = v }},
	"topology.size": {kind: kindInt, applyI: func(s *spec.ScenarioSpec, v int) { s.Topology.Size = v }},
	"clusters.k":    {kind: kindInt, applyI: func(s *spec.ScenarioSpec, v int) { s.Clusters.K = v }},
	"clusters.f":    {kind: kindInt, applyI: func(s *spec.ScenarioSpec, v int) { s.Clusters.F = v }},
	"physical.rho":  {kind: kindFloat, applyF: func(s *spec.ScenarioSpec, v float64) { s.Physical.Rho = v }},
	"physical.delay": {kind: kindFloat, applyF: func(s *spec.ScenarioSpec, v float64) {
		s.Physical.Delay = v
	}},
	"physical.uncertainty": {kind: kindFloat, applyF: func(s *spec.ScenarioSpec, v float64) {
		s.Physical.Uncertainty = v
	}},
	"constants.c2": {kind: kindFloat, applyF: func(s *spec.ScenarioSpec, v float64) {
		c := constantsOf(s)
		c.C2 = v
	}},
	"constants.eps": {kind: kindFloat, applyF: func(s *spec.ScenarioSpec, v float64) {
		c := constantsOf(s)
		c.Eps = v
	}},
	"preset": {kind: kindString, applyS: func(s *spec.ScenarioSpec, v string) { s.Preset = v }},
	"drift":  {kind: kindString, applyS: func(s *spec.ScenarioSpec, v string) { s.Drift = v }},
	"delay":  {kind: kindString, applyS: func(s *spec.ScenarioSpec, v string) { s.Delay = v }},
	// attack.name value "none" clears the attack entirely (baseline arms).
	"attack.name": {kind: kindString, applyS: func(s *spec.ScenarioSpec, v string) {
		if v == "none" {
			s.Attack = nil
			return
		}
		if s.Attack == nil {
			s.Attack = &spec.Attack{}
		} else {
			a := *s.Attack
			s.Attack = &a
		}
		s.Attack.Name = v
	}},
	"attack.clusters": {kind: kindInt, applyI: func(s *spec.ScenarioSpec, v int) {
		if s.Attack == nil {
			return // no attack to scope; validated earlier
		}
		a := *s.Attack
		a.Clusters = v
		s.Attack = &a
	}},
	"horizon.seconds": {kind: kindFloat, applyF: func(s *spec.ScenarioSpec, v float64) {
		s.Horizon = spec.Horizon{Seconds: v}
	}},
	"horizon.rounds": {kind: kindFloat, applyF: func(s *spec.ScenarioSpec, v float64) {
		s.Horizon = spec.Horizon{Rounds: v}
	}},
	"sampleInterval": {kind: kindFloat, applyF: func(s *spec.ScenarioSpec, v float64) { s.SampleInterval = v }},
}

// constantsOf returns a private, non-nil Constants to mutate.
func constantsOf(s *spec.ScenarioSpec) *spec.Constants {
	if s.Constants == nil {
		s.Constants = &spec.Constants{}
	} else {
		c := *s.Constants
		s.Constants = &c
	}
	return s.Constants
}

// Params returns the sweepable parameter names, sorted (error messages,
// docs, CLI help).
func Params() []string {
	out := make([]string, 0, len(paramTable))
	for k := range paramTable {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Normalize returns a copy with every default made explicit: version,
// the normalized base spec, per-arm replicate (0 → 1) and seeds (nil →
// one run at the base seed), and a sorted After list. Idempotent; like
// spec.Normalize it is what makes the content hash stable under
// spelled-out versus omitted defaults.
func (m Manifest) Normalize() Manifest {
	n := m
	if n.Version == 0 {
		n.Version = Version
	}
	n.Base = n.Base.Normalize()
	n.Arms = append([]Arm(nil), n.Arms...)
	for i := range n.Arms {
		a := &n.Arms[i]
		a.Axes = append([]Axis(nil), a.Axes...)
		if a.Replicate < 1 {
			a.Replicate = 1
		}
		if a.Replicate > 1 {
			a.IncludeSeries = false // mirrors jobs.Request normalization
		}
		if a.Seeds == nil {
			a.Seeds = &Seeds{From: n.Base.Seed, Count: 1}
		} else {
			s := *a.Seeds
			a.Seeds = &s
		}
		if len(a.After) > 0 {
			a.After = append([]string(nil), a.After...)
			sort.Strings(a.After)
		}
	}
	return n
}

// Canonical returns the manifest's canonical encoding: normalized, with
// the manifest and base display names stripped, marshaled with fixed
// field order and shortest-float numbers.
func (m Manifest) Canonical() ([]byte, error) {
	n := m.Normalize()
	n.Name = ""
	n.Base.Name = ""
	return json.Marshal(n)
}

// Hash returns the manifest's content hash: "sha256:" + hex SHA-256 of
// the canonical encoding.
func (m Manifest) Hash() (string, error) {
	c, err := m.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// Parse decodes a manifest from JSON bytes, rejecting unknown fields.
func Parse(data []byte) (Manifest, error) {
	return Decode(bytes.NewReader(data))
}

// Decode reads one manifest from r, rejecting unknown fields.
func Decode(r io.Reader) (Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("manifest: %w", err)
	}
	return m, nil
}

// Encode writes the manifest's canonical encoding followed by a newline.
func (m Manifest) Encode(w io.Writer) error {
	c, err := m.Canonical()
	if err != nil {
		return err
	}
	if _, err := w.Write(c); err != nil {
		return err
	}
	_, err = w.Write([]byte{'\n'})
	return err
}

// Job is one expanded, deduplicated unit of work.
type Job struct {
	// Name is the display name: "<arm>[/<param>=<value>…][/seed=N]".
	Name string `json:"name"`
	// Request is the job manager's unit of submission; its content hash
	// below is the job's identity.
	Request jobs.Request `json:"request"`
	// ID is Request's content hash.
	ID string `json:"id"`
}

// ArmPlan maps one arm to the IDs of the jobs it contains (shared jobs
// appear in every arm that produces them) and the arms it waits on.
type ArmPlan struct {
	Name   string   `json:"name"`
	After  []string `json:"after,omitempty"`
	JobIDs []string `json:"jobs"`
}

// Expansion is a manifest fully expanded: the manifest's identity, the
// deduplicated job list in first-appearance order, and the per-arm plan.
type Expansion struct {
	ManifestID string    `json:"manifestId"`
	Jobs       []Job     `json:"jobs"`
	Arms       []ArmPlan `json:"arms"`
}

// Validate checks the manifest without touching the job manager: schema
// version, arm and axis shape, the dependency DAG, the expansion budget,
// and every expanded spec against the registry (nil means
// ftgcs.DefaultRegistry). Like spec.Validate, failures name what is
// wrong and, for registry lookups, what is available.
func (m Manifest) Validate(reg *ftgcs.Registry) error {
	_, err := m.expand(reg, true)
	return err
}

// Expand validates and expands the manifest into its deduplicated job
// set and arm plan.
func (m Manifest) Expand(reg *ftgcs.Registry) (*Expansion, error) {
	return m.expand(reg, true)
}

// expand does the structural walk; validateSpecs additionally validates
// every unique expanded spec against the registry.
func (m Manifest) expand(reg *ftgcs.Registry, validateSpecs bool) (*Expansion, error) {
	n := m.Normalize()
	if n.Version != Version {
		return nil, fmt.Errorf("manifest: unsupported version %d (current %d)", n.Version, Version)
	}
	if len(n.Arms) == 0 {
		return nil, fmt.Errorf("manifest: no arms")
	}
	if len(n.Arms) > MaxArms {
		return nil, fmt.Errorf("manifest: %d arms exceeds limit %d", len(n.Arms), MaxArms)
	}
	byName := make(map[string]int, len(n.Arms))
	for i, a := range n.Arms {
		if a.Name == "" {
			return nil, fmt.Errorf("manifest: arm %d has no name", i)
		}
		if _, dup := byName[a.Name]; dup {
			return nil, fmt.Errorf("manifest: duplicate arm name %q", a.Name)
		}
		byName[a.Name] = i
	}
	if err := checkDAG(n.Arms, byName); err != nil {
		return nil, err
	}

	id, err := n.Hash()
	if err != nil {
		return nil, err
	}
	exp := &Expansion{ManifestID: id}
	seen := make(map[string]int) // job ID → index in exp.Jobs
	total := 0
	for _, a := range n.Arms {
		points, err := a.points(n.Base)
		if err != nil {
			return nil, err
		}
		plan := ArmPlan{Name: a.Name, After: a.After}
		for _, pt := range points {
			total++
			if total > MaxJobs {
				return nil, fmt.Errorf("manifest: expansion exceeds %d jobs", MaxJobs)
			}
			jid, err := pt.Request.ID()
			if err != nil {
				return nil, fmt.Errorf("manifest: arm %q: %w", a.Name, err)
			}
			pt.ID = jid
			if _, dup := seen[jid]; !dup {
				seen[jid] = len(exp.Jobs)
				if validateSpecs {
					if err := pt.Request.Spec.Validate(reg); err != nil {
						return nil, fmt.Errorf("manifest: arm %q, job %q: %w", a.Name, pt.Name, err)
					}
				}
				exp.Jobs = append(exp.Jobs, pt)
			}
			plan.JobIDs = append(plan.JobIDs, jid)
		}
		exp.Arms = append(exp.Arms, plan)
	}
	return exp, nil
}

// points expands one arm into its grid points (pre-dedup): the cartesian
// product of the axes' values times the seed range. m is the normalized
// base spec; the arm is normalized.
func (a Arm) points(base spec.ScenarioSpec) ([]Job, error) {
	if a.Replicate > jobs.MaxReplicate {
		return nil, fmt.Errorf("manifest: arm %q: replicate %d exceeds limit %d", a.Name, a.Replicate, jobs.MaxReplicate)
	}
	if a.Seeds.Count < 1 {
		return nil, fmt.Errorf("manifest: arm %q: seeds.count %d must be ≥ 1", a.Name, a.Seeds.Count)
	}
	type value struct {
		label string
		apply func(*spec.ScenarioSpec)
	}
	axes := make([][]value, 0, len(a.Axes))
	for _, ax := range a.Axes {
		p, ok := paramTable[ax.Param]
		if !ok {
			return nil, fmt.Errorf("manifest: arm %q: unknown param %q (have: %s)",
				a.Name, ax.Param, strings.Join(Params(), ", "))
		}
		lists := 0
		if len(ax.Ints) > 0 {
			lists++
		}
		if len(ax.Floats) > 0 {
			lists++
		}
		if len(ax.Strings) > 0 {
			lists++
		}
		if lists != 1 {
			return nil, fmt.Errorf("manifest: arm %q: param %q must set exactly one non-empty value list", a.Name, ax.Param)
		}
		var vals []value
		switch p.kind {
		case kindInt:
			if len(ax.Ints) == 0 {
				return nil, fmt.Errorf("manifest: arm %q: param %q takes ints", a.Name, ax.Param)
			}
			for _, v := range ax.Ints {
				v := v
				vals = append(vals, value{
					label: fmt.Sprintf("%s=%d", ax.Param, v),
					apply: func(s *spec.ScenarioSpec) { p.applyI(s, v) },
				})
			}
		case kindFloat:
			if len(ax.Floats) == 0 {
				return nil, fmt.Errorf("manifest: arm %q: param %q takes floats", a.Name, ax.Param)
			}
			for _, v := range ax.Floats {
				v := v
				vals = append(vals, value{
					label: fmt.Sprintf("%s=%g", ax.Param, v),
					apply: func(s *spec.ScenarioSpec) { p.applyF(s, v) },
				})
			}
		case kindString:
			if len(ax.Strings) == 0 {
				return nil, fmt.Errorf("manifest: arm %q: param %q takes strings", a.Name, ax.Param)
			}
			for _, v := range ax.Strings {
				v := v
				vals = append(vals, value{
					label: fmt.Sprintf("%s=%s", ax.Param, v),
					apply: func(s *spec.ScenarioSpec) { p.applyS(s, v) },
				})
			}
		}
		if err := checkDistinct(a.Name, ax); err != nil {
			return nil, err
		}
		axes = append(axes, vals)
	}

	var out []Job
	var walk func(depth int, labels []string, patch []func(*spec.ScenarioSpec))
	walk = func(depth int, labels []string, patch []func(*spec.ScenarioSpec)) {
		if depth < len(axes) {
			for _, v := range axes[depth] {
				walk(depth+1, append(labels, v.label), append(patch, v.apply))
			}
			return
		}
		for i := 0; i < a.Seeds.Count; i++ {
			s := base
			for _, ap := range patch {
				ap(&s)
			}
			s.Seed = a.Seeds.From + int64(i)
			parts := append([]string{a.Name}, labels...)
			if a.Seeds.Count > 1 {
				parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
			}
			s.Name = strings.Join(parts, "/")
			out = append(out, Job{
				Name: s.Name,
				Request: jobs.Request{
					Spec:          s,
					Replicate:     a.Replicate,
					IncludeSeries: a.IncludeSeries,
				},
			})
		}
	}
	walk(0, nil, nil)
	return out, nil
}

// checkDistinct rejects duplicate values on one axis (they would expand
// to identical labels and — post-dedup — silently collapse).
func checkDistinct(arm string, ax Axis) error {
	seen := make(map[string]bool)
	add := func(label string) error {
		if seen[label] {
			return fmt.Errorf("manifest: arm %q: param %q lists duplicate value %s", arm, ax.Param, label)
		}
		seen[label] = true
		return nil
	}
	for _, v := range ax.Ints {
		if err := add(fmt.Sprintf("%d", v)); err != nil {
			return err
		}
	}
	for _, v := range ax.Floats {
		if err := add(fmt.Sprintf("%g", v)); err != nil {
			return err
		}
	}
	for _, v := range ax.Strings {
		if err := add(v); err != nil {
			return err
		}
	}
	return nil
}

// checkDAG validates the After references and rejects cycles (Kahn).
func checkDAG(arms []Arm, byName map[string]int) error {
	indeg := make([]int, len(arms))
	out := make([][]int, len(arms))
	for i, a := range arms {
		for _, dep := range a.After {
			j, ok := byName[dep]
			if !ok {
				return fmt.Errorf("manifest: arm %q waits on unknown arm %q", a.Name, dep)
			}
			if j == i {
				return fmt.Errorf("manifest: arm %q waits on itself", a.Name)
			}
			out[j] = append(out[j], i)
			indeg[i]++
		}
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		done++
		for _, j := range out[i] {
			if indeg[j]--; indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if done != len(arms) {
		return fmt.Errorf("manifest: dependency cycle among arms")
	}
	return nil
}
