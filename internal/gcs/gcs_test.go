package gcs

import (
	"math"
	"testing"

	"ftgcs/internal/sim"
)

func TestFastTriggerBasic(t *testing.T) {
	kappa, delta := 3.0, 1.0
	tests := []struct {
		name string
		own  float64
		est  []float64
		want bool
	}{
		{"no neighbors", 0, nil, false},
		{"all synced", 0, []float64{0, 0}, false},
		{"one far ahead, s=1", 0, []float64{2*kappa - delta}, true},
		{"ahead but below threshold", 0, []float64{2*kappa - delta - 0.01}, false},
		{"ahead but another far behind", 0, []float64{2 * kappa, -(2*kappa + delta + 0.01)}, false},
		{"ahead and another just within", 0, []float64{2 * kappa, -(2*kappa + delta)}, true},
		{"s=2 rescue: far ahead dominates behind", 0, []float64{4 * kappa, -(2*kappa + delta + 0.5)}, true},
		{"behind only", 0, []float64{-10}, false},
	}
	for _, tc := range tests {
		if got := FastTrigger(tc.own, tc.est, kappa, delta); got != tc.want {
			t.Errorf("%s: FastTrigger = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSlowTriggerBasic(t *testing.T) {
	kappa, delta := 3.0, 1.0
	tests := []struct {
		name string
		own  float64
		est  []float64
		want bool
	}{
		{"no neighbors", 0, nil, false},
		{"all synced", 0, []float64{0}, false},
		{"one far behind, s=1", 0, []float64{-(kappa - delta)}, true},
		{"behind but below threshold", 0, []float64{-(kappa - delta - 0.01)}, false},
		{"behind but another too far ahead", 0, []float64{-(kappa), kappa + delta + 0.01}, false},
		{"behind and ahead within", 0, []float64{-kappa, kappa + delta}, true},
		{"s=2 rescue", 0, []float64{-(3 * kappa), kappa + delta + 0.5}, true},
		{"ahead only", 0, []float64{10}, false},
	}
	for _, tc := range tests {
		if got := SlowTrigger(tc.own, tc.est, kappa, delta); got != tc.want {
			t.Errorf("%s: SlowTrigger = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestTriggersInvalidKappa(t *testing.T) {
	if FastTrigger(0, []float64{100}, 0, 0) || SlowTrigger(0, []float64{-100}, -1, 0) {
		t.Error("non-positive κ must disable triggers")
	}
}

func TestConditionsAreZeroSlackTriggers(t *testing.T) {
	kappa := 2.0
	if !FastCondition(0, []float64{2 * kappa}, kappa) {
		t.Error("FC should hold with neighbor 2κ ahead")
	}
	if FastCondition(0, []float64{2*kappa - 0.01}, kappa) {
		t.Error("FC should need the full 2κ")
	}
	if !SlowCondition(0, []float64{-kappa}, kappa) {
		t.Error("SC should hold with neighbor κ behind")
	}
}

// TestTriggerExclusivity is experiment E5: with the paper's δ = κ/3, FT and
// ST are mutually exclusive over randomized estimate configurations.
func TestTriggerExclusivity(t *testing.T) {
	rng := sim.NewRNG(11, 0)
	kappa := 1.0
	delta := kappa / 3
	for trial := 0; trial < 200000; trial++ {
		n := 1 + rng.Intn(5)
		est := make([]float64, n)
		for i := range est {
			est[i] = rng.UniformIn(-6*kappa, 6*kappa)
		}
		own := rng.UniformIn(-2*kappa, 2*kappa)
		ft := FastTrigger(own, est, kappa, delta)
		st := SlowTrigger(own, est, kappa, delta)
		if ft && st {
			t.Fatalf("trial %d: FT and ST both hold (own=%v est=%v)", trial, own, est)
		}
	}
}

// TestTriggerExclusivityBoundary documents the sharp constant: δ < κ/2
// keeps the triggers exclusive, while δ ≥ κ/2 admits configurations where
// both fire (the parity argument |2s − (2s'−1)| ≥ 1 needs 2δ/κ < 1). The
// paper's Lemma 4.5 states δ < 2κ; its own choice δ = κ/3 is safe either
// way.
func TestTriggerExclusivityBoundary(t *testing.T) {
	kappa := 1.0
	// Just below κ/2: exhaustive-ish scan finds no overlap.
	delta := 0.49 * kappa
	rng := sim.NewRNG(13, 0)
	for trial := 0; trial < 100000; trial++ {
		est := []float64{rng.UniformIn(-4, 4), rng.UniformIn(-4, 4)}
		if FastTrigger(0, est, kappa, delta) && SlowTrigger(0, est, kappa, delta) {
			t.Fatalf("δ=0.49κ: overlap at est=%v", est)
		}
	}
	// At δ = 0.6κ the known counterexample fires both triggers:
	// up = 2κ−δ (FT-1 at s=1), down = κ−δ (ST-1 at s=1),
	// FT-2: κ−δ ≤ 2κ+δ ✓, ST-2: 2κ−δ ≤ κ+δ ⇔ κ ≤ 2δ ✓.
	delta = 0.6 * kappa
	est := []float64{2*kappa - delta, -(kappa - delta)}
	if !FastTrigger(0, est, kappa, delta) || !SlowTrigger(0, est, kappa, delta) {
		t.Error("expected both triggers to fire at δ=0.6κ (documented counterexample)")
	}
}

func TestConditionImpliesTrigger(t *testing.T) {
	// Faithfulness prerequisite: if FC holds on true values and every
	// estimate is within δ/2 of truth and own clock within δ/2 of the
	// cluster clock, then FT holds on the estimates (the slack δ absorbs
	// the estimate error — cf. Lemma 4.8).
	rng := sim.NewRNG(17, 0)
	kappa := 1.0
	delta := kappa / 3
	for trial := 0; trial < 50000; trial++ {
		n := 1 + rng.Intn(4)
		truth := make([]float64, n)
		for i := range truth {
			truth[i] = rng.UniformIn(-5, 5)
		}
		clusterClock := rng.UniformIn(-2, 2)
		est := make([]float64, n)
		for i := range est {
			est[i] = truth[i] + rng.UniformIn(-delta/2, delta/2)
		}
		own := clusterClock + rng.UniformIn(-delta/2, delta/2)
		if FastCondition(clusterClock, truth, kappa) {
			if !FastTrigger(own, est, kappa, delta) {
				t.Fatalf("trial %d: FC holds but FT does not (truth=%v est=%v)", trial, truth, est)
			}
		}
		if SlowCondition(clusterClock, truth, kappa) {
			if !SlowTrigger(own, est, kappa, delta) {
				t.Fatalf("trial %d: SC holds but ST does not", trial)
			}
		}
	}
}

func TestDecidePriorities(t *testing.T) {
	r := Rules{Kappa: 3, Delta: 1, CGlobal: 8}
	// FT wins.
	d := Decide(0, []float64{10}, math.NaN(), r)
	if d.Mode != Fast || d.Reason != ReasonFastTrigger {
		t.Errorf("FT case: %+v", d)
	}
	// ST when no FT.
	d = Decide(0, []float64{-4}, math.NaN(), r)
	if d.Mode != Slow || d.Reason != ReasonSlowTrigger {
		t.Errorf("ST case: %+v", d)
	}
	// Catch-up: no triggers, M_v far ahead.
	d = Decide(0, []float64{0}, 100, r)
	if d.Mode != Fast || d.Reason != ReasonCatchUp {
		t.Errorf("catch-up case: %+v", d)
	}
	// Catch-up disabled by NaN.
	d = Decide(0, []float64{0}, math.NaN(), r)
	if d.Mode != Slow || d.Reason != ReasonDefaultSlow {
		t.Errorf("default case: %+v", d)
	}
	// Catch-up disabled by CGlobal ≤ 0.
	d = Decide(0, []float64{0}, 100, Rules{Kappa: 3, Delta: 1})
	if d.Reason != ReasonDefaultSlow {
		t.Errorf("disabled catch-up: %+v", d)
	}
	// ST takes precedence over catch-up (Theorem C.3: "if neither holds").
	d = Decide(0, []float64{-4}, 100, r)
	if d.Mode != Slow || d.Reason != ReasonSlowTrigger {
		t.Errorf("ST-over-catchup case: %+v", d)
	}
}

func TestStatsRecording(t *testing.T) {
	var s Stats
	s.Record(Decision{Mode: Slow, Reason: ReasonDefaultSlow})
	s.Record(Decision{Mode: Fast, Reason: ReasonFastTrigger})
	s.Record(Decision{Mode: Fast, Reason: ReasonCatchUp})
	s.Record(Decision{Mode: Slow, Reason: ReasonSlowTrigger})
	if s.Decisions != 4 || s.FastTrigger != 1 || s.SlowTrigger != 1 ||
		s.CatchUp != 1 || s.DefaultSlow != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.ModeSwitches != 2 {
		t.Errorf("ModeSwitches = %d, want 2", s.ModeSwitches)
	}
}

func TestGCSAxiomCheck(t *testing.T) {
	rhoBar, muBar := 0.001, 0.004
	if err := GCSAxiomCheck(1.0005, false, false, rhoBar, muBar, 0); err != nil {
		t.Errorf("valid A1 rate rejected: %v", err)
	}
	if err := GCSAxiomCheck(0.5, false, false, rhoBar, muBar, 0); err == nil {
		t.Error("sub-1 rate should violate A1")
	}
	if err := GCSAxiomCheck(1.002, true, false, rhoBar, muBar, 0); err == nil {
		t.Error("SC with high rate should violate A2")
	}
	if err := GCSAxiomCheck(1.002, false, true, rhoBar, muBar, 0); err == nil {
		t.Error("FC with low rate should violate A3")
	}
	if err := GCSAxiomCheck(1.005, false, true, rhoBar, muBar, 0); err != nil {
		t.Errorf("FC with fast rate should pass A3: %v", err)
	}
}

func TestModeAndReasonStrings(t *testing.T) {
	if Fast.String() != "fast" || Slow.String() != "slow" {
		t.Error("mode strings")
	}
	if Fast.Gamma() != 1 || Slow.Gamma() != 0 {
		t.Error("gamma mapping")
	}
	for _, r := range []Reason{ReasonFastTrigger, ReasonSlowTrigger, ReasonCatchUp, ReasonDefaultSlow, Reason(99)} {
		if r.String() == "" {
			t.Errorf("empty string for reason %d", int(r))
		}
	}
}

func TestTriggerScaleInvariance(t *testing.T) {
	// Triggers are invariant under common shifts of all clocks and under
	// common scaling of (κ, δ, values).
	rng := sim.NewRNG(23, 0)
	for trial := 0; trial < 20000; trial++ {
		kappa := rng.UniformIn(0.1, 10)
		delta := kappa / 3
		own := rng.UniformIn(-5, 5)
		est := []float64{rng.UniformIn(-15, 15), rng.UniformIn(-15, 15)}
		shift := rng.UniformIn(-100, 100)
		scale := rng.UniformIn(0.1, 10)

		ft := FastTrigger(own, est, kappa, delta)
		shifted := []float64{est[0] + shift, est[1] + shift}
		if FastTrigger(own+shift, shifted, kappa, delta) != ft {
			t.Fatalf("trial %d: FT not shift-invariant", trial)
		}
		scaled := []float64{est[0] * scale, est[1] * scale}
		if FastTrigger(own*scale, scaled, kappa*scale, delta*scale) != ft {
			t.Fatalf("trial %d: FT not scale-invariant", trial)
		}
	}
}

func BenchmarkDecide(b *testing.B) {
	est := []float64{1.5, -0.3, 0.9, 2.2}
	r := Rules{Kappa: 1, Delta: 1.0 / 3, CGlobal: 8}
	for i := 0; i < b.N; i++ {
		Decide(0.1, est, 5, r)
	}
}

func TestTriggerLevels(t *testing.T) {
	kappa, delta := 1.0, 1.0/3
	// Neighbor 2κ ahead → level 1; 6κ ahead → level 3.
	if ok, lvl := FastTriggerLevel(0, []float64{2 * kappa}, kappa, delta); !ok || lvl != 1 {
		t.Errorf("FT level = (%v, %d), want (true, 1)", ok, lvl)
	}
	if ok, lvl := FastTriggerLevel(0, []float64{6*kappa + delta}, kappa, delta); !ok || lvl != 3 {
		t.Errorf("FT deep level = (%v, %d), want (true, 3)", ok, lvl)
	}
	if ok, lvl := FastTriggerLevel(0, []float64{0.1}, kappa, delta); ok || lvl != 0 {
		t.Errorf("FT no-fire level = (%v, %d), want (false, 0)", ok, lvl)
	}
	// Neighbor κ behind → ST level 1; 5κ behind → level 3.
	if ok, lvl := SlowTriggerLevel(0, []float64{-kappa}, kappa, delta); !ok || lvl != 1 {
		t.Errorf("ST level = (%v, %d), want (true, 1)", ok, lvl)
	}
	if ok, lvl := SlowTriggerLevel(0, []float64{-(5*kappa + delta)}, kappa, delta); !ok || lvl != 3 {
		t.Errorf("ST deep level = (%v, %d), want (true, 3)", ok, lvl)
	}
	// Decide propagates the level.
	d := Decide(0, []float64{4 * kappa}, math.NaN(), Rules{Kappa: kappa, Delta: delta})
	if d.Level != 2 {
		t.Errorf("Decide level = %d, want 2", d.Level)
	}
	var st Stats
	st.Record(d)
	st.Record(Decision{Mode: Slow, Reason: ReasonSlowTrigger, Level: 1})
	if st.MaxLevel != 2 {
		t.Errorf("MaxLevel = %d, want 2", st.MaxLevel)
	}
}
