// Package gcs implements the inter-cluster layer of the FTGCS paper:
// InterclusterSync (Algorithm 2), which simulates the gradient clock
// synchronization algorithm of Lenzen, Locher and Wattenhofer [13] (in the
// formulation of Kuhn, Lenzen, Locher, Oshman [10]) on the cluster graph 𝒢.
//
// Clusters play the role of GCS nodes. Each physical node v ∈ C evaluates,
// at the start of every ClusterSync round, the fast trigger (FT, Def. 4.3)
// and slow trigger (ST, Def. 4.4) over its own logical clock L_v (its
// stand-in for the cluster clock L_C) and its estimates L̃_vB of
// neighboring cluster clocks, then sets its mode γ_v for the round:
//
//	FT-1  ∃A ∈ N_C : L̃_vA(t) − L_v(t) ≥ 2sκ − δ
//	FT-2  ∀B ∈ N_C : L_v(t) − L̃_vB(t) ≤ 2sκ + δ        (some s ∈ ℕ)
//
//	ST-1  ∃A ∈ N_C : L_v(t) − L̃_vA(t) ≥ (2s−1)κ − δ
//	ST-2  ∀B ∈ N_C : L̃_vB(t) − L_v(t) ≤ (2s−1)κ + δ    (some s ∈ ℕ)
//
// The slack δ absorbs estimate errors; κ = 3δ (Lemma 4.8) makes every
// execution faithful: whenever the true fast/slow condition (FC/SC,
// Defs. 4.1–4.2 — the same predicates with exact cluster clocks and δ = 0)
// holds, every correct cluster member has been satisfying the corresponding
// trigger for ≥ k rounds already.
//
// On top of the triggers, the Theorem C.3 global-skew rules apply: if
// neither trigger fires but the node's clock lags the max-estimate M_v by
// ≥ c·δ, it picks fast mode; otherwise it defaults to slow (Lemma C.1).
//
// Note on Lemma 4.5: the paper states FT/ST mutual exclusivity for
// δ < 2κ; the standard parity argument (and our property tests, see
// TestTriggerExclusivityBoundary) give the sharper requirement δ < κ/2.
// The paper's own choice κ = 3δ satisfies both.
package gcs

import (
	"fmt"
	"math"
)

// Mode is the γ decision for a round.
type Mode int

const (
	// Slow is γ = 0.
	Slow Mode = iota
	// Fast is γ = 1.
	Fast
)

func (m Mode) String() string {
	if m == Fast {
		return "fast"
	}
	return "slow"
}

// Gamma returns the γ multiplier flag of the mode.
func (m Mode) Gamma() int {
	if m == Fast {
		return 1
	}
	return 0
}

// Reason records why a mode was chosen (metrics and faithfulness checks).
type Reason int

const (
	// ReasonFastTrigger: FT held.
	ReasonFastTrigger Reason = iota + 1
	// ReasonSlowTrigger: ST held (and FT did not).
	ReasonSlowTrigger
	// ReasonCatchUp: neither trigger held but L_v ≤ M_v − c·δ
	// (Theorem C.3 second rule).
	ReasonCatchUp
	// ReasonDefaultSlow: no rule fired; slow by default (Lemma C.1).
	ReasonDefaultSlow
)

func (r Reason) String() string {
	switch r {
	case ReasonFastTrigger:
		return "fast-trigger"
	case ReasonSlowTrigger:
		return "slow-trigger"
	case ReasonCatchUp:
		return "catch-up"
	case ReasonDefaultSlow:
		return "default-slow"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// spreads reduces the neighbor estimates to the two quantities the
// triggers depend on:
//
//	up   = max_B (est_B − own): how far the most-ahead neighbor leads
//	down = max_B (own − est_B): how far the most-behind neighbor trails
//
// Both are −Inf when there are no neighbors.
func spreads(own float64, estimates []float64) (up, down float64) {
	up, down = math.Inf(-1), math.Inf(-1)
	for _, e := range estimates {
		up = math.Max(up, e-own)
		down = math.Max(down, own-e)
	}
	return up, down
}

// FastTrigger evaluates FT (Def. 4.3). The existential over s ∈ ℕ (s ≥ 1)
// is resolved in closed form: FT-1 admits any s ≤ (up+δ)/(2κ), and FT-2 is
// monotonically easier as s grows, so only the largest admissible s needs
// checking.
func FastTrigger(own float64, estimates []float64, kappa, delta float64) bool {
	ok, _ := FastTriggerLevel(own, estimates, kappa, delta)
	return ok
}

// FastTriggerLevel additionally reports the level s the trigger fired at
// (0 when it did not fire). The level indicates how deep into the skew
// hierarchy the node currently is — useful diagnostics for experiments.
func FastTriggerLevel(own float64, estimates []float64, kappa, delta float64) (bool, int) {
	if kappa <= 0 {
		return false, 0
	}
	up, down := spreads(own, estimates)
	if math.IsInf(up, -1) {
		return false, 0
	}
	s := math.Floor((up + delta) / (2 * kappa))
	if s < 1 {
		return false, 0
	}
	if down <= 2*s*kappa+delta {
		return true, int(s)
	}
	return false, 0
}

// SlowTrigger evaluates ST (Def. 4.4). ST-1 admits any s ≤
// (down+δ+κ)/(2κ); ST-2 is easier as s grows.
func SlowTrigger(own float64, estimates []float64, kappa, delta float64) bool {
	ok, _ := SlowTriggerLevel(own, estimates, kappa, delta)
	return ok
}

// SlowTriggerLevel additionally reports the firing level s (0 when the
// trigger did not fire).
func SlowTriggerLevel(own float64, estimates []float64, kappa, delta float64) (bool, int) {
	if kappa <= 0 {
		return false, 0
	}
	up, down := spreads(own, estimates)
	if math.IsInf(down, -1) {
		return false, 0
	}
	s := math.Floor((down + delta + kappa) / (2 * kappa))
	if s < 1 {
		return false, 0
	}
	if up <= (2*s-1)*kappa+delta {
		return true, int(s)
	}
	return false, 0
}

// FastCondition evaluates FC (Def. 4.1): FT with exact cluster clocks and
// zero slack.
func FastCondition(clusterClock float64, neighborClocks []float64, kappa float64) bool {
	return FastTrigger(clusterClock, neighborClocks, kappa, 0)
}

// SlowCondition evaluates SC (Def. 4.2).
func SlowCondition(clusterClock float64, neighborClocks []float64, kappa float64) bool {
	return SlowTrigger(clusterClock, neighborClocks, kappa, 0)
}

// Rules bundles the decision parameters.
type Rules struct {
	Kappa float64 // GCS level unit κ
	Delta float64 // trigger slack δ
	// CGlobal is Theorem C.3's constant c; the catch-up rule fires when
	// M_v − L_v ≥ CGlobal·δ. Set ≤ 0 to disable the global-skew rule.
	CGlobal float64
}

// Decision is the outcome of one round's mode selection.
type Decision struct {
	Mode   Mode
	Reason Reason
	// Level is the trigger level s that fired (0 for catch-up/default
	// decisions). Higher levels mean the node sits deeper in the skew
	// hierarchy of Theorem 4.10's analysis.
	Level int
}

// Decide implements Algorithm 2 extended with the Theorem C.3 rules:
//
//  1. FT ⇒ fast.
//  2. ST ⇒ slow.
//  3. Neither, and L_v ≤ M_v − cδ ⇒ fast (catch-up).
//  4. Otherwise slow (Lemma C.1 default).
//
// maxEstimate is the node's M_v; pass NaN when the global-skew machinery
// is not in use.
func Decide(own float64, estimates []float64, maxEstimate float64, r Rules) Decision {
	if ok, level := FastTriggerLevel(own, estimates, r.Kappa, r.Delta); ok {
		return Decision{Mode: Fast, Reason: ReasonFastTrigger, Level: level}
	}
	if ok, level := SlowTriggerLevel(own, estimates, r.Kappa, r.Delta); ok {
		return Decision{Mode: Slow, Reason: ReasonSlowTrigger, Level: level}
	}
	if r.CGlobal > 0 && !math.IsNaN(maxEstimate) && maxEstimate-own >= r.CGlobal*r.Delta {
		return Decision{Mode: Fast, Reason: ReasonCatchUp}
	}
	return Decision{Mode: Slow, Reason: ReasonDefaultSlow}
}

// Stats aggregates decisions for a node or cluster.
type Stats struct {
	Decisions    uint64
	FastTrigger  uint64
	SlowTrigger  uint64
	CatchUp      uint64
	DefaultSlow  uint64
	ModeSwitches uint64
	MaxLevel     int // deepest trigger level observed
	lastMode     Mode
	started      bool
}

// Record tallies a decision.
func (s *Stats) Record(d Decision) {
	s.Decisions++
	switch d.Reason {
	case ReasonFastTrigger:
		s.FastTrigger++
	case ReasonSlowTrigger:
		s.SlowTrigger++
	case ReasonCatchUp:
		s.CatchUp++
	case ReasonDefaultSlow:
		s.DefaultSlow++
	}
	if d.Level > s.MaxLevel {
		s.MaxLevel = d.Level
	}
	if s.started && d.Mode != s.lastMode {
		s.ModeSwitches++
	}
	s.lastMode = d.Mode
	s.started = true
}

// GCSAxiomCheck verifies the Definition 4.9 axioms for a measured rate,
// given the derived constants ρ̄, µ̄ (Prop. 4.11): returns a non-nil error
// naming the violated axiom.
//
//	A1: 1 ≤ rate ≤ (1+ρ̄)(1+µ̄)
//	A2: SC ⇒ rate ≤ 1+ρ̄
//	A3: FC ⇒ rate ≥ 1+µ̄
//
// (A4, µ̄/ρ̄ > 1, is a pure parameter property checked in params.)
func GCSAxiomCheck(rate float64, satisfiesSC, satisfiesFC bool, rhoBar, muBar float64, slack float64) error {
	if rate < 1-slack || rate > (1+rhoBar)*(1+muBar)+slack {
		return fmt.Errorf("gcs: axiom A1 violated: rate %v outside [1, %v]", rate, (1+rhoBar)*(1+muBar))
	}
	if satisfiesSC && rate > 1+rhoBar+slack {
		return fmt.Errorf("gcs: axiom A2 violated: SC holds but rate %v > 1+ρ̄ = %v", rate, 1+rhoBar)
	}
	if satisfiesFC && rate < 1+muBar-slack {
		return fmt.Errorf("gcs: axiom A3 violated: FC holds but rate %v < 1+µ̄ = %v", rate, 1+muBar)
	}
	return nil
}
