package admission

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an injectable, manually-advanced clock shared by a
// bucket and its test.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestAlwaysAdmit(t *testing.T) {
	var p Policy = AlwaysAdmit{}
	for i := 0; i < 100; i++ {
		if d := p.Admit("anyone", 1); !d.OK {
			t.Fatal("AlwaysAdmit rejected")
		}
	}
}

// TestTokenBucketBurstThenRefill: a frozen clock admits exactly Burst
// requests, then rejects with a RetryAfter matching the deficit; after
// advancing the clock past it, admission resumes.
func TestTokenBucketBurstThenRefill(t *testing.T) {
	clock := newFakeClock()
	tb := NewTokenBucket(TokenBucketOptions{Rate: 2, Burst: 3, Now: clock.Now})

	for i := 0; i < 3; i++ {
		if d := tb.Admit("a", 1); !d.OK {
			t.Fatalf("admission %d rejected within burst", i)
		}
	}
	d := tb.Admit("a", 1)
	if d.OK {
		t.Fatal("fourth admission should exceed the burst")
	}
	if d.Scope != ScopeGlobal {
		t.Fatalf("scope = %q, want global", d.Scope)
	}
	// Deficit is 1 token at 2 tokens/s: 500ms.
	if d.RetryAfter != 500*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 500ms", d.RetryAfter)
	}

	clock.Advance(d.RetryAfter)
	if d := tb.Admit("a", 1); !d.OK {
		t.Fatalf("admission after the advertised wait still rejected: %+v", d)
	}
	// The bucket is empty again; a partial refill is not enough for the
	// next request.
	clock.Advance(100 * time.Millisecond)
	if d := tb.Admit("a", 1); d.OK {
		t.Fatal("admission with 0.2 tokens should be rejected")
	}
}

// TestTokenBucketPerClientFairShare is the fairness core: client A
// saturating its own share is rejected with scope "client" while client
// B — and the global budget — are untouched.
func TestTokenBucketPerClientFairShare(t *testing.T) {
	clock := newFakeClock()
	tb := NewTokenBucket(TokenBucketOptions{
		Rate: 100, Burst: 100,
		PerClientRate: 1, PerClientBurst: 2,
		Now: clock.Now,
	})

	for i := 0; i < 2; i++ {
		if d := tb.Admit("A", 1); !d.OK {
			t.Fatalf("A's admission %d rejected within its share", i)
		}
	}
	d := tb.Admit("A", 1)
	if d.OK || d.Scope != ScopeClient {
		t.Fatalf("A's third admission should reject with scope client: %+v", d)
	}
	if d.RetryAfter != time.Second {
		t.Fatalf("A's RetryAfter = %v, want 1s (deficit 1 token at 1/s)", d.RetryAfter)
	}

	// B is a different identity: full share available.
	for i := 0; i < 2; i++ {
		if d := tb.Admit("B", 1); !d.OK {
			t.Fatalf("B starved by A's saturation: %+v", d)
		}
	}

	// A's share refills independently of B's spending.
	clock.Advance(time.Second)
	if d := tb.Admit("A", 1); !d.OK {
		t.Fatalf("A not admitted after its share refilled: %+v", d)
	}
}

// TestTokenBucketBatchCost: a batch charges one token per item, and a
// batch larger than the burst drains the bucket instead of being
// unadmittable forever.
func TestTokenBucketBatchCost(t *testing.T) {
	clock := newFakeClock()
	tb := NewTokenBucket(TokenBucketOptions{Rate: 1, Burst: 4, Now: clock.Now})

	if d := tb.Admit("a", 3); !d.OK {
		t.Fatal("batch of 3 within burst rejected")
	}
	if d := tb.Admit("a", 2); d.OK {
		t.Fatal("batch of 2 with 1 token left should be rejected")
	}
	if d := tb.Admit("a", 1); !d.OK {
		t.Fatal("single with 1 token left rejected")
	}

	// Oversized batch: cost clamps to the burst, so a full bucket covers
	// it (and is fully drained).
	clock.Advance(10 * time.Second)
	if d := tb.Admit("a", 100); !d.OK {
		t.Fatal("oversized batch against a full bucket should drain it, not reject forever")
	}
	if d := tb.Admit("a", 1); d.OK {
		t.Fatal("bucket should be empty after the oversized batch")
	}
}

// TestTokenBucketRejectionChargesNothing: a request rejected by the
// global bucket must not have consumed the client's own tokens.
func TestTokenBucketRejectionChargesNothing(t *testing.T) {
	clock := newFakeClock()
	tb := NewTokenBucket(TokenBucketOptions{
		Rate: 1, Burst: 1,
		PerClientRate: 10, PerClientBurst: 10,
		Now: clock.Now,
	})

	if d := tb.Admit("other", 1); !d.OK {
		t.Fatal("first admission rejected")
	}
	// Global now empty. A's rejections must not drain A's bucket.
	for i := 0; i < 5; i++ {
		if d := tb.Admit("A", 1); d.OK || d.Scope != ScopeGlobal {
			t.Fatalf("expected global rejection: %+v", d)
		}
	}
	// One global token refills; A must still have its full share (the
	// admission takes 1 from each, which a drained client bucket could
	// not cover).
	clock.Advance(time.Second)
	if d := tb.Admit("A", 1); !d.OK {
		t.Fatalf("A's bucket was drained by rejected requests: %+v", d)
	}
}

// TestTokenBucketClientEviction: the tracked-client index stays bounded
// under client-ID churn, and dropping a fully-refilled bucket does not
// grant extra tokens (a full bucket is indistinguishable from a fresh
// one).
func TestTokenBucketClientEviction(t *testing.T) {
	clock := newFakeClock()
	tb := NewTokenBucket(TokenBucketOptions{
		Rate: 1e9, Burst: 1e9,
		PerClientRate: 1, PerClientBurst: 1,
		MaxClients: 8,
		Now:        clock.Now,
	})

	for i := 0; i < 100; i++ {
		tb.Admit(fmt.Sprintf("client-%d", i), 1)
	}
	if n := tb.Clients(); n > 8 {
		t.Fatalf("tracked clients = %d, want ≤ 8", n)
	}
	// A drained client evicted under churn gets a fresh (full) bucket —
	// it can over-admit by at most one burst, never accumulate more.
	if d := tb.Admit("client-0", 1); !d.OK {
		t.Fatalf("evicted client should restart with a full share: %+v", d)
	}
	if d := tb.Admit("client-0", 1); d.OK {
		t.Fatal("restarted client must still be capped at its burst")
	}
}

// TestTokenBucketConcurrentAccounting is the -race test of token
// accounting: with a frozen clock and burst B, exactly B of the
// concurrent admissions may succeed — no lost updates, no double
// spends — and per-client caps hold under the same contention.
func TestTokenBucketConcurrentAccounting(t *testing.T) {
	clock := newFakeClock()
	const (
		burst      = 64
		goroutines = 16
		perG       = 32
	)
	tb := NewTokenBucket(TokenBucketOptions{
		Rate: 1, Burst: burst,
		PerClientRate: 1, PerClientBurst: 8,
		Now: clock.Now,
	})

	var admitted, clientRej, globalRej atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := fmt.Sprintf("c%d", g)
			for i := 0; i < perG; i++ {
				switch d := tb.Admit(client, 1); {
				case d.OK:
					admitted.Add(1)
				case d.Scope == ScopeClient:
					clientRej.Add(1)
				default:
					globalRej.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()

	// Each of the 16 clients is capped at 8 tokens = 128 > burst, so the
	// global bucket is the binding limit: exactly 64 admissions.
	if got := admitted.Load(); got != burst {
		t.Fatalf("admitted %d, want exactly %d (frozen clock, burst %d)", got, burst, burst)
	}
	// Every client spends its 8 tokens before its 32 attempts run out,
	// so both rejection scopes must appear.
	if clientRej.Load()+globalRej.Load() != goroutines*perG-burst {
		t.Fatalf("rejections %d+%d do not cover the remainder",
			clientRej.Load(), globalRej.Load())
	}
}

// TestTokenBucketConcurrentPerClientCap: per-client accounting holds
// exactly under contention on a single client key.
func TestTokenBucketConcurrentPerClientCap(t *testing.T) {
	clock := newFakeClock()
	tb := NewTokenBucket(TokenBucketOptions{
		Rate: 1e6, Burst: 1e6,
		PerClientRate: 1, PerClientBurst: 16,
		Now: clock.Now,
	})

	var admitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				if tb.Admit("hot", 1).OK {
					admitted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != 16 {
		t.Fatalf("single client admitted %d, want exactly its burst 16", got)
	}
}

func TestNewTokenBucketValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Rate ≤ 0 must panic")
		}
	}()
	NewTokenBucket(TokenBucketOptions{Rate: 0})
}
