// Package admission is the experiment service's load-shedding front
// door: a policy consulted before any work reaches the jobs queue. The
// queue already rejects overload (503 when full), but by then the
// request has been decoded and its topology budgeted — and a full queue
// punishes every client equally, so one client flooding submissions can
// starve everyone else. An admission policy rejects earlier, cheaper,
// and *attributably*: every rejection names which budget was exhausted
// (the service-wide rate or the caller's own fair share) and carries a
// machine-readable RetryAfter hint, so a well-behaved client backs off
// for exactly as long as the deficit demands instead of hammering.
//
// Two policies ship:
//
//   - AlwaysAdmit — the no-op default; overload handling falls back to
//     queue backpressure alone.
//   - TokenBucket — a service-wide token bucket plus optional per-client
//     buckets keyed by caller identity. The per-client bucket caps any
//     single client's sustained rate below the service-wide one, which
//     is what makes the sharing *fair*: a client saturating its own
//     share runs out of its own tokens and is rejected with scope
//     ScopeClient while everyone else still draws from the global pool.
//
// The clock is injectable, so token accounting is testable without
// sleeping; all methods are safe for concurrent use.
package admission

import (
	"sync"
	"time"
)

// Scope names the budget that rejected a request.
type Scope string

const (
	// ScopeGlobal: the service-wide rate was exhausted — the service as a
	// whole is saturated; everyone should slow down.
	ScopeGlobal Scope = "global"
	// ScopeClient: the caller's own fair share was exhausted — this
	// client should slow down; others are unaffected.
	ScopeClient Scope = "client"
)

// Decision is a policy's verdict on one request.
type Decision struct {
	// OK is true when the request may proceed.
	OK bool
	// RetryAfter, on rejection, is how long the caller must wait before
	// the limiting bucket can cover the same request again. Servers
	// surface it as the Retry-After header (rounded up to whole seconds).
	RetryAfter time.Duration
	// Scope, on rejection, names the exhausted budget.
	Scope Scope
}

// Policy decides whether a client's request enters the service. Cost is
// the request's weight in tokens — 1 for a single submission, the item
// count for a batch — so one batch cannot launder a burst past the
// accounting.
type Policy interface {
	Admit(client string, cost int) Decision
}

// AlwaysAdmit admits everything: the default when no admission rate is
// configured.
type AlwaysAdmit struct{}

// Admit implements Policy.
func (AlwaysAdmit) Admit(string, int) Decision { return Decision{OK: true} }

// TokenBucketOptions configures a TokenBucket.
type TokenBucketOptions struct {
	// Rate is the service-wide sustained admission rate in requests per
	// second. Must be > 0.
	Rate float64
	// Burst is the service-wide bucket capacity (how far the service may
	// briefly exceed Rate). ≤ 0 defaults to max(Rate, 1).
	Burst float64
	// PerClientRate caps any single client's sustained rate; ≤ 0 disables
	// per-client accounting (the global bucket is the only limit).
	PerClientRate float64
	// PerClientBurst is each client's bucket capacity; ≤ 0 defaults to
	// max(PerClientRate, 1).
	PerClientBurst float64
	// MaxClients bounds the tracked-client index (≤ 0: 4096). When the
	// index is full, clients whose buckets have fully refilled — which
	// are indistinguishable from clients never seen — are dropped first,
	// then the longest-idle; accounting degrades gracefully, it never
	// grows without bound under client-ID churn.
	MaxClients int
	// Now overrides the clock in tests; nil means time.Now.
	Now func() time.Time
}

// TokenBucket is a Policy built from a service-wide token bucket plus
// optional per-client buckets. Admission takes cost tokens from the
// caller's bucket and the global bucket atomically: a request is either
// fully admitted or charged nothing, so rejected requests never leak
// tokens.
type TokenBucket struct {
	rate, burst       float64
	perRate, perBurst float64
	maxClients        int
	now               func() time.Time

	mu      sync.Mutex
	global  bucket
	clients map[string]*clientBucket
}

// bucket is one token bucket; refills lazily from elapsed time.
type bucket struct {
	tokens float64
	last   time.Time
}

func (b *bucket) refill(now time.Time, rate, burst float64) {
	if now.After(b.last) {
		b.tokens = min(burst, b.tokens+rate*now.Sub(b.last).Seconds())
		b.last = now
	}
}

type clientBucket struct {
	bucket
	lastSeen time.Time
}

// NewTokenBucket builds the policy. It panics on a non-positive Rate —
// a zero-rate bucket admits nothing forever, which is a configuration
// error, not a policy.
func NewTokenBucket(o TokenBucketOptions) *TokenBucket {
	if o.Rate <= 0 {
		panic("admission: token bucket needs Rate > 0")
	}
	if o.Burst <= 0 {
		o.Burst = max(o.Rate, 1)
	}
	if o.PerClientRate > 0 && o.PerClientBurst <= 0 {
		o.PerClientBurst = max(o.PerClientRate, 1)
	}
	if o.MaxClients <= 0 {
		o.MaxClients = 4096
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	t := &TokenBucket{
		rate:       o.Rate,
		burst:      o.Burst,
		perRate:    o.PerClientRate,
		perBurst:   o.PerClientBurst,
		maxClients: o.MaxClients,
		now:        o.Now,
	}
	t.global = bucket{tokens: t.burst, last: t.now()}
	if t.perRate > 0 {
		t.clients = make(map[string]*clientBucket)
	}
	return t
}

// Admit implements Policy. The effective charge is min(cost, burst):
// a batch larger than the burst drains the bucket to empty rather than
// being unadmittable forever (the bucket cannot go negative, so the
// overage is bounded by one batch).
func (t *TokenBucket) Admit(client string, cost int) Decision {
	if cost < 1 {
		cost = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.global.refill(now, t.rate, t.burst)

	var cb *clientBucket
	if t.perRate > 0 {
		cb = t.clientLocked(client, now)
		cb.refill(now, t.perRate, t.perBurst)
		need := min(float64(cost), t.perBurst)
		if cb.tokens < need {
			return Decision{
				RetryAfter: deficitWait(need-cb.tokens, t.perRate),
				Scope:      ScopeClient,
			}
		}
	}
	need := min(float64(cost), t.burst)
	if t.global.tokens < need {
		return Decision{
			RetryAfter: deficitWait(need-t.global.tokens, t.rate),
			Scope:      ScopeGlobal,
		}
	}
	// Both budgets cover the request: charge them together.
	t.global.tokens -= need
	if cb != nil {
		cb.tokens -= min(float64(cost), t.perBurst)
	}
	return Decision{OK: true}
}

// clientLocked returns (creating if needed) the caller's bucket,
// evicting to stay under maxClients; callers hold t.mu.
func (t *TokenBucket) clientLocked(client string, now time.Time) *clientBucket {
	if cb, ok := t.clients[client]; ok {
		cb.lastSeen = now
		return cb
	}
	if len(t.clients) >= t.maxClients {
		t.evictLocked(now)
	}
	// New clients start with a full bucket: identity that has never (or
	// not recently) submitted has its whole share available.
	cb := &clientBucket{bucket: bucket{tokens: t.perBurst, last: now}, lastSeen: now}
	t.clients[client] = cb
	return cb
}

// evictLocked drops fully-refilled buckets (semantically identical to
// never-seen clients), then the longest-idle one if still at capacity.
func (t *TokenBucket) evictLocked(now time.Time) {
	var oldestKey string
	var oldest time.Time
	for k, cb := range t.clients {
		cb.refill(now, t.perRate, t.perBurst)
		if cb.tokens >= t.perBurst {
			delete(t.clients, k)
			continue
		}
		if oldestKey == "" || cb.lastSeen.Before(oldest) {
			oldestKey, oldest = k, cb.lastSeen
		}
	}
	if len(t.clients) >= t.maxClients && oldestKey != "" {
		delete(t.clients, oldestKey)
	}
}

// Clients returns how many client buckets are currently tracked.
func (t *TokenBucket) Clients() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.clients)
}

// deficitWait converts a token deficit at a refill rate into a wait,
// with a 1ms floor so a rejection never advertises an instant retry.
func deficitWait(deficit, rate float64) time.Duration {
	d := time.Duration(deficit / rate * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}
