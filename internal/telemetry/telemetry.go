// Package telemetry is a small, dependency-free metrics layer for the
// experiment service: atomic counters, gauges and fixed-bucket
// histograms collected in a Registry that writes the Prometheus text
// exposition format, plus per-job lifecycle traces (trace.go).
//
// Design constraints, in order:
//
//   - zero dependencies — the module stays stdlib-only;
//   - cheap at event time — counters and gauges are single atomic ops,
//     a histogram observation is a binary search plus two atomics, and
//     none of them allocate, so instrumenting the job pipeline cannot
//     perturb it;
//   - the registry is the single source of truth: the JSON endpoints
//     (/v1/stats, /v1/healthz) derive their numbers from the same
//     instruments /metrics scrapes, so the two views cannot drift.
//
// Instruments are registered once (by name, panicking on duplicates —
// the same contract as ftgcs.Registry) and then updated lock-free.
// Scrapes flatten every instrument into sorted, label-stable sample
// lines, so the exposition output for a given set of observations is
// byte-stable — testable with a golden string.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DurationBuckets is the default histogram bucketing for wall-clock
// durations in seconds: 1ms to 1 minute, roughly logarithmic. Queue
// waits, run durations and HTTP latencies all share it so dashboards
// can overlay them.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// sample is one exposition line: name suffix, ordered labels, value.
type sample struct {
	suffix string
	labels []Label
	value  float64
}

// Label is one name="value" pair on a sample.
type Label struct{ Name, Value string }

// metric is anything the registry can scrape.
type metric interface {
	// samples flattens the instrument's current state. Implementations
	// must return label sets in a deterministic order.
	samples() []sample
}

// registered pairs an instrument with its metadata.
type registered struct {
	name, help, typ string
	m               metric
}

// Registry holds named instruments and writes them out. Registration
// takes a lock; instrument updates after registration are lock-free on
// the instruments themselves.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]struct{}
	metrics []registered
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]struct{})}
}

// register validates and records an instrument, panicking on an invalid
// or duplicate name — misregistration is a programming error, caught at
// startup, exactly like a duplicate ftgcs.Registry entry.
func (r *Registry) register(name, help, typ string, m metric) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.byName[name] = struct{}{}
	r.metrics = append(r.metrics, registered{name: name, help: help, typ: typ, m: m})
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	// Same shape as metric names minus the colon (reserved for rules).
	return validName(s) && !strings.Contains(s, ":")
}

// --- Counter ---

// Counter is a monotonically increasing integer counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) samples() []sample {
	return []sample{{value: float64(c.v.Load())}}
}

// Counter registers and returns a new counter. The exposition name
// should end in _total by Prometheus convention.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", c)
	return c
}

// --- Gauge ---

// Gauge is an integer gauge (a value that can go up and down).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) samples() []sample {
	return []sample{{value: float64(g.v.Load())}}
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", g)
	return g
}

// funcMetric samples a callback at scrape time — the bridge for state
// that already lives elsewhere (queue depths, store stats) and would be
// double bookkeeping as a live instrument.
type funcMetric struct{ f func() float64 }

func (fm funcMetric) samples() []sample { return []sample{{value: fm.f()}} }

// GaugeFunc registers a gauge whose value is read from f at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(name, help, "gauge", funcMetric{f})
}

// CounterFunc registers a counter whose cumulative value is read from f
// at scrape time; f must be monotone for the TYPE to be honest.
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	r.register(name, help, "counter", funcMetric{f})
}

// --- Histogram ---

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds (inclusive, le), strictly increasing; an implicit +Inf bucket
// catches the rest. Observe is lock- and allocation-free.
type Histogram struct {
	uppers  []float64
	counts  []atomic.Uint64 // len(uppers)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram buckets not strictly increasing at %v", buckets[i]))
		}
	}
	uppers := append([]float64(nil), buckets...)
	return &Histogram{uppers: uppers, counts: make([]atomic.Uint64, len(uppers)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bucket whose upper bound holds v.
	lo, hi := 0, len(h.uppers)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.uppers[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// histogramSamples flattens one histogram under the given base labels:
// cumulative _bucket lines (le last, by convention), then _sum and
// _count.
func histogramSamples(h *Histogram, base []Label) []sample {
	out := make([]sample, 0, len(h.uppers)+3)
	var cum uint64
	for i, ub := range h.uppers {
		cum += h.counts[i].Load()
		out = append(out, sample{
			suffix: "_bucket",
			labels: append(append([]Label(nil), base...), Label{"le", formatFloat(ub)}),
			value:  float64(cum),
		})
	}
	cum += h.counts[len(h.uppers)].Load()
	out = append(out, sample{
		suffix: "_bucket",
		labels: append(append([]Label(nil), base...), Label{"le", "+Inf"}),
		value:  float64(cum),
	})
	out = append(out,
		sample{suffix: "_sum", labels: base, value: h.Sum()},
		sample{suffix: "_count", labels: base, value: float64(h.count.Load())},
	)
	return out
}

func (h *Histogram) samples() []sample { return histogramSamples(h, nil) }

// Histogram registers and returns a new histogram with the given bucket
// upper bounds (nil: DurationBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DurationBuckets
	}
	h := newHistogram(buckets)
	r.register(name, help, "histogram", h)
	return h
}

// --- Vectors (labeled children) ---

// vec is the shared child index for labeled instruments.
type vec[T any] struct {
	labelNames []string
	mu         sync.Mutex
	children   map[string]*child[T]
	mk         func() *T
}

type child[T any] struct {
	values []string
	inst   *T
}

func newVec[T any](labelNames []string, mk func() *T) *vec[T] {
	if len(labelNames) == 0 {
		panic("telemetry: vector instruments need at least one label")
	}
	for _, n := range labelNames {
		if !validLabelName(n) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", n))
		}
	}
	return &vec[T]{
		labelNames: append([]string(nil), labelNames...),
		children:   make(map[string]*child[T]),
		mk:         mk,
	}
}

// with returns the child for the given label values, creating it on
// first use.
func (v *vec[T]) with(values ...string) *T {
	if len(values) != len(v.labelNames) {
		panic(fmt.Sprintf("telemetry: got %d label values, want %d (%v)", len(values), len(v.labelNames), v.labelNames))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c.inst
	}
	c := &child[T]{values: append([]string(nil), values...), inst: v.mk()}
	v.children[key] = c
	return c.inst
}

// sorted returns the children ordered by label values, for byte-stable
// exposition.
func (v *vec[T]) sorted() []*child[T] {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*child[T], 0, len(v.children))
	for _, c := range v.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].values, out[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

func (v *vec[T]) baseLabels(c *child[T]) []Label {
	ls := make([]Label, len(v.labelNames))
	for i, n := range v.labelNames {
		ls[i] = Label{n, c.values[i]}
	}
	return ls
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ v *vec[Counter] }

// With returns the counter for the given label values (one per label
// name, in registration order), creating it on first use.
func (cv *CounterVec) With(values ...string) *Counter { return cv.v.with(values...) }

func (cv *CounterVec) samples() []sample {
	var out []sample
	for _, c := range cv.v.sorted() {
		out = append(out, sample{labels: cv.v.baseLabels(c), value: float64(c.inst.Value())})
	}
	return out
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	cv := &CounterVec{v: newVec(labelNames, func() *Counter { return &Counter{} })}
	r.register(name, help, "counter", cv)
	return cv
}

// HistogramVec is a histogram family keyed by label values; every child
// shares one bucket layout.
type HistogramVec struct{ v *vec[Histogram] }

// With returns the histogram for the given label values, creating it on
// first use.
func (hv *HistogramVec) With(values ...string) *Histogram { return hv.v.with(values...) }

func (hv *HistogramVec) samples() []sample {
	var out []sample
	for _, c := range hv.v.sorted() {
		out = append(out, histogramSamples(c.inst, hv.v.baseLabels(c))...)
	}
	return out
}

// HistogramVec registers a labeled histogram family with the given
// bucket upper bounds (nil: DurationBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DurationBuckets
	}
	hv := &HistogramVec{v: newVec(labelNames, func() *Histogram { return newHistogram(buckets) })}
	r.register(name, help, "histogram", hv)
	return hv
}

// --- Exposition ---

// WritePrometheus writes every registered instrument in the Prometheus
// text exposition format (version 0.0.4), families sorted by metric
// name, children sorted by label values. Output for a fixed set of
// observations is byte-stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]registered(nil), r.metrics...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		for _, s := range f.m.samples() {
			b.WriteString(f.name)
			b.WriteString(s.suffix)
			if len(s.labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.labels {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(l.Name)
					b.WriteString(`="`)
					b.WriteString(escapeLabel(l.Value))
					b.WriteByte('"')
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.value))
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
