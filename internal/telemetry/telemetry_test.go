package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusExpositionGolden pins the exposition output byte for
// byte: stable metric names, HELP/TYPE lines, family ordering by name,
// label ordering, histogram bucket lines with le last, _sum/_count.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests handled.")
	c.Add(3)
	g := r.Gauge("test_queue_depth", "Jobs waiting.")
	g.Set(2)
	r.GaugeFunc("test_workers_busy", "Busy workers.", func() float64 { return 1 })
	cv := r.CounterVec("test_cache_hits_total", "Cache hits by tier.", "tier")
	cv.With("memory").Add(5)
	cv.With("disk").Inc()
	h := r.Histogram("test_wait_seconds", "Queue wait.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(100)
	hv := r.HistogramVec("test_http_seconds", "HTTP latency.", []float64{0.5}, "route", "status")
	hv.With("/v1/x", "2xx").Observe(0.25)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_cache_hits_total Cache hits by tier.
# TYPE test_cache_hits_total counter
test_cache_hits_total{tier="disk"} 1
test_cache_hits_total{tier="memory"} 5
# HELP test_http_seconds HTTP latency.
# TYPE test_http_seconds histogram
test_http_seconds_bucket{route="/v1/x",status="2xx",le="0.5"} 1
test_http_seconds_bucket{route="/v1/x",status="2xx",le="+Inf"} 1
test_http_seconds_sum{route="/v1/x",status="2xx"} 0.25
test_http_seconds_count{route="/v1/x",status="2xx"} 1
# HELP test_queue_depth Jobs waiting.
# TYPE test_queue_depth gauge
test_queue_depth 2
# HELP test_requests_total Requests handled.
# TYPE test_requests_total counter
test_requests_total 3
# HELP test_wait_seconds Queue wait.
# TYPE test_wait_seconds histogram
test_wait_seconds_bucket{le="0.1"} 1
test_wait_seconds_bucket{le="1"} 3
test_wait_seconds_bucket{le="10"} 3
test_wait_seconds_bucket{le="+Inf"} 4
test_wait_seconds_sum 101.05
test_wait_seconds_count 4
# HELP test_workers_busy Busy workers.
# TYPE test_workers_busy gauge
test_workers_busy 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistogramCumulativity asserts the bucket invariant directly: each
// _bucket line is a running total, +Inf equals _count, and boundary
// values land in the bucket whose upper bound they equal (le is
// inclusive).
func TestHistogramCumulativity(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 5, 7} {
		h.Observe(v)
	}
	ss := h.samples()
	// 4 buckets (3 + Inf), then _sum, _count.
	if len(ss) != 6 {
		t.Fatalf("got %d samples, want 6", len(ss))
	}
	wantCum := []float64{2, 4, 5, 7} // ≤1: {0.5,1}; ≤2: +{1.5,2}; ≤4: +{3}; +Inf: +{5,7}
	prev := -1.0
	for i, want := range wantCum {
		if ss[i].value != want {
			t.Errorf("bucket %d cumulative count = %v, want %v", i, ss[i].value, want)
		}
		if ss[i].value < prev {
			t.Errorf("bucket %d count %v regressed below %v", i, ss[i].value, prev)
		}
		prev = ss[i].value
	}
	if count := ss[5].value; count != wantCum[len(wantCum)-1] {
		t.Errorf("_count %v != +Inf bucket %v", count, wantCum[len(wantCum)-1])
	}
	if sum := ss[4].value; sum != 0.5+1+1.5+2+3+5+7 {
		t.Errorf("_sum = %v", sum)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines and checks nothing is lost (the CAS sum loop and atomic
// bucket counts must not drop observations).
func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram([]float64{0.5})
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Errorf("count = %d, want %d", h.Count(), goroutines*per)
	}
	if h.Sum() != goroutines*per {
		t.Errorf("sum = %v, want %v", h.Sum(), goroutines*per)
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("a_total", "x")
	mustPanic("duplicate", func() { r.Counter("a_total", "x") })
	mustPanic("bad name", func() { r.Counter("0bad", "x") })
	mustPanic("bad name chars", func() { r.Counter("a-b", "x") })
	mustPanic("bad buckets", func() { r.Histogram("h", "x", []float64{1, 1}) })
	mustPanic("no labels", func() { r.CounterVec("v_total", "x") })
	cv := r.CounterVec("w_total", "x", "tier")
	mustPanic("label arity", func() { cv.With("a", "b") })
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:                "0",
		1:                "1",
		0.25:             "0.25",
		math.Inf(1):      "+Inf",
		math.Inf(-1):     "-Inf",
		1.5e-9:           "1.5e-09",
		123456789.123456: "1.23456789123456e+08",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("esc_total", `line1
line2 \ "quoted"`, "name")
	cv.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP esc_total line1\\nline2 \\\\ \"quoted\"\n" +
		"# TYPE esc_total counter\n" +
		`esc_total{name="a\"b\\c\nd"} 1` + "\n"
	if got := b.String(); got != want {
		t.Errorf("escaping mismatch:\ngot  %q\nwant %q", got, want)
	}
}
