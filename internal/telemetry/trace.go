package telemetry

import (
	"sync"
	"time"
)

// Trace is an ordered record of one job's lifecycle: a chain of named
// phases (submitted → queued → building → running[replicate i/n] →
// aggregating → …), each spanning the wall-clock interval from its
// start to the start of the next, plus independent overlapping spans
// (a write-behind disk store runs concurrently with the terminal
// marker) and zero-duration markers for terminal states.
//
// Writers are the job pipeline's own goroutines; readers snapshot
// concurrently. All methods are safe for concurrent use.
type Trace struct {
	mu    sync.Mutex
	spans []traceSpan
	// chain is the index of the currently open chained phase, -1 when
	// none is open.
	chain int
	// now stamps spans; tests override it for deterministic durations.
	now func() time.Time
}

type traceSpan struct {
	name  string
	start time.Time
	end   time.Time
	open  bool
}

// Span is one snapshot entry: the phase name, when it started, and how
// long it lasted. Open spans (still in progress at snapshot time)
// report the elapsed duration so far.
type Span struct {
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	Duration float64   `json:"durationSeconds"`
	Open     bool      `json:"open,omitempty"`
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{chain: -1, now: time.Now}
}

// Phase closes the currently open chained phase (if any) and opens a
// new one: the standard lifecycle transition.
func (t *Trace) Phase(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.closeChainLocked(now)
	t.chain = len(t.spans)
	t.spans = append(t.spans, traceSpan{name: name, start: now, open: true})
}

// Mark appends a closed zero-duration marker without touching the open
// phase — terminal states (done/failed/canceled) are instants, not
// intervals.
func (t *Trace) Mark(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.spans = append(t.spans, traceSpan{name: name, start: now, end: now})
}

// Finish closes the open chained phase and appends the terminal marker.
func (t *Trace) Finish(terminal string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.closeChainLocked(now)
	t.spans = append(t.spans, traceSpan{name: terminal, start: now, end: now})
}

// StartSpan opens an independent span that overlaps whatever else the
// trace records, and returns the function that closes it. Used for
// work that escapes the phase chain, like the asynchronous disk-store
// write that completes after the job is already terminal.
func (t *Trace) StartSpan(name string) (end func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := len(t.spans)
	t.spans = append(t.spans, traceSpan{name: name, start: t.now(), open: true})
	var once sync.Once
	return func() {
		once.Do(func() {
			t.mu.Lock()
			defer t.mu.Unlock()
			t.spans[idx].end = t.now()
			t.spans[idx].open = false
		})
	}
}

func (t *Trace) closeChainLocked(now time.Time) {
	if t.chain >= 0 {
		t.spans[t.chain].end = now
		t.spans[t.chain].open = false
		t.chain = -1
	}
}

// Snapshot returns the spans in start order. Still-open spans report
// their elapsed duration and Open=true.
func (t *Trace) Snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	out := make([]Span, len(t.spans))
	for i, s := range t.spans {
		end := s.end
		if s.open {
			end = now
		}
		out[i] = Span{
			Name:     s.name,
			Start:    s.start,
			Duration: end.Sub(s.start).Seconds(),
			Open:     s.open,
		}
	}
	return out
}
