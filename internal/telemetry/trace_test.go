package telemetry

import (
	"sync"
	"testing"
	"time"
)

// fakeClock steps a Trace's clock deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newFakeTrace() (*Trace, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tr := NewTrace()
	tr.now = clk.now
	return tr, clk
}

// TestTraceLifecycle walks the full job phase chain and checks order,
// durations, and that the terminal marker plus the overlapping storing
// span come out right.
func TestTraceLifecycle(t *testing.T) {
	tr, clk := newFakeTrace()
	tr.Phase("submitted")
	clk.advance(10 * time.Millisecond)
	tr.Phase("queued")
	clk.advance(20 * time.Millisecond)
	tr.Phase("building")
	clk.advance(5 * time.Millisecond)
	tr.Phase("running[replicate 1/2]")
	clk.advance(100 * time.Millisecond)
	tr.Phase("running[replicate 2/2]")
	clk.advance(200 * time.Millisecond)
	tr.Phase("aggregating")
	clk.advance(1 * time.Millisecond)
	endStore := tr.StartSpan("storing")
	tr.Finish("done")
	clk.advance(7 * time.Millisecond)
	endStore()

	spans := tr.Snapshot()
	wantNames := []string{
		"submitted", "queued", "building",
		"running[replicate 1/2]", "running[replicate 2/2]",
		"aggregating", "storing", "done",
	}
	if len(spans) != len(wantNames) {
		t.Fatalf("got %d spans, want %d: %+v", len(spans), len(wantNames), spans)
	}
	wantDur := []float64{0.010, 0.020, 0.005, 0.100, 0.200, 0.001, 0.007, 0}
	for i, s := range spans {
		if s.Name != wantNames[i] {
			t.Errorf("span %d name %q, want %q", i, s.Name, wantNames[i])
		}
		if s.Open {
			t.Errorf("span %d (%s) still open", i, s.Name)
		}
		if diff := s.Duration - wantDur[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("span %d (%s) duration %v, want %v", i, s.Name, s.Duration, wantDur[i])
		}
	}
	// Start order is monotone.
	for i := 1; i < len(spans); i++ {
		if spans[i].Start.Before(spans[i-1].Start) {
			t.Errorf("span %d starts before span %d", i, i-1)
		}
	}
}

// TestTraceOpenSpanSnapshot: snapshotting mid-phase reports the open
// span with its elapsed-so-far duration.
func TestTraceOpenSpanSnapshot(t *testing.T) {
	tr, clk := newFakeTrace()
	tr.Phase("running")
	clk.advance(50 * time.Millisecond)
	spans := tr.Snapshot()
	if len(spans) != 1 || !spans[0].Open {
		t.Fatalf("want one open span, got %+v", spans)
	}
	if spans[0].Duration != 0.05 {
		t.Errorf("open span duration %v, want 0.05", spans[0].Duration)
	}
	// A later snapshot of the still-open span shows more elapsed time.
	clk.advance(50 * time.Millisecond)
	if d := tr.Snapshot()[0].Duration; d != 0.1 {
		t.Errorf("open span duration %v, want 0.1", d)
	}
}

// TestTraceStartSpanIdempotentEnd: the closer returned by StartSpan is
// safe to call twice (the storer retries shouldn't corrupt the span).
func TestTraceStartSpanIdempotentEnd(t *testing.T) {
	tr, clk := newFakeTrace()
	end := tr.StartSpan("storing")
	clk.advance(time.Millisecond)
	end()
	clk.advance(time.Hour)
	end()
	if d := tr.Snapshot()[0].Duration; d != 0.001 {
		t.Errorf("duration %v, want 0.001 (second end call must be a no-op)", d)
	}
}

// TestTraceConcurrent hammers a trace from several goroutines under the
// race detector: phases, markers, independent spans and snapshots must
// serialize cleanly.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Phase("p")
				end := tr.StartSpan("s")
				tr.Snapshot()
				end()
				tr.Mark("m")
			}
		}()
	}
	wg.Wait()
	spans := tr.Snapshot()
	if len(spans) != 4*100*3 {
		t.Fatalf("got %d spans, want %d", len(spans), 4*100*3)
	}
}
