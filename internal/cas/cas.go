// Package cas is an on-disk content-addressed object store: the durable
// layer under the experiment service's in-memory result cache. Keys are
// the job manager's content hashes ("sha256:" + 64 hex digits — the
// identity of the work), values are the canonical result bytes. Because
// the simulator is deterministic, an object written by any process for a
// given key is byte-identical to what any other process would compute, so
// a store directory can be shared: re-opened across restarts, or mounted
// by a fleet of workers (the substrate the distributed sweep fabric
// needs).
//
// Layout and durability:
//
//	<dir>/objects/ab/cdef….obj
//
// where ab are the first two hex digits of the key's hash (256-way
// sharding keeps directories small) and the rest name the file. Each
// object is a small checksummed envelope (magic, version, payload length,
// payload SHA-256, payload): a torn or truncated write — or any on-disk
// corruption — fails the checksum and reads as a MISS, never as bad data
// and never as an error that could wedge the service. Writes go through a
// temp file in the same directory, are fsync'd, and land with an atomic
// rename; the directory is fsync'd after both writes and deletes.
//
// Eviction: Open rebuilds an index by scanning the tree (crash-safe — the
// directory IS the state), and a size/age GC policy evicts
// least-recently-used objects first. Access recency survives restarts by
// riding the file mtime, which Get refreshes.
package cas

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Envelope framing.
var magic = [8]byte{'F', 'T', 'G', 'C', 'S', 'C', 'A', '1'}

const (
	headerSize = 8 + 8 + sha256.Size // magic + big-endian length + payload digest
	objExt     = ".obj"
	tmpPrefix  = "tmp-"
)

// MaxObjectBytes bounds a single object's payload (a defensive cap: a
// result payload is KBs; nothing legitimate approaches this).
const MaxObjectBytes = 1 << 30

// Options configures a Store.
type Options struct {
	// MaxBytes bounds the total payload bytes kept on disk; exceeding it
	// evicts least-recently-accessed objects until back under. ≤ 0 means
	// unbounded.
	MaxBytes int64
	// MaxAge evicts objects not accessed for longer than this. ≤ 0 means
	// no age limit.
	MaxAge time.Duration
	// FS overrides the filesystem the store operates on; nil means the
	// real one. Tests inject a FaultFS here (or via WithFS) to exercise
	// the degradation ladder.
	FS FS
	// now overrides the clock in tests.
	now func() time.Time
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	Objects int   `json:"objects"`
	Bytes   int64 `json:"bytes"`
	// Cumulative counters since Open.
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Puts    uint64 `json:"puts"`
	Evicted uint64 `json:"evicted"`
	// Corrupt counts objects that failed the checksum on read or scan and
	// were removed (each read as a miss, not an error).
	Corrupt uint64 `json:"corrupt"`
	// BytesRead/BytesWritten total the payload bytes served by Get hits
	// and persisted by successful Puts — the store's IO volume, distinct
	// from Bytes (what is resident now).
	BytesRead    uint64 `json:"bytesRead"`
	BytesWritten uint64 `json:"bytesWritten"`
}

// Store is an on-disk content-addressed object store. All methods are
// safe for concurrent use within one process. Multiple processes may
// share a directory: writes are atomic renames, so readers never observe
// partial objects (concurrent GC across processes is best-effort — an
// eviction under a racing reader reads as a miss).
type Store struct {
	dir      string
	maxBytes int64
	maxAge   time.Duration
	now      func() time.Time

	mu    sync.Mutex
	fs    FS         // the filesystem seam; swap with WithFS to inject faults
	ll    *list.List // front = most recently accessed
	index map[string]*list.Element
	bytes int64
	stats Stats
}

type entry struct {
	key   string
	size  int64 // payload bytes
	atime time.Time
}

// Open opens (creating if needed) the store rooted at dir and rebuilds
// the index by scanning the object tree. Unreadable or corrupt objects
// and leftover temp files are removed during the scan.
func Open(dir string, o Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cas: empty store directory")
	}
	if o.now == nil {
		o.now = time.Now
	}
	if o.FS == nil {
		o.FS = osFS{}
	}
	if err := o.FS.MkdirAll(filepath.Join(dir, "objects"), 0o777); err != nil {
		return nil, fmt.Errorf("cas: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: o.MaxBytes,
		maxAge:   o.MaxAge,
		now:      o.now,
		fs:       o.FS,
		ll:       list.New(),
		index:    make(map[string]*list.Element),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gcLocked()
	return s, nil
}

// scan rebuilds the index from disk: every valid object becomes an entry
// whose recency is its file mtime; temp files (a crash mid-write) and
// envelopes that fail validation are deleted.
func (s *Store) scan() error {
	root := filepath.Join(s.dir, "objects")
	var entries []entry
	err := s.fs.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if strings.HasPrefix(name, tmpPrefix) || !strings.HasSuffix(name, objExt) {
			s.fs.Remove(path)
			return nil
		}
		key, ok := keyFromPath(root, path)
		if !ok {
			s.fs.Remove(path)
			return nil
		}
		payload, err := readObject(s.fs, path)
		if err != nil {
			// Truncated or corrupt: drop it now so the index only ever
			// holds objects that will actually read back.
			s.stats.Corrupt++
			s.fs.Remove(path)
			return nil
		}
		info, err := d.Info()
		at := s.now()
		if err == nil {
			at = info.ModTime()
		}
		entries = append(entries, entry{key: key, size: int64(len(payload)), atime: at})
		return nil
	})
	if err != nil {
		return fmt.Errorf("cas: scan: %w", err)
	}
	// Oldest first so PushFront leaves the most recently used at the front.
	sort.Slice(entries, func(i, j int) bool { return entries[i].atime.Before(entries[j].atime) })
	for i := range entries {
		e := entries[i]
		s.index[e.key] = s.ll.PushFront(&e)
		s.bytes += e.size
	}
	return nil
}

// Get returns the payload stored under key. A missing, truncated or
// corrupt object is a miss (ok=false), never an error: the caller's
// contract is "recompute on miss", and a store that has lost an object —
// however it lost it — is simply a store that does not have it. Corrupt
// objects are removed on detection. A hit refreshes the object's recency
// (in the index and on the file mtime, so recency survives restarts).
func (s *Store) Get(key string) (payload []byte, ok bool) {
	path, err := s.path(key)
	if err != nil {
		return nil, false
	}
	payload, rerr := readObject(s.fsys(), path)

	s.mu.Lock()
	defer s.mu.Unlock()
	if rerr != nil {
		if !os.IsNotExist(rerr) {
			// The file exists but fails validation: corruption. Remove it
			// so the slot is honest about being empty.
			s.stats.Corrupt++
			s.fs.Remove(path)
		}
		s.removeIndexLocked(key)
		s.stats.Misses++
		return nil, false
	}
	now := s.now()
	if e, exists := s.index[key]; exists {
		e.Value.(*entry).atime = now
		e.Value.(*entry).size = int64(len(payload))
		s.ll.MoveToFront(e)
	} else {
		// Another process wrote it after our scan; adopt it.
		s.index[key] = s.ll.PushFront(&entry{key: key, size: int64(len(payload)), atime: now})
		s.bytes += int64(len(payload))
	}
	s.stats.Hits++
	s.stats.BytesRead += uint64(len(payload))
	s.fs.Chtimes(path, now, now) // best-effort: recency durability
	return payload, true
}

// fsys snapshots the filesystem seam for use outside s.mu (Get and Put
// do their IO unlocked so reads and writes overlap).
func (s *Store) fsys() FS {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fs
}

// WithFS swaps the store's filesystem and returns the store: the
// fault-injection hook. Production code never calls it — the default
// (or Options.FS) is set at Open; tests arm a FaultFS here to break and
// heal the disk under a live store.
func (s *Store) WithFS(fsys FS) *Store {
	if fsys == nil {
		fsys = osFS{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fs = fsys
	return s
}

// Put stores payload under key, atomically: the bytes are written to a
// temp file in the object's own shard directory, fsync'd, and renamed
// into place (then the directory is fsync'd). A crash at any point leaves
// either the old state or the new object, never a torn one. Re-putting an
// existing key refreshes it (last write wins; contents are expected to be
// identical — the key IS the content's identity).
func (s *Store) Put(key string, payload []byte) error {
	if int64(len(payload)) > MaxObjectBytes {
		return fmt.Errorf("cas: object %s: %d bytes exceeds limit %d", key, len(payload), MaxObjectBytes)
	}
	path, err := s.path(key)
	if err != nil {
		return err
	}
	fsys := s.fsys()
	shard := filepath.Dir(path)
	if err := fsys.MkdirAll(shard, 0o777); err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	tmp, err := fsys.CreateTemp(shard, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	defer fsys.Remove(tmp.Name()) // no-op after a successful rename

	sum := sha256.Sum256(payload)
	hdr := make([]byte, headerSize)
	copy(hdr, magic[:])
	binary.BigEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	copy(hdr[16:], sum[:])
	if _, err := tmp.Write(hdr); err != nil {
		tmp.Close()
		return fmt.Errorf("cas: %w", err)
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return fmt.Errorf("cas: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("cas: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	syncDir(fsys, shard)

	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	if e, exists := s.index[key]; exists {
		s.bytes += int64(len(payload)) - e.Value.(*entry).size
		e.Value.(*entry).size = int64(len(payload))
		e.Value.(*entry).atime = now
		s.ll.MoveToFront(e)
	} else {
		s.index[key] = s.ll.PushFront(&entry{key: key, size: int64(len(payload)), atime: now})
		s.bytes += int64(len(payload))
	}
	s.stats.Puts++
	s.stats.BytesWritten += uint64(len(payload))
	s.gcLocked()
	return nil
}

// Delete removes the object stored under key (no-op when absent).
func (s *Store) Delete(key string) error {
	path, err := s.path(key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.fs.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("cas: %w", err)
	}
	syncDir(s.fs, filepath.Dir(path))
	s.removeIndexLocked(key)
	return nil
}

// Len returns the number of indexed objects.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Bytes returns the total indexed payload bytes.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters and gauges.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Objects = s.ll.Len()
	st.Bytes = s.bytes
	return st
}

// GC applies the size/age policy now and returns how many objects were
// evicted. Put triggers it automatically; explicit calls are for
// long-running processes that want age eviction without write traffic.
func (s *Store) GC() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gcLocked()
}

// gcLocked evicts expired then least-recently-accessed objects until the
// policy is satisfied; callers hold s.mu.
func (s *Store) gcLocked() int {
	evicted := 0
	if s.maxAge > 0 {
		cutoff := s.now().Add(-s.maxAge)
		for back := s.ll.Back(); back != nil; {
			e := back.Value.(*entry)
			if !e.atime.Before(cutoff) {
				break
			}
			prev := back.Prev()
			s.evictLocked(back)
			evicted++
			back = prev
		}
	}
	if s.maxBytes > 0 {
		for s.bytes > s.maxBytes && s.ll.Len() > 0 {
			s.evictLocked(s.ll.Back())
			evicted++
		}
	}
	return evicted
}

// evictLocked removes one entry and its file; callers hold s.mu. The
// file remove is best-effort: an unremovable file (immutable bit, dying
// media) must not wedge GC, so the entry leaves the index either way —
// the next scan re-adopts whatever actually survived on disk.
func (s *Store) evictLocked(el *list.Element) {
	e := el.Value.(*entry)
	if path, err := s.path(e.key); err == nil {
		s.fs.Remove(path)
		syncDir(s.fs, filepath.Dir(path))
	}
	s.ll.Remove(el)
	delete(s.index, e.key)
	s.bytes -= e.size
	s.stats.Evicted++
}

// removeIndexLocked drops a key from the index (the file is already
// gone); callers hold s.mu.
func (s *Store) removeIndexLocked(key string) {
	if el, ok := s.index[key]; ok {
		s.bytes -= el.Value.(*entry).size
		s.ll.Remove(el)
		delete(s.index, key)
	}
}

// path maps a key to its shard path, validating the key shape so that a
// malformed key can never escape the objects tree.
func (s *Store) path(key string) (string, error) {
	hex, ok := strings.CutPrefix(key, "sha256:")
	if !ok || len(hex) != 64 || !isLowerHex(hex) {
		return "", fmt.Errorf("cas: malformed key %q (want sha256:<64 lowercase hex digits>)", key)
	}
	return filepath.Join(s.dir, "objects", hex[:2], hex[2:]+objExt), nil
}

// keyFromPath is path's inverse, used by the scan.
func keyFromPath(root, path string) (string, bool) {
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return "", false
	}
	shard, file := filepath.Split(filepath.ToSlash(rel))
	shard = strings.TrimSuffix(shard, "/")
	file, ok := strings.CutSuffix(file, objExt)
	if !ok || len(shard) != 2 || len(file) != 62 || !isLowerHex(shard) || !isLowerHex(file) {
		return "", false
	}
	return "sha256:" + shard + file, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// readObject reads and validates one envelope. Any deviation — short
// header, bad magic, length mismatch, digest mismatch — is an error the
// caller treats as a miss.
func readObject(fsys FS, path string) ([]byte, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("cas: short header: %w", err)
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, fmt.Errorf("cas: bad magic")
	}
	n := binary.BigEndian.Uint64(hdr[8:16])
	if n > MaxObjectBytes {
		return nil, fmt.Errorf("cas: implausible length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, fmt.Errorf("cas: short payload: %w", err)
	}
	// Trailing garbage after the payload means the envelope was not
	// written by us in one piece; reject it too.
	if extra, _ := f.Read(make([]byte, 1)); extra != 0 {
		return nil, fmt.Errorf("cas: trailing bytes")
	}
	if sha256.Sum256(payload) != [sha256.Size]byte(hdr[16:]) {
		return nil, fmt.Errorf("cas: digest mismatch")
	}
	return payload, nil
}

// syncDir fsyncs a directory so a just-renamed (or just-removed) entry is
// durable; best-effort on filesystems that reject directory fsync.
func syncDir(fsys FS, dir string) {
	if d, err := fsys.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
