package cas

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// key derives a well-formed store key from any string.
func key(s string) string {
	sum := sha256.Sum256([]byte(s))
	return "sha256:" + hex.EncodeToString(sum[:])
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"result":"x"}`)
	k := key("a")
	if _, ok := s.Get(k); ok {
		t.Fatal("Get before Put reported a hit")
	}
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	if b := s.Bytes(); b != int64(len(payload)) {
		t.Fatalf("Bytes = %d, want %d", b, len(payload))
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put", st)
	}
}

func TestMalformedKeyRejected(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{
		"",
		"sha256:short",
		"md5:" + strings.Repeat("ab", 32),
		"sha256:" + strings.Repeat("AB", 32), // uppercase
		"sha256:../" + strings.Repeat("ab", 31) + "abcd", // traversal shape
		"sha256:" + strings.Repeat("zz", 32),             // non-hex
	} {
		if err := s.Put(k, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a malformed key", k)
		}
		if _, ok := s.Get(k); ok {
			t.Errorf("Get(%q) hit on a malformed key", k)
		}
	}
}

// TestReloadAcrossOpen is the durability core: a second Open on the same
// directory serves everything the first stored, byte-identically.
func TestReloadAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i := 0; i < 20; i++ {
		k := key(fmt.Sprintf("obj-%d", i))
		v := bytes.Repeat([]byte{byte(i)}, 10+i)
		want[k] = v
		if err := s1.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != len(want) {
		t.Fatalf("reloaded Len = %d, want %d", s2.Len(), len(want))
	}
	for k, v := range want {
		got, ok := s2.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("reloaded Get(%s) = %q, %v; want %q", k, got, ok, v)
		}
	}
}

// TestCorruptObjectIsMiss: flipping bytes, truncating, or appending to an
// object file turns reads into misses — never errors, never bad data —
// and the damaged file is removed.
func TestCorruptObjectIsMiss(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"flip-payload-byte": func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
		"flip-magic":        func(b []byte) []byte { b[0] ^= 0xff; return b },
		"truncate-header":   func(b []byte) []byte { return b[:headerSize-3] },
		"truncate-payload":  func(b []byte) []byte { return b[:headerSize+1] },
		"append-garbage":    func(b []byte) []byte { return append(b, 'x') },
		"empty":             func([]byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			k := key(name)
			if err := s.Put(k, []byte("precious result bytes")); err != nil {
				t.Fatal(err)
			}
			path, err := s.path(k)
			if err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// The corruption closures mutate in place; keep a pristine copy
			// for the second round.
			orig := append([]byte(nil), raw...)
			if err := os.WriteFile(path, corrupt(raw), 0o666); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(k); ok {
				t.Fatalf("Get on corrupt object hit with %q", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("corrupt object file not removed (err=%v)", err)
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Errorf("Corrupt counter = %d, want 1", st.Corrupt)
			}
			// And a reopen scan tolerates corruption too.
			if err := s.Put(k, []byte("fresh")); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(orig), 0o666); err != nil {
				t.Fatal(err)
			}
			s2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("Open over corrupt object: %v", err)
			}
			if _, ok := s2.Get(k); ok {
				t.Fatal("reopened store served a corrupt object")
			}
		})
	}
}

// TestGCSizeCap: the byte cap evicts oldest-accessed first; the newest
// objects survive.
func TestGCSizeCap(t *testing.T) {
	clock := time.Unix(1000, 0)
	opts := Options{MaxBytes: 100, now: func() time.Time { return clock }}
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// 10 objects × 20 bytes; cap 100 keeps the newest 5.
	var keys []string
	for i := 0; i < 10; i++ {
		clock = clock.Add(time.Second)
		k := key(fmt.Sprintf("sized-%d", i))
		keys = append(keys, k)
		if err := s.Put(k, bytes.Repeat([]byte{'x'}, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Bytes() > 100 {
		t.Fatalf("Bytes = %d exceeds cap", s.Bytes())
	}
	for i, k := range keys {
		_, ok := s.Get(k)
		if want := i >= 5; ok != want {
			t.Errorf("object %d present=%v, want %v", i, ok, want)
		}
	}
	// A Get refreshes recency: touch the oldest survivor, add more, and it
	// outlives objects written before it was touched.
	clock = clock.Add(time.Second)
	s.Get(keys[5])
	for i := 10; i < 14; i++ {
		clock = clock.Add(time.Second)
		if err := s.Put(key(fmt.Sprintf("sized-%d", i)), bytes.Repeat([]byte{'x'}, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get(keys[5]); !ok {
		t.Error("recently touched object was evicted before colder ones")
	}
	if _, ok := s.Get(keys[6]); ok {
		t.Error("cold object survived past the cap")
	}
}

func TestGCMaxAge(t *testing.T) {
	clock := time.Unix(1000, 0)
	s, err := Open(t.TempDir(), Options{MaxAge: time.Minute, now: func() time.Time { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	old, fresh := key("old"), key("fresh")
	if err := s.Put(old, []byte("old")); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(2 * time.Minute)
	if err := s.Put(fresh, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if n := s.GC(); n != 0 {
		// Put already collected the expired object.
		t.Logf("GC evicted %d more", n)
	}
	if _, ok := s.Get(old); ok {
		t.Error("expired object survived age GC")
	}
	if _, ok := s.Get(fresh); !ok {
		t.Error("fresh object was age-evicted")
	}
}

// TestScanRemovesTempFiles: a crash mid-write leaves a temp file; Open
// cleans it up and does not index it.
func TestScanRemovesTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key("real"), []byte("real")); err != nil {
		t.Fatal(err)
	}
	shard := filepath.Dir(mustPath(t, s, key("real")))
	stray := filepath.Join(shard, tmpPrefix+"crashed")
	if err := os.WriteFile(stray, []byte("partial"), 0o666); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (temp file indexed?)", s2.Len())
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Error("leftover temp file not removed by scan")
	}
}

// TestRecencySurvivesReopen: mtime carries access order across Open, so
// GC after a restart still evicts the coldest objects first.
func TestRecencySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, hot := key("cold"), key("hot")
	if err := s1.Put(cold, bytes.Repeat([]byte{'c'}, 30)); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(hot, bytes.Repeat([]byte{'h'}, 30)); err != nil {
		t.Fatal(err)
	}
	// Make the mtime gap robust to coarse filesystem timestamps.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(mustPath(t, s1, cold), past, past); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{MaxBytes: 40})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(cold); ok {
		t.Error("cold object survived reopen GC")
	}
	if _, ok := s2.Get(hot); !ok {
		t.Error("hot object evicted by reopen GC")
	}
}

func TestDelete(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := key("gone")
	if err := s.Put(k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(k); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("deleted object still served")
	}
	if err := s.Delete(k); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("Len/Bytes = %d/%d after delete, want 0/0", s.Len(), s.Bytes())
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				k := key(fmt.Sprintf("c-%d", i))
				v := []byte(fmt.Sprintf("value-%d", i))
				if err := s.Put(k, v); err != nil {
					done <- err
					return
				}
				if got, ok := s.Get(k); ok && !bytes.Equal(got, v) {
					done <- fmt.Errorf("goroutine %d: Get(%s) = %q, want %q", g, k, got, v)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func mustPath(t *testing.T, s *Store, key string) string {
	t.Helper()
	p, err := s.path(key)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestByteCounters: BytesWritten totals successful Put payloads,
// BytesRead totals Get-hit payloads; misses and re-reads account
// correctly.
func TestByteCounters(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := []byte("0123456789"), []byte("0123")
	if err := s.Put(key("a"), a); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key("b"), b); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key("a")); !ok {
		t.Fatal("miss on a")
	}
	if _, ok := s.Get(key("a")); !ok {
		t.Fatal("miss on a (second read)")
	}
	if _, ok := s.Get(key("absent")); ok {
		t.Fatal("hit on absent key")
	}
	st := s.Stats()
	if want := uint64(len(a) + len(b)); st.BytesWritten != want {
		t.Errorf("BytesWritten = %d, want %d", st.BytesWritten, want)
	}
	if want := uint64(2 * len(a)); st.BytesRead != want {
		t.Errorf("BytesRead = %d, want %d (misses must not count)", st.BytesRead, want)
	}
}
