package cas

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// faultKey derives a well-formed store key from a test label.
func faultKey(i int) string {
	return fmt.Sprintf("sha256:%064x", i+1)
}

// listFiles returns every file under the store's objects tree, split
// into durable objects and leftover temp files.
func listFiles(t *testing.T, dir string) (objects, temps []string) {
	t.Helper()
	err := filepath.Walk(filepath.Join(dir, "objects"), func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		if strings.HasPrefix(filepath.Base(path), tmpPrefix) {
			temps = append(temps, path)
		} else {
			objects = append(objects, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return objects, temps
}

// TestPutENOSPCMidWriteLeavesNoStrayObject: the disk filling up partway
// through an object surfaces as a Put error, leaves no .obj file (a
// torn envelope must never land under the final name), and does not
// poison the slot — a healed disk stores and reads the key normally.
func TestPutENOSPCMidWriteLeavesNoStrayObject(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{}
	s, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}

	payload := bytes.Repeat([]byte("x"), 4096)
	ffs.FailWritesAfter(headerSize+100, syscall.ENOSPC)
	if err := s.Put(faultKey(0), payload); err == nil {
		t.Fatal("Put on a full disk must fail")
	}
	objects, temps := listFiles(t, dir)
	if len(objects) != 0 {
		t.Fatalf("torn write left objects under the final name: %v", objects)
	}
	if len(temps) != 0 {
		t.Fatalf("torn write left temp files: %v", temps)
	}
	if _, ok := s.Get(faultKey(0)); ok {
		t.Fatal("failed Put must read as a miss")
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("failed Put leaked accounting: len=%d bytes=%d", s.Len(), s.Bytes())
	}

	// Healing the disk heals the slot.
	ffs.Heal()
	if err := s.Put(faultKey(0), payload); err != nil {
		t.Fatalf("Put after heal: %v", err)
	}
	got, ok := s.Get(faultKey(0))
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("healed store does not serve the payload back")
	}
}

// TestPutENOSPCImmediate: a write that fails on the first byte behaves
// the same — error out, no stray files, tmp cleaned up.
func TestPutENOSPCImmediate(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{}
	s, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	ffs.FailWrites(syscall.ENOSPC)
	if err := s.Put(faultKey(1), []byte("payload")); err == nil {
		t.Fatal("Put must fail when every write fails")
	}
	objects, temps := listFiles(t, dir)
	if len(objects)+len(temps) != 0 {
		t.Fatalf("stray files after failed Put: obj=%v tmp=%v", objects, temps)
	}
}

// TestConcurrentGetOnCorruptionIsMissAndRemove: bit rot surfacing while
// many readers race the same key reads as a miss for every one of them
// — never an error, never bad payload bytes — and the corrupt file is
// removed so the slot is honest about being empty.
func TestConcurrentGetOnCorruptionIsMissAndRemove(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{}
	s, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	key := faultKey(2)
	if err := s.Put(key, []byte("precious result bytes")); err != nil {
		t.Fatal(err)
	}

	ffs.CorruptReads(true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if payload, ok := s.Get(key); ok {
					t.Errorf("corrupt read served as a hit: %q", payload)
				}
			}
		}()
	}
	wg.Wait()

	objects, _ := listFiles(t, dir)
	if len(objects) != 0 {
		t.Fatalf("corrupt object not removed: %v", objects)
	}
	if st := s.Stats(); st.Corrupt == 0 {
		t.Fatal("corruption not counted")
	}

	// With reads healed the key is simply absent: recompute-and-put
	// works.
	ffs.Heal()
	if _, ok := s.Get(key); ok {
		t.Fatal("removed object still resolvable")
	}
	if err := s.Put(key, []byte("recomputed")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || string(got) != "recomputed" {
		t.Fatal("recomputed object not served")
	}
}

// TestGCProceedsPastUnremovableFile: an object whose file cannot be
// removed (immutable bit, dying media) must not wedge the GC loop —
// every over-budget entry still leaves the index and the policy
// converges.
func TestGCProceedsPastUnremovableFile(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{}
	now := time.Unix(1000, 0)
	s, err := Open(dir, Options{FS: ffs, MaxBytes: 1 << 20, now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("y"), 1024)
	for i := 0; i < 8; i++ {
		now = now.Add(time.Second) // distinct recency order
		if err := s.Put(faultKey(10+i), payload); err != nil {
			t.Fatal(err)
		}
	}

	// Shrink the budget to two objects' worth and make removal fail.
	ffs.FailRemoves(syscall.EPERM)
	s.mu.Lock()
	s.maxBytes = 2 * 1024
	s.mu.Unlock()
	evicted := s.GC()
	if evicted != 6 {
		t.Fatalf("GC evicted %d entries, want 6", evicted)
	}
	if s.Len() != 2 || s.Bytes() != 2*1024 {
		t.Fatalf("index after GC: len=%d bytes=%d, want 2/2048", s.Len(), s.Bytes())
	}

	// The files themselves survived the failed removes; a re-open with a
	// healed disk re-adopts them — the directory is the real state.
	ffs.Heal()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 8 {
		t.Fatalf("re-opened store indexed %d objects, want 8 (files survived)", s2.Len())
	}
}

// TestWithFSSwapsLive: WithFS arms and disarms faults on a store that
// is already open — the hook the manager-level degradation tests use.
func TestWithFSSwapsLive(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(faultKey(20), []byte("before")); err != nil {
		t.Fatal(err)
	}

	ffs := &FaultFS{}
	ffs.FailWrites(syscall.ENOSPC)
	s.WithFS(ffs)
	if err := s.Put(faultKey(21), []byte("during")); err == nil {
		t.Fatal("Put through a broken FS must fail")
	}
	// Reads of intact objects still work through the fault wrapper.
	if got, ok := s.Get(faultKey(20)); !ok || string(got) != "before" {
		t.Fatal("healthy object unreadable through FaultFS")
	}

	s.WithFS(nil) // back to the real filesystem
	if err := s.Put(faultKey(21), []byte("after")); err != nil {
		t.Fatalf("Put after swap-back: %v", err)
	}
}
