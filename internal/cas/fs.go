package cas

// fs.go is the store's filesystem seam. Every file operation the store
// performs goes through the FS interface, so tests (and the job
// manager's degradation tests) can inject the failures a real disk
// produces — ENOSPC mid-write, torn renames, bit rot on read, files
// that refuse to die — without root, loop devices, or flaky timing.
// The production path is osFS, a zero-cost passthrough to the os
// package.

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// File is the slice of *os.File the store uses.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Name returns the file's path, as handed to CreateTemp/Open.
	Name() string
	// Sync flushes the file to stable storage.
	Sync() error
}

// FS is the slice of the os package the store uses. Implementations
// must be safe for concurrent use (the store calls them concurrently).
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	CreateTemp(dir, pattern string) (File, error)
	Open(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Chtimes(name string, atime, mtime time.Time) error
	WalkDir(root string, fn fs.WalkDirFunc) error
}

// osFS is the production FS: the os package, verbatim.
type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Chtimes(name string, a, m time.Time) error    { return os.Chtimes(name, a, m) }
func (osFS) WalkDir(root string, fn fs.WalkDirFunc) error { return filepath.WalkDir(root, fn) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// FaultFS wraps an FS with injectable failures: the errfs-style hook
// behind Store.WithFS. Faults are toggled at runtime (concurrently with
// store traffic — every knob is mutex-guarded), so a test can let a
// store run healthy, break its disk mid-flight, and heal it again,
// exercising the exact degrade/recover ladder production would see.
//
// The zero value wraps the real filesystem with no faults armed.
type FaultFS struct {
	// Inner is the wrapped FS; nil means the real filesystem.
	Inner FS

	mu           sync.Mutex
	writeErr     error // every File.Write fails with this
	writeBudget  int   // bytes accepted before writeErr fires; <0 = immediately
	corruptReads bool  // flip a bit in bytes read through Open
	panicWrites  bool  // File.Write panics (a poisoned encoder/disk driver)
	openErr      error
	renameErr    error
	removeErr    error
}

// FailWrites makes every subsequent File.Write fail with err
// (e.g. syscall.ENOSPC). nil disarms.
func (f *FaultFS) FailWrites(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeErr, f.writeBudget = err, -1
}

// FailWritesAfter lets each file accept n bytes and then fails with
// err: a torn write — the media died partway through an object.
func (f *FaultFS) FailWritesAfter(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeErr, f.writeBudget = err, n
}

// CorruptReads flips a bit in every byte stream read through Open:
// on-disk rot surfacing at read time.
func (f *FaultFS) CorruptReads(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.corruptReads = on
}

// PanicWrites makes File.Write panic instead of returning: the failure
// mode recover-hardening exists for. off by default.
func (f *FaultFS) PanicWrites(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.panicWrites = on
}

// FailOpens makes Open fail with err. nil disarms.
func (f *FaultFS) FailOpens(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.openErr = err
}

// FailRenames makes Rename fail with err. nil disarms.
func (f *FaultFS) FailRenames(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.renameErr = err
}

// FailRemoves makes Remove fail with err: the unremovable file. nil
// disarms.
func (f *FaultFS) FailRemoves(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.removeErr = err
}

// Heal disarms every fault.
func (f *FaultFS) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeErr, f.writeBudget = nil, -1
	f.corruptReads, f.panicWrites = false, false
	f.openErr, f.renameErr, f.removeErr = nil, nil, nil
}

func (f *FaultFS) inner() FS {
	if f.Inner == nil {
		return osFS{}
	}
	return f.Inner
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.inner().MkdirAll(path, perm)
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	file, err := f.inner().CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	budget := f.writeBudget
	f.mu.Unlock()
	return &faultFile{File: file, fs: f, budget: budget}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	f.mu.Lock()
	openErr := f.openErr
	f.mu.Unlock()
	if openErr != nil {
		return nil, openErr
	}
	file, err := f.inner().Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	renameErr := f.renameErr
	f.mu.Unlock()
	if renameErr != nil {
		return renameErr
	}
	return f.inner().Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	removeErr := f.removeErr
	f.mu.Unlock()
	if removeErr != nil {
		return removeErr
	}
	return f.inner().Remove(name)
}

func (f *FaultFS) Chtimes(name string, a, m time.Time) error {
	return f.inner().Chtimes(name, a, m)
}

func (f *FaultFS) WalkDir(root string, fn fs.WalkDirFunc) error {
	return f.inner().WalkDir(root, fn)
}

// faultFile applies the parent's armed faults to one open file. The
// write budget is captured at creation, so "n bytes then ENOSPC" is
// per-file, like a disk filling up under one writer.
type faultFile struct {
	File
	fs     *FaultFS
	budget int // remaining write bytes; meaningful only while writeErr armed
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	writeErr, panics := ff.fs.writeErr, ff.fs.panicWrites
	ff.fs.mu.Unlock()
	if panics {
		panic("cas: injected write panic")
	}
	if writeErr == nil {
		return ff.File.Write(p)
	}
	if ff.budget <= 0 {
		return 0, writeErr
	}
	n := min(len(p), ff.budget)
	ff.budget -= n
	written, err := ff.File.Write(p[:n])
	if err != nil {
		return written, err
	}
	if written < len(p) {
		return written, writeErr
	}
	return written, nil
}

func (ff *faultFile) Read(p []byte) (int, error) {
	n, err := ff.File.Read(p)
	ff.fs.mu.Lock()
	corrupt := ff.fs.corruptReads
	ff.fs.mu.Unlock()
	if corrupt && n > 0 {
		p[n-1] ^= 0x80
	}
	return n, err
}
