package ftgcs_test

import (
	"testing"

	"ftgcs"
	"ftgcs/internal/sim"
)

// TestSimSecondSteadyStateAllocs pins the recording hot path: with the
// horizon known at build time, metric series and pulse bookkeeping are
// preallocated to their full expected size, so advancing the simulation
// through its horizon allocates (almost) nothing per simulated second.
// Before the preallocation + cached edge list this figure was ~460
// allocs per simulated second (graph.Edges rebuilt and re-sorted on
// every sampler tick, plus amortized slice growth).
func TestSimSecondSteadyStateAllocs(t *testing.T) {
	if sim.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	const horizon = 60.0
	sc := ftgcs.Config{
		Topology:    ftgcs.Line(5),
		ClusterSize: 4,
		FaultBudget: 1,
		Rho:         3e-3,
		Delay:       1e-3,
		Uncertainty: 1e-4,
		C2:          4,
		Eps:         0.25,
		Seed:        1,
		Drift:       ftgcs.DriftSpec{Kind: ftgcs.DriftGradient},
	}.Scenario(ftgcs.WithHorizon(horizon))
	sys, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: protocol start, event-pool growth, lazy series creation.
	if err := sys.Run(10); err != nil {
		t.Fatal(err)
	}
	next := 11.0
	avg := testing.AllocsPerRun(int(horizon)-11, func() {
		if err := sys.Run(next); err != nil {
			t.Fatal(err)
		}
		next++
	})
	// The substrate is not strictly zero-alloc (occasional event-pool or
	// estimator growth), but the per-second steady state must stay two
	// orders of magnitude below the pre-fix ~460.
	if avg > 4 {
		t.Errorf("steady-state simulation allocates %.1f per simulated second, want ≤ 4", avg)
	}
}

// benchGridConfig is the BenchmarkSystemBuild configuration (112 nodes),
// shared by the build/reset allocation pins.
func benchGridConfig() ftgcs.Config {
	return ftgcs.Config{
		Topology:    ftgcs.Grid(4, 4),
		ClusterSize: 7,
		FaultBudget: 2,
		Rho:         3e-3,
		Delay:       1e-3,
		Uncertainty: 1e-4,
		C2:          4,
		Eps:         0.25,
	}
}

// TestSystemBuildAllocs pins the wiring cost of a 112-node system. The
// lazy RNG seeding and batched cluster buffers brought this from ~8800
// to ~7700 allocations; the pin catches silent regressions (every alloc
// here is paid once per scenario in a sweep, or once per worker with
// arena reuse).
func TestSystemBuildAllocs(t *testing.T) {
	if sim.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	cfg := benchGridConfig()
	avg := testing.AllocsPerRun(10, func() {
		if _, err := ftgcs.New(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 8200 {
		t.Errorf("SystemBuild allocates %.0f, want ≤ 8200 (~7700 expected)", avg)
	}
}

// TestSystemResetAllocs pins the arena-reset cost on the same system: a
// reset re-derives RNG streams in place and reboxes the per-node rate
// models, but must stay two orders of magnitude below a rebuild (~7700).
func TestSystemResetAllocs(t *testing.T) {
	if sim.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	sys, err := ftgcs.New(benchGridConfig())
	if err != nil {
		t.Fatal(err)
	}
	seed := int64(0)
	avg := testing.AllocsPerRun(10, func() {
		seed++
		if err := sys.Reset(seed); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 160 {
		t.Errorf("System.Reset allocates %.0f, want ≤ 160 (~113 expected)", avg)
	}
}
