package ftgcs_test

import (
	"testing"

	"ftgcs"
	"ftgcs/internal/sim"
)

// TestSimSecondSteadyStateAllocs pins the recording hot path: with the
// horizon known at build time, metric series and pulse bookkeeping are
// preallocated to their full expected size, so advancing the simulation
// through its horizon allocates (almost) nothing per simulated second.
// Before the preallocation + cached edge list this figure was ~460
// allocs per simulated second (graph.Edges rebuilt and re-sorted on
// every sampler tick, plus amortized slice growth).
func TestSimSecondSteadyStateAllocs(t *testing.T) {
	if sim.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	const horizon = 60.0
	sc := ftgcs.Config{
		Topology:    ftgcs.Line(5),
		ClusterSize: 4,
		FaultBudget: 1,
		Rho:         3e-3,
		Delay:       1e-3,
		Uncertainty: 1e-4,
		C2:          4,
		Eps:         0.25,
		Seed:        1,
		Drift:       ftgcs.DriftSpec{Kind: ftgcs.DriftGradient},
	}.Scenario(ftgcs.WithHorizon(horizon))
	sys, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: protocol start, event-pool growth, lazy series creation.
	if err := sys.Run(10); err != nil {
		t.Fatal(err)
	}
	next := 11.0
	avg := testing.AllocsPerRun(int(horizon)-11, func() {
		if err := sys.Run(next); err != nil {
			t.Fatal(err)
		}
		next++
	})
	// The substrate is not strictly zero-alloc (occasional event-pool or
	// estimator growth), but the per-second steady state must stay two
	// orders of magnitude below the pre-fix ~460.
	if avg > 4 {
		t.Errorf("steady-state simulation allocates %.1f per simulated second, want ≤ 4", avg)
	}
}
