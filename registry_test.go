package ftgcs

import (
	"strings"
	"testing"

	"ftgcs/internal/byzantine"
)

// TestRegistryBuiltins checks that every built-in is resolvable and that
// the registered CLI name matches the constructor's self-reported Name()
// (the name parity the CLIs rely on).
func TestRegistryBuiltins(t *testing.T) {
	reg := DefaultRegistry

	for _, name := range reg.DriftNames() {
		m, err := reg.Drift(name)
		if err != nil {
			t.Errorf("Drift(%q): %v", name, err)
			continue
		}
		if m.Name() != name {
			t.Errorf("drift %q constructs model named %q", name, m.Name())
		}
	}
	for _, name := range reg.DelayNames() {
		m, err := reg.Delay(name)
		if err != nil {
			t.Errorf("Delay(%q): %v", name, err)
			continue
		}
		if m.Name() != name {
			t.Errorf("delay %q constructs model named %q", name, m.Name())
		}
	}
	for _, name := range reg.AttackNames() {
		a, err := reg.Attack(name)
		if err != nil {
			t.Errorf("Attack(%q): %v", name, err)
			continue
		}
		if a.Name() != name {
			t.Errorf("attack %q constructs strategy named %q", name, a.Name())
		}
		// Parity with the byzantine package's own name resolution.
		b, err := byzantine.ByName(name)
		if err != nil {
			t.Errorf("byzantine.ByName(%q): %v", name, err)
		} else if b.Name() != a.Name() {
			t.Errorf("attack %q: registry gives %q, byzantine.ByName gives %q", name, a.Name(), b.Name())
		}
	}
}

// TestRegistryTopologies checks every registered family builds a graph of
// the expected size.
func TestRegistryTopologies(t *testing.T) {
	wantN := map[string]int{
		"line":      4,
		"ring":      4,
		"clique":    4,
		"star":      4,
		"grid":      16, // size is the side length
		"torus":     16,
		"hypercube": 16, // size is the dimension: 2^4
		"tree":      0,  // checked for connectivity only (size = depth)
		"random":    4,
	}
	for _, name := range DefaultRegistry.TopologyNames() {
		g, err := TopologyByName(name, 4, 1)
		if err != nil {
			t.Errorf("Topology(%q): %v", name, err)
			continue
		}
		if g.N() == 0 || g.Diameter() < 0 {
			t.Errorf("topology %q: empty or disconnected (N=%d)", name, g.N())
		}
		if want, ok := wantN[name]; !ok {
			t.Errorf("topology %q missing from size expectations", name)
		} else if want > 0 && g.N() != want {
			t.Errorf("topology %q size 4: N=%d, want %d", name, g.N(), want)
		}
	}
}

// TestRegistryAliases checks the historical CLI spellings resolve to their
// canonical attacks.
func TestRegistryAliases(t *testing.T) {
	for alias, canonical := range map[string]string{
		"adaptive": "adaptive-two-faced",
		"cadence":  "cadence-two-faced",
		"twofaced": "two-faced",
		"maxspam":  "max-spam",
	} {
		a, err := AttackByName(alias)
		if err != nil {
			t.Errorf("alias %q: %v", alias, err)
			continue
		}
		if a.Name() != canonical {
			t.Errorf("alias %q resolved to %q, want %q", alias, a.Name(), canonical)
		}
	}
}

// TestRegistryUnknownNames checks unknown lookups fail with an error that
// lists what is available.
func TestRegistryUnknownNames(t *testing.T) {
	if _, err := DriftByName("nope"); err == nil || !strings.Contains(err.Error(), "spread") {
		t.Errorf("unknown drift error should list names, got: %v", err)
	}
	if _, err := DelayByName("nope"); err == nil || !strings.Contains(err.Error(), "uniform") {
		t.Errorf("unknown delay error should list names, got: %v", err)
	}
	if _, err := AttackByName("nope"); err == nil || !strings.Contains(err.Error(), "silent") {
		t.Errorf("unknown attack error should list names, got: %v", err)
	}
	if _, err := TopologyByName("nope", 4, 1); err == nil || !strings.Contains(err.Error(), "torus") {
		t.Errorf("unknown topology error should list names, got: %v", err)
	}
}

// TestRegistryAliasPrecedence checks an exact registration beats an alias
// (a user may take over a spelling the built-ins alias), aliases don't
// leak across catalogs, and an alias cannot shadow a canonical name.
func TestRegistryAliasPrecedence(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterAttack("adaptive-two-faced", func() Attack { return AdaptiveTwoFaced() })
	reg.RegisterAlias("adaptive", "adaptive-two-faced")

	// The alias must not satisfy a different catalog's lookup…
	if _, err := reg.Drift("adaptive"); err == nil {
		t.Error("alias resolved in the wrong catalog")
	}
	// …and a later exact registration under the alias spelling wins.
	reg.RegisterDrift("adaptive", func() DriftModel { return NoDrift{} })
	if m, err := reg.Drift("adaptive"); err != nil || m.Name() != "none" {
		t.Errorf("exact drift registration lost to alias: %v %v", m, err)
	}
	reg.RegisterAttack("adaptive", func() Attack { return TwoFaced() })
	if a, err := reg.Attack("adaptive"); err != nil || a.Name() != "two-faced" {
		t.Errorf("exact attack registration lost to alias: %v %v", a, err)
	}

	defer func() {
		if recover() == nil {
			t.Error("alias shadowing a canonical name should panic")
		}
	}()
	reg.RegisterAlias("adaptive-two-faced", "somewhere-else")
}

// TestRegistryAliasRequiresTarget checks a typo'd canonical name fails
// loudly at registration instead of creating a dead alias.
func TestRegistryAliasRequiresTarget(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("alias to an unregistered name should panic")
		}
	}()
	reg.RegisterAlias("fast", "burst-delay") // nothing named burst-delay exists
}

// TestRegistryCustomRegistration checks the extension path: a custom model
// registered in a fresh registry resolves, and duplicates panic.
func TestRegistryCustomRegistration(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Drift("spread"); err == nil {
		t.Error("fresh registry should be empty")
	}
	reg.RegisterDrift("custom", func() DriftModel { return NoDrift{} })
	if m, err := reg.Drift("custom"); err != nil || m == nil {
		t.Errorf("custom drift: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	reg.RegisterDrift("custom", func() DriftModel { return NoDrift{} })
}
