package ftgcs

import (
	"context"
	"fmt"
	"reflect"
	"sort"

	"ftgcs/internal/core"
	"ftgcs/internal/params"
)

// Scenario describes one complete experiment: a topology, the cluster
// geometry, the physical link parameters, and up to three adversaries
// (drift, delay, Byzantine attacks). Scenarios are built with functional
// options and executed either directly (Build/Run) or in batches by the
// Sweep runner.
//
//	rep, err := ftgcs.NewScenario(
//		ftgcs.WithTopologyName("torus", 4),
//		ftgcs.WithClusters(4, 1),
//		ftgcs.WithPhysical(3e-3, 1e-3, 1e-4),
//		ftgcs.WithConstants(4, 0.25),
//		ftgcs.WithDriftName("sine"),
//		ftgcs.WithAttackName("adaptive-two-faced", 3, 7),
//		ftgcs.WithSeed(1),
//		ftgcs.WithHorizon(30),
//	).Run()
//
// The legacy Config struct remains as a compatibility shim; New(cfg) is
// equivalent to cfg.Scenario().Build().
type Scenario struct {
	name string

	topology *Topology
	topoName string
	topoSize int

	k, f int

	rho, maxDelay, uncertainty float64
	preset                     Preset
	c2, eps                    float64
	derived                    *Params // overrides derivation entirely

	seed    int64
	seedSet bool

	driftModel DriftModel
	delayModel DelayModel

	faults            []FaultSpec
	perClusterAttack  func() Attack
	perClusterCount   int
	disableGlobalSkew bool
	sampleInterval    float64

	// horizon in seconds, or in rounds (× derived T) when horizonRounds
	// is set. Zero selects DefaultHorizon seconds.
	horizon       float64
	horizonRounds float64

	// Advanced instrumentation (harness experiments).
	staggerStart  float64
	trackRounds   bool
	trackClusters bool
	modeOverride  func(node NodeID, cluster ClusterID, round int) (int, bool)

	// Execution hooks.
	observe func(sys *System) (any, error)
	hooks   []midRunHook

	// backend, when set, replaces the core system build (WithBackend).
	backend BackendBuilder

	err error // first option error, surfaced at Build
}

type midRunHook struct {
	at float64
	fn func(sys *System) error
}

// DefaultHorizon is the simulated duration (seconds) used when no
// WithHorizon/WithHorizonRounds option is given.
const DefaultHorizon = 30.0

// Option configures a Scenario.
type Option func(*Scenario)

// NewScenario builds a scenario from options. Unset options take the same
// defaults as the zero Config: spread drift, uniform delays, no faults,
// global-skew machinery enabled, Practical preset.
func NewScenario(opts ...Option) *Scenario {
	s := &Scenario{
		rho:         1e-3,
		maxDelay:    1e-3,
		uncertainty: 1e-4,
		k:           4,
		f:           1,
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// With returns a copy of the scenario with additional options applied —
// convenient for generating sweep variants from a shared base.
func (s *Scenario) With(opts ...Option) *Scenario {
	c := *s
	c.faults = append([]FaultSpec(nil), s.faults...)
	c.hooks = append([]midRunHook(nil), s.hooks...)
	for _, opt := range opts {
		opt(&c)
	}
	return &c
}

// Name returns the scenario's display name.
func (s *Scenario) Name() string { return s.name }

// WithName sets the display name used in sweep tables.
func WithName(format string, args ...any) Option {
	return func(s *Scenario) { s.name = fmt.Sprintf(format, args...) }
}

// WithTopology sets the base cluster graph directly. Like every paired
// option, the last one wins: it clears any earlier WithTopologyName.
func WithTopology(t *Topology) Option {
	return func(s *Scenario) { s.topology, s.topoName, s.topoSize = t, "", 0 }
}

// WithTopologyName resolves the topology family from the default registry
// at build time (so randomized families see the scenario seed). It clears
// any earlier WithTopology.
func WithTopologyName(name string, size int) Option {
	return func(s *Scenario) { s.topology, s.topoName, s.topoSize = nil, name, size }
}

// WithClusters sets the cluster size k and fault budget f (k ≥ 3f+1).
func WithClusters(k, f int) Option {
	return func(s *Scenario) { s.k, s.f = k, f }
}

// WithPhysical sets the drift bound ρ, max delay d, and uncertainty U.
func WithPhysical(rho, delay, uncertainty float64) Option {
	return func(s *Scenario) { s.rho, s.maxDelay, s.uncertainty = rho, delay, uncertainty }
}

// WithConstants overrides the preset's analysis constants (µ = c₂·ρ and
// the contraction margin ε) when non-zero.
func WithConstants(c2, eps float64) Option {
	return func(s *Scenario) { s.c2, s.eps = c2, eps }
}

// WithPreset selects the analysis-constant preset (zero value means
// PresetPractical).
func WithPreset(p Preset) Option {
	return func(s *Scenario) { s.preset = p }
}

// WithDerivedParams supplies fully derived algorithm constants, bypassing
// the ρ/d/U derivation entirely (the harness uses this to share one
// parameter set across a sweep).
func WithDerivedParams(p Params) Option {
	return func(s *Scenario) { s.derived = &p }
}

// WithSeed pins the scenario's random seed. Scenarios without an explicit
// seed get a deterministic per-index seed from the Sweep runner.
func WithSeed(seed int64) Option {
	return func(s *Scenario) { s.seed, s.seedSet = seed, true }
}

// WithDrift sets the drift adversary.
func WithDrift(m DriftModel) Option {
	return func(s *Scenario) { s.driftModel = m }
}

// WithDriftName resolves the drift adversary from the default registry.
func WithDriftName(name string) Option {
	return func(s *Scenario) {
		m, err := DriftByName(name)
		if err != nil {
			s.fail(err)
			return
		}
		s.driftModel = m
	}
}

// WithDelay sets the message-delay adversary.
func WithDelay(m DelayModel) Option {
	return func(s *Scenario) { s.delayModel = m }
}

// WithDelayName resolves the delay adversary from the default registry.
func WithDelayName(name string) Option {
	return func(s *Scenario) {
		m, err := DelayByName(name)
		if err != nil {
			s.fail(err)
			return
		}
		s.delayModel = m
	}
}

// WithFaults appends fault specifications.
func WithFaults(faults ...FaultSpec) Option {
	return func(s *Scenario) { s.faults = append(s.faults, faults...) }
}

// WithAttack marks the given nodes Byzantine, all running the given
// attack.
func WithAttack(a Attack, nodes ...NodeID) Option {
	return func(s *Scenario) {
		for _, v := range nodes {
			s.faults = append(s.faults, FaultSpec{Node: v, Strategy: a})
		}
	}
}

// WithAttackName resolves the attack by name and marks the given nodes
// Byzantine.
func WithAttackName(name string, nodes ...NodeID) Option {
	return func(s *Scenario) {
		a, err := AttackByName(name)
		if err != nil {
			s.fail(err)
			return
		}
		WithAttack(a, nodes...)(s)
	}
}

// WithAttackPerCluster plants one attacker — the last member — in each of
// the first `clusters` clusters (0 = every cluster), each running a fresh
// instance from the constructor. Resolved at build time, when the topology
// and k are known.
func WithAttackPerCluster(ctor func() Attack, clusters int) Option {
	return func(s *Scenario) { s.perClusterAttack, s.perClusterCount = ctor, clusters }
}

// WithGlobalSkew enables or disables the Appendix C global-skew machinery
// (enabled by default).
func WithGlobalSkew(enabled bool) Option {
	return func(s *Scenario) { s.disableGlobalSkew = !enabled }
}

// WithSampleInterval sets the metrics sampling period (0 = T/2).
func WithSampleInterval(dt float64) Option {
	return func(s *Scenario) { s.sampleInterval = dt }
}

// WithHorizon sets the simulated duration in seconds.
func WithHorizon(seconds float64) Option {
	return func(s *Scenario) { s.horizon, s.horizonRounds = seconds, 0 }
}

// WithHorizonRounds sets the simulated duration as a multiple of the
// derived round length T.
func WithHorizonRounds(rounds float64) Option {
	return func(s *Scenario) { s.horizonRounds, s.horizon = rounds, 0 }
}

// WithStaggerStart staggers cluster members' protocol starts across the
// given window (see core.Config.StaggerStart).
func WithStaggerStart(window float64) Option {
	return func(s *Scenario) { s.staggerStart = window }
}

// WithRoundTracking records per-node round boundaries, values and modes.
func WithRoundTracking() Option {
	return func(s *Scenario) { s.trackRounds = true }
}

// WithClusterTracking records per-cluster clock/FC/SC series.
func WithClusterTracking() Option {
	return func(s *Scenario) { s.trackClusters = true }
}

// WithModeOverride forces GCS mode decisions (experiment machinery).
func WithModeOverride(fn func(node NodeID, cluster ClusterID, round int) (int, bool)) Option {
	return func(s *Scenario) { s.modeOverride = fn }
}

// WithObserver attaches a measurement extracted after the run; the Sweep
// runner stores its result in SweepResult.Value.
func WithObserver(fn func(sys *System) (any, error)) Option {
	return func(s *Scenario) { s.observe = fn }
}

// WithMidRunHook pauses the run at simulated time `at`, applies fn (fault
// injection, reconfiguration), and resumes to the horizon. Hooks run in
// time order.
func WithMidRunHook(at float64, fn func(sys *System) error) Option {
	return func(s *Scenario) { s.hooks = append(s.hooks, midRunHook{at: at, fn: fn}) }
}

func (s *Scenario) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// Seeded reports whether an explicit seed was set, and the seed.
func (s *Scenario) Seeded() (int64, bool) { return s.seed, s.seedSet }

// params resolves the derived algorithm constants.
func (s *Scenario) resolveParams() (Params, error) {
	if s.derived != nil {
		return *s.derived, nil
	}
	return deriveParams(s.preset, s.rho, s.maxDelay, s.uncertainty, s.c2, s.eps)
}

// Build wires the scenario into a runnable System.
func (s *Scenario) Build() (*System, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.backend != nil {
		return s.buildBackend()
	}
	topo := s.topology
	if s.topoName != "" {
		t, err := TopologyByName(s.topoName, s.topoSize, s.seed)
		if err != nil {
			return nil, err
		}
		topo = t
	}
	if topo == nil {
		return nil, fmt.Errorf("ftgcs: scenario %q has no topology", s.name)
	}
	p, err := s.resolveParams()
	if err != nil {
		return nil, fmt.Errorf("ftgcs: %w", err)
	}
	faults := s.expandFaults(topo)
	sys, err := core.NewSystem(core.Config{
		Base:             topo,
		K:                s.k,
		F:                s.f,
		Params:           p,
		Seed:             s.seed,
		Drift:            s.driftModel,
		Delay:            s.delayModel,
		Faults:           faults,
		EnableGlobalSkew: !s.disableGlobalSkew,
		SampleInterval:   s.sampleInterval,
		HorizonHint:      s.Horizon(p),
		StaggerStart:     s.staggerStart,
		TrackRounds:      s.trackRounds,
		TrackClusters:    s.trackClusters,
		ModeOverride:     s.modeOverride,
	})
	if err != nil {
		return nil, fmt.Errorf("ftgcs: %w", err)
	}
	return &System{sys: sys, b: coreBackend{sys}, p: p}, nil
}

// expandFaults resolves the scenario's full fault list against the given
// topology: the explicit WithFaults/WithAttack specs plus the per-cluster
// attack plants (one fresh constructor instance at the last member of each
// selected cluster).
func (s *Scenario) expandFaults(topo *Topology) []FaultSpec {
	faults := append([]FaultSpec(nil), s.faults...)
	if s.perClusterAttack != nil {
		count := s.perClusterCount
		if count <= 0 || count > topo.N() {
			count = topo.N()
		}
		for c := 0; c < count; c++ {
			faults = append(faults, FaultSpec{
				Node:     c*s.k + s.k - 1,
				Strategy: s.perClusterAttack(),
			})
		}
	}
	return faults
}

// sameModel reports whether two model values (drift, delay, attack
// strategies — any interface-typed configuration knob) are provably the
// same build input. It is deliberately conservative: dynamic types must
// match exactly, and non-comparable types (or function-backed models)
// never compare equal, so callers fall back to rebuilding rather than
// reusing a system built from different inputs.
func sameModel(a, b any) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	ta, tb := reflect.TypeOf(a), reflect.TypeOf(b)
	if ta != tb || !ta.Comparable() {
		return false
	}
	return a == b
}

// SameBuild is the conservative build key: it reports whether building s
// would produce a System structurally identical to one built from prev —
// same topology, geometry, derived constants, models, fault set and
// instrumentation — differing at most in seed. When true, a system built
// from prev can be Reset to s's seed instead of rebuilt (the Sweep reuse
// path and the cross-job SystemPool). Conservative by design: any input
// it cannot prove equal (named topologies, whose resolution is
// seed-dependent; function-valued knobs like mode overrides, hooks or
// custom backends; non-comparable model types) disqualifies reuse.
// SameBuild(s) == true is the "poolable" predicate: a scenario whose key
// cannot even match itself (hooks, backend, unpinned topology) never
// enters the pool.
func (s *Scenario) SameBuild(prev *Scenario) bool {
	if s == nil || prev == nil || s.err != nil || prev.err != nil {
		return false
	}
	// Custom backends wire themselves; no reset contract to rely on.
	if s.backend != nil || prev.backend != nil {
		return false
	}
	// Named topologies resolve with the seed (randomized families), so only
	// a shared pinned *Topology is a provably seed-independent build input.
	if s.topology == nil || s.topology != prev.topology {
		return false
	}
	if s.k != prev.k || s.f != prev.f {
		return false
	}
	if s.rho != prev.rho || s.maxDelay != prev.maxDelay || s.uncertainty != prev.uncertainty {
		return false
	}
	if s.preset != prev.preset || s.c2 != prev.c2 || s.eps != prev.eps {
		return false
	}
	if (s.derived == nil) != (prev.derived == nil) {
		return false
	}
	if s.derived != nil && *s.derived != *prev.derived {
		return false
	}
	if !sameModel(s.driftModel, prev.driftModel) || !sameModel(s.delayModel, prev.delayModel) {
		return false
	}
	// Compare the expanded fault lists (explicit specs plus per-cluster
	// plants) so spec-compiled replicates — which carry fresh
	// WithAttackPerCluster closures per compile but resolve to the same
	// registered strategy values — still qualify.
	fa, fb := s.expandFaults(s.topology), prev.expandFaults(prev.topology)
	if len(fa) != len(fb) {
		return false
	}
	for i := range fa {
		if fa[i].Node != fb[i].Node || fa[i].CrashAt != fb[i].CrashAt || fa[i].OffSpecRate != fb[i].OffSpecRate {
			return false
		}
		if !sameModel(fa[i].Strategy, fb[i].Strategy) {
			return false
		}
	}
	if s.disableGlobalSkew != prev.disableGlobalSkew || s.sampleInterval != prev.sampleInterval {
		return false
	}
	if s.horizon != prev.horizon || s.horizonRounds != prev.horizonRounds {
		return false
	}
	if s.staggerStart != prev.staggerStart {
		return false
	}
	if s.trackRounds != prev.trackRounds || s.trackClusters != prev.trackClusters {
		return false
	}
	// Mode overrides are opaque functions baked into the built system.
	if s.modeOverride != nil || prev.modeOverride != nil {
		return false
	}
	// Mid-run hooks mutate the system in ways the reset contract cannot
	// account for; observers merely read and are excluded from the key.
	if len(s.hooks) > 0 || len(prev.hooks) > 0 {
		return false
	}
	return true
}

// Horizon returns the simulated duration in seconds for the given derived
// parameters.
func (s *Scenario) Horizon(p Params) float64 {
	if s.horizonRounds > 0 {
		return s.horizonRounds * p.T
	}
	if s.horizon > 0 {
		return s.horizon
	}
	return DefaultHorizon
}

// Run builds the scenario, executes any mid-run hooks in time order,
// advances to the horizon, and returns the report.
func (s *Scenario) Run() (Report, error) {
	rep, _, err := s.execute(nil)
	return rep, err
}

// RunContext is Run with cooperative cancellation: a done context aborts
// the simulation with ctx.Err() after the in-flight event. The event
// prefix executed before cancellation is identical to an uncanceled
// run's — cancellation never perturbs results, it only truncates them.
func (s *Scenario) RunContext(ctx context.Context) (Report, error) {
	rep, _, err := s.execute(ctx)
	return rep, err
}

// execute is the full run path: build, hooks, horizon, observation. A nil
// ctx means uncancelable (the legacy Run path, with zero polling cost).
func (s *Scenario) execute(ctx context.Context) (Report, any, error) {
	sys, err := s.Build()
	if err != nil {
		return Report{}, nil, err
	}
	return s.executeOn(ctx, sys)
}

// executeOn runs an already-built system to the horizon, applying mid-run
// hooks in time order and extracting the observer value. Shared with the
// Sweep runner; ctx may be nil (no cancellation).
func (s *Scenario) executeOn(ctx context.Context, sys *System) (Report, any, error) {
	advance := func(until float64) error {
		if ctx == nil {
			return sys.Run(until)
		}
		return sys.RunContext(ctx, until)
	}
	horizon := s.Horizon(sys.Params())
	hooks := append([]midRunHook(nil), s.hooks...)
	sort.SliceStable(hooks, func(i, j int) bool { return hooks[i].at < hooks[j].at })
	for _, h := range hooks {
		// A hook that never fires would silently invalidate the run (e.g.
		// a fault injection that was supposed to perturb the measurement).
		if h.at >= horizon {
			return Report{}, nil, fmt.Errorf("ftgcs: scenario %q: mid-run hook at %g ≥ horizon %g", s.name, h.at, horizon)
		}
		if err := advance(h.at); err != nil {
			return Report{}, nil, err
		}
		if err := h.fn(sys); err != nil {
			return Report{}, nil, err
		}
	}
	if err := advance(horizon); err != nil {
		return Report{}, nil, err
	}
	var value any
	if s.observe != nil {
		v, err := s.observe(sys)
		if err != nil {
			return Report{}, nil, err
		}
		value = v
	}
	return sys.Report(), value, nil
}

// deriveParams is the single place the preset → constants resolution
// happens: the zero Preset means Practical.
func deriveParams(preset Preset, rho, delay, uncertainty, c2, eps float64) (Params, error) {
	if preset == 0 {
		preset = PresetPractical
	}
	pcfg := params.PresetConfig(preset, rho, delay, uncertainty)
	if c2 != 0 {
		pcfg.C2 = c2
	}
	if eps != 0 {
		pcfg.Eps = eps
	}
	return params.Derive(pcfg)
}

// Scenario converts the legacy Config into the options-based builder, so
// both configuration styles share one build path.
func (c Config) Scenario(opts ...Option) *Scenario {
	base := []Option{
		WithTopology(c.Topology),
		WithClusters(c.ClusterSize, c.FaultBudget),
		WithPhysical(c.Rho, c.Delay, c.Uncertainty),
		WithPreset(c.Preset),
		WithConstants(c.C2, c.Eps),
		WithSeed(c.Seed),
		WithDrift(c.Drift),
		WithDelay(c.DelayModel),
		WithFaults(c.Faults...),
		WithGlobalSkew(!c.DisableGlobalSkew),
		WithSampleInterval(c.SampleInterval),
	}
	return NewScenario(append(base, opts...)...)
}
