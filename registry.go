package ftgcs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ftgcs/internal/byzantine"
)

// TopologyBuilder constructs a base cluster graph from a single size
// parameter (clusters, side length, depth or dimension — whichever the
// family uses) and a seed for randomized families.
type TopologyBuilder func(size int, seed int64) (*Topology, error)

// Registry is a name-indexed catalog of scenario building blocks:
// topologies, drift models, delay models and Byzantine attacks. The CLIs
// and the Scenario builder resolve `-topology torus`, `-drift sine`,
// `-attack adaptive`, `-delay burst` through one shared registry instead of
// per-tool switch statements, so a new adversary is one self-registering
// file.
//
// All methods are safe for concurrent use. Registration of a duplicate
// name panics: registries are populated from init functions, where a
// collision is a programming error worth failing loudly on.
type Registry struct {
	mu         sync.RWMutex
	topologies map[string]TopologyBuilder
	topoSizes  map[string]func(size int) int
	drifts     map[string]func() DriftModel
	delays     map[string]func() DelayModel
	attacks    map[string]func() Attack
	aliases    map[string]string // alias → canonical name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		topologies: make(map[string]TopologyBuilder),
		topoSizes:  make(map[string]func(size int) int),
		drifts:     make(map[string]func() DriftModel),
		delays:     make(map[string]func() DelayModel),
		attacks:    make(map[string]func() Attack),
		aliases:    make(map[string]string),
	}
}

// lookup resolves name in one catalog: an exact registration wins, then
// the shared alias table is consulted. Callers must hold r.mu (read).
func lookup[V any](r *Registry, m map[string]V, name string) (V, bool) {
	if v, ok := m[name]; ok {
		return v, true
	}
	if canonical, ok := r.aliases[name]; ok {
		v, ok := m[canonical]
		return v, ok
	}
	var zero V
	return zero, false
}

// RegisterTopology adds a topology family under the given name. It panics
// if the name is empty or already taken.
func (r *Registry) RegisterTopology(name string, b TopologyBuilder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if name == "" || b == nil {
		panic("ftgcs: RegisterTopology with empty name or nil builder")
	}
	if _, dup := r.topologies[name]; dup {
		panic(fmt.Sprintf("ftgcs: topology %q registered twice", name))
	}
	r.topologies[name] = b
}

// RegisterTopologySize attaches a cluster-count estimator to a topology
// family: given the family's size parameter, it returns how many
// clusters the built graph will have. Estimators let validators budget
// the resolved graph BEFORE the builder runs — essential for families
// whose builders are super-linear in the parameter (a tree depth or
// hypercube dimension builds 2^size clusters). Estimators may saturate
// instead of overflowing for huge parameters. It panics if the name is
// empty, the estimator nil, or one is already registered.
func (r *Registry) RegisterTopologySize(name string, clusters func(size int) int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if name == "" || clusters == nil {
		panic("ftgcs: RegisterTopologySize with empty name or nil estimator")
	}
	if _, dup := r.topoSizes[name]; dup {
		panic(fmt.Sprintf("ftgcs: topology size estimator %q registered twice", name))
	}
	r.topoSizes[name] = clusters
}

// TopologyClusters estimates how many clusters the named family (alias
// or canonical) resolves to at the given size. ok is false when the
// family has no registered estimator.
func (r *Registry) TopologyClusters(name string, size int) (int, bool) {
	r.mu.RLock()
	est, ok := lookup(r, r.topoSizes, name)
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return est(size), true
}

// RegisterDrift adds a drift model constructor under the given name. It
// panics if the name is empty or already taken.
func (r *Registry) RegisterDrift(name string, ctor func() DriftModel) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if name == "" || ctor == nil {
		panic("ftgcs: RegisterDrift with empty name or nil constructor")
	}
	if _, dup := r.drifts[name]; dup {
		panic(fmt.Sprintf("ftgcs: drift %q registered twice", name))
	}
	r.drifts[name] = ctor
}

// RegisterDelay adds a delay model constructor under the given name. It
// panics if the name is empty or already taken.
func (r *Registry) RegisterDelay(name string, ctor func() DelayModel) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if name == "" || ctor == nil {
		panic("ftgcs: RegisterDelay with empty name or nil constructor")
	}
	if _, dup := r.delays[name]; dup {
		panic(fmt.Sprintf("ftgcs: delay %q registered twice", name))
	}
	r.delays[name] = ctor
}

// RegisterAttack adds a Byzantine attack constructor under the given name.
// It panics if the name is empty or already taken.
func (r *Registry) RegisterAttack(name string, ctor func() Attack) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if name == "" || ctor == nil {
		panic("ftgcs: RegisterAttack with empty name or nil constructor")
	}
	if _, dup := r.attacks[name]; dup {
		panic(fmt.Sprintf("ftgcs: attack %q registered twice", name))
	}
	r.attacks[name] = ctor
}

// RegisterAlias maps an alternative spelling to a canonical name (e.g.
// "adaptive" → "adaptive-two-faced"). Aliases are shared across all four
// catalogs; an exact registration under the same name always wins over an
// alias, and an alias may not shadow an existing canonical name.
func (r *Registry) RegisterAlias(alias, canonical string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if alias == "" || canonical == "" {
		panic("ftgcs: RegisterAlias with empty name")
	}
	if _, dup := r.aliases[alias]; dup {
		panic(fmt.Sprintf("ftgcs: alias %q registered twice", alias))
	}
	if r.isCanonical(alias) {
		panic(fmt.Sprintf("ftgcs: alias %q would shadow an existing registration", alias))
	}
	if !r.isCanonical(canonical) {
		panic(fmt.Sprintf("ftgcs: alias %q points at unregistered name %q (register the target first)", alias, canonical))
	}
	r.aliases[alias] = canonical
}

// isCanonical reports whether the name is directly registered in any
// catalog. Callers must hold r.mu.
func (r *Registry) isCanonical(name string) bool {
	_, t := r.topologies[name]
	_, dr := r.drifts[name]
	_, de := r.delays[name]
	_, a := r.attacks[name]
	return t || dr || de || a
}

// unknown builds the error for a failed lookup, listing what is available.
func unknown(kind, name string, names []string) error {
	return fmt.Errorf("ftgcs: unknown %s %q (have: %s)", kind, name, strings.Join(names, ", "))
}

// Topology builds the named topology family at the given size. Randomized
// families use the seed; deterministic ones ignore it.
func (r *Registry) Topology(name string, size int, seed int64) (*Topology, error) {
	r.mu.RLock()
	b, ok := lookup(r, r.topologies, name)
	r.mu.RUnlock()
	if !ok {
		return nil, unknown("topology", name, r.TopologyNames())
	}
	return b(size, seed)
}

// Drift returns a fresh instance of the named drift model.
func (r *Registry) Drift(name string) (DriftModel, error) {
	r.mu.RLock()
	ctor, ok := lookup(r, r.drifts, name)
	r.mu.RUnlock()
	if !ok {
		return nil, unknown("drift model", name, r.DriftNames())
	}
	return ctor(), nil
}

// Delay returns a fresh instance of the named delay model.
func (r *Registry) Delay(name string) (DelayModel, error) {
	r.mu.RLock()
	ctor, ok := lookup(r, r.delays, name)
	r.mu.RUnlock()
	if !ok {
		return nil, unknown("delay model", name, r.DelayNames())
	}
	return ctor(), nil
}

// Attack returns a fresh instance of the named Byzantine attack.
func (r *Registry) Attack(name string) (Attack, error) {
	r.mu.RLock()
	ctor, ok := lookup(r, r.attacks, name)
	r.mu.RUnlock()
	if !ok {
		return nil, unknown("attack", name, r.AttackNames())
	}
	return ctor(), nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TopologyNames lists the registered topology families, sorted.
func (r *Registry) TopologyNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return sortedKeys(r.topologies)
}

// DriftNames lists the registered drift models, sorted.
func (r *Registry) DriftNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return sortedKeys(r.drifts)
}

// DelayNames lists the registered delay models, sorted.
func (r *Registry) DelayNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return sortedKeys(r.delays)
}

// AttackNames lists the registered attacks, sorted.
func (r *Registry) AttackNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return sortedKeys(r.attacks)
}

// DefaultRegistry holds every built-in topology, drift model, delay model
// and attack, and is where RegisterDrift et al. (the package-level
// convenience functions) install user extensions.
var DefaultRegistry = newBuiltinRegistry()

func newBuiltinRegistry() *Registry {
	r := NewRegistry()

	r.RegisterTopology("line", func(size int, _ int64) (*Topology, error) { return Line(size), nil })
	r.RegisterTopology("ring", func(size int, _ int64) (*Topology, error) { return Ring(size), nil })
	r.RegisterTopology("grid", func(size int, _ int64) (*Topology, error) { return Grid(size, size), nil })
	r.RegisterTopology("torus", func(size int, _ int64) (*Topology, error) { return Torus(size, size), nil })
	r.RegisterTopology("tree", func(size int, _ int64) (*Topology, error) { return Tree(2, size), nil })
	r.RegisterTopology("clique", func(size int, _ int64) (*Topology, error) { return Clique(size), nil })
	r.RegisterTopology("star", func(size int, _ int64) (*Topology, error) { return Star(size), nil })
	r.RegisterTopology("hypercube", func(size int, _ int64) (*Topology, error) { return Hypercube(size), nil })
	r.RegisterTopology("random", func(size int, seed int64) (*Topology, error) {
		return Random(size, size/2, seed), nil
	})

	// Cluster-count estimators, saturating well past any sane budget so
	// huge parameters cannot overflow. These let spec validation reject
	// an oversized graph before the builder allocates it.
	const saturated = 1 << 30
	ident := func(size int) int { return size }
	square := func(size int) int {
		if size >= 1<<15 {
			return saturated
		}
		return size * size
	}
	pow2 := func(size int) int {
		if size < 0 {
			return 0
		}
		if size >= 30 {
			return saturated
		}
		return 1 << size
	}
	for _, name := range []string{"line", "ring", "clique", "star", "random"} {
		r.RegisterTopologySize(name, ident)
	}
	r.RegisterTopologySize("grid", square)
	r.RegisterTopologySize("torus", square)
	r.RegisterTopologySize("hypercube", pow2)
	r.RegisterTopologySize("tree", func(depth int) int { // Tree(2, depth): 2^(depth+1)−1 clusters
		if depth < 0 {
			return 0
		}
		if depth >= 30 {
			return saturated
		}
		return 1<<(depth+1) - 1
	})

	r.RegisterDrift("spread", func() DriftModel { return SpreadDrift{} })
	r.RegisterDrift("gradient", func() DriftModel { return GradientDrift{} })
	r.RegisterDrift("halves", func() DriftModel { return HalvesDrift{} })
	r.RegisterDrift("alternating", func() DriftModel { return AlternatingHalvesDrift{} })
	r.RegisterDrift("randomwalk", func() DriftModel { return RandomWalkDrift{} })
	r.RegisterDrift("sine", func() DriftModel { return SineDrift{} })
	r.RegisterDrift("none", func() DriftModel { return NoDrift{} })

	r.RegisterDelay("uniform", func() DelayModel { return UniformDelayModel{} })
	r.RegisterDelay("extremal", func() DelayModel { return ExtremalDelayModel{} })
	r.RegisterDelay("fixed-mid", func() DelayModel { return FixedMidDelayModel{} })
	r.RegisterDelay("phased-reveal", func() DelayModel { return PhasedRevealDelayModel{} })

	// The byzantine package's own catalog is the single source of truth
	// for the built-in attacks; every strategy registers under its
	// self-reported name. The strategies are stateless values (state is
	// created per Install), so sharing the instance is safe.
	for _, a := range byzantine.All() {
		a := a
		r.RegisterAttack(a.Name(), func() Attack { return a })
	}

	// Historical CLI spellings, shared with byzantine.ByName.
	for alias, canonical := range byzantine.Aliases() {
		r.RegisterAlias(alias, canonical)
	}

	return r
}

// Package-level convenience wrappers over DefaultRegistry.

// RegisterTopology installs a topology family in the default registry.
func RegisterTopology(name string, b TopologyBuilder) { DefaultRegistry.RegisterTopology(name, b) }

// RegisterTopologySize attaches a cluster-count estimator in the default
// registry, letting spec validation budget a custom family's resolved
// graph before its builder runs.
func RegisterTopologySize(name string, clusters func(size int) int) {
	DefaultRegistry.RegisterTopologySize(name, clusters)
}

// RegisterDrift installs a drift model in the default registry.
func RegisterDrift(name string, ctor func() DriftModel) { DefaultRegistry.RegisterDrift(name, ctor) }

// RegisterDelay installs a delay model in the default registry.
func RegisterDelay(name string, ctor func() DelayModel) { DefaultRegistry.RegisterDelay(name, ctor) }

// RegisterAttack installs a Byzantine attack in the default registry.
func RegisterAttack(name string, ctor func() Attack) { DefaultRegistry.RegisterAttack(name, ctor) }

// TopologyByName builds a topology from the default registry.
func TopologyByName(name string, size int, seed int64) (*Topology, error) {
	return DefaultRegistry.Topology(name, size, seed)
}

// DriftByName returns a drift model from the default registry.
func DriftByName(name string) (DriftModel, error) { return DefaultRegistry.Drift(name) }

// DelayByName returns a delay model from the default registry.
func DelayByName(name string) (DelayModel, error) { return DefaultRegistry.Delay(name) }

// AttackByName returns a Byzantine attack from the default registry.
func AttackByName(name string) (Attack, error) { return DefaultRegistry.Attack(name) }
