package ftgcs

import (
	"math"
	"strings"
	"testing"
)

func quickConfig() Config {
	return Config{
		Topology:    Line(3),
		ClusterSize: 4,
		FaultBudget: 1,
		Rho:         1e-3,
		Delay:       1e-3,
		Uncertainty: 1e-4,
		Seed:        1,
	}
}

func TestNewValidation(t *testing.T) {
	cfg := quickConfig()
	cfg.Topology = nil
	if _, err := New(cfg); err == nil {
		t.Error("nil topology accepted")
	}
	cfg = quickConfig()
	cfg.ClusterSize = 2
	if _, err := New(cfg); err == nil {
		t.Error("k < 3f+1 accepted")
	}
	cfg = quickConfig()
	cfg.Rho = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero drift accepted")
	}
	cfg = quickConfig()
	cfg.Preset = PresetPaperStrict // infeasible at ρ=1e-3
	if _, err := New(cfg); err == nil {
		t.Error("infeasible preset accepted")
	}
}

func TestEndToEndReport(t *testing.T) {
	sys, err := New(quickConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p := sys.Params()
	if err := sys.Run(50 * p.T); err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := sys.Report()
	if !r.AllWithinBounds() {
		t.Errorf("bounds violated:\n%s", r)
	}
	if r.Events == 0 || r.Horizon <= 0 {
		t.Errorf("empty report: %+v", r)
	}
	if !strings.Contains(r.String(), "ok") {
		t.Errorf("report rendering: %s", r)
	}
	if sys.Nodes() != 12 || sys.Clusters() != 3 || sys.Diameter() != 2 {
		t.Errorf("topology accessors: %d %d %d", sys.Nodes(), sys.Clusters(), sys.Diameter())
	}
}

func TestByzantineEndToEnd(t *testing.T) {
	cfg := quickConfig()
	cfg.Faults = []FaultSpec{
		{Node: 3, Strategy: AdaptiveTwoFaced()},
		{Node: 7, Strategy: Silent()},
		{Node: 11, Strategy: Spam()},
	}
	cfg.Drift = DriftSpec{Kind: DriftSpread}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(50 * sys.Params().T); err != nil {
		t.Fatal(err)
	}
	if r := sys.Report(); !r.AllWithinBounds() {
		t.Errorf("bounds violated under attack:\n%s", r)
	}
}

func TestClockAccessors(t *testing.T) {
	sys, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(10 * sys.Params().T); err != nil {
		t.Fatal(err)
	}
	now := sys.Now()
	if now <= 0 {
		t.Fatalf("Now = %v", now)
	}
	l := sys.Logical(0)
	if l <= 0 || math.Abs(l-now) > 0.1*now {
		t.Errorf("Logical(0) = %v at t=%v", l, now)
	}
	cc := sys.ClusterClock(1)
	if math.IsNaN(cc) || cc <= 0 {
		t.Errorf("ClusterClock = %v", cc)
	}
	est := sys.Estimate(0, 1) // node 0 (cluster 0) observes cluster 1
	if math.IsNaN(est) {
		t.Error("Estimate(0,1) should exist")
	}
	if !math.IsNaN(sys.Estimate(0, 2)) {
		t.Error("Estimate(0,2) should be NaN (not adjacent)")
	}
	if sys.Series(SeriesGlobal) == nil {
		t.Error("global skew series missing")
	}
}

func TestTopologyConstructors(t *testing.T) {
	tests := []struct {
		name string
		g    *Topology
		n, d int
	}{
		{"line", Line(5), 5, 4},
		{"ring", Ring(6), 6, 3},
		{"grid", Grid(3, 3), 9, 4},
		{"torus", Torus(3, 3), 9, 2},
		{"tree", Tree(2, 2), 7, 4},
		{"clique", Clique(5), 5, 1},
		{"star", Star(5), 5, 2},
		{"hypercube", Hypercube(3), 8, 3},
	}
	for _, tc := range tests {
		if tc.g.N() != tc.n {
			t.Errorf("%s: N = %d, want %d", tc.name, tc.g.N(), tc.n)
		}
		if got := tc.g.Diameter(); got != tc.d {
			t.Errorf("%s: D = %d, want %d", tc.name, got, tc.d)
		}
	}
	r := Random(20, 10, 7)
	if r.N() != 20 || !r.Connected() {
		t.Error("random topology")
	}
}

func TestStrategyByName(t *testing.T) {
	for _, name := range []string{"silent", "spam", "two-faced", "adaptive", "cadence", "oscillate"} {
		s, err := StrategyByName(name)
		if err != nil || s == nil {
			t.Errorf("StrategyByName(%q): %v", name, err)
		}
	}
	if _, err := StrategyByName("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestDeriveParams(t *testing.T) {
	p, err := DeriveParams(PresetPractical, 1e-4, 1e-3, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kappa <= 0 || p.T <= 0 {
		t.Errorf("params: %+v", p)
	}
	if _, err := DeriveParams(PresetPaperStrict, 1e-3, 1e-3, 1e-4); err == nil {
		t.Error("infeasible derivation accepted")
	}
}

func TestOverrideConstants(t *testing.T) {
	cfg := quickConfig()
	cfg.C2 = 4
	cfg.Eps = 0.25
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Params().C2; got != 4 {
		t.Errorf("C2 override = %v", got)
	}
}

func TestReportBoundViolationDetected(t *testing.T) {
	r := Report{
		MaxIntraClusterSkew: 2, IntraClusterBound: 1,
		MaxLocalSkew: 0, LocalSkewBound: 1,
		MaxGlobalSkew: 0, GlobalSkewBound: 1,
	}
	if r.AllWithinBounds() {
		t.Error("violation not detected")
	}
	if !strings.Contains(r.String(), "VIOLATED") {
		t.Error("violation not rendered")
	}
}
