#!/usr/bin/env bash
# load_smoke.sh — short committed-harness run against a live server.
#
# Builds ftgcs-serve and ftgcs-load, boots an admission-limited server on
# an ephemeral port, drives it with the load harness for a few seconds,
# and sanity-checks the emitted ftgcs-load-v1 report: traffic flowed,
# nothing errored, the accounting adds up, and the hot-spec pool actually
# produced cache hits. CI runs this as the overload counterpart to
# serve_smoke.sh; locally it is also the recipe for refreshing the
# BENCH_5.json series (run longer and copy the report).
#
#   scripts/load_smoke.sh
#   DURATION=10s CONCURRENCY=32 OUT=BENCH_5.json scripts/load_smoke.sh
#   HOT=16 CLIENTS=8 DURATION=10s CONCURRENCY=32 OUT=BENCH_7.json scripts/load_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${DURATION:-3s}"
CONCURRENCY="${CONCURRENCY:-8}"
HOT="${HOT:-8}"
CLIENTS="${CLIENTS:-4}"
OUT="${OUT:-}"

tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/ftgcs-serve" ./cmd/ftgcs-serve
go build -o "$tmp/ftgcs-load" ./cmd/ftgcs-load

"$tmp/ftgcs-serve" -addr 127.0.0.1:0 -workers 4 -store "$tmp/store" \
  -admit-rate 60 -admit-burst 30 >"$tmp/serve.log" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^ftgcs-serve listening on //p' "$tmp/serve.log" | head -1)
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "server died:"; cat "$tmp/serve.log"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "server never reported its address:"; cat "$tmp/serve.log"; exit 1; }
echo "load smoke: server up at $addr"

report="${OUT:-$tmp/load.json}"
"$tmp/ftgcs-load" -addr "$addr" -duration "$DURATION" -concurrency "$CONCURRENCY" \
  -hit-ratio 0.5 -hot "$HOT" -clients "$CLIENTS" \
  -git-rev "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
  -out "$report"
cat "$report"

python3 - "$report" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
t = rep["totals"]
assert rep["schema"] == "ftgcs-load-v1", rep["schema"]
assert t["requests"] > 0, "no traffic"
assert t["done"] > 0, "nothing completed"
assert t["errors"] == 0, f"{t['errors']} hard errors"
assert t["done"] + t["rejected_429"] + t["rejected_503"] + t["errors"] == t["requests"], "totals do not add up"
assert t["cache_hits"] > 0, "hot pool produced no cache hits"
assert rep["qps"] > 0 and rep["latency_ms"]["max"] >= rep["latency_ms"]["p50"] >= 0, "implausible summary"
print(f"load smoke OK: {t['requests']} requests, {t['done']} done "
      f"({t['cache_hits']} cached), {t['rejected_429']} shed, qps={rep['qps']}")
EOF
