#!/usr/bin/env bash
# bench_delta.sh — perf regression gate over the committed BENCH_*.json
# trajectory.
#
#   scripts/bench_delta.sh              # fresh bench run vs latest committed snapshot
#   scripts/bench_delta.sh new.json     # compare an existing snapshot instead of running
#   BASELINE=BENCH_2.json scripts/bench_delta.sh
#
# Exits non-zero when any benchmark present in both snapshots regresses by
# more than 25% ns/op or by more than 2 allocs/op. ns/op is only gated when
# both snapshots were recorded on the same CPU model — cross-machine
# wall-clock deltas are noise, which is why snapshots carry `cpu`, `goarch`
# and `git_rev`. allocs/op is near-deterministic and always gated; the two
# allocs of slack absorb b.N-amortized rounding (SystemSimSecond's series
# growth rounds to 10–12 depending on iteration count) without letting a
# real regression through — the exact zero-alloc and reset guarantees are
# enforced separately by the AllocsPerRun pins in alloc_test.go. Benchmarks present
# in only one snapshot are reported but never fail the gate, and snapshots
# predating the `git_rev`/`goarch` fields are read fine — the gate only
# needs `cpu` and the per-benchmark rows.
set -euo pipefail
cd "$(dirname "$0")/.."

# Only micro-bench snapshots qualify as a baseline: the BENCH_* series
# also carries load-harness reports (schema ftgcs-load-v1) that have no
# per-benchmark rows to gate against. Snapshots recorded from a dirty
# tree (git_rev "…-dirty") measured uncommitted code, so they are only
# used when no clean snapshot exists at all.
latest_committed() {
    local f latest="" latest_clean=""
    while read -r f; do
        grep -q '"schema": "ftgcs-bench-v1"' "$f" || continue
        latest="$f"
        grep -q '"git_rev": ".*-dirty"' "$f" || latest_clean="$f"
    done < <(git ls-files 'BENCH_*.json' | sort -t_ -k2 -n)
    echo "${latest_clean:-$latest}"
}

BASELINE="${BASELINE:-$(latest_committed)}"
if [ -z "$BASELINE" ] || [ ! -f "$BASELINE" ]; then
    echo "bench_delta: no committed BENCH_*.json baseline found" >&2
    exit 1
fi

if [ $# -ge 1 ]; then
    CUR="$1"
else
    CUR="$(mktemp)"
    trap 'rm -f "$CUR"' EXIT
    scripts/bench.sh "$CUR"
fi

echo "bench_delta: comparing $CUR against baseline $BASELINE"
awk -v maxratio="${MAX_NS_RATIO:-1.25}" '
/"cpu":/ {
    cpu = $0; sub(/.*"cpu": "/, "", cpu); sub(/".*/, "", cpu)
    if (FILENAME == ARGV[1]) bcpu = cpu; else ccpu = cpu
}
/"Benchmark/ {
    name = $0; sub(/^ *"/, "", name); sub(/".*/, "", name)
    ns = $0; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
    al = $0; sub(/.*"allocs_per_op": /, "", al); sub(/[,}].*/, "", al)
    if (FILENAME == ARGV[1]) { bns[name] = ns; bal[name] = al }
    else {
        cns[name] = ns; cal[name] = al
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    }
}
END {
    samecpu = (bcpu == ccpu)
    if (!samecpu)
        printf "bench_delta: baseline cpu (%s) != current cpu (%s); gating allocs/op only\n", bcpu, ccpu
    fail = 0
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (!(name in bns)) {
            printf "  NEW         %-42s ns/op=%s allocs/op=%s\n", name, cns[name], cal[name]
            continue
        }
        ratio = (cns[name] + 0) / (bns[name] + 0)
        status = "ok"
        if (cal[name] + 0 > bal[name] + 2) { status = "FAIL allocs"; fail = 1 }
        else if (samecpu && ratio > maxratio + 0) { status = "FAIL ns/op"; fail = 1 }
        printf "  %-11s %-42s ns/op %s -> %s (%.2fx)  allocs/op %s -> %s\n", \
            status, name, bns[name], cns[name], ratio, bal[name], cal[name]
    }
    for (name in bns) if (!(name in cns))
        printf "  GONE        %s (baseline only; not gated)\n", name
    if (fail) { print "bench_delta: REGRESSION against " ARGV[1]; exit 1 }
    print "bench_delta: no regression against " ARGV[1]
}' "$BASELINE" "$CUR"
