#!/usr/bin/env bash
# bench.sh — run the simulation-substrate micro-benchmarks and emit a
# machine-readable snapshot of the perf trajectory (BENCH_<n>.json).
#
#   scripts/bench.sh              # writes BENCH_1.json in the repo root
#   scripts/bench.sh out.json     # writes out.json
#   COUNT=10 scripts/bench.sh     # more repetitions (default 5)
#
# Each benchmark runs COUNT times; the JSON records the best (minimum)
# ns/op — the least-noisy estimate of the true cost — plus B/op and
# allocs/op, which are deterministic. The raw `go test` output is echoed so
# CI logs keep the full series.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_1.json}"
COUNT="${COUNT:-5}"
BENCH='BenchmarkSystemSimSecond|BenchmarkSystemBuild|BenchmarkDeriveParams|BenchmarkEngine|BenchmarkBroadcast'
PKGS=". ./internal/sim ./internal/transport"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# shellcheck disable=SC2086
go test -run '^$' -bench "$BENCH" -benchmem -count="$COUNT" $PKGS | tee "$RAW"

awk -v out="$OUT" -v count="$COUNT" '
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^goos:/ { goos = $2 }
/^Benchmark/ && / ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)           # strip GOMAXPROCS suffix
    ns = $3; bytes = ""; allocs = ""
    for (i = 1; i <= NF; i++) {
        if ($i == "B/op")      bytes  = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (!(name in best) || ns + 0 < best[name] + 0) {
        best[name] = ns; b[name] = bytes; a[name] = allocs
    }
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
END {
    printf "{\n" > out
    printf "  \"schema\": \"ftgcs-bench-v1\",\n" >> out
    printf "  \"count\": %d,\n", count >> out
    printf "  \"goos\": \"%s\",\n", goos >> out
    printf "  \"cpu\": \"%s\",\n", cpu >> out
    printf "  \"benchmarks\": {\n" >> out
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            name, best[name], b[name], a[name], (i < n ? "," : "") >> out
    }
    printf "  }\n}\n" >> out
}' "$RAW"

echo "wrote $OUT"
