#!/usr/bin/env bash
# bench.sh — run the simulation-substrate micro-benchmarks and emit a
# machine-readable snapshot of the perf trajectory (BENCH_<n>.json).
#
#   scripts/bench.sh              # writes the next unused BENCH_<n>.json
#   scripts/bench.sh out.json     # writes out.json
#   COUNT=10 scripts/bench.sh     # more repetitions (default 5)
#
# Each benchmark runs COUNT times; the JSON records the best (minimum)
# ns/op — the least-noisy estimate of the true cost — plus B/op and
# allocs/op, which are deterministic. The raw `go test` output is echoed so
# CI logs keep the full series.
set -euo pipefail
cd "$(dirname "$0")/.."

next_out() {
    local n=1
    while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
    echo "BENCH_${n}.json"
}

OUT="${1:-$(next_out)}"
COUNT="${COUNT:-5}"
GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
if [ -n "$(git status --porcelain 2>/dev/null)" ]; then
    GIT_REV="${GIT_REV}-dirty"
fi
BENCH='BenchmarkSystemSimSecond|BenchmarkSystemBuild|BenchmarkSystemReset|BenchmarkReplicatedJob|BenchmarkSubmit|BenchmarkDeriveParams|BenchmarkEngine|BenchmarkBroadcast'
PKGS=". ./internal/sim ./internal/transport ./internal/jobs"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# shellcheck disable=SC2086
go test -run '^$' -bench "$BENCH" -benchmem -count="$COUNT" $PKGS | tee "$RAW"

awk -v out="$OUT" -v count="$COUNT" -v gitrev="$GIT_REV" '
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^Benchmark/ && / ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)           # strip GOMAXPROCS suffix
    ns = $3; bytes = ""; allocs = ""
    for (i = 1; i <= NF; i++) {
        if ($i == "B/op")      bytes  = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    # Best-of-count per column, independently: ns/op is wall-clock noise
    # (take the min), and B/op / allocs/op on concurrent benchmarks can
    # jitter by a few goroutine-scheduling allocations (min is the honest
    # deterministic cost).
    if (!(name in best) || ns + 0 < best[name] + 0) best[name] = ns
    if (!(name in b) || bytes + 0 < b[name] + 0) b[name] = bytes
    if (!(name in a) || allocs + 0 < a[name] + 0) a[name] = allocs
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
END {
    printf "{\n" > out
    printf "  \"schema\": \"ftgcs-bench-v1\",\n" >> out
    printf "  \"count\": %d,\n", count >> out
    printf "  \"git_rev\": \"%s\",\n", gitrev >> out
    printf "  \"goos\": \"%s\",\n", goos >> out
    printf "  \"goarch\": \"%s\",\n", goarch >> out
    printf "  \"cpu\": \"%s\",\n", cpu >> out
    printf "  \"benchmarks\": {\n" >> out
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            name, best[name], b[name], a[name], (i < n ? "," : "") >> out
    }
    printf "  }\n}\n" >> out
}' "$RAW"

echo "wrote $OUT"
