#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the experiment service.
#
# Builds ftgcs-serve, boots it on an ephemeral port, submits the same
# example spec twice, and asserts that the second response is a cache hit
# ("cached":true) whose payload is byte-identical to the first modulo
# that one marker — the content-addressed dedup/cache guarantee.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/ftgcs-serve" ./cmd/ftgcs-serve

"$tmp/ftgcs-serve" -addr 127.0.0.1:0 >"$tmp/serve.log" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^ftgcs-serve listening on //p' "$tmp/serve.log" | head -1)
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "server died:"; cat "$tmp/serve.log"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "server never reported its address:"; cat "$tmp/serve.log"; exit 1; }
base="http://$addr"
echo "server up at $base"

curl -fsS "$base/v1/healthz" | grep -q '"status":"ok"'
curl -fsS "$base/v1/registry" | grep -q '"torus"'

req="{\"spec\": $(cat examples/specs/line-quickstart.json)}"

curl -fsS -X POST -d "$req" "$base/v1/experiments?wait=true" >"$tmp/r1.json"
grep -q '"state":"done"' "$tmp/r1.json"
grep -q '"cached":false' "$tmp/r1.json"

curl -fsS -X POST -d "$req" "$base/v1/experiments?wait=true" >"$tmp/r2.json"
grep -q '"state":"done"' "$tmp/r2.json"
grep -q '"cached":true' "$tmp/r2.json" || { echo "second submission was not a cache hit:"; cat "$tmp/r2.json"; exit 1; }

# The responses must agree byte-for-byte once the cache marker is
# normalized: same content-addressed ID, same result bytes.
sed 's/"cached":true/"cached":false/' "$tmp/r2.json" >"$tmp/r2norm.json"
if ! cmp -s "$tmp/r1.json" "$tmp/r2norm.json"; then
  echo "cache hit was not byte-identical:"
  diff "$tmp/r1.json" "$tmp/r2norm.json" || true
  exit 1
fi

echo "serve smoke OK: second submission was a cache hit with byte-identical result"
