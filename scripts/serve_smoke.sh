#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the experiment service.
#
# Builds ftgcs-serve, boots it on an ephemeral port, submits the same
# example spec twice, and asserts that the second response is a cache hit
# ("cached":true) whose payload is byte-identical to the first modulo
# that one marker — the content-addressed dedup/cache guarantee. Then
# submits a long-horizon spec, cancels it via DELETE, and asserts the
# canceled state, that the canceled ID is not cached, and that the server
# is still live and able to run fresh work afterward.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/ftgcs-serve" ./cmd/ftgcs-serve

"$tmp/ftgcs-serve" -addr 127.0.0.1:0 >"$tmp/serve.log" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^ftgcs-serve listening on //p' "$tmp/serve.log" | head -1)
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "server died:"; cat "$tmp/serve.log"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "server never reported its address:"; cat "$tmp/serve.log"; exit 1; }
base="http://$addr"
echo "server up at $base"

curl -fsS "$base/v1/healthz" | grep -q '"status":"ok"'
curl -fsS "$base/v1/registry" | grep -q '"torus"'

req="{\"spec\": $(cat examples/specs/line-quickstart.json)}"

curl -fsS -X POST -d "$req" "$base/v1/experiments?wait=true" >"$tmp/r1.json"
grep -q '"state":"done"' "$tmp/r1.json"
grep -q '"cached":false' "$tmp/r1.json"

curl -fsS -X POST -d "$req" "$base/v1/experiments?wait=true" >"$tmp/r2.json"
grep -q '"state":"done"' "$tmp/r2.json"
grep -q '"cached":true' "$tmp/r2.json" || { echo "second submission was not a cache hit:"; cat "$tmp/r2.json"; exit 1; }

# The responses must agree byte-for-byte once the cache marker is
# normalized: same content-addressed ID, same result bytes.
sed 's/"cached":true/"cached":false/' "$tmp/r2.json" >"$tmp/r2norm.json"
if ! cmp -s "$tmp/r1.json" "$tmp/r2norm.json"; then
  echo "cache hit was not byte-identical:"
  diff "$tmp/r1.json" "$tmp/r2norm.json" || true
  exit 1
fi

echo "serve smoke OK: second submission was a cache hit with byte-identical result"

# --- Cancellation leg: a heavy-but-legal spec must be stoppable. ---

# ~10^5 simulated seconds: minutes of wall clock, impossible to finish
# before the DELETE below lands.
long='{"spec": {"name": "long horizon", "topology": {"name": "line", "size": 3}, "seed": 7, "horizon": {"seconds": 100000}}}'

curl -fsS -X POST -d "$long" "$base/v1/experiments" >"$tmp/c1.json"
id=$(sed -n 's/.*"id":"\(sha256:[0-9a-f]*\)".*/\1/p' "$tmp/c1.json")
[ -n "$id" ] || { echo "no job id in submit response:"; cat "$tmp/c1.json"; exit 1; }

curl -fsS -X DELETE "$base/v1/experiments/$id" >"$tmp/c2.json"
grep -q '"state":"canceled"' "$tmp/c2.json" || { echo "DELETE did not cancel:"; cat "$tmp/c2.json"; exit 1; }

# Canceled work is never cached: the ID is gone.
code=$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/experiments/$id")
[ "$code" = "404" ] || { echo "canceled job still resolvable (HTTP $code)"; exit 1; }

# The server is alive, counted the cancellation, and its worker slot is
# free: a fresh spec (new seed ⇒ new content hash) runs to completion.
curl -fsS "$base/v1/stats" | grep -q '"canceled":1'
req3="{\"spec\": $(sed 's/"seed": 1/"seed": 42/' examples/specs/line-quickstart.json)}"
curl -fsS -X POST -d "$req3" "$base/v1/experiments?wait=true" >"$tmp/c3.json"
grep -q '"state":"done"' "$tmp/c3.json" || { echo "post-cancel submission did not run:"; cat "$tmp/c3.json"; exit 1; }
grep -q '"cached":false' "$tmp/c3.json"
curl -fsS "$base/v1/healthz" | grep -q '"status":"ok"'

echo "serve smoke OK: long-horizon job canceled via DELETE, not cached, server live"
