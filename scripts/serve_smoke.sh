#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the experiment service.
#
# Builds ftgcs-serve, boots it on an ephemeral port, submits the same
# example spec twice, and asserts that the second response is a cache hit
# ("cached":"memory") whose payload is byte-identical to the first modulo
# that one marker — the content-addressed dedup/cache guarantee. Then
# submits a long-horizon spec, cancels it via DELETE, and asserts the
# canceled state, that the canceled ID is not cached, and that the server
# is still live and able to run fresh work afterward. An observability
# leg scrapes /metrics around a submission (run counter moves, queue-wait
# histogram fills, HTTP latency is labeled by route pattern), follows a
# job over SSE until its terminal done event, and fetches its lifecycle
# trace. Finally boots a
# store-backed server, runs a whole manifest grid, restarts the process
# on the same -store directory, and asserts the replay is served entirely
# from disk with byte-identical results.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/ftgcs-serve" ./cmd/ftgcs-serve

# boot LOGFILE [extra server flags...] — start a server on an ephemeral
# port, wait for its address line, set $pid and $base.
boot() {
  local log=$1; shift
  "$tmp/ftgcs-serve" -addr 127.0.0.1:0 "$@" >"$log" 2>&1 &
  pid=$!
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^ftgcs-serve listening on //p' "$log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "server died:"; cat "$log"; exit 1; }
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "server never reported its address:"; cat "$log"; exit 1; }
  base="http://$addr"
}

boot "$tmp/serve.log"
echo "server up at $base"

curl -fsS "$base/v1/healthz" | grep -q '"status":"ok"'
curl -fsS "$base/v1/registry" | grep -q '"torus"'

req="{\"spec\": $(cat examples/specs/line-quickstart.json)}"

curl -fsS -X POST -d "$req" "$base/v1/experiments?wait=true" >"$tmp/r1.json"
grep -q '"state":"done"' "$tmp/r1.json"
# Fresh work carries no cache-tier marker.
! grep -q '"cached"' "$tmp/r1.json"

curl -fsS -X POST -d "$req" "$base/v1/experiments?wait=true" >"$tmp/r2.json"
grep -q '"state":"done"' "$tmp/r2.json"
grep -q '"cached":"memory"' "$tmp/r2.json" || { echo "second submission was not a cache hit:"; cat "$tmp/r2.json"; exit 1; }

# The responses must agree byte-for-byte once the cache marker is
# normalized: same content-addressed ID, same result bytes.
sed 's/,"cached":"memory"//' "$tmp/r2.json" >"$tmp/r2norm.json"
if ! cmp -s "$tmp/r1.json" "$tmp/r2norm.json"; then
  echo "cache hit was not byte-identical:"
  diff "$tmp/r1.json" "$tmp/r2norm.json" || true
  exit 1
fi

echo "serve smoke OK: second submission was a cache hit with byte-identical result"

# --- Cancellation leg: a heavy-but-legal spec must be stoppable. ---

# ~10^5 simulated seconds: minutes of wall clock, impossible to finish
# before the DELETE below lands.
long='{"spec": {"name": "long horizon", "topology": {"name": "line", "size": 3}, "seed": 7, "horizon": {"seconds": 100000}}}'

curl -fsS -X POST -d "$long" "$base/v1/experiments" >"$tmp/c1.json"
id=$(sed -n 's/.*"id":"\(sha256:[0-9a-f]*\)".*/\1/p' "$tmp/c1.json")
[ -n "$id" ] || { echo "no job id in submit response:"; cat "$tmp/c1.json"; exit 1; }

curl -fsS -X DELETE "$base/v1/experiments/$id" >"$tmp/c2.json"
grep -q '"state":"canceled"' "$tmp/c2.json" || { echo "DELETE did not cancel:"; cat "$tmp/c2.json"; exit 1; }

# Canceled work is never cached: the ID is gone.
code=$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/experiments/$id")
[ "$code" = "404" ] || { echo "canceled job still resolvable (HTTP $code)"; exit 1; }

# The server is alive, counted the cancellation, and its worker slot is
# free: a fresh spec (new seed ⇒ new content hash) runs to completion.
curl -fsS "$base/v1/stats" | grep -q '"canceled":1'
req3="{\"spec\": $(sed 's/"seed": 1/"seed": 42/' examples/specs/line-quickstart.json)}"
curl -fsS -X POST -d "$req3" "$base/v1/experiments?wait=true" >"$tmp/c3.json"
grep -q '"state":"done"' "$tmp/c3.json" || { echo "post-cancel submission did not run:"; cat "$tmp/c3.json"; exit 1; }
! grep -q '"cached"' "$tmp/c3.json"
curl -fsS "$base/v1/healthz" | grep -q '"status":"ok"'

echo "serve smoke OK: long-horizon job canceled via DELETE, not cached, server live"

# --- Observability leg: metrics move with work; watch streams to done. ---

curl -fsS "$base/metrics" >"$tmp/metrics1.txt"
grep -q '^# TYPE ftgcs_jobs_runs_total counter' "$tmp/metrics1.txt"
runs1=$(sed -n 's/^ftgcs_jobs_runs_total //p' "$tmp/metrics1.txt")
[ -n "$runs1" ] || { echo "no runs counter in /metrics"; exit 1; }

req5="{\"spec\": $(sed 's/"seed": 1/"seed": 43/' examples/specs/line-quickstart.json)}"
curl -fsS -X POST -d "$req5" "$base/v1/experiments?wait=true" >/dev/null

curl -fsS "$base/metrics" >"$tmp/metrics2.txt"
runs2=$(sed -n 's/^ftgcs_jobs_runs_total //p' "$tmp/metrics2.txt")
[ "$runs2" -gt "$runs1" ] || { echo "runs counter did not move ($runs1 -> $runs2)"; exit 1; }
qw=$(sed -n 's/^ftgcs_jobs_queue_wait_seconds_count //p' "$tmp/metrics2.txt")
[ "${qw:-0}" -gt 0 ] || { echo "queue-wait histogram empty"; exit 1; }
# The middleware labels requests by route pattern, never by raw URL.
grep -q 'route="POST /v1/experiments"' "$tmp/metrics2.txt" || { echo "no HTTP latency sample"; exit 1; }

# Watch a job over SSE: the stream must terminate with a done event
# carrying the terminal state, and the trace endpoint must serve the
# completed lifecycle.
req6="{\"spec\": $(sed 's/"seed": 1/"seed": 44/' examples/specs/line-quickstart.json)}"
curl -fsS -X POST -d "$req6" "$base/v1/experiments" >"$tmp/w1.json"
wid=$(sed -n 's/.*"id":"\(sha256:[0-9a-f]*\)".*/\1/p' "$tmp/w1.json")
[ -n "$wid" ] || { echo "no job id in watch submit:"; cat "$tmp/w1.json"; exit 1; }
curl -fsSN --max-time 60 "$base/v1/experiments/$wid?watch=true" >"$tmp/w2.txt"
grep -q '^event: done' "$tmp/w2.txt" || { echo "watch stream had no done event:"; cat "$tmp/w2.txt"; exit 1; }
tail -3 "$tmp/w2.txt" | grep -q '"state":"done"' || { echo "watch did not end terminal:"; cat "$tmp/w2.txt"; exit 1; }
curl -fsS "$base/v1/experiments/$wid/trace" >"$tmp/w3.json"
grep -q '"name":"submitted"' "$tmp/w3.json" && grep -q '"name":"done"' "$tmp/w3.json" \
  || { echo "trace missing lifecycle spans:"; cat "$tmp/w3.json"; exit 1; }

echo "serve smoke OK: metrics moved with work, SSE watch ended terminal, trace served"

# --- Persistence leg: a manifest grid must survive a server restart. ---

kill "$pid" && wait "$pid" 2>/dev/null || true
boot "$tmp/serve2.log" -store "$tmp/store"
echo "store-backed server up at $base"
curl -fsS "$base/v1/healthz" | grep -q '"store"'

curl -fsS -X POST -d @examples/manifests/e1-grid.json "$base/v1/manifests?wait=true" >"$tmp/m1.json"
grep -q '"state":"done"' "$tmp/m1.json" || { echo "manifest run did not complete:"; cat "$tmp/m1.json"; exit 1; }
grep -q '"total":9' "$tmp/m1.json"
# The sweep arm is gated on the baseline arm and everything ran fresh.
! grep -q '"cached"' "$tmp/m1.json"

# Keep one job's full result to compare across the restart.
jid=$(grep -o '"id":"sha256:[0-9a-f]*"' "$tmp/m1.json" | tail -1 | cut -d'"' -f4)
curl -fsS "$base/v1/experiments/$jid" >"$tmp/j1.json"

# Graceful shutdown flushes the write-behind store queue.
kill "$pid" && wait "$pid" 2>/dev/null || true
boot "$tmp/serve3.log" -store "$tmp/store"
echo "rebooted on the same store at $base"

curl -fsS -X POST -d @examples/manifests/e1-grid.json "$base/v1/manifests?wait=true" >"$tmp/m2.json"
grep -q '"state":"done"' "$tmp/m2.json" || { echo "manifest replay did not complete:"; cat "$tmp/m2.json"; exit 1; }
grep -q '"fromCache":9' "$tmp/m2.json" || { echo "replay not fully cache-served:"; cat "$tmp/m2.json"; exit 1; }
grep -q '"cached":"disk"' "$tmp/m2.json" || { echo "replay did not touch the disk tier:"; cat "$tmp/m2.json"; exit 1; }
curl -fsS "$base/v1/stats" | grep -q '"runs":0' || { echo "replay recomputed work"; exit 1; }

# The replayed result is byte-identical modulo the cache-tier marker.
curl -fsS "$base/v1/experiments/$jid" >"$tmp/j2.json"
sed 's/,"cached":"memory"//;s/,"cached":"disk"//' "$tmp/j1.json" >"$tmp/j1norm.json"
sed 's/,"cached":"memory"//;s/,"cached":"disk"//' "$tmp/j2.json" >"$tmp/j2norm.json"
if ! cmp -s "$tmp/j1norm.json" "$tmp/j2norm.json"; then
  echo "restart replay was not byte-identical:"
  diff "$tmp/j1norm.json" "$tmp/j2norm.json" || true
  exit 1
fi

echo "serve smoke OK: manifest grid replayed from disk after restart, byte-identical"

# --- Overload leg: a tiny token bucket must shed load and recover. ---

kill "$pid" && wait "$pid" 2>/dev/null || true
boot "$tmp/serve4.log" -admit-rate 1 -admit-burst 2
echo "admission-limited server up at $base"

# Burst past the 2-token bucket: the first submissions are admitted, then
# the service answers 429 with a Retry-After the client can obey.
saw429=""
for i in $(seq 1 6); do
  reqN="{\"spec\": $(sed "s/\"seed\": 1/\"seed\": 10$i/" examples/specs/line-quickstart.json)}"
  curl -s -D "$tmp/o_hdr" -o "$tmp/o_body" -X POST -d "$reqN" "$base/v1/experiments"
  code=$(head -1 "$tmp/o_hdr" | awk '{print $2}')
  if [ "$code" = "429" ]; then
    saw429=1
    grep -qi '^Retry-After: [0-9]' "$tmp/o_hdr" || { echo "429 without Retry-After:"; cat "$tmp/o_hdr"; exit 1; }
    grep -q '"retryable":true' "$tmp/o_body" || { echo "429 body not marked retryable:"; cat "$tmp/o_body"; exit 1; }
    break
  fi
  case "$code" in 200|202) ;; *) echo "unexpected status $code during burst:"; cat "$tmp/o_body"; exit 1;; esac
done
[ -n "$saw429" ] || { echo "burst of 6 never hit the 2-token bucket"; exit 1; }
curl -fsS "$base/metrics" >"$tmp/o_metrics.txt"
grep -q '^ftgcs_admission_rejected_total' "$tmp/o_metrics.txt" || { echo "rejection not counted in /metrics"; exit 1; }

# Honoring the advertised wait refills the bucket: the same client is
# admitted again and the service still completes work end to end.
retry=$(sed -n 's/^[Rr]etry-[Aa]fter: \([0-9]*\).*/\1/p' "$tmp/o_hdr")
sleep "$((retry + 1))"
reqR="{\"spec\": $(sed 's/"seed": 1/"seed": 201/' examples/specs/line-quickstart.json)}"
curl -fsS -X POST -d "$reqR" "$base/v1/experiments?wait=true" >"$tmp/o_rec.json"
grep -q '"state":"done"' "$tmp/o_rec.json" || { echo "post-backoff submission did not run:"; cat "$tmp/o_rec.json"; exit 1; }
curl -fsS "$base/v1/healthz" | grep -q '"status":"ok"'

echo "serve smoke OK: token bucket shed the burst with 429 + Retry-After, then recovered"
