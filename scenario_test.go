package ftgcs

import (
	"math"
	"testing"
)

// TestScenarioEquivalentToConfig checks both configuration styles build
// identical systems: same derived constants, same simulation trajectory.
func TestScenarioEquivalentToConfig(t *testing.T) {
	cfg := Config{
		Topology:    Line(3),
		ClusterSize: 4,
		FaultBudget: 1,
		Rho:         1e-3,
		Delay:       1e-3,
		Uncertainty: 1e-4,
		Seed:        9,
		Drift:       DriftSpec{Kind: DriftGradient},
		Faults:      []FaultSpec{{Node: 5, Strategy: Silent()}},
	}
	legacy, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	modern, err := NewScenario(
		WithTopology(Line(3)),
		WithClusters(4, 1),
		WithPhysical(1e-3, 1e-3, 1e-4),
		WithSeed(9),
		WithDrift(GradientDrift{}),
		WithAttackName("silent", 5),
	).Build()
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Params() != modern.Params() {
		t.Fatalf("derived params differ:\n%+v\n%+v", legacy.Params(), modern.Params())
	}
	horizon := 40 * legacy.Params().T
	if err := legacy.Run(horizon); err != nil {
		t.Fatal(err)
	}
	if err := modern.Run(horizon); err != nil {
		t.Fatal(err)
	}
	if lr, mr := legacy.Report(), modern.Report(); lr != mr {
		t.Errorf("reports differ:\nlegacy %+v\nmodern %+v", lr, mr)
	}
}

// TestScenarioZeroPresetMeansPractical pins the satellite fix: the zero
// Preset resolves to Practical in one place, for both New and
// DeriveParams.
func TestScenarioZeroPresetMeansPractical(t *testing.T) {
	pZero, err := DeriveParams(0, 1e-4, 1e-3, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	pPractical, err := DeriveParams(PresetPractical, 1e-4, 1e-3, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if pZero != pPractical {
		t.Errorf("zero preset != practical:\n%+v\n%+v", pZero, pPractical)
	}
}

// TestScenarioOptionErrors checks name-resolution failures and missing
// topology surface at Build, not as panics.
func TestScenarioOptionErrors(t *testing.T) {
	cases := map[string]*Scenario{
		"no topology":  NewScenario(),
		"bad drift":    NewScenario(WithTopology(Line(2)), WithDriftName("nope")),
		"bad delay":    NewScenario(WithTopology(Line(2)), WithDelayName("nope")),
		"bad attack":   NewScenario(WithTopology(Line(2)), WithAttackName("nope", 0)),
		"bad topology": NewScenario(WithTopologyName("nope", 4)),
		"bad geometry": NewScenario(WithTopology(Line(2)), WithClusters(2, 1)),
	}
	for name, sc := range cases {
		if _, err := sc.Build(); err == nil {
			t.Errorf("%s: Build should fail", name)
		}
		if _, err := sc.Run(); err == nil {
			t.Errorf("%s: Run should fail", name)
		}
	}
	// A hook that would never fire must fail the run (it builds fine but
	// would otherwise silently skip the injection).
	late := NewScenario(WithTopology(Line(2)), WithHorizon(1),
		WithMidRunHook(2, func(*System) error { return nil }))
	if _, err := late.Run(); err == nil {
		t.Error("hook beyond horizon: Run should fail")
	}
}

// TestScenarioWithVariants checks With() copies don't share fault slices
// with their base.
func TestScenarioWithVariants(t *testing.T) {
	base := NewScenario(WithTopology(Line(2)), WithAttackName("silent", 0))
	a := base.With(WithAttackName("spam", 1))
	b := base.With(WithAttackName("two-faced", 5))
	if len(base.faults) != 1 || len(a.faults) != 2 || len(b.faults) != 2 {
		t.Errorf("fault slices shared: base=%d a=%d b=%d", len(base.faults), len(a.faults), len(b.faults))
	}
	if a.faults[1].Node != 1 || b.faults[1].Node != 5 {
		t.Errorf("variant faults mixed up: %+v %+v", a.faults, b.faults)
	}
}

// TestScenarioRunWithHooksAndObserver exercises the mid-run hook and
// observer paths end to end.
func TestScenarioRunWithHooksAndObserver(t *testing.T) {
	var hookTime float64
	var observed any
	sc := NewScenario(
		WithTopology(Line(2)),
		WithClusters(4, 1),
		WithSeed(3),
		WithHorizon(2),
		WithMidRunHook(1.0, func(sys *System) error {
			hookTime = sys.Now()
			return sys.InjectClockFault(0, 1e-6)
		}),
		WithObserver(func(sys *System) (any, error) {
			return sys.Summary(0).MaxLocalNode, nil
		}),
	)
	rep, value, err := sc.execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	observed = value
	if hookTime != 1.0 {
		t.Errorf("hook ran at %v, want 1.0", hookTime)
	}
	if rep.Horizon != 2 {
		t.Errorf("horizon %v, want 2", rep.Horizon)
	}
	v, ok := observed.(float64)
	if !ok || math.IsNaN(v) || v <= 0 {
		t.Errorf("observer value %v (injected fault should leave nonzero skew)", observed)
	}
}

// TestScenarioHorizonRounds checks WithHorizonRounds scales with the
// derived round length.
func TestScenarioHorizonRounds(t *testing.T) {
	sc := NewScenario(WithTopology(Line(2)), WithHorizonRounds(50))
	sys, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := 50 * sys.Params().T
	if got := sc.Horizon(sys.Params()); got != want {
		t.Errorf("Horizon = %v, want %v", got, want)
	}
	if got := NewScenario(WithTopology(Line(2))).Horizon(sys.Params()); got != DefaultHorizon {
		t.Errorf("default horizon = %v, want %v", got, DefaultHorizon)
	}
}
