package ftgcs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// sweepFixture builds a mixed batch of scenarios: different topologies,
// adversaries, and attack placements, all explicitly seeded.
func sweepFixture(seedBase int64) []*Scenario {
	mk := func(name string, opts ...Option) *Scenario {
		return NewScenario(append([]Option{
			WithName("%s", name),
			WithClusters(4, 1),
			WithHorizonRounds(60),
		}, opts...)...)
	}
	return []*Scenario{
		mk("line-silent", WithTopology(Line(3)), WithSeed(seedBase),
			WithAttackName("silent", 3)),
		mk("ring-spam", WithTopology(Ring(4)), WithSeed(seedBase+1),
			WithDrift(HalvesDrift{}), WithAttackName("spam", 7)),
		mk("grid-adaptive", WithTopologyName("grid", 2), WithSeed(seedBase+2),
			WithAttackPerCluster(func() Attack { return AdaptiveTwoFaced() }, 2)),
		mk("clique-extremal", WithTopology(Clique(3)), WithSeed(seedBase+3),
			WithDelayName("extremal")),
	}
}

// TestSweepDeterministicAcrossWorkerCounts is the core Sweep guarantee:
// the same seeds produce identical reports regardless of the worker count.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	var baseline []SweepResult
	for _, workers := range []int{1, 2, 8} {
		results := Sweep{Workers: workers}.Run(sweepFixture(100))
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d scenario %s: %v", workers, r.Name, r.Err)
			}
		}
		if baseline == nil {
			baseline = results
			continue
		}
		if !reflect.DeepEqual(baseline, results) {
			t.Errorf("workers=%d results differ from sequential:\n%+v\n%+v", workers, baseline, results)
		}
	}
}

// TestSweepCancellationDeterminism is the cancellation half of the sweep
// contract: a sweep canceled partway through yields, for every scenario
// that completed before the cancellation, a result byte-identical to the
// same scenario in an uncanceled sweep — across worker counts — while
// interrupted and undispatched scenarios carry the context's error.
func TestSweepCancellationDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	baseline := Sweep{Workers: 4}.Run(sweepFixture(100))
	for _, r := range baseline {
		if r.Err != nil {
			t.Fatalf("baseline scenario %s: %v", r.Name, r.Err)
		}
	}
	// Canonical bytes of the parts of a result that a client would store.
	enc := func(r SweepResult) []byte {
		b, err := json.Marshal(struct {
			Report  Report  `json:"report"`
			Summary Summary `json:"summary"`
		}{r.Report, r.Summary})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	for _, workers := range []int{1, 2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		var once sync.Once
		sw := Sweep{
			Workers: workers,
			// Cancel the sweep as soon as its first scenario completes:
			// "halfway" without wall-clock timing, so the test cannot flake
			// into canceling nothing or everything.
			OnScenarioDone: func(_ int, res SweepResult) {
				if res.Err == nil {
					once.Do(cancel)
				}
			},
		}
		results := sw.RunContext(ctx, sweepFixture(100))
		cancel()

		completed, interrupted := 0, 0
		for i, r := range results {
			if r.Err != nil {
				interrupted++
				if !errors.Is(r.Err, context.Canceled) {
					t.Errorf("workers=%d scenario %s: Err = %v, want context.Canceled", workers, r.Name, r.Err)
				}
				continue
			}
			completed++
			if !reflect.DeepEqual(baseline[i], r) {
				t.Errorf("workers=%d scenario %s: completed result differs from uncanceled sweep:\n%+v\n%+v",
					workers, r.Name, baseline[i], r)
			}
			if got, want := enc(r), enc(baseline[i]); !bytes.Equal(got, want) {
				t.Errorf("workers=%d scenario %s: serialized result not byte-identical:\n%s\n%s",
					workers, r.Name, got, want)
			}
		}
		if completed == 0 {
			t.Errorf("workers=%d: no scenario completed before the cancel", workers)
		}
		if workers == 1 {
			// Sequential dispatch makes the split deterministic: scenario 0
			// completes, triggers the cancel, and the other three are never
			// dispatched.
			if completed != 1 || interrupted != len(results)-1 {
				t.Errorf("workers=1: completed=%d interrupted=%d, want 1/%d", completed, interrupted, len(results)-1)
			}
		}
	}
}

// TestSweepBaseSeedAssignment checks an unseeded scenario at index i runs
// exactly as if it had been seeded with BaseSeed+i.
func TestSweepBaseSeedAssignment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	unseeded := []*Scenario{
		NewScenario(WithTopology(Line(2)), WithHorizonRounds(40)),
		NewScenario(WithTopology(Line(2)), WithHorizonRounds(40)),
	}
	implicit := Sweep{Workers: 2, BaseSeed: 50}.Run(unseeded)
	explicit := Sweep{Workers: 2}.Run([]*Scenario{
		NewScenario(WithTopology(Line(2)), WithHorizonRounds(40), WithSeed(50)),
		NewScenario(WithTopology(Line(2)), WithHorizonRounds(40), WithSeed(51)),
	})
	for i := range implicit {
		if implicit[i].Err != nil || explicit[i].Err != nil {
			t.Fatalf("errors: %v %v", implicit[i].Err, explicit[i].Err)
		}
		if implicit[i].Report != explicit[i].Report {
			t.Errorf("index %d: BaseSeed-derived report differs from explicit seed:\n%+v\n%+v",
				i, implicit[i].Report, explicit[i].Report)
		}
	}
	// The original scenarios must stay unseeded (the sweep works on
	// copies), so re-running is reproducible.
	for i, sc := range unseeded {
		if _, set := sc.Seeded(); set {
			t.Errorf("scenario %d was mutated by the sweep", i)
		}
	}
}

// TestSweepErrorIsolation checks one failing scenario doesn't poison the
// rest, and RunSweep surfaces the failure.
func TestSweepErrorIsolation(t *testing.T) {
	scs := []*Scenario{
		NewScenario(WithName("good"), WithTopology(Line(2)), WithSeed(1), WithHorizonRounds(20)),
		NewScenario(WithName("bad")), // no topology
	}
	results := Sweep{Workers: 2}.Run(scs)
	if results[0].Err != nil {
		t.Errorf("good scenario failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("bad scenario should fail")
	}
	if results[0].Report.Events == 0 {
		t.Error("good scenario produced no events")
	}
	if _, err := RunSweep(scs...); err == nil {
		t.Error("RunSweep should surface the failure")
	}
}

// TestSweepObserverErrors checks observer failures surface as scenario
// errors.
func TestSweepObserverErrors(t *testing.T) {
	boom := errors.New("boom")
	scs := []*Scenario{NewScenario(
		WithTopology(Line(2)), WithSeed(1), WithHorizonRounds(20),
		WithObserver(func(*System) (any, error) { return nil, boom }),
	)}
	results := Sweep{}.Run(scs)
	if !errors.Is(results[0].Err, boom) {
		t.Errorf("observer error lost: %v", results[0].Err)
	}
}
